// Package genxio is a reproduction of "Flexible and Efficient Parallel I/O
// for Large-Scale Multi-component Simulations" (Ma, Jiao, Campbell,
// Winslett; IPPS 2003): the GENx rocket-simulation parallel I/O stack —
// the Roccom integration framework, the Rocpanda client-server collective
// I/O library with active buffering, the Rochdf/T-Rochdf individual I/O
// modules, an HDF-like scientific file format, simplified physics modules,
// and the simulated evaluation platforms (Turing and ASCI Frost) used to
// regenerate the paper's tables and figures.
//
// This package is the public facade: it re-exports the library's main
// entry points so applications can be written against one import. The
// typical shapes are:
//
//	// Run the integrated simulation on real goroutine ranks with real
//	// files:
//	world := genxio.NewLocalWorld(fs, 1)
//	world.Run(n, func(ctx genxio.Ctx) error {
//		rep, err := genxio.Run(ctx, cfg)
//		...
//	})
//
//	// Or on a simulated platform, in virtual time:
//	world := genxio.NewTuring(seed)
//
// See the examples/ directory for complete programs and DESIGN.md for the
// architecture.
package genxio

import (
	"genxio/internal/cluster"
	"genxio/internal/hdf"
	"genxio/internal/mesh"
	"genxio/internal/metrics"
	"genxio/internal/mpi"
	"genxio/internal/panda"
	"genxio/internal/physics"
	"genxio/internal/roccom"
	"genxio/internal/rochdf"
	"genxio/internal/rocman"
	"genxio/internal/rocpanda"
	"genxio/internal/rt"
	"genxio/internal/snapshot"
	"genxio/internal/trace"
	"genxio/internal/workload"
)

// Message passing and worlds.
type (
	// World launches ranks; Ctx is what each rank's main receives.
	World = mpi.World
	// Ctx is the per-rank execution context.
	Ctx = mpi.Ctx
	// Comm is an MPI-like communicator.
	Comm = mpi.Comm
	// Platform holds a simulated machine's calibrated constants.
	Platform = cluster.Platform
)

// Wildcards for Recv/Probe.
const (
	AnySource = mpi.AnySource
	AnyTag    = mpi.AnyTag
)

// NewLocalWorld returns the real backend: every rank is a goroutine,
// sharing fs, grouped procsPerNode ranks per (pretend) node.
func NewLocalWorld(fs FS, procsPerNode int) World {
	return mpi.NewChanWorld(fs, procsPerNode)
}

// NewTuring returns the simulated development platform of Section 7.1
// (dual-CPU nodes, Myrinet, single-server NFS).
func NewTuring(seed uint64) *cluster.World {
	return cluster.NewWorld(cluster.Turing(), seed)
}

// NewFrost returns the simulated production platform of Section 7.2
// (16-way SMP nodes, SP Switch2, GPFS).
func NewFrost(seed uint64) *cluster.World {
	return cluster.NewWorld(cluster.Frost(), seed)
}

// Turing and Frost expose the platform presets for customization.
var (
	Turing = cluster.Turing
	Frost  = cluster.Frost
)

// Filesystems and clocks.
type (
	// FS is the filesystem abstraction all I/O goes through.
	FS = rt.FS
	// File is an open file.
	File = rt.File
	// Clock abstracts per-rank time.
	Clock = rt.Clock
)

// NewMemFS returns an in-memory filesystem (tests, demos).
func NewMemFS() *rt.MemFS { return rt.NewMemFS() }

// NewOSFS returns a filesystem rooted at a host directory.
func NewOSFS(dir string) (*rt.OSFS, error) { return rt.NewOSFS(dir) }

// Roccom: data management and the uniform I/O interface.
type (
	// Roccom is the integration hub (windows, functions, modules).
	Roccom = roccom.Roccom
	// Window is a distributed data object partitioned into panes.
	Window = roccom.Window
	// Pane is one data block owned by a single process.
	Pane = roccom.Pane
	// AttrSpec declares a window attribute.
	AttrSpec = roccom.AttrSpec
	// IOService is the uniform 3-call parallel I/O interface.
	IOService = roccom.IOService
	// Module is a loadable service component.
	Module = roccom.Module
)

// Attribute locations.
const (
	NodeLoc = roccom.NodeLoc
	ElemLoc = roccom.ElemLoc
	PaneLoc = roccom.PaneLoc
)

// NewRoccom returns an empty integration hub.
func NewRoccom() *Roccom { return roccom.New() }

// LoadedIO returns the I/O service loaded under a module name.
func LoadedIO(rc *Roccom, module string) (IOService, error) {
	return roccom.LoadedIO(rc, module)
}

// Meshes.
type (
	// Block is a structured or unstructured mesh block.
	Block = mesh.Block
	// CylinderSpec configures the rocket-chamber mesh generator.
	CylinderSpec = mesh.CylinderSpec
)

// Mesh helpers.
var (
	GenCylinder    = mesh.GenCylinder
	PartitionMesh  = mesh.Partition
	Tetrahedralize = mesh.Tetrahedralize
	SplitBlock     = mesh.Split
)

// Scientific file format (RHDF).
type (
	// HDFWriter writes an RHDF file.
	HDFWriter = hdf.Writer
	// HDFReader reads an RHDF file.
	HDFReader = hdf.Reader
	// Dataset describes one named array in a file.
	Dataset = hdf.Dataset
	// CostProfile models HDF4/HDF5 management overheads.
	CostProfile = hdf.CostProfile
)

// DType enumerates dataset element types.
type DType = hdf.DType

// Element types.
const (
	F64 = hdf.F64
	F32 = hdf.F32
	I64 = hdf.I64
	I32 = hdf.I32
	U8  = hdf.U8
)

// Cost profiles and format helpers.
var (
	HDF4Profile = hdf.HDF4Profile
	HDF5Profile = hdf.HDF5Profile
	NullProfile = hdf.NullProfile
	CreateHDF   = hdf.Create
	OpenHDF     = hdf.Open
)

// ErrChecksum is wrapped in errors reported when stored snapshot bytes no
// longer match their recorded CRC32C (check with errors.Is).
var ErrChecksum = hdf.ErrChecksum

// I/O service modules.
type (
	// RocpandaConfig configures the client-server collective I/O.
	RocpandaConfig = rocpanda.Config
	// RocpandaClient is a compute rank's Rocpanda handle.
	RocpandaClient = rocpanda.Client
	// RochdfConfig configures individual I/O.
	RochdfConfig = rochdf.Config
	// Rochdf is one rank's individual-I/O service.
	Rochdf = rochdf.Rochdf
)

// RocpandaInit performs Rocpanda initialization (must be called by every
// world rank); server ranks run the service loop and return (nil, nil).
func RocpandaInit(ctx Ctx, cfg RocpandaConfig) (*RocpandaClient, error) {
	return rocpanda.Init(ctx, cfg)
}

// NewRochdf returns the individual-I/O service for the calling rank.
func NewRochdf(ctx Ctx, cfg RochdfConfig) *Rochdf { return rochdf.New(ctx, cfg) }

// Physics modules.
type (
	// Solver is a physics module stepping a window.
	Solver = physics.Solver
	// BurnModel selects Rocburn's 1-D model (APN, WSB, ZN).
	BurnModel = physics.BurnModel
)

// Burn models.
const (
	APN = physics.APN
	WSB = physics.WSB
	ZN  = physics.ZN
)

// Solver constructors.
var (
	NewRocflo  = physics.NewRocflo
	NewRocfrac = physics.NewRocfrac
	NewRocburn = physics.NewRocburn
	NewRocface = physics.NewRocface
)

// Integrated simulation driver.
type (
	// Config configures a rocman run.
	Config = rocman.Config
	// Report is a run's outcome (client rank 0).
	Report = rocman.Report
	// IOKind selects the I/O module of a run.
	IOKind = rocman.IOKind
	// WorkloadSpec describes a test case.
	WorkloadSpec = workload.Spec
)

// I/O module kinds.
const (
	IORochdf   = rocman.IORochdf
	IOTRochdf  = rocman.IOTRochdf
	IORocpanda = rocman.IORocpanda
)

// Workload builders.
var (
	LabScale    = workload.LabScale
	Scalability = workload.Scalability
)

// TraceRecorder collects per-rank phase intervals for timeline analysis
// (attach one to Config.Trace). Render with Timeline (ASCII), or export
// with WriteJSONL / WriteChromeTrace.
type TraceRecorder = trace.Recorder

// NewTrace returns an empty trace recorder.
func NewTrace() *TraceRecorder { return trace.New() }

// Observability: counters, gauges and latency histograms recorded by the
// I/O stack (attach a registry to Config.Metrics).
type (
	// MetricsRegistry collects named metrics from all ranks sharing it.
	MetricsRegistry = metrics.Registry
	// MetricsSnapshot is a point-in-time copy of a registry, JSON-ready.
	MetricsSnapshot = metrics.Snapshot
)

// NewMetrics returns an empty metrics registry.
func NewMetrics() *MetricsRegistry { return metrics.New() }

// Run executes the integrated simulation on the calling rank; every world
// rank must call it. The Report is returned on client rank 0.
func Run(ctx Ctx, cfg Config) (*Report, error) { return rocman.Run(ctx, cfg) }

// MigratePane moves a pane (mesh block + attribute data) between ranks —
// dynamic load balancing that leaves the I/O path untouched.
var MigratePane = rocman.MigratePane

// Rebalance redistributes a window's panes toward equal per-rank load.
var Rebalance = rocman.Rebalance

// Durable snapshots: commit manifests, generation-aware restore, and the
// deep scrub behind cmd/genxfsck. Every I/O module stages RHDF files
// under temporary names and commits a generation by writing its manifest
// last; restart walks generations newest-first and falls back past
// corrupt or uncommitted ones.
type (
	// SnapshotManifest is a generation's commit record.
	SnapshotManifest = snapshot.Manifest
	// SnapshotGeneration is one discovered snapshot base.
	SnapshotGeneration = snapshot.Generation
	// SnapshotOptions configures a RestoreLatest walk.
	SnapshotOptions = snapshot.Options
	// FsckReport is one generation's scrub outcome.
	FsckReport = snapshot.GenReport
)

// Snapshot durability helpers.
var (
	// CommitSnapshot writes the manifest commit record for a generation
	// (the I/O modules do this automatically at Sync).
	CommitSnapshot = snapshot.Commit
	// SnapshotGenerations discovers generations under a prefix, newest
	// first.
	SnapshotGenerations = snapshot.Generations
	// RestoreLatest restores from the newest verifiable generation,
	// falling back past damaged ones.
	RestoreLatest = snapshot.Restore
	// PruneSnapshots removes generations beyond a retention limit.
	PruneSnapshots = snapshot.Prune
	// Fsck deep-scrubs every generation under a prefix (payload CRCs
	// included); FsckFormat renders the reports, FsckClean summarizes.
	Fsck       = snapshot.Fsck
	FsckFormat = snapshot.Format
	FsckClean  = snapshot.Clean
)

// Classic Panda server-directed collective I/O for regular
// (BLOCK,...,BLOCK) distributed arrays — the baseline Rocpanda grew out
// of; GENx's irregular blocks are exactly what it cannot describe.
type (
	// PandaArraySpec describes a distributed global array.
	PandaArraySpec = panda.ArraySpec
	// PandaSubarray is one client's rectangular piece.
	PandaSubarray = panda.Subarray
)

// Panda collective operations and distribution helpers.
var (
	PandaWrite = panda.CollectiveWrite
	PandaRead  = panda.CollectiveRead
	PandaPiece = panda.ClientPiece
)

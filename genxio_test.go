package genxio_test

import (
	"fmt"
	"strings"
	"testing"

	"genxio"
	"genxio/internal/stats"
)

// TestFacadeEndToEnd exercises the public API the way a downstream user
// would: build a world, initialize Rocpanda, register panes through
// Roccom, write through the uniform interface, and read back.
func TestFacadeEndToEnd(t *testing.T) {
	fs := genxio.NewMemFS()
	world := genxio.NewLocalWorld(fs, 1)
	err := world.Run(3, func(ctx genxio.Ctx) error {
		client, err := genxio.RocpandaInit(ctx, genxio.RocpandaConfig{
			NumServers: 1, ActiveBuffering: true, Profile: genxio.NullProfile(),
		})
		if err != nil {
			return err
		}
		if client == nil {
			return nil
		}
		rc := genxio.NewRoccom()
		win, err := rc.NewWindow("fluid")
		if err != nil {
			return err
		}
		if err := win.NewAttribute(genxio.AttrSpec{Name: "p", Loc: genxio.NodeLoc, Type: genxio.F64, NComp: 1}); err != nil {
			return err
		}
		blocks, err := genxio.GenCylinder(genxio.CylinderSpec{
			RInner: 0.1, ROuter: 0.3, Length: 1,
			BR: 1, BT: 2, BZ: 1, NodesPerBlock: 60,
		}, 10*client.Comm().Rank()+1, stats.NewRNG(1))
		if err != nil {
			return err
		}
		for _, b := range blocks {
			if _, err := win.RegisterPane(b.ID, b); err != nil {
				return err
			}
		}
		if err := rc.LoadModule(client.Module(), "IO"); err != nil {
			return err
		}
		svc, err := genxio.LoadedIO(rc, "IO")
		if err != nil {
			return err
		}
		if err := svc.WriteAttribute("t/s0", win, "all", 0, 0); err != nil {
			return err
		}
		if err := svc.Sync(); err != nil {
			return err
		}
		if err := svc.ReadAttribute("t/s0", win, "all"); err != nil {
			return err
		}
		return rc.UnloadModule("IO")
	})
	if err != nil {
		t.Fatal(err)
	}
	names, _ := fs.List("t/")
	var rhdf []string
	for _, n := range names {
		if strings.HasSuffix(n, ".rhdf") {
			rhdf = append(rhdf, n)
		}
	}
	if len(rhdf) != 1 {
		t.Fatalf("files %v", names)
	}
}

// TestIntegratedRunOnBothBackends runs the same rocman configuration on
// the real backend and on the simulated Turing platform — the library's
// central portability claim.
func TestIntegratedRunOnBothBackends(t *testing.T) {
	spec := genxio.LabScale(0.05)
	spec.Steps = 8
	spec.SnapshotEvery = 4
	cfg := genxio.Config{
		Workload: spec,
		IO:       genxio.IORocpanda,
		Profile:  genxio.HDF4Profile(),
		Rocpanda: genxio.RocpandaConfig{NumServers: 1, ActiveBuffering: true},
	}

	var reports []*genxio.Report
	runOn := func(name string, world genxio.World) {
		var rep *genxio.Report
		err := world.Run(5, func(ctx genxio.Ctx) error {
			r, err := genxio.Run(ctx, cfg)
			if r != nil {
				rep = r
			}
			return err
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rep == nil {
			t.Fatalf("%s: no report", name)
		}
		reports = append(reports, rep)
	}
	runOn("real", genxio.NewLocalWorld(genxio.NewMemFS(), 1))
	runOn("turing", genxio.NewTuring(1))

	real, sim := reports[0], reports[1]
	if real.Snapshots != sim.Snapshots || real.BytesOut != sim.BytesOut {
		t.Fatalf("backends disagree on the work done: %+v vs %+v", real, sim)
	}
	if sim.ComputeTime <= 0 {
		t.Fatal("simulated backend charged no compute time")
	}
}

// TestPlatformPresetsExposed checks the calibrated presets are usable and
// overridable through the facade.
func TestPlatformPresetsExposed(t *testing.T) {
	tu, fr := genxio.Turing(), genxio.Frost()
	if tu.CPUsPerNode != 2 || fr.CPUsPerNode != 16 {
		t.Fatalf("presets wrong: %+v %+v", tu, fr)
	}
	if tu.NewFS == nil || fr.NewFS == nil {
		t.Fatal("presets missing filesystem factories")
	}
	// Example of customization: a quieter Turing.
	tu.NoiseFrac = 0
	if genxio.Turing().NoiseFrac == 0 {
		t.Fatal("preset mutation leaked into the factory")
	}
}

func ExampleRun() {
	fs := genxio.NewMemFS()
	world := genxio.NewLocalWorld(fs, 1)
	spec := genxio.Scalability(2, 32<<10)
	cfg := genxio.Config{
		Workload: spec,
		IO:       genxio.IOTRochdf,
		Profile:  genxio.NullProfile(),
	}
	var rep *genxio.Report
	if err := world.Run(2, func(ctx genxio.Ctx) error {
		r, err := genxio.Run(ctx, cfg)
		if r != nil {
			rep = r
		}
		return err
	}); err != nil {
		panic(err)
	}
	fmt.Println(rep.Snapshots, "snapshots from", rep.NumClients, "clients")
	// Output: 3 snapshots from 2 clients
}

// Command comparebench is the CI bench-regression gate: it diffs a fresh
// genxbench JSON against the committed baseline and fails (exit 1) when a
// module's visible_write_seconds or visible_read_seconds (the restart
// cost) grows, its throughput_mbps shrinks, or its bytes written to disk
// (rocpanda.server.bytes_written, falling back to hdf.bytes_stored for
// the serverless modules) grows, by more than the tolerance. The bytes
// gate is what keeps the delta-snapshot entries honest: a chain that
// silently ships clean panes again shows up as byte growth long before it
// costs visible seconds. Entries that ran the unified I/O scheduler are
// additionally gated on iosched.write.overlap_seconds: background-drain
// work that stops overlapping with computation (the scheduler degenerating
// to a synchronous drain) shows up as overlap shrink before it shows up as
// visible seconds. The simulated platform is deterministic in its
// seed, so drift beyond the tolerance is a code change, not noise — the
// tolerance only absorbs intentional small cost-model adjustments.
//
//	go run ./ci/comparebench -baseline BENCH_genxbench.json -fresh BENCH_fresh.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// benchFile is the subset of the genxbench JSON the gate reads; unknown
// fields (metrics snapshots, options) are ignored so the gate survives
// additive schema changes.
type benchFile struct {
	Schema string `json:"schema"`
	IOs    []struct {
		IO             string  `json:"io"`
		VisibleWrite   float64 `json:"visible_write_seconds"`
		VisibleRead    float64 `json:"visible_read_seconds"`
		SyncWait       float64 `json:"sync_wait_seconds"`
		ThroughputMBps float64 `json:"throughput_mbps"`
		Metrics        struct {
			Counters   map[string]int64 `json:"counters"`
			Histograms map[string]struct {
				Count int64   `json:"count"`
				Sum   float64 `json:"sum"`
			} `json:"histograms"`
		} `json:"metrics"`
	} `json:"ios"`
}

// overlapSeconds is the gated scheduler-overlap sum: seconds of write-class
// work the unified scheduler ran concurrently with computation. Zero on
// entries that never ran an async engine; those skip the gate.
const overlapMetric = "iosched.write.overlap_seconds"

// bytesWritten is the gated on-disk byte count: the Rocpanda server drain
// counter when the module has servers, the store-level counter otherwise.
func bytesWritten(counters map[string]int64) int64 {
	if b := counters["rocpanda.server.bytes_written"]; b > 0 {
		return b
	}
	return counters["hdf.bytes_stored"]
}

func load(path string) (*benchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f benchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(f.IOs) == 0 {
		return nil, fmt.Errorf("%s: no ios entries", path)
	}
	return &f, nil
}

func main() {
	baseline := flag.String("baseline", "BENCH_genxbench.json", "committed baseline JSON")
	fresh := flag.String("fresh", "BENCH_fresh.json", "freshly generated JSON")
	tol := flag.Float64("tolerance", 0.10, "allowed relative regression per metric")
	flag.Parse()

	base, err := load(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "comparebench:", err)
		os.Exit(2)
	}
	cur, err := load(*fresh)
	if err != nil {
		fmt.Fprintln(os.Stderr, "comparebench:", err)
		os.Exit(2)
	}
	if base.Schema != cur.Schema {
		fmt.Fprintf(os.Stderr, "comparebench: schema changed %q -> %q; refresh the committed baseline in the same PR\n",
			base.Schema, cur.Schema)
		os.Exit(1)
	}

	curByIO := make(map[string]int, len(cur.IOs))
	for i, io := range cur.IOs {
		curByIO[io.IO] = i
	}
	bad := false
	fmt.Printf("%-16s %22s %22s %22s %24s %22s\n", "module", "visible_write_seconds", "visible_read_seconds", "throughput_mbps", "bytes_written", "sched_overlap_seconds")
	for _, b := range base.IOs {
		i, ok := curByIO[b.IO]
		if !ok {
			fmt.Printf("%-16s MISSING from fresh bench\n", b.IO)
			bad = true
			continue
		}
		c := cur.IOs[i]
		bw, cw := bytesWritten(b.Metrics.Counters), bytesWritten(c.Metrics.Counters)
		bov, cov := b.Metrics.Histograms[overlapMetric].Sum, c.Metrics.Histograms[overlapMetric].Sum
		vwBad := b.VisibleWrite > 0 && c.VisibleWrite > b.VisibleWrite*(1+*tol)
		vrBad := b.VisibleRead > 0 && c.VisibleRead > b.VisibleRead*(1+*tol)
		tpBad := b.ThroughputMBps > 0 && c.ThroughputMBps < b.ThroughputMBps*(1-*tol)
		bwBad := bw > 0 && float64(cw) > float64(bw)*(1+*tol)
		ovBad := bov > 0 && cov < bov*(1-*tol)
		mark := func(regressed bool) string {
			if regressed {
				return " REGRESSED"
			}
			return ""
		}
		fmt.Printf("%-16s %10.4f -> %8.4f%s %10.4f -> %8.4f%s %9.1f -> %8.1f%s %10d -> %10d%s %9.4f -> %8.4f%s\n",
			b.IO, b.VisibleWrite, c.VisibleWrite, mark(vwBad),
			b.VisibleRead, c.VisibleRead, mark(vrBad),
			b.ThroughputMBps, c.ThroughputMBps, mark(tpBad),
			bw, cw, mark(bwBad),
			bov, cov, mark(ovBad))
		bad = bad || vwBad || vrBad || tpBad || bwBad || ovBad
	}
	if bad {
		fmt.Fprintf(os.Stderr, "comparebench: performance regressed beyond %.0f%% of the committed baseline\n", *tol*100)
		os.Exit(1)
	}
	fmt.Println("comparebench: within tolerance of the committed baseline")
}

package genxio_test

// Build-and-run smoke tests for the repository's entry points: every
// binary under examples/ and cmd/ must compile, and the quickstart example
// must run to completion and verify its own restart.

import (
	"context"
	"os/exec"
	"strings"
	"testing"
	"time"
)

// goTool locates the go binary or skips the test (the library itself never
// shells out; only this smoke test does).
func goTool(t *testing.T) string {
	t.Helper()
	path, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go binary not in PATH")
	}
	return path
}

func TestBinariesBuild(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	cmd := exec.CommandContext(ctx, goTool(t), "build", "./examples/...", "./cmd/...")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
}

func TestQuickstartRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	cmd := exec.CommandContext(ctx, goTool(t), "run", "./examples/quickstart")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("quickstart: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "restart verified OK") {
		t.Fatalf("quickstart did not verify its restart:\n%s", out)
	}
}

// Command rocketeer is the post-processing companion (the paper's
// visualization tool): it inspects RHDF snapshot files — listing datasets,
// dumping attributes and data, and rendering an ASCII cross-section of a
// node-centered field across all panes of a window, the way Figure 1(b)'s
// cutaway view is built from the same files.
//
// Examples:
//
//	rocketeer -dir genx-out -file run/snap000020_s000.rhdf
//	rocketeer -dir genx-out -file run/snap000020_s000.rhdf -dump /fluid/pane000001/pressure
//	rocketeer -dir genx-out -file run/snap000020_s000.rhdf -render pressure -window fluid
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"

	"genxio"
	"genxio/internal/hdf"
	"genxio/internal/roccom"
	"genxio/internal/rt"
	"genxio/internal/viz"
)

func main() {
	dir := flag.String("dir", ".", "root directory")
	file := flag.String("file", "", "RHDF file (relative to -dir)")
	dump := flag.String("dump", "", "dataset to dump (name)")
	render := flag.String("render", "", "node attribute to render as an r-z cross section")
	vtk := flag.String("vtk", "", "export a window as a legacy VTK file to this host path")
	window := flag.String("window", "fluid", "window for -render")
	width := flag.Int("width", 72, "render width in characters")
	height := flag.Int("height", 24, "render height in characters")
	flag.Parse()
	if *file == "" {
		fmt.Fprintln(os.Stderr, "rocketeer: -file is required")
		os.Exit(2)
	}

	fs, err := rt.NewOSFS(*dir)
	if err != nil {
		fatal(err)
	}
	r, err := genxio.OpenHDF(fs, *file, rt.NewWallClock(), genxio.NullProfile())
	if err != nil {
		fatal(err)
	}
	defer r.Close()

	switch {
	case *dump != "":
		dumpDataset(r, *dump)
	case *render != "":
		renderField(r, *window, *render, *width, *height)
	case *vtk != "":
		out, err := os.Create(*vtk)
		if err != nil {
			fatal(err)
		}
		if err := viz.WriteVTK(out, r, *window); err != nil {
			out.Close()
			fatal(err)
		}
		if err := out.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s window %q as VTK to %s\n", *file, *window, *vtk)
	default:
		list(r)
	}
}

func list(r *hdf.Reader) {
	fmt.Printf("%d datasets\n", r.NumDatasets())
	type paneInfo struct {
		attrs []string
		bytes int64
	}
	panes := map[string]*paneInfo{}
	var order []string
	compressed := 0
	for _, d := range r.Datasets() {
		if d.Compressed() {
			compressed++
		}
		win, id, attr, ok := roccom.ParseDatasetName(d.Name)
		if !ok {
			fmt.Printf("  %-40s %-8s dims=%v %6d B", d.Name, d.Type, d.Dims, d.NumBytes())
			for _, a := range d.Attrs {
				fmt.Printf(" %s=%v", a.Name, attrValue(a))
			}
			fmt.Println()
			continue
		}
		key := fmt.Sprintf("%s/pane%06d", win, id)
		p, seen := panes[key]
		if !seen {
			p = &paneInfo{}
			panes[key] = p
			order = append(order, key)
		}
		p.attrs = append(p.attrs, attr)
		p.bytes += d.NumBytes()
	}
	sort.Strings(order)
	for _, key := range order {
		p := panes[key]
		fmt.Printf("  %-28s %8.1f KB  [%s]\n", key, float64(p.bytes)/1024, strings.Join(p.attrs, " "))
	}
	if compressed > 0 {
		fmt.Printf("%d of %d datasets deflate-compressed\n", compressed, r.NumDatasets())
	}
}

func attrValue(a hdf.Attr) interface{} {
	switch a.Type {
	case hdf.U8:
		return a.Str()
	case hdf.F64:
		return a.F64s()
	case hdf.I32:
		return a.I32s()
	}
	return fmt.Sprintf("%d bytes", len(a.Data))
}

func dumpDataset(r *hdf.Reader, name string) {
	ds, ok := r.Lookup(name)
	if !ok {
		fatal(fmt.Errorf("no dataset %q", name))
	}
	fmt.Printf("%s: %s dims=%v (%d bytes)\n", ds.Name, ds.Type, ds.Dims, ds.NumBytes())
	for _, a := range ds.Attrs {
		fmt.Printf("  @%s = %v\n", a.Name, attrValue(a))
	}
	raw, err := r.ReadData(ds)
	if err != nil {
		fatal(err)
	}
	const maxShown = 24
	switch ds.Type {
	case hdf.F64:
		vals := hdf.BytesF64(raw)
		n := len(vals)
		if n > maxShown {
			vals = vals[:maxShown]
		}
		fmt.Printf("  data: %.6g", vals)
		if n > maxShown {
			fmt.Printf(" ... (%d values)", n)
		}
		fmt.Println()
	case hdf.I32:
		vals := hdf.BytesI32(raw)
		n := len(vals)
		if n > maxShown {
			vals = vals[:maxShown]
		}
		fmt.Printf("  data: %d", vals)
		if n > maxShown {
			fmt.Printf(" ... (%d values)", n)
		}
		fmt.Println()
	default:
		fmt.Printf("  data: %d raw bytes\n", len(raw))
	}
}

// renderField projects every pane's nodes of a node-centered attribute
// onto the r-z plane and prints an ASCII intensity map — a cutaway section
// of the rocket like Figure 1(b).
func renderField(r *hdf.Reader, window, attr string, width, height int) {
	type sample struct{ rr, z, v float64 }
	var samples []sample
	for _, d := range r.Datasets() {
		win, id, a, ok := roccom.ParseDatasetName(d.Name)
		if !ok || win != window || a != "_coords" {
			continue
		}
		coordRaw, err := r.ReadData(d)
		if err != nil {
			fatal(err)
		}
		coords := hdf.BytesF64(coordRaw)
		fd, ok := r.Lookup(roccom.PanePrefix(window, id) + attr)
		if !ok {
			fatal(fmt.Errorf("pane %d has no attribute %q", id, attr))
		}
		ncomp := int(fd.Dims[len(fd.Dims)-1])
		fieldRaw, err := r.ReadData(fd)
		if err != nil {
			fatal(err)
		}
		field := hdf.BytesF64(fieldRaw)
		for n := 0; 3*n+2 < len(coords); n++ {
			x, y, z := coords[3*n], coords[3*n+1], coords[3*n+2]
			var v float64
			for c := 0; c < ncomp; c++ {
				v += field[n*ncomp+c] * field[n*ncomp+c]
			}
			v = math.Sqrt(v)
			samples = append(samples, sample{rr: math.Hypot(x, y), z: z, v: v})
		}
	}
	if len(samples) == 0 {
		fatal(fmt.Errorf("window %q attribute %q: nothing to render", window, attr))
	}
	minR, maxR := samples[0].rr, samples[0].rr
	minZ, maxZ := samples[0].z, samples[0].z
	minV, maxV := samples[0].v, samples[0].v
	for _, s := range samples {
		minR, maxR = math.Min(minR, s.rr), math.Max(maxR, s.rr)
		minZ, maxZ = math.Min(minZ, s.z), math.Max(maxZ, s.z)
		minV, maxV = math.Min(minV, s.v), math.Max(maxV, s.v)
	}
	grid := make([][]float64, height)
	hits := make([][]int, height)
	for i := range grid {
		grid[i] = make([]float64, width)
		hits[i] = make([]int, width)
	}
	for _, s := range samples {
		col := int(float64(width-1) * (s.z - minZ) / math.Max(maxZ-minZ, 1e-12))
		row := int(float64(height-1) * (s.rr - minR) / math.Max(maxR-minR, 1e-12))
		grid[row][col] += s.v
		hits[row][col]++
	}
	shades := []byte(" .:-=+*#%@")
	fmt.Printf("%s/%s: r-z cross section, %d nodes; range [%.4g, %.4g]\n",
		window, attr, len(samples), minV, maxV)
	for row := height - 1; row >= 0; row-- {
		line := make([]byte, width)
		for col := 0; col < width; col++ {
			if hits[row][col] == 0 {
				line[col] = ' '
				continue
			}
			v := grid[row][col] / float64(hits[row][col])
			t := 0.0
			if maxV > minV {
				t = (v - minV) / (maxV - minV)
			}
			idx := int(t * float64(len(shades)-1))
			line[col] = shades[idx]
		}
		fmt.Printf("r %s\n", line)
	}
	fmt.Printf("  %s z\n", strings.Repeat("-", width))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rocketeer:", err)
	os.Exit(1)
}

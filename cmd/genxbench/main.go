// Command genxbench regenerates the paper's evaluation (Section 7) on the
// simulated platforms: Table 1, Figure 3(a), Figure 3(b), and the design
// ablations. Each experiment prints paper-style rows with the paper's
// reported values alongside.
//
// Usage:
//
//	genxbench -exp table1 [-scale 1.0] [-runs 5]
//	genxbench -exp fig3a  [-maxprocs 480] [-runs 3]
//	genxbench -exp fig3b  [-maxnodes 32] [-runs 3]
//	genxbench -exp ablations [-scale 0.25]
//	genxbench -exp bench [-json] [-out BENCH_genxbench.json] [-trace jsonl|chrome]
//	genxbench -exp all
//
// The bench experiment runs one small instrumented run per I/O module
// (Rocpanda twice: synchronous drain and the AsyncDrain background
// writer pool) and, with -json, emits the machine-readable
// BENCH_genxbench.json (metrics snapshots, per-phase visible-I/O and
// drain costs); -trace additionally exports each module's phase trace.
// The committed BENCH_genxbench.json is the CI perf baseline: refresh it
// with this command in any PR that intentionally changes bench numbers
// (ci/comparebench gates regressions against it).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"genxio/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1 | fig3a | fig3b | ablations | bench | all")
	scale := flag.Float64("scale", 1.0, "lab-scale workload scale in (0,1]")
	runs := flag.Int("runs", 0, "runs per configuration (0 = experiment default)")
	maxProcs := flag.Int("maxprocs", 480, "largest compute-processor count for fig3a")
	maxNodes := flag.Int("maxnodes", 32, "largest node count for fig3b")
	benchSeed := flag.Uint64("seed", 1, "bench: platform seed (output is deterministic in it)")
	jsonOut := flag.Bool("json", false, "bench: also write the JSON result")
	outPath := flag.String("out", "BENCH_genxbench.json", "bench: JSON output path")
	traceFmt := flag.String("trace", "", "bench: export per-module phase traces: jsonl | chrome")
	flag.Parse()

	t0 := time.Now()
	run := func(name string, f func() (interface{ Format() string }, error)) {
		fmt.Printf("=== %s ===\n", name)
		res, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(res.Format())
	}

	known := map[string]bool{"all": true, "table1": true, "fig3a": true, "fig3b": true, "ablations": true, "bench": true}
	if !known[*exp] {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}

	all := *exp == "all"
	if all || *exp == "table1" {
		run("table1", func() (interface{ Format() string }, error) {
			return experiments.RunTable1(experiments.Table1Opts{Scale: *scale, Runs: *runs})
		})
	}
	if all || *exp == "fig3a" {
		run("fig3a", func() (interface{ Format() string }, error) {
			var procs []int
			for _, p := range []int{1, 2, 4, 8, 15, 30, 60, 120, 240, 480} {
				if p <= *maxProcs {
					procs = append(procs, p)
				}
			}
			return experiments.RunFig3a(experiments.Fig3aOpts{Procs: procs, Runs: *runs})
		})
	}
	if all || *exp == "fig3b" {
		run("fig3b", func() (interface{ Format() string }, error) {
			var nodes []int
			for _, n := range []int{1, 2, 4, 8, 16, 32} {
				if n <= *maxNodes {
					nodes = append(nodes, n)
				}
			}
			return experiments.RunFig3b(experiments.Fig3bOpts{Nodes: nodes, Runs: *runs})
		})
	}
	if all || *exp == "ablations" {
		run("ablations", func() (interface{ Format() string }, error) {
			s := *scale
			if s >= 1 {
				s = 0.25 // ablations do not need the full-size mesh
			}
			return experiments.RunAblations(experiments.AblationOpts{Scale: s})
		})
	}
	if all || *exp == "bench" {
		run("bench", func() (interface{ Format() string }, error) {
			s := *scale
			if s >= 1 {
				s = 0.1 // the observability bench is a smoke-sized run
			}
			res, err := experiments.RunBench(experiments.BenchOpts{Scale: s, Seed: *benchSeed})
			if err != nil {
				return nil, err
			}
			if *jsonOut {
				f, err := os.Create(*outPath)
				if err != nil {
					return nil, err
				}
				if err := res.WriteJSON(f); err != nil {
					f.Close()
					return nil, err
				}
				if err := f.Close(); err != nil {
					return nil, err
				}
				fmt.Printf("wrote %s\n", *outPath)
			}
			if *traceFmt != "" {
				ext := map[string]string{"jsonl": "jsonl", "chrome": "trace.json"}[*traceFmt]
				if ext == "" {
					return nil, fmt.Errorf("unknown -trace format %q (want jsonl or chrome)", *traceFmt)
				}
				for _, io := range res.IOs {
					name := fmt.Sprintf("BENCH_trace_%s.%s", io.IO, ext)
					f, err := os.Create(name)
					if err != nil {
						return nil, err
					}
					if err := io.Trace.WriteFile(f, *traceFmt); err != nil {
						f.Close()
						return nil, err
					}
					if err := f.Close(); err != nil {
						return nil, err
					}
					fmt.Printf("wrote %s\n", name)
				}
			}
			return res, nil
		})
	}
	fmt.Printf("total wall time: %v\n", time.Since(t0))
}

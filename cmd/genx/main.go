// Command genx runs the integrated rocket simulation for real: goroutine
// ranks, real physics arithmetic, and real RHDF snapshot files on the host
// filesystem — the GEN2.5 stack of Figure 1(a) with a selectable I/O
// module (Rocpanda collective I/O, Rochdf individual I/O, or the
// multi-threaded T-Rochdf).
//
// Examples:
//
//	genx -n 8 -io rocpanda -servers 1 -scale 0.05 -out /tmp/genx
//	genx -n 4 -io trochdf -steps 40 -snap-every 10 -out /tmp/genx
//	genx -n 8 -io rocpanda -servers 2 -restart /tmp/genx/run/snap000020
//	genx -n 8 -io rocpanda -servers 2 -restart-latest -out /tmp/genx
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"genxio"
)

func main() {
	n := flag.Int("n", 8, "total number of ranks (incl. Rocpanda servers)")
	io := flag.String("io", "rocpanda", "I/O module: rocpanda | rochdf | trochdf")
	servers := flag.Int("servers", 1, "Rocpanda I/O server count")
	async := flag.Bool("async", false, "Rocpanda: drain buffers on background writer tasks (overlap writeback with computation)")
	pread := flag.Bool("pread", false, "Rocpanda: serve restart reads from a parallel read-worker pool (overlap disk reads with shipping)")
	replicate := flag.Int("replicate", 1, "Rocpanda: copies of each pane per snapshot generation; R>=2 survives file loss without a generation fallback")
	deltaSnap := flag.Bool("delta", false, "Rocpanda: incremental snapshots — ship only panes dirtied since their last ship, committing delta generations chained to the previous one")
	fullEvery := flag.Int("full-every", 4, "Rocpanda: with -delta, force a full snapshot every k generations (bounds chain depth; must be >= 1)")
	steps := flag.Int("steps", 20, "timesteps")
	snapEvery := flag.Int("snap-every", 10, "snapshot interval in steps")
	scale := flag.Float64("scale", 0.05, "lab-scale mesh scale in (0,1]")
	outDir := flag.String("out", "genx-out", "host directory for snapshots")
	restart := flag.String("restart", "", "snapshot base to restart from (e.g. run/snap000020)")
	restartLatest := flag.Bool("restart-latest", false, "restart from the newest verifiable snapshot generation, falling back past damaged or uncommitted ones")
	retain := flag.Int("retain", 0, "keep only the newest k committed snapshot generations (0 = keep all)")
	burn := flag.String("burn", "apn", "burn model: apn | wsb | zn")
	refine := flag.Int("refine", 0, "split largest fluid block every k steps (fluid-only)")
	rebalance := flag.Int("rebalance", 0, "migrate panes toward equal load every k steps (fluid-only)")
	compress := flag.Bool("compress", false, "deflate-compress snapshot datasets")
	fluid := flag.String("fluid", "rocflo", "gas dynamics solver: rocflo | rocflu")
	solid := flag.String("solid", "rocfrac", "structural solver: rocfrac | rocsolid")
	flag.Parse()

	fs, err := genxio.NewOSFS(*outDir)
	if err != nil {
		fatal(err)
	}

	spec := genxio.LabScale(*scale)
	spec.Steps = *steps
	spec.SnapshotEvery = *snapEvery
	// Real runs do all arithmetic; the charged costs are irrelevant on
	// the wall clock but keep reports meaningful.
	reg := genxio.NewMetrics()
	cfg := genxio.Config{
		Workload:          spec,
		IO:                genxio.IOKind(*io),
		Profile:           genxio.NullProfile(),
		OutputDir:         "run",
		RestartFrom:       *restart,
		RestartFromLatest: *restartLatest,
		RetainGenerations: *retain,
		Metrics:           reg,
		RefineEvery:       *refine,
		RebalanceEvery:    *rebalance,
		FluidOnly:         *refine > 0 || *rebalance > 0,
		Compress:          *compress,
		FluidSolver:       *fluid,
		SolidSolver:       *solid,
		Rocpanda: genxio.RocpandaConfig{
			NumServers:        *servers,
			ActiveBuffering:   true,
			AsyncDrain:        *async,
			DrainWriters:      2,
			ParallelRead:      *pread,
			ReplicationFactor: *replicate,
			DeltaSnapshots:    *deltaSnap,
			FullEvery:         *fullEvery,
		},
	}
	// Fail bad flag combinations with a typed message instead of letting
	// the library silently clamp them.
	if err := cfg.Rocpanda.Validate(); err != nil {
		fatal(err)
	}
	switch *burn {
	case "apn":
		cfg.BurnModel = genxio.APN
	case "wsb":
		cfg.BurnModel = genxio.WSB
	case "zn":
		cfg.BurnModel = genxio.ZN
	default:
		fatal(fmt.Errorf("unknown burn model %q", *burn))
	}

	fmt.Printf("GENx: %d ranks, io=%s, %d steps (snapshot every %d), mesh scale %.2f\n",
		*n, *io, *steps, *snapEvery, *scale)
	t0 := time.Now()
	var rep *genxio.Report
	world := genxio.NewLocalWorld(fs, 1)
	err = world.Run(*n, func(ctx genxio.Ctx) error {
		r, err := genxio.Run(ctx, cfg)
		if r != nil {
			rep = r
		}
		return err
	})
	if err != nil {
		fatal(err)
	}
	wall := time.Since(t0)

	fmt.Printf("\ncompleted in %v\n", wall)
	fmt.Printf("  clients %d, servers %d, steps %d, snapshots %d\n",
		rep.NumClients, rep.NumServers, rep.Steps, rep.Snapshots)
	fmt.Printf("  payload to I/O: %.1f MB\n", float64(rep.BytesOut)/1e6)
	if *deltaSnap {
		s := reg.Snapshot()
		fmt.Printf("  delta: %d dirty panes shipped, %d clean panes skipped, %.1f MB saved\n",
			s.Counters["rocpanda.write.dirty_panes"],
			s.Counters["rocpanda.write.clean_panes"],
			float64(s.Counters["rocpanda.write.delta_bytes_saved"])/1e6)
		if d := s.Gauges["rocpanda.restart.chain_depth"]; d > 0 {
			fmt.Printf("  delta: restart served a chain of depth %.0f\n", d)
		}
	}
	if *restartLatest {
		// Every client takes the agreed restore path, so the shared
		// registry carries clients× the per-rank counts.
		s := reg.Snapshot()
		nc := int64(rep.NumClients)
		fmt.Printf("  restart: scanned %d generations, %d fallbacks, %d checksum failures\n",
			s.Counters["rocpanda.restart.generations_scanned"]/nc,
			s.Counters["rocpanda.restart.fallbacks"]/nc,
			s.Counters["hdf.checksum_failures"])
		fmt.Printf("  catalog: %d indexed, %d scan fallbacks, %d files opened, %.1f MB read\n",
			s.Counters["rocpanda.restart.catalog_hits"],
			s.Counters["rocpanda.restart.catalog_fallbacks"],
			s.Counters["rocpanda.restart.files_opened"],
			float64(s.Counters["rocpanda.restart.bytes_read"])/1e6)
		// Server-side totals, not per-client: a pane is repaired once for
		// everyone.
		if rr, rp := s.Counters["rocpanda.restart.replica_reads"], s.Counters["rocpanda.restart.repaired_panes"]; rr > 0 || rp > 0 || *replicate > 1 {
			fmt.Printf("  replicas: %d panes repaired, %d served from replica copies\n", rp, rr)
		}
		if *pread {
			fmt.Printf("  read pool: queue peak %.0f, %d backpressure waits, %d errors, %.1f MB wasted\n",
				s.Gauges["rocpanda.read.queue_depth"],
				s.Counters["rocpanda.read.backpressure_waits"],
				s.Counters["rocpanda.read.errors"],
				float64(s.Counters["rocpanda.restart.bytes_wasted"])/1e6)
		}
	}
	names, err := fs.List("run/")
	if err != nil {
		fatal(err)
	}
	fmt.Printf("  %d snapshot files under %s/run/:\n", len(names), *outDir)
	for _, name := range names {
		sz, _ := fs.Stat(name)
		fmt.Printf("    %-40s %8.2f MB\n", name, float64(sz)/1e6)
	}
	fmt.Printf("\ninspect them with: rocketeer -dir %s -file run/<name>\n", *outDir)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "genx:", err)
	os.Exit(1)
}

package main

import (
	"fmt"
	"testing"

	"genxio/internal/catalog"
	"genxio/internal/hdf"
	"genxio/internal/roccom"
	"genxio/internal/rt"
	"genxio/internal/snapshot"
)

func writeGen(t *testing.T, fsys rt.FS, base string, panes []int) {
	t.Helper()
	w, err := hdf.Create(fsys, base+"_s000.rhdf", rt.NewWallClock(), hdf.NullProfile())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range panes {
		ds := roccom.PanePrefix("fluid", id) + "p"
		if err := w.CreateDataset(ds, hdf.F64, []int64{2}, nil,
			hdf.F64Bytes([]float64{1, 2})); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestQuickScrubCatalogMissing: the quick pass must report an absent pinned
// catalog blob as CATALOG-MISSING (catalog state "missing"), not as the
// generic mismatch, and exit-code it as corrupt.
func TestQuickScrubCatalogMissing(t *testing.T) {
	fsys := rt.NewMemFS()
	writeGen(t, fsys, "out/snap000000", []int{1, 2})
	if _, err := snapshot.Commit(fsys, "out/snap000000", 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := fsys.Remove("out/snap000000" + catalog.Suffix); err != nil {
		t.Fatal(err)
	}
	reports, err := quickScrub(fsys, "out/")
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 1 || reports[0].Verdict != snapshot.VerdictCatalogMissing {
		t.Fatalf("reports %+v, want one CATALOG-MISSING", reports)
	}
	if reports[0].Catalog != "missing" {
		t.Fatalf("catalog state %q, want missing", reports[0].Catalog)
	}
	if code := exitCode(reports); code != exitCorrupt {
		t.Fatalf("exit code %d, want %d", code, exitCorrupt)
	}
}

// TestQuickScrubChainBroken: the quick pass runs the chain verdicts too —
// a clean delta over a damaged base is CHAIN-BROKEN even without the
// payload scrub.
func TestQuickScrubChainBroken(t *testing.T) {
	fsys := rt.NewMemFS()
	writeGen(t, fsys, "out/snap000000", []int{1, 2})
	if _, err := snapshot.Commit(fsys, "out/snap000000", 0, 0); err != nil {
		t.Fatal(err)
	}
	writeGen(t, fsys, "out/snap000010", []int{2})
	if _, err := snapshot.CommitChained(fsys, "out/snap000010", 10, 1,
		&snapshot.ChainInfo{Base: "out/snap000000", Depth: 1,
			Panes: map[string][]int{"fluid": {1, 2}}}); err != nil {
		t.Fatal(err)
	}
	if err := fsys.Remove("out/snap000000" + catalog.Suffix); err != nil {
		t.Fatal(err)
	}
	reports, err := quickScrub(fsys, "out/")
	if err != nil {
		t.Fatal(err)
	}
	verdicts := map[string]string{}
	for _, r := range reports {
		verdicts[r.Base] = r.Verdict
	}
	if verdicts["out/snap000000"] != snapshot.VerdictCatalogMissing {
		t.Fatalf("base verdict %q, want CATALOG-MISSING", verdicts["out/snap000000"])
	}
	if verdicts["out/snap000010"] != snapshot.VerdictChainBroken {
		t.Fatalf("delta verdict %q, want CHAIN-BROKEN", verdicts["out/snap000010"])
	}
	if code := exitCode(reports); code != exitCorrupt {
		t.Fatalf("exit code %d, want %d", code, exitCorrupt)
	}
}

// TestExitCodeSeverity: worst verdict wins, chain and catalog verdicts rank
// with corrupt.
func TestExitCodeSeverity(t *testing.T) {
	cases := []struct {
		verdicts []string
		want     int
	}{
		{[]string{snapshot.VerdictOK, snapshot.VerdictRepaired}, exitOK},
		{[]string{snapshot.VerdictOK, snapshot.VerdictUncommitted}, exitUncommitted},
		{[]string{snapshot.VerdictUncommitted, snapshot.VerdictCorrupt}, exitCorrupt},
		{[]string{snapshot.VerdictOK, snapshot.VerdictCatalogMismatch}, exitCorrupt},
		{[]string{snapshot.VerdictOK, snapshot.VerdictCatalogMissing}, exitCorrupt},
		{[]string{snapshot.VerdictOK, snapshot.VerdictChainBroken}, exitCorrupt},
	}
	for _, c := range cases {
		var reports []snapshot.GenReport
		for i, v := range c.verdicts {
			reports = append(reports, snapshot.GenReport{Base: fmt.Sprintf("g%d", i), Verdict: v})
		}
		if got := exitCode(reports); got != c.want {
			t.Fatalf("verdicts %v -> exit %d, want %d", c.verdicts, got, c.want)
		}
	}
}

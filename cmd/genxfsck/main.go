// Command genxfsck scrubs a directory of snapshot generations: for every
// generation it verifies the commit manifest, each file's size and
// directory checksum, and — unless -quick — reads every dataset back so
// the per-dataset CRC32Cs cover the payload bytes. One flipped bit
// anywhere in a committed file is reported against that file.
//
// Usage:
//
//	genxfsck [-root DIR] [-prefix PFX] [-json] [-quick] [-repair]
//
// The scrub walks the generations under -root joined with -prefix (for
// example -root out -prefix "" scrubs out/snap*).
//
// -repair rebuilds corrupt or missing files of replicated generations
// from verified surviving copies (byte-identical replicas pinned by the
// manifest), staging each rebuild to a temporary file and renaming it
// into place; a damaged catalog blob is re-derived from the repaired
// files and installed only if it matches the manifest's pinned size and
// CRC. Generations fully restored this way report the verdict REPAIRED
// and count as clean. -repair implies the full payload scrub and cannot
// be combined with -quick.
//
// Verdicts, and the exit status encoding the worst one found:
//
//	OK                every manifested byte verifies              exit 0
//	REPAIRED          damage rebuilt from replicas (-repair)      exit 0
//	UNCOMMITTED       no manifest; crash residue the restart
//	                  path already ignores                        exit 1
//	CORRUPT           a manifested file is damaged or missing     exit 2
//	CATALOG-MISMATCH  the pinned catalog blob is present but
//	                  does not match the manifest reference       exit 2
//	CATALOG-MISSING   the manifest pins a catalog blob that is
//	                  absent from disk                            exit 2
//	CHAIN-BROKEN      the generation's own files are clean but a
//	                  link of its delta chain cannot restore      exit 2
//
//	0  every committed generation verifies (OK / REPAIRED)
//	1  only UNCOMMITTED generations are unclean
//	2  some generation is CORRUPT, CATALOG-MISMATCH, CATALOG-MISSING
//	   or CHAIN-BROKEN (and, with -repair, could not be fully repaired)
//	3  usage or I/O errors
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"

	"genxio/internal/hdf"
	"genxio/internal/rt"
	"genxio/internal/snapshot"
)

// Exit codes, worst verdict wins.
const (
	exitOK          = 0
	exitUncommitted = 1
	exitCorrupt     = 2
	exitUsage       = 3
)

func main() {
	root := flag.String("root", ".", "directory holding the snapshot files")
	prefix := flag.String("prefix", "", "scrub only generations whose base starts with this prefix (relative to -root)")
	jsonOut := flag.Bool("json", false, "emit the scrub report as JSON")
	quick := flag.Bool("quick", false, "verify manifests, sizes and directory checksums only; skip the payload scrub")
	repair := flag.Bool("repair", false, "rebuild corrupt or missing files from verified replicas before reporting")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "genxfsck: unexpected arguments %v\n", flag.Args())
		os.Exit(exitUsage)
	}
	if *repair && *quick {
		fmt.Fprintln(os.Stderr, "genxfsck: -repair needs the full payload scrub; drop -quick")
		os.Exit(exitUsage)
	}

	fsys, err := rt.NewOSFS(*root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "genxfsck: %v\n", err)
		os.Exit(exitUsage)
	}

	var reports []snapshot.GenReport
	switch {
	case *repair:
		reports, err = snapshot.Repair(fsys, *prefix)
	case *quick:
		reports, err = quickScrub(fsys, *prefix)
	default:
		reports, err = snapshot.Fsck(fsys, *prefix)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "genxfsck: %v\n", err)
		os.Exit(exitUsage)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			fmt.Fprintf(os.Stderr, "genxfsck: %v\n", err)
			os.Exit(exitUsage)
		}
	} else {
		fmt.Print(snapshot.Format(reports))
	}
	if len(reports) == 0 {
		fmt.Fprintf(os.Stderr, "genxfsck: no snapshot generations under %s\n", *root)
	}
	os.Exit(exitCode(reports))
}

// exitCode maps the reports to the documented severity scheme: corrupt
// beats uncommitted beats clean.
func exitCode(reports []snapshot.GenReport) int {
	code := exitOK
	for _, rep := range reports {
		switch rep.Verdict {
		case snapshot.VerdictCorrupt, snapshot.VerdictCatalogMismatch,
			snapshot.VerdictCatalogMissing, snapshot.VerdictChainBroken:
			return exitCorrupt
		case snapshot.VerdictUncommitted:
			code = exitUncommitted
		}
	}
	return code
}

// quickScrub is the manifest-level verification: Load + Verify per
// generation, without reading dataset payloads.
func quickScrub(fsys rt.FS, prefix string) ([]snapshot.GenReport, error) {
	gens, err := snapshot.Generations(fsys, prefix)
	if err != nil {
		return nil, err
	}
	reports := make([]snapshot.GenReport, 0, len(gens))
	for _, g := range gens {
		rep := snapshot.GenReport{Base: g.Base, Verdict: snapshot.VerdictOK}
		if !g.Committed {
			rep.Verdict = snapshot.VerdictUncommitted
			reports = append(reports, rep)
			continue
		}
		m, err := snapshot.Load(fsys, g.Base)
		if err == nil {
			rep.Epoch = m.Epoch
			err = m.Verify(fsys)
		}
		if err != nil {
			rep.Verdict = snapshot.VerdictCorrupt
			rep.Files = append(rep.Files, snapshot.FileReport{
				Name: g.Base + snapshot.Suffix, Status: "corrupt", Detail: err.Error(),
			})
		} else {
			quickCatalog(fsys, m, &rep)
		}
		reports = append(reports, rep)
	}
	// Even the quick pass must flag deltas whose chains cannot restore.
	snapshot.ApplyChainVerdicts(fsys, reports)
	return reports, nil
}

// quickCatalog is the manifest-level catalog check: the blob's size and
// whole-blob CRC against the manifest reference, without decoding the
// entries (Fsck does the full cross-check).
func quickCatalog(fsys rt.FS, m *snapshot.Manifest, rep *snapshot.GenReport) {
	rep.Catalog = "none"
	if m.Catalog == nil {
		return
	}
	blob, err := readAll(fsys, m.Catalog.Name)
	if errors.Is(err, rt.ErrNotExist) {
		// An absent blob is a different failure from a lying one: the
		// manifest parses fine, the pinned index simply is not there.
		rep.Catalog = "missing"
		if rep.Verdict == snapshot.VerdictOK {
			rep.Verdict = snapshot.VerdictCatalogMissing
		}
		rep.Files = append(rep.Files, snapshot.FileReport{
			Name: m.Catalog.Name, Status: "missing", Detail: err.Error(),
		})
		return
	}
	if err != nil || int64(len(blob)) != m.Catalog.Size || hdf.Checksum(blob) != m.Catalog.CRC {
		rep.Catalog = "mismatch"
		if rep.Verdict == snapshot.VerdictOK {
			rep.Verdict = snapshot.VerdictCatalogMismatch
		}
		detail := "catalog blob does not match manifest reference"
		if err != nil {
			detail = err.Error()
		}
		rep.Files = append(rep.Files, snapshot.FileReport{
			Name: m.Catalog.Name, Status: "mismatch", Detail: detail,
		})
		return
	}
	rep.Catalog = "ok"
}

func readAll(fsys rt.FS, name string) ([]byte, error) {
	f, err := fsys.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		return nil, err
	}
	blob := make([]byte, size)
	if _, err := f.ReadAt(blob, 0); err != nil {
		return nil, err
	}
	return blob, nil
}

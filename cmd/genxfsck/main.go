// Command genxfsck scrubs a directory of snapshot generations: for every
// generation it verifies the commit manifest, each file's size and
// directory checksum, and — unless -quick — reads every dataset back so
// the per-dataset CRC32Cs cover the payload bytes. One flipped bit
// anywhere in a committed file is reported against that file.
//
// Usage:
//
//	genxfsck [-root DIR] [-prefix PFX] [-json]
//
// The scrub walks the generations under -root joined with -prefix (for
// example -root out -prefix "" scrubs out/snap*). Exit status is 0 when
// every committed generation verifies, 1 when any generation is corrupt,
// 2 on usage or I/O errors. Uncommitted generations — crash residue the
// restart path already ignores — are reported but are not failures.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"genxio/internal/hdf"
	"genxio/internal/rt"
	"genxio/internal/snapshot"
)

func main() {
	root := flag.String("root", ".", "directory holding the snapshot files")
	prefix := flag.String("prefix", "", "scrub only generations whose base starts with this prefix (relative to -root)")
	jsonOut := flag.Bool("json", false, "emit the scrub report as JSON")
	quick := flag.Bool("quick", false, "verify manifests, sizes and directory checksums only; skip the payload scrub")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "genxfsck: unexpected arguments %v\n", flag.Args())
		os.Exit(2)
	}

	fsys, err := rt.NewOSFS(*root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "genxfsck: %v\n", err)
		os.Exit(2)
	}

	var reports []snapshot.GenReport
	if *quick {
		reports, err = quickScrub(fsys, *prefix)
	} else {
		reports, err = snapshot.Fsck(fsys, *prefix)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "genxfsck: %v\n", err)
		os.Exit(2)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			fmt.Fprintf(os.Stderr, "genxfsck: %v\n", err)
			os.Exit(2)
		}
	} else {
		fmt.Print(snapshot.Format(reports))
	}
	if len(reports) == 0 {
		fmt.Fprintf(os.Stderr, "genxfsck: no snapshot generations under %s\n", *root)
	}
	if !snapshot.Clean(reports) {
		os.Exit(1)
	}
}

// quickScrub is the manifest-level verification: Load + Verify per
// generation, without reading dataset payloads.
func quickScrub(fsys rt.FS, prefix string) ([]snapshot.GenReport, error) {
	gens, err := snapshot.Generations(fsys, prefix)
	if err != nil {
		return nil, err
	}
	reports := make([]snapshot.GenReport, 0, len(gens))
	for _, g := range gens {
		rep := snapshot.GenReport{Base: g.Base, Verdict: snapshot.VerdictOK}
		if !g.Committed {
			rep.Verdict = snapshot.VerdictUncommitted
			reports = append(reports, rep)
			continue
		}
		m, err := snapshot.Load(fsys, g.Base)
		if err == nil {
			rep.Epoch = m.Epoch
			err = m.Verify(fsys)
		}
		if err != nil {
			rep.Verdict = snapshot.VerdictCorrupt
			rep.Files = append(rep.Files, snapshot.FileReport{
				Name: g.Base + snapshot.Suffix, Status: "corrupt", Detail: err.Error(),
			})
		} else {
			quickCatalog(fsys, m, &rep)
		}
		reports = append(reports, rep)
	}
	return reports, nil
}

// quickCatalog is the manifest-level catalog check: the blob's size and
// whole-blob CRC against the manifest reference, without decoding the
// entries (Fsck does the full cross-check).
func quickCatalog(fsys rt.FS, m *snapshot.Manifest, rep *snapshot.GenReport) {
	rep.Catalog = "none"
	if m.Catalog == nil {
		return
	}
	blob, err := readAll(fsys, m.Catalog.Name)
	if err != nil || int64(len(blob)) != m.Catalog.Size || hdf.Checksum(blob) != m.Catalog.CRC {
		rep.Catalog = "mismatch"
		if rep.Verdict == snapshot.VerdictOK {
			rep.Verdict = snapshot.VerdictCatalogMismatch
		}
		detail := "catalog blob does not match manifest reference"
		if err != nil {
			detail = err.Error()
		}
		rep.Files = append(rep.Files, snapshot.FileReport{
			Name: m.Catalog.Name, Status: "mismatch", Detail: detail,
		})
		return
	}
	rep.Catalog = "ok"
}

func readAll(fsys rt.FS, name string) ([]byte, error) {
	f, err := fsys.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		return nil, err
	}
	blob := make([]byte, size)
	if _, err := f.ReadAt(blob, 0); err != nil {
		return nil, err
	}
	return blob, nil
}

// Command genxfsck scrubs a directory of snapshot generations: for every
// generation it verifies the commit manifest, each file's size and
// directory checksum, and — unless -quick — reads every dataset back so
// the per-dataset CRC32Cs cover the payload bytes. One flipped bit
// anywhere in a committed file is reported against that file.
//
// Usage:
//
//	genxfsck [-root DIR] [-prefix PFX] [-json] [-quick] [-repair]
//
// The scrub walks the generations under -root joined with -prefix (for
// example -root out -prefix "" scrubs out/snap*).
//
// -repair rebuilds corrupt or missing files of replicated generations
// from verified surviving copies (byte-identical replicas pinned by the
// manifest), staging each rebuild to a temporary file and renaming it
// into place; a damaged catalog blob is re-derived from the repaired
// files and installed only if it matches the manifest's pinned size and
// CRC. Generations fully restored this way report the verdict REPAIRED
// and count as clean. -repair implies the full payload scrub and cannot
// be combined with -quick.
//
// Exit status encodes the worst verdict found:
//
//	0  every committed generation verifies (OK / REPAIRED)
//	1  only UNCOMMITTED generations are unclean (crash residue the
//	   restart path already ignores)
//	2  some generation is CORRUPT or CATALOG-MISMATCH (and, with
//	   -repair, could not be fully repaired)
//	3  usage or I/O errors
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"genxio/internal/hdf"
	"genxio/internal/rt"
	"genxio/internal/snapshot"
)

// Exit codes, worst verdict wins.
const (
	exitOK          = 0
	exitUncommitted = 1
	exitCorrupt     = 2
	exitUsage       = 3
)

func main() {
	root := flag.String("root", ".", "directory holding the snapshot files")
	prefix := flag.String("prefix", "", "scrub only generations whose base starts with this prefix (relative to -root)")
	jsonOut := flag.Bool("json", false, "emit the scrub report as JSON")
	quick := flag.Bool("quick", false, "verify manifests, sizes and directory checksums only; skip the payload scrub")
	repair := flag.Bool("repair", false, "rebuild corrupt or missing files from verified replicas before reporting")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "genxfsck: unexpected arguments %v\n", flag.Args())
		os.Exit(exitUsage)
	}
	if *repair && *quick {
		fmt.Fprintln(os.Stderr, "genxfsck: -repair needs the full payload scrub; drop -quick")
		os.Exit(exitUsage)
	}

	fsys, err := rt.NewOSFS(*root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "genxfsck: %v\n", err)
		os.Exit(exitUsage)
	}

	var reports []snapshot.GenReport
	switch {
	case *repair:
		reports, err = snapshot.Repair(fsys, *prefix)
	case *quick:
		reports, err = quickScrub(fsys, *prefix)
	default:
		reports, err = snapshot.Fsck(fsys, *prefix)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "genxfsck: %v\n", err)
		os.Exit(exitUsage)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			fmt.Fprintf(os.Stderr, "genxfsck: %v\n", err)
			os.Exit(exitUsage)
		}
	} else {
		fmt.Print(snapshot.Format(reports))
	}
	if len(reports) == 0 {
		fmt.Fprintf(os.Stderr, "genxfsck: no snapshot generations under %s\n", *root)
	}
	os.Exit(exitCode(reports))
}

// exitCode maps the reports to the documented severity scheme: corrupt
// beats uncommitted beats clean.
func exitCode(reports []snapshot.GenReport) int {
	code := exitOK
	for _, rep := range reports {
		switch rep.Verdict {
		case snapshot.VerdictCorrupt, snapshot.VerdictCatalogMismatch:
			return exitCorrupt
		case snapshot.VerdictUncommitted:
			code = exitUncommitted
		}
	}
	return code
}

// quickScrub is the manifest-level verification: Load + Verify per
// generation, without reading dataset payloads.
func quickScrub(fsys rt.FS, prefix string) ([]snapshot.GenReport, error) {
	gens, err := snapshot.Generations(fsys, prefix)
	if err != nil {
		return nil, err
	}
	reports := make([]snapshot.GenReport, 0, len(gens))
	for _, g := range gens {
		rep := snapshot.GenReport{Base: g.Base, Verdict: snapshot.VerdictOK}
		if !g.Committed {
			rep.Verdict = snapshot.VerdictUncommitted
			reports = append(reports, rep)
			continue
		}
		m, err := snapshot.Load(fsys, g.Base)
		if err == nil {
			rep.Epoch = m.Epoch
			err = m.Verify(fsys)
		}
		if err != nil {
			rep.Verdict = snapshot.VerdictCorrupt
			rep.Files = append(rep.Files, snapshot.FileReport{
				Name: g.Base + snapshot.Suffix, Status: "corrupt", Detail: err.Error(),
			})
		} else {
			quickCatalog(fsys, m, &rep)
		}
		reports = append(reports, rep)
	}
	return reports, nil
}

// quickCatalog is the manifest-level catalog check: the blob's size and
// whole-blob CRC against the manifest reference, without decoding the
// entries (Fsck does the full cross-check).
func quickCatalog(fsys rt.FS, m *snapshot.Manifest, rep *snapshot.GenReport) {
	rep.Catalog = "none"
	if m.Catalog == nil {
		return
	}
	blob, err := readAll(fsys, m.Catalog.Name)
	if err != nil || int64(len(blob)) != m.Catalog.Size || hdf.Checksum(blob) != m.Catalog.CRC {
		rep.Catalog = "mismatch"
		if rep.Verdict == snapshot.VerdictOK {
			rep.Verdict = snapshot.VerdictCatalogMismatch
		}
		detail := "catalog blob does not match manifest reference"
		if err != nil {
			detail = err.Error()
		}
		rep.Files = append(rep.Files, snapshot.FileReport{
			Name: m.Catalog.Name, Status: "mismatch", Detail: detail,
		})
		return
	}
	rep.Catalog = "ok"
}

func readAll(fsys rt.FS, name string) ([]byte, error) {
	f, err := fsys.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		return nil, err
	}
	blob := make([]byte, size)
	if _, err := f.ReadAt(blob, 0); err != nil {
		return nil, err
	}
	return blob, nil
}

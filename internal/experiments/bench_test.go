package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func runBenchTwice(t *testing.T) (*BenchResult, *BenchResult) {
	t.Helper()
	opts := BenchOpts{Scale: 0.05, Procs: 8, Seed: 3, Stride: 100}
	a, err := RunBench(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunBench(opts)
	if err != nil {
		t.Fatal(err)
	}
	return a, b
}

func TestBenchJSONDeterministicAndParseable(t *testing.T) {
	a, b := runBenchTwice(t)
	var ba, bb bytes.Buffer
	if err := a.WriteJSON(&ba); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteJSON(&bb); err != nil {
		t.Fatal(err)
	}
	if ba.String() != bb.String() {
		t.Fatal("same-seed bench JSON differs between runs")
	}
	var round BenchResult
	if err := json.Unmarshal(ba.Bytes(), &round); err != nil {
		t.Fatalf("bench JSON does not parse: %v", err)
	}
	if round.Schema != BenchSchema || len(round.IOs) != 9 {
		t.Fatalf("roundtrip schema=%q ios=%d", round.Schema, len(round.IOs))
	}
}

// TestBenchDeltaWriteSavings is the delta acceptance criterion: on the
// bench workload the rocpanda-delta entry (FullEvery=4) must write at
// least 40% fewer server bytes per generation than the full-snapshot
// rocpanda entry, while its measured restart still succeeds (chain-aware,
// visible read > 0).
func TestBenchDeltaWriteSavings(t *testing.T) {
	res, err := RunBench(BenchOpts{Scale: 0.05, Procs: 8, Seed: 3, Stride: 100})
	if err != nil {
		t.Fatal(err)
	}
	byIO := map[string]IOBenchResult{}
	for _, io := range res.IOs {
		byIO[io.IO] = io
	}
	full, ok := byIO["rocpanda"]
	if !ok {
		t.Fatal("rocpanda entry missing")
	}
	delta, ok := byIO["rocpanda-delta"]
	if !ok {
		t.Fatal("rocpanda-delta entry missing")
	}
	fb := full.Metrics.Counters["rocpanda.server.bytes_written"]
	db := delta.Metrics.Counters["rocpanda.server.bytes_written"]
	if fb == 0 || db == 0 {
		t.Fatalf("bytes_written full=%d delta=%d", fb, db)
	}
	saved := 1 - float64(db)/float64(fb)
	if saved < 0.40 {
		t.Fatalf("delta entry saved only %.0f%% of bytes written (full %d, delta %d), want >= 40%%",
			saved*100, fb, db)
	}
	if delta.Metrics.Counters["rocpanda.write.clean_panes"] == 0 {
		t.Fatal("delta entry never skipped a clean pane")
	}
	// The measured restart went through the chain path.
	if delta.VisibleRead <= 0 {
		t.Fatal("delta restart not measured")
	}
	if d := delta.Metrics.Gauges["rocpanda.restart.chain_depth"]; d < 1 {
		t.Fatalf("restart chain depth gauge %v, want >= 1", d)
	}
	// R=2 composes: the replicated delta entry writes roughly twice the
	// delta bytes, still well under the unreplicated full run.
	dr2, ok := byIO["rocpanda-delta-r2"]
	if !ok {
		t.Fatal("rocpanda-delta-r2 entry missing")
	}
	if b := dr2.Metrics.Counters["rocpanda.server.bytes_written"]; b <= db {
		t.Fatalf("delta-r2 wrote %d bytes, not above unreplicated delta's %d", b, db)
	}
}

// TestBenchParallelReadSpeedsUpRestart is the read engine's acceptance
// criterion: on the same workload, seed and platform, the parallel-read
// rocpanda run must show a lower restart (visible read) cost than the
// serial one — the per-worker stream pacing of the simulated NFS overlaps
// across the pool — at identical bytes restored.
func TestBenchParallelReadSpeedsUpRestart(t *testing.T) {
	res, err := RunBench(BenchOpts{Scale: 0.05, Procs: 8, Seed: 3, Stride: 100})
	if err != nil {
		t.Fatal(err)
	}
	byIO := map[string]IOBenchResult{}
	for _, io := range res.IOs {
		byIO[io.IO] = io
	}
	ser, ok := byIO["rocpanda"]
	if !ok {
		t.Fatal("rocpanda entry missing")
	}
	par, ok := byIO["rocpanda-pread"]
	if !ok {
		t.Fatal("rocpanda-pread entry missing")
	}
	if par.VisibleRead >= ser.VisibleRead {
		t.Fatalf("parallel visible read %.4fs not below serial's %.4fs", par.VisibleRead, ser.VisibleRead)
	}
	if par.VisibleRead <= 0 {
		t.Fatal("parallel restart read not measured")
	}
	sb := ser.Metrics.Counters["rocpanda.restart.bytes_read"]
	pb := par.Metrics.Counters["rocpanda.restart.bytes_read"]
	if pb != sb || pb == 0 {
		t.Fatalf("restart bytes differ: parallel %d, serial %d", pb, sb)
	}
	if par.Metrics.Counters["rocpanda.read.errors"] != 0 {
		t.Fatalf("read errors = %d on a healthy bench", par.Metrics.Counters["rocpanda.read.errors"])
	}
	if par.Metrics.Gauges["rocpanda.read.queue_depth"] < 2 {
		t.Fatalf("read queue peak %.0f, want >= 2 (the pool ran wide)",
			par.Metrics.Gauges["rocpanda.read.queue_depth"])
	}
}

// TestBenchAsyncDrainOverlapsWriteback is the tentpole's acceptance
// criterion: on the same workload, seed and platform, the async-drain
// rocpanda run must show lower application-visible write+sync cost than
// the synchronous-drain run — the writeback moved into the background —
// with the overlap visible in the drain metrics.
func TestBenchAsyncDrainOverlapsWriteback(t *testing.T) {
	res, err := RunBench(BenchOpts{Scale: 0.05, Procs: 8, Seed: 3, Stride: 100})
	if err != nil {
		t.Fatal(err)
	}
	byIO := map[string]IOBenchResult{}
	for _, io := range res.IOs {
		byIO[io.IO] = io
	}
	syn, ok := byIO["rocpanda"]
	if !ok {
		t.Fatal("rocpanda entry missing")
	}
	asy, ok := byIO["rocpanda-async"]
	if !ok {
		t.Fatal("rocpanda-async entry missing")
	}
	sv, av := syn.VisibleWrite+syn.SyncWait, asy.VisibleWrite+asy.SyncWait
	if av >= sv {
		t.Fatalf("async visible write+sync %.4fs not below sync drain's %.4fs", av, sv)
	}
	ov := asy.Metrics.Histograms["rocpanda.drain.overlap_seconds"]
	if ov.Count == 0 || ov.Sum <= 0 {
		t.Fatalf("no overlapped drain recorded: %+v", ov)
	}
	if asy.Metrics.Gauges["rocpanda.drain.queue_depth"] <= 0 {
		t.Fatal("drain queue never held a block")
	}
	// Same workload, same data: the async run ships exactly the bytes the
	// sync run does.
	if asy.BytesOut != syn.BytesOut {
		t.Fatalf("bytes out differ: async %d, sync %d", asy.BytesOut, syn.BytesOut)
	}
}

func TestBenchCarriesPerModuleMetrics(t *testing.T) {
	opts := BenchOpts{Scale: 0.05, Procs: 8, Seed: 1, Stride: 100}
	res, err := RunBench(opts)
	if err != nil {
		t.Fatal(err)
	}
	byIO := map[string]IOBenchResult{}
	for _, io := range res.IOs {
		byIO[io.IO] = io
	}
	for io, series := range map[string][]string{
		"rochdf":   {"rochdf.files_created", "rochdf.bytes_out", "hdf.datasets_written"},
		"trochdf":  {"trochdf.files_created", "trochdf.bytes_out"},
		"rocpanda": {"rocpanda.server.blocks_written", "rocpanda.client.bytes_out", "rocpanda.server.reads_served"},
	} {
		r, ok := byIO[io]
		if !ok {
			t.Fatalf("module %s missing from bench", io)
		}
		for _, name := range series {
			if r.Metrics.Counters[name] == 0 {
				t.Errorf("%s: counter %s = 0, want > 0", io, name)
			}
		}
		if r.VisibleWrite <= 0 || r.BytesOut <= 0 {
			t.Errorf("%s: report not populated: %+v", io, r)
		}
	}
	// Drain histograms: the background-writing modules must show work the
	// application did not see.
	if byIO["rocpanda"].Metrics.Histograms["rocpanda.server.drain_seconds"].Count == 0 {
		t.Error("rocpanda drain histogram empty")
	}
	if byIO["trochdf"].Metrics.Histograms["trochdf.bg_write_seconds"].Count == 0 {
		t.Error("trochdf background-write histogram empty")
	}
	// MeasureRestart ran for rochdf and rocpanda.
	if byIO["rochdf"].VisibleRead <= 0 || byIO["rocpanda"].VisibleRead <= 0 {
		t.Error("restart read not measured")
	}
}

func TestBenchTraceExportsDeterministic(t *testing.T) {
	a, b := runBenchTwice(t)
	for i := range a.IOs {
		for _, format := range []string{"jsonl", "chrome"} {
			var sa, sb strings.Builder
			if err := a.IOs[i].Trace.WriteFile(&sa, format); err != nil {
				t.Fatal(err)
			}
			if err := b.IOs[i].Trace.WriteFile(&sb, format); err != nil {
				t.Fatal(err)
			}
			if sa.String() != sb.String() {
				t.Fatalf("%s: %s trace export differs between same-seed runs", a.IOs[i].IO, format)
			}
			if sa.Len() == 0 {
				t.Fatalf("%s: empty %s trace", a.IOs[i].IO, format)
			}
		}
	}
}

package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func runBenchTwice(t *testing.T) (*BenchResult, *BenchResult) {
	t.Helper()
	opts := BenchOpts{Scale: 0.05, Procs: 8, Seed: 3, Stride: 100}
	a, err := RunBench(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunBench(opts)
	if err != nil {
		t.Fatal(err)
	}
	return a, b
}

func TestBenchJSONDeterministicAndParseable(t *testing.T) {
	a, b := runBenchTwice(t)
	var ba, bb bytes.Buffer
	if err := a.WriteJSON(&ba); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteJSON(&bb); err != nil {
		t.Fatal(err)
	}
	if ba.String() != bb.String() {
		t.Fatal("same-seed bench JSON differs between runs")
	}
	var round BenchResult
	if err := json.Unmarshal(ba.Bytes(), &round); err != nil {
		t.Fatalf("bench JSON does not parse: %v", err)
	}
	if round.Schema != BenchSchema || len(round.IOs) != 6 {
		t.Fatalf("roundtrip schema=%q ios=%d", round.Schema, len(round.IOs))
	}
}

// TestBenchParallelReadSpeedsUpRestart is the read engine's acceptance
// criterion: on the same workload, seed and platform, the parallel-read
// rocpanda run must show a lower restart (visible read) cost than the
// serial one — the per-worker stream pacing of the simulated NFS overlaps
// across the pool — at identical bytes restored.
func TestBenchParallelReadSpeedsUpRestart(t *testing.T) {
	res, err := RunBench(BenchOpts{Scale: 0.05, Procs: 8, Seed: 3, Stride: 100})
	if err != nil {
		t.Fatal(err)
	}
	byIO := map[string]IOBenchResult{}
	for _, io := range res.IOs {
		byIO[io.IO] = io
	}
	ser, ok := byIO["rocpanda"]
	if !ok {
		t.Fatal("rocpanda entry missing")
	}
	par, ok := byIO["rocpanda-pread"]
	if !ok {
		t.Fatal("rocpanda-pread entry missing")
	}
	if par.VisibleRead >= ser.VisibleRead {
		t.Fatalf("parallel visible read %.4fs not below serial's %.4fs", par.VisibleRead, ser.VisibleRead)
	}
	if par.VisibleRead <= 0 {
		t.Fatal("parallel restart read not measured")
	}
	sb := ser.Metrics.Counters["rocpanda.restart.bytes_read"]
	pb := par.Metrics.Counters["rocpanda.restart.bytes_read"]
	if pb != sb || pb == 0 {
		t.Fatalf("restart bytes differ: parallel %d, serial %d", pb, sb)
	}
	if par.Metrics.Counters["rocpanda.read.errors"] != 0 {
		t.Fatalf("read errors = %d on a healthy bench", par.Metrics.Counters["rocpanda.read.errors"])
	}
	if par.Metrics.Gauges["rocpanda.read.queue_depth"] < 2 {
		t.Fatalf("read queue peak %.0f, want >= 2 (the pool ran wide)",
			par.Metrics.Gauges["rocpanda.read.queue_depth"])
	}
}

// TestBenchAsyncDrainOverlapsWriteback is the tentpole's acceptance
// criterion: on the same workload, seed and platform, the async-drain
// rocpanda run must show lower application-visible write+sync cost than
// the synchronous-drain run — the writeback moved into the background —
// with the overlap visible in the drain metrics.
func TestBenchAsyncDrainOverlapsWriteback(t *testing.T) {
	res, err := RunBench(BenchOpts{Scale: 0.05, Procs: 8, Seed: 3, Stride: 100})
	if err != nil {
		t.Fatal(err)
	}
	byIO := map[string]IOBenchResult{}
	for _, io := range res.IOs {
		byIO[io.IO] = io
	}
	syn, ok := byIO["rocpanda"]
	if !ok {
		t.Fatal("rocpanda entry missing")
	}
	asy, ok := byIO["rocpanda-async"]
	if !ok {
		t.Fatal("rocpanda-async entry missing")
	}
	sv, av := syn.VisibleWrite+syn.SyncWait, asy.VisibleWrite+asy.SyncWait
	if av >= sv {
		t.Fatalf("async visible write+sync %.4fs not below sync drain's %.4fs", av, sv)
	}
	ov := asy.Metrics.Histograms["rocpanda.drain.overlap_seconds"]
	if ov.Count == 0 || ov.Sum <= 0 {
		t.Fatalf("no overlapped drain recorded: %+v", ov)
	}
	if asy.Metrics.Gauges["rocpanda.drain.queue_depth"] <= 0 {
		t.Fatal("drain queue never held a block")
	}
	// Same workload, same data: the async run ships exactly the bytes the
	// sync run does.
	if asy.BytesOut != syn.BytesOut {
		t.Fatalf("bytes out differ: async %d, sync %d", asy.BytesOut, syn.BytesOut)
	}
}

func TestBenchCarriesPerModuleMetrics(t *testing.T) {
	opts := BenchOpts{Scale: 0.05, Procs: 8, Seed: 1, Stride: 100}
	res, err := RunBench(opts)
	if err != nil {
		t.Fatal(err)
	}
	byIO := map[string]IOBenchResult{}
	for _, io := range res.IOs {
		byIO[io.IO] = io
	}
	for io, series := range map[string][]string{
		"rochdf":   {"rochdf.files_created", "rochdf.bytes_out", "hdf.datasets_written"},
		"trochdf":  {"trochdf.files_created", "trochdf.bytes_out"},
		"rocpanda": {"rocpanda.server.blocks_written", "rocpanda.client.bytes_out", "rocpanda.server.reads_served"},
	} {
		r, ok := byIO[io]
		if !ok {
			t.Fatalf("module %s missing from bench", io)
		}
		for _, name := range series {
			if r.Metrics.Counters[name] == 0 {
				t.Errorf("%s: counter %s = 0, want > 0", io, name)
			}
		}
		if r.VisibleWrite <= 0 || r.BytesOut <= 0 {
			t.Errorf("%s: report not populated: %+v", io, r)
		}
	}
	// Drain histograms: the background-writing modules must show work the
	// application did not see.
	if byIO["rocpanda"].Metrics.Histograms["rocpanda.server.drain_seconds"].Count == 0 {
		t.Error("rocpanda drain histogram empty")
	}
	if byIO["trochdf"].Metrics.Histograms["trochdf.bg_write_seconds"].Count == 0 {
		t.Error("trochdf background-write histogram empty")
	}
	// MeasureRestart ran for rochdf and rocpanda.
	if byIO["rochdf"].VisibleRead <= 0 || byIO["rocpanda"].VisibleRead <= 0 {
		t.Error("restart read not measured")
	}
}

func TestBenchTraceExportsDeterministic(t *testing.T) {
	a, b := runBenchTwice(t)
	for i := range a.IOs {
		for _, format := range []string{"jsonl", "chrome"} {
			var sa, sb strings.Builder
			if err := a.IOs[i].Trace.WriteFile(&sa, format); err != nil {
				t.Fatal(err)
			}
			if err := b.IOs[i].Trace.WriteFile(&sb, format); err != nil {
				t.Fatal(err)
			}
			if sa.String() != sb.String() {
				t.Fatalf("%s: %s trace export differs between same-seed runs", a.IOs[i].IO, format)
			}
			if sa.Len() == 0 {
				t.Fatalf("%s: empty %s trace", a.IOs[i].IO, format)
			}
		}
	}
}

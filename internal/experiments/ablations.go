package experiments

import (
	"fmt"
	"strings"

	"genxio/internal/cluster"
	"genxio/internal/hdf"
	"genxio/internal/rocman"
	"genxio/internal/rocpanda"
	"genxio/internal/workload"
)

// AblationOpts configures the design-choice ablations (DESIGN.md §5).
type AblationOpts struct {
	// Scale shrinks the lab-scale workload (default 0.25).
	Scale float64
	// Procs is the compute-processor count (default 32).
	Procs int
}

func (o *AblationOpts) defaults() {
	if o.Scale <= 0 {
		o.Scale = 0.25
	}
	if o.Procs <= 0 {
		o.Procs = 32
	}
}

// AblationResult is a formatted collection of ablation tables.
type AblationResult struct {
	Sections []string
}

// Format joins the sections.
func (r *AblationResult) Format() string { return strings.Join(r.Sections, "\n") }

// RunAblations runs all ablations.
func RunAblations(opts AblationOpts) (*AblationResult, error) {
	opts.defaults()
	res := &AblationResult{}
	for _, f := range []func(AblationOpts) (string, error){
		ablationBuffering,
		ablationRatio,
		ablationPlacement,
		ablationHDFProfile,
	} {
		s, err := f(opts)
		if err != nil {
			return nil, err
		}
		res.Sections = append(res.Sections, s)
	}
	return res, nil
}

// ablationBuffering compares active buffering with write-through servers:
// the paper's central overlap claim.
func ablationBuffering(opts AblationOpts) (string, error) {
	plat := cluster.Turing()
	spec := workload.LabScale(opts.Scale)
	n := opts.Procs
	run := func(active bool) (*rocman.Report, error) {
		cfg := rocman.Config{
			Workload:       spec,
			IO:             rocman.IORocpanda,
			Profile:        hdf.HDF4Profile(),
			BufferBW:       plat.MemcpyBW,
			ServerBufferBW: 300e6,
			StrideRealWork: 50,
			Rocpanda: rocpanda.Config{
				NumServers:      n / 8,
				ActiveBuffering: active,
			},
		}
		rep, _, err := runOnce(plat, 1, plat.CPUsPerNode, n+n/8, cfg)
		return rep, err
	}
	on, err := run(true)
	if err != nil {
		return "", err
	}
	off, err := run(false)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: active buffering (Turing, %d procs, scale %.2f)\n", n, opts.Scale)
	fmt.Fprintf(&b, "  %-28s %10s %10s\n", "", "visible s", "sync s")
	fmt.Fprintf(&b, "  %-28s %10.3f %10.3f\n", "active buffering (paper)", on.VisibleWrite, on.SyncWait)
	fmt.Fprintf(&b, "  %-28s %10.3f %10.3f\n", "write-through", off.VisibleWrite, off.SyncWait)
	fmt.Fprintf(&b, "  visible-cost reduction: %.1fx\n", off.VisibleWrite/on.VisibleWrite)
	return b.String(), nil
}

// ablationRatio sweeps the client:server ratio.
func ablationRatio(opts AblationOpts) (string, error) {
	plat := cluster.Turing()
	spec := workload.LabScale(opts.Scale)
	n := opts.Procs
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: client:server ratio (Turing, %d compute procs, scale %.2f)\n", n, opts.Scale)
	fmt.Fprintf(&b, "  %-8s %8s %12s %12s %14s\n", "ratio", "servers", "visible s", "restart s", "files/snap")
	for _, ratio := range []int{4, 8, 16, 32} {
		m := n / ratio
		if m < 1 {
			m = 1
		}
		cfg := rocman.Config{
			Workload:       spec,
			IO:             rocman.IORocpanda,
			Profile:        hdf.HDF4Profile(),
			BufferBW:       plat.MemcpyBW,
			ServerBufferBW: 300e6,
			StrideRealWork: 50,
			MeasureRestart: true,
			Rocpanda: rocpanda.Config{
				NumServers:      m,
				ActiveBuffering: true,
			},
		}
		rep, world, err := runOnce(plat, 1, plat.CPUsPerNode, n+m, cfg)
		if err != nil {
			return "", err
		}
		files := countSnapshotFiles(world, "out/snap000200")
		fmt.Fprintf(&b, "  %-8s %8d %12.3f %12.3f %14d\n",
			fmt.Sprintf("%d:1", ratio), m, rep.VisibleWrite, rep.VisibleRead, files)
	}
	return b.String(), nil
}

// ablationPlacement compares spread vs packed server placement on the SMP
// platform: spread leaves one mostly-idle CPU per node (absorbing OS
// noise), packed concentrates servers and saturates the compute nodes.
func ablationPlacement(opts AblationOpts) (string, error) {
	plat := cluster.Frost()
	const nodes = 4
	ncompute := 15 * nodes
	spec := workload.Scalability(ncompute, 256<<10)
	run := func(p rocpanda.Placement) (*rocman.Report, error) {
		cfg := rocman.Config{
			Workload:       spec,
			IO:             rocman.IORocpanda,
			Profile:        hdf.HDF4Profile(),
			BufferBW:       plat.MemcpyBW,
			ServerBufferBW: 300e6,
			StrideRealWork: spec.Steps,
			Rocpanda: rocpanda.Config{
				NumServers:       nodes,
				ActiveBuffering:  true,
				Placement:        p,
				PerBlockOverhead: 3e-3,
			},
		}
		rep, _, err := runOnce(plat, 1, 16, 16*nodes, cfg)
		return rep, err
	}
	spread, err := run(rocpanda.Spread)
	if err != nil {
		return "", err
	}
	packed, err := run(rocpanda.Packed)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: server placement (Frost, %d nodes, %d compute + %d servers)\n", nodes, ncompute, nodes)
	fmt.Fprintf(&b, "  %-24s %12s %12s\n", "", "compute s", "visible s")
	fmt.Fprintf(&b, "  %-24s %12.2f %12.3f\n", "spread (paper)", spread.ComputeTime, spread.VisibleWrite)
	fmt.Fprintf(&b, "  %-24s %12.2f %12.3f\n", "packed", packed.ComputeTime, packed.VisibleWrite)
	return b.String(), nil
}

// ablationHDFProfile compares the HDF4 and HDF5 cost profiles on the
// Rocpanda restart scan — the dataset-count scaling claim behind Table 1's
// restart asymmetry.
func ablationHDFProfile(opts AblationOpts) (string, error) {
	plat := cluster.Turing()
	spec := workload.LabScale(opts.Scale)
	n := opts.Procs
	run := func(profile hdf.CostProfile) (*rocman.Report, error) {
		cfg := rocman.Config{
			Workload:       spec,
			IO:             rocman.IORocpanda,
			Profile:        profile,
			BufferBW:       plat.MemcpyBW,
			ServerBufferBW: 300e6,
			StrideRealWork: 50,
			MeasureRestart: true,
			Rocpanda: rocpanda.Config{
				NumServers:      n / 8,
				ActiveBuffering: true,
			},
		}
		rep, _, err := runOnce(plat, 1, plat.CPUsPerNode, n+n/8, cfg)
		return rep, err
	}
	h4, err := run(hdf.HDF4Profile())
	if err != nil {
		return "", err
	}
	h5, err := run(hdf.HDF5Profile())
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: scientific-library profile on Rocpanda restart (Turing, %d procs)\n", n)
	fmt.Fprintf(&b, "  %-24s %12s %12s\n", "", "restart s", "visible s")
	fmt.Fprintf(&b, "  %-24s %12.3f %12.3f\n", "HDF4 (linear DD list)", h4.VisibleRead, h4.VisibleWrite)
	fmt.Fprintf(&b, "  %-24s %12.3f %12.3f\n", "HDF5 (indexed)", h5.VisibleRead, h5.VisibleWrite)
	fmt.Fprintf(&b, "  HDF4/HDF5 restart ratio: %.1fx (the paper's motivation for Rochdf's smaller files)\n",
		h4.VisibleRead/h5.VisibleRead)
	return b.String(), nil
}

package experiments

import (
	"strings"
	"testing"

	"genxio/internal/cluster"
	"genxio/internal/rocman"
)

// The experiment tests run heavily reduced configurations and assert the
// paper's qualitative shapes, not absolute numbers — the full-scale runs
// live behind cmd/genxbench and are recorded in EXPERIMENTS.md.

func TestTable1SmallScaleShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated Table 1 is expensive")
	}
	res, err := RunTable1(Table1Opts{Procs: []int{16, 32}, Scale: 0.1, Runs: 1, Stride: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows: %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.VisTRochdf >= row.VisRochdf/10 {
			t.Errorf("n=%d: T-Rochdf %.3f not ~eliminated vs Rochdf %.3f", row.Procs, row.VisTRochdf, row.VisRochdf)
		}
		if row.VisRocpanda >= row.VisRochdf {
			t.Errorf("n=%d: Rocpanda visible %.3f not below Rochdf %.3f", row.Procs, row.VisRocpanda, row.VisRochdf)
		}
		if row.RestartPanda <= row.RestartRochdf {
			t.Errorf("n=%d: Rocpanda restart %.3f should exceed Rochdf %.3f", row.Procs, row.RestartPanda, row.RestartRochdf)
		}
		if row.FilesRochdf != row.Procs || row.FilesPanda != row.PandaServers {
			t.Errorf("n=%d: files %d/%d, want %d/%d", row.Procs, row.FilesRochdf, row.FilesPanda, row.Procs, row.PandaServers)
		}
		if row.FilesRochdf/row.FilesPanda != 8 {
			t.Errorf("n=%d: file reduction %d/%d, want 8x", row.Procs, row.FilesRochdf, row.FilesPanda)
		}
	}
	// The fixed-size problem: computation time roughly halves.
	r16, r32 := res.Rows[0], res.Rows[1]
	ratio := r16.Compute / r32.Compute
	if ratio < 1.6 || ratio > 2.4 {
		t.Errorf("compute scaling 16->32 procs: ratio %.2f", ratio)
	}
	out := res.Format()
	for _, want := range []string{"Table 1", "Rocpanda", "T-Rochdf", "restart"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q", want)
		}
	}
}

func TestFig3aSmallScaleShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated Figure 3(a) is expensive")
	}
	res, err := RunFig3a(Fig3aOpts{Procs: []int{1, 15, 30, 60}, BytesPerProc: 128 << 10, Runs: 1})
	if err != nil {
		t.Fatal(err)
	}
	pts := res.Points
	if len(pts) != 4 {
		t.Fatalf("points: %d", len(pts))
	}
	// Ramp within a node, then scaling with node count.
	if pts[1].Panda.Mean <= pts[0].Panda.Mean {
		t.Errorf("no intra-node ramp: %v -> %v", pts[0].Panda.Mean, pts[1].Panda.Mean)
	}
	if pts[3].Panda.Mean <= 1.5*pts[1].Panda.Mean {
		t.Errorf("no multi-node scaling: %v at 15 vs %v at 60", pts[1].Panda.Mean, pts[3].Panda.Mean)
	}
	// Rocpanda beats Rochdf clearly at scale.
	if pts[3].Panda.Mean <= 2*pts[3].Rochdf.Mean {
		t.Errorf("Rocpanda %v not clearly above Rochdf %v at 60 procs", pts[3].Panda.Mean, pts[3].Rochdf.Mean)
	}
	if !strings.Contains(res.Format(), "throughput") {
		t.Error("Format output malformed")
	}
}

func TestFig3bSmallScaleShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated Figure 3(b) is expensive")
	}
	res, err := RunFig3b(Fig3bOpts{Nodes: []int{1, 8}, Runs: 2})
	if err != nil {
		t.Fatal(err)
	}
	p1, p8 := res.Points[0], res.Points[1]
	// 16NS degrades with scale; 15NS and 15S stay within a few percent
	// of each other.
	if p8.T16NS.Mean <= p8.T15NS.Mean {
		t.Errorf("at 8 nodes 16NS %.3f not above 15NS %.3f", p8.T16NS.Mean, p8.T15NS.Mean)
	}
	growth16 := p8.T16NS.Mean / p1.T16NS.Mean
	growth15 := p8.T15NS.Mean / p1.T15NS.Mean
	if growth16 <= growth15 {
		t.Errorf("16NS growth %.3f not above 15NS growth %.3f", growth16, growth15)
	}
	if d := p8.T15S.Mean/p8.T15NS.Mean - 1; d > 0.05 || d < -0.05 {
		t.Errorf("15S deviates %.1f%% from 15NS", 100*d)
	}
	if !strings.Contains(res.Format(), "16NS") {
		t.Error("Format output malformed")
	}
}

func TestAblationsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations are expensive")
	}
	res, err := RunAblations(AblationOpts{Scale: 0.08, Procs: 16})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Format()
	for _, want := range []string{"active buffering", "client:server ratio", "placement", "HDF4"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablations missing %q section", want)
		}
	}
}

func TestBestOfPicksMinimum(t *testing.T) {
	calls := 0
	rep, _, err := bestOf(3,
		func(r *rocman.Report) float64 { return r.ComputeTime },
		func(seed uint64) (*rocman.Report, *cluster.World, error) {
			calls++
			return &rocman.Report{ComputeTime: float64(10 - seed)}, nil, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 3 || rep.ComputeTime != 7 {
		t.Fatalf("calls=%d best=%v", calls, rep.ComputeTime)
	}
}

package experiments

import (
	"fmt"
	"strings"

	"genxio/internal/cluster"
	"genxio/internal/hdf"
	"genxio/internal/rocman"
	"genxio/internal/rocpanda"
	"genxio/internal/workload"
)

// Table1Opts configures the reproduction of Table 1 (Turing, lab-scale
// rocket, 200 steps, snapshot every 50, ~64 MB per snapshot; Rocpanda at
// an 8:1 client:server ratio).
type Table1Opts struct {
	// Procs are the compute-processor counts (default 16, 32, 64).
	Procs []int
	// Scale shrinks the workload's real mesh (1 = the paper's ~64 MB
	// snapshots; smaller is faster and uses less memory).
	Scale float64
	// Runs is the best-of count (the paper reports the best of five).
	Runs int
	// Stride is the real-arithmetic stride (rocman.Config.StrideRealWork).
	Stride int
}

func (o *Table1Opts) defaults() {
	if len(o.Procs) == 0 {
		o.Procs = []int{16, 32, 64}
	}
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.Runs <= 0 {
		o.Runs = 5
	}
	if o.Stride <= 0 {
		o.Stride = 50
	}
}

// Table1Row is one column of the paper's Table 1 (one processor count).
type Table1Row struct {
	Procs          int
	Compute        float64
	VisRochdf      float64
	VisTRochdf     float64
	VisRocpanda    float64
	RestartRochdf  float64
	RestartPanda   float64
	FilesRochdf    int // files per snapshot
	FilesPanda     int
	PandaServers   int
	BytesPerSnap   int64
	ReductionPanda float64 // VisRochdf / VisRocpanda
}

// Table1Result holds all rows plus the paper's reference numbers.
type Table1Result struct {
	Opts Table1Opts
	Rows []Table1Row
}

// paperTable1 is Table 1 as printed in the paper, indexed by processor
// count: compute, visible I/O (rochdf, t-rochdf, rocpanda), restart
// (rochdf, rocpanda).
var paperTable1 = map[int][6]float64{
	16: {846.64, 51.58, 0.38, 2.40, 5.33, 69.9},
	32: {393.05, 83.28, 0.18, 1.48, 1.93, 39.2},
	64: {203.24, 51.19, 0.11, 1.94, 0.72, 18.2},
}

// RunTable1 regenerates Table 1 on the simulated Turing platform.
func RunTable1(opts Table1Opts) (*Table1Result, error) {
	opts.defaults()
	res := &Table1Result{Opts: opts}
	plat := cluster.Turing()
	spec := workload.LabScale(opts.Scale)

	for _, n := range opts.Procs {
		row := Table1Row{Procs: n}

		base := rocman.Config{
			Workload:       spec,
			Profile:        hdf.HDF4Profile(),
			BufferBW:       plat.MemcpyBW,
			ServerBufferBW: 300e6,
			StrideRealWork: opts.Stride,
			MeasureRestart: true,
		}

		// Rochdf: baseline; its run also provides the computation time
		// and the Rochdf restart latency.
		cfg := base
		cfg.IO = rocman.IORochdf
		rep, world, err := bestOf(opts.Runs,
			func(r *rocman.Report) float64 { return r.ComputeTime + r.VisibleWrite },
			func(seed uint64) (*rocman.Report, *cluster.World, error) {
				return runOnce(plat, seed, plat.CPUsPerNode, n, cfg)
			})
		if err != nil {
			return nil, fmt.Errorf("table1 rochdf n=%d: %w", n, err)
		}
		row.Compute = rep.ComputeTime
		row.VisRochdf = rep.VisibleWrite
		row.RestartRochdf = rep.VisibleRead
		row.FilesRochdf = countSnapshotFiles(world, "out/snap000200")
		row.BytesPerSnap = rep.BytesOut / int64(rep.Snapshots)

		// T-Rochdf.
		cfg = base
		cfg.IO = rocman.IOTRochdf
		cfg.MeasureRestart = false // T-Rochdf restarts like Rochdf
		rep, _, err = bestOf(opts.Runs,
			func(r *rocman.Report) float64 { return r.VisibleWrite },
			func(seed uint64) (*rocman.Report, *cluster.World, error) {
				return runOnce(plat, seed, plat.CPUsPerNode, n, cfg)
			})
		if err != nil {
			return nil, fmt.Errorf("table1 t-rochdf n=%d: %w", n, err)
		}
		row.VisTRochdf = rep.VisibleWrite

		// Rocpanda at the paper's fixed 8:1 ratio: extra dedicated
		// server processors on top of the n compute processors.
		cfg = base
		cfg.IO = rocman.IORocpanda
		cfg.Rocpanda = rocpanda.Config{
			NumServers:      n / 8,
			ActiveBuffering: true,
			Placement:       rocpanda.Spread,
		}
		total := n + n/8
		rep, world, err = bestOf(opts.Runs,
			func(r *rocman.Report) float64 { return r.VisibleWrite },
			func(seed uint64) (*rocman.Report, *cluster.World, error) {
				return runOnce(plat, seed, plat.CPUsPerNode, total, cfg)
			})
		if err != nil {
			return nil, fmt.Errorf("table1 rocpanda n=%d: %w", n, err)
		}
		row.VisRocpanda = rep.VisibleWrite
		row.RestartPanda = rep.VisibleRead
		row.PandaServers = rep.NumServers
		row.FilesPanda = countSnapshotFiles(world, "out/snap000200")
		if row.VisRocpanda > 0 {
			row.ReductionPanda = row.VisRochdf / row.VisRocpanda
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Format prints the table in the paper's layout with the paper's values
// alongside.
func (r *Table1Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1 — computation and I/O times on (simulated) Turing, seconds\n")
	fmt.Fprintf(&b, "workload scale %.2f, best of %d runs; paper values in parentheses\n\n", r.Opts.Scale, r.Opts.Runs)
	fmt.Fprintf(&b, "%-26s", "compute processors")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%22d", row.Procs)
	}
	b.WriteByte('\n')
	line := func(label string, get func(Table1Row) float64, paperIdx int) {
		fmt.Fprintf(&b, "%-26s", label)
		for _, row := range r.Rows {
			paper := "    -"
			if p, ok := paperTable1[row.Procs]; ok {
				paper = fmt.Sprintf("%.2f", p[paperIdx])
			}
			fmt.Fprintf(&b, "%12.2f (%s)", get(row), paper)
		}
		b.WriteByte('\n')
	}
	line("computation time", func(r Table1Row) float64 { return r.Compute }, 0)
	line("visible I/O  Rochdf", func(r Table1Row) float64 { return r.VisRochdf }, 1)
	line("visible I/O  T-Rochdf", func(r Table1Row) float64 { return r.VisTRochdf }, 2)
	line("visible I/O  Rocpanda", func(r Table1Row) float64 { return r.VisRocpanda }, 3)
	line("restart      Rochdf", func(r Table1Row) float64 { return r.RestartRochdf }, 4)
	line("restart      Rocpanda", func(r Table1Row) float64 { return r.RestartPanda }, 5)
	b.WriteByte('\n')
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "n=%d: %d files/snapshot (Rochdf) vs %d (Rocpanda, %d servers): %.0fx fewer; visible-I/O reduction %.0fx; ~%.1f MB/snapshot\n",
			row.Procs, row.FilesRochdf, row.FilesPanda, row.PandaServers,
			float64(row.FilesRochdf)/float64(max(1, row.FilesPanda)),
			row.ReductionPanda, float64(row.BytesPerSnap)/1e6)
	}
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

package experiments

import (
	"fmt"
	"strings"

	"genxio/internal/cluster"
	"genxio/internal/hdf"
	"genxio/internal/rocman"
	"genxio/internal/rocpanda"
	"genxio/internal/stats"
	"genxio/internal/workload"
)

// Fig3bOpts configures the reproduction of Figure 3(b): computation time
// on Frost with a fixed amount of work per compute processor, under three
// node configurations:
//
//	16NS — 16 compute processors per SMP node (no idle CPU, no server)
//	15NS — 15 compute processors per node, one CPU left idle
//	15S  — 15 compute processors per node, one Rocpanda server per node
type Fig3bOpts struct {
	// Nodes are the SMP node counts to sweep (default 1..32).
	Nodes []int
	// Runs per point (default 3).
	Runs int
}

func (o *Fig3bOpts) defaults() {
	if len(o.Nodes) == 0 {
		o.Nodes = []int{1, 2, 4, 8, 16, 32}
	}
	if o.Runs <= 0 {
		o.Runs = 3
	}
}

// Fig3bPoint is one x-position of the figure.
type Fig3bPoint struct {
	Nodes   int
	Procs16 int // compute procs in the 16NS case
	T16NS   stats.Summary
	T15NS   stats.Summary
	T15S    stats.Summary
}

// Fig3bResult holds the series.
type Fig3bResult struct {
	Opts   Fig3bOpts
	Points []Fig3bPoint
}

// RunFig3b regenerates Figure 3(b) on the simulated Frost platform.
func RunFig3b(opts Fig3bOpts) (*Fig3bResult, error) {
	opts.defaults()
	res := &Fig3bResult{Opts: opts}
	plat := cluster.Frost()

	for _, nodes := range opts.Nodes {
		pt := Fig3bPoint{Nodes: nodes, Procs16: 16 * nodes}
		var t16, t15, t15s []float64
		for run := 1; run <= opts.Runs; run++ {
			seed := uint64(run)

			measure := func(rpn, ncompute, total int, io rocman.IOKind, servers int) (float64, error) {
				spec := workload.Scalability(ncompute, 256<<10)
				cfg := rocman.Config{
					Workload:       spec,
					IO:             io,
					Profile:        hdf.HDF4Profile(),
					BufferBW:       plat.MemcpyBW,
					ServerBufferBW: 300e6,
					StrideRealWork: spec.Steps,
				}
				if io == rocman.IORocpanda {
					cfg.Rocpanda = rocpanda.Config{
						NumServers:       servers,
						ActiveBuffering:  true,
						Placement:        rocpanda.Spread,
						PerBlockOverhead: 3e-3,
					}
				}
				rep, _, err := runOnce(plat, seed, rpn, total, cfg)
				if err != nil {
					return 0, err
				}
				return rep.ComputeTime, nil
			}

			// 16NS: all 16 CPUs per node compute.
			v, err := measure(16, 16*nodes, 16*nodes, rocman.IORochdf, 0)
			if err != nil {
				return nil, fmt.Errorf("fig3b 16NS nodes=%d: %w", nodes, err)
			}
			t16 = append(t16, v)

			// 15NS: 15 compute, one CPU idle.
			v, err = measure(15, 15*nodes, 15*nodes, rocman.IORochdf, 0)
			if err != nil {
				return nil, fmt.Errorf("fig3b 15NS nodes=%d: %w", nodes, err)
			}
			t15 = append(t15, v)

			// 15S: 15 compute + 1 Rocpanda server per node.
			v, err = measure(16, 15*nodes, 16*nodes, rocman.IORocpanda, nodes)
			if err != nil {
				return nil, fmt.Errorf("fig3b 15S nodes=%d: %w", nodes, err)
			}
			t15s = append(t15s, v)
		}
		pt.T16NS = stats.Summarize(t16)
		pt.T15NS = stats.Summarize(t15)
		pt.T15S = stats.Summarize(t15s)
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// Format prints the three series.
func (r *Fig3bResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3(b) — computation time on (simulated) Frost, seconds\n")
	fmt.Fprintf(&b, "fixed work per compute processor; mean of %d runs ± 95%% CI\n", r.Opts.Runs)
	fmt.Fprintf(&b, "16NS: 16 compute/node   15NS: 15 compute/node, 1 idle   15S: 15 compute + 1 I/O server/node\n\n")
	fmt.Fprintf(&b, "%6s %8s %18s %18s %18s\n", "nodes", "procs", "16NS", "15NS", "15S")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%6d %8d %10.2f ±%5.2f %10.2f ±%5.2f %10.2f ±%5.2f\n",
			p.Nodes, p.Procs16,
			p.T16NS.Mean, p.T16NS.CI95,
			p.T15NS.Mean, p.T15NS.CI95,
			p.T15S.Mean, p.T15S.CI95)
	}
	last := r.Points[len(r.Points)-1]
	fmt.Fprintf(&b, "\nAt %d nodes: 16NS is %.1f%% slower than 15NS; 15S within %.1f%% of 15NS — dedicating one CPU per node to I/O also absorbs OS work (Section 7.2)\n",
		last.Nodes,
		100*(last.T16NS.Mean/last.T15NS.Mean-1),
		100*(last.T15S.Mean/last.T15NS.Mean-1))
	return b.String()
}

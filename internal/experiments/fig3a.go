package experiments

import (
	"fmt"
	"strings"

	"genxio/internal/cluster"
	"genxio/internal/hdf"
	"genxio/internal/rocman"
	"genxio/internal/rocpanda"
	"genxio/internal/stats"
	"genxio/internal/workload"
)

// Fig3aOpts configures the reproduction of Figure 3(a): apparent aggregate
// write throughput on Frost versus the number of compute processors, with
// a fixed amount of data per processor. Fifteen processors per SMP node
// compute; with Rocpanda the sixteenth is a dedicated I/O server.
type Fig3aOpts struct {
	// Procs are the compute-processor counts (default 1..480 in the
	// paper's progression).
	Procs []int
	// BytesPerProc is each compute processor's snapshot contribution.
	BytesPerProc int64
	// Runs per point (default 3; the paper averages three runs and
	// shows 95% confidence intervals).
	Runs int
}

func (o *Fig3aOpts) defaults() {
	if len(o.Procs) == 0 {
		o.Procs = []int{1, 2, 4, 8, 15, 30, 60, 120, 240, 480}
	}
	if o.BytesPerProc <= 0 {
		o.BytesPerProc = 512 << 10
	}
	if o.Runs <= 0 {
		o.Runs = 3
	}
}

// Fig3aPoint is one x-position of the figure.
type Fig3aPoint struct {
	Procs   int
	Servers int
	Panda   stats.Summary // apparent aggregate MB/s
	Rochdf  stats.Summary
}

// Fig3aResult holds the series.
type Fig3aResult struct {
	Opts   Fig3aOpts
	Points []Fig3aPoint
}

// RunFig3a regenerates Figure 3(a) on the simulated Frost platform.
func RunFig3a(opts Fig3aOpts) (*Fig3aResult, error) {
	opts.defaults()
	res := &Fig3aResult{Opts: opts}
	plat := cluster.Frost()

	for _, n := range opts.Procs {
		spec := workload.Scalability(n, opts.BytesPerProc)
		pt := Fig3aPoint{Procs: n}
		m := (n + 14) / 15 // one server per node of 15 compute procs
		pt.Servers = m

		var panda, rochdf []float64
		for run := 1; run <= opts.Runs; run++ {
			seed := uint64(run)

			cfg := rocman.Config{
				Workload:       spec,
				IO:             rocman.IORocpanda,
				Profile:        hdf.HDF4Profile(),
				BufferBW:       plat.MemcpyBW,
				ServerBufferBW: 300e6,
				StrideRealWork: spec.Steps, // timing-only: charge costs
				Rocpanda: rocpanda.Config{
					NumServers:       m,
					ActiveBuffering:  true,
					Placement:        rocpanda.Spread,
					PerBlockOverhead: 3e-3,
				},
			}
			rep, _, err := runOnce(plat, seed, 16, n+m, cfg)
			if err != nil {
				return nil, fmt.Errorf("fig3a panda n=%d: %w", n, err)
			}
			panda = append(panda, throughputMBps(rep))

			cfg.IO = rocman.IORochdf
			rep, _, err = runOnce(plat, seed, 15, n, cfg)
			if err != nil {
				return nil, fmt.Errorf("fig3a rochdf n=%d: %w", n, err)
			}
			rochdf = append(rochdf, throughputMBps(rep))
		}
		pt.Panda = stats.Summarize(panda)
		pt.Rochdf = stats.Summarize(rochdf)
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// throughputMBps computes the paper's apparent aggregate write throughput:
// total output data divided by total visible output cost.
func throughputMBps(rep *rocman.Report) float64 {
	if rep.VisibleWrite <= 0 {
		return 0
	}
	return float64(rep.BytesOut) / rep.VisibleWrite / 1e6
}

// Format prints the two series with confidence intervals and an ASCII
// rendering of the curve shapes.
func (r *Fig3aResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3(a) — apparent aggregate write throughput on (simulated) Frost, MB/s\n")
	fmt.Fprintf(&b, "fixed %.0f KB per compute processor per snapshot; mean of %d runs ± 95%% CI\n\n",
		float64(r.Opts.BytesPerProc)/1024, r.Opts.Runs)
	fmt.Fprintf(&b, "%8s %8s %20s %20s\n", "procs", "servers", "Rocpanda", "Rochdf")
	var maxV float64
	for _, p := range r.Points {
		if p.Panda.Mean > maxV {
			maxV = p.Panda.Mean
		}
		if p.Rochdf.Mean > maxV {
			maxV = p.Rochdf.Mean
		}
	}
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%8d %8d %12.1f ±%6.1f %12.1f ±%6.1f  |%s\n",
			p.Procs, p.Servers,
			p.Panda.Mean, p.Panda.CI95,
			p.Rochdf.Mean, p.Rochdf.CI95,
			bar(p.Panda.Mean, maxV, 40))
	}
	last := r.Points[len(r.Points)-1]
	fmt.Fprintf(&b, "\nRocpanda at %d procs: %.0f MB/s (paper: ~875 MB/s at 480+32 procs, >5x the best parallel HDF5 on Frost)\n",
		last.Procs, last.Panda.Mean)
	return b.String()
}

// bar renders a proportional ASCII bar.
func bar(v, maxV float64, width int) string {
	if maxV <= 0 {
		return ""
	}
	n := int(v / maxV * float64(width))
	if n < 0 {
		n = 0
	}
	return strings.Repeat("#", n)
}

package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"genxio/internal/cluster"
	"genxio/internal/hdf"
	"genxio/internal/metrics"
	"genxio/internal/rocman"
	"genxio/internal/rocpanda"
	"genxio/internal/trace"
	"genxio/internal/workload"
)

// BenchSchema identifies the BENCH_*.json layout; bump on breaking
// changes so downstream tooling can dispatch. v2 added the durability
// counters (hdf.checksum_failures, rocpanda.restart.generations_scanned,
// rocpanda.restart.fallbacks) to every module's metrics snapshot. v3
// added the block-catalog restart counters
// (rocpanda.restart.catalog_hits, .catalog_fallbacks, .files_opened,
// .bytes_read). v4 added the rocpanda-async entry (the background drain
// engine) and the rocpanda.drain.* metrics (queue_depth,
// backpressure_waits, overlap_seconds, errors). v5 added the
// rocpanda-pread entry (the parallel restart read engine) plus the
// rocpanda.read.* metrics (queue_depth, backpressure_waits,
// overlap_seconds, errors), rocpanda.restart.bytes_wasted, and
// rocpanda.drain.flush_seconds. v6 added the rocpanda-r2 entry
// (pane replication at R=2, measuring the write amplification replicas
// cost) and the replica restart counters
// (rocpanda.restart.replica_reads, .repaired_panes). v7 added the
// rocpanda-delta and rocpanda-delta-r2 entries (incremental delta
// snapshots: only panes dirtied since their last ship are written,
// committed as generations chained to the previous one) plus the delta
// counters (rocpanda.write.dirty_panes, .clean_panes,
// .delta_bytes_saved) and the rocpanda.restart.chain_depth gauge. v8
// added the rocpanda-sched entry (async drain and parallel restart reads
// together, both served by the unified internal/iosched scheduler) and
// the scheduler's per-class metrics — iosched.<class>.{queue_depth,
// backpressure_waits, overlap_seconds, errors, busy_seconds, tasks} for
// the write/read/scan classes — on every entry that exercises an engine;
// the old rocpanda.drain.* / rocpanda.read.* names remain as views of
// the same events.
const BenchSchema = "genxio-bench/v8"

// BenchOpts configures the observability bench: one small integrated run
// per I/O module on the simulated Turing platform, with a metrics
// registry and a phase-trace recorder attached to each.
type BenchOpts struct {
	// Scale shrinks the lab-scale workload (default 0.1 — a smoke-sized
	// mesh; the bench is about the observability plumbing, not the
	// paper's numbers).
	Scale float64
	// Procs is the compute-processor count (default 16).
	Procs int
	// Seed fixes the simulated platform's noise stream; the whole bench
	// is deterministic in it (default 1).
	Seed uint64
	// Stride is the real-arithmetic stride (default 100).
	Stride int
}

func (o *BenchOpts) defaults() {
	if o.Scale <= 0 {
		o.Scale = 0.1
	}
	if o.Procs <= 0 {
		o.Procs = 16
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Stride <= 0 {
		o.Stride = 100
	}
}

// IOBenchResult is one I/O module's run: the client-0 report plus the
// full metrics snapshot. The trace recorder is kept for export (JSONL or
// Chrome format) but excluded from the JSON result.
type IOBenchResult struct {
	IO             string           `json:"io"`
	NumClients     int              `json:"num_clients"`
	NumServers     int              `json:"num_servers"`
	Compute        float64          `json:"compute_seconds"`
	VisibleWrite   float64          `json:"visible_write_seconds"`
	VisibleRead    float64          `json:"visible_read_seconds"`
	SyncWait       float64          `json:"sync_wait_seconds"`
	BytesOut       int64            `json:"bytes_out"`
	ThroughputMBps float64          `json:"throughput_mbps"`
	Metrics        metrics.Snapshot `json:"metrics"`
	Trace          *trace.Recorder  `json:"-"`
}

// BenchResult is the full bench outcome (BENCH_genxbench.json).
type BenchResult struct {
	Schema   string          `json:"schema"`
	Platform string          `json:"platform"`
	Opts     BenchOpts       `json:"opts"`
	IOs      []IOBenchResult `json:"ios"`
}

// RunBench executes one lab-scale run per I/O module (Rochdf, T-Rochdf,
// Rocpanda) with observability attached: per-module metrics registries
// and trace recorders. Deterministic in Opts.Seed — the simulated
// platform serializes execution, so same seed means an identical
// snapshot and trace, byte for byte.
func RunBench(opts BenchOpts) (*BenchResult, error) {
	opts.defaults()
	plat := cluster.Turing()
	spec := workload.LabScale(opts.Scale)
	// Snapshot every 4 steps instead of the lab default 10: six
	// generations per run, which with the real-arithmetic stride gives the
	// delta entries a realistic mix of full, dirty and clean snapshots
	// (fulls at generations 0 and 4, an all-dirty delta right after the
	// arithmetic step, clean deltas between).
	spec.SnapshotEvery = 4
	res := &BenchResult{Schema: BenchSchema, Platform: plat.Name, Opts: opts}

	entries := []struct {
		name  string
		kind  rocman.IOKind
		async bool
		pread bool
		repl  int
		delta bool
	}{
		{"rochdf", rocman.IORochdf, false, false, 0, false},
		{"trochdf", rocman.IOTRochdf, false, false, 0, false},
		{"rocpanda", rocman.IORocpanda, false, false, 0, false},
		// The same workload with the background drain engine: writeback
		// overlaps the clients' computation, so visible write and sync
		// costs drop at byte-identical output.
		{"rocpanda-async", rocman.IORocpanda, true, false, 0, false},
		// And with the parallel restart read engine: each server's restart
		// share is read by a worker pool, so the per-process stream pacing
		// of the simulated NFS overlaps and the measured restart (visible
		// read) drops at bit-identical restored state.
		{"rocpanda-pread", rocman.IORocpanda, false, true, 0, false},
		// Both engines at once, behind the unified iosched scheduler: a
		// write-class drain instance and read/scan-class restart instances
		// share the scheduler core (per-instance budgets), exercising the
		// iosched.<class>.* metric surface in one run.
		{"rocpanda-sched", rocman.IORocpanda, true, true, 0, false},
		// And with pane replication at R=2: every server also writes a
		// byte-identical replica of its file to another server's home, so
		// a lost or corrupt primary restarts from the same generation.
		// This entry prices that availability as write amplification.
		{"rocpanda-r2", rocman.IORocpanda, false, false, 2, false},
		// And with incremental delta snapshots (-delta -full-every 4):
		// between the periodic fulls only panes dirtied since their last
		// ship are written, as generations chained to the previous one.
		// With the bench's real-arithmetic stride most snapshots find the
		// panes clean, so bytes written per generation collapse while a
		// chain-aware restart stays bit-exact.
		{"rocpanda-delta", rocman.IORocpanda, false, false, 0, true},
		// Deltas compose with replication: each delta generation's file
		// set is replicated at R=2, so a damaged chain link repairs from
		// its replica instead of breaking every newer delta.
		{"rocpanda-delta-r2", rocman.IORocpanda, false, false, 2, true},
	}
	for _, ent := range entries {
		kind := ent.kind
		reg := metrics.New()
		rec := trace.New()
		cfg := rocman.Config{
			Workload:       spec,
			IO:             kind,
			Profile:        hdf.HDF4Profile(),
			BufferBW:       plat.MemcpyBW,
			ServerBufferBW: 300e6,
			StrideRealWork: opts.Stride,
			MeasureRestart: kind != rocman.IOTRochdf, // T-Rochdf restarts like Rochdf
			Metrics:        reg,
			Trace:          rec,
		}
		total := opts.Procs
		if kind == rocman.IORocpanda {
			m := opts.Procs / 8
			if m < 1 {
				m = 1
			}
			cfg.Rocpanda = rocpanda.Config{
				NumServers:      m,
				ActiveBuffering: true,
				Placement:       rocpanda.Spread,
			}
			if ent.async {
				cfg.Rocpanda.AsyncDrain = true
				cfg.Rocpanda.DrainWriters = 2
				cfg.Rocpanda.BufferBudgetBytes = 256 << 20
			}
			if ent.pread {
				cfg.Rocpanda.ParallelRead = true
				cfg.Rocpanda.ReadWorkers = 4
				cfg.Rocpanda.ReadBudgetBytes = 256 << 20
			}
			if ent.repl > 1 {
				cfg.Rocpanda.ReplicationFactor = ent.repl
			}
			if ent.delta {
				cfg.Rocpanda.DeltaSnapshots = true
				cfg.Rocpanda.FullEvery = 4
			}
			// The same check cmd/genx runs on its flags: a bad bench
			// matrix entry fails loudly instead of being silently clamped.
			if err := cfg.Rocpanda.Validate(); err != nil {
				return nil, fmt.Errorf("bench %s: %w", ent.name, err)
			}
			total += m
		}
		rep, _, err := runOnce(plat, opts.Seed, plat.CPUsPerNode, total, cfg)
		if err != nil {
			return nil, fmt.Errorf("bench %s: %w", ent.name, err)
		}
		res.IOs = append(res.IOs, IOBenchResult{
			IO:             ent.name,
			NumClients:     rep.NumClients,
			NumServers:     rep.NumServers,
			Compute:        rep.ComputeTime,
			VisibleWrite:   rep.VisibleWrite,
			VisibleRead:    rep.VisibleRead,
			SyncWait:       rep.SyncWait,
			BytesOut:       rep.BytesOut,
			ThroughputMBps: throughputMBps(rep),
			Metrics:        reg.Snapshot(),
			Trace:          rec,
		})
	}
	return res, nil
}

// WriteJSON writes the bench result as indented JSON. Go's encoder
// sorts map keys, so output is deterministic for a fixed seed.
func (r *BenchResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Format prints a human-readable summary: per-module visible costs plus
// the headline drain/occupancy metrics the snapshot carries in full.
func (r *BenchResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "observability bench — %s, scale %.2f, %d compute procs, seed %d\n\n",
		r.Platform, r.Opts.Scale, r.Opts.Procs, r.Opts.Seed)
	fmt.Fprintf(&b, "%-10s %9s %12s %12s %10s %12s %10s\n",
		"module", "compute", "vis write", "vis read", "sync", "MB/s", "bytes")
	for _, io := range r.IOs {
		fmt.Fprintf(&b, "%-10s %9.2f %12.4f %12.4f %10.4f %12.1f %10d\n",
			io.IO, io.Compute, io.VisibleWrite, io.VisibleRead, io.SyncWait,
			io.ThroughputMBps, io.BytesOut)
	}
	b.WriteByte('\n')
	for _, io := range r.IOs {
		s := io.Metrics
		switch io.IO {
		case "rocpanda-async":
			d := s.Histograms["rocpanda.server.drain_seconds"]
			ov := s.Histograms["rocpanda.drain.overlap_seconds"]
			fmt.Fprintf(&b, "%-10s drained %d blocks (%.3fs total, %.3fs overlapped), queue peak %.0f blocks, %d backpressure waits\n",
				io.IO, d.Count, d.Sum, ov.Sum, s.Gauges["rocpanda.drain.queue_depth"],
				s.Counters["rocpanda.drain.backpressure_waits"])
		case "rocpanda-sched":
			wov := s.Histograms["iosched.write.overlap_seconds"]
			rov := s.Histograms["iosched.read.overlap_seconds"]
			fmt.Fprintf(&b, "%-10s unified scheduler: %d write tasks (%.3fs overlapped), %d read + %d scan tasks (%.3fs overlapped), %d waits\n",
				io.IO, s.Counters["iosched.write.tasks"], wov.Sum,
				s.Counters["iosched.read.tasks"], s.Counters["iosched.scan.tasks"], rov.Sum,
				s.Counters["iosched.write.backpressure_waits"]+s.Counters["iosched.read.backpressure_waits"]+s.Counters["iosched.scan.backpressure_waits"])
		case "rocpanda-pread":
			ov := s.Histograms["rocpanda.read.overlap_seconds"]
			fmt.Fprintf(&b, "%-10s restart read pool: queue peak %.0f tasks, %.3fs disk time overlapped with shipping, %d backpressure waits, %d errors, %.1f MB read\n",
				io.IO, s.Gauges["rocpanda.read.queue_depth"], ov.Sum,
				s.Counters["rocpanda.read.backpressure_waits"],
				s.Counters["rocpanda.read.errors"],
				float64(s.Counters["rocpanda.restart.bytes_read"])/1e6)
		case "rocpanda-delta", "rocpanda-delta-r2":
			fmt.Fprintf(&b, "%-10s delta snapshots: %d dirty panes shipped, %d clean skipped, %.1f MB saved, restart chain depth %.0f\n",
				io.IO, s.Counters["rocpanda.write.dirty_panes"],
				s.Counters["rocpanda.write.clean_panes"],
				float64(s.Counters["rocpanda.write.delta_bytes_saved"])/1e6,
				s.Gauges["rocpanda.restart.chain_depth"])
		case "rocpanda-r2":
			d := s.Histograms["rocpanda.server.drain_seconds"]
			fmt.Fprintf(&b, "%-10s drained %d blocks (%.3fs total, primaries + replicas), %d panes repaired, %d replica reads\n",
				io.IO, d.Count, d.Sum,
				s.Counters["rocpanda.restart.repaired_panes"],
				s.Counters["rocpanda.restart.replica_reads"])
		case string(rocman.IORocpanda):
			d := s.Histograms["rocpanda.server.drain_seconds"]
			fmt.Fprintf(&b, "%-10s drained %d blocks (%.3fs total), buffer peak %.0f bytes, %d overflow stalls, %d restart reads served\n",
				io.IO, d.Count, d.Sum, s.Gauges["rocpanda.server.buf_bytes_peak"],
				s.Counters["rocpanda.server.overflow_stalls"], s.Counters["rocpanda.server.reads_served"])
		case string(rocman.IOTRochdf):
			bg := s.Histograms["trochdf.bg_write_seconds"]
			dw := s.Histograms["trochdf.drain_wait_seconds"]
			fmt.Fprintf(&b, "%-10s background wrote %d jobs (%.3fs total), drain waits %.3fs, %d files\n",
				io.IO, bg.Count, bg.Sum, dw.Sum, s.Counters["trochdf.files_created"])
		default:
			fmt.Fprintf(&b, "%-10s %d files created, %d datasets, %d bytes stored\n",
				io.IO, s.Counters["rochdf.files_created"], s.Counters["hdf.datasets_written"],
				s.Counters["hdf.bytes_stored"])
		}
	}
	b.WriteByte('\n')
	for _, io := range r.IOs {
		s := io.Metrics
		fmt.Fprintf(&b, "%-10s durability: %d checksum failures, %d restart generations scanned, %d restart fallbacks\n",
			io.IO, s.Counters["hdf.checksum_failures"],
			s.Counters["rocpanda.restart.generations_scanned"],
			s.Counters["rocpanda.restart.fallbacks"])
	}
	return b.String()
}

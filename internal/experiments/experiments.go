// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 7) on the simulated platforms, plus ablations of the
// design choices. Each experiment returns a typed result with a Format
// method that prints the paper-style rows next to the paper's reported
// values, so the shape comparison recorded in EXPERIMENTS.md is
// reproducible with one command (cmd/genxbench).
package experiments

import (
	"fmt"
	"math"
	"strings"

	"genxio/internal/cluster"
	"genxio/internal/mpi"
	"genxio/internal/rocman"
)

// runOnce executes one integrated run on a simulated platform with rpn
// ranks per node and returns the client-0 report and the world (for
// filesystem accounting and post-run inspection). Deterministic in seed.
func runOnce(plat cluster.Platform, seed uint64, rpn, totalRanks int, cfg rocman.Config) (*rocman.Report, *cluster.World, error) {
	world := cluster.NewWorld(plat, seed).WithRanksPerNode(rpn)
	var rep *rocman.Report
	err := world.Run(totalRanks, func(ctx mpi.Ctx) error {
		r, err := rocman.Run(ctx, cfg)
		if r != nil {
			rep = r
		}
		return err
	})
	if err != nil {
		return nil, nil, err
	}
	if rep == nil {
		return nil, nil, fmt.Errorf("experiments: no report from client rank 0")
	}
	return rep, world, nil
}

// bestOf runs fn for seeds 1..runs and keeps the report minimizing
// pick(report) — the paper reports the best of five consecutive runs on
// the shared Turing cluster.
func bestOf(runs int, pick func(*rocman.Report) float64, fn func(seed uint64) (*rocman.Report, *cluster.World, error)) (*rocman.Report, *cluster.World, error) {
	if runs < 1 {
		runs = 1
	}
	var best *rocman.Report
	var bestWorld *cluster.World
	bestVal := math.Inf(1)
	for s := 1; s <= runs; s++ {
		rep, world, err := fn(uint64(s))
		if err != nil {
			return nil, nil, err
		}
		if v := pick(rep); v < bestVal {
			bestVal, best, bestWorld = v, rep, world
		}
	}
	return best, bestWorld, nil
}

// countSnapshotFiles counts the scientific files of one snapshot in a
// finished simulated world — the count behind Table 1's file-management
// comparison, so commit manifests and staged temporaries are excluded.
func countSnapshotFiles(world *cluster.World, prefix string) int {
	names, err := world.FSModel().Backing().List(prefix)
	if err != nil {
		return 0
	}
	n := 0
	for _, name := range names {
		if strings.HasSuffix(name, ".rhdf") {
			n++
		}
	}
	return n
}

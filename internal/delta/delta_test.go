package delta

import (
	"fmt"
	"testing"

	"genxio/internal/hdf"
	"genxio/internal/mesh"
	"genxio/internal/roccom"
	"genxio/internal/stats"
)

func testWindow(t *testing.T, n int) *roccom.Window {
	t.Helper()
	blocks, err := mesh.GenCylinder(mesh.CylinderSpec{
		RInner: 0.1, ROuter: 0.5, Length: 1,
		BR: 1, BT: n, BZ: 1, NodesPerBlock: 120, Spread: 0.3,
	}, 1, stats.NewRNG(11))
	if err != nil {
		t.Fatal(err)
	}
	rc := roccom.New()
	w, err := rc.NewWindow("fluid")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.NewAttribute(roccom.AttrSpec{Name: "pressure", Loc: roccom.NodeLoc, Type: hdf.F64, NComp: 1}); err != nil {
		t.Fatal(err)
	}
	for _, b := range blocks {
		if _, err := w.RegisterPane(b.ID, b); err != nil {
			t.Fatal(err)
		}
	}
	return w
}

func TestIsFullCadence(t *testing.T) {
	cases := []struct {
		gen, every int
		want       bool
	}{
		{0, 4, true},  // first generation is always a full base
		{1, 4, false}, // deltas between fulls
		{2, 4, false},
		{3, 4, false},
		{4, 4, true}, // periodic full
		{5, 4, false},
		{8, 4, true},
		{0, 0, true}, // no cadence: only the first is full
		{7, 0, false},
		{3, 1, true}, // every generation full
	}
	for _, c := range cases {
		if got := IsFull(c.gen, c.every); got != c.want {
			t.Errorf("IsFull(%d, %d) = %v, want %v", c.gen, c.every, got, c.want)
		}
	}
}

func TestTrackerPartition(t *testing.T) {
	w := testWindow(t, 4)
	tr := NewTracker()

	// Never shipped: every pane is dirty.
	dirty, clean, saved := tr.Partition(w)
	if fmt.Sprint(dirty) != "[1 2 3 4]" || len(clean) != 0 || saved != 0 {
		t.Fatalf("fresh tracker: dirty=%v clean=%v saved=%d", dirty, clean, saved)
	}

	// Ship everything; with no new mutations all panes are clean and the
	// saved-bytes tally is the sum of the shipped payload sizes.
	for _, id := range dirty {
		tr.MarkShipped(w.Name, id, w.DirtyEpoch(id), 100)
	}
	dirty, clean, saved = tr.Partition(w)
	if len(dirty) != 0 || fmt.Sprint(clean) != "[1 2 3 4]" || saved != 400 {
		t.Fatalf("all shipped: dirty=%v clean=%v saved=%d", dirty, clean, saved)
	}

	// Mutate one pane: only it goes dirty again.
	w.MarkDirty(3)
	dirty, clean, saved = tr.Partition(w)
	if fmt.Sprint(dirty) != "[3]" || fmt.Sprint(clean) != "[1 2 4]" || saved != 300 {
		t.Fatalf("after MarkDirty(3): dirty=%v clean=%v saved=%d", dirty, clean, saved)
	}

	// MarkAllDirty dirties the window wholesale.
	w.MarkAllDirty()
	dirty, clean, _ = tr.Partition(w)
	if fmt.Sprint(dirty) != "[1 2 3 4]" || len(clean) != 0 {
		t.Fatalf("after MarkAllDirty: dirty=%v clean=%v", dirty, clean)
	}
}

func TestTrackerRefinementLifecycle(t *testing.T) {
	w := testWindow(t, 2)
	tr := NewTracker()
	for _, id := range w.PaneIDs() {
		tr.MarkShipped(w.Name, id, w.DirtyEpoch(id), 50)
	}

	// A new pane registered after the last ship is dirty without any
	// explicit MarkDirty — registration stamps it.
	blocks, err := mesh.GenCylinder(mesh.CylinderSpec{
		RInner: 0.1, ROuter: 0.5, Length: 1,
		BR: 1, BT: 1, BZ: 1, NodesPerBlock: 120, Spread: 0.3,
	}, 1, stats.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	blocks[0].ID = 9
	if _, err := w.RegisterPane(9, blocks[0]); err != nil {
		t.Fatal(err)
	}
	dirty, clean, _ := tr.Partition(w)
	if fmt.Sprint(dirty) != "[9]" || fmt.Sprint(clean) != "[1 2]" {
		t.Fatalf("after RegisterPane(9): dirty=%v clean=%v", dirty, clean)
	}

	// Deleting a pane and forgetting it means an ID reuse is dirty again
	// even if the window's dirty sequence never advances past the old
	// shipped epoch.
	if err := w.DeletePane(2); err != nil {
		t.Fatal(err)
	}
	tr.Forget(w.Name, 2)
	dirty, clean, _ = tr.Partition(w)
	if fmt.Sprint(dirty) != "[9]" || fmt.Sprint(clean) != "[1]" {
		t.Fatalf("after DeletePane(2): dirty=%v clean=%v", dirty, clean)
	}
}

func TestDirtyEpochUnknownPane(t *testing.T) {
	w := testWindow(t, 2)
	if e := w.DirtyEpoch(99); e != 0 {
		t.Fatalf("DirtyEpoch(unknown) = %d, want 0", e)
	}
	if e := w.DirtyEpoch(1); e == 0 {
		t.Fatal("DirtyEpoch(live pane) = 0, want a positive epoch")
	}
}

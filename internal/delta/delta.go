// Package delta implements dirty-pane tracking for incremental snapshot
// generations. A Tracker remembers, per (window, pane), the mutation
// epoch and encoded byte size last shipped to the I/O servers; a delta
// generation then carries only the panes whose roccom dirty epoch has
// moved past the shipped one, and the bytes the clean panes would have
// cost are accounted as savings. Generation chaining itself (which full
// base a delta resolves against) lives in the snapshot manifest and the
// catalog's chain resolution — this package only decides *what* a
// client ships and *when* a full base is due.
package delta

import "genxio/internal/roccom"

// IsFull reports whether the genCount-th generation this client has
// started (0-based, counted since Init or the last restart) must be a
// full base rather than a delta. The first generation is always full —
// a chain never spans process lifetimes — and fullEvery > 0 forces a
// periodic full base so chains stay shallow. fullEvery <= 0 means only
// the first generation is full and every later one is a delta.
func IsFull(genCount, fullEvery int) bool {
	if genCount == 0 {
		return true
	}
	return fullEvery > 0 && genCount%fullEvery == 0
}

// shipped is the per-pane memory: the dirty epoch current when the pane
// last rode a generation, and its encoded payload size then.
type shipped struct {
	epoch uint64
	bytes int64
}

// Tracker remembers what each client last shipped so Partition can tell
// dirty panes from clean ones. It is purely local state — one Tracker
// per client, keyed by window name — and is not safe for concurrent use
// (rocpanda clients are single-goroutine).
type Tracker struct {
	panes map[string]map[int]shipped
}

// NewTracker returns an empty tracker: every pane of every window is
// dirty until its first MarkShipped.
func NewTracker() *Tracker {
	return &Tracker{panes: make(map[string]map[int]shipped)}
}

// Partition splits the window's local panes into dirty (epoch moved
// since the last ship, or never shipped) and clean, both in ascending
// pane-ID order, and returns the encoded bytes the clean panes were
// last shipped at — the payload a full generation would have re-sent.
func (t *Tracker) Partition(w *roccom.Window) (dirty, clean []int, savedBytes int64) {
	byPane := t.panes[w.Name]
	for _, id := range w.PaneIDs() {
		s, ok := byPane[id]
		if !ok || w.DirtyEpoch(id) > s.epoch {
			dirty = append(dirty, id)
			continue
		}
		clean = append(clean, id)
		savedBytes += s.bytes
	}
	return dirty, clean, savedBytes
}

// MarkShipped records that the pane rode a generation at the given dirty
// epoch with the given encoded payload size. Call it only after the ship
// succeeded — a failed ship must leave the pane dirty.
func (t *Tracker) MarkShipped(window string, id int, epoch uint64, bytes int64) {
	byPane := t.panes[window]
	if byPane == nil {
		byPane = make(map[int]shipped)
		t.panes[window] = byPane
	}
	byPane[id] = shipped{epoch: epoch, bytes: bytes}
}

// Forget drops the memory of one pane — used when refinement deletes a
// pane so a later pane reusing the ID is treated as never shipped.
func (t *Tracker) Forget(window string, id int) {
	delete(t.panes[window], id)
}

package rocpanda

// Fault-injection and recovery tests: server crashes at instrumented
// points (internal/faults), client failover to surviving servers, and the
// scan-based restart path recovering snapshots bit-exactly — or reporting
// them incomplete so the caller can fall back to the previous one.

import (
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"

	"genxio/internal/faults"
	"genxio/internal/hdf"
	"genxio/internal/mpi"
	"genxio/internal/roccom"
	"genxio/internal/rt"
)

// crashRunResult captures one crash-failover run for determinism checks.
type crashRunResult struct {
	trips   []faults.Trip
	crashed ServerMetrics
	adopted int
	clients map[int]Metrics
}

// runMidBufferCrash writes one snapshot on 2 servers + 6 clients while
// server 1 dies at its 2nd buffered block; the orphaned clients must fail
// over to server 0 and complete the snapshot in degraded mode.
func runMidBufferCrash(t *testing.T, fs rt.FS) crashRunResult {
	t.Helper()
	plan := faults.NewCrashPlan(1, faults.MidBuffer, 2)
	res := crashRunResult{clients: make(map[int]Metrics)}
	var mu sync.Mutex
	world := mpi.NewChanWorld(fs, 1)
	err := world.Run(8, func(ctx mpi.Ctx) error {
		cl, err := Init(ctx, Config{
			NumServers:      2,
			Profile:         hdf.NullProfile(),
			ActiveBuffering: true,
			Crash:           plan,
			RetryTimeout:    0.2,
			OnServerDone: func(m ServerMetrics) {
				mu.Lock()
				defer mu.Unlock()
				if m.Crashed {
					res.crashed = m
				}
				res.adopted += m.ClientsAdopted
			},
		})
		if err != nil {
			return err
		}
		if cl == nil {
			return nil
		}
		w := buildWindow(t, cl.Comm().Rank(), 2)
		if err := cl.WriteAttribute("cr/s0", w, "all", 1.0, 100); err != nil {
			return err
		}
		if err := cl.Sync(); err != nil {
			return err
		}
		// Degraded in-run restart: the surviving server must scan every
		// snapshot file by itself.
		rw := zeroWindow(t, cl.Comm().Rank(), 2)
		if err := cl.ReadAttribute("cr/s0", rw, "all"); err != nil {
			return err
		}
		if err := checkWindow(cl.Comm().Rank(), rw); err != nil {
			return err
		}
		mu.Lock()
		res.clients[cl.Comm().Rank()] = cl.Metrics()
		mu.Unlock()
		return cl.Shutdown()
	})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Fired() {
		t.Fatal("crash plan never fired")
	}
	res.trips = plan.Trips()
	return res
}

func TestCrashMidBufferFailoverAndRestart(t *testing.T) {
	fs := rt.NewMemFS()
	res := runMidBufferCrash(t, fs)

	if !res.crashed.Crashed || res.crashed.Idx != 1 {
		t.Fatalf("crashed server metrics %+v", res.crashed)
	}
	// Nth=2: the server dies having buffered exactly 2 blocks, before any
	// drain — no file, nothing acknowledged.
	if res.crashed.BlocksBuffered != 2 || res.crashed.BlocksWritten != 0 || res.crashed.FilesCreated != 0 {
		t.Fatalf("crashed server did unexpected work: %+v", res.crashed)
	}
	if res.adopted != 3 {
		t.Fatalf("survivor adopted %d clients, want 3", res.adopted)
	}
	var failovers, retries int
	for _, m := range res.clients {
		failovers += m.Failovers
		retries += m.Retries
	}
	if failovers != 3 || retries < 3 {
		t.Fatalf("client failovers=%d retries=%d, want 3 and >=3", failovers, retries)
	}
	// Degraded mode: the whole snapshot lives in the survivor's file.
	names, _ := fs.List("cr/s0_s")
	if len(names) != 1 {
		t.Fatalf("snapshot files %v, want the survivor's only", names)
	}

	// The killed run's snapshot must restart bit-exactly in a fresh,
	// healthy world (the e2e recovery path).
	world := mpi.NewChanWorld(fs, 1)
	err := world.Run(8, func(ctx mpi.Ctx) error {
		cl, err := Init(ctx, Config{NumServers: 2, Profile: hdf.NullProfile(), ActiveBuffering: true})
		if err != nil {
			return err
		}
		if cl == nil {
			return nil
		}
		w := zeroWindow(t, cl.Comm().Rank(), 2)
		if err := cl.ReadAttribute("cr/s0", w, "all"); err != nil {
			return err
		}
		if err := checkWindow(cl.Comm().Rank(), w); err != nil {
			return err
		}
		return cl.Shutdown()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCrashInjectionDeterministic(t *testing.T) {
	// Same plan, two fresh runs: the server must die at the same operation
	// of the same stream, having done exactly the same amount of work.
	a := runMidBufferCrash(t, rt.NewMemFS())
	b := runMidBufferCrash(t, rt.NewMemFS())
	if !reflect.DeepEqual(a.trips, b.trips) {
		t.Fatalf("trips differ across runs: %v vs %v", a.trips, b.trips)
	}
	want := []faults.Trip{{Stream: "crash:1:mid-buffer", Op: 2}}
	if !reflect.DeepEqual(a.trips, want) {
		t.Fatalf("trips %v, want %v", a.trips, want)
	}
	if a.crashed.BlocksBuffered != b.crashed.BlocksBuffered ||
		a.crashed.BlocksWritten != b.crashed.BlocksWritten {
		t.Fatalf("crash-point state differs: %+v vs %+v", a.crashed, b.crashed)
	}
}

func TestCrashMidDrainIncompleteSnapshotFallsBack(t *testing.T) {
	// Server 1 (serving clients 2 and 3 of 4) dies while draining snapshot
	// B, after snapshot A was synced to disk. B's file on server 1 has no
	// directory; some of B's blocks die in its buffer. Restart of B must
	// report ErrIncompleteRestart and the clients fall back to A.
	fs := rt.NewMemFS()
	// Server 1 drains 4 blocks of A (2 clients x 2 panes), synced and
	// closed; the crash at the 6th drained block lands mid-snapshot-B.
	plan := faults.NewCrashPlan(1, faults.MidDrain, 6)
	world := mpi.NewChanWorld(fs, 1)
	err := world.Run(6, func(ctx mpi.Ctx) error {
		cl, err := Init(ctx, Config{
			NumServers:      2,
			Profile:         hdf.NullProfile(),
			ActiveBuffering: true,
			Crash:           plan,
			RetryTimeout:    0.2,
		})
		if err != nil {
			return err
		}
		if cl == nil {
			return nil
		}
		w := buildWindow(t, cl.Comm().Rank(), 2)
		if err := cl.WriteAttribute("fb/A", w, "all", 1.0, 1); err != nil {
			return err
		}
		if err := cl.Sync(); err != nil {
			return err
		}
		// Snapshot B carries different data, so a fallback to A is
		// detectable bit-for-bit.
		w.EachPane(func(p *roccom.Pane) {
			pr, _ := p.Array("pressure")
			for i := range pr.F64 {
				pr.F64[i] += 1000
			}
		})
		if err := cl.WriteAttribute("fb/B", w, "all", 2.0, 2); err != nil {
			return err
		}
		if err := cl.Sync(); err != nil {
			return err
		}
		return cl.Shutdown()
	})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Fired() {
		t.Fatal("crash plan never fired")
	}

	// Fresh, healthy world. Reading B must fail with ErrIncompleteRestart
	// on the clients whose panes died with server 1; the fallback to A is
	// collective (every client re-reads, agreed by an allreduce) and must
	// be bit-exact.
	var incomplete, skipped int
	var mu sync.Mutex
	world = mpi.NewChanWorld(fs, 1)
	err = world.Run(6, func(ctx mpi.Ctx) error {
		cl, err := Init(ctx, Config{
			NumServers:      2,
			Profile:         hdf.NullProfile(),
			ActiveBuffering: true,
			RetryTimeout:    0.2,
			OnServerDone: func(m ServerMetrics) {
				mu.Lock()
				skipped += m.FilesSkipped
				mu.Unlock()
			},
		})
		if err != nil {
			return err
		}
		if cl == nil {
			return nil
		}
		w := zeroWindow(t, cl.Comm().Rank(), 2)
		err = cl.ReadAttribute("fb/B", w, "all")
		bad := 0.0
		if err != nil {
			if !errors.Is(err, ErrIncompleteRestart) {
				return err
			}
			bad = 1
			mu.Lock()
			incomplete++
			mu.Unlock()
		}
		if cl.Comm().AllreduceMax(bad) > 0 {
			if err := cl.ReadAttribute("fb/A", w, "all"); err != nil {
				return err
			}
		}
		if err := checkWindow(cl.Comm().Rank(), w); err != nil {
			return err
		}
		return cl.Shutdown()
	})
	if err != nil {
		t.Fatal(err)
	}
	if incomplete == 0 {
		t.Fatal("no client reported snapshot B incomplete")
	}
	// With atomic creates the crashed server's partial file never became
	// visible: it is still a staged temporary, the committed name does not
	// exist, and the healthy rescan has nothing to skip.
	if skipped != 0 {
		t.Fatalf("servers skipped %d files; the staged temporary should be invisible to the scan", skipped)
	}
	if tmps, _ := fs.List("fb/B_s001"); len(tmps) != 1 || !strings.HasSuffix(tmps[0], ".rhdf"+hdf.TmpSuffix) {
		t.Fatalf("crashed server's B residue %v, want exactly one staged .rhdf%s", tmps, hdf.TmpSuffix)
	}
	// Snapshot A must still be fully intact on disk (both servers' files).
	names, _ := fs.List("fb/A_s")
	if len(names) != 2 {
		t.Fatalf("snapshot A files %v, want 2", names)
	}
	for _, n := range names {
		r, err := hdf.Open(fs, n, rt.NewWallClock(), hdf.NullProfile())
		if err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		r.Close()
	}
}

func TestDroppedAckFailoverDedupsRestart(t *testing.T) {
	// The network eats the first write ack from server 1 to client 2. The
	// client times out, declares the (alive) server dead and resends to
	// server 0 — duplicating its panes across two servers' files. The
	// wrongly-declared server must still be released at shutdown, and the
	// restart must dedup the duplicated panes bit-exactly.
	fs := rt.NewMemFS()
	// World ranks: servers at 0 and 3; clients 1,2 -> server 0, clients
	// 4,5 -> server 1. Drop the first tagWriteAck from rank 3 to rank 4.
	net := faults.NewNetPlan(7, faults.NetRule{Src: 3, Dst: 4, Tag: tagWriteAck, Nth: 1, Drop: true})
	var clientMetrics []Metrics
	var mu sync.Mutex
	world := mpi.NewChanWorld(fs, 1)
	world.SetSendHook(net.Hook())
	err := world.Run(6, func(ctx mpi.Ctx) error {
		cl, err := Init(ctx, Config{
			NumServers:      2,
			Profile:         hdf.NullProfile(),
			ActiveBuffering: true,
			RetryTimeout:    0.2,
		})
		if err != nil {
			return err
		}
		if cl == nil {
			return nil
		}
		w := buildWindow(t, cl.Comm().Rank(), 2)
		if err := cl.WriteAttribute("dup/s", w, "all", 0, 0); err != nil {
			return err
		}
		if err := cl.Sync(); err != nil {
			return err
		}
		mu.Lock()
		clientMetrics = append(clientMetrics, cl.Metrics())
		mu.Unlock()
		return cl.Shutdown()
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(net.Trips()) != 1 {
		t.Fatalf("net trips %v, want exactly the dropped ack", net.Trips())
	}
	var retries int
	for _, m := range clientMetrics {
		retries += m.Retries
	}
	if retries == 0 {
		t.Fatal("no client retried after the dropped ack")
	}
	// The falsely-declared server was released at shutdown and drained:
	// both files are complete and readable.
	names, _ := fs.List("dup/s_s")
	if len(names) != 2 {
		t.Fatalf("files %v, want 2", names)
	}
	for _, n := range names {
		r, err := hdf.Open(fs, n, rt.NewWallClock(), hdf.NullProfile())
		if err != nil {
			t.Fatalf("%s: %v (wrongly-declared server not drained?)", n, err)
		}
		r.Close()
	}

	// Restart in a healthy world: client 2's panes exist in both files;
	// the read path must dedup them and every pane must be bit-exact.
	var served int
	world = mpi.NewChanWorld(fs, 1)
	err = world.Run(6, func(ctx mpi.Ctx) error {
		cl, err := Init(ctx, Config{
			NumServers:      2,
			Profile:         hdf.NullProfile(),
			ActiveBuffering: true,
			OnServerDone: func(m ServerMetrics) {
				mu.Lock()
				served += m.ReadsServed
				mu.Unlock()
			},
		})
		if err != nil {
			return err
		}
		if cl == nil {
			return nil
		}
		w := zeroWindow(t, cl.Comm().Rank(), 2)
		if err := cl.ReadAttribute("dup/s", w, "all"); err != nil {
			return err
		}
		if err := checkWindow(cl.Comm().Rank(), w); err != nil {
			return err
		}
		return cl.Shutdown()
	})
	if err != nil {
		t.Fatal(err)
	}
	// 4 clients x 2 panes unique; the duplicated panes are shipped too
	// (and discarded client-side), so more than 8 blocks cross the wire.
	if served <= 8 {
		t.Fatalf("servers shipped %d blocks, want >8 (duplicates must exist)", served)
	}
}

func TestReassignServer(t *testing.T) {
	// 3 servers, 9 clients, contiguous groups of 3.
	none := map[int]bool{}
	for j := 0; j < 9; j++ {
		if idx, ok := reassignServer(3, 9, j, none); !ok || idx != j/3 {
			t.Fatalf("healthy assignment of client %d: %d %v", j, idx, ok)
		}
	}
	// Server 1 dead: its clients 3,4,5 are dealt round-robin over {0,2}.
	dead1 := map[int]bool{1: true}
	wants := map[int]int{3: 0, 4: 2, 5: 0}
	for j := 0; j < 9; j++ {
		idx, ok := reassignServer(3, 9, j, dead1)
		if !ok {
			t.Fatalf("client %d unassigned", j)
		}
		want := j / 3
		if w, orphan := wants[j]; orphan {
			want = w
		}
		if idx != want {
			t.Fatalf("client %d -> server %d, want %d", j, idx, want)
		}
	}
	// Only server 2 survives: everyone lands there.
	dead02 := map[int]bool{0: true, 1: true}
	for j := 0; j < 9; j++ {
		if idx, ok := reassignServer(3, 9, j, dead02); !ok || idx != 2 {
			t.Fatalf("client %d -> %d %v, want 2", j, idx, ok)
		}
	}
	// All dead.
	if _, ok := reassignServer(2, 4, 0, map[int]bool{0: true, 1: true}); ok {
		t.Fatal("assignment with no survivors")
	}
}

func TestOverflowPartialDrainBitExact(t *testing.T) {
	// The graceful-overflow satellite: a capacity smaller than any block
	// forces a synchronous partial drain on every buffered block — and the
	// data read back afterwards must still be bit-exact.
	run := func(capacity int64) ServerMetrics {
		var m ServerMetrics
		var mu sync.Mutex
		world := mpi.NewChanWorld(rt.NewMemFS(), 1)
		err := world.Run(4, func(ctx mpi.Ctx) error {
			cl, err := Init(ctx, Config{
				NumServers:      1,
				Profile:         hdf.NullProfile(),
				ActiveBuffering: true,
				BufferCapacity:  capacity,
				OnServerDone: func(sm ServerMetrics) {
					mu.Lock()
					m = sm
					mu.Unlock()
				},
			})
			if err != nil {
				return err
			}
			if cl == nil {
				return nil
			}
			w := buildWindow(t, cl.Comm().Rank(), 3)
			if err := cl.WriteAttribute("oz/s", w, "all", 0, 0); err != nil {
				return err
			}
			if err := cl.Sync(); err != nil {
				return err
			}
			rw := zeroWindow(t, cl.Comm().Rank(), 3)
			if err := cl.ReadAttribute("oz/s", rw, "all"); err != nil {
				return err
			}
			if err := checkWindow(cl.Comm().Rank(), rw); err != nil {
				return err
			}
			return cl.Shutdown()
		})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	roomy := run(1 << 30)
	if roomy.Overflows != 0 {
		t.Fatalf("roomy buffer overflowed %d times", roomy.Overflows)
	}
	tiny := run(1)
	// Every buffered block exceeds a 1-byte capacity, so each one must
	// trigger exactly one synchronous drain — no more, no fewer.
	if tiny.Overflows != tiny.BlocksBuffered || tiny.Overflows == 0 {
		t.Fatalf("overflows=%d buffered=%d, want equal and nonzero", tiny.Overflows, tiny.BlocksBuffered)
	}
	if tiny.BlocksWritten != tiny.BlocksBuffered {
		t.Fatalf("wrote %d of %d blocks", tiny.BlocksWritten, tiny.BlocksBuffered)
	}
}

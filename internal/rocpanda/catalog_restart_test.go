package rocpanda

import (
	"fmt"
	"testing"

	"genxio/internal/catalog"
	"genxio/internal/faults"
	"genxio/internal/hdf"
	"genxio/internal/metrics"
	"genxio/internal/mpi"
	"genxio/internal/roccom"
	"genxio/internal/rt"
)

// snapshotBytes sums the committed .rhdf payload sizes of a generation.
func snapshotBytes(t *testing.T, fs rt.FS, prefix string) int64 {
	t.Helper()
	var total int64
	for _, name := range listRHDF(t, fs, prefix) {
		f, err := fs.Open(name)
		if err != nil {
			t.Fatal(err)
		}
		size, err := f.Size()
		f.Close()
		if err != nil {
			t.Fatal(err)
		}
		total += size
	}
	return total
}

// restartOnePane restarts the generation with client 0 wanting exactly
// one pane and every other client sending an empty (collective) request,
// recording restart counters in reg.
func restartOnePane(t *testing.T, fs rt.FS, file string, nClients, nServers, paneID int, reg *metrics.Registry) {
	t.Helper()
	world := mpi.NewChanWorld(fs, 1)
	err := world.Run(nClients+nServers, func(ctx mpi.Ctx) error {
		cl, err := Init(ctx, Config{
			NumServers: nServers, Profile: hdf.NullProfile(),
			ActiveBuffering: true, Metrics: reg,
		})
		if err != nil {
			return err
		}
		if cl == nil {
			return nil
		}
		rc := roccom.New()
		w, err := rc.NewWindow("fluid")
		if err != nil {
			return err
		}
		w.NewAttribute(roccom.AttrSpec{Name: "pressure", Loc: roccom.NodeLoc, Type: hdf.F64, NComp: 1})
		w.NewAttribute(roccom.AttrSpec{Name: "flags", Loc: roccom.PaneLoc, Type: hdf.I32, NComp: 1})
		var mine []int
		if cl.Comm().Rank() == 0 {
			mine = []int{paneID}
		}
		readErr := cl.ReadPanes(file, w, "all", mine)
		if readErr == nil && cl.Comm().Rank() == 0 {
			if _, ok := w.Pane(paneID); !ok {
				readErr = fmt.Errorf("pane %d not restored", paneID)
			}
		}
		if err := cl.Shutdown(); err != nil {
			return err
		}
		return readErr
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestIndexedRestartReadsOnlyNeededFiles is the catalog's efficiency
// claim, counter-asserted: restarting a single pane must open only the
// one file that contains it and read only that pane's extents, not the
// whole snapshot.
func TestIndexedRestartReadsOnlyNeededFiles(t *testing.T) {
	fs := rt.NewMemFS()
	const nClients, nServers = 4, 2
	writeSnapshot(t, fs, "eff/s", nClients, nServers, 2)

	cat, err := catalog.Load(fs, "eff/s")
	if err != nil {
		t.Fatal(err)
	}
	panes := cat.Panes("fluid")
	if len(panes) != nClients*2 {
		t.Fatalf("pane universe %v, want %d panes", panes, nClients*2)
	}
	pane := panes[0]
	if plans := cat.PlanReads("fluid", map[int]bool{pane: true}); len(plans) != 1 {
		t.Fatalf("pane %d planned across %d files, want 1", pane, len(plans))
	}

	reg := metrics.New()
	restartOnePane(t, fs, "eff/s", nClients, nServers, pane, reg)
	s := reg.Snapshot()
	if got := s.Counters["rocpanda.restart.catalog_hits"]; got != nServers {
		t.Fatalf("catalog_hits = %d, want %d (every server indexed)", got, nServers)
	}
	if got := s.Counters["rocpanda.restart.catalog_fallbacks"]; got != 0 {
		t.Fatalf("catalog_fallbacks = %d, want 0", got)
	}
	if got := s.Counters["rocpanda.restart.files_opened"]; got != 1 {
		t.Fatalf("files_opened = %d, want 1 (only the pane's file)", got)
	}
	total := snapshotBytes(t, fs, "eff/s")
	read := int64(s.Counters["rocpanda.restart.bytes_read"])
	if read <= 0 || read >= total {
		t.Fatalf("bytes_read = %d, want in (0, %d): direct offset reads, not a scan", read, total)
	}
}

// TestCorruptCatalogFallsBackToScan bit-flips the committed catalog blob:
// the servers must detect the damage (blob CRC), count a fallback, scan
// the directory instead, and still restart every pane bit-exact. A
// missing catalog (older writer) takes the same path.
func TestCorruptCatalogFallsBackToScan(t *testing.T) {
	fs := rt.NewMemFS()
	const nClients, nServers = 3, 1
	writeSnapshot(t, fs, "corr/s", nClients, nServers, 2)
	want := expectedPanes(t, nClients, 2)

	// Flip a body bit, past the 12-byte catalog header.
	if err := faults.FlipBit(fs, "corr/s"+catalog.Suffix, 12*8+3); err != nil {
		t.Fatal(err)
	}
	reg := metrics.New()
	got := restartTopology(t, fs, "corr/s", nClients, nServers, reg)
	checkMxN(t, want, got)
	s := reg.Snapshot()
	if s.Counters["rocpanda.restart.catalog_fallbacks"] != nServers {
		t.Fatalf("catalog_fallbacks = %d, want %d", s.Counters["rocpanda.restart.catalog_fallbacks"], nServers)
	}
	if s.Counters["rocpanda.restart.catalog_hits"] != 0 {
		t.Fatalf("catalog_hits = %d, want 0", s.Counters["rocpanda.restart.catalog_hits"])
	}

	// No catalog at all: the scan path still recovers everything.
	if err := fs.Remove("corr/s" + catalog.Suffix); err != nil {
		t.Fatal(err)
	}
	reg = metrics.New()
	got = restartTopology(t, fs, "corr/s", nClients, nServers, reg)
	checkMxN(t, want, got)
	if n := reg.Snapshot().Counters["rocpanda.restart.catalog_fallbacks"]; n != nServers {
		t.Fatalf("catalog-less fallbacks = %d, want %d", n, nServers)
	}
}

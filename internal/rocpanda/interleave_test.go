package rocpanda

// Cross-engine interleaving e2e: the scheduler's headline property is that
// a server's iosched instances are independent — a restart read round is
// admitted and served while the drain instance is still writing back a
// later generation. This test runs exactly that shape on the channel
// backend (real goroutines, wall clock) and is part of the CI -race suite.

import (
	"sync/atomic"
	"testing"
	"time"

	"genxio/internal/catalog"
	"genxio/internal/hdf"
	"genxio/internal/metrics"
	"genxio/internal/mpi"
	"genxio/internal/roccom"
	"genxio/internal/rt"
)

// slowFS widens every file's read and write on the wall clock so
// background engine work has real duration: the drain of a generation
// stays in flight long enough for a restart round to land inside it, and
// every task span has T1 > T0 so overlap accounting sees nonzero seconds.
type slowFS struct {
	rt.FS
	write, read   time.Duration
	writes, reads atomic.Int64 // call counts, for the test's log line
}

func (s *slowFS) Create(name string) (rt.File, error) {
	f, err := s.FS.Create(name)
	if err != nil {
		return nil, err
	}
	return &slowFile{File: f, fs: s}, nil
}

func (s *slowFS) Open(name string) (rt.File, error) {
	f, err := s.FS.Open(name)
	if err != nil {
		return nil, err
	}
	return &slowFile{File: f, fs: s}, nil
}

type slowFile struct {
	rt.File
	fs *slowFS
}

func (f *slowFile) WriteAt(p []byte, off int64) (int, error) {
	f.fs.writes.Add(1)
	if f.fs.write > 0 {
		time.Sleep(f.fs.write)
	}
	return f.File.WriteAt(p, off)
}

func (f *slowFile) ReadAt(p []byte, off int64) (int, error) {
	f.fs.reads.Add(1)
	if f.fs.read > 0 {
		time.Sleep(f.fs.read)
	}
	return f.File.ReadAt(p, off)
}

// TestCrossEngineInterleavedRestartRead restarts committed generation A
// while generation B is still async-draining on the same server, and pins
// the scheduler contract for that shape:
//
//   - the restored state is bit-exact (generation A's values, untouched by
//     the in-flight B drain);
//   - the read round was NOT serialized behind the drain: write-class
//     tasks are still completing after the restart read returned;
//   - both engines report nonzero overlap on the unified metrics — the
//     drain's write class (work behind the application's back) and the
//     restart share's scan class (disk time behind the round's shipping).
//
// The restart goes through the directory-scan fallback (catalog deleted),
// so with ReplicationFactor 2 the one server's share is two scan-class
// files — the round ships from the first while the second still reads,
// which is what makes the read-side overlap nonzero.
func TestCrossEngineInterleavedRestartRead(t *testing.T) {
	fs := &slowFS{FS: rt.NewMemFS(), write: 5 * time.Millisecond, read: 2 * time.Millisecond}
	reg := metrics.New()
	// Written on the client goroutine; world.Run's wait is the
	// happens-before edge to the assertions below.
	var tasksMidRead, overlapAfterA, overlapMidRead = int64(0), 0.0, 0.0
	world := mpi.NewChanWorld(fs, 1)
	err := world.Run(2, func(ctx mpi.Ctx) error {
		cl, err := Init(ctx, Config{
			NumServers:        1,
			Profile:           hdf.NullProfile(),
			ActiveBuffering:   true,
			AsyncDrain:        true,
			DrainWriters:      2,
			ParallelRead:      true,
			ReadWorkers:       2,
			ReplicationFactor: 2,
			Metrics:           reg,
		})
		if err != nil {
			return err
		}
		if cl == nil {
			return nil
		}
		w := buildWindow(t, cl.Comm().Rank(), 6)
		if err := cl.WriteAttribute("icx/A", w, "all", 1.0, 1); err != nil {
			return err
		}
		if err := cl.Sync(); err != nil {
			return err
		}
		overlapAfterA = reg.Snapshot().Histograms["iosched.write.overlap_seconds"].Sum
		// Sync committed A, so its catalog is on disk; deleting it forces
		// the restart below onto the scan fallback (two scan-class tasks:
		// primary + replica).
		if err := fs.Remove("icx/A" + catalog.Suffix); err != nil {
			return err
		}
		// Generation B: buffered and enqueued on the drain engine, NOT
		// synced — at 5 ms per file write it is still draining when the
		// read round below runs.
		w.EachPane(func(p *roccom.Pane) {
			pr, _ := p.Array("pressure")
			for i := range pr.F64 {
				pr.F64[i] += 1000
			}
		})
		if err := cl.WriteAttribute("icx/B", w, "all", 2.0, 2); err != nil {
			return err
		}
		// Restart read of committed A while B drains. A committed
		// generation needs no flush barrier (serveRead), so the round is
		// admitted immediately on the read instance.
		w2 := zeroWindow(t, cl.Comm().Rank(), 6)
		if err := cl.ReadAttribute("icx/A", w2, "all"); err != nil {
			return err
		}
		mid := reg.Snapshot()
		tasksMidRead = mid.Counters["iosched.write.tasks"]
		overlapMidRead = mid.Histograms["iosched.write.overlap_seconds"].Sum
		if err := checkWindow(cl.Comm().Rank(), w2); err != nil {
			return err
		}
		if err := cl.Sync(); err != nil {
			return err
		}
		return cl.Shutdown()
	})
	if err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	t.Logf("write tasks mid-read=%d end=%d; write overlap afterA=%.4fs mid=%.4fs end=%.4fs; scan overlap=%.4fs",
		tasksMidRead, snap.Counters["iosched.write.tasks"],
		overlapAfterA, overlapMidRead, snap.Histograms["iosched.write.overlap_seconds"].Sum,
		snap.Histograms["iosched.scan.overlap_seconds"].Sum)
	t.Logf("slowFS calls: %d writes, %d reads", fs.writes.Load(), fs.reads.Load())
	// The drain outlived the read: B's write-class tasks kept completing
	// after the restart returned — the read was not serialized behind the
	// drain queue.
	if end := snap.Counters["iosched.write.tasks"]; tasksMidRead >= end {
		t.Fatalf("write-class tasks at read completion = %d, at shutdown = %d; the drain finished before the read, no interleaving", tasksMidRead, end)
	}
	// And the read ran inside the drain, not before it: write-class
	// overlap accrued while the restart round was in flight (B's blocks
	// completing outside any flush barrier).
	if overlapMidRead <= overlapAfterA {
		t.Fatalf("write-class overlap did not grow during the read: %.6fs -> %.6fs", overlapAfterA, overlapMidRead)
	}
	// The restart used the scan fallback (catalog deleted), two files.
	if n := snap.Counters["rocpanda.restart.catalog_fallbacks"]; n == 0 {
		t.Fatal("restart did not take the scan fallback")
	}
	if n := snap.Counters["iosched.scan.tasks"]; n < 2 {
		t.Fatalf("scan-class tasks = %d, want >= 2 (primary + replica)", n)
	}
	// Both engines overlapped: drain work behind the application's back,
	// and scan reads behind the round's first ship.
	if ov := snap.Histograms["iosched.write.overlap_seconds"]; ov.Count == 0 || ov.Sum <= 0 {
		t.Fatalf("no write-class overlap recorded: %+v", ov)
	}
	if ov := snap.Histograms["iosched.scan.overlap_seconds"]; ov.Count == 0 || ov.Sum <= 0 {
		t.Fatalf("no scan-class overlap recorded: %+v", ov)
	}
}

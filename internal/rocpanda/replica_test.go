package rocpanda

// End-to-end tests of pane replication (Config.ReplicationFactor): replica
// files are byte-identical to their primaries and R=1 stays byte-identical
// to the unreplicated layout; losing or corrupting a primary restarts
// bit-exactly from the SAME generation via replica reads (no generation
// fallback); and when every copy of a pane is bad, the walk still falls
// back a generation exactly as before.

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"genxio/internal/catalog"
	"genxio/internal/faults"
	"genxio/internal/hdf"
	"genxio/internal/metrics"
	"genxio/internal/mpi"
	"genxio/internal/roccom"
	"genxio/internal/rt"
)

// writeTwoGenerations runs a 2-server world that writes generation 0 with
// decoy data (+1000 on every pressure value) and generation 100 with the
// canonical data checkWindow expects, then shuts down. Restoring the wrong
// generation cannot pass a bit-exact check. One client per server: the
// channel backend delivers different clients' writes in nondeterministic
// order, and cross-run byte comparisons hold per arrival order, not
// across interleavings (same contract as TestAsyncDrainBitExactOutput).
func writeTwoGenerations(t *testing.T, fs rt.FS, prefix string, cfg Config) {
	t.Helper()
	world := mpi.NewChanWorld(fs, 1)
	err := world.Run(4, func(ctx mpi.Ctx) error {
		cl, err := Init(ctx, cfg)
		if err != nil {
			return err
		}
		if cl == nil {
			return nil
		}
		// Generation 0 holds decoy data (+1000 on every pressure value) in
		// its own window — mutating one window back and forth would not
		// round-trip float64 values bit-exactly. Generation 100 is the
		// canonical data checkWindow expects.
		decoy := buildWindow(t, cl.Comm().Rank(), 2)
		decoy.EachPane(func(p *roccom.Pane) {
			pr, _ := p.Array("pressure")
			for i := range pr.F64 {
				pr.F64[i] += 1000
			}
		})
		if err := cl.WriteAttribute(prefix+"snap000000", decoy, "all", 0.0, 0); err != nil {
			return err
		}
		if err := cl.Sync(); err != nil {
			return err
		}
		w := buildWindow(t, cl.Comm().Rank(), 2)
		if err := cl.WriteAttribute(prefix+"snap000100", w, "all", 1.0, 100); err != nil {
			return err
		}
		if err := cl.Sync(); err != nil {
			return err
		}
		return cl.Shutdown()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func snapshotFileBytes(t *testing.T, fs rt.FS, prefix string) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	for _, name := range listRHDF(t, fs, prefix) {
		f, err := fs.Open(name)
		if err != nil {
			t.Fatal(err)
		}
		size, err := f.Size()
		if err != nil {
			t.Fatal(err)
		}
		b := make([]byte, size)
		if _, err := f.ReadAt(b, 0); err != nil {
			t.Fatal(err)
		}
		f.Close()
		out[name] = b
	}
	return out
}

// TestReplicationByteIdenticalLayout: R=1 (and R unset) produce the exact
// unreplicated file set; R=2 keeps every primary byte-identical to that
// set and adds replicas that are byte-identical to their source primaries.
// Server s's replica is homed at server (s+1)%m's file index, so with two
// servers base_s001r1.rhdf carries server 0's blocks and vice versa.
func TestReplicationByteIdenticalLayout(t *testing.T) {
	for _, async := range []bool{false, true} {
		t.Run(fmt.Sprintf("async=%v", async), func(t *testing.T) {
			mkCfg := func(repl int) Config {
				return Config{
					NumServers:        2,
					Profile:           hdf.NullProfile(),
					ActiveBuffering:   true,
					AsyncDrain:        async,
					DrainWriters:      2,
					ReplicationFactor: repl,
				}
			}
			fs0, fs1, fs2 := rt.NewMemFS(), rt.NewMemFS(), rt.NewMemFS()
			writeTwoGenerations(t, fs0, "rep/", mkCfg(0))
			writeTwoGenerations(t, fs1, "rep/", mkCfg(1))
			writeTwoGenerations(t, fs2, "rep/", mkCfg(2))
			base := snapshotFileBytes(t, fs0, "rep/")
			r1 := snapshotFileBytes(t, fs1, "rep/")
			r2 := snapshotFileBytes(t, fs2, "rep/")

			if len(r1) != len(base) {
				t.Fatalf("R=1 wrote %d files, unreplicated wrote %d", len(r1), len(base))
			}
			for name, want := range base {
				got, ok := r1[name]
				if !ok {
					t.Fatalf("R=1 is missing %s", name)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("R=1 %s differs from the unreplicated file", name)
				}
			}

			// R=2: primaries unchanged, one byte-identical replica each.
			if len(r2) != 2*len(base) {
				t.Fatalf("R=2 wrote %d files, want %d (primary + replica each)", len(r2), 2*len(base))
			}
			for name, want := range base {
				if !bytes.Equal(r2[name], want) {
					t.Fatalf("R=2 primary %s differs from the unreplicated file", name)
				}
			}
			for _, gen := range []string{"rep/snap000000", "rep/snap000100"} {
				for s := 0; s < 2; s++ {
					primary := fmt.Sprintf("%s_s%03d.rhdf", gen, s)
					replica := fmt.Sprintf("%s_s%03dr1.rhdf", gen, (s+1)%2)
					rb, ok := r2[replica]
					if !ok {
						t.Fatalf("R=2 is missing replica %s", replica)
					}
					if !bytes.Equal(rb, r2[primary]) {
						t.Fatalf("replica %s is not byte-identical to its primary %s", replica, primary)
					}
				}
			}
		})
	}
}

// damagePrimary corrupts exactly the file named — either removing it or
// flipping one bit in the middle of one of its catalog-planned extents
// (guaranteed inside data an indexed restart reads and CRC-checks).
func damagePrimary(fs rt.FS, gen, name, how string) error {
	if how == "delete" {
		return fs.Remove(name)
	}
	cat, err := catalog.Load(fs, gen)
	if err != nil {
		return err
	}
	for _, e := range cat.Entries {
		if cat.Files[e.File] == name && e.HasCRC {
			return faults.FlipBit(fs, name, (e.Offset+e.Length/2)*8)
		}
	}
	return fmt.Errorf("no CRC-bearing catalog entry in %s", name)
}

// TestReplicaLossRestartsSameGeneration is the acceptance scenario: with
// R=2, delete (or bit-flip) a primary of the newest generation and restart.
// The restore must come from the SAME generation, bit-exactly, with zero
// generation fallbacks, the replica reads visible in the new counters —
// on both the serial and the parallel read path.
func TestReplicaLossRestartsSameGeneration(t *testing.T) {
	for _, how := range []string{"delete", "flipbit"} {
		for _, parallel := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s/parallel=%v", how, parallel), func(t *testing.T) {
				fs := rt.NewMemFS()
				const gen = "rep/snap000100"
				const victim = gen + "_s000.rhdf"

				var mu sync.Mutex
				regs := make(map[int]*metrics.Registry)
				var srv []ServerMetrics

				world := mpi.NewChanWorld(fs, 1)
				err := world.Run(6, func(ctx mpi.Ctx) error {
					reg := metrics.New()
					mu.Lock()
					regs[ctx.Comm().Rank()] = reg
					mu.Unlock()
					cl, err := Init(ctx, Config{
						NumServers:        2,
						Profile:           hdf.NullProfile(),
						ActiveBuffering:   true,
						ReplicationFactor: 2,
						ParallelRead:      parallel,
						Metrics:           reg,
						OnServerDone: func(m ServerMetrics) {
							mu.Lock()
							srv = append(srv, m)
							mu.Unlock()
						},
					})
					if err != nil {
						return err
					}
					if cl == nil {
						return nil
					}
					// Decoy data in generation 0 (separate window: +=/-= on
					// one window would not round-trip float64 bit-exactly),
					// canonical data in generation 100 — restoring the wrong
					// generation cannot pass the bit-exact check below.
					decoy := buildWindow(t, cl.Comm().Rank(), 2)
					decoy.EachPane(func(p *roccom.Pane) {
						pr, _ := p.Array("pressure")
						for i := range pr.F64 {
							pr.F64[i] += 1000
						}
					})
					if err := cl.WriteAttribute("rep/snap000000", decoy, "all", 0.0, 0); err != nil {
						return err
					}
					if err := cl.Sync(); err != nil {
						return err
					}
					w := buildWindow(t, cl.Comm().Rank(), 2)
					if err := cl.WriteAttribute(gen, w, "all", 1.0, 100); err != nil {
						return err
					}
					if err := cl.Sync(); err != nil {
						return err
					}

					if cl.Comm().Rank() == 0 {
						if err := damagePrimary(fs, gen, victim, how); err != nil {
							return err
						}
					}
					cl.Comm().Barrier()

					rw := zeroWindow(t, cl.Comm().Rank(), 2)
					base, err := cl.RestoreLatest("rep/", func(base string) error {
						return cl.ReadAttribute(base, rw, "all")
					})
					if err != nil {
						return err
					}
					if base != gen {
						t.Errorf("client %d restored %q, want the damaged-but-replicated generation", cl.Comm().Rank(), base)
					}
					if err := checkWindow(cl.Comm().Rank(), rw); err != nil {
						return err
					}
					return cl.Shutdown()
				})
				if err != nil {
					t.Fatal(err)
				}

				// No generation fallback anywhere; every client scanned
				// exactly the newest generation.
				var scanned, fallbacks, replicaReads, repairedPanes int64
				for rank, reg := range regs {
					if f := reg.Counter("rocpanda.restart.fallbacks").Value(); f != 0 {
						t.Errorf("rank %d restart.fallbacks = %d, want 0", rank, f)
					}
					scanned += reg.Counter("rocpanda.restart.generations_scanned").Value()
					fallbacks += reg.Counter("rocpanda.restart.fallbacks").Value()
					replicaReads += reg.Counter("rocpanda.restart.replica_reads").Value()
					repairedPanes += reg.Counter("rocpanda.restart.repaired_panes").Value()
				}
				if scanned != 4 { // one generation per client walk
					t.Errorf("generations_scanned total = %d, want 4 (1 per client)", scanned)
				}
				if replicaReads <= 0 {
					t.Errorf("restart.replica_reads = %d, want > 0", replicaReads)
				}
				if repairedPanes < replicaReads {
					t.Errorf("restart.repaired_panes = %d < replica_reads = %d", repairedPanes, replicaReads)
				}
				var smReads, smRepairs int
				for _, m := range srv {
					smReads += m.ReplicaReads
					smRepairs += m.RepairedPanes
				}
				if int64(smReads) != replicaReads || int64(smRepairs) != repairedPanes {
					t.Errorf("ServerMetrics replica accounting (%d, %d) disagrees with counters (%d, %d)",
						smReads, smRepairs, replicaReads, repairedPanes)
				}
				if how == "flipbit" {
					var crc int64
					for _, reg := range regs {
						crc += reg.Counter("hdf.checksum_failures").Value()
					}
					if crc <= 0 {
						t.Error("bit flip restarted without a single recorded checksum failure")
					}
				}
			})
		}
	}
}

// TestReplicaAllCopiesBadFallsBack: replication changes nothing when it
// cannot help. With both copies of a server's panes gone, the newest
// generation is genuinely unrecoverable and the walk falls back one
// generation — the pre-replication behaviour, counter included. Decoy
// data lives in generation 100 here so the bit-exact check proves the
// fallback target.
func TestReplicaAllCopiesBadFallsBack(t *testing.T) {
	fs := rt.NewMemFS()
	var mu sync.Mutex
	regs := make(map[int]*metrics.Registry)

	world := mpi.NewChanWorld(fs, 1)
	err := world.Run(6, func(ctx mpi.Ctx) error {
		reg := metrics.New()
		mu.Lock()
		regs[ctx.Comm().Rank()] = reg
		mu.Unlock()
		cl, err := Init(ctx, Config{
			NumServers:        2,
			Profile:           hdf.NullProfile(),
			ActiveBuffering:   true,
			ReplicationFactor: 2,
			Metrics:           reg,
		})
		if err != nil {
			return err
		}
		if cl == nil {
			return nil
		}
		w := buildWindow(t, cl.Comm().Rank(), 2)
		if err := cl.WriteAttribute("rep/snap000000", w, "all", 0.0, 0); err != nil {
			return err
		}
		if err := cl.Sync(); err != nil {
			return err
		}
		w.EachPane(func(p *roccom.Pane) {
			pr, _ := p.Array("pressure")
			for i := range pr.F64 {
				pr.F64[i] += 1000
			}
		})
		if err := cl.WriteAttribute("rep/snap000100", w, "all", 1.0, 100); err != nil {
			return err
		}
		if err := cl.Sync(); err != nil {
			return err
		}

		// Server 0's generation-100 panes live in its primary and in the
		// replica homed at server 1's file set. Kill both copies.
		if cl.Comm().Rank() == 0 {
			if err := fs.Remove("rep/snap000100_s000.rhdf"); err != nil {
				return err
			}
			if err := fs.Remove("rep/snap000100_s001r1.rhdf"); err != nil {
				return err
			}
		}
		cl.Comm().Barrier()

		rw := zeroWindow(t, cl.Comm().Rank(), 2)
		base, err := cl.RestoreLatest("rep/", func(base string) error {
			return cl.ReadAttribute(base, rw, "all")
		})
		if err != nil {
			return err
		}
		if base != "rep/snap000000" {
			t.Errorf("client %d restored %q, want the previous generation", cl.Comm().Rank(), base)
		}
		if err := checkWindow(cl.Comm().Rank(), rw); err != nil {
			return err
		}
		return cl.Shutdown()
	})
	if err != nil {
		t.Fatal(err)
	}

	clients := 0
	for rank, reg := range regs {
		scanned := reg.Counter("rocpanda.restart.generations_scanned").Value()
		if scanned == 0 {
			continue // server rank
		}
		clients++
		if scanned != 2 {
			t.Errorf("rank %d generations_scanned = %d, want 2", rank, scanned)
		}
		if f := reg.Counter("rocpanda.restart.fallbacks").Value(); f != 1 {
			t.Errorf("rank %d restart.fallbacks = %d, want 1", rank, f)
		}
	}
	if clients != 4 {
		t.Fatalf("%d ranks ran the restore walk, want 4 clients", clients)
	}
}

package rocpanda

// Server failover. Rocpanda has no standby processes: when an I/O server
// dies, its clients are redistributed over the surviving servers and the
// run continues in degraded mode. The "coordinator" is not a process but a
// deterministic protocol every client executes identically:
//
//   - Detection. With Config.RetryTimeout set, every client-side wait for
//     a server response is bounded. A timed-out wait declares that server
//     dead (a false positive merely degrades service, it never corrupts
//     data: the wrongly-declared server keeps its buffered blocks and
//     drains them at its own shutdown).
//
//   - Agreement. At every collective boundary (sync, restart read,
//     shutdown) the clients merge their death observations with one
//     AllreduceMax per server, so the surviving set is agreed before any
//     operation that depends on it.
//
//   - Reassignment. Clients of dead servers are redistributed round-robin
//     over the surviving servers, in client-index order — a pure function
//     of (server count, client count, dead set), so every client computes
//     the same answer with no extra messages.
//
//   - Adoption. A reassigned client announces itself to its new server
//     with tagAdopt before its first retried operation; the server counts
//     it from then on for sync and shutdown accounting (ClientsAdopted in
//     ServerMetrics). Because every failed-over operation ends with an
//     acknowledged message on the new server, the adoption is always
//     registered before the client proceeds to any later collective.

import (
	"fmt"

	"genxio/internal/mpi"
)

// reassignServer returns the server index serving client j of n once the
// servers in dead have failed. Clients whose original server survives keep
// it; orphaned clients are dealt round-robin, in client-index order, over
// the surviving servers. ok is false when no server survives.
func reassignServer(m, n, j int, dead map[int]bool) (idx int, ok bool) {
	assign := func(j int) int { return j * m / n }
	orig := assign(j)
	if !dead[orig] {
		return orig, true
	}
	var alive []int
	for i := 0; i < m; i++ {
		if !dead[i] {
			alive = append(alive, i)
		}
	}
	if len(alive) == 0 {
		return 0, false
	}
	k := 0 // j's position among the orphaned clients
	for jj := 0; jj < j; jj++ {
		if dead[assign(jj)] {
			k++
		}
	}
	return alive[k%len(alive)], true
}

// currentServer returns the world rank of the server this client should
// talk to under the present dead set.
func (c *Client) currentServer() (int, bool) {
	idx, ok := reassignServer(c.numServers, c.nClients, c.myIdx, c.dead)
	if !ok {
		return 0, false
	}
	return c.srvRanks[idx], true
}

// aliveIdxs returns the indices of servers not believed dead, in order.
func (c *Client) aliveIdxs() []int {
	var alive []int
	for i := 0; i < c.numServers; i++ {
		if !c.dead[i] {
			alive = append(alive, i)
		}
	}
	return alive
}

// markDeadRank records a server (by world rank) as dead.
func (c *Client) markDeadRank(worldRank int) {
	for i, r := range c.srvRanks {
		if r == worldRank && !c.dead[i] {
			c.dead[i] = true
			c.m.Failovers++
			c.mx.failovers.Inc()
		}
	}
}

// shareDeaths is the coordinator's agreement step: one AllreduceMax per
// server merges every client's death observations, so all clients leave
// with the same surviving set. Collective over the client communicator;
// only called when fault tolerance is enabled (RetryTimeout > 0).
func (c *Client) shareDeaths() {
	for i := 0; i < c.numServers; i++ {
		v := 0.0
		if c.dead[i] {
			v = 1
		}
		if c.comm.AllreduceMax(v) > 0 {
			c.dead[i] = true
		}
	}
}

// ensureAdopted announces this client to target (world rank) if target is
// not its originally assigned server and no announcement was sent yet.
func (c *Client) ensureAdopted(target int) {
	if target == c.myServer {
		return
	}
	for _, t := range c.contacted {
		if t == target {
			return
		}
	}
	c.contacted = append(c.contacted, target)
	c.world.Send(target, tagAdopt, nil)
}

// recvTimeout receives the earliest message matching (src, tag), waiting
// at most RetryTimeout seconds (forever when timeouts are disabled). The
// wait polls with exponential backoff from RetryPoll so it behaves on both
// the wall-clock and virtual-time backends.
func (c *Client) recvTimeout(src, tag int) ([]byte, mpi.Status, bool) {
	if c.timeout <= 0 {
		data, st := c.world.Recv(src, tag)
		return data, st, true
	}
	clock := c.ctx.Clock()
	deadline := clock.Now() + c.timeout
	poll := c.poll
	for {
		if _, ok := c.world.Iprobe(src, tag); ok {
			data, st := c.world.Recv(src, tag)
			return data, st, true
		}
		now := clock.Now()
		if now >= deadline {
			return nil, mpi.Status{}, false
		}
		sleep := poll
		if now+sleep > deadline {
			sleep = deadline - now
		}
		clock.Sleep(sleep)
		if poll < c.timeout/8 {
			poll *= 2
		}
	}
}

// withFailover runs op against the client's current server until it
// succeeds, declaring the target dead and failing over on every timeout.
// op must send its request(s) to target and report whether the server's
// response arrived in time.
func (c *Client) withFailover(what string, op func(target int) bool) error {
	for attempt := 0; ; attempt++ {
		target, ok := c.currentServer()
		if !ok {
			return fmt.Errorf("rocpanda: %s: all %d servers failed", what, c.numServers)
		}
		c.ensureAdopted(target)
		if op(target) {
			return nil
		}
		c.m.Retries++
		c.mx.retries.Inc()
		c.markDeadRank(target)
		if attempt+1 > c.maxFail {
			return fmt.Errorf("rocpanda: %s: no responsive server after %d attempts", what, attempt+1)
		}
	}
}

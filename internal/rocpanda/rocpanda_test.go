package rocpanda

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"genxio/internal/cluster"
	"genxio/internal/hdf"
	"genxio/internal/mesh"
	"genxio/internal/mpi"
	"genxio/internal/roccom"
	"genxio/internal/rt"
	"genxio/internal/stats"
)

// listRHDF lists the committed snapshot files under prefix, excluding the
// commit manifests and any staged temporaries.
func listRHDF(t testing.TB, fs rt.FS, prefix string) []string {
	t.Helper()
	names, err := fs.List(prefix)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, n := range names {
		if strings.HasSuffix(n, ".rhdf") {
			out = append(out, n)
		}
	}
	return out
}

// buildWindow registers nblocks panes with deterministic data for a client
// rank (of the client communicator).
func buildWindow(t testing.TB, clientRank, nblocks int) *roccom.Window {
	rc := roccom.New()
	w, err := rc.NewWindow("fluid")
	if err != nil {
		t.Fatal(err)
	}
	w.NewAttribute(roccom.AttrSpec{Name: "pressure", Loc: roccom.NodeLoc, Type: hdf.F64, NComp: 1})
	w.NewAttribute(roccom.AttrSpec{Name: "flags", Loc: roccom.PaneLoc, Type: hdf.I32, NComp: 1})
	blocks, err := mesh.GenCylinder(mesh.CylinderSpec{
		RInner: 0.1, ROuter: 0.4, Length: 1,
		BR: 1, BT: nblocks, BZ: 1, NodesPerBlock: 50, Spread: 0.25,
	}, 1000*clientRank+1, stats.NewRNG(uint64(clientRank)+3))
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range blocks {
		p, err := w.RegisterPane(b.ID, b)
		if err != nil {
			t.Fatal(err)
		}
		pr, _ := p.Array("pressure")
		for i := range pr.F64 {
			pr.F64[i] = float64(b.ID) + float64(i)*0.001
		}
		fl, _ := p.Array("flags")
		fl.I32[0] = int32(b.ID * 2)
	}
	return w
}

func checkWindow(clientRank int, w *roccom.Window) error {
	for _, id := range w.PaneIDs() {
		p, _ := w.Pane(id)
		pr, _ := p.Array("pressure")
		for i := range pr.F64 {
			want := float64(id) + float64(i)*0.001
			if pr.F64[i] != want {
				return fmt.Errorf("client %d pane %d pressure[%d]=%v want %v", clientRank, id, i, pr.F64[i], want)
			}
		}
		fl, _ := p.Array("flags")
		if fl.I32[0] != int32(id*2) {
			return fmt.Errorf("client %d pane %d flags=%d", clientRank, id, fl.I32[0])
		}
	}
	return nil
}

// zeroWindow rebuilds the same panes but wipes the data, keeping the IDs
// (the restart wanted-list).
func zeroWindow(t testing.TB, clientRank, nblocks int) *roccom.Window {
	w := buildWindow(t, clientRank, nblocks)
	w.EachPane(func(p *roccom.Pane) {
		pr, _ := p.Array("pressure")
		for i := range pr.F64 {
			pr.F64[i] = 0
		}
		fl, _ := p.Array("flags")
		fl.I32[0] = 0
	})
	return w
}

func TestServerPlacement(t *testing.T) {
	got := serverRanks(512, 32, Spread)
	if got[0] != 0 || got[1] != 16 || got[31] != 496 {
		t.Fatalf("spread ranks %v", got[:3])
	}
	packed := serverRanks(12, 3, Packed)
	if fmt.Sprint(packed) != "[9 10 11]" {
		t.Fatalf("packed ranks %v", packed)
	}
}

// runPanda writes snapshots with one world layout and restarts with
// another server count, verifying data equality end to end on the real
// (goroutine) backend.
func TestWriteRestartDifferentServerCount(t *testing.T) {
	fs := rt.NewMemFS()
	const nClients = 6
	cfgW := Config{NumServers: 2, Profile: hdf.NullProfile(), ActiveBuffering: true}

	world := mpi.NewChanWorld(fs, 1)
	err := world.Run(nClients+2, func(ctx mpi.Ctx) error {
		cl, err := Init(ctx, cfgW)
		if err != nil {
			return err
		}
		if cl == nil {
			return nil // server rank, done
		}
		w := buildWindow(t, cl.Comm().Rank(), 3)
		if err := cl.WriteAttribute("ck/snap0100", w, "all", 1.0, 100); err != nil {
			return err
		}
		if err := cl.Sync(); err != nil {
			return err
		}
		m := cl.Metrics()
		if m.WriteCalls != 1 || m.BytesOut == 0 {
			return fmt.Errorf("client metrics %+v", m)
		}
		return cl.Shutdown()
	})
	if err != nil {
		t.Fatal(err)
	}
	// Two server files, not one per client.
	names := listRHDF(t, fs, "ck/snap0100")
	if len(names) != 2 {
		t.Fatalf("snapshot files %v, want 2", names)
	}

	// Restart with 3 servers on a 9-rank world (different m and n).
	world = mpi.NewChanWorld(fs, 1)
	err = world.Run(9, func(ctx mpi.Ctx) error {
		cl, err := Init(ctx, Config{NumServers: 3, Profile: hdf.NullProfile(), ActiveBuffering: true})
		if err != nil {
			return err
		}
		if cl == nil {
			return nil
		}
		// 6 clients again, same block partition.
		w := zeroWindow(t, cl.Comm().Rank(), 3)
		if err := cl.ReadAttribute("ck/snap0100", w, "all"); err != nil {
			return err
		}
		if err := checkWindow(cl.Comm().Rank(), w); err != nil {
			return err
		}
		return cl.Shutdown()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRestartWithRepartitionedBlocks(t *testing.T) {
	// Blocks written by 6 clients are read back by 3 clients, each
	// claiming two clients' worth of pane IDs — block migration between
	// runs, which the ID-based restart protocol must handle.
	fs := rt.NewMemFS()
	world := mpi.NewChanWorld(fs, 1)
	err := world.Run(7, func(ctx mpi.Ctx) error {
		cl, err := Init(ctx, Config{NumServers: 1, Profile: hdf.NullProfile(), ActiveBuffering: true})
		if err != nil {
			return err
		}
		if cl == nil {
			return nil
		}
		w := buildWindow(t, cl.Comm().Rank(), 2)
		if err := cl.WriteAttribute("mig/s", w, "all", 0, 0); err != nil {
			return err
		}
		return cl.Shutdown()
	})
	if err != nil {
		t.Fatal(err)
	}
	world = mpi.NewChanWorld(fs, 1)
	err = world.Run(4, func(ctx mpi.Ctx) error {
		cl, err := Init(ctx, Config{NumServers: 1, Profile: hdf.NullProfile(), ActiveBuffering: true})
		if err != nil {
			return err
		}
		if cl == nil {
			return nil
		}
		r := cl.Comm().Rank()
		// Claim the panes of original clients 2r and 2r+1.
		rc := roccom.New()
		w, _ := rc.NewWindow("fluid")
		w.NewAttribute(roccom.AttrSpec{Name: "pressure", Loc: roccom.NodeLoc, Type: hdf.F64, NComp: 1})
		w.NewAttribute(roccom.AttrSpec{Name: "flags", Loc: roccom.PaneLoc, Type: hdf.I32, NComp: 1})
		for _, orig := range []int{2 * r, 2*r + 1} {
			src := buildWindow(t, orig, 2)
			for _, id := range src.PaneIDs() {
				p, _ := src.Pane(id)
				if _, err := w.RegisterPane(id, p.Block); err != nil {
					return err
				}
			}
		}
		if err := cl.ReadAttribute("mig/s", w, "all"); err != nil {
			return err
		}
		for _, id := range w.PaneIDs() {
			p, _ := w.Pane(id)
			pr, _ := p.Array("pressure")
			for i := range pr.F64 {
				want := float64(id) + float64(i)*0.001
				if pr.F64[i] != want {
					return fmt.Errorf("pane %d not migrated correctly", id)
				}
			}
		}
		return cl.Shutdown()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMultiWindowSnapshot(t *testing.T) {
	fs := rt.NewMemFS()
	world := mpi.NewChanWorld(fs, 1)
	err := world.Run(5, func(ctx mpi.Ctx) error {
		cl, err := Init(ctx, Config{NumServers: 1, Profile: hdf.NullProfile(), ActiveBuffering: true})
		if err != nil {
			return err
		}
		if cl == nil {
			return nil
		}
		rc := roccom.New()
		fluid, _ := rc.NewWindow("fluid")
		fluid.NewAttribute(roccom.AttrSpec{Name: "pressure", Loc: roccom.NodeLoc, Type: hdf.F64, NComp: 1})
		solid, _ := rc.NewWindow("solid")
		solid.NewAttribute(roccom.AttrSpec{Name: "stress", Loc: roccom.ElemLoc, Type: hdf.F64, NComp: 1})
		blocks, _ := mesh.GenCylinder(mesh.CylinderSpec{
			RInner: 0.1, ROuter: 0.3, Length: 1, BR: 1, BT: 2, BZ: 1, NodesPerBlock: 40,
		}, 100*cl.Comm().Rank()+1, stats.NewRNG(5))
		fluid.RegisterPane(blocks[0].ID, blocks[0])
		tet, _ := mesh.Tetrahedralize(blocks[1])
		solid.RegisterPane(tet.ID, tet)

		// Both windows into the same snapshot base: one file per server.
		if err := cl.WriteAttribute("multi/s0", fluid, "all", 0, 0); err != nil {
			return err
		}
		if err := cl.WriteAttribute("multi/s0", solid, "all", 0, 0); err != nil {
			return err
		}
		if err := cl.Sync(); err != nil {
			return err
		}
		return cl.Shutdown()
	})
	if err != nil {
		t.Fatal(err)
	}
	names := listRHDF(t, fs, "multi/")
	if len(names) != 1 {
		t.Fatalf("files %v, want a single shared file", names)
	}
	// The file must contain both windows' datasets.
	r, err := hdf.Open(fs, names[0], rt.NewWallClock(), hdf.NullProfile())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var haveFluid, haveSolid bool
	for _, n := range r.Names() {
		if len(n) > 7 && n[:7] == "/fluid/" {
			haveFluid = true
		}
		if len(n) > 7 && n[:7] == "/solid/" {
			haveSolid = true
		}
	}
	if !haveFluid || !haveSolid {
		t.Fatalf("windows missing from shared file: %v", r.Names())
	}
}

func TestWriteThroughVsActiveBufferingVisibleCost(t *testing.T) {
	// On a simulated platform with a slow filesystem, active buffering
	// must hide the disk time from the clients.
	run := func(active bool) (visible float64) {
		plat := cluster.Turing()
		plat.NoiseFrac = 0
		w := cluster.NewWorld(plat, 17)
		err := w.Run(9, func(ctx mpi.Ctx) error {
			cl, err := Init(ctx, Config{
				NumServers:      1,
				Profile:         hdf.HDF4Profile(),
				ActiveBuffering: active,
				MemcpyBW:        plat.MemcpyBW,
			})
			if err != nil {
				return err
			}
			if cl == nil {
				return nil
			}
			win := buildWindow(t, cl.Comm().Rank(), 4)
			for snap := 0; snap < 2; snap++ {
				if err := cl.WriteAttribute(fmt.Sprintf("s%d", snap), win, "all", 0, snap); err != nil {
					return err
				}
				ctx.Clock().Compute(3)
			}
			if err := cl.Sync(); err != nil {
				return err
			}
			if cl.Comm().Rank() == 0 {
				visible = cl.Metrics().VisibleWrite
			}
			return cl.Shutdown()
		})
		if err != nil {
			t.Fatal(err)
		}
		return visible
	}
	through := run(false)
	buffered := run(true)
	if buffered > through/3 {
		t.Fatalf("active buffering visible %.4fs vs write-through %.4fs; want >=3x reduction", buffered, through)
	}
}

func TestBufferOverflowDrainsGracefully(t *testing.T) {
	var srvMetrics []ServerMetrics
	var mu sync.Mutex
	fs := rt.NewMemFS()
	world := mpi.NewChanWorld(fs, 1)
	err := world.Run(5, func(ctx mpi.Ctx) error {
		cl, err := Init(ctx, Config{
			NumServers:      1,
			Profile:         hdf.NullProfile(),
			ActiveBuffering: true,
			BufferCapacity:  1 << 10, // smaller than one block: every buffering overflows
			OnServerDone: func(m ServerMetrics) {
				mu.Lock()
				srvMetrics = append(srvMetrics, m)
				mu.Unlock()
			},
		})
		if err != nil {
			return err
		}
		if cl == nil {
			return nil
		}
		w := buildWindow(t, cl.Comm().Rank(), 4)
		for snap := 0; snap < 3; snap++ {
			if err := cl.WriteAttribute(fmt.Sprintf("ovf/s%d", snap), w, "all", 0, snap); err != nil {
				return err
			}
		}
		if err := cl.Sync(); err != nil {
			return err
		}
		return cl.Shutdown()
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(srvMetrics) != 1 {
		t.Fatalf("server metrics %v", srvMetrics)
	}
	m := srvMetrics[0]
	if m.Overflows == 0 {
		t.Fatal("tiny buffer never overflowed")
	}
	if m.BlocksWritten != m.BlocksBuffered {
		t.Fatalf("wrote %d of %d buffered blocks", m.BlocksWritten, m.BlocksBuffered)
	}
	if m.MaxBufBytes > 96<<10 {
		t.Fatalf("buffer grew to %d despite capacity", m.MaxBufBytes)
	}
	// All three snapshots must be complete, readable files.
	names := listRHDF(t, fs, "ovf/")
	if len(names) != 3 {
		t.Fatalf("files %v", names)
	}
	for _, n := range names {
		r, err := hdf.Open(fs, n, rt.NewWallClock(), hdf.NullProfile())
		if err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		if r.NumDatasets() == 0 {
			t.Fatalf("%s is empty", n)
		}
		r.Close()
	}
}

func TestFileCountReduction(t *testing.T) {
	// The paper's 8:1 ratio claim: files per snapshot = servers, an 8x
	// reduction versus individual I/O.
	fs := rt.NewMemFS()
	world := mpi.NewChanWorld(fs, 1)
	const total = 18 // 16 clients + 2 servers
	err := world.Run(total, func(ctx mpi.Ctx) error {
		cl, err := Init(ctx, Config{ClientServerRatio: 8, Profile: hdf.NullProfile(), ActiveBuffering: true})
		if err != nil {
			return err
		}
		if cl == nil {
			return nil
		}
		if cl.NumServers() != 2 {
			return fmt.Errorf("derived %d servers", cl.NumServers())
		}
		if cl.Comm().Size() != 16 {
			return fmt.Errorf("client comm size %d", cl.Comm().Size())
		}
		w := buildWindow(t, cl.Comm().Rank(), 2)
		if err := cl.WriteAttribute("ratio/s", w, "all", 0, 0); err != nil {
			return err
		}
		if err := cl.Sync(); err != nil {
			return err
		}
		return cl.Shutdown()
	})
	if err != nil {
		t.Fatal(err)
	}
	names := listRHDF(t, fs, "ratio/")
	if len(names) != 2 {
		t.Fatalf("files %v, want 2 (one per server)", names)
	}
}

func TestSingleAttributeRestore(t *testing.T) {
	fs := rt.NewMemFS()
	world := mpi.NewChanWorld(fs, 1)
	err := world.Run(3, func(ctx mpi.Ctx) error {
		cl, err := Init(ctx, Config{NumServers: 1, Profile: hdf.NullProfile(), ActiveBuffering: true})
		if err != nil {
			return err
		}
		if cl == nil {
			return nil
		}
		w := buildWindow(t, cl.Comm().Rank(), 2)
		if err := cl.WriteAttribute("attr/s", w, "all", 0, 0); err != nil {
			return err
		}
		if err := cl.Sync(); err != nil {
			return err
		}
		// Wipe just pressure, read just pressure.
		w.EachPane(func(p *roccom.Pane) {
			pr, _ := p.Array("pressure")
			for i := range pr.F64 {
				pr.F64[i] = 0
			}
		})
		if err := cl.ReadAttribute("attr/s", w, "pressure"); err != nil {
			return err
		}
		if err := checkWindow(cl.Comm().Rank(), w); err != nil {
			return err
		}
		return cl.Shutdown()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestInitValidation(t *testing.T) {
	world := mpi.NewChanWorld(rt.NewMemFS(), 1)
	err := world.Run(2, func(ctx mpi.Ctx) error {
		if _, err := Init(ctx, Config{NumServers: 2, Profile: hdf.NullProfile()}); err == nil {
			return fmt.Errorf("2 servers on 2 ranks accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	world = mpi.NewChanWorld(rt.NewMemFS(), 1)
	err = world.Run(2, func(ctx mpi.Ctx) error {
		if _, err := Init(ctx, Config{Profile: hdf.NullProfile()}); err == nil {
			return fmt.Errorf("zero servers accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIOAfterShutdownFails(t *testing.T) {
	world := mpi.NewChanWorld(rt.NewMemFS(), 1)
	err := world.Run(3, func(ctx mpi.Ctx) error {
		cl, err := Init(ctx, Config{NumServers: 1, Profile: hdf.NullProfile(), ActiveBuffering: true})
		if err != nil {
			return err
		}
		if cl == nil {
			return nil
		}
		if err := cl.Shutdown(); err != nil {
			return err
		}
		if err := cl.Shutdown(); err != nil { // idempotent
			return err
		}
		w := buildWindow(t, cl.Comm().Rank(), 1)
		if err := cl.WriteAttribute("x", w, "all", 0, 0); err == nil {
			return fmt.Errorf("write after shutdown accepted")
		}
		if err := cl.Sync(); err == nil {
			return fmt.Errorf("sync after shutdown accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestModuleLoadedThroughRoccom(t *testing.T) {
	world := mpi.NewChanWorld(rt.NewMemFS(), 1)
	err := world.Run(3, func(ctx mpi.Ctx) error {
		cl, err := Init(ctx, Config{NumServers: 1, Profile: hdf.NullProfile(), ActiveBuffering: true})
		if err != nil {
			return err
		}
		if cl == nil {
			return nil
		}
		rc := roccom.New()
		if err := rc.LoadModule(cl.Module(), "RocpandaIO"); err != nil {
			return err
		}
		svc, err := roccom.LoadedIO(rc, "RocpandaIO")
		if err != nil {
			return err
		}
		w := buildWindow(t, cl.Comm().Rank(), 2)
		if err := svc.WriteAttribute("mod/s", w, "all", 0.2, 20); err != nil {
			return err
		}
		if err := svc.Sync(); err != nil {
			return err
		}
		return rc.UnloadModule("RocpandaIO") // performs Shutdown
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestProtocolCodecs(t *testing.T) {
	h := writeHdr{File: "f", Window: "w", Attr: "all", Time: 0.83, Step: 50, NBlocks: 7, Bytes: 1 << 30}
	got, err := decodeWriteHdr(encodeWriteHdr(h))
	if err != nil || got != h {
		t.Fatalf("writeHdr round trip: %+v %v", got, err)
	}
	if _, err := decodeWriteHdr([]byte{1, 2}); err == nil {
		t.Fatal("truncated header accepted")
	}
	r := readReq{File: "f", Window: "w", Attr: "all", PaneIDs: []int32{1, 5, 9}}
	got2, err := decodeReadReq(encodeReadReq(r))
	if err != nil || got2.File != r.File || len(got2.PaneIDs) != 3 || got2.PaneIDs[2] != 9 {
		t.Fatalf("readReq round trip: %+v %v", got2, err)
	}
	if _, err := decodeReadReq([]byte{9}); err == nil {
		t.Fatal("truncated request accepted")
	}
}

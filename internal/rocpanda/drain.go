package rocpanda

// The background drain engine: the asynchronous writeback the paper's
// servers use to hide file I/O behind client computation. With
// Config.AsyncDrain the server no longer drains its buffer inline between
// probe polls; instead the blocks become ClassWrite tasks on an
// internal/iosched pool (real goroutines on the channel backend,
// simulation processes with their own clock and filesystem view on the
// virtual platforms) that continuously empties a bounded queue while the
// request loop keeps absorbing client writes.
//
// Ordering and bit-exactness: a block's task key is its destination file,
// so the scheduler's keyed-ordering invariant (same key => same worker, in
// submission order) gives each file its blocks in exactly the arrival
// order the synchronous drain would have used — the output files are
// byte-identical between the two modes.
//
// Backpressure: Config.BufferBudgetBytes becomes the scheduler budget
// under the Writeback policy. An enqueue that overruns it stalls the
// request loop (delaying the client's ack) on completion signals — no
// sleep-polling — until the writers catch up, so a one-block budget
// degenerates to write-through timing while an ample budget gives full
// overlap.
//
// Commit safety: flushOutput (the barrier behind Sync, restart scans and
// shutdown) is iosched.Flush: every worker finishes its queue, closes its
// files and acks with its sticky error. Only then may a client write the
// generation's manifest, so crash consistency, catalog publication and
// generation fallback are unchanged from the synchronous drain.
//
// Faults: the existing crash points fire on the writer task (MidDrain via
// a fatal task result, BeforeMeta via the sink's panic) exactly as they
// fire on the synchronous path, and a writer that observes a file error
// reports it through the flush ack so the client-side allreduce refuses
// the commit (see client.Sync).

import (
	"genxio/internal/faults"
	"genxio/internal/iosched"
	"genxio/internal/rt"
	"genxio/internal/trace"
)

const (
	// maxDrainWriters caps Config.DrainWriters.
	maxDrainWriters = 8
	// drainQueueCap is each writer's job-queue capacity in blocks; the
	// byte budget, not this bound, is the intended flow control.
	drainQueueCap = 4096
)

// drainState is a writer's private iosched.WorkerState: a blockSink with
// the worker's own clock identity and filesystem view. Its files stay
// open (staged temporaries) if the worker dies to an injected crash, as a
// real process death would leave them.
type drainState struct{ sink *blockSink }

// Flush implements iosched.WorkerState: the barrier closes every file.
func (d *drainState) Flush() error { return d.sink.closeAll("") }

// Close implements iosched.WorkerState (never called: the drain pool
// keeps state unclosed on exit, see Config.CloseStateOnExit).
func (d *drainState) Close() error { return nil }

// drainEngine adapts one server's async writeback onto internal/iosched.
// All entry points (enqueue, flushBarrier, close) run on the server
// goroutine.
type drainEngine struct {
	s   *server
	eng *iosched.Engine
	// wms collects per-writer sink tallies (blocks, bytes, files); each
	// entry is written only by its worker, and read only after the
	// worker's exit message has been received (close).
	wms    []ServerMetrics
	closed bool
}

// newDrainEngine builds the scheduler instance and spawns its writers.
func newDrainEngine(s *server) *drainEngine {
	e := &drainEngine{s: s, wms: make([]ServerMetrics, maxDrainWriters)}
	e.eng = iosched.New(s.ctx, iosched.Config{
		Name:       "panda-drain",
		Workers:    s.cfg.DrainWriters,
		MaxWorkers: maxDrainWriters,
		Budget:     s.cfg.BufferBudgetBytes,
		QueueCap:   drainQueueCap,
		Policy:     iosched.Writeback{},
		FlushClass: iosched.ClassWrite,
		NewState: func(wi int, tc rt.TaskCtx) iosched.WorkerState {
			return &drainState{sink: newBlockSink(s, tc.Clock(), tc.FS(), &e.wms[wi])}
		},
		// An injected crash point (BeforeMeta inside the sink) panics with
		// serverCrashed; the worker dies with its files unclosed.
		FatalPanic: func(r interface{}) bool { _, died := r.(serverCrashed); return died },
		Metrics:    s.cfg.Metrics,
		Trace:      s.cfg.Trace,
		TraceRank:  s.traceRank(),
		TracePhase: trace.PhaseDrain,
		// The drain timeline records every block span, including
		// zero-width ones on the virtual platforms.
		TraceZeroSpans: true,
		// Legacy rocpanda.drain.* views of the scheduler's events.
		OnWorkerDone: func(c iosched.Completion, overlapped bool) {
			if c.Task == nil { // a flush-close failure
				s.mx.drainErrors.Inc()
				return
			}
			s.mx.drainSeconds.Observe(c.T1 - c.T0)
			if overlapped {
				s.mx.overlapSeconds.Observe(c.T1 - c.T0)
			}
			if c.Result.Err != nil {
				s.mx.drainErrors.Inc()
			}
		},
		OnDepth: func(depth int, queued int64) {
			if queued > s.m.MaxBufBytes {
				s.m.MaxBufBytes = queued
			}
			s.mx.bufBytesPeak.SetMax(float64(queued))
			if depth > s.m.DrainQueuePeak {
				s.m.DrainQueuePeak = depth
			}
			s.mx.queueDepth.SetMax(float64(depth))
		},
		OnWait: func(iosched.Class) {
			s.m.BackpressureWaits++
			s.mx.backpressure.Inc()
		},
	})
	return e
}

// crashed reports whether a writer died to an injected crash; the request
// loop polls it and takes the process down.
func (e *drainEngine) crashed() bool { return e.eng.Crashed() }

// enqueue hands one buffered block to the scheduler, which may stall the
// request loop on the byte budget. Runs on the server goroutine.
func (e *drainEngine) enqueue(blk pendingBlock) {
	info := e.eng.Submit(&iosched.Task{
		Class: iosched.ClassWrite,
		Key:   blk.fname,
		Cost:  blk.bytes,
		Run: func(tc rt.TaskCtx, st iosched.WorkerState) iosched.Result {
			err := st.(*drainState).sink.write(blk)
			return iosched.Result{
				Err: err,
				// MidDrain fires after the block lands (and its span and
				// tallies are recorded), exactly as on the synchronous
				// path.
				Fatal: e.s.cfg.Crash.Hit(e.s.idx, faults.MidDrain),
			}
		},
	})
	if info.Waited && e.eng.Crashed() {
		panic(serverCrashed{})
	}
}

// flushBarrier empties the pool: every writer finishes its queue, closes
// its files and acks. Returns the first sticky writer error. Panics with
// serverCrashed if a writer died to an injected crash. Runs on the server
// goroutine.
func (e *drainEngine) flushBarrier() error {
	if e.eng.Crashed() {
		panic(serverCrashed{})
	}
	err := e.eng.Flush()
	if e.eng.Crashed() {
		panic(serverCrashed{})
	}
	return err
}

// close tears the pool down and merges the writers' tallies into the
// server's metrics. Called exactly once, from run's deferred cleanup, on
// both the normal and the crashed path — so OnServerDone always sees the
// writers' completed counts, and the simulation's non-daemon writer
// processes always terminate.
func (e *drainEngine) close() {
	if e.closed {
		return
	}
	e.closed = true
	e.eng.Close()
	for i := range e.wms {
		e.s.m.BlocksWritten += e.wms[i].BlocksWritten
		e.s.m.BytesWritten += e.wms[i].BytesWritten
		e.s.m.FilesCreated += e.wms[i].FilesCreated
	}
	t := e.eng.Tally(iosched.ClassWrite)
	e.s.m.OverlapSeconds += t.Overlap
	e.s.m.DrainErrors += int(t.Errors)
	if e.eng.Crashed() {
		e.s.m.Crashed = true
	}
}

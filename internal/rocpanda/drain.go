package rocpanda

// The background drain engine: the asynchronous writeback the paper's
// servers use to hide file I/O behind client computation. With
// Config.AsyncDrain the server no longer drains its buffer inline between
// probe polls; instead a small pool of writer tasks (ctx.Spawn — real
// goroutines on the channel backend, simulation processes with their own
// clock and filesystem view on the virtual platforms) continuously empties
// a bounded queue while the request loop keeps absorbing client writes.
//
// Ordering and bit-exactness: blocks route to writers by destination file
// (FNV hash), so each file sees its blocks in exactly the arrival order the
// synchronous drain would have used — the output files are byte-identical
// between the two modes.
//
// Backpressure: Config.BufferBudgetBytes bounds the bytes in flight. An
// enqueue that overruns the budget stalls the request loop (delaying the
// client's ack) until the writers catch up, so a one-block budget
// degenerates to write-through timing while an ample budget gives full
// overlap.
//
// Commit safety: flushOutput (the barrier behind Sync, restart scans and
// shutdown) sends every writer a flush token and waits for the matching
// acks; queue FIFO order guarantees all previously queued blocks are on
// disk and every file closed before the ack. Only then may a client write
// the generation's manifest, so crash consistency, catalog publication and
// generation fallback are unchanged from the synchronous drain.
//
// Faults: the existing crash points fire on the writer task (MidDrain,
// BeforeMeta) exactly as they fire on the synchronous path, and a writer
// that observes a file error reports it through the flush ack so the
// client-side allreduce refuses the commit (see client.Sync).

import (
	"hash/fnv"
	"sync/atomic"

	"genxio/internal/faults"
	"genxio/internal/rt"
	"genxio/internal/trace"
)

const (
	// maxDrainWriters caps Config.DrainWriters.
	maxDrainWriters = 8
	// drainQueueCap is each writer's job-queue capacity in blocks; the
	// byte budget, not this bound, is the intended flow control.
	drainQueueCap = 4096
	// backpressurePoll is the budget-wait poll interval (seconds): short
	// enough to release a stalled enqueue promptly, long enough that the
	// virtual-time platforms don't grind through pointless wakeups.
	backpressurePoll = 1e-4
)

// drainFlush asks a writer to finish everything queued before it, close
// its files, and acknowledge with a drainAck.
type drainFlush struct{}

// drainAck is a writer's flush acknowledgement; err carries the writer's
// sticky drain error (nil when all its output landed).
type drainAck struct{ err error }

// drainExit is a writer's final message: its accumulated tallies, and
// whether it died to an injected crash.
type drainExit struct {
	m       ServerMetrics
	crashed bool
}

// drainEngine owns the writer pool of one server. All exported-ish entry
// points (enqueue, barrier, close) run on the server goroutine; runWorker
// runs on the writer tasks. The two sides share only the queues and a few
// atomics, which keeps both the race detector and the deterministic
// simulation happy.
type drainEngine struct {
	s      *server
	clock  rt.Clock // the server loop's clock identity
	nw     int
	budget int64
	jobs   []rt.Queue // per-writer block queues (FIFO per file)
	ctl    rt.Queue   // writers -> server: acks and exits

	queued  atomic.Int64 // bytes enqueued, not yet written
	depth   atomic.Int64 // blocks enqueued, not yet written
	barrier atomic.Bool  // a flush is in progress (writes then aren't overlap)
	crashed atomic.Bool  // a writer died to an injected crash
	dead    atomic.Bool  // server gone: writers discard instead of writing

	// Server-goroutine-only state.
	exited int
	closed bool
}

// newDrainEngine builds the pool and spawns its writers.
func newDrainEngine(s *server) *drainEngine {
	nw := s.cfg.DrainWriters
	if nw < 1 {
		nw = 1
	}
	if nw > maxDrainWriters {
		nw = maxDrainWriters
	}
	e := &drainEngine{
		s:      s,
		clock:  s.ctx.Clock(),
		nw:     nw,
		budget: s.cfg.BufferBudgetBytes,
		ctl:    s.ctx.NewQueue(4*nw + 4),
	}
	// All queues exist before any worker starts: a worker indexes e.jobs,
	// and growing the slice under it would race.
	for wi := 0; wi < nw; wi++ {
		e.jobs = append(e.jobs, s.ctx.NewQueue(drainQueueCap))
	}
	for wi := 0; wi < nw; wi++ {
		wi := wi
		s.ctx.Spawn("panda-drain", func(tc rt.TaskCtx) { e.runWorker(wi, tc) })
	}
	return e
}

// route assigns a destination file to a writer. Stable by name, so one
// file's blocks always drain through one writer, in arrival order.
func (e *drainEngine) route(fname string) int {
	h := fnv.New32a()
	h.Write([]byte(fname))
	return int(h.Sum32() % uint32(e.nw))
}

// enqueue hands one buffered block to its writer, tracking queue peaks and
// applying the byte-budget backpressure. Runs on the server goroutine.
func (e *drainEngine) enqueue(blk pendingBlock) {
	q := e.queued.Add(blk.bytes)
	if q > e.s.m.MaxBufBytes {
		e.s.m.MaxBufBytes = q
	}
	e.s.mx.bufBytesPeak.SetMax(float64(q))
	d := e.depth.Add(1)
	if int(d) > e.s.m.DrainQueuePeak {
		e.s.m.DrainQueuePeak = int(d)
	}
	e.s.mx.queueDepth.SetMax(float64(d))
	// Whether this enqueue overruns the budget is decided here, before the
	// writers can race the check: the wait accounting stays deterministic.
	over := e.budget > 0 && q > e.budget
	if over {
		e.s.m.BackpressureWaits++
		e.s.mx.backpressure.Inc()
	}
	e.jobs[e.route(blk.fname)].Put(e.clock, blk)
	for over && e.queued.Load() > e.budget {
		if e.crashed.Load() {
			panic(serverCrashed{})
		}
		e.clock.Sleep(backpressurePoll)
	}
}

// flushBarrier empties the pool: every writer finishes its queue, closes
// its files and acks. Returns the first sticky writer error. Panics with
// serverCrashed if a writer died to an injected crash. Runs on the server
// goroutine.
func (e *drainEngine) flushBarrier() error {
	if e.crashed.Load() {
		panic(serverCrashed{})
	}
	e.barrier.Store(true)
	defer e.barrier.Store(false)
	for _, q := range e.jobs {
		q.Put(e.clock, drainFlush{})
	}
	var err error
	for acks := 0; acks < e.nw; {
		v, ok := e.ctl.Get(e.clock)
		if !ok {
			break
		}
		switch msg := v.(type) {
		case drainAck:
			acks++
			if msg.err != nil && err == nil {
				err = msg.err
			}
		case drainExit:
			// A writer can only exit mid-run by crashing; take the server
			// down with it (they are one process).
			e.noteExit(msg)
			panic(serverCrashed{})
		}
	}
	return err
}

// close tears the pool down and merges the writers' tallies into the
// server's metrics. Called exactly once, from run's deferred cleanup, on
// both the normal and the crashed path — so OnServerDone always sees the
// writers' completed counts, and the simulation's non-daemon writer
// processes always terminate.
func (e *drainEngine) close() {
	if e.closed {
		return
	}
	e.closed = true
	// From here on writers discard instead of writing: a crashed server's
	// queued blocks die with the process, exactly like the synchronous
	// buffer. On the normal path the queues are already empty (run flushes
	// before acknowledging shutdown).
	e.dead.Store(true)
	for _, q := range e.jobs {
		q.Close()
	}
	for e.exited < e.nw {
		v, ok := e.ctl.Get(e.clock)
		if !ok {
			break
		}
		// Stale flush acks from a barrier a crash interrupted are dropped.
		if msg, isExit := v.(drainExit); isExit {
			e.noteExit(msg)
		}
	}
	e.ctl.Close()
}

// noteExit merges one writer's final tallies (server goroutine; the queue
// handoff orders it after everything the writer did).
func (e *drainEngine) noteExit(msg drainExit) {
	e.exited++
	e.s.m.BlocksWritten += msg.m.BlocksWritten
	e.s.m.BytesWritten += msg.m.BytesWritten
	e.s.m.FilesCreated += msg.m.FilesCreated
	e.s.m.OverlapSeconds += msg.m.OverlapSeconds
	e.s.m.DrainErrors += msg.m.DrainErrors
	if msg.crashed {
		e.s.m.Crashed = true
	}
}

// runWorker is one writer task's body. It owns a private blockSink (its
// own files, clock identity and filesystem view) and local tallies, so the
// only cross-task traffic is the queues and the engine's atomics.
func (e *drainEngine) runWorker(wi int, tc rt.TaskCtx) {
	var wm ServerMetrics
	sink := newBlockSink(e.s, tc.Clock(), tc.FS(), &wm)
	var sticky error
	crashed := false
	defer func() {
		if r := recover(); r != nil {
			if _, died := r.(serverCrashed); !died {
				panic(r)
			}
			// An injected crash point fired on this writer: the server
			// process is dead. Flag it so the request loop and any barrier
			// stop too, and leave the files unclosed (staged temporaries),
			// as a real process death would.
			crashed = true
			e.crashed.Store(true)
		}
		e.ctl.Put(tc.Clock(), drainExit{m: wm, crashed: crashed})
	}()
	for {
		v, ok := e.jobs[wi].Get(tc.Clock())
		if !ok {
			return
		}
		switch msg := v.(type) {
		case pendingBlock:
			if e.dead.Load() {
				// The server crashed; its queued blocks die with it.
				e.queued.Add(-msg.bytes)
				e.depth.Add(-1)
				continue
			}
			t0 := tc.Clock().Now()
			err := sink.write(msg)
			t1 := tc.Clock().Now()
			e.queued.Add(-msg.bytes)
			e.depth.Add(-1)
			e.s.mx.drainSeconds.Observe(t1 - t0)
			if !e.barrier.Load() {
				// Written while the request loop was free to serve clients:
				// this is the overlap the paper claims.
				wm.OverlapSeconds += t1 - t0
				e.s.mx.overlapSeconds.Observe(t1 - t0)
			}
			e.s.cfg.Trace.Record(e.s.traceRank(), trace.PhaseDrain, t0, t1)
			if err != nil {
				if sticky == nil {
					sticky = err
				}
				wm.DrainErrors++
				e.s.mx.drainErrors.Inc()
			}
			e.s.maybeCrash(faults.MidDrain)
		case drainFlush:
			if err := sink.closeAll(""); err != nil {
				if sticky == nil {
					sticky = err
				}
				wm.DrainErrors++
				e.s.mx.drainErrors.Inc()
			}
			e.ctl.Put(tc.Clock(), drainAck{err: sticky})
		}
	}
}

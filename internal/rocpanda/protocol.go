package rocpanda

import (
	"encoding/binary"
	"fmt"
)

// Client-server protocol tags (application tag space, >= 0).
const (
	tagWriteHdr = 1100 + iota
	tagWriteBlock
	tagWriteAck
	tagReadReq
	tagReadBlock
	tagReadDone
	tagSync
	tagSyncAck
	tagShutdown
	tagShutdownAck
	// tagAdopt tells a server that the sending client now belongs to it:
	// the client's original server died (or stopped responding) and the
	// coordinator's deterministic reassignment picked this one. The
	// server adds the client to its served set, so sync and shutdown
	// accounting include it (degraded mode).
	tagAdopt
)

// tagSyncAck and tagShutdownAck payload: empty on success, or one status
// byte reporting that the server failed to land some of its output (a
// block write or file close error). Clients fold the byte into the commit
// allreduce so no generation with missing data ever gets a manifest.
const ackDrainFailed = 1

// tagReadDone payload: one mode byte reporting how the server served its
// share of the restart, so clients (and their metrics) can tell indexed
// reads from scan fallbacks. Older-style empty payloads decode as scan.
const (
	doneModeScan    = 0 // directory walk over the server's file share
	doneModeIndexed = 1 // catalog-planned direct offset reads
	// doneModeFailed reports that the server could not serve its share at
	// all (e.g. the snapshot listing failed): the round completed — the
	// client is not left hanging — but shipped nothing from this server.
	// The client decides whether the restart is still complete (peers may
	// hold duplicate panes) or must fall back a generation.
	doneModeFailed = 2
)

// writeHdr announces a collective write from one client: nblocks block
// messages follow on tagWriteBlock.
type writeHdr struct {
	File    string
	Window  string
	Attr    string
	Time    float64
	Step    int32
	NBlocks int32
	Bytes   int64
}

// readReq asks the servers for the panes this client owns in a snapshot.
// Alive lists the server indices the clients believe are alive; the
// snapshot files are assigned round-robin over that set, so a degraded
// read still covers every file. Empty means all servers.
type readReq struct {
	File    string
	Window  string
	Attr    string
	PaneIDs []int32
	Alive   []int32
}

func encodeWriteHdr(h writeHdr) []byte {
	var b []byte
	b = putStr(b, h.File)
	b = putStr(b, h.Window)
	b = putStr(b, h.Attr)
	b = binary.LittleEndian.AppendUint64(b, uint64(int64(h.Time*1e9)))
	b = binary.LittleEndian.AppendUint32(b, uint32(h.Step))
	b = binary.LittleEndian.AppendUint32(b, uint32(h.NBlocks))
	b = binary.LittleEndian.AppendUint64(b, uint64(h.Bytes))
	return b
}

func decodeWriteHdr(b []byte) (writeHdr, error) {
	var h writeHdr
	c := &byteCursor{b: b}
	h.File = c.str()
	h.Window = c.str()
	h.Attr = c.str()
	h.Time = float64(int64(c.u64())) / 1e9
	h.Step = int32(c.u32())
	h.NBlocks = int32(c.u32())
	h.Bytes = int64(c.u64())
	if c.err != nil {
		return h, fmt.Errorf("rocpanda: corrupt write header: %w", c.err)
	}
	return h, nil
}

func encodeReadReq(r readReq) []byte {
	var b []byte
	b = putStr(b, r.File)
	b = putStr(b, r.Window)
	b = putStr(b, r.Attr)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(r.PaneIDs)))
	for _, id := range r.PaneIDs {
		b = binary.LittleEndian.AppendUint32(b, uint32(id))
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(r.Alive)))
	for _, s := range r.Alive {
		b = binary.LittleEndian.AppendUint32(b, uint32(s))
	}
	return b
}

func decodeReadReq(b []byte) (readReq, error) {
	var r readReq
	c := &byteCursor{b: b}
	r.File = c.str()
	r.Window = c.str()
	r.Attr = c.str()
	n := int(c.u32())
	if c.err == nil && n >= 0 && n <= len(b) {
		r.PaneIDs = make([]int32, n)
		for i := range r.PaneIDs {
			r.PaneIDs[i] = int32(c.u32())
		}
	}
	na := int(c.u32())
	if c.err == nil && na >= 0 && na <= len(b) {
		r.Alive = make([]int32, na)
		for i := range r.Alive {
			r.Alive[i] = int32(c.u32())
		}
	}
	if c.err != nil {
		return r, fmt.Errorf("rocpanda: corrupt read request: %w", c.err)
	}
	return r, nil
}

func putStr(b []byte, s string) []byte {
	b = binary.LittleEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...)
}

type byteCursor struct {
	b   []byte
	off int
	err error
}

func (c *byteCursor) need(n int) bool {
	if c.err != nil {
		return false
	}
	if c.off+n > len(c.b) {
		c.err = fmt.Errorf("truncated at %d", c.off)
		return false
	}
	return true
}

func (c *byteCursor) u16() uint16 {
	if !c.need(2) {
		return 0
	}
	v := binary.LittleEndian.Uint16(c.b[c.off:])
	c.off += 2
	return v
}

func (c *byteCursor) u32() uint32 {
	if !c.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(c.b[c.off:])
	c.off += 4
	return v
}

func (c *byteCursor) u64() uint64 {
	if !c.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(c.b[c.off:])
	c.off += 8
	return v
}

func (c *byteCursor) str() string {
	n := int(c.u16())
	if !c.need(n) {
		return ""
	}
	s := string(c.b[c.off : c.off+n])
	c.off += n
	return s
}

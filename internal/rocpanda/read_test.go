package rocpanda

import (
	"errors"
	"sync"
	"testing"
	"time"

	"genxio/internal/catalog"
	"genxio/internal/faults"
	"genxio/internal/hdf"
	"genxio/internal/metrics"
	"genxio/internal/mpi"
	"genxio/internal/rt"
)

// collectServerMetrics returns a tune hook that turns on the read engine
// knobs via tune and collects every server's final metrics.
func collectServerMetrics(sm *[]ServerMetrics, mu *sync.Mutex, tune func(*Config)) func(*Config) {
	return func(cfg *Config) {
		if tune != nil {
			tune(cfg)
		}
		cfg.OnServerDone = func(m ServerMetrics) {
			mu.Lock()
			*sm = append(*sm, m)
			mu.Unlock()
		}
	}
}

// restartExpectIncomplete restarts file on a fresh world over fs and
// requires every client's collective read to fail with
// ErrIncompleteRestart — the degraded-not-dead contract of a damaged or
// unreachable share. Returns the servers' final metrics.
func restartExpectIncomplete(t *testing.T, fs rt.FS, file string, nClients, nServers int, reg *metrics.Registry, tune func(*Config)) []ServerMetrics {
	t.Helper()
	var mu sync.Mutex
	var sm []ServerMetrics
	world := mpi.NewChanWorld(fs, 1)
	err := world.Run(nClients+nServers, func(ctx mpi.Ctx) error {
		cfg := Config{
			NumServers: nServers, Profile: hdf.NullProfile(),
			ActiveBuffering: true, Metrics: reg,
		}
		if tune != nil {
			tune(&cfg)
		}
		cfg.OnServerDone = func(m ServerMetrics) {
			mu.Lock()
			sm = append(sm, m)
			mu.Unlock()
		}
		cl, err := Init(ctx, cfg)
		if err != nil {
			return err
		}
		if cl == nil {
			return nil
		}
		w := zeroWindow(t, cl.Comm().Rank(), 2)
		readErr := cl.ReadAttribute(file, w, "all")
		if err := cl.Shutdown(); err != nil {
			return err
		}
		if readErr == nil {
			t.Errorf("client %d restored %q despite the injected damage", cl.Comm().Rank(), file)
			return nil
		}
		if !errors.Is(readErr, ErrIncompleteRestart) {
			return readErr
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return sm
}

// TestParallelReadMxNBitExact is the read engine's core contract: with
// ParallelRead on, an M×N restart restores every pane bit-identical to
// the serial path, whether shrinking or growing the topology — ordering
// across files may differ, but per-file plan order and first-arrival
// dedupe make the restored state equal.
func TestParallelReadMxNBitExact(t *testing.T) {
	var mu sync.Mutex
	cases := []struct {
		name               string
		wClients, wServers int
		rClients, rServers int
	}{
		{"shrink", 8, 2, 3, 1},
		{"grow", 3, 1, 8, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs := rt.NewMemFS()
			file := "pread/" + tc.name
			writeSnapshot(t, fs, file, tc.wClients, tc.wServers, 2)
			want := expectedPanes(t, tc.wClients, 2)

			serialReg := metrics.New()
			checkMxN(t, want, restartTopology(t, fs, file, tc.rClients, tc.rServers, serialReg))

			var sm []ServerMetrics
			parReg := metrics.New()
			got := restartTopologyCfg(t, fs, file, tc.rClients, tc.rServers, parReg,
				collectServerMetrics(&sm, &mu, func(cfg *Config) {
					cfg.ParallelRead = true
					cfg.ReadWorkers = 4
				}))
			checkMxN(t, want, got)

			// Same generation, same plans: the engine must read exactly the
			// bytes the serial indexed path reads, and serve from the catalog.
			sSnap, pSnap := serialReg.Snapshot(), parReg.Snapshot()
			if s, p := sSnap.Counters["rocpanda.restart.bytes_read"], pSnap.Counters["rocpanda.restart.bytes_read"]; p != s || p == 0 {
				t.Fatalf("parallel bytes_read = %d, serial = %d; want equal and > 0", p, s)
			}
			if hits := pSnap.Counters["rocpanda.restart.catalog_hits"]; hits != int64(tc.rServers) {
				t.Fatalf("catalog_hits = %d, want %d", hits, tc.rServers)
			}
			mu.Lock()
			defer mu.Unlock()
			var served, errs int
			for _, m := range sm {
				served += m.ReadsServed
				errs += m.ReadErrors
			}
			if served == 0 {
				t.Fatal("parallel servers shipped nothing")
			}
			if errs != 0 {
				t.Fatalf("read errors = %d on a healthy restart", errs)
			}
			sm = nil
		})
	}
}

// TestParallelReadQueueFillsUnbounded pins the admission loop: with no
// byte budget every task is dealt before the first result is consumed,
// so the queue peak equals the round's task count (at least the file
// count) — the pool actually runs wide, it doesn't degenerate.
func TestParallelReadQueueFillsUnbounded(t *testing.T) {
	fs := rt.NewMemFS()
	writeSnapshot(t, fs, "pq/s", 8, 2, 2)
	var mu sync.Mutex
	var sm []ServerMetrics
	got := restartTopologyCfg(t, fs, "pq/s", 3, 1, nil,
		collectServerMetrics(&sm, &mu, func(cfg *Config) { cfg.ParallelRead = true }))
	checkMxN(t, expectedPanes(t, 8, 2), got)
	mu.Lock()
	defer mu.Unlock()
	if len(sm) != 1 {
		t.Fatalf("server metrics %v, want 1 server", sm)
	}
	// The lone server's share is the two writers' files: at least one task
	// per file must have been in flight together.
	if sm[0].ReadQueuePeak < 2 {
		t.Fatalf("ReadQueuePeak = %d, want >= 2 (both files in flight)", sm[0].ReadQueuePeak)
	}
	if sm[0].ReadBackpressureWaits != 0 {
		t.Fatalf("backpressure waits = %d with no budget", sm[0].ReadBackpressureWaits)
	}
}

// TestParallelReadBudgetOneByteDegeneratesToSerial pins the budget
// semantics: a budget smaller than any task admits exactly one read at a
// time — every later task stalls until the pool drains — and the restart
// still restores everything bit-exact.
func TestParallelReadBudgetOneByteDegeneratesToSerial(t *testing.T) {
	fs := rt.NewMemFS()
	writeSnapshot(t, fs, "pb/s", 8, 2, 2)
	var mu sync.Mutex
	var sm []ServerMetrics
	got := restartTopologyCfg(t, fs, "pb/s", 3, 1, nil,
		collectServerMetrics(&sm, &mu, func(cfg *Config) {
			cfg.ParallelRead = true
			cfg.ReadWorkers = 4
			cfg.ReadBudgetBytes = 1
		}))
	checkMxN(t, expectedPanes(t, 8, 2), got)
	mu.Lock()
	defer mu.Unlock()
	if len(sm) != 1 {
		t.Fatalf("server metrics %v, want 1 server", sm)
	}
	m := sm[0]
	if m.ReadQueuePeak != 1 {
		t.Fatalf("ReadQueuePeak = %d with a 1-byte budget, want 1", m.ReadQueuePeak)
	}
	if m.ReadBackpressureWaits < 1 {
		t.Fatalf("ReadBackpressureWaits = %d, want >= 1", m.ReadBackpressureWaits)
	}
}

// TestReadListFailureDegradesNotCrash pins the first bugfix: a failed
// directory listing used to panic the server mid-round, hanging every
// client waiting for its done notification. It must instead count a read
// error and report the round failed — clients get their notifications,
// the collective completes, and the restart surfaces ErrIncompleteRestart
// instead of deadlocking. Run without RetryTimeout so a hang would be a
// hang, not a failover.
func TestReadListFailureDegradesNotCrash(t *testing.T) {
	raw := rt.NewMemFS()
	writeSnapshot(t, raw, "lf/A", 2, 1, 2)
	plan := faults.NewFSPlan(1, faults.FSRule{
		Op: faults.OpList, PathPrefix: "lf/A_s", Msg: "stale file handle",
	})
	reg := metrics.New()
	sm := restartExpectIncomplete(t, faults.WrapFS(raw, plan), "lf/A", 2, 1, reg, nil)
	if len(sm) != 1 {
		t.Fatalf("server metrics %v, want 1 server", sm)
	}
	if sm[0].Crashed {
		t.Fatal("server crashed on a failed listing")
	}
	if sm[0].ReadErrors != 1 {
		t.Fatalf("ReadErrors = %d, want 1 (the failed listing)", sm[0].ReadErrors)
	}
	if n := reg.Snapshot().Counters["rocpanda.read.errors"]; n != 1 {
		t.Fatalf("rocpanda.read.errors = %d, want 1", n)
	}
}

// slowRenameFS delays every Rename by delay of real time: the observable
// cost of closing staged snapshot files during the pre-read flush.
type slowRenameFS struct {
	rt.FS
	delay time.Duration
}

func (f *slowRenameFS) Rename(oldname, newname string) error {
	time.Sleep(f.delay)
	return f.FS.Rename(oldname, newname)
}

// TestRestartScanTimeExcludesFlush pins the second bugfix: the restart
// scan histogram used to start before the pre-read flushOutput, so the
// drain barrier's cost was booked as scan time. Renames (which happen
// only when the flush closes staged files) are slowed by 100ms of real
// time; that cost must land in drain.flush_seconds and stay out of
// restart_scan_seconds.
func TestRestartScanTimeExcludesFlush(t *testing.T) {
	fs := &slowRenameFS{FS: rt.NewMemFS(), delay: 100 * time.Millisecond}
	reg := metrics.New()
	world := mpi.NewChanWorld(fs, 1)
	err := world.Run(2, func(ctx mpi.Ctx) error {
		cl, err := Init(ctx, Config{
			NumServers: 1, Profile: hdf.NullProfile(),
			ActiveBuffering: true, Metrics: reg,
		})
		if err != nil {
			return err
		}
		if cl == nil {
			return nil
		}
		w := buildWindow(t, cl.Comm().Rank(), 2)
		if err := cl.WriteAttribute("fl/A", w, "all", 0, 0); err != nil {
			return err
		}
		// No Sync: the buffered generation is still staged, so the read
		// must flush (and rename) it first.
		if err := cl.ReadAttribute("fl/A", w, "all"); err != nil {
			return err
		}
		return cl.Shutdown()
	})
	if err != nil {
		t.Fatal(err)
	}
	s := reg.Snapshot()
	flush := s.Histograms["rocpanda.drain.flush_seconds"]
	scan := s.Histograms["rocpanda.server.restart_scan_seconds"]
	if flush.Count == 0 || flush.Sum < 0.09 {
		t.Fatalf("flush_seconds sum = %v over %d obs, want >= 0.09 (the slowed rename)", flush.Sum, flush.Count)
	}
	if scan.Count == 0 || scan.Sum > 0.05 {
		t.Fatalf("restart_scan_seconds sum = %v, want well under the 0.1s rename delay", scan.Sum)
	}
}

// TestRestartWastedBytesAccounting pins the third bugfix: bytes pulled
// from a file that never ships (here: payload corrupted after commit, so
// its CRC check fails) must count as bytes_wasted, not bytes_read — the
// old accounting incremented bytes_read per run before verification and
// kept it after the early return.
func TestRestartWastedBytesAccounting(t *testing.T) {
	for _, mode := range []string{"indexed", "scan"} {
		t.Run(mode, func(t *testing.T) {
			fs := rt.NewMemFS()
			writeSnapshot(t, fs, "wb/A", 2, 1, 2)
			cat, err := catalog.Load(fs, "wb/A")
			if err != nil {
				t.Fatal(err)
			}
			if len(cat.Entries) == 0 {
				t.Fatal("empty catalog")
			}
			// Flip one bit in the middle of the last entry's stored payload:
			// indexed reads catch it via the entry CRC, scans via the
			// reader's dataset checksum. The last entry keeps a prefix of
			// the scan walk succeeding, so the scan's partial reads are
			// provably re-accounted as waste too.
			e := cat.Entries[len(cat.Entries)-1]
			name := cat.Files[e.File]
			if !e.HasCRC {
				t.Fatal("catalog entry carries no CRC")
			}
			if err := faults.FlipBit(fs, name, (e.Offset+e.Length/2)*8); err != nil {
				t.Fatal(err)
			}
			if mode == "scan" {
				if err := fs.Remove("wb/A" + catalog.Suffix); err != nil {
					t.Fatal(err)
				}
			}
			reg := metrics.New()
			sm := restartExpectIncomplete(t, fs, "wb/A", 2, 1, reg, nil)
			if len(sm) != 1 {
				t.Fatalf("server metrics %v, want 1 server", sm)
			}
			m := sm[0]
			if m.FilesOpened != 1 || m.FilesSkipped != 1 {
				t.Fatalf("opened %d skipped %d, want 1 and 1", m.FilesOpened, m.FilesSkipped)
			}
			if m.RestartBytes != 0 {
				t.Fatalf("RestartBytes = %d for a file that never shipped, want 0", m.RestartBytes)
			}
			if m.WastedBytes <= 0 {
				t.Fatalf("WastedBytes = %d, want > 0", m.WastedBytes)
			}
			if m.ReadErrors != 1 {
				t.Fatalf("ReadErrors = %d, want 1", m.ReadErrors)
			}
			s := reg.Snapshot()
			if n := s.Counters["rocpanda.restart.bytes_read"]; n != 0 {
				t.Fatalf("bytes_read counter = %d, want 0", n)
			}
			if n := s.Counters["rocpanda.restart.bytes_wasted"]; n != m.WastedBytes {
				t.Fatalf("bytes_wasted counter = %d, want %d", n, m.WastedBytes)
			}
		})
	}
}

// TestReadFaultsDegradeNotCrash sweeps injected Open and ReadAt failures
// over the serial and parallel read paths: the poisoned file is skipped
// whole, the server survives, and the collective surfaces
// ErrIncompleteRestart.
func TestReadFaultsDegradeNotCrash(t *testing.T) {
	for _, par := range []bool{false, true} {
		for _, op := range []faults.FSOp{faults.OpOpen, faults.OpRead} {
			name := "serial-" + string(op)
			if par {
				name = "parallel-" + string(op)
			}
			t.Run(name, func(t *testing.T) {
				raw := rt.NewMemFS()
				writeSnapshot(t, raw, "of/A", 2, 1, 2)
				plan := faults.NewFSPlan(1, faults.FSRule{Op: op, PathPrefix: "of/A_s"})
				var tune func(*Config)
				if par {
					tune = func(cfg *Config) {
						cfg.ParallelRead = true
						cfg.ReadWorkers = 2
					}
				}
				sm := restartExpectIncomplete(t, faults.WrapFS(raw, plan), "of/A", 2, 1, nil, tune)
				if len(sm) != 1 {
					t.Fatalf("server metrics %v, want 1 server", sm)
				}
				if sm[0].Crashed {
					t.Fatalf("server crashed on an injected %s failure", op)
				}
				if sm[0].FilesSkipped < 1 {
					t.Fatalf("FilesSkipped = %d, want >= 1", sm[0].FilesSkipped)
				}
				if sm[0].ReadErrors < 1 {
					t.Fatalf("ReadErrors = %d, want >= 1", sm[0].ReadErrors)
				}
			})
		}
	}
}

// TestParallelReadCrashMidReadFallsBack is the read engine's crash drill:
// an injected MidRead crash kills server 1 on one of its read workers
// while it serves snapshot B. The clients' stall detection must declare
// the silent server dead, and the generation fallback to snapshot A must
// then restore bit-exact from the survivor alone.
func TestParallelReadCrashMidReadFallsBack(t *testing.T) {
	for _, par := range []bool{false, true} {
		name := "serial"
		if par {
			name = "parallel"
		}
		t.Run(name, func(t *testing.T) {
			fs := rt.NewMemFS()
			writeSnapshot(t, fs, "cr/A", 4, 2, 2)
			writeSnapshot(t, fs, "cr/B", 4, 2, 2)

			plan := faults.NewCrashPlan(1, faults.MidRead, 1)
			world := mpi.NewChanWorld(fs, 1)
			err := world.Run(6, func(ctx mpi.Ctx) error {
				cl, err := Init(ctx, Config{
					NumServers: 2, Profile: hdf.NullProfile(),
					ActiveBuffering: true,
					ParallelRead:    par,
					ReadWorkers:     2,
					Crash:           plan,
					RetryTimeout:    0.05,
				})
				if err != nil {
					return err
				}
				if cl == nil {
					return nil
				}
				w := zeroWindow(t, cl.Comm().Rank(), 2)
				readErr := cl.ReadAttribute("cr/B", w, "all")
				bad := 0.0
				if readErr != nil {
					bad = 1
				}
				// The crash leaves all clients short of B; agree and fall
				// back a generation, now excluding the dead server.
				if cl.Comm().AllreduceMax(bad) > 0 {
					if err := cl.ReadAttribute("cr/A", w, "all"); err != nil {
						return err
					}
				} else {
					t.Error("no client saw the mid-read crash")
				}
				if err := checkWindow(cl.Comm().Rank(), w); err != nil {
					return err
				}
				return cl.Shutdown()
			})
			if err != nil {
				t.Fatal(err)
			}
			if !plan.Fired() {
				t.Fatal("crash plan never fired")
			}
		})
	}
}

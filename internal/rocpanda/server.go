package rocpanda

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"genxio/internal/catalog"
	"genxio/internal/faults"
	"genxio/internal/hdf"
	"genxio/internal/metrics"
	"genxio/internal/mpi"
	"genxio/internal/roccom"
	"genxio/internal/rt"
	"genxio/internal/snapshot"
	"genxio/internal/trace"
)

// ServerMetrics accumulates one server's activity.
type ServerMetrics struct {
	Idx              int
	BlocksBuffered   int
	BlocksWritten    int
	BytesWritten     int64 // payload bytes drained to files
	FilesCreated     int
	MaxBufBytes      int64
	Overflows        int   // synchronous partial drains due to capacity
	ReadsServed      int   // restart blocks shipped to clients
	ClientsAdopted   int   // clients inherited from failed servers (degraded mode)
	FilesSkipped     int   // unreadable snapshot files skipped during restart scans
	FilesOpened      int   // snapshot files opened while serving restarts
	RestartBytes     int64 // payload bytes read from snapshot files during restarts
	CatalogHits      int   // restart rounds served from the block catalog
	CatalogFallbacks int   // restart rounds that fell back to the directory scan
	Crashed          bool  // the server died to an injected crash

	// Background-drain engine (Config.AsyncDrain).
	DrainQueuePeak    int     // peak blocks queued to the writer pool
	BackpressureWaits int     // enqueues stalled on BufferBudgetBytes
	OverlapSeconds    float64 // background write time overlapped with service
	DrainErrors       int     // block writes or file closes that failed

	// Restart read engine (Config.ParallelRead) and read-path health.
	ReadQueuePeak         int     // peak read tasks in flight to the worker pool
	ReadBackpressureWaits int     // tasks deferred by ReadBudgetBytes
	ReadOverlapSeconds    float64 // disk read time overlapped with shipping
	ReadErrors            int     // failed listings and files skipped mid-round
	WastedBytes           int64   // bytes read from files that never shipped

	// Replica retries (Config.ReplicationFactor > 1).
	ReplicaReads  int // panes served from a replica copy after a primary failed
	RepairedPanes int // panes recovered from any other copy after a planned read failed

	// Delta snapshots (Config.DeltaSnapshots).
	ChainDepth int // deepest delta chain served during restart rounds
}

// serverCrashed is the panic sentinel of an injected server crash; run
// recovers it and returns without draining or acknowledging anything,
// simulating process death.
type serverCrashed struct{}

// pendingBlock is one buffered data block awaiting drain.
type pendingBlock struct {
	fname string
	sets  []roccom.IOSet
	bytes int64
	time  float64
	step  int32
}

// readRound accumulates a collective read until all clients have asked.
// Requesters are tracked as a set of world ranks, not a raw count: after a
// failover a client may resend its request to a server that already has
// the first copy in flight, and counting that duplicate would start the
// scan before every client has actually asked (a partial restart).
type readRound struct {
	attr    string
	wantAll map[int]int  // (paneID) -> world rank of requesting client
	reqers  map[int]bool // world ranks that have requested this round
	alive   []int        // server indices sharing the scan (agreed by the clients)
}

// server is the Rocpanda server routine state (Figure 2's I/O processor).
type server struct {
	ctx        mpi.Ctx
	world      mpi.Comm
	idx        int
	numServers int
	myClients  []int // world ranks served by this server (writes, sync)
	allClients []int
	cfg        Config

	buf           []pendingBlock // synchronous-mode buffer (AsyncDrain off)
	bufBytes      int64
	sink          *blockSink            // the request loop's own file sink
	engine        *drainEngine          // background writer pool (AsyncDrain)
	drainErr      error                 // sticky first drain failure
	reads         map[string]*readRound // key: file|window|attr
	shutdown      int
	shutdownQueue []int // clients awaiting the shutdown ack

	m  ServerMetrics
	mx srvMx
}

// srvMx holds a server's registry handles; every handle is a nil-safe
// no-op when Config.Metrics is unset. Handles are created once at Init so
// the hot paths never touch the registry map.
type srvMx struct {
	blocksBuffered *metrics.Counter
	blocksWritten  *metrics.Counter
	bytesWritten   *metrics.Counter
	filesCreated   *metrics.Counter
	filesSkipped   *metrics.Counter
	overflowStalls *metrics.Counter
	readsServed    *metrics.Counter
	adopted        *metrics.Counter
	bufBytesPeak   *metrics.Gauge
	drainSeconds   *metrics.Histogram
	scanSeconds    *metrics.Histogram

	// Background-drain engine (Config.AsyncDrain).
	queueDepth     *metrics.Gauge
	backpressure   *metrics.Counter
	overlapSeconds *metrics.Histogram
	drainErrors    *metrics.Counter
	flushSeconds   *metrics.Histogram

	// Restart read engine (Config.ParallelRead) and read-path health.
	readQueueDepth   *metrics.Gauge
	readBackpressure *metrics.Counter
	readOverlap      *metrics.Histogram
	readErrors       *metrics.Counter

	// Restart I/O-efficiency counters (catalog vs scan).
	filesOpened      *metrics.Counter
	restartBytes     *metrics.Counter
	bytesWasted      *metrics.Counter
	catalogHits      *metrics.Counter
	catalogFallbacks *metrics.Counter
	checksumFails    *metrics.Counter

	// Replica retries (Config.ReplicationFactor > 1).
	replicaReads  *metrics.Counter
	repairedPanes *metrics.Counter

	// Delta snapshots (Config.DeltaSnapshots).
	chainDepth *metrics.Gauge
}

func newSrvMx(r *metrics.Registry) srvMx {
	return srvMx{
		blocksBuffered: r.Counter("rocpanda.server.blocks_buffered"),
		blocksWritten:  r.Counter("rocpanda.server.blocks_written"),
		bytesWritten:   r.Counter("rocpanda.server.bytes_written"),
		filesCreated:   r.Counter("rocpanda.server.files_created"),
		filesSkipped:   r.Counter("rocpanda.server.files_skipped"),
		overflowStalls: r.Counter("rocpanda.server.overflow_stalls"),
		readsServed:    r.Counter("rocpanda.server.reads_served"),
		adopted:        r.Counter("rocpanda.server.clients_adopted"),
		bufBytesPeak:   r.Gauge("rocpanda.server.buf_bytes_peak"),
		drainSeconds:   r.Histogram("rocpanda.server.drain_seconds", nil),
		scanSeconds:    r.Histogram("rocpanda.server.restart_scan_seconds", nil),

		queueDepth:     r.Gauge("rocpanda.drain.queue_depth"),
		backpressure:   r.Counter("rocpanda.drain.backpressure_waits"),
		overlapSeconds: r.Histogram("rocpanda.drain.overlap_seconds", nil),
		drainErrors:    r.Counter("rocpanda.drain.errors"),
		flushSeconds:   r.Histogram("rocpanda.drain.flush_seconds", nil),

		readQueueDepth:   r.Gauge("rocpanda.read.queue_depth"),
		readBackpressure: r.Counter("rocpanda.read.backpressure_waits"),
		readOverlap:      r.Histogram("rocpanda.read.overlap_seconds", nil),
		readErrors:       r.Counter("rocpanda.read.errors"),

		filesOpened:      r.Counter("rocpanda.restart.files_opened"),
		restartBytes:     r.Counter("rocpanda.restart.bytes_read"),
		bytesWasted:      r.Counter("rocpanda.restart.bytes_wasted"),
		catalogHits:      r.Counter("rocpanda.restart.catalog_hits"),
		catalogFallbacks: r.Counter("rocpanda.restart.catalog_fallbacks"),
		checksumFails:    r.Counter("hdf.checksum_failures"),

		replicaReads:  r.Counter("rocpanda.restart.replica_reads"),
		repairedPanes: r.Counter("rocpanda.restart.repaired_panes"),

		chainDepth: r.Gauge("rocpanda.restart.chain_depth"),
	}
}

// run is the server service loop, structured exactly as Section 6.1
// describes: with dirty buffers it polls for new requests between block
// writes (responsiveness); with clean buffers it blocks in probe, leaving
// the CPU to the operating system.
func (s *server) run() {
	// An injected crash (internal/faults) panics with serverCrashed from
	// deep inside the loop; catching it here and returning — no drain, no
	// acks, snapshot files left without directories — is how this backend
	// models the process dying.
	defer func() {
		r := recover()
		// Tear the writer pool down on every exit path: it merges the
		// writers' tallies into s.m before OnServerDone reads them, and
		// terminates the pool's simulation processes.
		if s.engine != nil {
			s.engine.close()
		}
		if r != nil {
			if _, died := r.(serverCrashed); !died {
				panic(r)
			}
		}
	}()
	s.sink = newBlockSink(s, s.ctx.Clock(), s.ctx.FS(), &s.m)
	s.reads = make(map[string]*readRound)
	s.m.Idx = s.idx
	if s.cfg.ActiveBuffering && s.cfg.AsyncDrain {
		s.engine = newDrainEngine(s)
	}
	for s.shutdown < len(s.myClients) {
		if s.engine != nil && s.engine.crashed() {
			panic(serverCrashed{}) // a writer task died; the process dies with it
		}
		if len(s.buf) > 0 {
			if st, ok := s.world.Iprobe(mpi.AnySource, mpi.AnyTag); ok {
				s.handle(st)
			} else {
				s.drainOne()
			}
			continue
		}
		s.handle(s.world.Probe(mpi.AnySource, mpi.AnyTag))
	}
	err := s.flushOutput()
	// Acknowledge all shutdowns only after everything is on disk; the ack
	// carries the drain outcome so the clients can refuse the commit.
	for _, dst := range s.shutdownQueue {
		s.world.Send(dst, tagShutdownAck, ackPayload(err))
	}
}

// flushOutput forces every buffered or queued block to disk and closes the
// snapshot files, returning the server's sticky drain error (nil when all
// output landed). Both drain modes converge here: it is the
// barrier-before-commit that sync, restart scans and shutdown rely on.
func (s *server) flushOutput() error {
	if s.engine != nil {
		if err := s.engine.flushBarrier(); err != nil && s.drainErr == nil {
			s.drainErr = err
		}
		return s.drainErr
	}
	for len(s.buf) > 0 {
		s.drainOne()
	}
	if err := s.sink.closeAll(""); err != nil {
		s.noteDrainErr(err)
	}
	return s.drainErr
}

// noteDrainErr records a failed block write or file close. The first error
// sticks: it is reported on every subsequent sync/shutdown ack, so no
// generation after the failure can commit.
func (s *server) noteDrainErr(err error) {
	if s.drainErr == nil {
		s.drainErr = err
	}
	s.m.DrainErrors++
	s.mx.drainErrors.Inc()
}

// ackPayload encodes a drain outcome for a sync or shutdown ack.
func ackPayload(err error) []byte {
	if err != nil {
		return []byte{ackDrainFailed}
	}
	return nil
}

// traceRank is this server's row in the phase timeline: servers sit after
// the client ranks so drain spans never overwrite a client's row.
func (s *server) traceRank() int { return len(s.allClients) + s.idx }

// handle dispatches one control message.
func (s *server) handle(st mpi.Status) {
	switch st.Tag {
	case tagWriteHdr:
		s.handleWrite(st.Source)
	case tagReadReq:
		s.handleReadReq(st.Source)
	case tagSync:
		s.recvEmpty(st.Source, tagSync, "sync request")
		err := s.flushOutput()
		s.world.Send(st.Source, tagSyncAck, ackPayload(err))
	case tagShutdown:
		s.recvEmpty(st.Source, tagShutdown, "shutdown request")
		s.shutdown++
		s.shutdownQueue = append(s.shutdownQueue, st.Source)
	case tagAdopt:
		s.recvEmpty(st.Source, tagAdopt, "adoption announcement")
		for _, c := range s.myClients {
			if c == st.Source {
				return // already ours
			}
		}
		s.myClients = append(s.myClients, st.Source)
		s.m.ClientsAdopted++
		s.mx.adopted.Inc()
	default:
		panic(fmt.Sprintf("rocpanda: server %d got unexpected tag %d from %d", s.idx, st.Tag, st.Source))
	}
}

// recvExpect receives one protocol message that must carry a payload.
// The server panics on protocol damage (its process is useless once the
// stream is desynchronized), but always with enough context — server
// index, peer rank, tag — to attribute the failure; silently decoding an
// empty or truncated payload would surface as a confusing error far from
// the broken link.
func (s *server) recvExpect(src, tag int, what string) []byte {
	data, st := s.world.Recv(src, tag)
	if len(data) == 0 {
		panic(fmt.Sprintf("rocpanda: server %d: empty %s from rank %d (tag %d)", s.idx, what, st.Source, st.Tag))
	}
	return data
}

// recvEmpty receives one control message that must carry no payload.
func (s *server) recvEmpty(src, tag int, what string) {
	data, st := s.world.Recv(src, tag)
	if len(data) != 0 {
		panic(fmt.Sprintf("rocpanda: server %d: unexpected %d-byte payload on %s from rank %d (tag %d)",
			s.idx, len(data), what, st.Source, st.Tag))
	}
}

// handleWrite receives one client's header and blocks for a collective
// write and buffers (or writes through) the blocks.
func (s *server) handleWrite(src int) {
	hwT0 := s.ctx.Clock().Now()
	data := s.recvExpect(src, tagWriteHdr, "write header")
	hdr, err := decodeWriteHdr(data)
	if err != nil {
		panic(fmt.Sprintf("rocpanda: server %d: corrupt write header from rank %d (tag %d): %v", s.idx, src, tagWriteHdr, err))
	}
	fnames := s.copyNames(hdr.File)
	for i := int32(0); i < hdr.NBlocks; i++ {
		payload := s.recvExpect(src, tagWriteBlock, "write block")
		sets, err := roccom.DecodeIOSets(payload)
		if err != nil {
			panic(fmt.Sprintf("rocpanda: server %d: corrupt write block %d/%d from rank %d (tag %d, %d bytes): %v",
				s.idx, i+1, hdr.NBlocks, src, tagWriteBlock, len(payload), err))
		}
		// One pending block per copy: the primary plus any replicas, all
		// through the same sink/engine machinery, so the buffered-byte and
		// written-byte tallies honestly show the write amplification.
		for _, fname := range fnames {
			blk := pendingBlock{fname: fname, sets: sets, bytes: int64(len(payload)), time: hdr.Time, step: hdr.Step}
			if !s.cfg.ActiveBuffering {
				if err := s.sink.write(blk); err != nil {
					s.noteDrainErr(err)
				}
				continue
			}
			// Buffer at memory speed; the client's ack is delayed only by
			// this copy, not by file I/O.
			if s.cfg.MemcpyBW > 0 {
				s.ctx.Clock().Compute(float64(blk.bytes) / s.cfg.MemcpyBW)
			}
			s.m.BlocksBuffered++
			s.mx.blocksBuffered.Inc()
			if s.engine != nil {
				// Background drain: hand the block to the writer pool (which
				// may stall here on the byte budget) and keep serving.
				s.engine.enqueue(blk)
				s.maybeCrash(faults.MidBuffer)
				continue
			}
			s.buf = append(s.buf, blk)
			s.bufBytes += blk.bytes
			s.maybeCrash(faults.MidBuffer)
			if s.bufBytes > s.m.MaxBufBytes {
				s.m.MaxBufBytes = s.bufBytes
			}
			s.mx.bufBytesPeak.SetMax(float64(s.bufBytes))
			// Graceful overflow: make room synchronously.
			for s.cfg.BufferCapacity > 0 && s.bufBytes > s.cfg.BufferCapacity && len(s.buf) > 0 {
				s.m.Overflows++
				s.mx.overflowStalls.Inc()
				s.drainOne()
			}
		}
	}
	s.world.Send(src, tagWriteAck, nil)
	if debugWrites.Load() {
		fmt.Printf("DEBUG srv%d handleWrite src=%d t=%.3f..%.3f\n", s.idx, src, hwT0, s.ctx.Clock().Now())
	}
}

// debugWrites enables handleWrite tracing. Atomic: servers and clients
// read it from their own goroutines on the real backend, and tests may
// toggle it while a run is in flight.
var debugWrites atomic.Bool

// DebugWrites toggles write-path tracing (diagnostics only). Safe to call
// concurrently with a running service.
func DebugWrites(on bool) { debugWrites.Store(on) }

// fileName returns this server's file for a snapshot base name.
func (s *server) fileName(base string) string {
	return fmt.Sprintf("%s_s%03d.rhdf", base, s.idx)
}

// copyNames returns every file this server's blocks go to for a snapshot
// base: the primary, then ReplicationFactor-1 replicas homed round-robin
// at the *other* servers' file sets (base_sHHHrN.rhdf with H = (idx+N) mod
// numServers) so losing one server's files costs replicas of at most one
// copy of each pane. Each replica receives the exact block sequence of its
// primary, so the two files are byte-identical — which is what lets the
// restart read path and genxfsck -repair substitute one for the other
// without any translation.
func (s *server) copyNames(base string) []string {
	names := []string{s.fileName(base)}
	for r := 1; r < s.cfg.ReplicationFactor; r++ {
		home := (s.idx + r) % s.numServers
		names = append(names, fmt.Sprintf("%s_s%03dr%d.rhdf", base, home, r))
	}
	return names
}

// maybeCrash dies at point if the injected crash plan says so.
func (s *server) maybeCrash(point faults.CrashPoint) {
	if s.cfg.Crash.Hit(s.idx, point) {
		s.m.Crashed = true
		panic(serverCrashed{})
	}
}

// drainOne writes the oldest buffered block to its file, recording the
// block's drain latency (the background cost active buffering hides).
// Synchronous mode only; the writer pool drains its own queues.
func (s *server) drainOne() {
	blk := s.buf[0]
	s.buf = s.buf[1:]
	s.bufBytes -= blk.bytes
	t0 := s.ctx.Clock().Now()
	err := s.sink.write(blk)
	s.mx.drainSeconds.Observe(s.ctx.Clock().Now() - t0)
	if err != nil {
		// Keep draining the rest: other files may still complete, and the
		// sticky error already blocks every later commit.
		s.noteDrainErr(err)
	}
	s.maybeCrash(faults.MidDrain)
}

// blockSink owns a set of open snapshot writers and appends blocks to
// them. The request loop uses one directly in synchronous mode; with
// AsyncDrain each writer task owns a private sink (its own clock identity
// and filesystem view, required by the simulated platforms). Tallies land
// in m — the server's own ServerMetrics for the loop's sink, writer-local
// totals merged at exit for the pool's sinks — so sinks never share
// mutable state.
type blockSink struct {
	s        *server
	clock    rt.Clock
	fs       rt.FS
	m        *ServerMetrics
	writers  map[string]*hdf.Writer
	metaDone map[string]bool
}

func newBlockSink(s *server, clock rt.Clock, fs rt.FS, m *ServerMetrics) *blockSink {
	return &blockSink{
		s: s, clock: clock, fs: fs, m: m,
		writers:  make(map[string]*hdf.Writer),
		metaDone: make(map[string]bool),
	}
}

// write appends one block's datasets to the snapshot file, opening it
// first if needed. Opening a new snapshot file closes the previous
// snapshot's writers (collective writes are ordered, so once a newer
// snapshot's data drains, older files are complete). A file that was
// already created and closed (for example by one client's sync while
// another client's blocks were still inbound) is reopened in append mode —
// recreating it would truncate the blocks already on disk.
//
// Errors are returned, not panicked: a full disk on a server must surface
// through the sync acks and the clients' commit allreduce, not tear the
// whole run down (see noteDrainErr and Client.Sync).
func (k *blockSink) write(blk pendingBlock) error {
	s := k.s
	w, ok := k.writers[blk.fname]
	if !ok {
		if err := k.closeAll(genBase(blk.fname)); err != nil {
			return err
		}
		var err error
		if k.metaDone[blk.fname] {
			w, err = hdf.OpenAppend(k.fs, blk.fname, k.clock, s.cfg.Profile)
		} else {
			w, err = hdf.Create(k.fs, blk.fname, k.clock, s.cfg.Profile)
		}
		if err != nil {
			return fmt.Errorf("rocpanda: server %d: %w", s.idx, err)
		}
		if !k.metaDone[blk.fname] {
			k.m.FilesCreated++
			s.mx.filesCreated.Inc()
		}
		w.Compress = s.cfg.Compress
		w.Metrics = s.cfg.Metrics
		k.writers[blk.fname] = w
	}
	if !k.metaDone[blk.fname] {
		s.maybeCrash(faults.BeforeMeta)
		k.metaDone[blk.fname] = true
		err := w.CreateDataset("_meta", hdf.U8, []int64{0}, []hdf.Attr{
			hdf.F64Attr("time", blk.time),
			hdf.I32Attr("step", blk.step),
			hdf.I32Attr("server", int32(s.idx)),
			hdf.I32Attr("nservers", int32(s.numServers)),
		}, nil)
		if err != nil {
			return fmt.Errorf("rocpanda: server %d writing %s meta: %w", s.idx, blk.fname, err)
		}
	}
	for _, set := range blk.sets {
		if err := w.CreateDataset(set.Name, set.Type, set.Dims, set.Attrs, set.Data); err != nil {
			return fmt.Errorf("rocpanda: server %d writing %s: %w", s.idx, blk.fname, err)
		}
	}
	k.m.BlocksWritten++
	k.m.BytesWritten += blk.bytes
	s.mx.blocksWritten.Inc()
	s.mx.bytesWritten.Add(blk.bytes)
	return nil
}

// genBase strips a snapshot file name to its generation base (everything
// before the final "_sNNN[rM].rhdf" tail), the key sinks close by.
func genBase(fname string) string {
	if i := strings.LastIndexByte(fname, '_'); i >= 0 {
		return fname[:i]
	}
	return fname
}

// closeAll closes every open writer except those of the named generation
// base ("" closes everything), returning the first failure (all affected
// writers are closed and forgotten regardless — a handle that failed its
// close is not worth retrying). Closing by generation, not by file, keeps
// a generation's primary and replica writers open side by side while its
// copies interleave; collective writes are still ordered across
// generations, so once a newer snapshot's data drains, the older
// generation's files are complete and can close.
func (k *blockSink) closeAll(exceptGen string) error {
	names := make([]string, 0, len(k.writers))
	for name := range k.writers {
		if exceptGen == "" || genBase(name) != exceptGen {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	var first error
	for _, name := range names {
		if err := k.writers[name].Close(); err != nil && first == nil {
			first = err
		}
		delete(k.writers, name)
	}
	return first
}

// handleReadReq accumulates one client's restart request; when all clients
// have asked, the server scans its share of the snapshot files and ships
// the found blocks to their owners (Section 4.1's restart protocol).
func (s *server) handleReadReq(src int) {
	data := s.recvExpect(src, tagReadReq, "read request")
	req, err := decodeReadReq(data)
	if err != nil {
		panic(fmt.Sprintf("rocpanda: server %d: corrupt read request from rank %d (tag %d): %v", s.idx, src, tagReadReq, err))
	}
	key := req.File + "|" + req.Window + "|" + req.Attr
	round, ok := s.reads[key]
	if !ok {
		round = &readRound{attr: req.Attr, wantAll: make(map[int]int), reqers: make(map[int]bool)}
		s.reads[key] = round
	}
	for _, id := range req.PaneIDs {
		round.wantAll[int(id)] = src
	}
	// The clients agree on the surviving-server set before asking (an
	// allreduce in ReadAttribute), so every request carries the same
	// alive list; keep the intersection anyway so a disagreement can only
	// shrink a server's share, never leave a file scanned twice.
	if len(round.reqers) == 0 {
		for _, a := range req.Alive {
			round.alive = append(round.alive, int(a))
		}
	} else if len(req.Alive) > 0 {
		keep := make(map[int]bool, len(req.Alive))
		for _, a := range req.Alive {
			keep[int(a)] = true
		}
		var merged []int
		for _, a := range round.alive {
			if keep[a] {
				merged = append(merged, a)
			}
		}
		round.alive = merged
	}
	// Count distinct requesters, not messages: a failed-over client can
	// resend the same request (its timeout fired while this server was
	// slow, not dead), and treating the duplicate as a new requester
	// would start the scan before the remaining clients asked.
	round.reqers[src] = true
	if len(round.reqers) < len(s.allClients) {
		return
	}
	delete(s.reads, key)
	s.serveRead(req.File, req.Window, round)
}

func (s *server) serveRead(file, window string, round *readRound) {
	// Buffered data must be on disk before a restart read of an
	// uncommitted generation. A committed one needs no barrier: its commit
	// record exists only because the Sync flush already put every block of
	// it on disk — so reading generation g proceeds immediately, its
	// iosched read instance admitted while the drain instance may still be
	// writing back generation g+1 (the scheduler's cross-engine overlap).
	// When the flush does run it is write-back cost, not scan cost: it
	// gets its own histogram, and the scan clock starts only after it — so
	// with async drain enabled the restart "scan time" never silently
	// absorbs the drain barrier.
	if _, err := snapshot.Load(s.ctx.FS(), file); err != nil {
		flushT0 := s.ctx.Clock().Now()
		s.flushOutput()
		s.mx.flushSeconds.Observe(s.ctx.Clock().Now() - flushT0)
	}

	scanT0 := s.ctx.Clock().Now()
	defer func() { s.mx.scanSeconds.Observe(s.ctx.Clock().Now() - scanT0) }()

	// Snapshot files are dealt round-robin over the servers sharing the
	// scan — all of them normally, the agreed survivors in degraded mode.
	alive := round.alive
	if len(alive) == 0 {
		alive = make([]int, s.numServers)
		for i := range alive {
			alive[i] = i
		}
	}
	pos := -1
	for i, a := range alive {
		if a == s.idx {
			pos = i
		}
	}
	mode := byte(doneModeScan)
	if pos >= 0 {
		mode = s.serveShare(file, window, round, alive, pos)
	}
	for _, c := range s.allClients {
		s.world.Send(c, tagReadDone, []byte{mode})
	}
}

// serveShare serves this server's round-robin share of a restart round and
// returns the done-mode byte. One listing feeds both paths, so a catalog
// verdict can only change how a file is read, never which files this
// server covers — servers disagreeing about the catalog's health can only
// re-ship panes (clients dedupe on first arrival), never leave a file
// unserved.
//
// With a usable catalog, only the share's files that actually hold
// requested panes are read (direct coalesced offset reads, every entry
// CRC-verified before anything from its file ships); files the catalog
// knows but planned nothing from are skipped unopened — the indexed read's
// whole win. Files the commit never saw (a server wrongly declared dead
// renamed its file into place after the manifest) get the directory scan,
// as does everything when no usable catalog exists.
//
// A failed listing degrades instead of killing the server: the round is
// reported failed (doneModeFailed) so no client is left hanging, and the
// clients decide whether peers covered the panes or a generation fallback
// is needed.
func (s *server) serveShare(file, window string, round *readRound, alive []int, pos int) byte {
	// A delta generation restores through its chain, not its own files
	// alone. An unreadable head manifest falls through to the single-
	// generation path: its listing still scans, the dirty panes it holds
	// ship, and the clients' completeness check decides whether that was
	// enough.
	if m, err := snapshot.Load(s.ctx.FS(), file); err == nil && m.ChainDepth > 0 {
		return s.serveChainShare(file, window, round, alive, pos)
	}
	names, err := s.ctx.FS().List(file + "_s")
	if err != nil {
		s.noteReadErr()
		return doneModeFailed
	}
	cat, catErr := catalog.Load(s.ctx.FS(), file)
	var planByFile map[string]catalog.FilePlan
	var inCat map[string]bool
	if catErr == nil {
		wanted := make(map[int]bool, len(round.wantAll))
		for id := range round.wantAll {
			wanted[id] = true
		}
		plans := cat.PlanReads(window, wanted)
		planByFile = make(map[string]catalog.FilePlan, len(plans))
		for _, p := range plans {
			planByFile[p.File] = p
		}
		inCat = make(map[string]bool, len(cat.Files))
		for _, name := range cat.Files {
			inCat[name] = true
		}
	}
	var items []readItem
	listed := make(map[string]bool, len(names))
	for i, name := range names {
		listed[name] = true
		if i%len(alive) != pos {
			continue // round-robin file assignment
		}
		if catErr == nil {
			if plan, ok := planByFile[name]; ok {
				items = append(items, readItem{name: name, plan: plan})
				continue
			}
			if inCat[name] || !strings.HasSuffix(name, ".rhdf") {
				continue
			}
			items = append(items, readItem{name: name, scan: true})
			continue
		}
		if !strings.HasSuffix(name, ".rhdf") {
			continue
		}
		items = append(items, readItem{name: name, scan: true})
	}
	if catErr == nil {
		// A planned file the listing no longer has (a lost primary) must
		// still be attempted, or its panes would silently never ship and
		// the whole generation would fall back even though replicas hold
		// every byte. Deal the missing files round-robin too — sorted, so
		// every server derives the same assignment from the same catalog —
		// as ordinary planned items whose open failure triggers the
		// per-pane replica retry.
		var missing []string
		for name := range planByFile {
			if !listed[name] {
				missing = append(missing, name)
			}
		}
		sort.Strings(missing)
		for j, name := range missing {
			if j%len(alive) != pos {
				continue
			}
			items = append(items, readItem{name: name, plan: planByFile[name]})
		}
	}
	var ccat *catalog.Catalog
	if catErr == nil {
		ccat = cat
	}
	// Files that failed an open this round: a pane retry never re-reads
	// them, so one lost file costs one failed open, not one per pane.
	badFiles := make(map[string]bool)
	if s.cfg.ParallelRead && len(items) > 0 {
		s.runReadPool(window, round, items, ccat, badFiles)
	} else {
		for _, it := range items {
			if it.scan {
				s.scanFile(it.name, window, round)
			} else if !s.shipPlan(it.name, round, it.plan) {
				badFiles[it.name] = true
				s.recoverPanes(ccat, window, round, it.plan, badFiles)
			}
			s.maybeCrash(faults.MidRead)
		}
	}
	if catErr == nil {
		s.m.CatalogHits++
		s.mx.catalogHits.Inc()
		return doneModeIndexed
	}
	s.m.CatalogFallbacks++
	s.mx.catalogFallbacks.Inc()
	return doneModeScan
}

// serveChainShare serves a delta generation's restart round. The head's
// chain is loaded newest-first and every requested pane resolves to the
// newest link whose block catalog holds it — each pane to exactly one
// (generation, file, extent) — then each link's planned files are read and
// shipped exactly like a single generation's, per-pane replica retries
// included (recoverPanes with that link's catalog). The combined item list
// is dealt round-robin across the surviving servers in deterministic
// (chain, plan) order, so the servers partition the chain's files without
// communicating.
//
// Chain restores are purely catalog-driven: a delta file does not spell
// out the panes it inherits, so there is no directory-scan fallback. An
// unloadable link (missing manifest or catalog) fails the round —
// doneModeFailed, nothing shipped from this server — and the clients'
// completeness check sends the restore walk back past the whole chain.
func (s *server) serveChainShare(file, window string, round *readRound, alive []int, pos int) byte {
	chain, err := snapshot.LoadChain(s.ctx.FS(), file)
	if err != nil {
		s.noteReadErr()
		return doneModeFailed
	}
	if depth := len(chain) - 1; depth > s.m.ChainDepth {
		s.m.ChainDepth = depth
		s.mx.chainDepth.SetMax(float64(depth))
	}
	wanted := make(map[int]bool, len(round.wantAll))
	for id := range round.wantAll {
		wanted[id] = true
	}
	cats := snapshot.ChainCatalogs(chain)
	assign := catalog.ResolvePanes(cats, window, wanted)
	var items []readItem
	j := 0
	for gi, cat := range cats {
		for _, plan := range cat.PlanReads(window, assign[gi]) {
			if j%len(alive) == pos {
				items = append(items, readItem{name: plan.File, plan: plan, cat: cat})
			}
			j++
		}
	}
	badFiles := make(map[string]bool)
	if s.cfg.ParallelRead && len(items) > 0 {
		s.runReadPool(window, round, items, nil, badFiles)
	} else {
		for _, it := range items {
			if !s.shipPlan(it.name, round, it.plan) {
				badFiles[it.name] = true
				s.recoverPanes(it.cat, window, round, it.plan, badFiles)
			}
			s.maybeCrash(faults.MidRead)
		}
	}
	s.m.CatalogHits++
	s.mx.catalogHits.Inc()
	return doneModeIndexed
}

// paneShip is one pane's ship-ready payload: assembled datasets destined
// for the owning client. Building one never sends anything — the server
// goroutine owns all network traffic (simulated endpoints charge the
// sending process), so workers assemble and the request loop ships.
type paneShip struct {
	owner int
	sets  []roccom.IOSet
}

// sendShips ships assembled pane payloads to their owners, in order.
func (s *server) sendShips(ships []paneShip) {
	for _, sh := range ships {
		s.world.Send(sh.owner, tagReadBlock, roccom.EncodeIOSets(sh.sets))
		s.m.ReadsServed++
		s.mx.readsServed.Inc()
	}
}

// skipFile records one unreadable or damaged snapshot file skipped during
// a restart, with whatever was already read from it accounted as wasted —
// bytes_read counts only files that shipped.
func (s *server) skipFile(wasted int64) {
	s.m.FilesSkipped++
	s.mx.filesSkipped.Inc()
	s.noteReadErr()
	if wasted > 0 {
		s.m.WastedBytes += wasted
		s.mx.bytesWasted.Add(wasted)
	}
}

// noteReadErr counts one read-path failure (a failed listing, or a file
// skipped mid-round).
func (s *server) noteReadErr() {
	s.m.ReadErrors++
	s.mx.readErrors.Inc()
}

// noteRestartBytes accounts payload bytes of a file whose panes shipped.
func (s *server) noteRestartBytes(n int64) {
	if n <= 0 {
		return
	}
	s.m.RestartBytes += n
	s.mx.restartBytes.Add(n)
}

// assembleShips verifies one planned file's read buffers and groups its
// entries into per-pane payloads, in plan (entry) order. ok is false when
// anything is damaged — CRC mismatch (crcFailed then reports it), an
// extent outside its run, a bad inflate, a short payload: the whole file
// must be skipped with nothing shipped, matching the scan path's
// semantics so a restart never mixes verified and unverified panes from
// one file. Pure with respect to the server (safe to call with
// worker-filled buffers after the handoff).
func assembleShips(plan catalog.FilePlan, runs []catalog.Run, bufs [][]byte, round *readRound) (ships []paneShip, crcFailed, ok bool) {
	stored := make([][]byte, len(plan.Entries))
	ri := 0
	for i := range plan.Entries {
		e := &plan.Entries[i]
		for ri < len(runs) && e.Offset >= runs[ri].Offset+runs[ri].Length {
			ri++
		}
		if ri == len(runs) || e.Offset < runs[ri].Offset || e.Offset+e.Length > runs[ri].Offset+runs[ri].Length {
			return nil, false, false
		}
		b := bufs[ri][e.Offset-runs[ri].Offset : e.Offset-runs[ri].Offset+e.Length]
		if e.HasCRC && hdf.Checksum(b) != e.CRC {
			// The snapshot was damaged after commit; skip the whole file
			// so the restart recovers the panes elsewhere or falls back a
			// generation.
			return nil, true, false
		}
		stored[i] = b
	}
	panes := make(map[int]*paneShip)
	var order []int
	for i := range plan.Entries {
		e := &plan.Entries[i]
		logical := int64(e.Type.Size())
		for _, d := range e.Dims {
			logical *= d
		}
		data := stored[i]
		if e.Compressed {
			var err error
			if data, err = hdf.InflateStored(data, logical); err != nil {
				return nil, false, false
			}
		} else if int64(len(data)) != logical {
			return nil, false, false
		}
		pd, seen := panes[e.Pane]
		if !seen {
			pd = &paneShip{owner: round.wantAll[e.Pane]}
			panes[e.Pane] = pd
			order = append(order, e.Pane)
		}
		pd.sets = append(pd.sets, roccom.IOSet{Name: e.Name, Type: e.Type, Dims: e.Dims, Attrs: e.Attrs, Data: data})
	}
	ships = make([]paneShip, 0, len(order))
	for _, id := range order {
		ships = append(ships, *panes[id])
	}
	return ships, false, true
}

// shipPlan serves one file's planned extents with direct offset reads: no
// directory parse, no per-dataset lookup cost — the catalog already knows
// where everything is. Adjacent extents coalesce into single reads. On any
// damage (CRC mismatch, short read, bad inflate) the whole file is skipped
// before anything ships, and the discarded bytes are accounted as wasted,
// not read; it returns false so the caller can retry the file's panes
// against their other copies.
func (s *server) shipPlan(name string, round *readRound, plan catalog.FilePlan) bool {
	readT0 := s.ctx.Clock().Now()
	f, err := s.ctx.FS().Open(name)
	if err != nil {
		s.skipFile(0)
		return false
	}
	defer f.Close()
	s.m.FilesOpened++
	s.mx.filesOpened.Inc()

	runs := catalog.Coalesce(plan.Entries, 0)
	bufs := make([][]byte, len(runs))
	var read int64
	for i, run := range runs {
		bufs[i] = make([]byte, run.Length)
		if _, err := f.ReadAt(bufs[i], run.Offset); err != nil {
			s.skipFile(read)
			return false
		}
		read += run.Length
	}
	s.cfg.Trace.Record(s.traceRank(), trace.PhaseRead, readT0, s.ctx.Clock().Now())

	ships, crcFailed, ok := assembleShips(plan, runs, bufs, round)
	if crcFailed {
		s.mx.checksumFails.Inc()
	}
	if !ok {
		s.skipFile(read)
		return false
	}
	s.noteRestartBytes(read)
	s.sendShips(ships)
	return true
}

// recoverPanes retries every pane of a failed planned file against the
// generation's other copies, best-first (primaries before replicas, per
// catalog.PaneSources), shipping each pane from the first copy that
// verifies end to end. The walk is deterministic — sorted panes, ordered
// sources, a shared bad-file set — so every server makes the same
// recovery decisions. A pane with no good copy anywhere is simply not
// shipped: the clients then report the snapshot incomplete and the restore
// walk falls back a generation, which is exactly the all-copies-bad
// semantics the replica layer promises. It reports how many panes it
// recovered (and shipped).
func (s *server) recoverPanes(cat *catalog.Catalog, window string, round *readRound, plan catalog.FilePlan, badFiles map[string]bool) int {
	if cat == nil {
		return 0 // scan mode has no index of copies; the listing covers replicas
	}
	seen := make(map[int]bool)
	var panes []int
	for i := range plan.Entries {
		if p := plan.Entries[i].Pane; !seen[p] {
			seen[p] = true
			panes = append(panes, p)
		}
	}
	sort.Ints(panes)
	recovered := 0
	for _, pane := range panes {
		for _, src := range cat.PaneSources(window, pane) {
			if badFiles[src.File] {
				continue
			}
			ok, opened := s.tryPaneSource(src, round)
			if !opened {
				badFiles[src.File] = true
			}
			if ok {
				recovered++
				s.m.RepairedPanes++
				s.mx.repairedPanes.Inc()
				if catalog.ReplicaRank(src.File) > 0 {
					s.m.ReplicaReads++
					s.mx.replicaReads.Inc()
				}
				break
			}
		}
	}
	return recovered
}

// tryPaneSource attempts one pane's datasets from one copy: open, read the
// coalesced extents, verify, inflate, ship. opened=false means the file
// itself is unreachable (blacklist it); ok=false with opened=true means
// this copy's bytes are damaged — other panes of the file may still be
// fine, so only the attempted read is charged as wasted.
func (s *server) tryPaneSource(plan catalog.FilePlan, round *readRound) (ok, opened bool) {
	readT0 := s.ctx.Clock().Now()
	f, err := s.ctx.FS().Open(plan.File)
	if err != nil {
		s.skipFile(0)
		return false, false
	}
	defer f.Close()
	s.m.FilesOpened++
	s.mx.filesOpened.Inc()

	runs := catalog.Coalesce(plan.Entries, 0)
	bufs := make([][]byte, len(runs))
	var read int64
	for i, run := range runs {
		bufs[i] = make([]byte, run.Length)
		if _, err := f.ReadAt(bufs[i], run.Offset); err != nil {
			s.skipFile(read)
			return false, true
		}
		read += run.Length
	}
	s.cfg.Trace.Record(s.traceRank(), trace.PhaseRead, readT0, s.ctx.Clock().Now())

	ships, crcFailed, aok := assembleShips(plan, runs, bufs, round)
	if crcFailed {
		s.mx.checksumFails.Inc()
	}
	if !aok {
		s.skipFile(read)
		return false, true
	}
	s.noteRestartBytes(read)
	s.sendShips(ships)
	return true, true
}

// collectScanFile walks one snapshot file and assembles the requested
// panes of the window into ship-ready payloads, without sending anything.
// Shared by the serial scan path and the read workers, which run it with
// their own clock and filesystem view so the profile's per-dataset lookup
// costs charge to the walking process. bytesRead counts payload bytes
// pulled from the file whether or not the walk succeeded; failed means the
// whole file must be skipped (unopenable — what a crashed server leaves
// behind — or damaged mid-walk), with nothing shipped from it.
func collectScanFile(fsys rt.FS, clock rt.Clock, profile hdf.CostProfile, reg *metrics.Registry,
	name, window string, round *readRound) (ships []paneShip, bytesRead int64, opened, failed bool) {
	r, err := hdf.Open(fsys, name, clock, profile)
	if err != nil {
		return nil, 0, false, true
	}
	r.Metrics = reg
	defer r.Close()

	panes := make(map[int]*paneShip)
	var order []int
	for _, d := range r.Datasets() {
		win, paneID, _, ok := roccom.ParseDatasetName(d.Name)
		if !ok || win != window {
			continue
		}
		owner, wanted := round.wantAll[paneID]
		if !wanted {
			continue
		}
		// Locate and read through the library (charges lookup cost).
		ds, ok := r.Lookup(d.Name)
		if !ok {
			continue
		}
		data, err := r.ReadData(ds)
		if err != nil {
			// A checksum mismatch (or read failure) in a committed file:
			// damaged after commit. The whole file is skipped — nothing
			// has been shipped yet — so the restart either recovers the
			// panes from another server's file or reports the snapshot
			// incomplete, sending the caller back a generation.
			return nil, bytesRead, true, true
		}
		bytesRead += int64(len(data))
		pd, ok := panes[paneID]
		if !ok {
			pd = &paneShip{owner: owner}
			panes[paneID] = pd
			order = append(order, paneID)
		}
		pd.sets = append(pd.sets, roccom.IOSet{Name: ds.Name, Type: ds.Type, Dims: ds.Dims, Attrs: ds.Attrs, Data: data})
	}
	ships = make([]paneShip, 0, len(order))
	for _, id := range order {
		ships = append(ships, *panes[id])
	}
	return ships, bytesRead, true, false
}

// scanFile serves one directory-scan fallback file on the request loop.
func (s *server) scanFile(name, window string, round *readRound) {
	readT0 := s.ctx.Clock().Now()
	ships, read, opened, failed := collectScanFile(s.ctx.FS(), s.ctx.Clock(), s.cfg.Profile, s.cfg.Metrics, name, window, round)
	s.cfg.Trace.Record(s.traceRank(), trace.PhaseRead, readT0, s.ctx.Clock().Now())
	if opened {
		s.m.FilesOpened++
		s.mx.filesOpened.Inc()
	}
	if failed {
		s.skipFile(read)
		return
	}
	s.noteRestartBytes(read)
	s.sendShips(ships)
}

package rocpanda

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"genxio/internal/faults"
	"genxio/internal/hdf"
	"genxio/internal/mpi"
	"genxio/internal/roccom"
	"genxio/internal/rt"
	"genxio/internal/trace"
)

// readAll returns the full contents of one file.
func readAll(t testing.TB, fs rt.FS, name string) []byte {
	t.Helper()
	f, err := fs.Open(name)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, size)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return buf
}

// runSnapshotWorkload writes two snapshot generations (with a Sync after
// each) and shuts down, returning the collected server metrics. One client
// per server: the channel backend delivers different clients' writes in
// nondeterministic order, and the bit-exactness contract is per arrival
// order, not across interleavings.
func runSnapshotWorkload(t *testing.T, fs rt.FS, cfg Config) []ServerMetrics {
	t.Helper()
	var mu sync.Mutex
	var sm []ServerMetrics
	cfg.OnServerDone = func(m ServerMetrics) {
		mu.Lock()
		sm = append(sm, m)
		mu.Unlock()
	}
	world := mpi.NewChanWorld(fs, 1)
	err := world.Run(2*cfg.NumServers, func(ctx mpi.Ctx) error {
		cl, err := Init(ctx, cfg)
		if err != nil {
			return err
		}
		if cl == nil {
			return nil
		}
		w := buildWindow(t, cl.Comm().Rank(), 3)
		if err := cl.WriteAttribute("ad/snap0001", w, "all", 1.0, 1); err != nil {
			return err
		}
		if err := cl.Sync(); err != nil {
			return err
		}
		if err := cl.WriteAttribute("ad/snap0002", w, "all", 2.0, 2); err != nil {
			return err
		}
		if err := cl.Sync(); err != nil {
			return err
		}
		return cl.Shutdown()
	})
	if err != nil {
		t.Fatal(err)
	}
	return sm
}

// TestAsyncDrainBitExactOutput pins the engine's core contract: for the
// same workload the background drain produces byte-identical files to the
// synchronous drain — per-file FIFO routing preserves exactly the write
// order the inline drain would have used.
func TestAsyncDrainBitExactOutput(t *testing.T) {
	base := Config{NumServers: 2, Profile: hdf.NullProfile(), ActiveBuffering: true}

	syncFS := rt.NewMemFS()
	runSnapshotWorkload(t, syncFS, base)

	asyncFS := rt.NewMemFS()
	acfg := base
	acfg.AsyncDrain = true
	acfg.DrainWriters = 2
	acfg.Trace = trace.New()
	sm := runSnapshotWorkload(t, asyncFS, acfg)

	want, err := syncFS.List("")
	if err != nil {
		t.Fatal(err)
	}
	got, err := asyncFS.List("")
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 || len(got) != len(want) {
		t.Fatalf("file sets differ: async %v, sync %v", got, want)
	}
	for i, name := range want {
		if got[i] != name {
			t.Fatalf("file sets differ: async %v, sync %v", got, want)
		}
		a, s := readAll(t, asyncFS, name), readAll(t, syncFS, name)
		if string(a) != string(s) {
			t.Fatalf("%s differs between async (%d bytes) and sync (%d bytes) drain", name, len(a), len(s))
		}
	}

	// The writers, not the request loop, wrote the blocks.
	var written, buffered int
	for _, m := range sm {
		written += m.BlocksWritten
		buffered += m.BlocksBuffered
	}
	if written == 0 || written != buffered {
		t.Fatalf("async servers wrote %d of %d buffered blocks", written, buffered)
	}
	// The writer pool recorded its spans on the timeline.
	drains := 0
	for _, s := range acfg.Trace.Spans() {
		if s.Phase == trace.PhaseDrain {
			drains++
			if s.Rank < 2 {
				t.Fatalf("drain span on client rank %d", s.Rank)
			}
		}
	}
	if drains != written {
		t.Fatalf("trace has %d drain spans, want %d (one per block)", drains, written)
	}
}

// TestAsyncDrainBackpressureOneBlockBudget pins the budget semantics: a
// budget smaller than any block admits exactly one block in flight, so
// every enqueue stalls until the writers catch up — write-through timing,
// with the queue never deeper than one block, and still bit-exact output.
func TestAsyncDrainBackpressureOneBlockBudget(t *testing.T) {
	base := Config{NumServers: 1, Profile: hdf.NullProfile(), ActiveBuffering: true}

	syncFS := rt.NewMemFS()
	runSnapshotWorkload(t, syncFS, base)

	asyncFS := rt.NewMemFS()
	acfg := base
	acfg.AsyncDrain = true
	acfg.BufferBudgetBytes = 1
	sm := runSnapshotWorkload(t, asyncFS, acfg)

	if len(sm) != 1 {
		t.Fatalf("server metrics %v, want 1 server", sm)
	}
	m := sm[0]
	if m.BlocksBuffered == 0 {
		t.Fatal("no blocks buffered")
	}
	if m.DrainQueuePeak != 1 {
		t.Fatalf("queue peak %d with a 1-byte budget, want 1", m.DrainQueuePeak)
	}
	if m.BackpressureWaits != m.BlocksBuffered {
		t.Fatalf("backpressure waits %d, want one per block (%d)", m.BackpressureWaits, m.BlocksBuffered)
	}
	if m.BlocksWritten != m.BlocksBuffered {
		t.Fatalf("wrote %d of %d blocks", m.BlocksWritten, m.BlocksBuffered)
	}

	names := listRHDF(t, asyncFS, "ad/")
	if len(names) == 0 {
		t.Fatal("no snapshot files")
	}
	for _, name := range names {
		if string(readAll(t, asyncFS, name)) != string(readAll(t, syncFS, name)) {
			t.Fatalf("%s differs between degenerate async and sync drain", name)
		}
	}
}

// TestAsyncDrainCrashMidDrainFallsBack is the async twin of
// TestCrashMidDrainIncompleteSnapshotFallsBack: the injected MidDrain
// crash now fires on a background writer task, the server process dies
// with it, and the restart must fall back a generation exactly as it does
// when the synchronous drain crashes.
func TestAsyncDrainCrashMidDrainFallsBack(t *testing.T) {
	fs := rt.NewMemFS()
	// Server 1 (serving clients 2 and 3 of 4) drains 4 blocks of snapshot A
	// before its sync barrier; the crash on the 6th block lands mid-B, on
	// the writer task.
	plan := faults.NewCrashPlan(1, faults.MidDrain, 6)
	world := mpi.NewChanWorld(fs, 1)
	err := world.Run(6, func(ctx mpi.Ctx) error {
		cl, err := Init(ctx, Config{
			NumServers:      2,
			Profile:         hdf.NullProfile(),
			ActiveBuffering: true,
			AsyncDrain:      true,
			DrainWriters:    2,
			Crash:           plan,
			RetryTimeout:    0.2,
		})
		if err != nil {
			return err
		}
		if cl == nil {
			return nil
		}
		w := buildWindow(t, cl.Comm().Rank(), 2)
		if err := cl.WriteAttribute("afb/A", w, "all", 1.0, 1); err != nil {
			return err
		}
		if err := cl.Sync(); err != nil {
			return err
		}
		w.EachPane(func(p *roccom.Pane) {
			pr, _ := p.Array("pressure")
			for i := range pr.F64 {
				pr.F64[i] += 1000
			}
		})
		if err := cl.WriteAttribute("afb/B", w, "all", 2.0, 2); err != nil {
			return err
		}
		if err := cl.Sync(); err != nil {
			return err
		}
		return cl.Shutdown()
	})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Fired() {
		t.Fatal("crash plan never fired")
	}

	// Fresh, healthy world: B is incomplete, A must restore bit-exactly.
	var incomplete int
	var mu sync.Mutex
	world = mpi.NewChanWorld(fs, 1)
	err = world.Run(6, func(ctx mpi.Ctx) error {
		cl, err := Init(ctx, Config{
			NumServers:      2,
			Profile:         hdf.NullProfile(),
			ActiveBuffering: true,
			RetryTimeout:    0.2,
		})
		if err != nil {
			return err
		}
		if cl == nil {
			return nil
		}
		w := zeroWindow(t, cl.Comm().Rank(), 2)
		err = cl.ReadAttribute("afb/B", w, "all")
		bad := 0.0
		if err != nil {
			if !errors.Is(err, ErrIncompleteRestart) {
				return err
			}
			bad = 1
			mu.Lock()
			incomplete++
			mu.Unlock()
		}
		if cl.Comm().AllreduceMax(bad) > 0 {
			if err := cl.ReadAttribute("afb/A", w, "all"); err != nil {
				return err
			}
		}
		if err := checkWindow(cl.Comm().Rank(), w); err != nil {
			return err
		}
		return cl.Shutdown()
	})
	if err != nil {
		t.Fatal(err)
	}
	if incomplete == 0 {
		t.Fatal("no client reported snapshot B incomplete")
	}
	// The crashed writer's B file never left its staged temporary: the
	// atomic-create contract survives the move onto the writer task.
	if tmps, _ := fs.List("afb/B_s001"); len(tmps) != 1 || !strings.HasSuffix(tmps[0], ".rhdf"+hdf.TmpSuffix) {
		t.Fatalf("crashed server's B residue %v, want exactly one staged .rhdf%s", tmps, hdf.TmpSuffix)
	}
	// Snapshot A is fully intact (flushed and closed by the barrier before
	// its commit).
	names, _ := fs.List("afb/A_s")
	if len(names) != 2 {
		t.Fatalf("snapshot A files %v, want 2", names)
	}
	for _, n := range names {
		r, err := hdf.Open(fs, n, rt.NewWallClock(), hdf.NullProfile())
		if err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		r.Close()
	}
}

// runDrainErrorWorkload injects a write failure on server 1's snapshot
// file and runs one generation through Sync on 4 ranks (2 clients, 2
// servers), returning each client's Sync and Shutdown errors.
func runDrainErrorWorkload(t *testing.T, fs rt.FS, async bool) (syncErrs, downErrs []error) {
	t.Helper()
	var mu sync.Mutex
	world := mpi.NewChanWorld(fs, 1)
	err := world.Run(4, func(ctx mpi.Ctx) error {
		cl, err := Init(ctx, Config{
			NumServers:      2,
			Profile:         hdf.NullProfile(),
			ActiveBuffering: true,
			AsyncDrain:      async,
		})
		if err != nil {
			return err
		}
		if cl == nil {
			return nil
		}
		w := buildWindow(t, cl.Comm().Rank(), 2)
		if err := cl.WriteAttribute("ef/A", w, "all", 1.0, 1); err != nil {
			return err
		}
		serr := cl.Sync()
		derr := cl.Shutdown()
		mu.Lock()
		syncErrs = append(syncErrs, serr)
		downErrs = append(downErrs, derr)
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return syncErrs, downErrs
}

// TestAsyncDrainErrorSurfacesThroughSync pins the regression the issue
// calls out: a write error observed on the background writer must reach
// every client through the Sync allreduce — not be dropped on the writer
// goroutine — and no manifest may be committed over the missing data.
func TestAsyncDrainErrorSurfacesThroughSync(t *testing.T) {
	for _, async := range []bool{true, false} {
		name := "sync-drain"
		if async {
			name = "async-drain"
		}
		t.Run(name, func(t *testing.T) {
			plan := faults.NewFSPlan(1, faults.FSRule{
				Op: faults.OpWrite, PathPrefix: "ef/A_s001", Msg: "no space left on device",
			})
			fs := faults.WrapFS(rt.NewMemFS(), plan)
			syncErrs, downErrs := runDrainErrorWorkload(t, fs, async)
			if len(syncErrs) != 2 {
				t.Fatalf("got %d clients, want 2", len(syncErrs))
			}
			// Every client must see the failure, including the one whose own
			// server was healthy (the allreduce spreads it).
			for i, err := range syncErrs {
				if err == nil {
					t.Fatalf("client %d Sync returned nil despite server 1's failed drain", i)
				}
			}
			for i, err := range downErrs {
				if err == nil {
					t.Fatalf("client %d Shutdown committed despite server 1's failed drain", i)
				}
			}
			// No commit record: the generation must not be restorable.
			if names, _ := fs.List("ef/A.manifest"); len(names) != 0 {
				t.Fatalf("manifest %v exists despite failed drain", names)
			}
		})
	}
}

package rocpanda

import (
	"errors"
	"fmt"
	"strings"

	"genxio/internal/catalog"
	"genxio/internal/metrics"
	"genxio/internal/mpi"
	"genxio/internal/roccom"
	"genxio/internal/snapshot"
)

// ErrIncompleteRestart reports that a scan-based restart could not recover
// every requested pane: the snapshot is incomplete, typically because a
// server died mid-snapshot and left a file without a directory, or died
// with blocks still buffered in memory. Callers should fall back to the
// previous (complete) snapshot.
var ErrIncompleteRestart = errors.New("rocpanda: snapshot incomplete")

// errDrainFailed reports that a server could not land all of its buffered
// output (a block write or file close failed). Sync and Shutdown surface
// it on every client — the commit allreduce spreads one server's failure
// to all — and the affected generations get no manifest.
var errDrainFailed = errors.New("rocpanda: server drain failed")

// Metrics accumulates a client's application-visible I/O costs.
type Metrics struct {
	VisibleWrite float64 // time inside write_attribute (send + buffer ack)
	VisibleRead  float64 // time inside read_attribute
	SyncWait     float64 // time inside sync
	WriteCalls   int
	ReadCalls    int
	BytesOut     int64 // payload bytes shipped to the server
	Retries      int   // operations retried after a server wait timed out
	Failovers    int   // servers this client declared dead
	IndexedReads int   // restart rounds a server served from the block catalog
}

// Client is a compute process's handle to the Rocpanda service. It
// implements roccom.IOService.
type Client struct {
	ctx        mpi.Ctx
	world      mpi.Comm // world communicator (servers reachable here)
	comm       mpi.Comm // client communicator (the application's world)
	myServer   int      // world rank of this client's originally assigned server
	srvRanks   []int    // world ranks of all servers
	numServers int
	blockOH    float64 // per-block client-side protocol cost
	retain     int     // RetainGenerations: prune older generations after commit
	shutdown   bool

	// Snapshot-commit state: generations written since the last commit.
	// Writes are collective, so every client accumulates the same list;
	// client 0 writes the manifests once all servers have drained.
	pending    []pendingGen
	pendingSet map[string]bool
	registry   *metrics.Registry

	// Fault tolerance (see failover.go).
	nClients  int          // client-communicator size
	myIdx     int          // this client's index in the client communicator
	timeout   float64      // RetryTimeout; 0 disables
	poll      float64      // initial poll interval of timed waits
	maxFail   int          // failover attempts allowed per operation
	dead      map[int]bool // server idx -> believed dead
	contacted []int        // world ranks of servers this client announced itself to

	m  Metrics
	mx clMx
}

// clMx holds a client's registry handles (nil-safe no-ops when
// Config.Metrics is unset).
type clMx struct {
	visibleWrite *metrics.Histogram
	visibleRead  *metrics.Histogram
	syncWait     *metrics.Histogram
	bytesOut     *metrics.Counter
	retries      *metrics.Counter
	failovers    *metrics.Counter
}

func newClMx(r *metrics.Registry) clMx {
	return clMx{
		visibleWrite: r.Histogram("rocpanda.client.visible_write_seconds", nil),
		visibleRead:  r.Histogram("rocpanda.client.visible_read_seconds", nil),
		syncWait:     r.Histogram("rocpanda.client.sync_wait_seconds", nil),
		bytesOut:     r.Counter("rocpanda.client.bytes_out"),
		retries:      r.Counter("rocpanda.client.retries"),
		failovers:    r.Counter("rocpanda.client.failovers"),
	}
}

// Comm returns the client communicator that replaces MPI_COMM_WORLD for
// the application, as in the paper's initialization scheme.
func (c *Client) Comm() mpi.Comm { return c.comm }

// NumServers returns the number of dedicated I/O servers.
func (c *Client) NumServers() int { return c.numServers }

// Metrics returns the accumulated client-visible costs.
func (c *Client) Metrics() Metrics { return c.m }

// WriteAttribute implements roccom.IOService: a collective write. Each
// client ships its panes to its server and returns as soon as the server
// has buffered them (active buffering) or written them (write-through).
func (c *Client) WriteAttribute(file string, w *roccom.Window, attr string, tm float64, step int) error {
	if c.shutdown {
		return fmt.Errorf("rocpanda: write after shutdown")
	}
	t0 := c.ctx.Clock().Now()
	defer func() {
		d := c.ctx.Clock().Now() - t0
		c.m.VisibleWrite += d
		c.m.WriteCalls++
		c.mx.visibleWrite.Observe(d)
	}()

	ids := w.PaneIDs()
	payloads := make([][]byte, 0, len(ids))
	var bytes int64
	for _, id := range ids {
		p, _ := w.Pane(id)
		sets, err := roccom.PaneIOSets(w, p, attr)
		if err != nil {
			return err
		}
		enc := roccom.EncodeIOSets(sets)
		bytes += int64(len(enc))
		payloads = append(payloads, enc)
	}
	c.m.BytesOut += bytes
	c.mx.bytesOut.Add(bytes)

	hdr := writeHdr{
		File: file, Window: w.Name, Attr: attr,
		Time: tm, Step: int32(step),
		NBlocks: int32(len(payloads)), Bytes: bytes,
	}
	enc := encodeWriteHdr(hdr)
	if !c.pendingSet[file] {
		c.pendingSet[file] = true
		c.pending = append(c.pending, pendingGen{base: file, epoch: int64(step), time: tm})
	}
	// Ship header and blocks, then wait for the ack, which arrives when
	// the server has safely buffered (or written) everything; our buffers
	// are reusable as soon as the ack lands. A timed-out ack fails the
	// whole write over to a surviving server and resends it from scratch
	// (blocks may then exist in two servers' files; restart dedupes).
	return c.withFailover("write "+file, func(target int) bool {
		sendT0 := c.ctx.Clock().Now()
		c.world.Send(target, tagWriteHdr, enc)
		for _, pl := range payloads {
			if c.blockOH > 0 {
				c.ctx.Clock().Compute(c.blockOH)
			}
			c.world.Send(target, tagWriteBlock, pl)
		}
		sendT1 := c.ctx.Clock().Now()
		_, st, ok := c.recvTimeout(target, tagWriteAck)
		if ok && st.Size != 0 {
			panic("rocpanda: unexpected ack payload")
		}
		if debugWrites.Load() && c.comm.Rank() < 2 {
			fmt.Printf("DEBUG cl%d write %s/%s: enc=%.3f send=%.3f ack=%.3f\n",
				c.comm.Rank(), file, w.Name, sendT0-t0, sendT1-sendT0, c.ctx.Clock().Now()-sendT1)
		}
		return ok
	})
}

// ReadAttribute implements roccom.IOService: collective restart. The
// window's registered pane IDs define this client's wanted blocks; every
// client sends its list to every server, and servers ship back the blocks
// found in their round-robin share of the snapshot files — through the
// block catalog's direct offset reads when the generation has one, by
// scanning file directories otherwise.
func (c *Client) ReadAttribute(file string, w *roccom.Window, attr string) error {
	return c.ReadPanes(file, w, attr, w.PaneIDs())
}

// ReadPanes is ReadAttribute with an explicit wanted-pane list, the M×N
// building block: a restart run's panes come from the repartitioner (see
// PanesForRestart), not from what this rank happened to write — with attr
// "all" the panes need not be registered in the window yet. The call is
// collective over the clients even when this rank wants nothing (an empty
// list still sends the request, so servers see every requester).
func (c *Client) ReadPanes(file string, w *roccom.Window, attr string, ids []int) error {
	if c.shutdown {
		return fmt.Errorf("rocpanda: read after shutdown")
	}
	t0 := c.ctx.Clock().Now()
	defer func() {
		d := c.ctx.Clock().Now() - t0
		c.m.VisibleRead += d
		c.m.ReadCalls++
		c.mx.visibleRead.Observe(d)
	}()

	// Agree on the surviving servers first (collective), so every client
	// sends to the same set and the round-robin file assignment covers
	// every snapshot file even in degraded mode.
	if c.timeout > 0 {
		c.shareDeaths()
	}
	alive := c.aliveIdxs()
	if len(alive) == 0 {
		return fmt.Errorf("rocpanda: restart of %q: all %d servers failed", file, c.numServers)
	}

	req := readReq{File: file, Window: w.Name, Attr: attr,
		PaneIDs: make([]int32, len(ids)), Alive: make([]int32, len(alive))}
	for i, id := range ids {
		req.PaneIDs[i] = int32(id)
	}
	for i, si := range alive {
		req.Alive[i] = int32(si)
	}
	enc := encodeReadReq(req)
	for _, si := range alive {
		c.world.Send(c.srvRanks[si], tagReadReq, enc)
	}

	want := make(map[int]bool, len(ids))
	for _, id := range ids {
		want[id] = true
	}
	// A pane can arrive more than once: a client that timed out on a
	// slow-but-alive server resent its write elsewhere, duplicating the
	// pane across two servers' files. First arrival wins (the copies are
	// identical); recovered panes are counted once.
	recovered := make(map[int]bool, len(ids))
	reported := make(map[int]bool, len(alive))
	dones := 0
	for dones < len(alive) {
		data, st, ok := c.recvReadMsg()
		if !ok {
			// A server that never reported its round is dead (or as good
			// as): mark it so the next attempt — typically the caller
			// falling back a generation — agrees on the survivors instead
			// of stalling on the same silence again.
			for _, si := range alive {
				if !reported[c.srvRanks[si]] {
					c.markDeadRank(c.srvRanks[si])
				}
			}
			return fmt.Errorf("rocpanda: restart of %q stalled (%d of %d servers reported)",
				file, dones, len(alive))
		}
		switch st.Tag {
		case tagReadDone:
			dones++
			reported[st.Source] = true
			if len(data) == 1 && data[0] == doneModeIndexed {
				c.m.IndexedReads++
			}
		case tagReadBlock:
			sets, err := roccom.DecodeIOSets(data)
			if err != nil {
				return err
			}
			if len(sets) == 0 {
				return fmt.Errorf("rocpanda: empty restart block")
			}
			_, paneID, _, ok := roccom.ParseDatasetName(sets[0].Name)
			if !ok || !want[paneID] {
				return fmt.Errorf("rocpanda: unsolicited restart block %q", sets[0].Name)
			}
			if recovered[paneID] {
				continue
			}
			if err := applyRestart(w, paneID, attr, sets); err != nil {
				return err
			}
			recovered[paneID] = true
		default:
			return fmt.Errorf("rocpanda: unexpected message tag %d during restart", st.Tag)
		}
	}
	if len(recovered) != len(ids) {
		return fmt.Errorf("rocpanda: recovered %d of %d panes of window %q from %q: %w",
			len(recovered), len(ids), w.Name, file, ErrIncompleteRestart)
	}
	return nil
}

// recvReadMsg receives the next restart-protocol message. In fault-
// tolerant mode it polls only the restart tags — a stale write ack from a
// failed-over operation must not be misread — and gives up after an
// extended stall (servers may legitimately spend a while scanning files,
// so the budget is far above RetryTimeout).
func (c *Client) recvReadMsg() ([]byte, mpi.Status, bool) {
	if c.timeout <= 0 {
		data, st := c.world.Recv(mpi.AnySource, mpi.AnyTag)
		return data, st, true
	}
	clock := c.ctx.Clock()
	deadline := clock.Now() + 20*c.timeout
	poll := c.poll
	for {
		for _, tag := range [2]int{tagReadBlock, tagReadDone} {
			if _, ok := c.world.Iprobe(mpi.AnySource, tag); ok {
				data, st := c.world.Recv(mpi.AnySource, tag)
				return data, st, true
			}
		}
		now := clock.Now()
		if now >= deadline {
			return nil, mpi.Status{}, false
		}
		sleep := poll
		if now+sleep > deadline {
			sleep = deadline - now
		}
		clock.Sleep(sleep)
		if poll < c.timeout/2 {
			poll *= 2
		}
	}
}

// applyRestart installs one pane's restart data into the window: full
// replacement for "all", single-attribute fill otherwise.
func applyRestart(w *roccom.Window, paneID int, attr string, sets []roccom.IOSet) error {
	if attr == "all" {
		if _, ok := w.Pane(paneID); ok {
			if err := w.DeletePane(paneID); err != nil {
				return err
			}
		}
		_, err := roccom.RestorePane(w, paneID, sets)
		return err
	}
	p, ok := w.Pane(paneID)
	if !ok {
		return fmt.Errorf("rocpanda: restart for unknown pane %d", paneID)
	}
	a, ok := p.Array(attr)
	if !ok {
		return fmt.Errorf("rocpanda: window %q has no attribute %q", w.Name, attr)
	}
	for _, s := range sets {
		_, _, name, _ := roccom.ParseDatasetName(s.Name)
		if name == attr {
			return a.SetBytes(s.Data)
		}
	}
	return fmt.Errorf("rocpanda: attribute %q missing from restart block of pane %d", attr, paneID)
}

// Sync implements roccom.IOService: it blocks until this client's server
// has drained all buffered output to the filesystem and closed the files.
func (c *Client) Sync() error {
	if c.shutdown {
		return fmt.Errorf("rocpanda: sync after shutdown")
	}
	t0 := c.ctx.Clock().Now()
	defer func() {
		d := c.ctx.Clock().Now() - t0
		c.m.SyncWait += d
		c.mx.syncWait.Observe(d)
	}()
	// Sync is collective: align the clients first, so no server starts a
	// long synchronous drain while a peer's collective write is still
	// being ingested (which would charge the drain to that write's
	// visible time).
	c.comm.Barrier()
	if c.timeout > 0 {
		// Coordinator agreement: merge death observations so a client
		// whose server died since its last contact learns it here instead
		// of through its own timeout.
		c.shareDeaths()
	}
	drainFailed := false
	err := c.withFailover("sync", func(target int) bool {
		c.world.Send(target, tagSync, nil)
		data, _, ok := c.recvTimeout(target, tagSyncAck)
		if ok {
			drainFailed = len(data) == 1 && data[0] == ackDrainFailed
		}
		return ok
	})
	if err == nil && drainFailed {
		// The server answered, but some of its output never landed (a
		// failed block write or file close): the generation is incomplete
		// and must not commit.
		err = errDrainFailed
	}
	// Agree on the outcome before committing: the allreduce doubles as
	// the barrier that guarantees every server has drained (each client
	// enters only after its own server's sync ack), and if any client's
	// sync failed no manifest may be written.
	bad := 0.0
	if err != nil {
		bad = 1
	}
	if c.comm.AllreduceMax(bad) > 0 {
		if err == nil {
			// A peer's server failed its drain; this client's was fine, but
			// the snapshot as a whole is incomplete, so every client must
			// report the refused commit.
			err = fmt.Errorf("rocpanda: sync: %w on a peer's server", errDrainFailed)
		}
		return err
	}
	return c.commitPending()
}

// pendingGen is one generation awaiting its commit record.
type pendingGen struct {
	base  string
	epoch int64
	time  float64
}

// commitPending writes the manifest of every generation synced since the
// last commit (client 0 only; the others wait), then prunes old
// generations if retention is configured. Callers must have established
// that every server has drained. The trailing barrier keeps any client
// from racing ahead — e.g. into a manifest-driven restore — before the
// commit records exist.
func (c *Client) commitPending() error {
	var err error
	if c.myIdx == 0 {
		for _, g := range c.pending {
			if _, cerr := snapshot.Commit(c.ctx.FS(), g.base, g.epoch, g.time); cerr != nil && err == nil {
				err = cerr
			}
		}
		if err == nil && c.retain > 0 && len(c.pending) > 0 {
			prefix := genPrefix(c.pending[len(c.pending)-1].base)
			_, err = snapshot.Prune(c.ctx.FS(), prefix, c.retain)
		}
	}
	c.pending = nil
	c.pendingSet = make(map[string]bool)
	c.comm.Barrier()
	return err
}

// genPrefix returns the directory prefix shared by a base's generations.
func genPrefix(base string) string {
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		return base[:i+1]
	}
	return ""
}

// PanesForRestart returns the panes this client should recover from a
// committed generation: the generation's pane universe for the window
// (from the block catalog, or a directory walk on catalog-less
// generations), dealt round-robin over the current client count. Every
// client computes the same assignment with no communication, so a run may
// restart with any topology — more clients, fewer, different server
// counts — and ReadPanes with attr "all" rebuilds panes this rank never
// wrote.
func (c *Client) PanesForRestart(base, window string) ([]int, error) {
	ids, err := snapshot.PaneUniverse(c.ctx.FS(), base, window)
	if err != nil {
		return nil, err
	}
	return catalog.Repartition(ids, c.nClients)[c.myIdx], nil
}

// RestoreLatest walks the snapshot generations under prefix newest-first
// — skipping uncommitted and damaged ones — and calls restore with each
// candidate base until one succeeds on every client, returning that base.
// Collective over the clients; restore is typically a ReadAttribute (or
// several). Fallbacks are counted on rocpanda.restart.fallbacks.
func (c *Client) RestoreLatest(prefix string, restore func(base string) error) (string, error) {
	if c.shutdown {
		return "", fmt.Errorf("rocpanda: restore after shutdown")
	}
	return snapshot.Restore(c.ctx.FS(), prefix, restore,
		snapshot.Options{Comm: c.comm, Metrics: c.registry})
}

// Shutdown is collective over the clients: it drains the servers and
// releases them from their service loops. The client communicator remains
// usable; further I/O calls fail.
func (c *Client) Shutdown() error {
	if c.shutdown {
		return nil
	}
	c.shutdown = true
	// Collective: no client may trigger its server's final drain while a
	// peer is still mid-operation.
	c.comm.Barrier()
	if c.timeout > 0 {
		c.shareDeaths()
	}
	// Release every server this client ever announced itself to, dead or
	// not: sends never block on the receiver, and a server we wrongly
	// declared dead still holds us in its served set — it must get our
	// shutdown or it would wait forever. Acks are awaited only from
	// servers believed alive.
	for _, t := range c.contacted {
		c.world.Send(t, tagShutdown, nil)
	}
	drainFailed := false
	for _, t := range c.contacted {
		if c.deadRank(t) {
			continue
		}
		data, _, ok := c.recvTimeout(t, tagShutdownAck)
		if !ok {
			c.markDeadRank(t) // died during shutdown; nothing left to do
			continue
		}
		if len(data) == 1 && data[0] == ackDrainFailed {
			drainFailed = true
		}
	}
	// Generations written but never synced drain as the servers shut
	// down; commit them now so the last snapshot of a run is restorable.
	// The allreduce is the barrier that guarantees every client's servers
	// have acked (drained) before client 0 summarizes the files, and it
	// spreads any server's drain failure to every client so nobody writes
	// a manifest over missing data. (A server that merely timed out keeps
	// the old behavior: the commit proceeds on what survives, and restart
	// falls back a generation if the snapshot proves incomplete.)
	bad := 0.0
	if drainFailed {
		bad = 1
	}
	if c.comm.AllreduceMax(bad) > 0 {
		c.pending = nil
		c.pendingSet = make(map[string]bool)
		if drainFailed {
			return fmt.Errorf("rocpanda: shutdown: %w", errDrainFailed)
		}
		return fmt.Errorf("rocpanda: shutdown: %w on a peer's server", errDrainFailed)
	}
	return c.commitPending()
}

// deadRank reports whether the server at this world rank is believed dead.
func (c *Client) deadRank(worldRank int) bool {
	for i, r := range c.srvRanks {
		if r == worldRank {
			return c.dead[i]
		}
	}
	return false
}

// Module returns a roccom.Module exposing this client as the
// interchangeable I/O service named at load time (e.g. "RocpandaIO").
func (c *Client) Module() roccom.Module { return &module{cl: c} }

type module struct {
	cl *Client
}

func (m *module) Load(rc *roccom.Roccom, name string) error {
	if _, err := rc.NewWindow(name); err != nil {
		return err
	}
	return roccom.RegisterIOService(rc, name, m.cl)
}

func (m *module) Unload(rc *roccom.Roccom, name string) error {
	if err := m.cl.Shutdown(); err != nil {
		return err
	}
	return rc.DeleteWindow(name)
}

package rocpanda

import (
	"fmt"

	"genxio/internal/mpi"
	"genxio/internal/roccom"
)

// Metrics accumulates a client's application-visible I/O costs.
type Metrics struct {
	VisibleWrite float64 // time inside write_attribute (send + buffer ack)
	VisibleRead  float64 // time inside read_attribute
	SyncWait     float64 // time inside sync
	WriteCalls   int
	ReadCalls    int
	BytesOut     int64 // payload bytes shipped to the server
}

// Client is a compute process's handle to the Rocpanda service. It
// implements roccom.IOService.
type Client struct {
	ctx        mpi.Ctx
	world      mpi.Comm // world communicator (servers reachable here)
	comm       mpi.Comm // client communicator (the application's world)
	myServer   int      // world rank of this client's server
	srvRanks   []int    // world ranks of all servers
	numServers int
	blockOH    float64 // per-block client-side protocol cost
	shutdown   bool

	m Metrics
}

// Comm returns the client communicator that replaces MPI_COMM_WORLD for
// the application, as in the paper's initialization scheme.
func (c *Client) Comm() mpi.Comm { return c.comm }

// NumServers returns the number of dedicated I/O servers.
func (c *Client) NumServers() int { return c.numServers }

// Metrics returns the accumulated client-visible costs.
func (c *Client) Metrics() Metrics { return c.m }

// WriteAttribute implements roccom.IOService: a collective write. Each
// client ships its panes to its server and returns as soon as the server
// has buffered them (active buffering) or written them (write-through).
func (c *Client) WriteAttribute(file string, w *roccom.Window, attr string, tm float64, step int) error {
	if c.shutdown {
		return fmt.Errorf("rocpanda: write after shutdown")
	}
	t0 := c.ctx.Clock().Now()
	defer func() {
		c.m.VisibleWrite += c.ctx.Clock().Now() - t0
		c.m.WriteCalls++
	}()

	ids := w.PaneIDs()
	payloads := make([][]byte, 0, len(ids))
	var bytes int64
	for _, id := range ids {
		p, _ := w.Pane(id)
		sets, err := roccom.PaneIOSets(w, p, attr)
		if err != nil {
			return err
		}
		enc := roccom.EncodeIOSets(sets)
		bytes += int64(len(enc))
		payloads = append(payloads, enc)
	}
	c.m.BytesOut += bytes

	hdr := writeHdr{
		File: file, Window: w.Name, Attr: attr,
		Time: tm, Step: int32(step),
		NBlocks: int32(len(payloads)), Bytes: bytes,
	}
	sendT0 := c.ctx.Clock().Now()
	c.world.Send(c.myServer, tagWriteHdr, encodeWriteHdr(hdr))
	for _, pl := range payloads {
		if c.blockOH > 0 {
			c.ctx.Clock().Compute(c.blockOH)
		}
		c.world.Send(c.myServer, tagWriteBlock, pl)
	}
	sendT1 := c.ctx.Clock().Now()
	// The ack arrives when the server has safely buffered (or written)
	// everything; our buffers are reusable now either way.
	if _, st := c.world.Recv(c.myServer, tagWriteAck); st.Size != 0 {
		return fmt.Errorf("rocpanda: unexpected ack payload")
	}
	if debugWrites && c.comm.Rank() < 2 {
		fmt.Printf("DEBUG cl%d write %s/%s: enc=%.3f send=%.3f ack=%.3f\n",
			c.comm.Rank(), file, w.Name, sendT0-t0, sendT1-sendT0, c.ctx.Clock().Now()-sendT1)
	}
	return nil
}

// ReadAttribute implements roccom.IOService: collective restart. The
// window's registered pane IDs define this client's wanted blocks; every
// client sends its list to every server, and servers ship back the blocks
// found while scanning their round-robin share of the snapshot files.
func (c *Client) ReadAttribute(file string, w *roccom.Window, attr string) error {
	if c.shutdown {
		return fmt.Errorf("rocpanda: read after shutdown")
	}
	t0 := c.ctx.Clock().Now()
	defer func() {
		c.m.VisibleRead += c.ctx.Clock().Now() - t0
		c.m.ReadCalls++
	}()

	ids := w.PaneIDs()
	req := readReq{File: file, Window: w.Name, Attr: attr, PaneIDs: make([]int32, len(ids))}
	for i, id := range ids {
		req.PaneIDs[i] = int32(id)
	}
	enc := encodeReadReq(req)
	for _, sr := range c.srvRanks {
		c.world.Send(sr, tagReadReq, enc)
	}

	want := make(map[int]bool, len(ids))
	for _, id := range ids {
		want[id] = true
	}
	got := 0
	dones := 0
	for dones < c.numServers {
		data, st := c.world.Recv(mpi.AnySource, mpi.AnyTag)
		switch st.Tag {
		case tagReadDone:
			dones++
		case tagReadBlock:
			sets, err := roccom.DecodeIOSets(data)
			if err != nil {
				return err
			}
			if len(sets) == 0 {
				return fmt.Errorf("rocpanda: empty restart block")
			}
			_, paneID, _, ok := roccom.ParseDatasetName(sets[0].Name)
			if !ok || !want[paneID] {
				return fmt.Errorf("rocpanda: unsolicited restart block %q", sets[0].Name)
			}
			if err := applyRestart(w, paneID, attr, sets); err != nil {
				return err
			}
			got++
		default:
			return fmt.Errorf("rocpanda: unexpected message tag %d during restart", st.Tag)
		}
	}
	if got != len(ids) {
		return fmt.Errorf("rocpanda: restart recovered %d of %d panes of window %q from %q",
			got, len(ids), w.Name, file)
	}
	return nil
}

// applyRestart installs one pane's restart data into the window: full
// replacement for "all", single-attribute fill otherwise.
func applyRestart(w *roccom.Window, paneID int, attr string, sets []roccom.IOSet) error {
	if attr == "all" {
		if _, ok := w.Pane(paneID); ok {
			if err := w.DeletePane(paneID); err != nil {
				return err
			}
		}
		_, err := roccom.RestorePane(w, paneID, sets)
		return err
	}
	p, ok := w.Pane(paneID)
	if !ok {
		return fmt.Errorf("rocpanda: restart for unknown pane %d", paneID)
	}
	a, ok := p.Array(attr)
	if !ok {
		return fmt.Errorf("rocpanda: window %q has no attribute %q", w.Name, attr)
	}
	for _, s := range sets {
		_, _, name, _ := roccom.ParseDatasetName(s.Name)
		if name == attr {
			return a.SetBytes(s.Data)
		}
	}
	return fmt.Errorf("rocpanda: attribute %q missing from restart block of pane %d", attr, paneID)
}

// Sync implements roccom.IOService: it blocks until this client's server
// has drained all buffered output to the filesystem and closed the files.
func (c *Client) Sync() error {
	if c.shutdown {
		return fmt.Errorf("rocpanda: sync after shutdown")
	}
	t0 := c.ctx.Clock().Now()
	defer func() { c.m.SyncWait += c.ctx.Clock().Now() - t0 }()
	// Sync is collective: align the clients first, so no server starts a
	// long synchronous drain while a peer's collective write is still
	// being ingested (which would charge the drain to that write's
	// visible time).
	c.comm.Barrier()
	c.world.Send(c.myServer, tagSync, nil)
	c.world.Recv(c.myServer, tagSyncAck)
	return nil
}

// Shutdown is collective over the clients: it drains the servers and
// releases them from their service loops. The client communicator remains
// usable; further I/O calls fail.
func (c *Client) Shutdown() error {
	if c.shutdown {
		return nil
	}
	c.shutdown = true
	// Collective: no client may trigger its server's final drain while a
	// peer is still mid-operation.
	c.comm.Barrier()
	c.world.Send(c.myServer, tagShutdown, nil)
	c.world.Recv(c.myServer, tagShutdownAck)
	return nil
}

// Module returns a roccom.Module exposing this client as the
// interchangeable I/O service named at load time (e.g. "RocpandaIO").
func (c *Client) Module() roccom.Module { return &module{cl: c} }

type module struct {
	cl *Client
}

func (m *module) Load(rc *roccom.Roccom, name string) error {
	if _, err := rc.NewWindow(name); err != nil {
		return err
	}
	return roccom.RegisterIOService(rc, name, m.cl)
}

func (m *module) Unload(rc *roccom.Roccom, name string) error {
	if err := m.cl.Shutdown(); err != nil {
		return err
	}
	return rc.DeleteWindow(name)
}

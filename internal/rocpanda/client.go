package rocpanda

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"

	"genxio/internal/catalog"
	"genxio/internal/delta"
	"genxio/internal/metrics"
	"genxio/internal/mpi"
	"genxio/internal/roccom"
	"genxio/internal/snapshot"
)

// ErrIncompleteRestart reports that a scan-based restart could not recover
// every requested pane: the snapshot is incomplete, typically because a
// server died mid-snapshot and left a file without a directory, or died
// with blocks still buffered in memory. Callers should fall back to the
// previous (complete) snapshot.
var ErrIncompleteRestart = errors.New("rocpanda: snapshot incomplete")

// errDrainFailed reports that a server could not land all of its buffered
// output (a block write or file close failed). Sync and Shutdown surface
// it on every client — the commit allreduce spreads one server's failure
// to all — and the affected generations get no manifest.
var errDrainFailed = errors.New("rocpanda: server drain failed")

// Metrics accumulates a client's application-visible I/O costs.
type Metrics struct {
	VisibleWrite float64 // time inside write_attribute (send + buffer ack)
	VisibleRead  float64 // time inside read_attribute
	SyncWait     float64 // time inside sync
	WriteCalls   int
	ReadCalls    int
	BytesOut     int64 // payload bytes shipped to the server
	Retries      int   // operations retried after a server wait timed out
	Failovers    int   // servers this client declared dead
	IndexedReads int   // restart rounds a server served from the block catalog
}

// Client is a compute process's handle to the Rocpanda service. It
// implements roccom.IOService.
type Client struct {
	ctx        mpi.Ctx
	world      mpi.Comm // world communicator (servers reachable here)
	comm       mpi.Comm // client communicator (the application's world)
	myServer   int      // world rank of this client's originally assigned server
	srvRanks   []int    // world ranks of all servers
	numServers int
	blockOH    float64 // per-block client-side protocol cost
	retain     int     // RetainGenerations: prune older generations after commit
	shutdown   bool

	// Snapshot-commit state: generations written since the last commit.
	// Writes are collective, so every client accumulates the same list;
	// client 0 writes the manifests once all servers have drained.
	pending    []*pendingGen
	pendingSet map[string]*pendingGen
	registry   *metrics.Registry

	// Delta snapshots (Config.DeltaSnapshots): which panes were last
	// shipped at which dirty epoch, how many generations this client has
	// started (the full/delta cadence input — identical on every client,
	// writes being collective), and the chain state of the last committed
	// generation (what the next delta's manifest records).
	deltaOn   bool
	fullEvery int
	tracker   *delta.Tracker
	genCount  int
	lastBase  string
	lastDepth int

	// Fault tolerance (see failover.go).
	nClients  int          // client-communicator size
	myIdx     int          // this client's index in the client communicator
	timeout   float64      // RetryTimeout; 0 disables
	poll      float64      // initial poll interval of timed waits
	maxFail   int          // failover attempts allowed per operation
	dead      map[int]bool // server idx -> believed dead
	contacted []int        // world ranks of servers this client announced itself to

	m  Metrics
	mx clMx
}

// clMx holds a client's registry handles (nil-safe no-ops when
// Config.Metrics is unset).
type clMx struct {
	visibleWrite *metrics.Histogram
	visibleRead  *metrics.Histogram
	syncWait     *metrics.Histogram
	bytesOut     *metrics.Counter
	retries      *metrics.Counter
	failovers    *metrics.Counter

	// Delta snapshots (Config.DeltaSnapshots).
	dirtyPanes *metrics.Counter
	cleanPanes *metrics.Counter
	deltaSaved *metrics.Counter
}

func newClMx(r *metrics.Registry) clMx {
	return clMx{
		visibleWrite: r.Histogram("rocpanda.client.visible_write_seconds", nil),
		visibleRead:  r.Histogram("rocpanda.client.visible_read_seconds", nil),
		syncWait:     r.Histogram("rocpanda.client.sync_wait_seconds", nil),
		bytesOut:     r.Counter("rocpanda.client.bytes_out"),
		retries:      r.Counter("rocpanda.client.retries"),
		failovers:    r.Counter("rocpanda.client.failovers"),

		dirtyPanes: r.Counter("rocpanda.write.dirty_panes"),
		cleanPanes: r.Counter("rocpanda.write.clean_panes"),
		deltaSaved: r.Counter("rocpanda.write.delta_bytes_saved"),
	}
}

// Comm returns the client communicator that replaces MPI_COMM_WORLD for
// the application, as in the paper's initialization scheme.
func (c *Client) Comm() mpi.Comm { return c.comm }

// NumServers returns the number of dedicated I/O servers.
func (c *Client) NumServers() int { return c.numServers }

// Metrics returns the accumulated client-visible costs.
func (c *Client) Metrics() Metrics { return c.m }

// WriteAttribute implements roccom.IOService: a collective write. Each
// client ships its panes to its server and returns as soon as the server
// has buffered them (active buffering) or written them (write-through).
func (c *Client) WriteAttribute(file string, w *roccom.Window, attr string, tm float64, step int) error {
	if c.shutdown {
		return fmt.Errorf("rocpanda: write after shutdown")
	}
	t0 := c.ctx.Clock().Now()
	defer func() {
		d := c.ctx.Clock().Now() - t0
		c.m.VisibleWrite += d
		c.m.WriteCalls++
		c.mx.visibleWrite.Observe(d)
	}()

	gen := c.pendingSet[file]
	if gen == nil {
		// First collective write of a new generation: decide full vs delta
		// once, for every window written into it. The cadence input is the
		// per-client generation count, identical across clients since
		// writes are collective.
		full := !c.deltaOn || delta.IsFull(c.genCount, c.fullEvery)
		c.genCount++
		gen = &pendingGen{base: file, epoch: int64(step), time: tm, full: full,
			panes: make(map[string][]int)}
		c.pendingSet[file] = gen
		c.pending = append(c.pending, gen)
	}

	ids := w.PaneIDs()
	if c.deltaOn {
		gen.panes[w.Name] = ids
	}
	var epochs map[int]uint64
	if c.deltaOn && !gen.full {
		// Delta generation: ship only panes dirtied since their last ship.
		// Capture each pane's dirty epoch before shipping so a concurrent
		// re-dirty (in principle) would not be marked clean.
		dirty, clean, saved := c.tracker.Partition(w)
		c.mx.dirtyPanes.Add(int64(len(dirty)))
		c.mx.cleanPanes.Add(int64(len(clean)))
		c.mx.deltaSaved.Add(saved)
		ids = dirty
		epochs = make(map[int]uint64, len(ids))
		for _, id := range ids {
			epochs[id] = w.DirtyEpoch(id)
		}
	} else if c.deltaOn {
		c.mx.dirtyPanes.Add(int64(len(ids)))
		epochs = make(map[int]uint64, len(ids))
		for _, id := range ids {
			epochs[id] = w.DirtyEpoch(id)
		}
	}

	payloads := make([][]byte, 0, len(ids))
	var bytes int64
	for _, id := range ids {
		p, _ := w.Pane(id)
		sets, err := roccom.PaneIOSets(w, p, attr)
		if err != nil {
			return err
		}
		enc := roccom.EncodeIOSets(sets)
		bytes += int64(len(enc))
		payloads = append(payloads, enc)
	}
	c.m.BytesOut += bytes
	c.mx.bytesOut.Add(bytes)

	hdr := writeHdr{
		File: file, Window: w.Name, Attr: attr,
		Time: tm, Step: int32(step),
		NBlocks: int32(len(payloads)), Bytes: bytes,
	}
	enc := encodeWriteHdr(hdr)
	// Ship header and blocks, then wait for the ack, which arrives when
	// the server has safely buffered (or written) everything; our buffers
	// are reusable as soon as the ack lands. A timed-out ack fails the
	// whole write over to a surviving server and resends it from scratch
	// (blocks may then exist in two servers' files; restart dedupes).
	err := c.withFailover("write "+file, func(target int) bool {
		sendT0 := c.ctx.Clock().Now()
		c.world.Send(target, tagWriteHdr, enc)
		for _, pl := range payloads {
			if c.blockOH > 0 {
				c.ctx.Clock().Compute(c.blockOH)
			}
			c.world.Send(target, tagWriteBlock, pl)
		}
		sendT1 := c.ctx.Clock().Now()
		_, st, ok := c.recvTimeout(target, tagWriteAck)
		if ok && st.Size != 0 {
			panic("rocpanda: unexpected ack payload")
		}
		if debugWrites.Load() && c.comm.Rank() < 2 {
			fmt.Printf("DEBUG cl%d write %s/%s: enc=%.3f send=%.3f ack=%.3f\n",
				c.comm.Rank(), file, w.Name, sendT0-t0, sendT1-sendT0, c.ctx.Clock().Now()-sendT1)
		}
		return ok
	})
	if err == nil && c.deltaOn {
		// The server has the bytes; record each pane's shipped epoch so the
		// next delta skips it unless it dirties again.
		for i, id := range ids {
			c.tracker.MarkShipped(w.Name, id, epochs[id], int64(len(payloads[i])))
		}
	}
	return err
}

// ReadAttribute implements roccom.IOService: collective restart. The
// window's registered pane IDs define this client's wanted blocks; every
// client sends its list to every server, and servers ship back the blocks
// found in their round-robin share of the snapshot files — through the
// block catalog's direct offset reads when the generation has one, by
// scanning file directories otherwise.
func (c *Client) ReadAttribute(file string, w *roccom.Window, attr string) error {
	return c.ReadPanes(file, w, attr, w.PaneIDs())
}

// ReadPanes is ReadAttribute with an explicit wanted-pane list, the M×N
// building block: a restart run's panes come from the repartitioner (see
// PanesForRestart), not from what this rank happened to write — with attr
// "all" the panes need not be registered in the window yet. The call is
// collective over the clients even when this rank wants nothing (an empty
// list still sends the request, so servers see every requester).
func (c *Client) ReadPanes(file string, w *roccom.Window, attr string, ids []int) error {
	if c.shutdown {
		return fmt.Errorf("rocpanda: read after shutdown")
	}
	t0 := c.ctx.Clock().Now()
	defer func() {
		d := c.ctx.Clock().Now() - t0
		c.m.VisibleRead += d
		c.m.ReadCalls++
		c.mx.visibleRead.Observe(d)
	}()

	// Agree on the surviving servers first (collective), so every client
	// sends to the same set and the round-robin file assignment covers
	// every snapshot file even in degraded mode.
	if c.timeout > 0 {
		c.shareDeaths()
	}
	alive := c.aliveIdxs()
	if len(alive) == 0 {
		return fmt.Errorf("rocpanda: restart of %q: all %d servers failed", file, c.numServers)
	}

	req := readReq{File: file, Window: w.Name, Attr: attr,
		PaneIDs: make([]int32, len(ids)), Alive: make([]int32, len(alive))}
	for i, id := range ids {
		req.PaneIDs[i] = int32(id)
	}
	for i, si := range alive {
		req.Alive[i] = int32(si)
	}
	enc := encodeReadReq(req)
	for _, si := range alive {
		c.world.Send(c.srvRanks[si], tagReadReq, enc)
	}

	want := make(map[int]bool, len(ids))
	for _, id := range ids {
		want[id] = true
	}
	// A pane can arrive more than once: a client that timed out on a
	// slow-but-alive server resent its write elsewhere, duplicating the
	// pane across two servers' files. First arrival wins (the copies are
	// identical); recovered panes are counted once.
	recovered := make(map[int]bool, len(ids))
	reported := make(map[int]bool, len(alive))
	dones := 0
	for dones < len(alive) {
		data, st, ok := c.recvReadMsg()
		if !ok {
			// A server that never reported its round is dead (or as good
			// as): mark it so the next attempt — typically the caller
			// falling back a generation — agrees on the survivors instead
			// of stalling on the same silence again.
			for _, si := range alive {
				if !reported[c.srvRanks[si]] {
					c.markDeadRank(c.srvRanks[si])
				}
			}
			return fmt.Errorf("rocpanda: restart of %q stalled (%d of %d servers reported)",
				file, dones, len(alive))
		}
		switch st.Tag {
		case tagReadDone:
			dones++
			reported[st.Source] = true
			if len(data) == 1 && data[0] == doneModeIndexed {
				c.m.IndexedReads++
			}
		case tagReadBlock:
			sets, err := roccom.DecodeIOSets(data)
			if err != nil {
				return err
			}
			if len(sets) == 0 {
				return fmt.Errorf("rocpanda: empty restart block")
			}
			_, paneID, _, ok := roccom.ParseDatasetName(sets[0].Name)
			if !ok || !want[paneID] {
				return fmt.Errorf("rocpanda: unsolicited restart block %q", sets[0].Name)
			}
			if recovered[paneID] {
				continue
			}
			if err := applyRestart(w, paneID, attr, sets); err != nil {
				return err
			}
			recovered[paneID] = true
		default:
			return fmt.Errorf("rocpanda: unexpected message tag %d during restart", st.Tag)
		}
	}
	if len(recovered) != len(ids) {
		return fmt.Errorf("rocpanda: recovered %d of %d panes of window %q from %q: %w",
			len(recovered), len(ids), w.Name, file, ErrIncompleteRestart)
	}
	return nil
}

// recvReadMsg receives the next restart-protocol message. In fault-
// tolerant mode it polls only the restart tags — a stale write ack from a
// failed-over operation must not be misread — and gives up after an
// extended stall (servers may legitimately spend a while scanning files,
// so the budget is far above RetryTimeout).
func (c *Client) recvReadMsg() ([]byte, mpi.Status, bool) {
	if c.timeout <= 0 {
		data, st := c.world.Recv(mpi.AnySource, mpi.AnyTag)
		return data, st, true
	}
	clock := c.ctx.Clock()
	deadline := clock.Now() + 20*c.timeout
	poll := c.poll
	for {
		for _, tag := range [2]int{tagReadBlock, tagReadDone} {
			if _, ok := c.world.Iprobe(mpi.AnySource, tag); ok {
				data, st := c.world.Recv(mpi.AnySource, tag)
				return data, st, true
			}
		}
		now := clock.Now()
		if now >= deadline {
			return nil, mpi.Status{}, false
		}
		sleep := poll
		if now+sleep > deadline {
			sleep = deadline - now
		}
		clock.Sleep(sleep)
		if poll < c.timeout/2 {
			poll *= 2
		}
	}
}

// applyRestart installs one pane's restart data into the window: full
// replacement for "all", single-attribute fill otherwise.
func applyRestart(w *roccom.Window, paneID int, attr string, sets []roccom.IOSet) error {
	if attr == "all" {
		if _, ok := w.Pane(paneID); ok {
			if err := w.DeletePane(paneID); err != nil {
				return err
			}
		}
		_, err := roccom.RestorePane(w, paneID, sets)
		return err
	}
	p, ok := w.Pane(paneID)
	if !ok {
		return fmt.Errorf("rocpanda: restart for unknown pane %d", paneID)
	}
	a, ok := p.Array(attr)
	if !ok {
		return fmt.Errorf("rocpanda: window %q has no attribute %q", w.Name, attr)
	}
	for _, s := range sets {
		_, _, name, _ := roccom.ParseDatasetName(s.Name)
		if name == attr {
			return a.SetBytes(s.Data)
		}
	}
	return fmt.Errorf("rocpanda: attribute %q missing from restart block of pane %d", attr, paneID)
}

// Sync implements roccom.IOService: it blocks until this client's server
// has drained all buffered output to the filesystem and closed the files.
func (c *Client) Sync() error {
	if c.shutdown {
		return fmt.Errorf("rocpanda: sync after shutdown")
	}
	t0 := c.ctx.Clock().Now()
	defer func() {
		d := c.ctx.Clock().Now() - t0
		c.m.SyncWait += d
		c.mx.syncWait.Observe(d)
	}()
	// Sync is collective: align the clients first, so no server starts a
	// long synchronous drain while a peer's collective write is still
	// being ingested (which would charge the drain to that write's
	// visible time).
	c.comm.Barrier()
	if c.timeout > 0 {
		// Coordinator agreement: merge death observations so a client
		// whose server died since its last contact learns it here instead
		// of through its own timeout.
		c.shareDeaths()
	}
	drainFailed := false
	err := c.withFailover("sync", func(target int) bool {
		c.world.Send(target, tagSync, nil)
		data, _, ok := c.recvTimeout(target, tagSyncAck)
		if ok {
			drainFailed = len(data) == 1 && data[0] == ackDrainFailed
		}
		return ok
	})
	if err == nil && drainFailed {
		// The server answered, but some of its output never landed (a
		// failed block write or file close): the generation is incomplete
		// and must not commit.
		err = errDrainFailed
	}
	// Agree on the outcome before committing: the allreduce doubles as
	// the barrier that guarantees every server has drained (each client
	// enters only after its own server's sync ack), and if any client's
	// sync failed no manifest may be written.
	bad := 0.0
	if err != nil {
		bad = 1
	}
	if c.comm.AllreduceMax(bad) > 0 {
		if err == nil {
			// A peer's server failed its drain; this client's was fine, but
			// the snapshot as a whole is incomplete, so every client must
			// report the refused commit.
			err = fmt.Errorf("rocpanda: sync: %w on a peer's server", errDrainFailed)
		}
		return err
	}
	return c.commitPending()
}

// pendingGen is one generation awaiting its commit record.
type pendingGen struct {
	base  string
	epoch int64
	time  float64
	// Delta snapshots: whether this generation ships every pane (full) or
	// only dirty ones, and this client's local pane universe per window —
	// every registered pane, shipped or not, so the committed manifest can
	// record the generation's true pane set (a clean pane still exists; a
	// refinement-deleted one must not resurrect from the chain's base).
	full  bool
	panes map[string][]int
}

// commitPending writes the manifest of every generation synced since the
// last commit (client 0 only; the others wait), then prunes old
// generations if retention is configured. Callers must have established
// that every server has drained. The trailing barrier keeps any client
// from racing ahead — e.g. into a manifest-driven restore — before the
// commit records exist.
func (c *Client) commitPending() error {
	var err error
	for _, g := range c.pending {
		var chain *snapshot.ChainInfo
		if c.deltaOn && !g.full {
			// A delta's manifest must record the generation's global pane
			// universe, and panes live where their owners are — no single
			// client knows the whole set, so gather every client's local
			// universe to the committer. Collective: every client's pending
			// list is identical (writes are collective).
			blob, _ := json.Marshal(g.panes)
			parts := c.comm.Gather(0, blob)
			if c.myIdx == 0 {
				chain = &snapshot.ChainInfo{
					Base:  c.lastBase,
					Depth: c.lastDepth + 1,
					Panes: mergeUniverses(parts),
				}
			}
		}
		if c.myIdx == 0 {
			if _, cerr := snapshot.CommitChained(c.ctx.FS(), g.base, g.epoch, g.time, chain); cerr != nil && err == nil {
				err = cerr
			}
		}
		// Chain state advances on every client, commit outcome regardless:
		// if the commit failed, the next delta chains to an uncommitted
		// base, LoadChain refuses it, and restore falls back — the same
		// degradation a lost manifest already gets.
		if c.deltaOn {
			if g.full {
				c.lastBase, c.lastDepth = g.base, 0
			} else {
				c.lastBase, c.lastDepth = g.base, c.lastDepth+1
			}
		}
	}
	if err == nil && c.myIdx == 0 && c.retain > 0 && len(c.pending) > 0 {
		prefix := genPrefix(c.pending[len(c.pending)-1].base)
		_, err = snapshot.Prune(c.ctx.FS(), prefix, c.retain)
	}
	c.pending = nil
	c.pendingSet = make(map[string]*pendingGen)
	c.comm.Barrier()
	return err
}

// mergeUniverses unions the clients' per-window pane universes into one
// sorted global set per window.
func mergeUniverses(parts [][]byte) map[string][]int {
	seen := make(map[string]map[int]bool)
	for _, blob := range parts {
		var local map[string][]int
		if json.Unmarshal(blob, &local) != nil {
			continue // cannot happen: we marshaled it ourselves
		}
		for w, ids := range local {
			if seen[w] == nil {
				seen[w] = make(map[int]bool)
			}
			for _, id := range ids {
				seen[w][id] = true
			}
		}
	}
	merged := make(map[string][]int, len(seen))
	for w, set := range seen {
		ids := make([]int, 0, len(set))
		for id := range set {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		merged[w] = ids
	}
	return merged
}

// genPrefix returns the directory prefix shared by a base's generations.
func genPrefix(base string) string {
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		return base[:i+1]
	}
	return ""
}

// PanesForRestart returns the panes this client should recover from a
// committed generation: the generation's pane universe for the window
// (from the block catalog, or a directory walk on catalog-less
// generations), dealt round-robin over the current client count. Every
// client computes the same assignment with no communication, so a run may
// restart with any topology — more clients, fewer, different server
// counts — and ReadPanes with attr "all" rebuilds panes this rank never
// wrote.
func (c *Client) PanesForRestart(base, window string) ([]int, error) {
	ids, err := snapshot.PaneUniverse(c.ctx.FS(), base, window)
	if err != nil {
		return nil, err
	}
	return catalog.Repartition(ids, c.nClients)[c.myIdx], nil
}

// RestoreLatest walks the snapshot generations under prefix newest-first
// — skipping uncommitted and damaged ones — and calls restore with each
// candidate base until one succeeds on every client, returning that base.
// Collective over the clients; restore is typically a ReadAttribute (or
// several). Fallbacks are counted on rocpanda.restart.fallbacks.
func (c *Client) RestoreLatest(prefix string, restore func(base string) error) (string, error) {
	if c.shutdown {
		return "", fmt.Errorf("rocpanda: restore after shutdown")
	}
	return snapshot.Restore(c.ctx.FS(), prefix, restore,
		snapshot.Options{Comm: c.comm, Metrics: c.registry})
}

// Shutdown is collective over the clients: it drains the servers and
// releases them from their service loops. The client communicator remains
// usable; further I/O calls fail.
func (c *Client) Shutdown() error {
	if c.shutdown {
		return nil
	}
	c.shutdown = true
	// Collective: no client may trigger its server's final drain while a
	// peer is still mid-operation.
	c.comm.Barrier()
	if c.timeout > 0 {
		c.shareDeaths()
	}
	// Release every server this client ever announced itself to, dead or
	// not: sends never block on the receiver, and a server we wrongly
	// declared dead still holds us in its served set — it must get our
	// shutdown or it would wait forever. Acks are awaited only from
	// servers believed alive.
	for _, t := range c.contacted {
		c.world.Send(t, tagShutdown, nil)
	}
	drainFailed := false
	for _, t := range c.contacted {
		if c.deadRank(t) {
			continue
		}
		data, _, ok := c.recvTimeout(t, tagShutdownAck)
		if !ok {
			c.markDeadRank(t) // died during shutdown; nothing left to do
			continue
		}
		if len(data) == 1 && data[0] == ackDrainFailed {
			drainFailed = true
		}
	}
	// Generations written but never synced drain as the servers shut
	// down; commit them now so the last snapshot of a run is restorable.
	// The allreduce is the barrier that guarantees every client's servers
	// have acked (drained) before client 0 summarizes the files, and it
	// spreads any server's drain failure to every client so nobody writes
	// a manifest over missing data. (A server that merely timed out keeps
	// the old behavior: the commit proceeds on what survives, and restart
	// falls back a generation if the snapshot proves incomplete.)
	bad := 0.0
	if drainFailed {
		bad = 1
	}
	if c.comm.AllreduceMax(bad) > 0 {
		c.pending = nil
		c.pendingSet = make(map[string]*pendingGen)
		if drainFailed {
			return fmt.Errorf("rocpanda: shutdown: %w", errDrainFailed)
		}
		return fmt.Errorf("rocpanda: shutdown: %w on a peer's server", errDrainFailed)
	}
	return c.commitPending()
}

// deadRank reports whether the server at this world rank is believed dead.
func (c *Client) deadRank(worldRank int) bool {
	for i, r := range c.srvRanks {
		if r == worldRank {
			return c.dead[i]
		}
	}
	return false
}

// Module returns a roccom.Module exposing this client as the
// interchangeable I/O service named at load time (e.g. "RocpandaIO").
func (c *Client) Module() roccom.Module { return &module{cl: c} }

type module struct {
	cl *Client
}

func (m *module) Load(rc *roccom.Roccom, name string) error {
	if _, err := rc.NewWindow(name); err != nil {
		return err
	}
	return roccom.RegisterIOService(rc, name, m.cl)
}

func (m *module) Unload(rc *roccom.Roccom, name string) error {
	if err := m.cl.Shutdown(); err != nil {
		return err
	}
	return rc.DeleteWindow(name)
}

package rocpanda

import (
	"errors"
	"strings"
	"testing"
)

func TestValidateAcceptsCommonConfigs(t *testing.T) {
	cases := []Config{
		{NumServers: 1, ActiveBuffering: true},
		{NumServers: 2, ActiveBuffering: true, AsyncDrain: true, DrainWriters: 2, BufferBudgetBytes: 256 << 20},
		{NumServers: 2, ActiveBuffering: true, ParallelRead: true, ReadWorkers: 4, ReadBudgetBytes: 256 << 20},
		{NumServers: 2, ActiveBuffering: true, ReplicationFactor: 2},
		// R > NumServers wraps replica homes around; legal (copyNames).
		{NumServers: 1, ActiveBuffering: true, ReplicationFactor: 2},
		{NumServers: 1, ActiveBuffering: true, DeltaSnapshots: true, FullEvery: 4},
		{ClientServerRatio: 8, ActiveBuffering: true},
		{NumServers: 1}, // write-through ablation
	}
	for i, c := range cases {
		if err := c.Validate(); err != nil {
			t.Errorf("case %d: Validate() = %v, want nil", i, err)
		}
	}
}

func TestValidateAsyncDrainNeedsBuffering(t *testing.T) {
	c := Config{NumServers: 1, AsyncDrain: true}
	if err := c.Validate(); !errors.Is(err, ErrAsyncDrainNeedsBuffering) {
		t.Fatalf("Validate() = %v, want ErrAsyncDrainNeedsBuffering", err)
	}
}

func TestValidateDeltaNeedsFullEvery(t *testing.T) {
	c := Config{NumServers: 1, ActiveBuffering: true, DeltaSnapshots: true}
	if err := c.Validate(); !errors.Is(err, ErrDeltaNeedsFullEvery) {
		t.Fatalf("Validate() = %v, want ErrDeltaNeedsFullEvery", err)
	}
	c.FullEvery = -3
	if err := c.Validate(); !errors.Is(err, ErrDeltaNeedsFullEvery) {
		t.Fatalf("Validate() with FullEvery -3 = %v, want ErrDeltaNeedsFullEvery", err)
	}
}

func TestValidateRangeErrors(t *testing.T) {
	cases := []struct {
		name  string
		cfg   Config
		field string
	}{
		{"negative servers", Config{NumServers: -1}, "NumServers"},
		{"negative ratio", Config{ClientServerRatio: -2}, "ClientServerRatio"},
		{"too many drain writers", Config{NumServers: 1, ActiveBuffering: true, AsyncDrain: true, DrainWriters: 9}, "DrainWriters"},
		{"negative drain writers", Config{NumServers: 1, ActiveBuffering: true, AsyncDrain: true, DrainWriters: -1}, "DrainWriters"},
		{"negative write budget", Config{NumServers: 1, ActiveBuffering: true, AsyncDrain: true, BufferBudgetBytes: -1}, "BufferBudgetBytes"},
		{"too many read workers", Config{NumServers: 1, ActiveBuffering: true, ParallelRead: true, ReadWorkers: 99}, "ReadWorkers"},
		{"negative read budget", Config{NumServers: 1, ActiveBuffering: true, ParallelRead: true, ReadBudgetBytes: -5}, "ReadBudgetBytes"},
		{"negative replication", Config{NumServers: 2, ActiveBuffering: true, ReplicationFactor: -1}, "ReplicationFactor"},
		{"negative retain", Config{NumServers: 1, ActiveBuffering: true, RetainGenerations: -1}, "RetainGenerations"},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		var re *ConfigRangeError
		if !errors.As(err, &re) {
			t.Errorf("%s: Validate() = %v, want *ConfigRangeError", tc.name, err)
			continue
		}
		if re.Field != tc.field {
			t.Errorf("%s: error field %q, want %q", tc.name, re.Field, tc.field)
		}
		if !strings.Contains(re.Error(), "Config."+tc.field) {
			t.Errorf("%s: error message %q does not name the field", tc.name, re.Error())
		}
	}
}

package rocpanda

import (
	"errors"
	"fmt"
)

// Sentinel errors for incompatible Config combinations; callers match them
// with errors.Is.
var (
	// ErrAsyncDrainNeedsBuffering rejects AsyncDrain without
	// ActiveBuffering: the background writer pool drains the active
	// buffer, so without buffering there is nothing for it to drain.
	ErrAsyncDrainNeedsBuffering = errors.New("rocpanda: AsyncDrain requires ActiveBuffering")
	// ErrDeltaNeedsFullEvery rejects DeltaSnapshots with FullEvery < 1 at
	// the command line: an unbounded chain anchors every delta of a long
	// run on one full generation, which is almost never what an operator
	// wants (the library itself still accepts it for ablations).
	ErrDeltaNeedsFullEvery = errors.New("rocpanda: DeltaSnapshots requires FullEvery >= 1 (every delta chain needs a periodic full snapshot)")
)

// ConfigRangeError reports a Config field outside its accepted range.
type ConfigRangeError struct {
	Field    string
	Value    int64
	Min, Max int64 // Max < 0 means unbounded above
}

func (e *ConfigRangeError) Error() string {
	if e.Max < 0 {
		return fmt.Sprintf("rocpanda: Config.%s = %d out of range (want >= %d)", e.Field, e.Value, e.Min)
	}
	return fmt.Sprintf("rocpanda: Config.%s = %d out of range (want %d..%d)", e.Field, e.Value, e.Min, e.Max)
}

// Validate rejects incompatible or out-of-range Config combinations with
// typed errors, instead of the silent clamping Init applies. Command-line
// front ends (cmd/genx, cmd/genxbench) call it so a bad flag fails with a
// message; the library entry points keep clamping, so programmatic
// ablations stay free to probe degenerate settings. Checks that need the
// world size (server count vs. ranks) stay in Init.
func (c *Config) Validate() error {
	if c.NumServers < 0 {
		return &ConfigRangeError{Field: "NumServers", Value: int64(c.NumServers), Min: 0, Max: -1}
	}
	if c.ClientServerRatio < 0 {
		return &ConfigRangeError{Field: "ClientServerRatio", Value: int64(c.ClientServerRatio), Min: 0, Max: -1}
	}
	if c.AsyncDrain && !c.ActiveBuffering {
		return ErrAsyncDrainNeedsBuffering
	}
	if c.DrainWriters < 0 || c.DrainWriters > maxDrainWriters {
		return &ConfigRangeError{Field: "DrainWriters", Value: int64(c.DrainWriters), Min: 0, Max: maxDrainWriters}
	}
	if c.BufferBudgetBytes < 0 {
		return &ConfigRangeError{Field: "BufferBudgetBytes", Value: c.BufferBudgetBytes, Min: 0, Max: -1}
	}
	if c.ReadWorkers < 0 || c.ReadWorkers > maxReadWorkers {
		return &ConfigRangeError{Field: "ReadWorkers", Value: int64(c.ReadWorkers), Min: 0, Max: maxReadWorkers}
	}
	if c.ReadBudgetBytes < 0 {
		return &ConfigRangeError{Field: "ReadBudgetBytes", Value: c.ReadBudgetBytes, Min: 0, Max: -1}
	}
	// R > NumServers is deliberately legal: replica homes wrap around
	// (copyNames), so extra copies land on an already-used home under a
	// distinct file name — they still survive file loss, just not the loss
	// of that server's whole file set.
	if c.ReplicationFactor < 0 {
		return &ConfigRangeError{Field: "ReplicationFactor", Value: int64(c.ReplicationFactor), Min: 0, Max: -1}
	}
	if c.DeltaSnapshots && c.FullEvery < 1 {
		return ErrDeltaNeedsFullEvery
	}
	if c.RetainGenerations < 0 {
		return &ConfigRangeError{Field: "RetainGenerations", Value: int64(c.RetainGenerations), Min: 0, Max: -1}
	}
	return nil
}

package rocpanda

// The parallel restart read engine: the read-side twin of the background
// drain engine (drain.go). With Config.ParallelRead a restart round's file
// share — catalog-planned extent reads and directory-scan fallbacks alike —
// is executed by a pool of read workers (ctx.Spawn: real goroutines on the
// channel backend, simulation processes with their own clock and
// filesystem view on the virtual platforms) instead of one file at a time
// on the request loop.
//
// Division of labor: workers do disk I/O only — they fill preallocated run
// buffers with ReadAt chunks, or walk a scan-fallback file into ship-ready
// pane payloads — and report results over a control queue. The server
// goroutine does everything else: CRC verification, inflate, pane
// assembly, and every network send (simulated endpoints charge the sending
// process, so shipping must stay on the server's own identity). Reads of
// file N+1 therefore overlap the verification and shipping of file N,
// which is the pipelining the engine exists for.
//
// Granularity: coalesced runs are split into readChunkBytes chunks, so
// even a single large snapshot file spreads across the whole pool. On the
// simulated NFS platforms each worker process has its own stream-read
// pacing, so the chunks of one file genuinely overlap — this, not
// file-level fan-out, is where the restart speedup comes from when a
// server's share is one big file.
//
// Ordering and dedupe compatibility: within one file, entries ship in plan
// order exactly as the serial path does; across files, completion order
// may differ from the serial listing order, but a pane is planned from
// exactly one file per server and clients dedupe on first arrival (the
// copies a failover may leave in two files are identical), so what a rank
// restores is bit-identical to the serial path.
//
// Backpressure: Config.ReadBudgetBytes bounds the read bytes in flight.
// A task that would overrun the budget is deferred until outstanding reads
// complete; a task is always admitted when nothing is in flight, so
// progress is guaranteed and a one-byte budget degenerates to serial reads.
//
// Failure: a worker never panics the process. Open/ReadAt errors and
// damaged payloads mark the file failed; the server skips it whole —
// nothing from a failed file ever ships, matching the serial path — and
// accounts the discarded bytes as wasted, not read. An injected MidRead
// crash fires on a worker, which reports it through its exit message; the
// server then dies as one process, and the clients' stall detection takes
// over.

import (
	"sync/atomic"

	"genxio/internal/catalog"
	"genxio/internal/faults"
	"genxio/internal/rt"
	"genxio/internal/trace"
)

const (
	// maxReadWorkers caps Config.ReadWorkers.
	maxReadWorkers = 8
	// defaultReadWorkers is used when ParallelRead is on and ReadWorkers
	// is unset.
	defaultReadWorkers = 4
	// readChunkBytes splits coalesced runs into pool-sized chunks; see the
	// granularity note above.
	readChunkBytes = 512 << 10
)

// readItem is one file of a server's restart share, as the listing and the
// catalog classified it: a planned extent read, or a directory-scan
// fallback.
type readItem struct {
	name string
	scan bool
	plan catalog.FilePlan
	// cat, when set, is the catalog this plan came from — in chain rounds
	// each item carries its own generation's catalog, so a failed file's
	// pane retries consult the right link's copies.
	cat *catalog.Catalog
}

// readFile is the server-side state of one file in a parallel round.
type readFile struct {
	name   string
	scan   bool
	plan   catalog.FilePlan
	cat    *catalog.Catalog // per-item catalog (chain rounds); nil otherwise
	runs   []catalog.Run
	bufs   [][]byte // one buffer per run; chunk tasks fill disjoint windows
	left   int      // outstanding worker results for this file
	failed bool
	opened bool
	read   int64 // bytes successfully pulled from the file so far
}

// readChunkTask is one contiguous disk read: fill buf from off.
type readChunkTask struct {
	fi   int // index into readEngine.files
	name string
	off  int64
	buf  []byte
}

// readScanTask is one whole-file directory-scan fallback.
type readScanTask struct {
	fi   int
	name string
}

// readTask is the unit the server deals to workers. stalled is server-
// goroutine-only bookkeeping (set before the task is ever enqueued), so a
// task is counted against the budget at most once.
type readTask struct {
	cost    int64
	stalled bool
	chunk   *readChunkTask
	scan    *readScanTask
}

func (t *readTask) fileIdx() int {
	if t.chunk != nil {
		return t.chunk.fi
	}
	return t.scan.fi
}

// readResult is one task's outcome, reported to the server over the
// control queue (which is also the happens-before edge covering the chunk
// buffer the worker filled).
type readResult struct {
	fi     int
	cost   int64 // budget bytes to release
	read   int64 // bytes actually pulled from the file
	opened bool
	failed bool
	ships  []paneShip // scan tasks only: ship-ready pane payloads
	t0, t1 float64
}

// readExit is a worker's final message.
type readExit struct{ crashed bool }

// readEngine owns one restart round's worker pool. It is created per
// round (restart rounds are rare and bounded, unlike the server-lifetime
// drain pool) and torn down before the round's done notifications go out.
// enqueue/consume run on the server goroutine; runWorker on the workers.
// The two sides share only the queues and the dead flag.
type readEngine struct {
	s      *server
	clock  rt.Clock // the server loop's clock identity
	nw     int
	budget int64
	window string
	round  *readRound
	jobs   []rt.Queue // per-worker task queues; sized so Put never blocks
	ctl    rt.Queue   // workers -> server: results and exits

	dead atomic.Bool // round over: workers short-circuit remaining tasks

	// Server-goroutine-only state.
	files   []*readFile
	tasks   []*readTask
	cat     *catalog.Catalog // nil in scan-fallback rounds (no index of copies)
	bad     map[string]bool  // files that failed an open; retries skip them
	shipped bool             // something left this server already (overlap accounting)
	exited  int
	crashed bool
	closed  bool
}

// newReadEngine builds the round's file states and task list, then spawns
// the workers. Planned files get their run buffers allocated here, split
// into chunk tasks; scan files are one task each, budget-costed by file
// size.
func newReadEngine(s *server, window string, round *readRound, items []readItem, cat *catalog.Catalog, badFiles map[string]bool) *readEngine {
	nw := s.cfg.ReadWorkers
	if nw <= 0 {
		nw = defaultReadWorkers
	}
	if nw > maxReadWorkers {
		nw = maxReadWorkers
	}
	e := &readEngine{
		s:      s,
		clock:  s.ctx.Clock(),
		nw:     nw,
		budget: s.cfg.ReadBudgetBytes,
		window: window,
		round:  round,
		cat:    cat,
		bad:    badFiles,
	}
	for _, it := range items {
		fi := len(e.files)
		if it.scan {
			f := &readFile{name: it.name, scan: true, left: 1}
			e.files = append(e.files, f)
			cost, _ := s.ctx.FS().Stat(it.name) // unknown size costs zero
			e.tasks = append(e.tasks, &readTask{cost: cost, scan: &readScanTask{fi: fi, name: it.name}})
			continue
		}
		f := &readFile{name: it.name, plan: it.plan, cat: it.cat, runs: catalog.Coalesce(it.plan.Entries, 0)}
		f.bufs = make([][]byte, len(f.runs))
		e.files = append(e.files, f)
		for ri, run := range f.runs {
			f.bufs[ri] = make([]byte, run.Length)
			for off := int64(0); off < run.Length; off += readChunkBytes {
				n := min(int64(readChunkBytes), run.Length-off)
				e.tasks = append(e.tasks, &readTask{cost: n, chunk: &readChunkTask{
					fi: fi, name: it.name, off: run.Offset + off, buf: f.bufs[ri][off : off+n],
				}})
				f.left++
			}
		}
	}
	// Queues are sized so no Put ever blocks: the server deals tasks
	// round-robin by index, and the control queue holds one result per
	// task plus every exit. A crashed worker that abandons its queue can
	// then never wedge the server mid-Put.
	perWorker := len(e.tasks)/nw + 2
	e.ctl = s.ctx.NewQueue(len(e.tasks) + nw + 4)
	for wi := 0; wi < nw; wi++ {
		e.jobs = append(e.jobs, s.ctx.NewQueue(perWorker))
	}
	for wi := 0; wi < nw; wi++ {
		wi := wi
		s.ctx.Spawn("panda-read", func(tc rt.TaskCtx) { e.runWorker(wi, tc) })
	}
	return e
}

// runReadPool executes one restart round's share through the worker pool.
// Runs on the server goroutine; returns only after every worker has
// exited. If a worker hit an injected crash the server process dies with
// it, exactly as the serial path's maybeCrash would.
func (s *server) runReadPool(window string, round *readRound, items []readItem, cat *catalog.Catalog, badFiles map[string]bool) {
	e := newReadEngine(s, window, round, items, cat, badFiles)
	defer e.close()
	e.run()
	e.close()
	if e.crashed {
		s.m.Crashed = true
		panic(serverCrashed{})
	}
}

// run is the round's dispatch loop: interleave task admission (under the
// byte budget) with result consumption. Admission always wins while the
// budget allows it, so the queues stay full and the workers never starve;
// when the budget defers a task the loop blocks consuming one result,
// which both releases budget and lets file completions ship while later
// reads are still on disk.
func (e *readEngine) run() {
	s := e.s
	next, inflight := 0, 0
	var queued int64
	for next < len(e.tasks) || inflight > 0 {
		if next < len(e.tasks) {
			t := e.tasks[next]
			// A task is always admitted when nothing is in flight:
			// progress is guaranteed even when one task alone overruns the
			// budget (the degenerate serial case).
			if e.budget <= 0 || queued+t.cost <= e.budget || inflight == 0 {
				e.jobs[next%e.nw].Put(e.clock, t)
				queued += t.cost
				inflight++
				if inflight > s.m.ReadQueuePeak {
					s.m.ReadQueuePeak = inflight
				}
				s.mx.readQueueDepth.SetMax(float64(inflight))
				next++
				continue
			}
			if !t.stalled {
				t.stalled = true
				s.m.ReadBackpressureWaits++
				s.mx.readBackpressure.Inc()
			}
		}
		v, ok := e.ctl.Get(e.clock)
		if !ok {
			return
		}
		switch r := v.(type) {
		case readResult:
			inflight--
			queued -= r.cost
			e.consume(r)
		case readExit:
			// A worker can only exit mid-round by crashing (queues close
			// after the loop); the server process dies with it.
			e.exited++
			if r.crashed {
				e.crashed = true
			}
			return
		}
	}
}

// consume folds one worker result into the round: metrics, trace spans,
// file completion, and — for completed files — verification and shipping.
// Server goroutine only.
func (e *readEngine) consume(r readResult) {
	s := e.s
	f := e.files[r.fi]
	if r.t1 > r.t0 {
		s.cfg.Trace.Record(s.traceRank(), trace.PhaseRead, r.t0, r.t1)
		if e.shipped {
			// Disk time spent after this round's first pane left the
			// server: reads of later files overlapped earlier files'
			// sends — the pipelining the engine exists for.
			s.m.ReadOverlapSeconds += r.t1 - r.t0
			s.mx.readOverlap.Observe(r.t1 - r.t0)
		}
	}
	if r.opened && !f.opened {
		f.opened = true
		s.m.FilesOpened++
		s.mx.filesOpened.Inc()
	}
	if r.failed {
		f.failed = true
	}
	f.read += r.read
	f.left--
	if f.scan {
		if r.failed {
			s.skipFile(f.read)
			return
		}
		s.noteRestartBytes(f.read)
		s.sendShips(r.ships)
		if len(r.ships) > 0 {
			e.shipped = true
		}
		return
	}
	if f.left > 0 {
		return
	}
	if f.failed {
		s.skipFile(f.read)
		e.retry(f)
		return
	}
	ships, crcFailed, ok := assembleShips(f.plan, f.runs, f.bufs, e.round)
	if crcFailed {
		s.mx.checksumFails.Inc()
	}
	if !ok {
		s.skipFile(f.read)
		e.retry(f)
		return
	}
	s.noteRestartBytes(f.read)
	s.sendShips(ships)
	if len(ships) > 0 {
		e.shipped = true
	}
}

// retry recovers a failed planned file's panes from their other copies on
// the server goroutine, while the workers keep reading the round's
// remaining files. Scan-fallback files carry no plan (their panes are
// unknown until read), and a round without a catalog has no index of
// copies — in both cases the listing itself already covers every replica,
// so there is nothing more to do here.
func (e *readEngine) retry(f *readFile) {
	if f.scan {
		return
	}
	cat := f.cat
	if cat == nil {
		cat = e.cat
	}
	if cat == nil {
		return
	}
	e.bad[f.name] = true
	if e.s.recoverPanes(cat, e.window, e.round, f.plan, e.bad) > 0 {
		e.shipped = true
	}
}

// close tears the pool down: closes the task queues and drains the control
// queue until every worker has exited, so the simulation's non-daemon
// worker processes always terminate and no result is left to confuse a
// later round. Idempotent; server goroutine only.
func (e *readEngine) close() {
	if e.closed {
		return
	}
	e.closed = true
	e.dead.Store(true)
	for _, q := range e.jobs {
		q.Close()
	}
	for e.exited < e.nw {
		v, ok := e.ctl.Get(e.clock)
		if !ok {
			break
		}
		if x, isExit := v.(readExit); isExit {
			e.exited++
			if x.crashed {
				e.crashed = true
			}
		}
	}
	e.ctl.Close()
}

// runWorker is one read worker's body: disk I/O only, results over the
// control queue. It caches one open handle per file (several workers may
// hold handles on the same file; each reads disjoint chunks) and never
// lets a failure escape as a panic — damage is data, reported upward.
func (e *readEngine) runWorker(wi int, tc rt.TaskCtx) {
	handles := make(map[string]rt.File)
	crashed := false
	defer func() {
		for _, f := range handles {
			f.Close()
		}
		e.ctl.Put(tc.Clock(), readExit{crashed: crashed})
	}()
	for {
		v, ok := e.jobs[wi].Get(tc.Clock())
		if !ok {
			return
		}
		t := v.(*readTask)
		if e.dead.Load() {
			// The round was torn down (crash elsewhere); release the
			// task's budget without touching the disk.
			e.ctl.Put(tc.Clock(), readResult{fi: t.fileIdx(), cost: t.cost, failed: true})
			continue
		}
		var res readResult
		if t.chunk != nil {
			res = e.workChunk(tc, handles, t)
		} else {
			res = e.workScan(tc, t)
		}
		e.ctl.Put(tc.Clock(), res)
		if e.s.cfg.Crash.Hit(e.s.idx, faults.MidRead) {
			// Injected crash: the server process dies with this worker;
			// the exit message carries the verdict to the dispatch loop.
			crashed = true
			return
		}
	}
}

// workChunk fills one chunk's buffer window from its file.
func (e *readEngine) workChunk(tc rt.TaskCtx, handles map[string]rt.File, t *readTask) readResult {
	c := t.chunk
	t0 := tc.Clock().Now()
	f, ok := handles[c.name]
	if !ok {
		var err error
		f, err = tc.FS().Open(c.name)
		if err != nil {
			return readResult{fi: c.fi, cost: t.cost, failed: true, t0: t0, t1: tc.Clock().Now()}
		}
		handles[c.name] = f
	}
	res := readResult{fi: c.fi, cost: t.cost, opened: true, t0: t0}
	if _, err := f.ReadAt(c.buf, c.off); err != nil {
		res.failed = true
	} else {
		res.read = int64(len(c.buf))
	}
	res.t1 = tc.Clock().Now()
	return res
}

// workScan runs one directory-scan fallback file on the worker's own clock
// and filesystem view, so the profile's lookup costs charge to the worker
// and overlap across the pool.
func (e *readEngine) workScan(tc rt.TaskCtx, t *readTask) readResult {
	sc := t.scan
	t0 := tc.Clock().Now()
	ships, read, opened, failed := collectScanFile(tc.FS(), tc.Clock(), e.s.cfg.Profile, e.s.cfg.Metrics, sc.name, e.window, e.round)
	return readResult{fi: sc.fi, cost: t.cost, read: read, opened: opened, failed: failed, ships: ships,
		t0: t0, t1: tc.Clock().Now()}
}

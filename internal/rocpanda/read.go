package rocpanda

// The parallel restart read engine: the read-side twin of the background
// drain engine (drain.go), and the second client of internal/iosched. With
// Config.ParallelRead a restart round's file share — catalog-planned
// extent reads and directory-scan fallbacks alike — becomes a batch of
// ClassRead / ClassScan tasks executed by a scheduler pool (ctx.Spawn:
// real goroutines on the channel backend, simulation processes with their
// own clock and filesystem view on the virtual platforms) instead of one
// file at a time on the request loop.
//
// Division of labor: workers do disk I/O only — they fill preallocated run
// buffers with ReadAt chunks, or walk a scan-fallback file into ship-ready
// pane payloads — and report results as task completions. The server
// goroutine does everything else: CRC verification, inflate, pane
// assembly, and every network send (simulated endpoints charge the sending
// process, so shipping must stay on the server's own identity). Reads of
// file N+1 therefore overlap the verification and shipping of file N,
// which is the pipelining the engine exists for.
//
// Granularity: coalesced runs are split into readChunkBytes chunks, so
// even a single large snapshot file spreads across the whole pool. On the
// simulated NFS platforms each worker process has its own stream-read
// pacing, so the chunks of one file genuinely overlap — this, not
// file-level fan-out, is where the restart speedup comes from when a
// server's share is one big file.
//
// Ordering and dedupe compatibility: within one file, entries ship in plan
// order exactly as the serial path does; across files, completion order
// may differ from the serial listing order, but a pane is planned from
// exactly one file per server and clients dedupe on first arrival (the
// copies a failover may leave in two files are identical), so what a rank
// restores is bit-identical to the serial path. Tasks are unkeyed: the
// scheduler deals them round-robin by submission index, and disjoint
// chunks need no ordering.
//
// Backpressure: Config.ReadBudgetBytes becomes the scheduler budget under
// the RestartRead policy: a task that would overrun the budget is deferred
// until outstanding reads complete, but an idle pool always admits, so
// progress is guaranteed and a one-byte budget degenerates to serial
// reads. Because the budget is this instance's alone, a restart round is
// admitted immediately even while the same server's drain instance is
// still emptying a previous generation's queue.
//
// Failure: a worker never panics the process. Open/ReadAt errors and
// damaged payloads mark the file failed; the server skips it whole —
// nothing from a failed file ever ships, matching the serial path — and
// accounts the discarded bytes as wasted, not read. An injected MidRead
// crash fires on a worker as a fatal task result; the server then dies as
// one process, and the clients' stall detection takes over.

import (
	"genxio/internal/catalog"
	"genxio/internal/faults"
	"genxio/internal/iosched"
	"genxio/internal/rt"
	"genxio/internal/trace"
)

const (
	// maxReadWorkers caps Config.ReadWorkers.
	maxReadWorkers = 8
	// defaultReadWorkers is used when ParallelRead is on and ReadWorkers
	// is unset.
	defaultReadWorkers = 4
	// readChunkBytes splits coalesced runs into pool-sized chunks; see the
	// granularity note above.
	readChunkBytes = 512 << 10
)

// readItem is one file of a server's restart share, as the listing and the
// catalog classified it: a planned extent read, or a directory-scan
// fallback.
type readItem struct {
	name string
	scan bool
	plan catalog.FilePlan
	// cat, when set, is the catalog this plan came from — in chain rounds
	// each item carries its own generation's catalog, so a failed file's
	// pane retries consult the right link's copies.
	cat *catalog.Catalog
}

// readFile is the server-side state of one file in a parallel round.
type readFile struct {
	name   string
	scan   bool
	plan   catalog.FilePlan
	cat    *catalog.Catalog // per-item catalog (chain rounds); nil otherwise
	runs   []catalog.Run
	bufs   [][]byte // one buffer per run; chunk tasks fill disjoint windows
	left   int      // outstanding worker results for this file
	failed bool
	opened bool
	read   int64 // bytes successfully pulled from the file so far
}

// readResult is one task's outcome, carried as the completion's value (the
// control-queue handoff is also the happens-before edge covering the chunk
// buffer the worker filled).
type readResult struct {
	fi     int
	read   int64 // bytes actually pulled from the file
	opened bool
	failed bool
	ships  []paneShip // scan tasks only: ship-ready pane payloads
}

// readHandles is a read worker's private iosched.WorkerState: one cached
// open handle per file (several workers may hold handles on the same file;
// each reads disjoint chunks). Closed on every worker exit, crashed or
// not, exactly as the pre-scheduler pool did.
type readHandles struct{ m map[string]rt.File }

// Flush implements iosched.WorkerState (restart rounds never flush).
func (h *readHandles) Flush() error { return nil }

// Close implements iosched.WorkerState.
func (h *readHandles) Close() error {
	for _, f := range h.m {
		f.Close()
	}
	return nil
}

// readEngine adapts one restart round's share onto internal/iosched. It is
// created per round (restart rounds are rare and bounded, unlike the
// server-lifetime drain pool) and torn down before the round's done
// notifications go out. consume runs on the server goroutine.
type readEngine struct {
	s      *server
	eng    *iosched.Engine
	window string
	round  *readRound

	// Server-goroutine-only state.
	files   []*readFile
	tasks   []*iosched.Task
	cat     *catalog.Catalog // nil in scan-fallback rounds (no index of copies)
	bad     map[string]bool  // files that failed an open; retries skip them
	shipped bool             // something left this server already (overlap accounting)
}

// newReadEngine builds the round's file states and task list, then spawns
// the workers. Planned files get their run buffers allocated here, split
// into chunk tasks; scan files are one task each, budget-costed by file
// size.
func newReadEngine(s *server, window string, round *readRound, items []readItem, cat *catalog.Catalog, badFiles map[string]bool) *readEngine {
	nw := s.cfg.ReadWorkers
	if nw <= 0 {
		nw = defaultReadWorkers
	}
	if nw > maxReadWorkers {
		nw = maxReadWorkers
	}
	e := &readEngine{
		s:      s,
		window: window,
		round:  round,
		cat:    cat,
		bad:    badFiles,
	}
	for _, it := range items {
		fi := len(e.files)
		if it.scan {
			f := &readFile{name: it.name, scan: true, left: 1}
			e.files = append(e.files, f)
			cost, _ := s.ctx.FS().Stat(it.name) // unknown size costs zero
			e.tasks = append(e.tasks, e.scanTask(fi, it.name, cost))
			continue
		}
		f := &readFile{name: it.name, plan: it.plan, cat: it.cat, runs: catalog.Coalesce(it.plan.Entries, 0)}
		f.bufs = make([][]byte, len(f.runs))
		e.files = append(e.files, f)
		for ri, run := range f.runs {
			f.bufs[ri] = make([]byte, run.Length)
			for off := int64(0); off < run.Length; off += readChunkBytes {
				n := min(int64(readChunkBytes), run.Length-off)
				e.tasks = append(e.tasks, e.chunkTask(fi, it.name, run.Offset+off, f.bufs[ri][off:off+n]))
				f.left++
			}
		}
	}
	e.eng = iosched.New(s.ctx, iosched.Config{
		Name:       "panda-read",
		Workers:    nw,
		MaxWorkers: maxReadWorkers,
		Budget:     s.cfg.ReadBudgetBytes,
		// Queues are sized so no Put ever blocks: the scheduler deals
		// unkeyed tasks round-robin by index, and the control queue holds
		// one completion per task plus every exit. A crashed worker that
		// abandons its queue can then never wedge the server mid-Put.
		QueueCap: len(e.tasks)/nw + 2,
		CtlCap:   len(e.tasks) + nw + 4,
		Policy:   iosched.RestartRead{},
		NewState: func(wi int, tc rt.TaskCtx) iosched.WorkerState {
			return &readHandles{m: make(map[string]rt.File)}
		},
		CloseStateOnExit: true,
		Metrics:          s.cfg.Metrics,
		Trace:            s.cfg.Trace,
		TraceRank:        s.traceRank(),
		TracePhase:       trace.PhaseRead,
		// Read overlap is not barrier-relative: the adapter counts disk
		// time after the round's first ship (see consume) and reports it
		// with NoteOverlap.
		OverlapExternal: true,
		// Legacy rocpanda.read.* views of the scheduler's events.
		OnDepth: func(depth int, queued int64) {
			if depth > s.m.ReadQueuePeak {
				s.m.ReadQueuePeak = depth
			}
			s.mx.readQueueDepth.SetMax(float64(depth))
		},
		OnWait: func(iosched.Class) {
			s.m.ReadBackpressureWaits++
			s.mx.readBackpressure.Inc()
		},
	})
	return e
}

// chunkTask builds one contiguous disk read: fill buf from off.
func (e *readEngine) chunkTask(fi int, name string, off int64, buf []byte) *iosched.Task {
	return &iosched.Task{
		Class: iosched.ClassRead,
		Cost:  int64(len(buf)),
		Run: func(tc rt.TaskCtx, st iosched.WorkerState) iosched.Result {
			handles := st.(*readHandles).m
			res := readResult{fi: fi}
			f, ok := handles[name]
			if !ok {
				var err error
				f, err = tc.FS().Open(name)
				if err != nil {
					res.failed = true
					return e.finish(res)
				}
				handles[name] = f
			}
			res.opened = true
			if _, err := f.ReadAt(buf, off); err != nil {
				res.failed = true
			} else {
				res.read = int64(len(buf))
			}
			return e.finish(res)
		},
	}
}

// scanTask builds one whole-file directory-scan fallback, run on the
// worker's own clock and filesystem view so the profile's lookup costs
// charge to the worker and overlap across the pool.
func (e *readEngine) scanTask(fi int, name string, cost int64) *iosched.Task {
	return &iosched.Task{
		Class: iosched.ClassScan,
		Cost:  cost,
		Run: func(tc rt.TaskCtx, st iosched.WorkerState) iosched.Result {
			ships, read, opened, failed := collectScanFile(tc.FS(), tc.Clock(), e.s.cfg.Profile, e.s.cfg.Metrics, name, e.window, e.round)
			return e.finish(readResult{fi: fi, read: read, opened: opened, failed: failed, ships: ships})
		},
	}
}

// finish wraps a worker result, evaluating the injected MidRead crash
// after the work (and before the completion is reported, whose tallies and
// span still land — the server then dies with the worker, exactly as the
// serial path's maybeCrash would).
func (e *readEngine) finish(res readResult) iosched.Result {
	return iosched.Result{Value: res, Fatal: e.s.cfg.Crash.Hit(e.s.idx, faults.MidRead)}
}

// runReadPool executes one restart round's share through the scheduler.
// Runs on the server goroutine; returns only after every worker has
// exited. If a worker hit an injected crash the server process dies with
// it.
func (s *server) runReadPool(window string, round *readRound, items []readItem, cat *catalog.Catalog, badFiles map[string]bool) {
	e := newReadEngine(s, window, round, items, cat, badFiles)
	defer e.eng.Close()
	e.eng.RunBatch(e.tasks, e.consume)
	e.eng.Close()
	if e.eng.Crashed() {
		s.m.Crashed = true
		panic(serverCrashed{})
	}
}

// consume folds one task completion into the round: overlap accounting,
// file completion, and — for completed files — verification and shipping.
// Server goroutine only.
func (e *readEngine) consume(c iosched.Completion) {
	s := e.s
	r := c.Result.Value.(readResult)
	f := e.files[r.fi]
	if c.T1 > c.T0 && e.shipped {
		// Disk time spent after this round's first pane left the server:
		// reads of later files overlapped earlier files' sends — the
		// pipelining the engine exists for.
		dt := c.T1 - c.T0
		s.m.ReadOverlapSeconds += dt
		s.mx.readOverlap.Observe(dt)
		e.eng.NoteOverlap(c.Task.Class, dt)
	}
	if r.opened && !f.opened {
		f.opened = true
		s.m.FilesOpened++
		s.mx.filesOpened.Inc()
	}
	if r.failed {
		f.failed = true
	}
	f.read += r.read
	f.left--
	if f.scan {
		if r.failed {
			s.skipFile(f.read)
			return
		}
		s.noteRestartBytes(f.read)
		s.sendShips(r.ships)
		if len(r.ships) > 0 {
			e.shipped = true
		}
		return
	}
	if f.left > 0 {
		return
	}
	if f.failed {
		s.skipFile(f.read)
		e.retry(f)
		return
	}
	ships, crcFailed, ok := assembleShips(f.plan, f.runs, f.bufs, e.round)
	if crcFailed {
		s.mx.checksumFails.Inc()
	}
	if !ok {
		s.skipFile(f.read)
		e.retry(f)
		return
	}
	s.noteRestartBytes(f.read)
	s.sendShips(ships)
	if len(ships) > 0 {
		e.shipped = true
	}
}

// retry recovers a failed planned file's panes from their other copies on
// the server goroutine, while the workers keep reading the round's
// remaining files. Scan-fallback files carry no plan (their panes are
// unknown until read), and a round without a catalog has no index of
// copies — in both cases the listing itself already covers every replica,
// so there is nothing more to do here.
func (e *readEngine) retry(f *readFile) {
	if f.scan {
		return
	}
	cat := f.cat
	if cat == nil {
		cat = e.cat
	}
	if cat == nil {
		return
	}
	e.bad[f.name] = true
	if e.s.recoverPanes(cat, e.window, e.round, f.plan, e.bad) > 0 {
		e.shipped = true
	}
}

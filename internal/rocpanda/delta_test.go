package rocpanda

// End-to-end tests of incremental delta snapshots (Config.DeltaSnapshots):
// dirty-pane shipping, chained generation commits, chain-aware M×N restart,
// write savings vs full snapshots, empty deltas, torn-commit fallback, and
// replica repair of a corrupted chain base.

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"genxio/internal/hdf"
	"genxio/internal/metrics"
	"genxio/internal/mpi"
	"genxio/internal/roccom"
	"genxio/internal/rt"
	"genxio/internal/snapshot"
)

// mutateDelta advances one pane per client to generation g's state: the
// pane whose index within its client equals g (mod the pane count) gets
// fresh values and a dirty mark; everything else is untouched.
func mutateDelta(w *roccom.Window, g, nblocks int) {
	w.EachPane(func(p *roccom.Pane) {
		if (p.ID-1)%1000 != g%nblocks {
			return
		}
		pr, _ := p.Array("pressure")
		for i := range pr.F64 {
			pr.F64[i] = float64(p.ID) + float64(g)*100 + float64(i)*0.01
		}
		fl, _ := p.Array("flags")
		fl.I32[0] = int32(p.ID + g)
		w.MarkDirty(p.ID)
	})
}

// expectedDeltaPanes replays the writer decomposition and the mutation
// schedule locally and captures every pane's final payload.
func expectedDeltaPanes(t *testing.T, nWriters, nblocks int, gens []int) map[int]paneData {
	t.Helper()
	want := make(map[int]paneData)
	for r := 0; r < nWriters; r++ {
		w := buildWindow(t, r, nblocks)
		for _, g := range gens {
			mutateDelta(w, g, nblocks)
		}
		w.EachPane(func(p *roccom.Pane) {
			pr, _ := p.Array("pressure")
			fl, _ := p.Array("flags")
			want[p.ID] = paneData{
				coords:   append([]float64(nil), p.Block.Coords...),
				pressure: append([]float64(nil), pr.F64...),
				flags:    fl.I32[0],
			}
		})
	}
	return want
}

// writeDeltaChain runs nGens generations under cfg-tuned Rocpanda: the
// first full, the rest deltas per the client's cadence, with mutateDelta
// advancing the window between generations. Bases are prefix+s00000g.
func writeDeltaChain(t *testing.T, fs rt.FS, prefix string, nClients, nServers, nblocks, nGens int, tune func(*Config)) {
	t.Helper()
	world := mpi.NewChanWorld(fs, 1)
	err := world.Run(nClients+nServers, func(ctx mpi.Ctx) error {
		cfg := Config{
			NumServers:      nServers,
			Profile:         hdf.NullProfile(),
			ActiveBuffering: true,
			DeltaSnapshots:  true,
		}
		if tune != nil {
			tune(&cfg)
		}
		cl, err := Init(ctx, cfg)
		if err != nil {
			return err
		}
		if cl == nil {
			return nil
		}
		w := buildWindow(t, cl.Comm().Rank(), nblocks)
		for g := 0; g < nGens; g++ {
			if g > 0 {
				mutateDelta(w, g, nblocks)
			}
			base := fmt.Sprintf("%ss%06d", prefix, g)
			if err := cl.WriteAttribute(base, w, "all", float64(g), g*10); err != nil {
				return err
			}
			if err := cl.Sync(); err != nil {
				return err
			}
		}
		return cl.Shutdown()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestDeltaChainMxNRestartBitExact is the tentpole acceptance: a depth-3
// delta chain (full + 3 deltas, each rewriting one pane per client while
// pane 0 is never touched again) restarts bit-exact on a different
// client/server topology, on both the serial and parallel read paths.
func TestDeltaChainMxNRestartBitExact(t *testing.T) {
	const nblocks = 4
	want := expectedDeltaPanes(t, 4, nblocks, []int{1, 2, 3})
	for _, parallel := range []bool{false, true} {
		t.Run(fmt.Sprintf("parallel=%v", parallel), func(t *testing.T) {
			fs := rt.NewMemFS()
			writeDeltaChain(t, fs, "dl/", 4, 1, nblocks, 4, nil)

			// The head must be a depth-3 delta, its ancestors depths 2, 1, 0.
			for g, depth := range []int{0, 1, 2, 3} {
				m, err := snapshot.Load(fs, fmt.Sprintf("dl/s%06d", g))
				if err != nil {
					t.Fatal(err)
				}
				if m.ChainDepth != depth {
					t.Fatalf("generation %d chain depth %d, want %d", g, m.ChainDepth, depth)
				}
			}

			reg := metrics.New()
			got := restartTopologyCfg(t, fs, "dl/s000003", 6, 2, reg, func(cfg *Config) {
				cfg.ParallelRead = parallel
			})
			checkMxN(t, want, got)
			if d := reg.Snapshot().Gauges["rocpanda.restart.chain_depth"]; d != 3 {
				t.Fatalf("chain depth gauge %v, want 3", d)
			}
		})
	}
}

// TestDeltaWriteSavings: with one of four panes dirty per delta generation,
// the delta run's server bytes written must come in at least 40% under the
// full run's across four generations — the ISSUE acceptance threshold.
func TestDeltaWriteSavings(t *testing.T) {
	run := func(delta bool) (int64, *metrics.Registry) {
		fs := rt.NewMemFS()
		reg := metrics.New()
		world := mpi.NewChanWorld(fs, 1)
		err := world.Run(5, func(ctx mpi.Ctx) error {
			cl, err := Init(ctx, Config{
				NumServers:      1,
				Profile:         hdf.NullProfile(),
				ActiveBuffering: true,
				DeltaSnapshots:  delta,
				FullEvery:       4,
				Metrics:         reg,
			})
			if err != nil {
				return err
			}
			if cl == nil {
				return nil
			}
			w := buildWindow(t, cl.Comm().Rank(), 4)
			for g := 0; g < 4; g++ {
				if g > 0 {
					mutateDelta(w, g, 4)
				}
				if err := cl.WriteAttribute(fmt.Sprintf("sv/s%06d", g), w, "all", float64(g), g); err != nil {
					return err
				}
				if err := cl.Sync(); err != nil {
					return err
				}
			}
			return cl.Shutdown()
		})
		if err != nil {
			t.Fatal(err)
		}
		return reg.Snapshot().Counters["rocpanda.server.bytes_written"], reg
	}

	fullBytes, _ := run(false)
	deltaBytes, reg := run(true)
	if fullBytes == 0 || deltaBytes == 0 {
		t.Fatalf("bytes_written full=%d delta=%d", fullBytes, deltaBytes)
	}
	saved := 1 - float64(deltaBytes)/float64(fullBytes)
	if saved < 0.40 {
		t.Fatalf("delta run saved only %.0f%% of bytes written (full %d, delta %d), want >= 40%%",
			saved*100, fullBytes, deltaBytes)
	}
	s := reg.Snapshot()
	// 4 clients × 4 panes: the full generation ships 16, each of the 3
	// deltas ships 4 dirty and skips 12 clean.
	if d, c := s.Counters["rocpanda.write.dirty_panes"], s.Counters["rocpanda.write.clean_panes"]; d != 28 || c != 36 {
		t.Fatalf("dirty=%d clean=%d, want 28 and 36", d, c)
	}
	if s.Counters["rocpanda.write.delta_bytes_saved"] == 0 {
		t.Fatal("delta_bytes_saved counter never moved")
	}
}

// TestDeltaEmptyGeneration: a generation in which no pane was dirtied
// commits as a file-less delta that restores the chain's full state.
func TestDeltaEmptyGeneration(t *testing.T) {
	fs := rt.NewMemFS()
	world := mpi.NewChanWorld(fs, 1)
	err := world.Run(3, func(ctx mpi.Ctx) error {
		cl, err := Init(ctx, Config{
			NumServers: 1, Profile: hdf.NullProfile(),
			ActiveBuffering: true, DeltaSnapshots: true,
		})
		if err != nil {
			return err
		}
		if cl == nil {
			return nil
		}
		w := buildWindow(t, cl.Comm().Rank(), 2)
		// Full, then a generation with nothing dirty.
		for _, base := range []string{"de/s000000", "de/s000001"} {
			if err := cl.WriteAttribute(base, w, "all", 0, 0); err != nil {
				return err
			}
			if err := cl.Sync(); err != nil {
				return err
			}
		}
		return cl.Shutdown()
	})
	if err != nil {
		t.Fatal(err)
	}
	// The empty delta committed with no snapshot files of its own.
	names, err := fs.List("de/s000001")
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		if strings.HasSuffix(n, ".rhdf") {
			t.Fatalf("empty delta wrote snapshot file %s", n)
		}
	}
	// Restarting from it serves every pane from the base, bit-exact.
	got := restartTopology(t, fs, "de/s000001", 3, 1, nil)
	checkMxN(t, expectedDeltaPanes(t, 2, 2, nil), got)
}

// TestDeltaTornHeadFallsBackToCommittedChain: a delta whose manifest never
// landed (crash between data drain and commit) is invisible to the restore
// walk — restart lands on the last committed chain link.
func TestDeltaTornHeadFallsBackToCommittedChain(t *testing.T) {
	fs := rt.NewMemFS()
	writeDeltaChain(t, fs, "dt/", 4, 1, 2, 3, nil)
	// Tear the head: generation 2's data files exist, the manifest does not.
	if err := fs.Remove("dt/s000002" + snapshot.Suffix); err != nil {
		t.Fatal(err)
	}

	want := expectedDeltaPanes(t, 4, 2, []int{1})
	var mu sync.Mutex
	bases := map[int]string{}
	got := make(map[int]paneData)
	world := mpi.NewChanWorld(fs, 1)
	err := world.Run(5, func(ctx mpi.Ctx) error {
		cl, err := Init(ctx, Config{
			NumServers: 1, Profile: hdf.NullProfile(), ActiveBuffering: true,
		})
		if err != nil {
			return err
		}
		if cl == nil {
			return nil
		}
		rw := zeroWindow(t, cl.Comm().Rank(), 2)
		base, err := cl.RestoreLatest("dt/", func(base string) error {
			return cl.ReadAttribute(base, rw, "all")
		})
		if err != nil {
			return err
		}
		mu.Lock()
		bases[cl.Comm().Rank()] = base
		rw.EachPane(func(p *roccom.Pane) {
			pr, _ := p.Array("pressure")
			fl, _ := p.Array("flags")
			got[p.ID] = paneData{
				coords:   append([]float64(nil), p.Block.Coords...),
				pressure: append([]float64(nil), pr.F64...),
				flags:    fl.I32[0],
			}
		})
		mu.Unlock()
		return cl.Shutdown()
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, b := range bases {
		if b != "dt/s000001" {
			t.Fatalf("client %d restored %q, want the last committed delta dt/s000001", r, b)
		}
	}
	checkMxN(t, want, got)
}

// TestDeltaCorruptBaseServedFromReplica: with R=2, flipping a bit in the
// chain base's primary file must not cost the chain — the base's panes are
// served from the replica copy, bit-exact, on both read paths.
func TestDeltaCorruptBaseServedFromReplica(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		t.Run(fmt.Sprintf("parallel=%v", parallel), func(t *testing.T) {
			fs := rt.NewMemFS()
			writeDeltaChain(t, fs, "db/", 4, 1, 2, 2, func(cfg *Config) {
				cfg.ReplicationFactor = 2
			})
			if err := damagePrimary(fs, "db/s000000", "db/s000000_s000.rhdf", "flipbit"); err != nil {
				t.Fatal(err)
			}
			reg := metrics.New()
			got := restartTopologyCfg(t, fs, "db/s000001", 3, 1, reg, func(cfg *Config) {
				cfg.ParallelRead = parallel
			})
			checkMxN(t, expectedDeltaPanes(t, 4, 2, []int{1}), got)
			s := reg.Snapshot()
			if s.Counters["rocpanda.restart.replica_reads"] == 0 {
				t.Fatal("corrupt base restored without touching replicas")
			}
		})
	}
}

// Package rocpanda implements the paper's client-server collective I/O
// library (a special edition of the Panda parallel I/O library adapted to
// GENx): some processors are dedicated as I/O servers, and the compute
// clients ship whole data blocks — irregular, per-client collections of
// datasets — to their server instead of defining any global data
// distribution. The design follows Section 4.1 and Figure 2:
//
//   - Initialization splits MPI_COMM_WORLD into a client communicator
//     (returned to the application, which uses it for everything) and the
//     server ranks, which enter the server routine and never return to the
//     application. Servers are placed on distinct SMP nodes by spreading
//     them across the global rank space (ranks 0, T/m, 2T/m, ...).
//
//   - Collective write: every client sends a header plus its data blocks
//     to its assigned server; with active buffering (Section 6.1) the
//     server only buffers them (memory-speed) and acknowledges, so the
//     client-visible cost is the transfer, not the file I/O. Servers
//     drain buffers to scientific-format files while clients compute,
//     checking for new requests between block writes (non-blocking probe)
//     and blocking in probe when idle — leaving their CPU to the OS.
//     If the buffer capacity is exceeded the server drains synchronously
//     to make room, which delays the acknowledgement (graceful overflow).
//
//   - Collective read (restart): every client sends its wanted block list
//     to every server; snapshot files are assigned to servers round-robin;
//     each server scans its files, finds requested blocks, and ships them
//     to the owning clients — so a run may restart with a different
//     number of servers than wrote the files.
package rocpanda

import (
	"fmt"

	"genxio/internal/delta"
	"genxio/internal/faults"
	"genxio/internal/hdf"
	"genxio/internal/metrics"
	"genxio/internal/mpi"
	"genxio/internal/trace"
)

// Placement controls where the dedicated servers sit in the global rank
// space.
type Placement int

// Placements.
const (
	// Spread places servers at global ranks 0, T/m, 2T/m, ... so each
	// lands on a different SMP node (the paper's choice).
	Spread Placement = iota
	// Packed places servers on the last m global ranks (an ablation:
	// servers share nodes, clients saturate the rest).
	Packed
)

// Config configures Rocpanda initialization. Exactly one of NumServers or
// ClientServerRatio must be positive.
type Config struct {
	// NumServers is the number of dedicated I/O server processes.
	NumServers int
	// ClientServerRatio derives the server count as
	// total/(ratio+1), at least 1 (the paper typically uses >= 8:1).
	ClientServerRatio int
	// Placement selects server placement (default Spread).
	Placement Placement
	// Profile is the scientific-library cost model for server-side file
	// access (HDF4 in the paper).
	Profile hdf.CostProfile
	// ActiveBuffering enables the paper's overlap scheme. When false the
	// server writes each block to disk before acknowledging
	// (write-through; the ablation baseline).
	ActiveBuffering bool
	// BufferCapacity bounds the server-side buffer in bytes; 0 means
	// unlimited. Overflow triggers synchronous partial drains.
	// Synchronous mode only; with AsyncDrain use BufferBudgetBytes.
	BufferCapacity int64
	// AsyncDrain moves the drain off the server's request loop onto a
	// background writer pool (internal/rocpanda/drain.go): blocks go to
	// disk while the loop keeps absorbing client writes, which is the
	// paper's overlap realized inside one server process. Requires
	// ActiveBuffering; output files are byte-identical to the synchronous
	// drain.
	AsyncDrain bool
	// DrainWriters sizes the background writer pool (AsyncDrain only).
	// Blocks route to writers by destination file, so extra writers help
	// only when snapshot generations overlap. Clamped to [1, 8]; default 1.
	DrainWriters int
	// BufferBudgetBytes bounds the bytes queued to the writer pool
	// (AsyncDrain only). An enqueue that overruns the budget stalls the
	// request loop — delaying that client's ack — until the writers catch
	// up; 0 means unbounded. A budget of one block degenerates to
	// write-through timing.
	BufferBudgetBytes int64
	// ParallelRead moves restart reads off the server's request loop onto
	// a pool of read workers (internal/rocpanda/read.go): catalog-planned
	// extents and directory-scan fallbacks are read concurrently, with
	// disk reads of one file pipelined against the network shipping of
	// another. Restored panes are bit-identical to the serial path's
	// (clients dedupe on first arrival, and all shipping stays on the
	// server's request loop in plan order).
	ParallelRead bool
	// ReadWorkers sizes the read-worker pool (ParallelRead only). Clamped
	// to [1, 8]; default 4.
	ReadWorkers int
	// ReadBudgetBytes bounds the read bytes in flight to the worker pool
	// (ParallelRead only), so a restart cannot balloon server memory: a
	// task that would overrun the budget waits for outstanding reads to
	// complete first. 0 means unbounded; a one-byte budget degenerates to
	// serial reads.
	ReadBudgetBytes int64
	// ReplicationFactor is the number of copies of each pane block the
	// servers keep per generation. With R >= 2 every server writes its
	// blocks to its primary file and to R-1 byte-identical replica files
	// homed at the other servers' file sets (base_sHHHrN.rhdf), routed
	// through the same sink or writer pool as the primaries. At restart a
	// failed open, read, or CRC on any planned copy retries the affected
	// panes against the remaining copies (rocpanda.restart.replica_reads,
	// .repaired_panes), so a generation falls back only when some pane is
	// bad in every copy. <= 1 writes primaries only, byte-identical to
	// the unreplicated layout.
	ReplicationFactor int
	// MemcpyBW is the server's buffer-copy bandwidth (bytes/s) charged
	// per buffered block on simulated platforms; <= 0 charges nothing.
	MemcpyBW float64
	// PerBlockOverhead is the client-side protocol cost charged per data
	// block shipped (packing, handshake bookkeeping); <= 0 charges
	// nothing. On simulated platforms this models the per-message cost
	// of the era's MPI stacks, which dominates a single sender's
	// throughput and underlies Figure 3(a)'s ramp from 1 to 15
	// processors per node.
	PerBlockOverhead float64
	// Compress stores snapshot datasets deflate-compressed on the
	// servers.
	Compress bool
	// DeltaSnapshots enables incremental snapshot generations
	// (internal/delta): a collective write ships only the panes whose data
	// changed since they were last shipped — tracked through per-pane
	// dirty epochs, see roccom.Window.MarkDirty — and the generation
	// commits as a delta chained to the previous one (the manifest records
	// BaseGeneration, ChainDepth, and the global pane universe). Restart
	// resolves each pane to the newest chain link holding it through the
	// links' block catalogs; a broken link fails the head generation and
	// restore falls back past the whole chain.
	DeltaSnapshots bool
	// FullEvery makes every Nth generation of a run a full snapshot (all
	// panes shipped, chain depth reset), bounding chain length and the
	// blast radius of a lost base. The first generation of a run is always
	// full; <= 0 chains every later generation to it. Delta mode only.
	FullEvery int
	// RetainGenerations, when positive, prunes all but the newest N
	// snapshot generations (files and manifests) after each commit. Zero
	// keeps everything.
	RetainGenerations int
	// OnServerDone, if set, receives each server's metrics when it shuts
	// down (called on the server's goroutine/process). It is also called
	// when the server dies to an injected crash, with Crashed set.
	OnServerDone func(ServerMetrics)
	// Metrics, if set, receives rocpanda.client.* and rocpanda.server.*
	// counters, gauges and latency histograms from every rank sharing the
	// registry. A nil registry disables all recording at no cost.
	Metrics *metrics.Registry
	// Trace, if set, receives background-drain phase spans from the writer
	// pool (servers record on timeline rows after the client ranks). A nil
	// recorder disables recording at no cost.
	Trace *trace.Recorder

	// Fault tolerance (internal/faults).

	// Crash, if set, kills the matching server at the configured point of
	// its service loop — deterministic fault injection for exercising the
	// failover and restart paths.
	Crash *faults.CrashPlan
	// RetryTimeout, when positive, bounds every client-side wait for a
	// server response (seconds). A timed-out wait declares that server
	// dead and fails the client over to a surviving server, per the
	// coordinator's deterministic reassignment. Zero disables timeouts:
	// a dead server then hangs its clients, as plain MPI would.
	RetryTimeout float64
	// RetryPoll is the initial poll interval of a timed wait (seconds),
	// doubling up to RetryTimeout/8; default 0.2ms.
	RetryPoll float64
	// MaxFailovers bounds how many times a single operation may fail
	// over before giving up; default: the number of servers.
	MaxFailovers int
}

// serverRanks returns the global ranks acting as servers.
func serverRanks(total, m int, placement Placement) []int {
	ranks := make([]int, m)
	switch placement {
	case Packed:
		for i := range ranks {
			ranks[i] = total - m + i
		}
	default:
		for i := range ranks {
			ranks[i] = i * total / m
		}
	}
	return ranks
}

// Init performs Rocpanda initialization; every rank of the world must call
// it. On client ranks it returns a Client whose Comm is the new client
// communicator. On server ranks it runs the server routine until shutdown
// and then returns (nil, nil) — the rank's main function should simply
// return. With fewer than 2 ranks, or m >= total, Init fails.
func Init(ctx mpi.Ctx, cfg Config) (*Client, error) {
	world := ctx.Comm()
	total := world.Size()
	m := cfg.NumServers
	if m <= 0 && cfg.ClientServerRatio > 0 {
		m = total / (cfg.ClientServerRatio + 1)
		if m < 1 {
			m = 1
		}
	}
	if m < 1 || m > total-m {
		return nil, fmt.Errorf("rocpanda: %d servers with world size %d (need at least as many clients as servers)", m, total)
	}

	srvRanks := serverRanks(total, m, cfg.Placement)
	isServer := false
	myServerIdx := -1
	for i, r := range srvRanks {
		if r == world.Rank() {
			isServer = true
			myServerIdx = i
		}
	}
	var clientRanks []int
	srvSet := make(map[int]bool, m)
	for _, r := range srvRanks {
		srvSet[r] = true
	}
	for r := 0; r < total; r++ {
		if !srvSet[r] {
			clientRanks = append(clientRanks, r)
		}
	}
	n := len(clientRanks)

	// Split the world as the paper describes; the client communicator is
	// what the application computes with from now on.
	color := 0
	if isServer {
		color = 1
	}
	sub := world.Split(color, world.Rank())

	// Client j (in client-communicator order) is served by server
	// j*m/n: contiguous, equal-sized groups.
	assign := func(j int) int { return j * m / n }

	if isServer {
		groups := make(map[int][]int) // server idx -> world ranks of its clients
		for j, wr := range clientRanks {
			groups[assign(j)] = append(groups[assign(j)], wr)
		}
		s := &server{
			ctx:        ctx,
			world:      world,
			idx:        myServerIdx,
			numServers: m,
			myClients:  groups[myServerIdx],
			allClients: clientRanks,
			cfg:        cfg,
			mx:         newSrvMx(cfg.Metrics),
		}
		s.run()
		if cfg.OnServerDone != nil {
			cfg.OnServerDone(s.m)
		}
		return nil, nil
	}

	myIdx := -1
	for j, wr := range clientRanks {
		if wr == world.Rank() {
			myIdx = j
		}
	}
	poll := cfg.RetryPoll
	if poll <= 0 {
		poll = 2e-4
	}
	maxFail := cfg.MaxFailovers
	if maxFail <= 0 {
		maxFail = m
	}
	origServer := srvRanks[assign(myIdx)]
	cl := &Client{
		ctx:        ctx,
		world:      world,
		comm:       sub,
		myServer:   origServer,
		srvRanks:   srvRanks,
		numServers: m,
		blockOH:    cfg.PerBlockOverhead,
		retain:     cfg.RetainGenerations,
		registry:   cfg.Metrics,
		nClients:   n,
		myIdx:      myIdx,
		timeout:    cfg.RetryTimeout,
		poll:       poll,
		maxFail:    maxFail,
		dead:       make(map[int]bool),
		contacted:  []int{origServer},
		pendingSet: make(map[string]*pendingGen),
		deltaOn:    cfg.DeltaSnapshots,
		fullEvery:  cfg.FullEvery,
		mx:         newClMx(cfg.Metrics),
	}
	if cfg.DeltaSnapshots {
		cl.tracker = delta.NewTracker()
	}
	return cl, nil
}

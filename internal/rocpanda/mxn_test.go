package rocpanda

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"genxio/internal/hdf"
	"genxio/internal/metrics"
	"genxio/internal/mpi"
	"genxio/internal/roccom"
	"genxio/internal/rt"
)

// paneData is one pane's full payload as the writer produced it: the mesh
// coordinates plus both window attributes. M×N restart must reproduce it
// bit-exact on whichever rank the repartitioner lands the pane.
type paneData struct {
	coords   []float64
	pressure []float64
	flags    int32
}

// expectedPanes re-runs the original writer decomposition and captures
// every pane's payload, keyed by pane ID.
func expectedPanes(t *testing.T, nWriters, nblocks int) map[int]paneData {
	t.Helper()
	want := make(map[int]paneData)
	for r := 0; r < nWriters; r++ {
		w := buildWindow(t, r, nblocks)
		w.EachPane(func(p *roccom.Pane) {
			pr, _ := p.Array("pressure")
			fl, _ := p.Array("flags")
			want[p.ID] = paneData{
				coords:   append([]float64(nil), p.Block.Coords...),
				pressure: append([]float64(nil), pr.F64...),
				flags:    fl.I32[0],
			}
		})
	}
	return want
}

// writeSnapshot runs a full write+commit with nClients clients and
// nServers servers on a fresh world over fs.
func writeSnapshot(t *testing.T, fs rt.FS, file string, nClients, nServers, nblocks int) {
	t.Helper()
	world := mpi.NewChanWorld(fs, 1)
	err := world.Run(nClients+nServers, func(ctx mpi.Ctx) error {
		cl, err := Init(ctx, Config{NumServers: nServers, Profile: hdf.NullProfile(), ActiveBuffering: true})
		if err != nil {
			return err
		}
		if cl == nil {
			return nil
		}
		w := buildWindow(t, cl.Comm().Rank(), nblocks)
		if err := cl.WriteAttribute(file, w, "all", 0, 0); err != nil {
			return err
		}
		if err := cl.Sync(); err != nil { // commits manifest + catalog
			return err
		}
		return cl.Shutdown()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// restartTopology restarts the snapshot on a world with a different
// client/server split: each client asks PanesForRestart for its share of
// the pane universe and recovers panes it may never have written. Returns
// the union of recovered payloads, failing on overlap between ranks. reg
// may be nil; fallback tests pass one to assert on restart counters.
func restartTopology(t *testing.T, fs rt.FS, file string, nClients, nServers int, reg *metrics.Registry) map[int]paneData {
	t.Helper()
	return restartTopologyCfg(t, fs, file, nClients, nServers, reg, nil)
}

// restartTopologyCfg is restartTopology with a config hook: tune (may be
// nil) edits the restart world's Config before Init — how the parallel
// read engine's tests turn it on without forking the whole harness.
func restartTopologyCfg(t *testing.T, fs rt.FS, file string, nClients, nServers int, reg *metrics.Registry, tune func(*Config)) map[int]paneData {
	t.Helper()
	got := make(map[int]paneData)
	var mu sync.Mutex
	world := mpi.NewChanWorld(fs, 1)
	err := world.Run(nClients+nServers, func(ctx mpi.Ctx) error {
		cfg := Config{
			NumServers: nServers, Profile: hdf.NullProfile(),
			ActiveBuffering: true, Metrics: reg,
		}
		if tune != nil {
			tune(&cfg)
		}
		cl, err := Init(ctx, cfg)
		if err != nil {
			return err
		}
		if cl == nil {
			return nil
		}
		rc := roccom.New()
		w, err := rc.NewWindow("fluid")
		if err != nil {
			return err
		}
		w.NewAttribute(roccom.AttrSpec{Name: "pressure", Loc: roccom.NodeLoc, Type: hdf.F64, NComp: 1})
		w.NewAttribute(roccom.AttrSpec{Name: "flags", Loc: roccom.PaneLoc, Type: hdf.I32, NComp: 1})
		mine, err := cl.PanesForRestart(file, "fluid")
		if err != nil {
			return err
		}
		// Collective even for ranks with an empty share (grow runs have
		// more clients than panes).
		readErr := cl.ReadPanes(file, w, "all", mine)
		if readErr == nil && len(w.PaneIDs()) != len(mine) {
			readErr = fmt.Errorf("client %d restored %d panes, claimed %d",
				cl.Comm().Rank(), len(w.PaneIDs()), len(mine))
		}
		if readErr == nil {
			var dup error
			mu.Lock()
			w.EachPane(func(p *roccom.Pane) {
				if _, seen := got[p.ID]; seen {
					dup = fmt.Errorf("pane %d restored by two clients", p.ID)
				}
				pr, _ := p.Array("pressure")
				fl, _ := p.Array("flags")
				got[p.ID] = paneData{
					coords:   append([]float64(nil), p.Block.Coords...),
					pressure: append([]float64(nil), pr.F64...),
					flags:    fl.I32[0],
				}
			})
			mu.Unlock()
			readErr = dup
		}
		// Complete the shutdown collective even on failure so the world
		// drains instead of deadlocking, then report.
		if err := cl.Shutdown(); err != nil {
			return err
		}
		return readErr
	})
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func checkMxN(t *testing.T, want, got map[int]paneData) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("restored %d panes, want %d", len(got), len(want))
	}
	for id, w := range want {
		g, ok := got[id]
		if !ok {
			t.Fatalf("pane %d missing from restart", id)
		}
		if !reflect.DeepEqual(g, w) {
			t.Fatalf("pane %d payload differs after M×N restart", id)
		}
	}
}

// TestMxNRestartShrink writes with 8 clients / 2 servers and restarts
// with 3 clients / 1 server: every pane must land on exactly one of the
// new clients, bit-exact, via the catalog repartitioner.
func TestMxNRestartShrink(t *testing.T) {
	fs := rt.NewMemFS()
	writeSnapshot(t, fs, "mxn/shrink", 8, 2, 2)
	got := restartTopology(t, fs, "mxn/shrink", 3, 1, nil)
	checkMxN(t, expectedPanes(t, 8, 2), got)
}

// TestMxNRestartGrow writes with 3 clients / 1 server and restarts with
// 8 clients / 2 servers — more readers than panes, so some clients issue
// empty (but still collective) read requests.
func TestMxNRestartGrow(t *testing.T) {
	fs := rt.NewMemFS()
	writeSnapshot(t, fs, "mxn/grow", 3, 1, 2)
	got := restartTopology(t, fs, "mxn/grow", 8, 2, nil)
	checkMxN(t, expectedPanes(t, 3, 2), got)
}

package rocpanda

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"genxio/internal/hdf"
	"genxio/internal/metrics"
	"genxio/internal/mpi"
	"genxio/internal/rt"
)

// TestDebugWritesToggleRace toggles the debug switch while a write
// workload runs on the real (goroutine) backend. Under -race this fails
// if debugWrites is a plain bool shared between the test goroutine and
// the client/server goroutines.
func TestDebugWritesToggleRace(t *testing.T) {
	defer DebugWrites(false)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			DebugWrites(i%2 == 1)
		}
		DebugWrites(false)
	}()
	fs := rt.NewMemFS()
	world := mpi.NewChanWorld(fs, 1)
	err := world.Run(5, func(ctx mpi.Ctx) error {
		cl, err := Init(ctx, Config{NumServers: 1, Profile: hdf.NullProfile(), ActiveBuffering: true})
		if err != nil {
			return err
		}
		if cl == nil {
			return nil
		}
		w := buildWindow(t, cl.Comm().Rank(), 2)
		for snap := 0; snap < 4; snap++ {
			if err := cl.WriteAttribute(fmt.Sprintf("dbg/s%d", snap), w, "all", 0, snap); err != nil {
				return err
			}
		}
		if err := cl.Sync(); err != nil {
			return err
		}
		return cl.Shutdown()
	})
	if err != nil {
		t.Fatal(err)
	}
	<-done
}

// TestResentReadRequestDoesNotStartEarlyScan reproduces the failover
// scenario where a client resends its restart request (its timeout fired
// while the server was slow, not dead), so the server sees the same
// request twice. Counting the duplicate as a new requester starts the
// scan before every client has asked: the late client's panes are
// missing from the round and its restart comes back incomplete.
func TestResentReadRequestDoesNotStartEarlyScan(t *testing.T) {
	fs := rt.NewMemFS()
	const nClients = 3

	// Write a snapshot: 3 clients x 2 panes on one server.
	world := mpi.NewChanWorld(fs, 1)
	err := world.Run(nClients+1, func(ctx mpi.Ctx) error {
		cl, err := Init(ctx, Config{NumServers: 1, Profile: hdf.NullProfile(), ActiveBuffering: true})
		if err != nil {
			return err
		}
		if cl == nil {
			return nil
		}
		w := buildWindow(t, cl.Comm().Rank(), 2)
		if err := cl.WriteAttribute("resend/s", w, "all", 0, 0); err != nil {
			return err
		}
		return cl.Shutdown()
	})
	if err != nil {
		t.Fatal(err)
	}

	// Restart, with client 0 injecting a duplicate of its own request
	// before any client issues the real one.
	var srvDone []ServerMetrics
	var mu sync.Mutex
	world = mpi.NewChanWorld(fs, 1)
	err = world.Run(nClients+1, func(ctx mpi.Ctx) error {
		cl, err := Init(ctx, Config{
			NumServers: 1, Profile: hdf.NullProfile(), ActiveBuffering: true,
			OnServerDone: func(m ServerMetrics) {
				mu.Lock()
				srvDone = append(srvDone, m)
				mu.Unlock()
			},
		})
		if err != nil {
			return err
		}
		if cl == nil {
			return nil
		}
		w := zeroWindow(t, cl.Comm().Rank(), 2)
		if cl.Comm().Rank() == 0 {
			// The exact bytes ReadAttribute is about to send.
			ids := w.PaneIDs()
			req := readReq{File: "resend/s", Window: w.Name, Attr: "all",
				PaneIDs: make([]int32, len(ids)), Alive: []int32{0}}
			for i, id := range ids {
				req.PaneIDs[i] = int32(id)
			}
			cl.world.Send(cl.srvRanks[0], tagReadReq, encodeReadReq(req))
		}
		// Make sure the duplicate is in flight before anyone reads.
		cl.Comm().Barrier()
		readErr := cl.ReadAttribute("resend/s", w, "all")
		if readErr == nil {
			readErr = checkWindow(cl.Comm().Rank(), w)
		}
		// Shut down even on failure so the collective completes and the
		// test reports the error instead of deadlocking.
		if err := cl.Shutdown(); err != nil {
			return err
		}
		if readErr != nil {
			return fmt.Errorf("client %d: %w", cl.Comm().Rank(), readErr)
		}
		return nil
	})
	if err != nil {
		if errors.Is(err, ErrIncompleteRestart) {
			t.Fatalf("duplicate request started a partial scan: %v", err)
		}
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(srvDone) != 1 {
		t.Fatalf("server metrics %v", srvDone)
	}
	// One full scan: every pane shipped exactly once.
	if got, want := srvDone[0].ReadsServed, nClients*2; got != want {
		t.Fatalf("ReadsServed = %d, want %d (one complete scan)", got, want)
	}
}

// TestConfigMetricsPopulated checks the registry threading end to end: a
// write/sync/read run with Config.Metrics set must leave client, server
// and hdf series in the snapshot.
func TestConfigMetricsPopulated(t *testing.T) {
	reg := metrics.New()
	fs := rt.NewMemFS()
	world := mpi.NewChanWorld(fs, 1)
	err := world.Run(4, func(ctx mpi.Ctx) error {
		cl, err := Init(ctx, Config{
			NumServers: 1, Profile: hdf.NullProfile(),
			ActiveBuffering: true, Metrics: reg,
		})
		if err != nil {
			return err
		}
		if cl == nil {
			return nil
		}
		w := buildWindow(t, cl.Comm().Rank(), 2)
		if err := cl.WriteAttribute("mx/s", w, "all", 0, 0); err != nil {
			return err
		}
		if err := cl.Sync(); err != nil {
			return err
		}
		z := zeroWindow(t, cl.Comm().Rank(), 2)
		if err := cl.ReadAttribute("mx/s", z, "all"); err != nil {
			return err
		}
		return cl.Shutdown()
	})
	if err != nil {
		t.Fatal(err)
	}
	s := reg.Snapshot()
	for _, name := range []string{
		"rocpanda.server.blocks_buffered",
		"rocpanda.server.blocks_written",
		"rocpanda.server.bytes_written",
		"rocpanda.server.files_created",
		"rocpanda.server.reads_served",
		"rocpanda.client.bytes_out",
		"hdf.datasets_written",
		// The committed generation carries a catalog, so the restart is
		// served by indexed reads — direct offsets, no hdf.lookups.
		"rocpanda.restart.catalog_hits",
		"rocpanda.restart.files_opened",
		"rocpanda.restart.bytes_read",
	} {
		if s.Counters[name] == 0 {
			t.Errorf("counter %s = 0, want > 0", name)
		}
	}
	if s.Gauges["rocpanda.server.buf_bytes_peak"] == 0 {
		t.Error("buf_bytes_peak gauge not set")
	}
	for _, name := range []string{
		"rocpanda.client.visible_write_seconds",
		"rocpanda.client.visible_read_seconds",
		"rocpanda.client.sync_wait_seconds",
		"rocpanda.server.drain_seconds",
		"rocpanda.server.restart_scan_seconds",
	} {
		if s.Histograms[name].Count == 0 {
			t.Errorf("histogram %s empty", name)
		}
	}
}

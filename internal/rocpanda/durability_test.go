package rocpanda

// The PR's acceptance scenario, end to end and deterministic: two
// committed snapshot generations through the full client/server stack, a
// single bit flipped in the newest generation's file, and a restart that
// must fall back to the previous generation and recover it bit-exactly —
// with the fallback visible in the metrics and the damaged file named by
// the fsck scrub.

import (
	"strings"
	"sync"
	"testing"

	"genxio/internal/faults"
	"genxio/internal/hdf"
	"genxio/internal/metrics"
	"genxio/internal/mpi"
	"genxio/internal/roccom"
	"genxio/internal/rt"
	"genxio/internal/snapshot"
)

func TestBitFlipFallsBackOneGeneration(t *testing.T) {
	fs := rt.NewMemFS()
	const corruptFile = "dur/snap000100_s000.rhdf"

	var mu sync.Mutex
	regs := make(map[int]*metrics.Registry) // world rank -> that rank's registry

	world := mpi.NewChanWorld(fs, 1)
	err := world.Run(4, func(ctx mpi.Ctx) error {
		reg := metrics.New()
		mu.Lock()
		regs[ctx.Comm().Rank()] = reg
		mu.Unlock()

		cl, err := Init(ctx, Config{
			NumServers:      1,
			Profile:         hdf.NullProfile(),
			ActiveBuffering: true,
			Metrics:         reg,
		})
		if err != nil {
			return err
		}
		if cl == nil {
			return nil // server rank
		}
		w := buildWindow(t, cl.Comm().Rank(), 2)

		// Generation 0: the canonical data checkWindow expects.
		if err := cl.WriteAttribute("dur/snap000000", w, "all", 0.0, 0); err != nil {
			return err
		}
		if err := cl.Sync(); err != nil {
			return err
		}
		// Generation 100: visibly different data, so restoring the wrong
		// generation cannot pass the bit-exact check below.
		w.EachPane(func(p *roccom.Pane) {
			pr, _ := p.Array("pressure")
			for i := range pr.F64 {
				pr.F64[i] += 1000
			}
		})
		if err := cl.WriteAttribute("dur/snap000100", w, "all", 1.0, 100); err != nil {
			return err
		}
		if err := cl.Sync(); err != nil {
			return err
		}

		// Flip one payload bit in the newest generation's only file. The
		// directory and manifest stay valid — only the per-dataset CRC can
		// catch this.
		if cl.Comm().Rank() == 0 {
			if err := faults.FlipBit(fs, corruptFile, hdf.HeaderSize()*8+13); err != nil {
				return err
			}
		}
		cl.Comm().Barrier()

		rw := zeroWindow(t, cl.Comm().Rank(), 2)
		base, err := cl.RestoreLatest("dur/", func(base string) error {
			return cl.ReadAttribute(base, rw, "all")
		})
		if err != nil {
			return err
		}
		if base != "dur/snap000000" {
			t.Errorf("client %d restored %q, want the previous generation", cl.Comm().Rank(), base)
		}
		// Bit-exact recovery of generation 0 (checkWindow compares every
		// float exactly).
		if err := checkWindow(cl.Comm().Rank(), rw); err != nil {
			return err
		}
		return cl.Shutdown()
	})
	if err != nil {
		t.Fatal(err)
	}

	// Every client walked: newest generation scanned and abandoned (one
	// fallback), previous generation restored.
	clients := 0
	for rank, reg := range regs {
		scanned := reg.Counter("rocpanda.restart.generations_scanned").Value()
		fallbacks := reg.Counter("rocpanda.restart.fallbacks").Value()
		if scanned == 0 && fallbacks == 0 {
			continue // server rank: no restore walk
		}
		clients++
		if scanned != 2 {
			t.Errorf("rank %d generations_scanned = %d, want 2", rank, scanned)
		}
		if fallbacks != 1 {
			t.Errorf("rank %d restart.fallbacks = %d, want 1", rank, fallbacks)
		}
	}
	if clients != 3 {
		t.Fatalf("%d ranks ran the restore walk, want 3 clients", clients)
	}
	// The server hit the flipped bit as exactly one checksum failure.
	var checksumFailures int64
	for _, reg := range regs {
		checksumFailures += reg.Counter("hdf.checksum_failures").Value()
	}
	if checksumFailures != 1 {
		t.Fatalf("hdf.checksum_failures total = %d, want 1", checksumFailures)
	}

	// The scrub names the damaged generation and exactly the damaged file.
	reports, err := snapshot.Fsck(fs, "dur/")
	if err != nil {
		t.Fatal(err)
	}
	if snapshot.Clean(reports) {
		t.Fatal("fsck found a bit-flipped snapshot clean")
	}
	var corrupt []string
	for _, rep := range reports {
		switch rep.Base {
		case "dur/snap000100":
			if rep.Verdict != snapshot.VerdictCorrupt {
				t.Fatalf("damaged generation verdict %q", rep.Verdict)
			}
			for _, f := range rep.Files {
				if f.Status == "corrupt" {
					corrupt = append(corrupt, f.Name)
				}
			}
		case "dur/snap000000":
			if rep.Verdict != snapshot.VerdictOK {
				t.Fatalf("intact generation verdict %q: %+v", rep.Verdict, rep.Files)
			}
		}
	}
	if len(corrupt) != 1 || corrupt[0] != corruptFile {
		t.Fatalf("fsck flagged %v, want exactly %q", corrupt, corruptFile)
	}
	out := snapshot.Format(reports)
	if !strings.Contains(out, corruptFile) {
		t.Fatalf("report output lacks the damaged file:\n%s", out)
	}
}

package physics

import (
	"math"

	"genxio/internal/roccom"
	"genxio/internal/rt"
)

// BurnModel selects one of Rocburn's one-dimensional burn-rate models with
// integrated ignition, mirroring the combustion module of Figure 1(a)
// (a 2-D framework hosting three 1-D models).
type BurnModel int

// Burn models.
const (
	// APN is the classic Saint-Robert pressure power law r = a*p^n.
	APN BurnModel = iota
	// WSB is a flame-temperature-sensitive law (simplified Ward-Son-
	// Brewster): the APN rate modulated by surface temperature.
	WSB
	// ZN is a Zeldovich-Novozhilov-style law with transient lag: the
	// rate relaxes toward the APN rate with a time constant.
	ZN
)

// String returns the model name.
func (m BurnModel) String() string {
	switch m {
	case APN:
		return "APN"
	case WSB:
		return "WSB"
	case ZN:
		return "ZN"
	}
	return "unknown"
}

// Rocburn computes the propellant regression rate per fluid pane from the
// pane's surface pressure, with an ignition model: a pane ignites when its
// average surface pressure exceeds the ignition threshold, and burns from
// then on.
type Rocburn struct {
	win         *roccom.Window // the fluid window (reads pressure, writes burnrate)
	clock       rt.Clock
	model       BurnModel
	costPerPane float64

	ignited map[int]bool
	rate    map[int]float64 // ZN transient state

	// APN coefficients (SI-ish): r = A * (p/pRef)^N  [m/s].
	A, N, pRef float64
	// IgnitionP is the pressure above which a pane ignites.
	IgnitionP float64
	// Tau is the ZN relaxation time constant.
	Tau float64
}

// NewRocburn attaches a burn solver to the fluid window (which must carry
// the attributes declared by NewRocflo).
func NewRocburn(win *roccom.Window, clock rt.Clock, model BurnModel, costPerPane float64) *Rocburn {
	return &Rocburn{
		win: win, clock: clock, model: model, costPerPane: costPerPane,
		ignited: make(map[int]bool),
		rate:    make(map[int]float64),
		A:       0.005, N: 0.35, pRef: 5e6,
		IgnitionP: 4.5e6,
		Tau:       0.01,
	}
}

// Name implements Solver.
func (r *Rocburn) Name() string { return "Rocburn-2D/" + r.model.String() }

// Window implements Solver.
func (r *Rocburn) Window() *roccom.Window { return r.win }

// StableDt implements Solver: burn dynamics are slow compared to the
// acoustics.
func (r *Rocburn) StableDt() float64 { return 1e-3 }

// Step implements Solver.
func (r *Rocburn) Step(dt float64) {
	panes := 0
	r.win.EachPane(func(p *roccom.Pane) {
		panes++
		r.stepPane(p, dt)
	})
	r.clock.Compute(float64(panes) * r.costPerPane)
}

// SurfacePressure returns the average pressure on the burning surface
// (the i = 0 plane) of a structured pane, or the overall average for
// unstructured panes.
func SurfacePressure(p *roccom.Pane) float64 {
	pr, ok := p.Array("pressure")
	if !ok || len(pr.F64) == 0 {
		return 0
	}
	b := p.Block
	if b.NI >= 2 {
		var sum float64
		cnt := 0
		for k := 0; k < b.NK; k++ {
			for j := 0; j < b.NJ; j++ {
				sum += pr.F64[(k*b.NJ+j)*b.NI]
				cnt++
			}
		}
		return sum / float64(cnt)
	}
	var sum float64
	for _, v := range pr.F64 {
		sum += v
	}
	return sum / float64(len(pr.F64))
}

func (r *Rocburn) stepPane(p *roccom.Pane, dt float64) {
	br, ok := p.Array("burnrate")
	if !ok {
		return
	}
	ps := SurfacePressure(p)
	if !r.ignited[p.ID] {
		if ps < r.IgnitionP {
			br.F64[0] = 0
			return
		}
		r.ignited[p.ID] = true
	}
	apn := r.A * math.Pow(ps/r.pRef, r.N)
	switch r.model {
	case APN:
		br.F64[0] = apn
	case WSB:
		ts := 1.0
		if tm, ok := p.Array("temperature"); ok && len(tm.F64) > 0 {
			ts = tm.F64[0] / 300
		}
		br.F64[0] = apn * math.Sqrt(ts)
	case ZN:
		cur := r.rate[p.ID]
		cur += (apn - cur) * dt / r.Tau
		r.rate[p.ID] = cur
		br.F64[0] = cur
	}
}

// Ignited reports whether a pane has ignited.
func (r *Rocburn) Ignited(paneID int) bool { return r.ignited[paneID] }

package physics

import (
	"math"

	"genxio/internal/hdf"
	"genxio/internal/roccom"
	"genxio/internal/rt"
)

// Rocfrac is the unstructured explicit structural-mechanics solver for the
// solid propellant: a lumped-mass elastodynamic relaxation on tetrahedral
// blocks. Nodes carry displacement and velocity; elements carry a scalar
// von-Mises-style stress measure derived from edge strains. Surface
// traction (applied by Rocface from the fluid pressure) drives the motion.
type Rocfrac struct {
	win         *roccom.Window
	clock       rt.Clock
	costPerNode float64
}

// Solid window attribute specs registered by NewRocfrac.
var solidAttrs = []roccom.AttrSpec{
	{Name: "displacement", Loc: roccom.NodeLoc, Type: hdf.F64, NComp: 3},
	{Name: "velocity", Loc: roccom.NodeLoc, Type: hdf.F64, NComp: 3},
	{Name: "traction", Loc: roccom.NodeLoc, Type: hdf.F64, NComp: 1},
	{Name: "stress", Loc: roccom.ElemLoc, Type: hdf.F64, NComp: 1},
}

// NewRocfrac declares the solid attributes on win and zero-initializes the
// state of registered panes.
func NewRocfrac(win *roccom.Window, clock rt.Clock, costPerNode float64) (*Rocfrac, error) {
	for _, s := range solidAttrs {
		if err := win.NewAttribute(s); err != nil {
			return nil, err
		}
	}
	return &Rocfrac{win: win, clock: clock, costPerNode: costPerNode}, nil
}

// Name implements Solver.
func (r *Rocfrac) Name() string { return "Rocfrac" }

// Window implements Solver.
func (r *Rocfrac) Window() *roccom.Window { return r.win }

// StableDt implements Solver: the elastic wave CFL bound.
func (r *Rocfrac) StableDt() float64 { return 5e-5 }

// Step implements Solver.
func (r *Rocfrac) Step(dt float64) {
	var nodes int
	r.win.EachPane(func(p *roccom.Pane) {
		nodes += p.Block.NumNodes()
		r.stepPane(p, dt)
	})
	r.clock.Compute(float64(nodes) * r.costPerNode)
}

func (r *Rocfrac) stepPane(p *roccom.Pane, dt float64) {
	b := p.Block
	disp, _ := p.Array("displacement")
	vel, _ := p.Array("velocity")
	trac, _ := p.Array("traction")
	stress, _ := p.Array("stress")

	const (
		stiffness = 4e2 // edge spring constant / nodal mass
		damping   = 0.5 // velocity damping per unit time
		tracGain  = 2e-9
	)

	// Elastic forces from tetrahedral edge springs: force proportional
	// to the relative displacement along each of the 6 edges per tet.
	nn := b.NumNodes()
	force := make([]float64, 3*nn)
	edges := [6][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}
	for e := 0; e < b.NumElems(); e++ {
		var strain float64
		for _, ed := range edges {
			a := int(b.Conn[4*e+ed[0]])
			c := int(b.Conn[4*e+ed[1]])
			for d := 0; d < 3; d++ {
				rel := disp.F64[3*c+d] - disp.F64[3*a+d]
				force[3*a+d] += stiffness * rel
				force[3*c+d] -= stiffness * rel
				strain += rel * rel
			}
		}
		stress.F64[e] = math.Sqrt(strain / 6)
	}

	// Traction pushes surface nodes radially inward; here applied as a
	// body force scaled by the nodal traction value set by Rocface.
	for n := 0; n < nn; n++ {
		x, y, _ := b.Node(n)
		rr := math.Hypot(x, y)
		if rr > 0 && trac.F64[n] != 0 {
			f := tracGain * trac.F64[n]
			force[3*n] += f * x / rr
			force[3*n+1] += f * y / rr
		}
		for d := 0; d < 3; d++ {
			vel.F64[3*n+d] += dt * force[3*n+d]
			vel.F64[3*n+d] *= 1 - damping*dt
			disp.F64[3*n+d] += dt * vel.F64[3*n+d]
		}
	}
}

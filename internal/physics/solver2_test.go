package physics

import (
	"math"
	"testing"

	"genxio/internal/mesh"
	"genxio/internal/roccom"
	"genxio/internal/rt"
	"genxio/internal/stats"
)

// tetWindows builds paired unstructured fluid and solid windows.
func tetWindows(t testing.TB, n int) (*roccom.Window, *roccom.Window, *Rocflu, *Rocsolid) {
	t.Helper()
	rc := roccom.New()
	fw, _ := rc.NewWindow("fluid")
	sw, _ := rc.NewWindow("solid")
	clock := rt.NewWallClock()
	flu, err := NewRocflu(fw, clock, 0)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := NewRocsolid(sw, clock, 0)
	if err != nil {
		t.Fatal(err)
	}
	blocks, err := mesh.GenCylinder(mesh.CylinderSpec{
		RInner: 0.1, ROuter: 0.3, Length: 0.6,
		BR: 1, BT: n, BZ: 1, NodesPerBlock: 150, Spread: 0.2,
	}, 1, stats.NewRNG(13))
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range blocks {
		tet, err := mesh.Tetrahedralize(b)
		if err != nil {
			t.Fatal(err)
		}
		p, err := fw.RegisterPane(tet.ID, tet)
		if err != nil {
			t.Fatal(err)
		}
		if err := flu.InitPane(p); err != nil {
			t.Fatal(err)
		}
		tet2, _ := mesh.Tetrahedralize(b)
		sp, err := sw.RegisterPane(tet2.ID, tet2)
		if err != nil {
			t.Fatal(err)
		}
		rs.InitPane(sp)
		_ = sp
	}
	return fw, sw, flu, rs
}

func TestRocfluStepFiniteAndSmoothing(t *testing.T) {
	fw, _, flu, _ := tetWindows(t, 2)
	if flu.Name() != "Rocflu-MP" || flu.Window() != fw || flu.StableDt() <= 0 {
		t.Fatal("identity accessors broken")
	}
	p, _ := fw.Pane(1)
	pr, _ := p.Array("pressure")
	pr.F64[0] = 7e6
	spread0 := spread(pr.F64)
	for i := 0; i < 10; i++ {
		flu.Step(1e-4)
	}
	if s := spread(pr.F64); s >= spread0 {
		t.Fatalf("pressure spread grew: %v -> %v", spread0, s)
	}
	finiteAll(t, fw, "pressure")
	finiteAll(t, fw, "velocity")
	finiteAll(t, fw, "temperature")
}

func TestRocfluRequiresUnstructured(t *testing.T) {
	rc := roccom.New()
	fw, _ := rc.NewWindow("fluid")
	flu, err := NewRocflu(fw, rt.NewWallClock(), 0)
	if err != nil {
		t.Fatal(err)
	}
	blocks, _ := mesh.GenCylinder(mesh.CylinderSpec{
		RInner: 0.1, ROuter: 0.2, Length: 0.5,
		BR: 1, BT: 1, BZ: 1, NodesPerBlock: 60,
	}, 1, stats.NewRNG(1))
	p, _ := fw.RegisterPane(1, blocks[0]) // structured
	if err := flu.InitPane(p); err == nil {
		t.Fatal("structured pane accepted")
	}
}

func TestRocfluBurnCoupling(t *testing.T) {
	fw, _, flu, _ := tetWindows(t, 1)
	burn := NewRocburn(fw, rt.NewWallClock(), APN, 0)
	p, _ := fw.Pane(1)
	pr, _ := p.Array("pressure")
	mean0 := stats.Mean(pr.F64)
	dt := 1e-4
	for i := 0; i < 50; i++ {
		flu.Step(dt)
		burn.Step(dt)
	}
	if !burn.Ignited(1) {
		t.Fatal("pane did not ignite")
	}
	if stats.Mean(pr.F64) <= mean0 {
		t.Fatal("burning did not pressurize the unstructured chamber")
	}
}

func TestRocsolidRelaxesTowardEquilibrium(t *testing.T) {
	_, sw, _, rs := tetWindows(t, 1)
	if rs.Name() != "Rocsolid" || rs.StableDt() <= rocfracDt() {
		t.Fatal("identity/dt broken")
	}
	sw.EachPane(func(p *roccom.Pane) {
		trac, _ := p.Array("traction")
		for i := range trac.F64 {
			trac.F64[i] = 5e6
		}
	})
	var prevNorm float64
	var deltas []float64
	for i := 0; i < 30; i++ {
		rs.Step(5e-4)
		var norm float64
		sw.EachPane(func(p *roccom.Pane) {
			d, _ := p.Array("displacement")
			for _, v := range d.F64 {
				norm += v * v
			}
		})
		norm = math.Sqrt(norm)
		deltas = append(deltas, math.Abs(norm-prevNorm))
		prevNorm = norm
	}
	if prevNorm == 0 {
		t.Fatal("no displacement under load")
	}
	// Quasi-static relaxation: the per-step change must shrink.
	if deltas[len(deltas)-1] >= deltas[1]/2 {
		t.Fatalf("not converging: first delta %v, last %v", deltas[1], deltas[len(deltas)-1])
	}
	finiteAll(t, sw, "displacement")
	finiteAll(t, sw, "stress")
	// Stress must be nonzero under load.
	var anyStress bool
	sw.EachPane(func(p *roccom.Pane) {
		st, _ := p.Array("stress")
		for _, v := range st.F64 {
			if v > 0 {
				anyStress = true
			}
		}
	})
	if !anyStress {
		t.Fatal("no stress under load")
	}
}

func rocfracDt() float64 {
	r := &Rocfrac{}
	return r.StableDt()
}

// Package physics provides simplified but genuine counterparts of GENx's
// computation modules, each operating on Roccom windows exactly the way
// the paper describes (Figure 1(a)): Rocflo (structured-mesh gas
// dynamics), Rocfrac (unstructured structural mechanics), Rocburn
// (burn-rate models at the propellant surface), Rocface (fluid-solid
// interface transfer), and Rocblas (parallel algebraic operators, in the
// sibling package rocblas).
//
// The solvers do real array arithmetic per block — snapshots therefore
// contain evolving state that restarts must reproduce bit-for-bit — and
// additionally charge a calibrated per-node CPU cost to the platform
// clock, which is what lets a laptop-scale mesh stand in for the paper's
// production problems when regenerating the timing tables.
package physics

import (
	"math"

	"genxio/internal/hdf"
	"genxio/internal/roccom"
	"genxio/internal/rt"
)

// Solver is one physics module: it owns a window and advances it by one
// explicit timestep.
type Solver interface {
	// Name identifies the module ("Rocflo-MP", ...).
	Name() string
	// Window returns the module's Roccom window.
	Window() *roccom.Window
	// StableDt returns the largest stable timestep for the module's
	// current state, so the global dt is a pure function of state (and
	// restart reproduces the original trajectory exactly).
	StableDt() float64
	// Step advances the local panes by dt.
	Step(dt float64)
}

// Rocflo is the structured-mesh explicit gas-dynamics solver: pressure
// relaxes by neighbor averaging (a Jacobi smoothing of the acoustic
// field), velocity follows the pressure gradient, and the burning surface
// (the innermost i-plane of each block) receives mass from Rocburn's
// regression rate.
type Rocflo struct {
	win         *roccom.Window
	clock       rt.Clock
	costPerNode float64
	scratch     []float64
}

// Fluid window attribute specs registered by NewRocflo.
var fluidAttrs = []roccom.AttrSpec{
	{Name: "pressure", Loc: roccom.NodeLoc, Type: hdf.F64, NComp: 1},
	{Name: "velocity", Loc: roccom.NodeLoc, Type: hdf.F64, NComp: 3},
	{Name: "temperature", Loc: roccom.NodeLoc, Type: hdf.F64, NComp: 1},
	{Name: "burnrate", Loc: roccom.PaneLoc, Type: hdf.F64, NComp: 1},
}

// NewRocflo declares the fluid attributes on win (which must already hold
// structured panes, or gain them later) and initializes the state of every
// registered pane. costPerNode is the CPU seconds charged per mesh node
// per step.
func NewRocflo(win *roccom.Window, clock rt.Clock, costPerNode float64) (*Rocflo, error) {
	for _, s := range fluidAttrs {
		if err := win.NewAttribute(s); err != nil {
			return nil, err
		}
	}
	r := &Rocflo{win: win, clock: clock, costPerNode: costPerNode}
	win.EachPane(func(p *roccom.Pane) { r.initPane(p) })
	return r, nil
}

// InitPane initializes a pane registered after construction.
func (r *Rocflo) InitPane(p *roccom.Pane) { r.initPane(p) }

func (r *Rocflo) initPane(p *roccom.Pane) {
	pr, _ := p.Array("pressure")
	tm, _ := p.Array("temperature")
	for i := range pr.F64 {
		// Chamber pressure ~ 5 MPa with a mild axial gradient.
		_, _, z := p.Block.Node(i)
		pr.F64[i] = 5e6 * (1 - 0.05*z)
		tm.F64[i] = 300
	}
	br, _ := p.Array("burnrate")
	br.F64[0] = 0
}

// Name implements Solver.
func (r *Rocflo) Name() string { return "Rocflo-MP" }

// Window implements Solver.
func (r *Rocflo) Window() *roccom.Window { return r.win }

// StableDt implements Solver: the acoustic CFL bound for the lab-scale
// chamber.
func (r *Rocflo) StableDt() float64 { return 1e-4 }

// Step implements Solver.
func (r *Rocflo) Step(dt float64) {
	var nodes int
	r.win.EachPane(func(p *roccom.Pane) {
		nodes += p.Block.NumNodes()
		r.stepPane(p, dt)
	})
	r.clock.Compute(float64(nodes) * r.costPerNode)
}

func (r *Rocflo) stepPane(p *roccom.Pane, dt float64) {
	b := p.Block
	pr, _ := p.Array("pressure")
	vel, _ := p.Array("velocity")
	tm, _ := p.Array("temperature")
	br, _ := p.Array("burnrate")
	n := b.NumNodes()
	if cap(r.scratch) < n {
		r.scratch = make([]float64, n)
	}
	next := r.scratch[:n]

	idx := func(i, j, k int) int { return (k*b.NJ+j)*b.NI + i }
	const kappa = 0.2 // smoothing strength per step
	for k := 0; k < b.NK; k++ {
		for j := 0; j < b.NJ; j++ {
			for i := 0; i < b.NI; i++ {
				c := idx(i, j, k)
				sum, cnt := 0.0, 0
				if i > 0 {
					sum += pr.F64[idx(i-1, j, k)]
					cnt++
				}
				if i < b.NI-1 {
					sum += pr.F64[idx(i+1, j, k)]
					cnt++
				}
				if j > 0 {
					sum += pr.F64[idx(i, j-1, k)]
					cnt++
				}
				if j < b.NJ-1 {
					sum += pr.F64[idx(i, j+1, k)]
					cnt++
				}
				if k > 0 {
					sum += pr.F64[idx(i, j, k-1)]
					cnt++
				}
				if k < b.NK-1 {
					sum += pr.F64[idx(i, j, k+1)]
					cnt++
				}
				avg := sum / float64(cnt)
				next[c] = pr.F64[c] + kappa*(avg-pr.F64[c])
				// Mass addition from the burning surface (i = 0
				// plane faces the propellant).
				if i == 0 {
					next[c] += 2e8 * br.F64[0] * dt
				}
			}
		}
	}
	copy(pr.F64, next)
	// Velocity follows the local pressure gradient along i; temperature
	// tracks pressure adiabatically (toy closure).
	for k := 0; k < b.NK; k++ {
		for j := 0; j < b.NJ; j++ {
			for i := 0; i < b.NI; i++ {
				c := idx(i, j, k)
				var grad float64
				if i < b.NI-1 {
					grad = pr.F64[idx(i+1, j, k)] - pr.F64[c]
				} else if i > 0 {
					grad = pr.F64[c] - pr.F64[idx(i-1, j, k)]
				}
				vel.F64[3*c] += -1e-6 * grad * dt
				tm.F64[c] = 300 * math.Pow(pr.F64[c]/5e6, 0.2857)
			}
		}
	}
}

package physics

import (
	"math"
	"testing"

	"genxio/internal/mesh"
	"genxio/internal/roccom"
	"genxio/internal/rt"
	"genxio/internal/stats"
)

// fluidSolid builds paired fluid (structured) and solid (tetrahedral)
// windows with n panes each.
func fluidSolid(t testing.TB, n int) (*roccom.Window, *roccom.Window, *Rocflo, *Rocfrac) {
	t.Helper()
	rc := roccom.New()
	fw, _ := rc.NewWindow("fluid")
	sw, _ := rc.NewWindow("solid")
	clock := rt.NewWallClock()
	flo, err := NewRocflo(fw, clock, 0)
	if err != nil {
		t.Fatal(err)
	}
	frac, err := NewRocfrac(sw, clock, 0)
	if err != nil {
		t.Fatal(err)
	}
	blocks, err := mesh.GenCylinder(mesh.CylinderSpec{
		RInner: 0.1, ROuter: 0.3, Length: 0.6,
		BR: 1, BT: n, BZ: 1, NodesPerBlock: 120, Spread: 0.2,
	}, 1, stats.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range blocks {
		p, err := fw.RegisterPane(b.ID, b)
		if err != nil {
			t.Fatal(err)
		}
		flo.InitPane(p)
		tet, err := mesh.Tetrahedralize(b)
		if err != nil {
			t.Fatal(err)
		}
		tet2 := *tet
		tet2.ID = b.ID + 1000
		if _, err := sw.RegisterPane(tet2.ID, &tet2); err != nil {
			t.Fatal(err)
		}
	}
	return fw, sw, flo, frac
}

func finiteAll(t *testing.T, w *roccom.Window, attr string) {
	t.Helper()
	w.EachPane(func(p *roccom.Pane) {
		a, ok := p.Array(attr)
		if !ok {
			t.Fatalf("missing %q", attr)
		}
		for i, v := range a.F64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%s[%d] = %v on pane %d", attr, i, v, p.ID)
			}
		}
	})
}

func TestRocfloStepStableAndSmoothing(t *testing.T) {
	fw, _, flo, _ := fluidSolid(t, 3)
	// Perturb one pane's pressure; smoothing must reduce the spread.
	p, _ := fw.Pane(1)
	pr, _ := p.Array("pressure")
	pr.F64[0] = 6e6
	spread0 := spread(pr.F64)
	if flo.StableDt() <= 0 {
		t.Fatal("nonpositive dt bound")
	}
	for i := 0; i < 10; i++ {
		flo.Step(1e-4)
	}
	if s := spread(pr.F64); s >= spread0 {
		t.Fatalf("pressure spread grew: %v -> %v", spread0, s)
	}
	finiteAll(t, fw, "pressure")
	finiteAll(t, fw, "velocity")
	finiteAll(t, fw, "temperature")
}

func spread(xs []float64) float64 {
	lo, hi := xs[0], xs[0]
	for _, v := range xs {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return hi - lo
}

func TestRocburnModels(t *testing.T) {
	for _, model := range []BurnModel{APN, WSB, ZN} {
		fw, _, _, _ := fluidSolid(t, 2)
		clock := rt.NewWallClock()
		burn := NewRocburn(fw, clock, model, 0)
		if burn.Name() == "" || burn.Window() != fw {
			t.Fatal("identity accessors broken")
		}
		// Initial pressure 5e6 > ignition threshold 4.5e6 on the inner
		// surface: panes ignite on the first step.
		burn.Step(1e-3)
		fw.EachPane(func(p *roccom.Pane) {
			if !burn.Ignited(p.ID) {
				t.Fatalf("%v: pane %d did not ignite at 5 MPa", model, p.ID)
			}
			br, _ := p.Array("burnrate")
			if br.F64[0] <= 0 {
				t.Fatalf("%v: zero burn rate after ignition", model)
			}
			if br.F64[0] > 0.1 {
				t.Fatalf("%v: implausible burn rate %v m/s", model, br.F64[0])
			}
		})
	}
}

func TestRocburnIgnitionThreshold(t *testing.T) {
	fw, _, _, _ := fluidSolid(t, 1)
	// Depressurize below the threshold.
	fw.EachPane(func(p *roccom.Pane) {
		pr, _ := p.Array("pressure")
		for i := range pr.F64 {
			pr.F64[i] = 1e6
		}
	})
	burn := NewRocburn(fw, rt.NewWallClock(), APN, 0)
	burn.Step(1e-3)
	fw.EachPane(func(p *roccom.Pane) {
		if burn.Ignited(p.ID) {
			t.Fatal("ignited below threshold")
		}
		br, _ := p.Array("burnrate")
		if br.F64[0] != 0 {
			t.Fatal("burning without ignition")
		}
	})
	// Pressurize: ignites and STAYS ignited even if pressure drops.
	fw.EachPane(func(p *roccom.Pane) {
		pr, _ := p.Array("pressure")
		for i := range pr.F64 {
			pr.F64[i] = 5e6
		}
	})
	burn.Step(1e-3)
	fw.EachPane(func(p *roccom.Pane) {
		pr, _ := p.Array("pressure")
		for i := range pr.F64 {
			pr.F64[i] = 1e6
		}
	})
	burn.Step(1e-3)
	fw.EachPane(func(p *roccom.Pane) {
		if !burn.Ignited(p.ID) {
			t.Fatal("ignition did not latch")
		}
		br, _ := p.Array("burnrate")
		if br.F64[0] <= 0 {
			t.Fatal("latched pane stopped burning")
		}
	})
}

func TestZNRelaxesTowardAPN(t *testing.T) {
	fw, _, _, _ := fluidSolid(t, 1)
	zn := NewRocburn(fw, rt.NewWallClock(), ZN, 0)
	apn := NewRocburn(fw, rt.NewWallClock(), APN, 0)
	var znRate, apnRate float64
	p, _ := fw.Pane(1)
	apn.Step(1e-3)
	br, _ := p.Array("burnrate")
	apnRate = br.F64[0]
	var prev float64
	for i := 0; i < 200; i++ {
		zn.Step(1e-3)
		znRate = br.F64[0]
		if znRate < prev-1e-12 {
			t.Fatal("ZN rate not monotone while relaxing")
		}
		prev = znRate
	}
	if math.Abs(znRate-apnRate) > 0.02*apnRate {
		t.Fatalf("ZN rate %v did not relax to APN %v", znRate, apnRate)
	}
}

func TestRocfaceTransfer(t *testing.T) {
	fw, sw, _, _ := fluidSolid(t, 3)
	face, err := NewRocface(fw, sw, rt.NewWallClock(), 0)
	if err != nil {
		t.Fatal(err)
	}
	face.Step(0)
	// Every solid traction value must equal some fluid pressure value;
	// with near-coincident meshes it should be close to the pane's
	// pressure field range.
	sw.EachPane(func(sp *roccom.Pane) {
		trac, _ := sp.Array("traction")
		nonzero := 0
		for _, v := range trac.F64 {
			if v != 0 {
				nonzero++
			}
			if v < 0 || v > 1e8 {
				t.Fatalf("implausible traction %v", v)
			}
		}
		if nonzero == 0 {
			t.Fatalf("no traction transferred to pane %d", sp.ID)
		}
	})
}

func TestRocfaceMismatchedPanes(t *testing.T) {
	fw, sw, _, _ := fluidSolid(t, 2)
	p, _ := sw.Pane(1001)
	_ = p
	sw.DeletePane(1001)
	if _, err := NewRocface(fw, sw, rt.NewWallClock(), 0); err == nil {
		t.Fatal("mismatched pane counts accepted")
	}
}

func TestRocfracRespondsToTraction(t *testing.T) {
	_, sw, _, frac := fluidSolid(t, 1)
	// Without traction: nothing moves.
	frac.Step(1e-4)
	sw.EachPane(func(p *roccom.Pane) {
		d, _ := p.Array("displacement")
		for _, v := range d.F64 {
			if v != 0 {
				t.Fatal("moved without load")
			}
		}
	})
	// Apply traction; displacement and stress must appear and stay finite.
	sw.EachPane(func(p *roccom.Pane) {
		trac, _ := p.Array("traction")
		for i := range trac.F64 {
			trac.F64[i] = 5e6
		}
	})
	for i := 0; i < 50; i++ {
		frac.Step(1e-4)
	}
	var moved bool
	sw.EachPane(func(p *roccom.Pane) {
		d, _ := p.Array("displacement")
		for _, v := range d.F64 {
			if v != 0 {
				moved = true
			}
		}
		st, _ := p.Array("stress")
		var anyStress bool
		for _, v := range st.F64 {
			if v > 0 {
				anyStress = true
			}
		}
		if !anyStress {
			t.Fatal("no stress under load")
		}
	})
	if !moved {
		t.Fatal("no displacement under load")
	}
	finiteAll(t, sw, "displacement")
	finiteAll(t, sw, "velocity")
	finiteAll(t, sw, "stress")
}

// countClock verifies the compute-cost charging used by the simulation.
type countClock struct{ total float64 }

func (c *countClock) Now() float64      { return 0 }
func (c *countClock) Sleep(d float64)   {}
func (c *countClock) Compute(d float64) { c.total += d }

func TestComputeCostCharged(t *testing.T) {
	rc := roccom.New()
	fw, _ := rc.NewWindow("fluid")
	clock := &countClock{}
	flo, _ := NewRocflo(fw, clock, 1e-6)
	blocks, _ := mesh.GenCylinder(mesh.CylinderSpec{
		RInner: 0.1, ROuter: 0.3, Length: 0.6,
		BR: 1, BT: 2, BZ: 1, NodesPerBlock: 100,
	}, 1, stats.NewRNG(2))
	var nodes int
	for _, b := range blocks {
		p, _ := fw.RegisterPane(b.ID, b)
		flo.InitPane(p)
		nodes += b.NumNodes()
	}
	flo.Step(1e-4)
	want := float64(nodes) * 1e-6
	if math.Abs(clock.total-want) > 1e-12 {
		t.Fatalf("charged %v, want %v", clock.total, want)
	}
}

func TestCoupledLoopEnergyBounded(t *testing.T) {
	// Run the full coupled loop (flo + burn + face + frac) and verify
	// everything stays finite and the chamber pressurizes (burning adds
	// mass).
	fw, sw, flo, frac := fluidSolid(t, 2)
	burn := NewRocburn(fw, rt.NewWallClock(), APN, 0)
	face, err := NewRocface(fw, sw, rt.NewWallClock(), 0)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := fw.Pane(1)
	pr, _ := p.Array("pressure")
	mean := func() float64 {
		var s float64
		for _, v := range pr.F64 {
			s += v
		}
		return s / float64(len(pr.F64))
	}
	p0 := mean()
	dt := 1e-4
	for i := 0; i < 100; i++ {
		flo.Step(dt)
		burn.Step(dt)
		face.Step(dt)
		frac.Step(dt)
	}
	finiteAll(t, fw, "pressure")
	finiteAll(t, sw, "stress")
	if mean() <= p0 {
		t.Fatalf("chamber did not pressurize: mean %v -> %v", p0, mean())
	}
}

package physics

import (
	"fmt"
	"math"

	"genxio/internal/roccom"
	"genxio/internal/rt"
)

// Rocflu is the unstructured-mesh gas-dynamics solver (GENx offers both
// Rocflo-MP on multi-block structured grids and Rocflu-MP on unstructured
// meshes). It advances the same fluid state as Rocflo — pressure,
// velocity, temperature, and a pane-level burn rate — but on tetrahedral
// panes, using edge-based pressure smoothing over the element
// connectivity instead of the structured stencil.
type Rocflu struct {
	win         *roccom.Window
	clock       rt.Clock
	costPerNode float64

	// Per-pane precomputed node adjacency (edge lists) and the surface
	// node set (innermost radius band) that receives burn mass.
	adj     map[int][][]int32
	surface map[int][]int32
	scratch []float64
}

// NewRocflu declares the fluid attributes on win (the same set Rocflo
// uses, so snapshots and Rocface are solver-agnostic) and prepares
// registered panes.
func NewRocflu(win *roccom.Window, clock rt.Clock, costPerNode float64) (*Rocflu, error) {
	for _, s := range fluidAttrs {
		if err := win.NewAttribute(s); err != nil {
			return nil, err
		}
	}
	r := &Rocflu{
		win: win, clock: clock, costPerNode: costPerNode,
		adj:     make(map[int][][]int32),
		surface: make(map[int][]int32),
	}
	var err error
	win.EachPane(func(p *roccom.Pane) {
		if e := r.InitPane(p); e != nil && err == nil {
			err = e
		}
	})
	if err != nil {
		return nil, err
	}
	return r, nil
}

// InitPane initializes state and connectivity caches for a pane.
func (r *Rocflu) InitPane(p *roccom.Pane) error {
	b := p.Block
	if len(b.Conn) == 0 {
		return fmt.Errorf("physics: Rocflu needs unstructured panes; pane %d has no connectivity", p.ID)
	}
	// Node adjacency from tet edges (deduplicated).
	n := b.NumNodes()
	seen := make(map[int64]bool)
	adj := make([][]int32, n)
	edges := [6][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}
	for e := 0; e < b.NumElems(); e++ {
		for _, ed := range edges {
			a := b.Conn[4*e+ed[0]]
			c := b.Conn[4*e+ed[1]]
			lo, hi := a, c
			if lo > hi {
				lo, hi = hi, lo
			}
			key := int64(lo)<<32 | int64(hi)
			if seen[key] {
				continue
			}
			seen[key] = true
			adj[a] = append(adj[a], c)
			adj[c] = append(adj[c], a)
		}
	}
	r.adj[p.ID] = adj

	// Surface nodes: the innermost 10% radius band burns.
	minR, maxR := 0.0, 0.0
	for i := 0; i < n; i++ {
		x, y, _ := b.Node(i)
		rr := x*x + y*y
		if i == 0 || rr < minR {
			minR = rr
		}
		if i == 0 || rr > maxR {
			maxR = rr
		}
	}
	cut := minR + 0.1*(maxR-minR)
	var surf []int32
	for i := 0; i < n; i++ {
		x, y, _ := b.Node(i)
		if x*x+y*y <= cut {
			surf = append(surf, int32(i))
		}
	}
	r.surface[p.ID] = surf

	// Initial state mirrors Rocflo's chamber condition.
	pr, _ := p.Array("pressure")
	tm, _ := p.Array("temperature")
	for i := range pr.F64 {
		_, _, z := b.Node(i)
		pr.F64[i] = 5e6 * (1 - 0.05*z)
		tm.F64[i] = 300
	}
	return nil
}

// Name implements Solver.
func (r *Rocflu) Name() string { return "Rocflu-MP" }

// Window implements Solver.
func (r *Rocflu) Window() *roccom.Window { return r.win }

// StableDt implements Solver.
func (r *Rocflu) StableDt() float64 { return 1e-4 }

// Step implements Solver.
func (r *Rocflu) Step(dt float64) {
	var nodes int
	r.win.EachPane(func(p *roccom.Pane) {
		nodes += p.Block.NumNodes()
		r.stepPane(p, dt)
	})
	r.clock.Compute(float64(nodes) * r.costPerNode)
}

func (r *Rocflu) stepPane(p *roccom.Pane, dt float64) {
	pr, _ := p.Array("pressure")
	vel, _ := p.Array("velocity")
	tm, _ := p.Array("temperature")
	br, _ := p.Array("burnrate")
	adj := r.adj[p.ID]
	n := len(pr.F64)
	if cap(r.scratch) < n {
		r.scratch = make([]float64, n)
	}
	next := r.scratch[:n]

	const kappa = 0.2
	for i := 0; i < n; i++ {
		if len(adj[i]) == 0 {
			next[i] = pr.F64[i]
			continue
		}
		var sum float64
		for _, j := range adj[i] {
			sum += pr.F64[j]
		}
		avg := sum / float64(len(adj[i]))
		next[i] = pr.F64[i] + kappa*(avg-pr.F64[i])
	}
	for _, i := range r.surface[p.ID] {
		next[i] += 2e8 * br.F64[0] * dt
	}
	copy(pr.F64, next)

	// Velocity follows the local pressure gradient along edges;
	// temperature tracks pressure adiabatically.
	for i := 0; i < n; i++ {
		if len(adj[i]) > 0 {
			grad := pr.F64[adj[i][0]] - pr.F64[i]
			vel.F64[3*i] += -1e-6 * grad * dt
		}
		tm.F64[i] = 300 * math.Pow(pr.F64[i]/5e6, 0.2857)
	}
}

package physics

import (
	"math"

	"genxio/internal/roccom"
	"genxio/internal/rt"
)

// Rocsolid is GENx's second structural-mechanics solver: where Rocfrac is
// an explicit elastodynamic code, Rocsolid is an implicit,
// quasi-static solver — each step it relaxes the displacement field toward
// equilibrium with the applied surface traction by damped Jacobi
// iterations of the elastic system, so it tolerates much larger timesteps.
// It uses the same solid window attributes as Rocfrac, so Rocface and the
// I/O path are identical.
type Rocsolid struct {
	win         *roccom.Window
	clock       rt.Clock
	costPerNode float64
	// Iterations is the number of relaxation sweeps per step (>= 1).
	Iterations int

	adj     map[int][][]int32
	scratch []float64
}

// NewRocsolid declares the solid attributes on win and caches element
// adjacency for registered panes.
func NewRocsolid(win *roccom.Window, clock rt.Clock, costPerNode float64) (*Rocsolid, error) {
	for _, s := range solidAttrs {
		if err := win.NewAttribute(s); err != nil {
			return nil, err
		}
	}
	r := &Rocsolid{win: win, clock: clock, costPerNode: costPerNode, Iterations: 4,
		adj: make(map[int][][]int32)}
	win.EachPane(func(p *roccom.Pane) { r.InitPane(p) })
	return r, nil
}

// InitPane caches node adjacency for a pane added after construction.
func (r *Rocsolid) InitPane(p *roccom.Pane) {
	b := p.Block
	n := b.NumNodes()
	seen := make(map[int64]bool)
	adj := make([][]int32, n)
	edges := [6][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}
	for e := 0; e < b.NumElems(); e++ {
		for _, ed := range edges {
			a := b.Conn[4*e+ed[0]]
			c := b.Conn[4*e+ed[1]]
			lo, hi := a, c
			if lo > hi {
				lo, hi = hi, lo
			}
			key := int64(lo)<<32 | int64(hi)
			if seen[key] {
				continue
			}
			seen[key] = true
			adj[a] = append(adj[a], c)
			adj[c] = append(adj[c], a)
		}
	}
	r.adj[p.ID] = adj
}

// Name implements Solver.
func (r *Rocsolid) Name() string { return "Rocsolid" }

// Window implements Solver.
func (r *Rocsolid) Window() *roccom.Window { return r.win }

// StableDt implements Solver: quasi-static, so the solid imposes a loose
// bound (an order of magnitude above Rocfrac's explicit limit).
func (r *Rocsolid) StableDt() float64 { return 5e-4 }

// Step implements Solver: relaxation sweeps toward elastic equilibrium
// under the current traction.
func (r *Rocsolid) Step(dt float64) {
	var nodes int
	r.win.EachPane(func(p *roccom.Pane) {
		nodes += p.Block.NumNodes()
		r.stepPane(p, dt)
	})
	// Implicit solves cost more per node per step; charge per sweep.
	r.clock.Compute(float64(nodes) * r.costPerNode * float64(r.Iterations))
}

func (r *Rocsolid) stepPane(p *roccom.Pane, dt float64) {
	b := p.Block
	disp, _ := p.Array("displacement")
	trac, _ := p.Array("traction")
	stress, _ := p.Array("stress")
	vel, _ := p.Array("velocity")
	adj := r.adj[p.ID]
	n := b.NumNodes()
	if cap(r.scratch) < 3*n {
		r.scratch = make([]float64, 3*n)
	}
	next := r.scratch[:3*n]

	const compliance = 1e-11 // displacement per unit traction at equilibrium
	for sweep := 0; sweep < r.Iterations; sweep++ {
		for i := 0; i < n; i++ {
			if len(adj[i]) == 0 {
				copy(next[3*i:3*i+3], disp.F64[3*i:3*i+3])
				continue
			}
			// Jacobi: average of neighbors plus local traction load
			// along the inward radial direction.
			var sx, sy, sz float64
			for _, j := range adj[i] {
				sx += disp.F64[3*j]
				sy += disp.F64[3*j+1]
				sz += disp.F64[3*j+2]
			}
			k := float64(len(adj[i]))
			x, y, _ := b.Node(i)
			rr := x*x + y*y
			var lx, ly float64
			if rr > 0 {
				lx = compliance * trac.F64[i] * x
				ly = compliance * trac.F64[i] * y
			}
			next[3*i] = sx/k + lx
			next[3*i+1] = sy/k + ly
			next[3*i+2] = sz / k
		}
		copy(disp.F64, next)
	}

	// Velocity is the displacement rate (diagnostic for this solver);
	// stress from edge strains, as in Rocfrac.
	for i := range vel.F64 {
		vel.F64[i] = 0
	}
	edges := [6][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}
	for e := 0; e < b.NumElems(); e++ {
		var strain float64
		for _, ed := range edges {
			a := int(b.Conn[4*e+ed[0]])
			c := int(b.Conn[4*e+ed[1]])
			for d := 0; d < 3; d++ {
				rel := disp.F64[3*c+d] - disp.F64[3*a+d]
				strain += rel * rel
			}
		}
		stress.F64[e] = math.Sqrt(strain / 6)
	}
}

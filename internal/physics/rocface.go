package physics

import (
	"fmt"
	"math"

	"genxio/internal/roccom"
	"genxio/internal/rt"
)

// Rocface transfers data across the fluid-solid interface (the paper's
// jump-condition module): fluid surface pressure becomes solid surface
// traction. The node mapping is a nearest-neighbor projection from each
// solid surface node to the fluid surface nodes, built once per pane pair
// and rebuilt when meshes change.
//
// GENx co-partitions the interface, so the transfer here is local: fluid
// pane k maps to solid pane with the same position in the local pane
// order. This keeps Rocface communication-free, as in the lab-scale runs.
type Rocface struct {
	fluid, solid *roccom.Window
	clock        rt.Clock
	costPerNode  float64
	maps         map[int][]int32 // solid pane ID -> per-node fluid node index
	pairs        map[int]int     // solid pane ID -> fluid pane ID
}

// NewRocface builds the transfer module between a fluid and a solid
// window. The windows must hold the same number of local panes.
func NewRocface(fluid, solid *roccom.Window, clock rt.Clock, costPerNode float64) (*Rocface, error) {
	f := &Rocface{
		fluid: fluid, solid: solid, clock: clock, costPerNode: costPerNode,
		maps:  make(map[int][]int32),
		pairs: make(map[int]int),
	}
	if err := f.RebuildMaps(); err != nil {
		return nil, err
	}
	return f, nil
}

// RebuildMaps recomputes the pane pairing and node projections (called
// after refinement changes the meshes).
func (f *Rocface) RebuildMaps() error {
	fids := f.fluid.PaneIDs()
	sids := f.solid.PaneIDs()
	if len(fids) != len(sids) {
		return fmt.Errorf("rocface: %d fluid panes vs %d solid panes", len(fids), len(sids))
	}
	f.maps = make(map[int][]int32, len(sids))
	f.pairs = make(map[int]int, len(sids))
	for i, sid := range sids {
		fp, _ := f.fluid.Pane(fids[i])
		sp, _ := f.solid.Pane(sid)
		f.pairs[sid] = fids[i]
		f.maps[sid] = nearestNodes(sp, fp)
	}
	return nil
}

// nearestNodes maps each node of dst to its nearest node of src by
// Euclidean distance (brute force per pane; panes are small by design).
func nearestNodes(dst, src *roccom.Pane) []int32 {
	out := make([]int32, dst.Block.NumNodes())
	for n := range out {
		x, y, z := dst.Block.Node(n)
		best, bestD := 0, math.Inf(1)
		for m := 0; m < src.Block.NumNodes(); m++ {
			sx, sy, sz := src.Block.Node(m)
			d := (sx-x)*(sx-x) + (sy-y)*(sy-y) + (sz-z)*(sz-z)
			if d < bestD {
				best, bestD = m, d
			}
		}
		out[n] = int32(best)
	}
	return out
}

// Name implements Solver (Rocface participates in the step loop as the
// transfer stage).
func (f *Rocface) Name() string { return "Rocface" }

// Window implements Solver; Rocface's primary window is the interface
// (we report the solid window, which receives the transfer).
func (f *Rocface) Window() *roccom.Window { return f.solid }

// StableDt implements Solver: the transfer imposes no timestep bound.
func (f *Rocface) StableDt() float64 { return math.Inf(1) }

// Step implements Solver: it transfers fluid pressure to solid traction.
func (f *Rocface) Step(dt float64) {
	var nodes int
	for _, sid := range f.solid.PaneIDs() {
		sp, _ := f.solid.Pane(sid)
		fp, _ := f.fluid.Pane(f.pairs[sid])
		if fp == nil {
			continue
		}
		nodes += sp.Block.NumNodes()
		f.transferPane(sp, fp)
	}
	f.clock.Compute(float64(nodes) * f.costPerNode)
}

func (f *Rocface) transferPane(sp, fp *roccom.Pane) {
	trac, _ := sp.Array("traction")
	pr, _ := fp.Array("pressure")
	m := f.maps[sp.ID]
	for n := range m {
		trac.F64[n] = pr.F64[m[n]]
	}
}

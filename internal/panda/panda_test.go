package panda

import (
	"fmt"
	"testing"
	"testing/quick"

	"genxio/internal/mpi"
	"genxio/internal/rt"
	"genxio/internal/stats"
)

func TestBlockRangePartitions(t *testing.T) {
	f := func(dimRaw, nRaw uint8) bool {
		dim := int(dimRaw%200) + 1
		n := int(nRaw%16) + 1
		if n > dim {
			n = dim
		}
		prev := 0
		for b := 0; b < n; b++ {
			lo, hi := blockRange(dim, n, b)
			if lo != prev || hi <= lo {
				return false
			}
			prev = hi
		}
		return prev == dim
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClientPiecesTile(t *testing.T) {
	spec := ArraySpec{Name: "a", Dims: []int{13, 9, 7}, ClientMesh: []int{3, 2, 2}}
	if err := spec.Validate(12); err != nil {
		t.Fatal(err)
	}
	covered := make([]bool, spec.NumElems())
	for c := 0; c < 12; c++ {
		p := ClientPiece(spec, c)
		for i := p.Lo[0]; i < p.Hi[0]; i++ {
			for j := p.Lo[1]; j < p.Hi[1]; j++ {
				for k := p.Lo[2]; k < p.Hi[2]; k++ {
					idx := (i*9+j)*7 + k
					if covered[idx] {
						t.Fatalf("element (%d,%d,%d) owned twice", i, j, k)
					}
					covered[idx] = true
				}
			}
		}
	}
	for idx, ok := range covered {
		if !ok {
			t.Fatalf("element %d unowned", idx)
		}
	}
}

func TestSpecValidation(t *testing.T) {
	bad := []ArraySpec{
		{Name: "", Dims: []int{4}, ClientMesh: []int{2}},
		{Name: "x", Dims: []int{4, 4}, ClientMesh: []int{2}},
		{Name: "x", Dims: []int{4}, ClientMesh: []int{5}},
		{Name: "x", Dims: []int{4}, ClientMesh: []int{0}},
	}
	for i, s := range bad {
		if s.Validate(2) == nil && s.Validate(5) == nil && s.Validate(0) == nil {
			t.Fatalf("bad spec %d accepted", i)
		}
	}
	good := ArraySpec{Name: "x", Dims: []int{8, 6}, ClientMesh: []int{2, 3}}
	if err := good.Validate(6); err != nil {
		t.Fatal(err)
	}
	if err := good.Validate(5); err == nil {
		t.Fatal("client count mismatch accepted")
	}
}

// globalFill gives element (i,j,...) a unique deterministic value.
func globalFill(spec ArraySpec, flat int) float64 { return float64(flat)*1.5 + 7 }

// fillPiece builds client c's subarray data row-major over the piece.
func fillPiece(spec ArraySpec, c int) []float64 {
	p := ClientPiece(spec, c)
	out := make([]float64, 0, p.NumElems())
	nd := len(spec.Dims)
	idx := append([]int(nil), p.Lo...)
	for {
		flat := 0
		for d := 0; d < nd; d++ {
			flat = flat*spec.Dims[d] + idx[d]
		}
		out = append(out, globalFill(spec, flat))
		d := nd - 1
		for d >= 0 {
			idx[d]++
			if idx[d] < p.Hi[d] {
				break
			}
			idx[d] = p.Lo[d]
			d--
		}
		if d < 0 {
			return out
		}
	}
}

// runCollective writes a distributed array with mWrite servers and reads
// it back with mRead servers, verifying every client's piece.
func runCollective(t *testing.T, spec ArraySpec, nclients, mWrite, mRead int) {
	t.Helper()
	fs := rt.NewMemFS()

	worldSize := nclients + mWrite
	srv := make([]int, mWrite)
	for i := range srv {
		srv[i] = i // servers first
	}
	world := mpi.NewChanWorld(fs, 1)
	err := world.Run(worldSize, func(ctx mpi.Ctx) error {
		c := ctx.Comm()
		var data []float64
		if c.Rank() >= mWrite {
			data = fillPiece(spec, c.Rank()-mWrite)
		}
		return CollectiveWrite(c, ctx.FS(), srv, spec, data, "arr.panda")
	})
	if err != nil {
		t.Fatal(err)
	}

	worldSize = nclients + mRead
	srv = make([]int, mRead)
	for i := range srv {
		srv[i] = i
	}
	world = mpi.NewChanWorld(fs, 1)
	err = world.Run(worldSize, func(ctx mpi.Ctx) error {
		c := ctx.Comm()
		got, err := CollectiveRead(c, ctx.FS(), srv, spec, "arr.panda")
		if err != nil {
			return err
		}
		if c.Rank() < mRead {
			if got != nil {
				return fmt.Errorf("server returned data")
			}
			return nil
		}
		want := fillPiece(spec, c.Rank()-mRead)
		if len(got) != len(want) {
			return fmt.Errorf("client %d got %d elements, want %d", c.Rank()-mRead, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				return fmt.Errorf("client %d element %d = %v, want %v", c.Rank()-mRead, i, got[i], want[i])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCollectiveRoundTrip1D(t *testing.T) {
	runCollective(t, ArraySpec{Name: "v", Dims: []int{97}, ClientMesh: []int{4}}, 4, 2, 2)
}

func TestCollectiveRoundTrip2D(t *testing.T) {
	runCollective(t, ArraySpec{Name: "m", Dims: []int{24, 17}, ClientMesh: []int{3, 2}}, 6, 2, 2)
}

func TestCollectiveRoundTrip3D(t *testing.T) {
	runCollective(t, ArraySpec{Name: "c", Dims: []int{11, 8, 5}, ClientMesh: []int{2, 2, 2}}, 8, 3, 3)
}

func TestReadWithDifferentServerCount(t *testing.T) {
	// Written with 2 servers, read with 3 and with 1 — the canonical
	// layout makes the server count a runtime choice, like Rocpanda's
	// restart.
	spec := ArraySpec{Name: "m", Dims: []int{30, 10}, ClientMesh: []int{6, 1}}
	runCollective(t, spec, 6, 2, 3)
	runCollective(t, spec, 6, 2, 1)
}

func TestCollectivePropertyRandomShapes(t *testing.T) {
	rng := stats.NewRNG(77)
	for trial := 0; trial < 8; trial++ {
		nd := 1 + rng.Intn(3)
		dims := make([]int, nd)
		meshd := make([]int, nd)
		nclients := 1
		for d := 0; d < nd; d++ {
			meshd[d] = 1 + rng.Intn(3)
			dims[d] = meshd[d] + rng.Intn(12)
			nclients *= meshd[d]
		}
		spec := ArraySpec{Name: "r", Dims: dims, ClientMesh: meshd}
		mW := 1 + rng.Intn(3)
		mR := 1 + rng.Intn(3)
		t.Run(fmt.Sprintf("dims=%v mesh=%v mW=%d mR=%d", dims, meshd, mW, mR), func(t *testing.T) {
			runCollective(t, spec, nclients, mW, mR)
		})
	}
}

func TestWriteValidation(t *testing.T) {
	// A collectively invalid spec must fail locally on every rank before
	// any communication (so no rank strands its peers).
	fs := rt.NewMemFS()
	world := mpi.NewChanWorld(fs, 1)
	bad := ArraySpec{Name: "v", Dims: []int{10}, ClientMesh: []int{3}} // mesh != client count
	err := world.Run(3, func(ctx mpi.Ctx) error {
		c := ctx.Comm()
		if err := CollectiveWrite(c, ctx.FS(), []int{0}, bad, nil, "bad.panda"); err == nil {
			return fmt.Errorf("invalid spec accepted on rank %d", c.Rank())
		}
		if _, err := CollectiveRead(c, ctx.FS(), []int{0}, bad, "bad.panda"); err == nil {
			return fmt.Errorf("invalid spec accepted by read on rank %d", c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRoleValidation(t *testing.T) {
	world := mpi.NewChanWorld(rt.NewMemFS(), 1)
	spec := ArraySpec{Name: "v", Dims: []int{10}, ClientMesh: []int{2}}
	err := world.Run(2, func(ctx mpi.Ctx) error {
		c := ctx.Comm()
		if err := CollectiveWrite(c, ctx.FS(), nil, spec, nil, "x"); err == nil {
			return fmt.Errorf("no servers accepted")
		}
		if err := CollectiveWrite(c, ctx.FS(), []int{0, 1}, spec, nil, "x"); err == nil {
			return fmt.Errorf("all-server world accepted")
		}
		if err := CollectiveWrite(c, ctx.FS(), []int{9}, spec, nil, "x"); err == nil {
			return fmt.Errorf("out-of-range server accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestHeaderValidation(t *testing.T) {
	fs := rt.NewMemFS()
	spec := ArraySpec{Name: "v", Dims: []int{4, 3}, ClientMesh: []int{1, 1}}

	f, _ := fs.Create("garbage")
	f.WriteAt([]byte("not a panda file at all....."), 0)
	if err := checkHeader(f, spec); err == nil {
		t.Fatal("garbage header accepted")
	}
	f.Close()

	g, _ := fs.Create("wrongdims")
	g.WriteAt(encodeHeader(ArraySpec{Name: "v", Dims: []int{4, 9}, ClientMesh: []int{1, 1}}), 0)
	if err := checkHeader(g, spec); err == nil {
		t.Fatal("dim mismatch accepted")
	}
	g.Close()

	h, _ := fs.Create("wrongrank")
	h.WriteAt(encodeHeader(ArraySpec{Name: "v", Dims: []int{12}, ClientMesh: []int{1}}), 0)
	// Pad so the 2-D header read does not hit EOF before the check.
	h.WriteAt([]byte{0, 0, 0, 0}, 12)
	if err := checkHeader(h, spec); err == nil {
		t.Fatal("rank mismatch accepted")
	}
	h.Close()
}

func TestSliceRegionRoundTrip(t *testing.T) {
	rng := stats.NewRNG(31)
	for trial := 0; trial < 50; trial++ {
		nd := 1 + rng.Intn(3)
		bb := Subarray{Lo: make([]int, nd), Hi: make([]int, nd)}
		reg := Subarray{Lo: make([]int, nd), Hi: make([]int, nd)}
		for d := 0; d < nd; d++ {
			bb.Lo[d] = rng.Intn(5)
			bb.Hi[d] = bb.Lo[d] + 1 + rng.Intn(6)
			reg.Lo[d] = bb.Lo[d] + rng.Intn(bb.Hi[d]-bb.Lo[d])
			reg.Hi[d] = reg.Lo[d] + 1 + rng.Intn(bb.Hi[d]-reg.Lo[d])
		}
		box := make([]float64, bb.NumElems())
		for i := range box {
			box[i] = rng.Float64()
		}
		orig := append([]float64(nil), box...)

		// Extract the region, overwrite it with sentinels in the box,
		// store it back: the box must be restored exactly, and elements
		// outside the region must never have changed.
		out := make([]float64, reg.NumElems())
		sliceRegion(box, bb, reg, out, false)
		if string(fmt.Sprint(box)) != fmt.Sprint(orig) {
			t.Fatal("extract mutated the box")
		}
		marked := make([]float64, reg.NumElems())
		for i := range marked {
			marked[i] = -1
		}
		sliceRegion(box, bb, reg, marked, true)
		sliceRegion(box, bb, reg, out, false)
		for _, v := range out {
			if v != -1 {
				t.Fatalf("store/extract mismatch: %v", v)
			}
		}
		// Restore and compare everything.
		restore := make([]float64, reg.NumElems())
		idx := 0
		_ = idx
		sliceRegion(orig, bb, reg, restore, false)
		sliceRegion(box, bb, reg, restore, true)
		for i := range box {
			if box[i] != orig[i] {
				t.Fatalf("trial %d: box[%d] = %v, want %v", trial, i, box[i], orig[i])
			}
		}
	}
}

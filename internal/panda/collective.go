package panda

import (
	"encoding/binary"
	"fmt"

	"genxio/internal/hdf"
	"genxio/internal/mpi"
	"genxio/internal/rt"
)

// Collective message tags (application tag space).
const (
	tagWrite = 3100 + iota
	tagRead
)

// File header: magic, ndims, dims... (little-endian uint32s).
const pandaMagic = 0x50414E44 // "PAND"

func headerSize(nd int) int64 { return int64(4 * (2 + nd)) }

func encodeHeader(spec ArraySpec) []byte {
	b := binary.LittleEndian.AppendUint32(nil, pandaMagic)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(spec.Dims)))
	for _, d := range spec.Dims {
		b = binary.LittleEndian.AppendUint32(b, uint32(d))
	}
	return b
}

func checkHeader(f rt.File, spec ArraySpec) error {
	hdr := make([]byte, headerSize(len(spec.Dims)))
	if _, err := f.ReadAt(hdr, 0); err != nil {
		return fmt.Errorf("panda: reading header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr) != pandaMagic {
		return fmt.Errorf("panda: %s is not a Panda array file", f.Name())
	}
	if int(binary.LittleEndian.Uint32(hdr[4:])) != len(spec.Dims) {
		return fmt.Errorf("panda: %s rank mismatch", f.Name())
	}
	for d, want := range spec.Dims {
		if got := int(binary.LittleEndian.Uint32(hdr[8+4*d:])); got != want {
			return fmt.Errorf("panda: %s dim %d is %d, want %d", f.Name(), d, got, want)
		}
	}
	return nil
}

// roles resolves the caller's role from the server rank list.
func roles(comm mpi.Comm, srvRanks []int) (isServer bool, srvIdx int, clients []int, err error) {
	if len(srvRanks) == 0 || len(srvRanks) >= comm.Size() {
		return false, 0, nil, fmt.Errorf("panda: %d servers in a world of %d", len(srvRanks), comm.Size())
	}
	set := make(map[int]bool, len(srvRanks))
	for i, r := range srvRanks {
		if r < 0 || r >= comm.Size() || set[r] {
			return false, 0, nil, fmt.Errorf("panda: bad server rank %d", r)
		}
		set[r] = true
		if r == comm.Rank() {
			isServer, srvIdx = true, i
		}
	}
	for r := 0; r < comm.Size(); r++ {
		if !set[r] {
			clients = append(clients, r)
		}
	}
	return isServer, srvIdx, clients, nil
}

// CollectiveWrite writes a (BLOCK,...,BLOCK)-distributed global array to
// one canonical row-major file, server-directed: every rank of comm must
// call it; ranks listed in srvRanks act as I/O servers (they pass nil
// data), the rest are clients passing their subarray (row-major over their
// piece). The operation completes collectively.
func CollectiveWrite(comm mpi.Comm, fs rt.FS, srvRanks []int, spec ArraySpec, myData []float64, file string) error {
	isServer, srvIdx, clients, err := roles(comm, srvRanks)
	if err != nil {
		return err
	}
	if err := spec.Validate(len(clients)); err != nil {
		return err
	}
	m := len(srvRanks)

	if comm.Rank() == srvRanks[0] {
		f, err := fs.Create(file)
		if err != nil {
			return err
		}
		if _, err := f.WriteAt(encodeHeader(spec), 0); err != nil {
			f.Close()
			return err
		}
		// Reserve the full extent so stripe writes at offsets are safe
		// regardless of completion order.
		if err := f.Truncate(headerSize(len(spec.Dims)) + int64(8*spec.NumElems())); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	comm.Barrier()

	if !isServer {
		cIdx := clientIndex(clients, comm.Rank())
		piece := ClientPiece(spec, cIdx)
		if want := piece.NumElems(); len(myData) != want {
			return fmt.Errorf("panda: client %d passed %d elements, piece has %d", cIdx, len(myData), want)
		}
		for s := 0; s < m; s++ {
			lo, hi := serverStripe(spec, m, s)
			reg, ok := intersect(piece, lo, hi)
			if !ok {
				continue
			}
			slice := make([]float64, reg.NumElems())
			sliceRegion(myData, piece, reg, slice, false)
			comm.Send(srvRanks[s], tagWrite, hdf.F64Bytes(slice))
		}
		comm.Barrier()
		return nil
	}

	// Server: assemble the stripe from every intersecting client, then
	// write it at its canonical offset.
	lo, hi := serverStripe(spec, m, srvIdx)
	stripe := Subarray{Lo: make([]int, len(spec.Dims)), Hi: append([]int(nil), spec.Dims...)}
	stripe.Lo[0], stripe.Hi[0] = lo, hi
	band := make([]float64, (hi-lo)*rowSize(spec))
	for cIdx, cRank := range clients {
		piece := ClientPiece(spec, cIdx)
		reg, ok := intersect(piece, lo, hi)
		if !ok {
			continue
		}
		data, _ := comm.Recv(cRank, tagWrite)
		vals := hdf.BytesF64(data)
		if len(vals) != reg.NumElems() {
			return fmt.Errorf("panda: server %d got %d elements from client %d, want %d",
				srvIdx, len(vals), cIdx, reg.NumElems())
		}
		sliceRegion(band, stripe, reg, vals, true)
	}
	f, err := fs.Open(file)
	if err != nil {
		return err
	}
	off := headerSize(len(spec.Dims)) + int64(8*lo*rowSize(spec))
	if _, err := f.WriteAt(hdf.F64Bytes(band), off); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	comm.Barrier()
	return nil
}

// CollectiveRead is the inverse redistribution: servers read their stripes
// of the canonical file and ship the intersecting regions to the clients,
// which assemble their pieces. The server count may differ from the
// writing run. Clients receive their subarray in the returned slice;
// servers return nil.
func CollectiveRead(comm mpi.Comm, fs rt.FS, srvRanks []int, spec ArraySpec, file string) ([]float64, error) {
	isServer, srvIdx, clients, err := roles(comm, srvRanks)
	if err != nil {
		return nil, err
	}
	if err := spec.Validate(len(clients)); err != nil {
		return nil, err
	}
	m := len(srvRanks)

	if isServer {
		f, err := fs.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if err := checkHeader(f, spec); err != nil {
			return nil, err
		}
		lo, hi := serverStripe(spec, m, srvIdx)
		stripe := Subarray{Lo: make([]int, len(spec.Dims)), Hi: append([]int(nil), spec.Dims...)}
		stripe.Lo[0], stripe.Hi[0] = lo, hi
		raw := make([]byte, 8*(hi-lo)*rowSize(spec))
		off := headerSize(len(spec.Dims)) + int64(8*lo*rowSize(spec))
		if _, err := f.ReadAt(raw, off); err != nil {
			return nil, err
		}
		band := hdf.BytesF64(raw)
		for cIdx, cRank := range clients {
			piece := ClientPiece(spec, cIdx)
			reg, ok := intersect(piece, lo, hi)
			if !ok {
				continue
			}
			slice := make([]float64, reg.NumElems())
			sliceRegion(band, stripe, reg, slice, false)
			comm.Send(cRank, tagRead, hdf.F64Bytes(slice))
		}
		comm.Barrier()
		return nil, nil
	}

	cIdx := clientIndex(clients, comm.Rank())
	piece := ClientPiece(spec, cIdx)
	out := make([]float64, piece.NumElems())
	for s := 0; s < m; s++ {
		lo, hi := serverStripe(spec, m, s)
		reg, ok := intersect(piece, lo, hi)
		if !ok {
			continue
		}
		data, _ := comm.Recv(srvRanks[s], tagRead)
		vals := hdf.BytesF64(data)
		if len(vals) != reg.NumElems() {
			return nil, fmt.Errorf("panda: client %d got %d elements from server %d, want %d",
				cIdx, len(vals), s, reg.NumElems())
		}
		sliceRegion(out, piece, reg, vals, true)
	}
	comm.Barrier()
	return out, nil
}

func clientIndex(clients []int, rank int) int {
	for i, r := range clients {
		if r == rank {
			return i
		}
	}
	return -1
}

// Package panda implements the classic Panda parallel I/O library's
// server-directed collective I/O for regular, HPF-style (BLOCK,...,BLOCK)
// distributed multi-dimensional arrays — the system Rocpanda was derived
// from (Seamons et al., "Server-directed collective I/O in Panda", SC'95,
// the paper's reference [19]).
//
// Where Rocpanda ships opaque, irregular data blocks, Panda understands
// the global array: each client owns a rectangular subarray determined by
// its coordinates in a logical client mesh, and the dedicated servers
// reorganize incoming subarrays into the canonical row-major file layout,
// each server owning a contiguous stripe of the global array. Reads
// perform the inverse redistribution, and — like Rocpanda's restart — the
// number of servers reading may differ from the number that wrote, since
// the file layout is canonical.
//
// The package exists both as a usable collective-I/O facility for regular
// arrays and as the baseline that motivates the paper: GENx's data has no
// global arrays, which is exactly why Rocpanda had to replace these
// distribution descriptors with data blocks.
package panda

import "fmt"

// ArraySpec describes a global float64 array distributed (BLOCK,...,BLOCK)
// over a logical client mesh.
type ArraySpec struct {
	// Name names the array (also the dataset name in the file).
	Name string
	// Dims are the global element counts per dimension.
	Dims []int
	// ClientMesh gives the number of clients along each dimension; its
	// product must equal the number of clients.
	ClientMesh []int
}

// Validate checks the spec against a client count.
func (s ArraySpec) Validate(nclients int) error {
	if s.Name == "" {
		return fmt.Errorf("panda: array with empty name")
	}
	if len(s.Dims) == 0 || len(s.Dims) != len(s.ClientMesh) {
		return fmt.Errorf("panda: %q has %d dims but %d mesh dims", s.Name, len(s.Dims), len(s.ClientMesh))
	}
	prod := 1
	for d, n := range s.ClientMesh {
		if n < 1 || s.Dims[d] < n {
			return fmt.Errorf("panda: %q dim %d: %d elements over %d clients", s.Name, d, s.Dims[d], n)
		}
		prod *= n
	}
	if prod != nclients {
		return fmt.Errorf("panda: %q client mesh %v needs %d clients, have %d", s.Name, s.ClientMesh, prod, nclients)
	}
	return nil
}

// NumElems returns the global element count.
func (s ArraySpec) NumElems() int {
	n := 1
	for _, d := range s.Dims {
		n *= d
	}
	return n
}

// blockRange returns the [lo,hi) index range of block b out of n along a
// dimension of extent dim (HPF BLOCK distribution: remainders go to the
// leading blocks).
func blockRange(dim, n, b int) (lo, hi int) {
	base := dim / n
	rem := dim % n
	lo = b*base + min(b, rem)
	size := base
	if b < rem {
		size++
	}
	return lo, lo + size
}

// clientCoords returns client c's coordinates in the client mesh
// (row-major).
func clientCoords(meshDims []int, c int) []int {
	coords := make([]int, len(meshDims))
	for d := len(meshDims) - 1; d >= 0; d-- {
		coords[d] = c % meshDims[d]
		c /= meshDims[d]
	}
	return coords
}

// Subarray describes one client's rectangular piece: per-dimension [Lo,Hi)
// ranges.
type Subarray struct {
	Lo, Hi []int
}

// NumElems returns the piece's element count.
func (s Subarray) NumElems() int {
	n := 1
	for d := range s.Lo {
		n *= s.Hi[d] - s.Lo[d]
	}
	return n
}

// ClientPiece returns the subarray owned by client c under spec.
func ClientPiece(spec ArraySpec, c int) Subarray {
	coords := clientCoords(spec.ClientMesh, c)
	sub := Subarray{Lo: make([]int, len(spec.Dims)), Hi: make([]int, len(spec.Dims))}
	for d := range spec.Dims {
		sub.Lo[d], sub.Hi[d] = blockRange(spec.Dims[d], spec.ClientMesh[d], coords[d])
	}
	return sub
}

// serverStripe returns the rows (dimension-0 range) server s of m owns in
// the canonical file layout.
func serverStripe(spec ArraySpec, m, s int) (lo, hi int) {
	return blockRange(spec.Dims[0], m, s)
}

// rowSize returns the number of elements in one dimension-0 row (product
// of trailing dims).
func rowSize(spec ArraySpec) int {
	n := 1
	for _, d := range spec.Dims[1:] {
		n *= d
	}
	return n
}

// intersect intersects a subarray with a dimension-0 range; ok is false if
// empty.
func intersect(sub Subarray, lo, hi int) (Subarray, bool) {
	out := Subarray{Lo: append([]int(nil), sub.Lo...), Hi: append([]int(nil), sub.Hi...)}
	if lo > out.Lo[0] {
		out.Lo[0] = lo
	}
	if hi < out.Hi[0] {
		out.Hi[0] = hi
	}
	if out.Lo[0] >= out.Hi[0] {
		return out, false
	}
	return out, true
}

// sliceRegion copies the region reg out of (or into, when store is true) a
// buffer laid out row-major over the bounding box bb. The region's data
// itself is row-major over reg.
func sliceRegion(bbData []float64, bb, reg Subarray, regData []float64, store bool) {
	nd := len(bb.Lo)
	// Iterate the region in row-major order with an odometer.
	idx := append([]int(nil), reg.Lo...)
	// Strides of the bounding box.
	strides := make([]int, nd)
	stride := 1
	for d := nd - 1; d >= 0; d-- {
		strides[d] = stride
		stride *= bb.Hi[d] - bb.Lo[d]
	}
	rowLen := reg.Hi[nd-1] - reg.Lo[nd-1]
	pos := 0
	for {
		// Offset of idx within the bounding box.
		off := 0
		for d := 0; d < nd; d++ {
			off += (idx[d] - bb.Lo[d]) * strides[d]
		}
		if store {
			copy(bbData[off:off+rowLen], regData[pos:pos+rowLen])
		} else {
			copy(regData[pos:pos+rowLen], bbData[off:off+rowLen])
		}
		pos += rowLen
		// Advance the odometer, skipping the last dimension (handled
		// as whole rows).
		d := nd - 2
		for d >= 0 {
			idx[d]++
			if idx[d] < reg.Hi[d] {
				break
			}
			idx[d] = reg.Lo[d]
			d--
		}
		if d < 0 {
			return
		}
	}
}

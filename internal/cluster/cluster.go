// Package cluster implements the simulated evaluation platforms: an
// mpi.World whose ranks run in virtual time on modelled nodes, CPUs,
// network links, and shared filesystems. The same Rocpanda/Rochdf library
// code that runs for real on mpi.ChanWorld runs here unmodified, which is
// how the paper's performance tables and figures are regenerated.
//
// The model captures the effects the paper's results hinge on:
//
//   - Message cost: per-message sender CPU overhead (growing mildly with
//     world size, as on Turing's loaded message system), NIC occupancy at
//     both ends for inter-node transfers (so a Rocpanda server's ingest
//     serializes at its NIC), and a shared per-node memory bus for
//     intra-node transfers (so 15 clients feeding the co-located server
//     share the SMP bus, the 1→15 ramp of Figure 3(a)).
//
//   - OS noise: each node continuously generates operating-system work.
//     If the node has an idle CPU the work is absorbed there for free —
//     this is why leaving one processor per SMP node idle ("15NS") or
//     giving it to a mostly-blocked I/O server ("15S") keeps computation
//     fast, while using all 16 CPUs ("16NS") lets the noise land on
//     compute processes. Barriers turn the per-process noise into a max
//     across all processes, so the 16NS penalty grows with scale
//     (Figure 3(b)).
//
//   - Shared filesystems: fssim's NFS (Turing) and GPFS (Frost) models.
package cluster

import (
	"fmt"

	"genxio/internal/fssim"
	"genxio/internal/mpi"
	"genxio/internal/sim"
	"genxio/internal/stats"
)

// Platform holds the calibrated constants of a simulated machine.
// Bandwidths are bytes/s, latencies and overheads seconds.
type Platform struct {
	Name        string
	CPUsPerNode int

	// Network.
	LinkBW       float64 // inter-node bandwidth per node NIC
	LinkLatency  float64 // inter-node propagation latency
	MemBW        float64 // intra-node transfer bandwidth (shared bus)
	SendOverhead float64 // per-message sender CPU cost
	// SendOverheadPerRank grows the per-message cost with world size,
	// modelling a message system that does not scale (Turing).
	SendOverheadPerRank float64

	// MemcpyBW is the local buffer-copy bandwidth used by buffering I/O
	// schemes (T-Rochdf local buffers, Rocpanda server-side buffers).
	MemcpyBW float64

	// OS noise: when a node has no idle CPU, every compute interval is
	// stretched by NoiseFrac*(1+|N(0,1)|*NoiseSigma) on average, and the
	// node additionally suffers bursts (daemon wakeups, page flushes) at
	// NoiseBurstRate per saturated node-second, each stretching the
	// victim's interval by NoiseBurstFrac. Barriers turn the per-node
	// burst probability into a max across nodes, which is what makes the
	// all-CPUs-busy configuration degrade with scale (Figure 3(b)).
	NoiseFrac      float64
	NoiseSigma     float64
	NoiseBurstRate float64
	NoiseBurstFrac float64

	// NewFS builds the platform's shared filesystem model.
	NewFS func(env *sim.Env) fssim.Model
}

// Turing returns the development platform of Section 7.1: dual-CPU Linux
// nodes on Myrinet with a single-server NFS shared filesystem. It is a
// shared, unscheduled cluster, so noise is high.
func Turing() Platform {
	return Platform{
		Name:                "turing",
		CPUsPerNode:         2,
		LinkBW:              100e6,
		LinkLatency:         20e-6,
		MemBW:               700e6,
		SendOverhead:        30e-6,
		SendOverheadPerRank: 1.2e-6,
		MemcpyBW:            70e6,
		NoiseFrac:           0.02,
		NoiseSigma:          1.0,
		NewFS: func(env *sim.Env) fssim.Model {
			return fssim.NewNFS(env, fssim.NFSParams{})
		},
	}
}

// Frost returns the production platform of Section 7.2: 16-way POWER3 SMP
// nodes on SP Switch2 with a two-server GPFS filesystem.
func Frost() Platform {
	return Platform{
		Name:        "frost",
		CPUsPerNode: 16,
		LinkBW:      350e6,
		LinkLatency: 18e-6,
		// Effective intra-node MPI bandwidth for data-sized messages on
		// the 375 MHz POWER3 SMPs (both-side copies through the shared
		// bus), calibrated to Figure 3(a)'s per-node apparent
		// throughput.
		MemBW:               28e6,
		SendOverhead:        45e-6,
		SendOverheadPerRank: 0.05e-6,
		MemcpyBW:            300e6,
		NoiseFrac:           0.004,
		NoiseSigma:          1.0,
		NoiseBurstRate:      0.06,
		NoiseBurstFrac:      0.35,
		NewFS: func(env *sim.Env) fssim.Model {
			return fssim.NewGPFS(env, fssim.GPFSParams{})
		},
	}
}

// World is a simulated mpi.World on a Platform.
type World struct {
	plat Platform
	seed uint64
	rpn  int // ranks per node; defaults to CPUsPerNode

	// set by Run
	env     *sim.Env
	fsModel fssim.Model
	endTime float64
}

// NewWorld returns a world on platform p. All model randomness derives
// from seed.
func NewWorld(p Platform, seed uint64) *World {
	return &World{plat: p, seed: seed, rpn: p.CPUsPerNode}
}

// WithRanksPerNode overrides how many ranks are placed per node (the
// paper's 15-vs-16-processors-per-node configurations). It returns w.
func (w *World) WithRanksPerNode(k int) *World {
	if k >= 1 {
		w.rpn = k
	}
	return w
}

// VirtualTime returns the virtual end time of the last Run.
func (w *World) VirtualTime() float64 { return w.endTime }

// FSModel returns the filesystem model of the last Run (for traffic
// accounting).
func (w *World) FSModel() fssim.Model { return w.fsModel }

// node models one SMP node.
type node struct {
	id   int
	bus  *sim.Resource // intra-node transfer bus
	nic  *sim.Resource // inter-node link interface
	cpus int
	busy int // activities currently computing on this node
	rng  *stats.RNG
}

// Run implements mpi.World. It builds the platform, runs n ranks in
// virtual time, and returns the first rank error, a simulation deadlock
// error, or nil.
func (w *World) Run(n int, main func(mpi.Ctx) error) error {
	if n < 1 {
		return fmt.Errorf("cluster: world size %d < 1", n)
	}
	env := sim.NewEnv()
	w.env = env
	w.fsModel = w.plat.NewFS(env)
	rootRNG := stats.NewRNG(w.seed ^ 0x9e3779b97f4a7c15)

	numNodes := (n + w.rpn - 1) / w.rpn
	nodes := make([]*node, numNodes)
	for i := range nodes {
		nodes[i] = &node{
			id:   i,
			bus:  env.NewResource(fmt.Sprintf("node%d.bus", i), 1),
			nic:  env.NewResource(fmt.Sprintf("node%d.nic", i), 1),
			cpus: w.plat.CPUsPerNode,
			rng:  rootRNG.Split(),
		}
	}

	mailboxes := make([]*sim.Mailbox, n)
	for i := range mailboxes {
		mailboxes[i] = env.NewMailbox(fmt.Sprintf("rank%d", i))
	}

	errs := make([]error, n)
	for r := 0; r < n; r++ {
		r := r
		nd := nodes[r/w.rpn]
		env.Spawn(fmt.Sprintf("rank%d", r), func(p *sim.Proc) {
			clock := &simClock{p: p, node: nd, plat: &w.plat}
			ctx := &simCtx{
				world:  w,
				rank:   r,
				nranks: n,
				proc:   p,
				node:   nd,
				nodes:  nodes,
				boxes:  mailboxes,
				clock:  clock,
			}
			ctx.comm = mpi.NewWorldComm(&simEndpoint{ctx: ctx})
			defer func() {
				if pv := recover(); pv != nil {
					errs[r] = fmt.Errorf("cluster: rank %d panicked: %v", r, pv)
				}
			}()
			errs[r] = main(ctx)
		})
	}
	err := env.Run()
	w.endTime = env.Now()
	if err != nil {
		return err
	}
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// simClock implements rt.Clock for one simulated activity.
type simClock struct {
	p    *sim.Proc
	node *node
	plat *Platform
}

func (c *simClock) Now() float64 { return c.p.Env().Now() }

func (c *simClock) Sleep(d float64) { c.p.Wait(d) }

// Compute charges CPU work, stretched by OS noise when the node has no
// idle CPU to absorb it.
func (c *simClock) Compute(d float64) {
	if d <= 0 {
		return
	}
	nd := c.node
	nd.busy++
	if nd.busy >= nd.cpus {
		if c.plat.NoiseFrac > 0 {
			jitter := nd.rng.Normal(0, 1)
			if jitter < 0 {
				jitter = -jitter
			}
			d += d * c.plat.NoiseFrac * (1 + c.plat.NoiseSigma*jitter)
		}
		if c.plat.NoiseBurstRate > 0 {
			// In the common bulk-synchronous pattern only the last
			// rank entering a node's compute phase observes the node
			// as saturated, so effectively one draw happens per node
			// per phase; the burst probability is therefore the full
			// per-node rate over this interval.
			p := c.plat.NoiseBurstRate * d
			if p > 0.5 {
				p = 0.5
			}
			if nd.rng.Float64() < p {
				d += d * c.plat.NoiseBurstFrac
			}
		}
	}
	c.p.Wait(d)
	nd.busy--
}

package cluster

import (
	"fmt"
	"testing"

	"genxio/internal/fssim"
	"genxio/internal/mpi"
	"genxio/internal/rt"
	"genxio/internal/sim"
)

// quiet returns a Frost-like platform with noise disabled, for timing
// tests that need exact arithmetic.
func quiet() Platform {
	p := Frost()
	p.NoiseFrac = 0
	p.SendOverheadPerRank = 0
	return p
}

func TestVirtualTimeAdvances(t *testing.T) {
	w := NewWorld(quiet(), 1)
	err := w.Run(4, func(ctx mpi.Ctx) error {
		ctx.Clock().Compute(5)
		ctx.Comm().Barrier()
		ctx.Clock().Sleep(2)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	vt := w.VirtualTime()
	if vt < 7 || vt > 7.1 {
		t.Fatalf("virtual time %v, want ~7", vt)
	}
}

func TestSendRecvOnSim(t *testing.T) {
	w := NewWorld(quiet(), 1)
	err := w.Run(2, func(ctx mpi.Ctx) error {
		c := ctx.Comm()
		if c.Rank() == 0 {
			c.Send(1, 3, []byte("data"))
		} else {
			data, st := c.Recv(0, 3)
			if string(data) != "data" || st.Source != 0 {
				return fmt.Errorf("recv %q %+v", data, st)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIntraNodeCheaperThanInterNode(t *testing.T) {
	// With 2 ranks per node, ranks 0,1 share a node; 0,2 do not. The
	// platform's MemBW > LinkBW, and inter-node also pays latency and
	// two NIC passes.
	const size = 8 << 20
	measure := func(dst int) float64 {
		p := quiet()
		p.MemBW = 2 * p.LinkBW
		w := NewWorld(p, 1).WithRanksPerNode(2)
		var visible float64
		err := w.Run(4, func(ctx mpi.Ctx) error {
			c := ctx.Comm()
			switch c.Rank() {
			case 0:
				t0 := ctx.Clock().Now()
				c.Send(dst, 0, make([]byte, size))
				visible = ctx.Clock().Now() - t0
			case dst:
				c.Recv(0, 0)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return visible
	}
	intra := measure(1)
	inter := measure(2)
	if intra >= inter {
		t.Fatalf("intra-node send %.4fs not cheaper than inter-node %.4fs", intra, inter)
	}
}

func TestServerNICSerializesIngest(t *testing.T) {
	// Many senders on distinct nodes target one receiver: the receiver's
	// NIC must serialize the transfers, so total receive time scales
	// with the number of senders even though sends overlap.
	const size = 4 << 20
	recvAll := func(nsenders int) float64 {
		w := NewWorld(quiet(), 1).WithRanksPerNode(1) // every rank its own node
		var last float64
		err := w.Run(nsenders+1, func(ctx mpi.Ctx) error {
			c := ctx.Comm()
			if c.Rank() == 0 {
				for i := 0; i < nsenders; i++ {
					c.Recv(mpi.AnySource, 0)
				}
				last = ctx.Clock().Now()
				return nil
			}
			c.Send(0, 0, make([]byte, size))
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return last
	}
	t2 := recvAll(2)
	t8 := recvAll(8)
	// One pipelined source-side stage plus 2 (resp. 8) serialized
	// destination-NIC stages: expect a ratio of (1+8)/(1+2) = 3.
	if t8 < 2.7*t2 {
		t.Fatalf("ingest of 8 senders (%.4f) should be ~3x of 2 senders (%.4f)", t8, t2)
	}
}

func TestNoiseHitsOnlySaturatedNodes(t *testing.T) {
	// Fixed work per rank; 16 ranks/node vs 15 ranks/node on the Frost
	// platform. The saturated configuration must be measurably slower,
	// and the 15-per-node configuration must be essentially noise-free.
	const work = 10.0
	run := func(rpn, n int) float64 {
		p := Frost()
		w := NewWorld(p, 42).WithRanksPerNode(rpn)
		err := w.Run(n, func(ctx mpi.Ctx) error {
			for step := 0; step < 5; step++ {
				ctx.Clock().Compute(work / 5)
				ctx.Comm().Barrier()
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return w.VirtualTime()
	}
	t16 := run(16, 64) // 4 nodes, saturated
	t15 := run(15, 60) // 4 nodes, one idle CPU each
	if t15 > work*1.02 {
		t.Fatalf("15/node config took %.3f, want ~%.1f (noise should be absorbed)", t15, work)
	}
	if t16 < work*1.02 {
		t.Fatalf("16/node config took %.3f, want measurably more than %.1f", t16, work)
	}
}

func TestNoisePenaltyGrowsWithScale(t *testing.T) {
	run := func(n int) float64 {
		w := NewWorld(Frost(), 7).WithRanksPerNode(16)
		err := w.Run(n, func(ctx mpi.Ctx) error {
			for step := 0; step < 10; step++ {
				ctx.Clock().Compute(1)
				ctx.Comm().Barrier()
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return w.VirtualTime()
	}
	small := run(16)  // 1 node
	large := run(256) // 16 nodes
	if large <= small {
		t.Fatalf("barrier-amplified noise should grow with scale: %d nodes %.3f vs 1 node %.3f",
			16, large, small)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() float64 {
		w := NewWorld(Turing(), 99)
		err := w.Run(8, func(ctx mpi.Ctx) error {
			c := ctx.Comm()
			for i := 0; i < 3; i++ {
				ctx.Clock().Compute(0.5)
				sum := c.AllreduceSum(float64(c.Rank()))
				if sum != 28 {
					return fmt.Errorf("sum %v", sum)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return w.VirtualTime()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed gave %v and %v", a, b)
	}
	w := NewWorld(Turing(), 100)
	w.Run(8, func(ctx mpi.Ctx) error {
		ctx.Clock().Compute(0.5)
		ctx.Comm().Barrier()
		ctx.Clock().Compute(0.5)
		ctx.Comm().Barrier()
		ctx.Clock().Compute(0.5)
		ctx.Comm().Barrier()
		return nil
	})
	if w.VirtualTime() == a {
		t.Log("different seed coincidentally equal (unlikely but not fatal)")
	}
}

func TestSimFSChargesTime(t *testing.T) {
	w := NewWorld(quiet(), 1)
	err := w.Run(1, func(ctx mpi.Ctx) error {
		f, err := ctx.FS().Create("big")
		if err != nil {
			return err
		}
		t0 := ctx.Clock().Now()
		f.WriteAt(make([]byte, 32<<20), 0)
		f.Close()
		if el := ctx.Clock().Now() - t0; el <= 0.05 {
			return fmt.Errorf("32MB write charged only %.4fs", el)
		}
		// And the data is really there.
		g, err := ctx.FS().Open("big")
		if err != nil {
			return err
		}
		sz, _ := g.Size()
		if sz != 32<<20 {
			return fmt.Errorf("size %d", sz)
		}
		return g.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.FSModel().BytesWritten() != 32<<20 {
		t.Fatalf("accounting %d", w.FSModel().BytesWritten())
	}
}

func TestSpawnAndQueue(t *testing.T) {
	// A rank offloads writes to a background task via a queue: the rank's
	// visible time must not include the background write time.
	w := NewWorld(quiet(), 1)
	var visible, total float64
	err := w.Run(1, func(ctx mpi.Ctx) error {
		q := ctx.NewQueue(4)
		done := ctx.NewQueue(4)
		ctx.Spawn("io", func(tc rt.TaskCtx) {
			for {
				v, ok := q.Get(tc.Clock())
				if !ok {
					return
				}
				f, err := tc.FS().Create(v.(string))
				if err != nil {
					t.Error(err)
					return
				}
				f.WriteAt(make([]byte, 16<<20), 0)
				f.Close()
				done.Put(tc.Clock(), nil)
			}
		})
		t0 := ctx.Clock().Now()
		q.Put(ctx.Clock(), "bg.dat")
		visible = ctx.Clock().Now() - t0
		ctx.Clock().Compute(1)
		// Wait for the background write before finishing.
		done.Get(ctx.Clock())
		q.Close()
		total = ctx.Clock().Now()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if visible > 0.001 {
		t.Fatalf("enqueue cost %.5fs should be ~0", visible)
	}
	if total <= 0.05 {
		t.Fatalf("total %.4fs should include the background write", total)
	}
}

func TestSplitOnSimWorld(t *testing.T) {
	// The Rocpanda init pattern on the simulated platform.
	w := NewWorld(quiet(), 3).WithRanksPerNode(4)
	err := w.Run(8, func(ctx mpi.Ctx) error {
		c := ctx.Comm()
		isServer := c.Rank()%4 == 0
		color := 0
		if isServer {
			color = 1
		}
		sub := c.Split(color, c.Rank())
		if isServer && sub.Size() != 2 {
			return fmt.Errorf("server comm size %d", sub.Size())
		}
		if !isServer && sub.Size() != 6 {
			return fmt.Errorf("client comm size %d", sub.Size())
		}
		sub.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRankErrorAndPanicPropagate(t *testing.T) {
	w := NewWorld(quiet(), 1)
	sentinel := fmt.Errorf("rank failure")
	err := w.Run(2, func(ctx mpi.Ctx) error {
		if ctx.Comm().Rank() == 1 {
			return sentinel
		}
		return nil
	})
	if err != sentinel {
		t.Fatalf("err = %v", err)
	}
	w2 := NewWorld(quiet(), 1)
	err = w2.Run(1, func(ctx mpi.Ctx) error {
		panic("boom")
	})
	if err == nil {
		t.Fatal("panic not converted to error")
	}
}

func TestDeadlockReported(t *testing.T) {
	w := NewWorld(quiet(), 1)
	err := w.Run(2, func(ctx mpi.Ctx) error {
		if ctx.Comm().Rank() == 0 {
			ctx.Comm().Recv(1, 0) // never sent
		}
		return nil
	})
	if _, ok := err.(*sim.DeadlockError); !ok {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
}

func TestNodePlacementSim(t *testing.T) {
	w := NewWorld(quiet(), 1).WithRanksPerNode(3)
	err := w.Run(7, func(ctx mpi.Ctx) error {
		if want := ctx.Comm().Rank() / 3; ctx.Node() != want {
			return fmt.Errorf("rank %d on node %d, want %d", ctx.Comm().Rank(), ctx.Node(), want)
		}
		if ctx.ProcsPerNode() != 3 {
			return fmt.Errorf("ppn %d", ctx.ProcsPerNode())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGPFSOnFrostScalesBeyondNFS(t *testing.T) {
	// Sanity: writing the same volume from 8 ranks finishes much faster
	// on Frost (GPFS) than on Turing (NFS).
	const size = 8 << 20
	run := func(p Platform) float64 {
		w := NewWorld(p, 5)
		p2 := w
		err := p2.Run(8, func(ctx mpi.Ctx) error {
			f, err := ctx.FS().Create(fmt.Sprintf("f%d", ctx.Comm().Rank()))
			if err != nil {
				return err
			}
			f.WriteAt(make([]byte, size), 0)
			return f.Close()
		})
		if err != nil {
			t.Fatal(err)
		}
		return w.VirtualTime()
	}
	turing := run(Turing())
	frost := run(Frost())
	if frost > turing/2 {
		t.Fatalf("frost %.3fs vs turing %.3fs", frost, turing)
	}
}

func TestFSVariantsUsable(t *testing.T) {
	// Direct use of fssim models through the world, exercising List/Stat
	// via the simulated FS view.
	w := NewWorld(quiet(), 1)
	err := w.Run(2, func(ctx mpi.Ctx) error {
		c := ctx.Comm()
		name := fmt.Sprintf("snap/f%d", c.Rank())
		f, err := ctx.FS().Create(name)
		if err != nil {
			return err
		}
		f.WriteAt([]byte{1, 2, 3}, 0)
		f.Close()
		c.Barrier()
		names, err := ctx.FS().List("snap/")
		if err != nil {
			return err
		}
		if len(names) != 2 {
			return fmt.Errorf("List = %v", names)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var _ fssim.Model = w.FSModel()
}

func TestBurstNoiseOnlyOnSaturatedNodes(t *testing.T) {
	// Direct check of the burst model: a saturated node accumulates
	// burst penalties over many steps; a node with an idle CPU never
	// does, whatever the rates.
	run := func(rpn int) float64 {
		p := Frost()
		p.NoiseFrac = 0 // isolate bursts
		w := NewWorld(p, 123).WithRanksPerNode(rpn)
		err := w.Run(rpn*4, func(ctx mpi.Ctx) error {
			for s := 0; s < 50; s++ {
				ctx.Clock().Compute(0.2)
				ctx.Comm().Barrier()
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return w.VirtualTime()
	}
	saturated := run(16)
	idle := run(15)
	if idle > 10.15 { // ~10s work + barrier traffic, no bursts
		t.Fatalf("idle-CPU config took %.3f, want ~10 (no bursts)", idle)
	}
	if saturated < idle+0.08 { // expected burst penalty ~0.17s at this rate
		t.Fatalf("saturated config took %.3f, want clearly above idle %.3f", saturated, idle)
	}
}

package cluster

import (
	"fmt"

	"genxio/internal/mpi"
	"genxio/internal/rt"
	"genxio/internal/sim"
)

// simCtx is the per-rank mpi.Ctx on a simulated platform.
type simCtx struct {
	world  *World
	rank   int
	nranks int
	proc   *sim.Proc
	node   *node
	nodes  []*node
	boxes  []*sim.Mailbox
	clock  *simClock
	comm   mpi.Comm
	fs     rt.FS
	tasks  int
}

func (c *simCtx) Comm() mpi.Comm    { return c.comm }
func (c *simCtx) Clock() rt.Clock   { return c.clock }
func (c *simCtx) Node() int         { return c.node.id }
func (c *simCtx) ProcsPerNode() int { return c.world.rpn }

func (c *simCtx) FS() rt.FS {
	if c.fs == nil {
		c.fs = c.world.fsModel.View(c.proc)
	}
	return c.fs
}

// Spawn implements mpi.Ctx: the background activity becomes its own
// simulation process on the same node, with its own clock identity and
// filesystem view.
func (c *simCtx) Spawn(name string, fn func(rt.TaskCtx)) {
	c.tasks++
	pname := fmt.Sprintf("rank%d.%s%d", c.rank, name, c.tasks)
	c.proc.Env().Spawn(pname, func(p *sim.Proc) {
		clock := &simClock{p: p, node: c.node, plat: c.clock.plat}
		fn(&simTaskCtx{clock: clock, fs: c.world.fsModel.View(p)})
	})
}

// NewQueue implements mpi.Ctx.
func (c *simCtx) NewQueue(capacity int) rt.Queue {
	c.tasks++
	return &simQueue{q: c.proc.Env().NewQueue(fmt.Sprintf("rank%d.q%d", c.rank, c.tasks), capacity)}
}

type simTaskCtx struct {
	clock rt.Clock
	fs    rt.FS
}

func (t *simTaskCtx) Clock() rt.Clock { return t.clock }
func (t *simTaskCtx) FS() rt.FS       { return t.fs }

// simQueue adapts sim.Queue to rt.Queue; the rt.Clock argument carries the
// calling process's identity.
type simQueue struct {
	q *sim.Queue
}

func procOf(c rt.Clock) *sim.Proc {
	sc, ok := c.(*simClock)
	if !ok {
		panic("cluster: queue used with a non-simulation clock")
	}
	return sc.p
}

func (s *simQueue) Put(c rt.Clock, v interface{}) { s.q.Put(procOf(c), v) }

func (s *simQueue) Get(c rt.Clock) (interface{}, bool) { return s.q.Get(procOf(c)) }

func (s *simQueue) TryGet(c rt.Clock) (interface{}, bool) { return s.q.TryGet(procOf(c)) }

func (s *simQueue) Close() { s.q.Close() }

// simEndpoint implements mpi.Endpoint with the platform's network model.
type simEndpoint struct {
	ctx *simCtx
}

func (e *simEndpoint) GlobalRank() int { return e.ctx.rank }
func (e *simEndpoint) NumRanks() int   { return e.ctx.nranks }

// messageHeaderBytes approximates per-message envelope overhead on the
// wire.
const messageHeaderBytes = 64

// Send charges the sender's CPU overhead and source-side occupancy, then
// hands the message to a delivery daemon that models propagation and
// destination-side occupancy. The sender may reuse its buffer on return
// (the transport copies), and a send never blocks on the receiver.
func (e *simEndpoint) Send(dst int, m *mpi.Message) {
	c := e.ctx
	plat := c.clock.plat
	cp := *m
	cp.Data = append([]byte(nil), m.Data...)
	size := float64(len(cp.Data) + messageHeaderBytes)

	overhead := plat.SendOverhead + plat.SendOverheadPerRank*float64(c.nranks)
	c.proc.Wait(overhead)

	srcNode := c.node
	dstNode := c.nodes[dst/c.world.rpn]
	box := c.boxes[dst]
	if srcNode == dstNode {
		// Intra-node: one pass over the shared memory bus.
		srcNode.bus.Use(c.proc, size/plat.MemBW)
		box.Put(&cp)
		return
	}
	// Inter-node: occupy the source NIC, then propagate and occupy the
	// destination NIC from a delivery daemon so the sender is released
	// (eager protocol) while server-side ingest still serializes.
	srcNode.nic.Use(c.proc, size/plat.LinkBW)
	env := c.proc.Env()
	env.SpawnDaemon("msg", func(d *sim.Proc) {
		d.Wait(plat.LinkLatency)
		dstNode.nic.Use(d, size/plat.LinkBW)
		box.Put(&cp)
	})
}

func wrapPred(pred func(*mpi.Message) bool) func(interface{}) bool {
	return func(v interface{}) bool { return pred(v.(*mpi.Message)) }
}

func (e *simEndpoint) RecvMatch(pred func(*mpi.Message) bool) *mpi.Message {
	v := e.ctx.boxes[e.ctx.rank].Get(e.ctx.proc, wrapPred(pred))
	return v.(*mpi.Message)
}

func (e *simEndpoint) ProbeMatch(pred func(*mpi.Message) bool) *mpi.Message {
	v := e.ctx.boxes[e.ctx.rank].Probe(e.ctx.proc, wrapPred(pred))
	return v.(*mpi.Message)
}

func (e *simEndpoint) TryProbeMatch(pred func(*mpi.Message) bool) (*mpi.Message, bool) {
	v, ok := e.ctx.boxes[e.ctx.rank].TryProbe(wrapPred(pred))
	if !ok {
		return nil, false
	}
	return v.(*mpi.Message), true
}

// Package metrics is the library's observability registry: named
// counters, gauges, and histograms that the I/O stack (Rocpanda client
// and servers, Rochdf/T-Rochdf, the HDF writer/reader, rocman) records
// into, and that snapshots into a machine-readable, deterministic form —
// the per-phase accounting the paper's performance analysis is built on
// (buffered-write cost, background drain latency, overflow stalls,
// restart-scan time, failover retries).
//
// A Registry is safe for concurrent use from many ranks. Every accessor
// is nil-safe: a nil *Registry hands out nil metric handles whose methods
// are no-ops, so instrumented code needs no "is observability on?"
// branches — exactly like trace.Recorder.
//
// Snapshots are deterministic: names are emitted in sorted order (Go's
// encoding/json sorts map keys), histogram buckets are fixed at creation,
// and on the simulated platforms every observed value is virtual-time
// derived, so the same seed yields a byte-identical JSON snapshot.
package metrics

import (
	"encoding/json"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// TimeBuckets is the default histogram layout for durations in seconds:
// decades from 1µs to 1000s, suiting both per-block drains (sub-ms) and
// whole restart scans (tens of seconds).
func TimeBuckets() []float64 {
	return []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10, 100, 1000}
}

// Counter is a monotonically increasing int64.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n; no-op on a nil handle.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil handle).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 that tracks a current or peak value.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v; no-op on a nil handle.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// SetMax stores v only if it exceeds the current value — peak tracking
// (e.g. buffer occupancy high-water mark).
func (g *Gauge) SetMax(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if v <= math.Float64frombits(old) {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value (0 on a nil handle).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram accumulates observations into fixed buckets plus count, sum,
// min, and max.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // ascending upper bounds; an implicit +Inf bucket follows
	counts []int64   // len(bounds)+1
	count  int64
	sum    float64
	min    float64
	max    float64
}

// Observe records one value; no-op on a nil handle.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
}

// Registry holds named metrics. The zero value is not usable; create one
// with New. A nil *Registry is a valid "observability off" registry.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Returns a
// nil (no-op) handle on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns a nil
// (no-op) handle on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds on first use (nil bounds means TimeBuckets). Later
// calls ignore bounds, so the layout is fixed for the registry's life.
// Returns a nil (no-op) handle on a nil registry.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		if bounds == nil {
			bounds = TimeBuckets()
		}
		b := append([]float64(nil), bounds...)
		sort.Float64s(b)
		h = &Histogram{bounds: b, counts: make([]int64, len(b)+1)}
		r.hists[name] = h
	}
	return h
}

// Bucket is one histogram bucket in a snapshot: the count of observations
// at or below the upper bound LE (non-cumulative). The overflow bucket
// has LE = +Inf, serialized as null by encoding/json-compatible readers;
// it is emitted with LE omitted instead.
type Bucket struct {
	LE    *float64 `json:"le,omitempty"` // nil marks the +Inf overflow bucket
	Count int64    `json:"count"`
}

// HistSnapshot is a histogram's frozen state.
type HistSnapshot struct {
	Count   int64    `json:"count"`
	Sum     float64  `json:"sum"`
	Min     float64  `json:"min"`
	Max     float64  `json:"max"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot is a registry's frozen state. Maps marshal with sorted keys,
// so the JSON form is deterministic.
type Snapshot struct {
	Counters   map[string]int64        `json:"counters,omitempty"`
	Gauges     map[string]float64      `json:"gauges,omitempty"`
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
}

// Snapshot freezes the registry's current state. Safe to call while
// other goroutines keep recording; each metric is read atomically. A nil
// registry snapshots to the zero Snapshot.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistSnapshot, len(r.hists))
		for name, h := range r.hists {
			h.mu.Lock()
			hs := HistSnapshot{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
			for i, c := range h.counts {
				if c == 0 {
					continue // empty buckets add noise, not information
				}
				b := Bucket{Count: c}
				if i < len(h.bounds) {
					le := h.bounds[i]
					b.LE = &le
				}
				hs.Buckets = append(hs.Buckets, b)
			}
			h.mu.Unlock()
			s.Histograms[name] = hs
		}
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON (deterministic: sorted
// names, fixed bucket order).
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

package metrics

import (
	"bytes"
	"encoding/json"
	"math"
	"sync"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := New()
	c := r.Counter("ops")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if r.Counter("ops") != c {
		t.Fatal("second Counter call returned a different handle")
	}

	g := r.Gauge("peak")
	g.Set(3)
	g.SetMax(2) // lower: ignored
	g.SetMax(7)
	if g.Value() != 7 {
		t.Fatalf("gauge = %v, want 7", g.Value())
	}

	h := r.Histogram("lat", []float64{1, 10})
	for _, v := range []float64{0.5, 0.7, 5, 100} {
		h.Observe(v)
	}
	s := r.Snapshot()
	hs := s.Histograms["lat"]
	if hs.Count != 4 || hs.Min != 0.5 || hs.Max != 100 || math.Abs(hs.Sum-106.2) > 1e-12 {
		t.Fatalf("hist snapshot %+v", hs)
	}
	// Buckets: <=1 holds 2, <=10 holds 1, +Inf holds 1.
	if len(hs.Buckets) != 3 {
		t.Fatalf("buckets %+v", hs.Buckets)
	}
	if *hs.Buckets[0].LE != 1 || hs.Buckets[0].Count != 2 {
		t.Fatalf("bucket 0 %+v", hs.Buckets[0])
	}
	if hs.Buckets[2].LE != nil || hs.Buckets[2].Count != 1 {
		t.Fatalf("overflow bucket %+v", hs.Buckets[2])
	}
}

func TestNilRegistryIsNoop(t *testing.T) {
	var r *Registry
	r.Counter("x").Add(10)
	r.Counter("x").Inc()
	r.Gauge("y").Set(1)
	r.Gauge("y").SetMax(2)
	r.Histogram("z", nil).Observe(3)
	if r.Counter("x").Value() != 0 || r.Gauge("y").Value() != 0 {
		t.Fatal("nil handles retained values")
	}
	s := r.Snapshot()
	if s.Counters != nil || s.Gauges != nil || s.Histograms != nil {
		t.Fatalf("nil registry snapshot %+v", s)
	}
	var b bytes.Buffer
	if err := s.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotJSONDeterministic(t *testing.T) {
	build := func() Snapshot {
		r := New()
		// Insert in different orders across builds; JSON must not care.
		for _, n := range []string{"b", "a", "c"} {
			r.Counter(n).Add(int64(len(n)))
		}
		r.Gauge("g2").Set(2)
		r.Gauge("g1").Set(1)
		r.Histogram("h", []float64{1, 2}).Observe(1.5)
		return r.Snapshot()
	}
	var b1, b2 bytes.Buffer
	if err := build().WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Fatalf("snapshots differ:\n%s\nvs\n%s", b1.String(), b2.String())
	}
	var round Snapshot
	if err := json.Unmarshal(b1.Bytes(), &round); err != nil {
		t.Fatalf("snapshot JSON does not parse: %v", err)
	}
	if round.Counters["a"] != 1 || round.Gauges["g2"] != 2 {
		t.Fatalf("roundtrip %+v", round)
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("n").Inc()
				r.Gauge("p").SetMax(float64(j))
				r.Histogram("h", nil).Observe(float64(j) * 1e-4)
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Counters["n"] != 8000 {
		t.Fatalf("counter = %d, want 8000", s.Counters["n"])
	}
	if s.Gauges["p"] != 999 {
		t.Fatalf("gauge = %v, want 999", s.Gauges["p"])
	}
	if s.Histograms["h"].Count != 8000 {
		t.Fatalf("hist count = %d", s.Histograms["h"].Count)
	}
}

package snapshot

import (
	"errors"
	"fmt"
	"strings"

	"genxio/internal/hdf"
	"genxio/internal/rt"
)

// Verdicts of a generation scrub.
const (
	VerdictOK          = "OK"
	VerdictUncommitted = "UNCOMMITTED"
	VerdictCorrupt     = "CORRUPT"
)

// FileReport is one file's scrub outcome.
type FileReport struct {
	Name   string `json:"name"`
	Status string `json:"status"` // "ok", "corrupt", "missing", "staged", "unmanifested"
	Detail string `json:"detail,omitempty"`
}

// GenReport is one generation's scrub outcome.
type GenReport struct {
	Base    string       `json:"base"`
	Verdict string       `json:"verdict"`
	Epoch   int64        `json:"epoch,omitempty"`
	Files   []FileReport `json:"files"`
}

// Fsck deep-scrubs every snapshot generation under prefix, newest first.
// For committed generations it verifies each manifested file's size and
// directory checksum, then reads every dataset back so the per-dataset
// CRC32Cs cover the payload bytes too — a single flipped bit anywhere in
// a committed file is reported against that file. Staged temporaries and
// files on disk but absent from the manifest are flagged without failing
// the generation (they are crash residue the restart path already
// ignores).
func Fsck(fsys rt.FS, prefix string) ([]GenReport, error) {
	gens, err := Generations(fsys, prefix)
	if err != nil {
		return nil, err
	}
	reports := make([]GenReport, 0, len(gens))
	for _, g := range gens {
		reports = append(reports, fsckGen(fsys, g))
	}
	return reports, nil
}

func fsckGen(fsys rt.FS, g Generation) GenReport {
	rep := GenReport{Base: g.Base, Verdict: VerdictOK}
	onDisk, _ := fsys.List(g.Base + "_")
	inManifest := make(map[string]bool)

	if !g.Committed {
		rep.Verdict = VerdictUncommitted
	} else {
		m, err := Load(fsys, g.Base)
		if err != nil {
			rep.Verdict = VerdictCorrupt
			rep.Files = append(rep.Files, FileReport{Name: g.Base + Suffix, Status: "corrupt", Detail: err.Error()})
		} else {
			rep.Epoch = m.Epoch
			for _, e := range m.Files {
				inManifest[e.Name] = true
				fr := scrubFile(fsys, e)
				if fr.Status != "ok" {
					rep.Verdict = VerdictCorrupt
				}
				rep.Files = append(rep.Files, fr)
			}
		}
	}
	for _, name := range onDisk {
		if baseOf(name) != g.Base || inManifest[name] {
			continue
		}
		status := "unmanifested"
		if strings.HasSuffix(name, hdf.TmpSuffix) {
			status = "staged"
		}
		rep.Files = append(rep.Files, FileReport{Name: name, Status: status})
	}
	return rep
}

// scrubFile verifies one manifested file end to end: size, directory
// checksum, and every dataset's payload CRC.
func scrubFile(fsys rt.FS, e FileEntry) FileReport {
	size, crc, _, err := hdf.DirInfo(fsys, e.Name)
	if err != nil {
		status := "corrupt"
		if errors.Is(err, rt.ErrNotExist) {
			status = "missing"
		}
		return FileReport{Name: e.Name, Status: status, Detail: err.Error()}
	}
	if size != e.Size {
		return FileReport{Name: e.Name, Status: "corrupt",
			Detail: fmt.Sprintf("%d bytes on disk, manifest says %d", size, e.Size)}
	}
	if crc != e.DirCRC {
		return FileReport{Name: e.Name, Status: "corrupt",
			Detail: fmt.Sprintf("directory crc32c %08x, manifest says %08x", crc, e.DirCRC)}
	}
	r, err := hdf.Open(fsys, e.Name, nullClock{}, hdf.NullProfile())
	if err != nil {
		return FileReport{Name: e.Name, Status: "corrupt", Detail: err.Error()}
	}
	defer r.Close()
	for _, d := range r.Datasets() {
		if _, err := r.ReadData(d); err != nil {
			return FileReport{Name: e.Name, Status: "corrupt", Detail: err.Error()}
		}
	}
	return FileReport{Name: e.Name, Status: "ok"}
}

// Format renders scrub reports as the per-generation verdict listing
// cmd/genxfsck prints.
func Format(reports []GenReport) string {
	var b strings.Builder
	for _, rep := range reports {
		fmt.Fprintf(&b, "%-12s %s\n", rep.Verdict, rep.Base)
		for _, f := range rep.Files {
			if f.Detail != "" {
				fmt.Fprintf(&b, "  %-12s %s: %s\n", f.Status, f.Name, f.Detail)
			} else {
				fmt.Fprintf(&b, "  %-12s %s\n", f.Status, f.Name)
			}
		}
	}
	return b.String()
}

// Clean reports whether no generation was found corrupt.
func Clean(reports []GenReport) bool {
	for _, rep := range reports {
		if rep.Verdict == VerdictCorrupt {
			return false
		}
	}
	return true
}

type nullClock struct{}

func (nullClock) Now() float64      { return 0 }
func (nullClock) Sleep(d float64)   {}
func (nullClock) Compute(d float64) {}

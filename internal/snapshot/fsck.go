package snapshot

import (
	"errors"
	"fmt"
	"strings"

	"genxio/internal/catalog"
	"genxio/internal/hdf"
	"genxio/internal/roccom"
	"genxio/internal/rt"
)

// Verdicts of a generation scrub.
const (
	VerdictOK          = "OK"
	VerdictUncommitted = "UNCOMMITTED"
	VerdictCorrupt     = "CORRUPT"
	// VerdictCatalogMismatch marks a generation whose data files all scrub
	// clean but whose block catalog disagrees with them — a stale, damaged,
	// or incomplete index. Restart still works (the scan fallback ignores
	// the catalog) but indexed reads would not, so the scrub fails.
	VerdictCatalogMismatch = "CATALOG-MISMATCH"
	// VerdictRepaired marks a generation Repair rebuilt from verified
	// replica copies and re-scrubbed clean. It counts as clean.
	VerdictRepaired = "REPAIRED"
	// VerdictCatalogMissing marks a generation whose manifest parses and
	// pins a catalog blob that is simply absent on disk — distinct from
	// CATALOG-MISMATCH (a blob that exists but lies) so operators can
	// tell deletion from damage. Restart still works via the scan
	// fallback, but indexed reads and chain resolution cannot.
	VerdictCatalogMissing = "CATALOG-MISSING"
	// VerdictChainBroken marks a committed delta generation whose own
	// files scrub clean but whose chain does not resolve: a base
	// generation some ancestor needs is missing, uncommitted, corrupt,
	// or has an unusable catalog. The generation cannot restore (chain
	// reads walk catalogs down to the full base), so the scrub fails.
	VerdictChainBroken = "CHAIN-BROKEN"
)

// FileReport is one file's scrub outcome.
type FileReport struct {
	Name   string `json:"name"`
	Status string `json:"status"` // "ok", "corrupt", "missing", "staged", "unmanifested"
	Detail string `json:"detail,omitempty"`
}

// GenReport is one generation's scrub outcome. Catalog reports the block
// catalog's state: "none" (older writer, no catalog committed), "ok",
// "missing" (pinned by the manifest but absent on disk), or "mismatch".
type GenReport struct {
	Base    string       `json:"base"`
	Verdict string       `json:"verdict"`
	Epoch   int64        `json:"epoch,omitempty"`
	Catalog string       `json:"catalog,omitempty"`
	Files   []FileReport `json:"files"`
}

// Fsck deep-scrubs every snapshot generation under prefix, newest first.
// For committed generations it verifies each manifested file's size and
// directory checksum, then reads every dataset back so the per-dataset
// CRC32Cs cover the payload bytes too — a single flipped bit anywhere in
// a committed file is reported against that file. Staged temporaries and
// files on disk but absent from the manifest are flagged without failing
// the generation (they are crash residue the restart path already
// ignores).
func Fsck(fsys rt.FS, prefix string) ([]GenReport, error) {
	gens, err := Generations(fsys, prefix)
	if err != nil {
		return nil, err
	}
	reports := make([]GenReport, 0, len(gens))
	for _, g := range gens {
		reports = append(reports, fsckGen(fsys, g))
	}
	applyChainVerdicts(fsys, reports)
	return reports, nil
}

// ApplyChainVerdicts runs the chain pass over externally produced
// reports. cmd/genxfsck's quick scrub uses it so that even a
// manifest-level pass flags delta generations whose chains cannot
// restore.
func ApplyChainVerdicts(fsys rt.FS, reports []GenReport) {
	applyChainVerdicts(fsys, reports)
}

// applyChainVerdicts is the scrub's second pass: a committed delta
// generation whose own files are clean is still unrestorable when any
// link of its chain is bad, so it gets the CHAIN-BROKEN verdict with the
// first bad link named. Per-generation verdicts from the first pass are
// never downgraded — a CORRUPT delta stays CORRUPT.
func applyChainVerdicts(fsys rt.FS, reports []GenReport) {
	byBase := make(map[string]*GenReport, len(reports))
	for i := range reports {
		byBase[reports[i].Base] = &reports[i]
	}
	for i := range reports {
		rep := &reports[i]
		if rep.Verdict != VerdictOK && rep.Verdict != VerdictRepaired {
			continue
		}
		m, err := Load(fsys, rep.Base)
		if err != nil || m.ChainDepth == 0 {
			continue
		}
		if link, detail := brokenLink(fsys, byBase, m); link != "" {
			rep.Verdict = VerdictChainBroken
			rep.Files = append(rep.Files, FileReport{Name: link, Status: "chain-broken", Detail: detail})
		}
	}
}

// brokenLink walks a delta manifest's ancestry and returns the first
// base generation the chain cannot restore through, with a reason —
// or "" if every link down to the full base is usable.
func brokenLink(fsys rt.FS, byBase map[string]*GenReport, m *Manifest) (link, detail string) {
	seen := map[string]bool{m.Base: true}
	for depth := 0; m.ChainDepth > 0; depth++ {
		base := m.BaseGeneration
		if seen[base] || depth >= maxChainDepth {
			return base, "chain revisits itself"
		}
		seen[base] = true
		rep, ok := byBase[base]
		if !ok {
			return base, "base generation has no files on disk"
		}
		switch rep.Verdict {
		case VerdictUncommitted:
			return base, "base generation is uncommitted"
		case VerdictCorrupt:
			return base, "base generation is corrupt"
		case VerdictCatalogMismatch, VerdictCatalogMissing:
			// Chain reads resolve panes through each link's catalog; a
			// base whose index is absent or lying cannot serve its share.
			return base, "base generation's catalog is unusable"
		}
		next, err := Load(fsys, base)
		if err != nil {
			return base, err.Error()
		}
		m = next
	}
	return "", ""
}

func fsckGen(fsys rt.FS, g Generation) GenReport {
	rep := GenReport{Base: g.Base, Verdict: VerdictOK}
	onDisk, _ := fsys.List(g.Base + "_")
	inManifest := make(map[string]bool)

	if !g.Committed {
		rep.Verdict = VerdictUncommitted
	} else {
		m, err := Load(fsys, g.Base)
		if err != nil {
			rep.Verdict = VerdictCorrupt
			rep.Files = append(rep.Files, FileReport{Name: g.Base + Suffix, Status: "corrupt", Detail: err.Error()})
		} else {
			rep.Epoch = m.Epoch
			for _, e := range m.Files {
				inManifest[e.Name] = true
				fr := scrubFile(fsys, e)
				if fr.Status != "ok" {
					rep.Verdict = VerdictCorrupt
				}
				rep.Files = append(rep.Files, fr)
			}
			rep.Catalog = "none"
			if m.Catalog != nil {
				status, detail := scrubCatalog(fsys, m)
				rep.Catalog = status
				if status != "ok" {
					// Damaged data files already make the generation
					// CORRUPT; only a clean generation with a bad index
					// downgrades — to CATALOG-MISSING when the pinned blob
					// is simply absent, CATALOG-MISMATCH when it lies.
					if rep.Verdict == VerdictOK {
						if status == "missing" {
							rep.Verdict = VerdictCatalogMissing
						} else {
							rep.Verdict = VerdictCatalogMismatch
						}
					}
					rep.Files = append(rep.Files, FileReport{Name: m.Catalog.Name, Status: status, Detail: detail})
				}
			}
		}
	}
	for _, name := range onDisk {
		if baseOf(name) != g.Base || inManifest[name] {
			continue
		}
		status := "unmanifested"
		if strings.HasSuffix(name, hdf.TmpSuffix) {
			status = "staged"
		}
		rep.Files = append(rep.Files, FileReport{Name: name, Status: status})
	}
	return rep
}

// scrubFile verifies one manifested file end to end: size, directory
// checksum, and every dataset's payload CRC.
func scrubFile(fsys rt.FS, e FileEntry) FileReport {
	size, crc, _, err := hdf.DirInfo(fsys, e.Name)
	if err != nil {
		status := "corrupt"
		if errors.Is(err, rt.ErrNotExist) {
			status = "missing"
		}
		return FileReport{Name: e.Name, Status: status, Detail: err.Error()}
	}
	if size != e.Size {
		return FileReport{Name: e.Name, Status: "corrupt",
			Detail: fmt.Sprintf("%d bytes on disk, manifest says %d", size, e.Size)}
	}
	if crc != e.DirCRC {
		return FileReport{Name: e.Name, Status: "corrupt",
			Detail: fmt.Sprintf("directory crc32c %08x, manifest says %08x", crc, e.DirCRC)}
	}
	r, err := hdf.Open(fsys, e.Name, nullClock{}, hdf.NullProfile())
	if err != nil {
		return FileReport{Name: e.Name, Status: "corrupt", Detail: err.Error()}
	}
	defer r.Close()
	for _, d := range r.Datasets() {
		if _, err := r.ReadData(d); err != nil {
			return FileReport{Name: e.Name, Status: "corrupt", Detail: err.Error()}
		}
	}
	return FileReport{Name: e.Name, Status: "ok"}
}

// scrubCatalog cross-checks a committed generation's block catalog against
// its manifest and data files: the blob must match the manifest's size and
// CRC reference and decode cleanly, every entry must resolve to a real
// dataset at the recorded extent with the recorded checksum, and every
// pane dataset in the manifested files must appear in the catalog — an
// index that would send an indexed restart to the wrong bytes, or silently
// drop panes, is a mismatch.
func scrubCatalog(fsys rt.FS, m *Manifest) (status, detail string) {
	f, err := fsys.Open(m.Catalog.Name)
	if err != nil {
		if errors.Is(err, rt.ErrNotExist) {
			// The manifest pins a blob that is not there at all — report
			// absence distinctly from a blob that exists but disagrees.
			return "missing", err.Error()
		}
		return "mismatch", err.Error()
	}
	size, err := f.Size()
	if err != nil {
		f.Close()
		return "mismatch", err.Error()
	}
	blob := make([]byte, size)
	_, err = f.ReadAt(blob, 0)
	f.Close()
	if err != nil {
		return "mismatch", err.Error()
	}
	if size != m.Catalog.Size {
		return "mismatch", fmt.Sprintf("%d bytes on disk, manifest says %d", size, m.Catalog.Size)
	}
	if crc := hdf.Checksum(blob); crc != m.Catalog.CRC {
		return "mismatch", fmt.Sprintf("blob crc32c %08x, manifest says %08x", crc, m.Catalog.CRC)
	}
	cat, err := catalog.Decode(blob)
	if err != nil {
		return "mismatch", err.Error()
	}

	inManifest := make(map[string]bool, len(m.Files))
	onDisk := make(map[string]map[string]*hdf.Dataset, len(m.Files))
	paneSets := 0
	for _, e := range m.Files {
		inManifest[e.Name] = true
		sets, err := hdf.DirEntries(fsys, e.Name)
		if err != nil {
			continue // scrubFile already reported the file itself
		}
		byName := make(map[string]*hdf.Dataset, len(sets))
		for _, d := range sets {
			byName[d.Name] = d
			if _, _, _, ok := roccom.ParseDatasetName(d.Name); ok {
				paneSets++
			}
		}
		onDisk[e.Name] = byName
	}
	for i := range cat.Entries {
		e := &cat.Entries[i]
		name := cat.Files[e.File]
		if !inManifest[name] {
			return "mismatch", fmt.Sprintf("catalog references unmanifested file %s", name)
		}
		byName, ok := onDisk[name]
		if !ok {
			continue
		}
		d, ok := byName[e.Name]
		if !ok {
			return "mismatch", fmt.Sprintf("catalog entry %q not in %s", e.Name, name)
		}
		off, length := d.Extent()
		if off != e.Offset || length != e.Length {
			return "mismatch", fmt.Sprintf("catalog entry %q extent [%d,+%d), file says [%d,+%d)",
				e.Name, e.Offset, e.Length, off, length)
		}
		crc, hasCRC := d.CRC()
		if hasCRC != e.HasCRC || (hasCRC && crc != e.CRC) {
			return "mismatch", fmt.Sprintf("catalog entry %q crc32c %08x, file says %08x", e.Name, e.CRC, crc)
		}
	}
	if len(cat.Entries) < paneSets {
		return "mismatch", fmt.Sprintf("catalog indexes %d pane datasets, files hold %d", len(cat.Entries), paneSets)
	}
	return "ok", ""
}

// Format renders scrub reports as the per-generation verdict listing
// cmd/genxfsck prints.
func Format(reports []GenReport) string {
	var b strings.Builder
	for _, rep := range reports {
		fmt.Fprintf(&b, "%-12s %s\n", rep.Verdict, rep.Base)
		for _, f := range rep.Files {
			if f.Detail != "" {
				fmt.Fprintf(&b, "  %-12s %s: %s\n", f.Status, f.Name, f.Detail)
			} else {
				fmt.Fprintf(&b, "  %-12s %s\n", f.Status, f.Name)
			}
		}
	}
	return b.String()
}

// Clean reports whether no generation was found corrupt, carrying a
// mismatched or missing catalog, or chained to an unrestorable base.
func Clean(reports []GenReport) bool {
	for _, rep := range reports {
		switch rep.Verdict {
		case VerdictCorrupt, VerdictCatalogMismatch, VerdictCatalogMissing, VerdictChainBroken:
			return false
		}
	}
	return true
}

type nullClock struct{}

func (nullClock) Now() float64      { return 0 }
func (nullClock) Sleep(d float64)   {}
func (nullClock) Compute(d float64) {}

package snapshot

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"genxio/internal/catalog"
	"genxio/internal/faults"
	"genxio/internal/hdf"
	"genxio/internal/roccom"
	"genxio/internal/rt"
)

// writeChainGen writes one server-style snapshot file holding the given
// panes of the "fluid" window (proper pane dataset names, so the committed
// catalog indexes them and chain resolution can find them).
func writeChainGen(t *testing.T, fsys rt.FS, base string, panes []int, val float64) string {
	t.Helper()
	name := base + "_s000.rhdf"
	w, err := hdf.Create(fsys, name, rt.NewWallClock(), hdf.NullProfile())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range panes {
		dsName := roccom.PanePrefix("fluid", id) + "p"
		if err := w.CreateDataset(dsName, hdf.F64, []int64{2}, nil,
			hdf.F64Bytes([]float64{val, val + float64(id)})); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return name
}

// commitChain builds the canonical three-link test chain:
//
//	snap000000  full   panes {1,2,3}
//	snap000010  delta  rewrites {2}     (universe {1,2,3})
//	snap000020  delta  rewrites {1,3}   (universe {1,2,3})
//
// and returns the bases oldest-first.
func commitChain(t *testing.T, fsys rt.FS) []string {
	t.Helper()
	universe := map[string][]int{"fluid": {1, 2, 3}}
	writeChainGen(t, fsys, "out/snap000000", []int{1, 2, 3}, 0)
	if _, err := Commit(fsys, "out/snap000000", 0, 0); err != nil {
		t.Fatal(err)
	}
	writeChainGen(t, fsys, "out/snap000010", []int{2}, 10)
	if _, err := CommitChained(fsys, "out/snap000010", 10, 1,
		&ChainInfo{Base: "out/snap000000", Depth: 1, Panes: universe}); err != nil {
		t.Fatal(err)
	}
	writeChainGen(t, fsys, "out/snap000020", []int{1, 3}, 20)
	if _, err := CommitChained(fsys, "out/snap000020", 20, 2,
		&ChainInfo{Base: "out/snap000010", Depth: 2, Panes: universe}); err != nil {
		t.Fatal(err)
	}
	return []string{"out/snap000000", "out/snap000010", "out/snap000020"}
}

func TestLoadChainResolvesNewestFirst(t *testing.T) {
	fsys := rt.NewMemFS()
	bases := commitChain(t, fsys)

	chain, err := LoadChain(fsys, bases[2])
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 3 {
		t.Fatalf("chain has %d links, want 3", len(chain))
	}
	for i, want := range []string{bases[2], bases[1], bases[0]} {
		if chain[i].Base != want {
			t.Fatalf("link %d = %q, want %q (newest first)", i, chain[i].Base, want)
		}
		if chain[i].Catalog == nil {
			t.Fatalf("link %d has no catalog", i)
		}
	}

	// Each pane must resolve to the newest link that rewrote it: 1 and 3 to
	// the head, 2 to the middle delta, nothing to the full base.
	wanted := map[int]bool{1: true, 2: true, 3: true}
	assign := catalog.ResolvePanes(ChainCatalogs(chain), "fluid", wanted)
	flat := make([]map[int]bool, len(assign))
	copy(flat, assign)
	if !assign[0][1] || !assign[0][3] || len(assign[0]) != 2 {
		t.Fatalf("head assignment %v, want panes 1 and 3", assign[0])
	}
	if !assign[1][2] || len(assign[1]) != 1 {
		t.Fatalf("middle assignment %v, want pane 2 only", assign[1])
	}
	if len(assign[2]) != 0 {
		t.Fatalf("full base assignment %v, want empty (all panes shadowed)", assign[2])
	}

	// A full generation's chain is itself.
	single, err := LoadChain(fsys, bases[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(single) != 1 {
		t.Fatalf("full generation chain %d links, want 1", len(single))
	}
}

func TestLoadChainRefusesBrokenLinks(t *testing.T) {
	fsys := rt.NewMemFS()
	bases := commitChain(t, fsys)

	// Missing mid-chain catalog: the chain cannot resolve (no scan
	// fallback across generations).
	blob := readAll(t, fsys, bases[1]+catalog.Suffix)
	if err := fsys.Remove(bases[1] + catalog.Suffix); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadChain(fsys, bases[2]); err == nil {
		t.Fatal("LoadChain accepted a chain with a missing catalog")
	}
	writeAll(t, fsys, bases[1]+catalog.Suffix, blob)
	if _, err := LoadChain(fsys, bases[2]); err != nil {
		t.Fatalf("restored catalog, LoadChain still fails: %v", err)
	}

	// Missing base manifest.
	if err := fsys.Remove(bases[0] + Suffix); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadChain(fsys, bases[2]); err == nil {
		t.Fatal("LoadChain accepted a chain with an uncommitted base")
	}
}

func TestLoadChainCycleGuard(t *testing.T) {
	fsys := rt.NewMemFS()
	// Two deltas chained to each other — legal JSON, illegal topology.
	for _, g := range []struct{ base, to string }{
		{"out/snap000000", "out/snap000010"},
		{"out/snap000010", "out/snap000000"},
	} {
		writeChainGen(t, fsys, g.base, []int{1}, 0)
		if _, err := CommitChained(fsys, g.base, 0, 0,
			&ChainInfo{Base: g.to, Depth: 1, Panes: map[string][]int{"fluid": {1}}}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := LoadChain(fsys, "out/snap000010"); err == nil ||
		!strings.Contains(err.Error(), "revisits") {
		t.Fatalf("cyclic chain error = %v, want a cycle complaint", err)
	}
}

func TestCommitChainedValidation(t *testing.T) {
	fsys := rt.NewMemFS()
	writeChainGen(t, fsys, "out/snap000010", []int{1}, 0)
	if _, err := CommitChained(fsys, "out/snap000010", 0, 0,
		&ChainInfo{Base: "", Depth: 1}); err == nil {
		t.Fatal("committed a delta with no base")
	}
	if _, err := CommitChained(fsys, "out/snap000010", 0, 0,
		&ChainInfo{Base: "out/snap000010", Depth: 1}); err == nil {
		t.Fatal("committed a delta chained to itself")
	}
	if _, err := CommitChained(fsys, "out/snap000010", 0, 0,
		&ChainInfo{Base: "out/snap000000", Depth: 0}); err == nil {
		t.Fatal("committed a delta with depth 0")
	}
	// An empty delta — nothing dirty — is legal: its state lives in the
	// chain.
	if _, err := CommitChained(fsys, "out/empty000020", 20, 2,
		&ChainInfo{Base: "out/snap000000", Depth: 1, Panes: map[string][]int{"fluid": {1}}}); err != nil {
		t.Fatalf("empty delta refused: %v", err)
	}
	m, err := Load(fsys, "out/empty000020")
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Files) != 0 || m.ChainDepth != 1 {
		t.Fatalf("empty delta manifest %+v", m)
	}
}

func TestPaneUniverseOnDeltas(t *testing.T) {
	fsys := rt.NewMemFS()
	bases := commitChain(t, fsys)

	// The head delta's files hold only panes 1 and 3; the universe must
	// still be the manifest's recorded {1,2,3}.
	ids, err := PaneUniverse(fsys, bases[2], "fluid")
	if err != nil {
		t.Fatal(err)
	}
	if !sort.IntsAreSorted(ids) || fmt.Sprint(ids) != "[1 2 3]" {
		t.Fatalf("delta universe %v, want [1 2 3]", ids)
	}
	// Unknown window on a delta is an error, not an empty success.
	if _, err := PaneUniverse(fsys, bases[2], "nope"); err == nil {
		t.Fatal("universe of unknown window succeeded")
	}
	// Full generations still answer from the catalog.
	ids, err = PaneUniverse(fsys, bases[0], "fluid")
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(ids) != "[1 2 3]" {
		t.Fatalf("full universe %v", ids)
	}
}

func TestRestoreFallsBackPastBrokenChain(t *testing.T) {
	fsys := rt.NewMemFS()
	bases := commitChain(t, fsys)

	// Break the chain under the head: the full base loses its manifest,
	// so the head and middle deltas are unrestorable too.
	if err := fsys.Remove(bases[0] + Suffix); err != nil {
		t.Fatal(err)
	}
	tried := []string{}
	_, err := Restore(fsys, "out/", func(base string) error {
		tried = append(tried, base)
		return nil
	}, Options{})
	if err == nil {
		t.Fatal("restore succeeded with every chain link broken")
	}
	if len(tried) != 0 {
		t.Fatalf("restore attempted %v, want chain verification to refuse all", tried)
	}

	// Recommit the full base: the whole chain is restorable again and the
	// newest delta wins.
	if _, err := Commit(fsys, bases[0], 0, 0); err != nil {
		t.Fatal(err)
	}
	got, err := Restore(fsys, "out/", func(base string) error { return nil }, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got != bases[2] {
		t.Fatalf("restored %q, want the chain head %q", got, bases[2])
	}
}

func TestPrunePinsChainAncestry(t *testing.T) {
	fsys := rt.NewMemFS()
	bases := commitChain(t, fsys) // full, delta, delta — newest is a delta

	// Retaining just the head must pin its whole ancestry: nothing goes.
	removed, err := Prune(fsys, "out/", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 0 {
		t.Fatalf("prune removed chain links %v", removed)
	}

	// Add two newer full generations; retaining them un-pins the chain.
	writeChainGen(t, fsys, "out/snap000030", []int{1, 2, 3}, 30)
	if _, err := Commit(fsys, "out/snap000030", 30, 3); err != nil {
		t.Fatal(err)
	}
	writeChainGen(t, fsys, "out/snap000040", []int{1, 2, 3}, 40)
	if _, err := Commit(fsys, "out/snap000040", 40, 4); err != nil {
		t.Fatal(err)
	}
	removed, err = Prune(fsys, "out/", 2)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(removed) != fmt.Sprint(bases) {
		t.Fatalf("removed %v, want the whole old chain %v (sorted)", removed, bases)
	}
	if !sort.StringsAreSorted(removed) {
		t.Fatalf("removed %v not sorted", removed)
	}
	gens, _ := Generations(fsys, "out/")
	if len(gens) != 2 {
		t.Fatalf("survivors %+v", gens)
	}
}

// TestPruneRerunnable: a prune interrupted mid-removal (or racing a
// concurrent prune) leaves some artifacts already gone; re-running must
// succeed, not fail on fs.ErrNotExist.
func TestPruneRerunnable(t *testing.T) {
	fsys := rt.NewMemFS()
	for i, b := range []string{"out/snap000000", "out/snap000010", "out/snap000020"} {
		writeChainGen(t, fsys, b, []int{1}, float64(i))
		if _, err := Commit(fsys, b, int64(i*10), float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate the crash window: the oldest generation's manifest and one
	// data file are already gone, its catalog is not.
	if err := fsys.Remove("out/snap000000" + Suffix); err != nil {
		t.Fatal(err)
	}
	if err := fsys.Remove("out/snap000000_s000.rhdf"); err != nil {
		t.Fatal(err)
	}
	removed, err := Prune(fsys, "out/", 1)
	if err != nil {
		t.Fatalf("re-run prune failed: %v", err)
	}
	if fmt.Sprint(removed) != "[out/snap000000 out/snap000010]" {
		t.Fatalf("removed %v, want both old generations, sorted", removed)
	}
	if names, _ := fsys.List("out/snap000000"); len(names) != 0 {
		t.Fatalf("residue after prune: %v", names)
	}
}

func TestFsckChainBroken(t *testing.T) {
	fsys := rt.NewMemFS()
	bases := commitChain(t, fsys)

	// Flip a payload bit in the full base: it scrubs CORRUPT and every
	// delta above it is CHAIN-BROKEN — their own files are fine, but they
	// cannot restore.
	if err := faults.FlipBit(fsys, bases[0]+"_s000.rhdf", int64(hdf.HeaderSize()*8+3)); err != nil {
		t.Fatal(err)
	}
	reports, err := Fsck(fsys, "out/")
	if err != nil {
		t.Fatal(err)
	}
	verdicts := map[string]string{}
	for _, r := range reports {
		verdicts[r.Base] = r.Verdict
	}
	if verdicts[bases[0]] != VerdictCorrupt {
		t.Fatalf("base verdict %q, want CORRUPT", verdicts[bases[0]])
	}
	for _, b := range bases[1:] {
		if verdicts[b] != VerdictChainBroken {
			t.Fatalf("delta %s verdict %q, want CHAIN-BROKEN", b, verdicts[b])
		}
	}
	if Clean(reports) {
		t.Fatal("Clean() true with a broken chain")
	}
	out := Format(reports)
	if !strings.Contains(out, VerdictChainBroken) || !strings.Contains(out, "chain-broken") {
		t.Fatalf("Format lacks the chain verdict:\n%s", out)
	}

	// The broken-link report names the bad base.
	for _, r := range reports {
		if r.Verdict != VerdictChainBroken {
			continue
		}
		found := false
		for _, f := range r.Files {
			if f.Status == "chain-broken" && f.Name == bases[0] {
				found = true
			}
		}
		if !found {
			t.Fatalf("%s chain-broken report does not name %s: %+v", r.Base, bases[0], r.Files)
		}
	}
}

func TestFsckChainBrokenByMissingBase(t *testing.T) {
	fsys := rt.NewMemFS()
	bases := commitChain(t, fsys)
	// Remove the middle delta entirely — files, catalog, manifest.
	names, _ := fsys.List(bases[1])
	for _, n := range names {
		if err := fsys.Remove(n); err != nil {
			t.Fatal(err)
		}
	}
	reports, err := Fsck(fsys, "out/")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reports {
		switch r.Base {
		case bases[2]:
			if r.Verdict != VerdictChainBroken {
				t.Fatalf("head verdict %q, want CHAIN-BROKEN", r.Verdict)
			}
		case bases[0]:
			if r.Verdict != VerdictOK {
				t.Fatalf("full base verdict %q, want OK", r.Verdict)
			}
		}
	}
}

func TestRepairHealsChainThroughCatalogRebuild(t *testing.T) {
	fsys := rt.NewMemFS()
	bases := commitChain(t, fsys)

	// Delete the full base's catalog blob: the base is CATALOG-MISSING and
	// both deltas CHAIN-BROKEN.
	if err := fsys.Remove(bases[0] + catalog.Suffix); err != nil {
		t.Fatal(err)
	}
	reports, err := Fsck(fsys, "out/")
	if err != nil {
		t.Fatal(err)
	}
	verdicts := map[string]string{}
	for _, r := range reports {
		verdicts[r.Base] = r.Verdict
	}
	if verdicts[bases[0]] != VerdictCatalogMissing {
		t.Fatalf("base verdict %q, want CATALOG-MISSING", verdicts[bases[0]])
	}
	if verdicts[bases[1]] != VerdictChainBroken || verdicts[bases[2]] != VerdictChainBroken {
		t.Fatalf("delta verdicts %v, want CHAIN-BROKEN", verdicts)
	}

	// Repair rebuilds the catalog deterministically from the manifested
	// files; the base comes back REPAIRED and the chain heals with it.
	reports, err = Repair(fsys, "out/")
	if err != nil {
		t.Fatal(err)
	}
	verdicts = map[string]string{}
	for _, r := range reports {
		verdicts[r.Base] = r.Verdict
	}
	if verdicts[bases[0]] != VerdictRepaired {
		t.Fatalf("repaired base verdict %q", verdicts[bases[0]])
	}
	for _, b := range bases[1:] {
		if verdicts[b] != VerdictOK {
			t.Fatalf("delta %s verdict %q after repair, want OK", b, verdicts[b])
		}
	}
	if !Clean(reports) {
		t.Fatal("Clean() false after a successful chain repair")
	}
	// And the chain loads again.
	if _, err := LoadChain(fsys, bases[2]); err != nil {
		t.Fatal(err)
	}
}

func TestFsckCatalogMissingVsMismatch(t *testing.T) {
	fsys := rt.NewMemFS()
	writeChainGen(t, fsys, "out/snap000000", []int{1, 2}, 0)
	if _, err := Commit(fsys, "out/snap000000", 0, 0); err != nil {
		t.Fatal(err)
	}

	// Absent blob: CATALOG-MISSING, catalog state "missing".
	blob := readAll(t, fsys, "out/snap000000"+catalog.Suffix)
	if err := fsys.Remove("out/snap000000" + catalog.Suffix); err != nil {
		t.Fatal(err)
	}
	reports, err := Fsck(fsys, "out/")
	if err != nil {
		t.Fatal(err)
	}
	if reports[0].Verdict != VerdictCatalogMissing || reports[0].Catalog != "missing" {
		t.Fatalf("verdict %q catalog %q, want CATALOG-MISSING/missing", reports[0].Verdict, reports[0].Catalog)
	}
	if Clean(reports) {
		t.Fatal("Clean() true with a missing catalog")
	}

	// Corrupted blob: still CATALOG-MISMATCH, not MISSING.
	blob[len(blob)-1] ^= 0xff
	writeAll(t, fsys, "out/snap000000"+catalog.Suffix, blob)
	reports, err = Fsck(fsys, "out/")
	if err != nil {
		t.Fatal(err)
	}
	if reports[0].Verdict != VerdictCatalogMismatch {
		t.Fatalf("verdict %q, want CATALOG-MISMATCH for a lying blob", reports[0].Verdict)
	}
}

func readAll(t *testing.T, fsys rt.FS, name string) []byte {
	t.Helper()
	f, err := fsys.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, size)
	if size > 0 {
		if _, err := f.ReadAt(buf, 0); err != nil {
			t.Fatal(err)
		}
	}
	return buf
}

func writeAll(t *testing.T, fsys rt.FS, name string, blob []byte) {
	t.Helper()
	f, err := fsys.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	if len(blob) > 0 {
		if _, err := f.WriteAt(blob, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

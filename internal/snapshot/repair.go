package snapshot

import (
	"fmt"

	"genxio/internal/catalog"
	"genxio/internal/hdf"
	"genxio/internal/rt"
)

// Repair deep-scrubs every generation under prefix like Fsck and then
// attempts to rebuild what the scrub found damaged, from data the
// generation itself still carries:
//
//   - A corrupt or missing manifested file is rebuilt from a donor file
//     with the same manifest-pinned size and directory CRC32C that scrubs
//     clean — with ReplicationFactor > 1 every replica is byte-identical
//     to its primary, so the copy is exact, and the donor match is
//     content-addressed (size+CRC), never guessed from file names.
//   - A mismatched or missing block catalog is rebuilt deterministically
//     from the manifested files (the same merge Commit performs) and
//     written only if the rebuilt blob matches the manifest's pinned size
//     and CRC — a rebuilt index can never disagree with the commit record.
//
// All writes are staged at name+".tmp" and renamed into place, and only
// files the scrub reported damaged are ever written; committed-good files
// are read at most. Generations whose manifest itself is unreadable, or
// whose damage has no clean copy anywhere, are left as they are — the
// restore walk's generation fallback still covers those.
//
// Each repaired generation is re-scrubbed; if it now passes, its verdict
// is VerdictRepaired and the rebuilt artifacts are reported with status
// "repaired". Clean() treats REPAIRED as clean.
func Repair(fsys rt.FS, prefix string) ([]GenReport, error) {
	gens, err := Generations(fsys, prefix)
	if err != nil {
		return nil, err
	}
	reports := make([]GenReport, 0, len(gens))
	for _, g := range gens {
		rep := fsckGen(fsys, g)
		switch rep.Verdict {
		case VerdictCorrupt, VerdictCatalogMismatch, VerdictCatalogMissing:
			if fixed := repairGen(fsys, rep); len(fixed) > 0 {
				fresh := fsckGen(fsys, g)
				if fresh.Verdict == VerdictOK {
					fresh.Verdict = VerdictRepaired
				}
				fresh.Files = append(fixed, fresh.Files...)
				rep = fresh
			}
		}
		reports = append(reports, rep)
	}
	// The chain pass runs after every per-generation repair so a delta
	// whose base was just rebuilt comes out clean, and one whose base is
	// beyond repair comes out CHAIN-BROKEN.
	applyChainVerdicts(fsys, reports)
	return reports, nil
}

// repairGen rebuilds what it can of one damaged committed generation and
// returns a report line per artifact it rewrote.
func repairGen(fsys rt.FS, rep GenReport) []FileReport {
	m, err := Load(fsys, rep.Base)
	if err != nil {
		return nil // no trustworthy commit record to repair against
	}
	status := make(map[string]string, len(rep.Files))
	for _, f := range rep.Files {
		status[f.Name] = f.Status
	}
	var fixed []FileReport
	for _, e := range m.Files {
		st := status[e.Name]
		if st == "ok" || st == "" {
			continue
		}
		donor := findDonor(m, e, status)
		if donor == "" {
			continue
		}
		if err := copyFile(fsys, donor, e.Name); err != nil {
			continue
		}
		status[e.Name] = "ok"
		fixed = append(fixed, FileReport{Name: e.Name, Status: "repaired",
			Detail: fmt.Sprintf("rebuilt from %s", donor)})
	}
	if m.Catalog != nil && rep.Catalog != "ok" && rep.Catalog != "" && rep.Catalog != "none" {
		if fr, ok := rebuildCatalog(fsys, m); ok {
			fixed = append(fixed, fr)
		}
	}
	return fixed
}

// findDonor picks another manifested file whose committed size and
// directory CRC equal the damaged entry's and whose scrub (or repair, this
// pass) left it clean. Byte-identical replicas always satisfy this; two
// coincidentally different files never can, since DirCRC covers the
// directory bytes that locate every payload.
func findDonor(m *Manifest, e FileEntry, status map[string]string) string {
	for _, d := range m.Files {
		if d.Name == e.Name || d.Size != e.Size || d.DirCRC != e.DirCRC {
			continue
		}
		if status[d.Name] != "ok" {
			continue
		}
		return d.Name
	}
	return ""
}

// rebuildCatalog regenerates the block catalog by re-merging the
// manifested files' directories — the same deterministic walk Commit runs,
// in the same (manifest, i.e. lexical) file order — and installs it only
// if the rebuilt blob matches the manifest's pinned size and CRC.
func rebuildCatalog(fsys rt.FS, m *Manifest) (FileReport, bool) {
	cat := &catalog.Catalog{}
	for _, e := range m.Files {
		_, _, sets, err := hdf.ScanDir(fsys, e.Name)
		if err != nil {
			return FileReport{}, false // a data file is still bad; nothing to index
		}
		cat.AddFile(e.Name, sets)
	}
	blob := cat.Encode()
	if int64(len(blob)) != m.Catalog.Size || hdf.Checksum(blob) != m.Catalog.CRC {
		return FileReport{}, false
	}
	if err := writeBlob(fsys, m.Catalog.Name, blob); err != nil {
		return FileReport{}, false
	}
	return FileReport{Name: m.Catalog.Name, Status: "repaired",
		Detail: "rebuilt from manifested files"}, true
}

// copyFile clones src's bytes over dst via a staged temporary and an
// atomic rename, so a crash mid-repair never leaves a half-written dst.
func copyFile(fsys rt.FS, src, dst string) error {
	f, err := fsys.Open(src)
	if err != nil {
		return err
	}
	size, err := f.Size()
	if err != nil {
		f.Close()
		return err
	}
	buf := make([]byte, size)
	if size > 0 {
		if _, err := f.ReadAt(buf, 0); err != nil {
			f.Close()
			return err
		}
	}
	f.Close()
	return writeBlob(fsys, dst, buf)
}

func writeBlob(fsys rt.FS, name string, blob []byte) error {
	tmp := name + hdf.TmpSuffix
	f, err := fsys.Create(tmp)
	if err != nil {
		return err
	}
	if len(blob) > 0 {
		if _, err := f.WriteAt(blob, 0); err != nil {
			f.Close()
			return err
		}
	}
	if err := f.Close(); err != nil {
		return err
	}
	return fsys.Rename(tmp, name)
}

package snapshot

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"genxio/internal/catalog"
	"genxio/internal/hdf"
	"genxio/internal/metrics"
	"genxio/internal/mpi"
	"genxio/internal/rt"
)

// Generation is one snapshot base discovered under a directory prefix.
type Generation struct {
	// Base is the generation's base name (restart input for the I/O
	// services).
	Base string
	// Committed reports whether the generation has a manifest — the
	// commit record written last. Uncommitted generations are crash
	// residue and never restart candidates.
	Committed bool
}

// baseOf derives the generation base from a snapshot artifact name:
// base.manifest, base.catalog, base_s000.rhdf, a replica base_s000r1.rhdf,
// base_p00000.rhdf, or any of those with a staged .tmp suffix. It returns
// "" for names that are not snapshot artifacts.
func baseOf(name string) string {
	name = strings.TrimSuffix(name, hdf.TmpSuffix)
	if b, ok := strings.CutSuffix(name, Suffix); ok {
		return b
	}
	if b, ok := strings.CutSuffix(name, catalog.Suffix); ok {
		return b
	}
	name, ok := strings.CutSuffix(name, ".rhdf")
	if !ok {
		return ""
	}
	i := strings.LastIndexByte(name, '_')
	if i < 0 || i+1 >= len(name) {
		return ""
	}
	tail := name[i+1:]
	if tail[0] != 's' && tail[0] != 'p' {
		return ""
	}
	digits := tail[1:]
	if tail[0] == 's' {
		// Server files may carry a replica suffix: sNNNrM.
		if j := strings.IndexByte(digits, 'r'); j >= 0 {
			if j == 0 || j == len(digits)-1 {
				return ""
			}
			for _, c := range digits[j+1:] {
				if c < '0' || c > '9' {
					return ""
				}
			}
			digits = digits[:j]
		}
	}
	if len(digits) == 0 {
		return ""
	}
	for _, c := range digits {
		if c < '0' || c > '9' {
			return ""
		}
	}
	return name[:i]
}

// Generations discovers the snapshot generations under prefix (typically
// the run's output directory plus "/"), newest first. Base names must
// order lexically by age — which the zero-padded snap%06d convention
// guarantees — since the epoch lives in the manifest and uncommitted
// generations have none.
func Generations(fsys rt.FS, prefix string) ([]Generation, error) {
	names, err := fsys.List(prefix)
	if err != nil {
		return nil, err
	}
	committed := make(map[string]bool)
	seen := make(map[string]bool)
	var bases []string
	for _, name := range names {
		b := baseOf(name)
		if b == "" {
			continue
		}
		if !seen[b] {
			seen[b] = true
			bases = append(bases, b)
		}
		if strings.HasSuffix(name, Suffix) {
			committed[b] = true
		}
	}
	sort.Sort(sort.Reverse(sort.StringSlice(bases)))
	gens := make([]Generation, len(bases))
	for i, b := range bases {
		gens[i] = Generation{Base: b, Committed: committed[b]}
	}
	return gens, nil
}

// Options configures a Restore walk.
type Options struct {
	// Comm, when set, makes the walk collective: rank 0 verifies each
	// manifest and broadcasts the verdict, and every generation attempt
	// ends with an allreduce so all ranks agree on success or fallback.
	// Every rank of the communicator must call Restore with the same
	// arguments. Nil runs single-process.
	Comm mpi.Comm
	// Metrics, when set, receives rocpanda.restart.generations_scanned
	// and rocpanda.restart.fallbacks counters. Nil disables recording.
	Metrics *metrics.Registry
}

// Restore walks the generations under prefix newest-first and calls try
// with each restorable base until one attempt succeeds on every rank,
// returning that base. Uncommitted generations, generations whose
// manifest fails verification, and generations whose try fails (for
// example rocpanda.ErrIncompleteRestart after a server skipped a
// checksum-damaged file) are fallen past, each bumping the
// rocpanda.restart.fallbacks counter once.
func Restore(fsys rt.FS, prefix string, try func(base string) error, opts Options) (string, error) {
	gens, err := Generations(fsys, prefix)
	if err != nil {
		return "", err
	}
	scanned := opts.Metrics.Counter("rocpanda.restart.generations_scanned")
	fallbacks := opts.Metrics.Counter("rocpanda.restart.fallbacks")
	var lastErr error
	for _, g := range gens {
		scanned.Inc()
		ok := g.Committed
		if !ok {
			lastErr = fmt.Errorf("snapshot: %s has no manifest (uncommitted)", g.Base)
		}
		if ok {
			// Manifest verification touches every file's header and
			// directory; one rank does it and shares the verdict.
			if opts.Comm == nil || opts.Comm.Rank() == 0 {
				m, err := Load(fsys, g.Base)
				switch {
				case err != nil:
					ok = false
					lastErr = err
				case m.ChainDepth > 0:
					// A delta generation restores through its chain: every
					// link down to the full base must be committed and
					// loadable, and each link's files verify with the same
					// per-link replication tolerance a full generation gets.
					// A broken link fails the whole head — the walk falls
					// back to an older (possibly full) generation.
					chain, cerr := LoadChain(fsys, g.Base)
					if cerr != nil {
						ok = false
						lastErr = cerr
						break
					}
					for _, link := range chain {
						if verr := link.Manifest.Verify(fsys); verr != nil && link.Manifest.Replication <= 1 {
							ok = false
							lastErr = verr
							break
						}
					}
				default:
					if verr := m.Verify(fsys); verr != nil && m.Replication <= 1 {
						// A replicated generation (Replication > 1) is still
						// attempted with damaged or missing files: the read
						// path retries each pane against its replicas, and the
						// attempt itself fails — falling back — only when some
						// pane is bad in every copy.
						ok = false
						lastErr = verr
					}
				}
			}
			if opts.Comm != nil {
				v := []byte{0}
				if ok {
					v[0] = 1
				}
				ok = opts.Comm.Bcast(0, v)[0] == 1
			}
		}
		if ok {
			err := try(g.Base)
			bad := 0.0
			if err != nil {
				bad = 1
				lastErr = err
			}
			if opts.Comm != nil {
				bad = opts.Comm.AllreduceMax(bad)
			}
			if bad == 0 {
				return g.Base, nil
			}
		}
		fallbacks.Inc()
	}
	if lastErr != nil {
		return "", fmt.Errorf("snapshot: no restorable generation under %q (last: %w)", prefix, lastErr)
	}
	return "", fmt.Errorf("snapshot: no generations under %q", prefix)
}

// Prune removes all artifacts of generations older than the newest
// retain ones — snapshot files, staged temporaries, and the manifest,
// which goes first so a crash mid-prune leaves the generation visibly
// uncommitted rather than silently partial. A generation referenced by
// a retained delta chain is pinned: the transitive BaseGeneration
// closure of every kept committed generation survives, however old, so
// a delta is never pruned out from under its children. Files already
// gone are tolerated (a crashed or concurrent prune can simply be
// re-run). retain <= 0 keeps everything. It returns the removed bases
// in sorted (oldest-first) order.
func Prune(fsys rt.FS, prefix string, retain int) ([]string, error) {
	if retain <= 0 {
		return nil, nil
	}
	gens, err := Generations(fsys, prefix)
	if err != nil {
		return nil, err
	}
	if len(gens) <= retain {
		return nil, nil
	}
	// Pin the chain ancestry of every retained committed generation.
	// An unreadable manifest contributes no links — its chain is already
	// unrestorable, so nothing extra needs protecting.
	pinned := make(map[string]bool)
	queue := make([]string, 0, retain)
	for _, g := range gens[:retain] {
		if g.Committed {
			queue = append(queue, g.Base)
		}
	}
	for len(queue) > 0 {
		base := queue[0]
		queue = queue[1:]
		m, err := Load(fsys, base)
		if err != nil || m.BaseGeneration == "" || pinned[m.BaseGeneration] {
			continue
		}
		pinned[m.BaseGeneration] = true
		queue = append(queue, m.BaseGeneration)
	}
	// remove tolerates rt.ErrNotExist: a prune interrupted after some
	// removals (or racing a concurrent prune) must be re-runnable.
	remove := func(name string) error {
		if err := fsys.Remove(name); err != nil && !errors.Is(err, rt.ErrNotExist) {
			return err
		}
		return nil
	}
	var removed []string
	for _, g := range gens[retain:] {
		if pinned[g.Base] {
			continue
		}
		if g.Committed {
			if err := remove(g.Base + Suffix); err != nil {
				return sorted(removed), err
			}
		}
		// The catalog blob goes right after the manifest so a pruned
		// generation leaves no orphaned index behind; older generations
		// (and crash windows before catalog.Write) have none.
		if err := remove(g.Base + catalog.Suffix); err != nil {
			return sorted(removed), err
		}
		if err := remove(g.Base + catalog.Suffix + hdf.TmpSuffix); err != nil {
			return sorted(removed), err
		}
		names, err := fsys.List(g.Base + "_")
		if err != nil {
			return sorted(removed), err
		}
		for _, name := range names {
			if baseOf(name) != g.Base {
				continue
			}
			if err := remove(name); err != nil {
				return sorted(removed), err
			}
		}
		// Staged manifest residue (base.manifest.tmp) sits outside the
		// base+"_" namespace.
		if err := remove(g.Base + Suffix + hdf.TmpSuffix); err != nil {
			return sorted(removed), err
		}
		removed = append(removed, g.Base)
	}
	return sorted(removed), nil
}

func sorted(names []string) []string {
	sort.Strings(names)
	return names
}

package snapshot

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"genxio/internal/faults"
	"genxio/internal/hdf"
	"genxio/internal/metrics"
	"genxio/internal/rt"
)

// writeServerFile writes one server-style snapshot file holding the given
// panes. Two calls with the same panes produce byte-identical files —
// the property the replica layer guarantees and repair relies on.
func writeServerFile(t *testing.T, fsys rt.FS, name string, paneIDs []int) {
	t.Helper()
	w, err := hdf.Create(fsys, name, rt.NewWallClock(), hdf.NullProfile())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range paneIDs {
		ds := fmt.Sprintf("/fluid/pane%06d/pressure", id)
		if err := w.CreateDataset(ds, hdf.F64, []int64{4}, nil,
			hdf.F64Bytes([]float64{float64(id), 1, 2, 3})); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// writeReplicatedGen writes an R=2 generation: each server's primary plus
// a byte-identical replica homed at the next server's file set.
func writeReplicatedGen(t *testing.T, fsys rt.FS, base string, nservers, npanes int) {
	t.Helper()
	for s := 0; s < nservers; s++ {
		var panes []int
		for p := s; p < npanes; p += nservers {
			panes = append(panes, 1000+p)
		}
		writeServerFile(t, fsys, fmt.Sprintf("%s_s%03d.rhdf", base, s), panes)
		home := (s + 1) % nservers
		writeServerFile(t, fsys, fmt.Sprintf("%s_s%03dr1.rhdf", base, home), panes)
	}
}

func readFileBytes(t *testing.T, fsys rt.FS, name string) []byte {
	t.Helper()
	f, err := fsys.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		t.Fatal(err)
	}
	b := make([]byte, size)
	if size > 0 {
		if _, err := f.ReadAt(b, 0); err != nil {
			t.Fatal(err)
		}
	}
	return b
}

func TestBaseOfReplicaNames(t *testing.T) {
	cases := map[string]string{
		"out/snap000010_s000r1.rhdf":     "out/snap000010",
		"out/snap000010_s012r2.rhdf.tmp": "out/snap000010",
		"out/snap000010_s000r.rhdf":      "", // empty replica digits
		"out/snap000010_sr1.rhdf":        "", // empty server digits
		"out/snap000010_s0a0r1.rhdf":     "", // non-digit server part
		"out/snap000010_p00002r1.rhdf":   "", // per-rank files have no replicas
	}
	for in, want := range cases {
		if got := baseOf(in); got != want {
			t.Fatalf("baseOf(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCommitRecordsReplication(t *testing.T) {
	fsys := rt.NewMemFS()
	writeReplicatedGen(t, fsys, "out/snap000010", 2, 4)
	m, err := Commit(fsys, "out/snap000010", 10, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if m.Replication != 2 {
		t.Fatalf("replicated commit has Replication %d, want 2", m.Replication)
	}
	if len(m.Files) != 4 {
		t.Fatalf("manifest lists %d files, want 4 (2 primaries + 2 replicas)", len(m.Files))
	}
	// Replicas are byte-identical to their primaries, so the manifest pins
	// matching (size, dir CRC) pairs — what content-addressed repair needs.
	bySize := map[string]int{}
	for _, e := range m.Files {
		bySize[fmt.Sprintf("%d/%08x", e.Size, e.DirCRC)]++
	}
	for k, n := range bySize {
		if n != 2 {
			t.Fatalf("file fingerprint %s appears %d times, want a primary+replica pair", k, n)
		}
	}

	writePaneGen(t, fsys, "out/snap000020", 2, 4)
	m, err = Commit(fsys, "out/snap000020", 20, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Replication != 1 {
		t.Fatalf("unreplicated commit has Replication %d, want 1", m.Replication)
	}
}

func TestRestoreAllUncommitted(t *testing.T) {
	fsys := rt.NewMemFS()
	// Two generations, both crash residue: files on disk, no manifest.
	writeGen(t, fsys, "out/snap000000", 2, 0)
	writeGen(t, fsys, "out/snap000100", 2, 1)

	reg := metrics.New()
	if _, err := Restore(fsys, "out/", tryRead(fsys), Options{Metrics: reg}); err == nil {
		t.Fatal("restored from a tree of uncommitted generations")
	} else if !strings.Contains(err.Error(), "uncommitted") {
		t.Fatalf("error %v does not name the uncommitted cause", err)
	}
	if got := reg.Counter("rocpanda.restart.generations_scanned").Value(); got != 2 {
		t.Fatalf("generations_scanned = %d, want 2", got)
	}
	if got := reg.Counter("rocpanda.restart.fallbacks").Value(); got != 2 {
		t.Fatalf("fallbacks = %d, want 2", got)
	}
}

// TestRestoreAttemptsDegradedReplicatedGeneration: losing a file costs a
// replicated generation nothing at the walk level — the attempt proceeds
// and the read path (here stubbed) decides — while the same loss on an
// unreplicated generation still falls back before trying.
func TestRestoreAttemptsDegradedReplicatedGeneration(t *testing.T) {
	fsys := rt.NewMemFS()
	writeGen(t, fsys, "out/snap000000", 2, 0)
	if _, err := Commit(fsys, "out/snap000000", 0, 0); err != nil {
		t.Fatal(err)
	}
	writeReplicatedGen(t, fsys, "out/snap000100", 2, 4)
	if _, err := Commit(fsys, "out/snap000100", 100, 1); err != nil {
		t.Fatal(err)
	}
	if err := fsys.Remove("out/snap000100_s000.rhdf"); err != nil {
		t.Fatal(err)
	}

	reg := metrics.New()
	attempted := []string{}
	try := func(base string) error { attempted = append(attempted, base); return nil }
	base, err := Restore(fsys, "out/", try, Options{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if base != "out/snap000100" {
		t.Fatalf("restored %q, want the degraded replicated generation", base)
	}
	if got := reg.Counter("rocpanda.restart.fallbacks").Value(); got != 0 {
		t.Fatalf("fallbacks = %d, want 0", got)
	}

	// Control: the same loss on an R=1 generation is a fallback, before
	// the attempt — existing behaviour, unchanged.
	fsys2 := rt.NewMemFS()
	writeGen(t, fsys2, "out/snap000000", 2, 0)
	if _, err := Commit(fsys2, "out/snap000000", 0, 0); err != nil {
		t.Fatal(err)
	}
	files := writeGen(t, fsys2, "out/snap000100", 2, 1)
	if _, err := Commit(fsys2, "out/snap000100", 100, 1); err != nil {
		t.Fatal(err)
	}
	if err := fsys2.Remove(files[0]); err != nil {
		t.Fatal(err)
	}
	reg2 := metrics.New()
	attempted = attempted[:0]
	base, err = Restore(fsys2, "out/", try, Options{Metrics: reg2})
	if err != nil {
		t.Fatal(err)
	}
	if base != "out/snap000000" {
		t.Fatalf("R=1 restored %q, want the older intact generation", base)
	}
	for _, b := range attempted {
		if b == "out/snap000100" {
			t.Fatal("R=1 walk attempted the damaged generation")
		}
	}
	if got := reg2.Counter("rocpanda.restart.fallbacks").Value(); got != 1 {
		t.Fatalf("R=1 fallbacks = %d, want 1", got)
	}
}

func TestPruneRemovesReplicaFiles(t *testing.T) {
	fsys := rt.NewMemFS()
	writeReplicatedGen(t, fsys, "out/snap000000", 2, 4)
	if _, err := Commit(fsys, "out/snap000000", 0, 0); err != nil {
		t.Fatal(err)
	}
	writeReplicatedGen(t, fsys, "out/snap000100", 2, 4)
	if _, err := Commit(fsys, "out/snap000100", 100, 1); err != nil {
		t.Fatal(err)
	}
	removed, err := Prune(fsys, "out/", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 1 || removed[0] != "out/snap000000" {
		t.Fatalf("removed %v", removed)
	}
	if names, _ := fsys.List("out/snap000000"); len(names) != 0 {
		t.Fatalf("pruned generation left artifacts (replicas?): %v", names)
	}
}

// TestRepairRebuildsCorruptTree drives the genxfsck -repair engine: a
// generation with a bit-flipped primary, a deleted primary, and a damaged
// catalog blob must come back OK from its replicas, the second scrub must
// pass, and no committed-good file may change by a single byte.
func TestRepairRebuildsCorruptTree(t *testing.T) {
	fsys := rt.NewMemFS()
	writeGen(t, fsys, "out/snap000000", 2, 0) // older healthy generation
	if _, err := Commit(fsys, "out/snap000000", 0, 0); err != nil {
		t.Fatal(err)
	}
	writeReplicatedGen(t, fsys, "out/snap000100", 2, 4)
	if _, err := Commit(fsys, "out/snap000100", 100, 1); err != nil {
		t.Fatal(err)
	}

	good := map[string][]byte{}
	for _, name := range []string{
		"out/snap000000_p00000.rhdf", "out/snap000000_p00001.rhdf",
		"out/snap000100_s000r1.rhdf", "out/snap000100_s001r1.rhdf",
	} {
		good[name] = readFileBytes(t, fsys, name)
	}
	wantPrimary := map[string][]byte{
		// s000's data is replicated at s001r1 and vice versa.
		"out/snap000100_s000.rhdf": good["out/snap000100_s001r1.rhdf"],
		"out/snap000100_s001.rhdf": good["out/snap000100_s000r1.rhdf"],
	}

	// Damage: flip a payload bit in one primary, delete the other, and
	// flip a bit in the catalog blob.
	if err := faults.FlipBit(fsys, "out/snap000100_s000.rhdf", int64(hdf.HeaderSize()*8+3)); err != nil {
		t.Fatal(err)
	}
	if err := fsys.Remove("out/snap000100_s001.rhdf"); err != nil {
		t.Fatal(err)
	}
	if err := faults.FlipBit(fsys, "out/snap000100.catalog", 18*8); err != nil {
		t.Fatal(err)
	}

	pre, err := Fsck(fsys, "out/")
	if err != nil {
		t.Fatal(err)
	}
	if pre[0].Verdict != VerdictCorrupt {
		t.Fatalf("damaged generation scrubs %q, want CORRUPT", pre[0].Verdict)
	}

	reports, err := Repair(fsys, "out/")
	if err != nil {
		t.Fatal(err)
	}
	byBase := map[string]GenReport{}
	for _, r := range reports {
		byBase[r.Base] = r
	}
	rep := byBase["out/snap000100"]
	if rep.Verdict != VerdictRepaired {
		t.Fatalf("repaired generation verdict %q, want %q\n%s", rep.Verdict, VerdictRepaired, Format(reports))
	}
	repaired := map[string]bool{}
	for _, fr := range rep.Files {
		if fr.Status == "repaired" {
			repaired[fr.Name] = true
		}
	}
	for _, name := range []string{"out/snap000100_s000.rhdf", "out/snap000100_s001.rhdf", "out/snap000100.catalog"} {
		if !repaired[name] {
			t.Fatalf("%s not reported repaired: %+v", name, rep.Files)
		}
	}
	if v := byBase["out/snap000000"].Verdict; v != VerdictOK {
		t.Fatalf("healthy generation verdict %q after repair", v)
	}
	if !Clean(reports) {
		t.Fatal("Clean() false after repair")
	}

	// Second scrub pass: the tree is OK again, no REPAIRED annotations
	// needed to excuse anything.
	post, err := Fsck(fsys, "out/")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range post {
		if r.Verdict != VerdictOK {
			t.Fatalf("post-repair scrub: %s is %q\n%s", r.Base, r.Verdict, Format(post))
		}
	}

	// Committed-good files are untouched; rebuilt primaries are exact
	// copies of their replicas.
	for name, want := range good {
		if !bytes.Equal(readFileBytes(t, fsys, name), want) {
			t.Fatalf("repair modified committed-good file %s", name)
		}
	}
	for name, want := range wantPrimary {
		if !bytes.Equal(readFileBytes(t, fsys, name), want) {
			t.Fatalf("rebuilt %s is not byte-identical to its replica", name)
		}
	}
	// No staging residue.
	names, _ := fsys.List("out/")
	for _, name := range names {
		if strings.HasSuffix(name, hdf.TmpSuffix) {
			t.Fatalf("repair left staging residue %s", name)
		}
	}
}

// TestRepairLeavesUnrepairableDamage: with every copy of a pane bad there
// is no donor, so Repair must not invent one — the generation stays
// CORRUPT and the restore walk's generation fallback remains the answer.
func TestRepairLeavesUnrepairableDamage(t *testing.T) {
	fsys := rt.NewMemFS()
	writeReplicatedGen(t, fsys, "out/snap000100", 2, 4)
	if _, err := Commit(fsys, "out/snap000100", 100, 1); err != nil {
		t.Fatal(err)
	}
	// Both copies of server 0's data are damaged.
	if err := faults.FlipBit(fsys, "out/snap000100_s000.rhdf", int64(hdf.HeaderSize()*8+3)); err != nil {
		t.Fatal(err)
	}
	if err := fsys.Remove("out/snap000100_s001r1.rhdf"); err != nil {
		t.Fatal(err)
	}
	reports, err := Repair(fsys, "out/")
	if err != nil {
		t.Fatal(err)
	}
	if reports[0].Verdict != VerdictCorrupt {
		t.Fatalf("verdict %q, want CORRUPT (no donor exists)", reports[0].Verdict)
	}
	if Clean(reports) {
		t.Fatal("Clean() true with unrepairable damage")
	}
}

package snapshot

import (
	"fmt"
	"sort"

	"genxio/internal/catalog"
	"genxio/internal/hdf"
	"genxio/internal/roccom"
	"genxio/internal/rt"
)

// PaneUniverse returns the sorted set of pane IDs a committed generation
// holds for a window — the input to the M×N repartitioner, which lets a
// restart run use a different rank count than the writing run. The catalog
// answers without touching data files; generations without a usable
// catalog fall back to walking the manifested files' directories.
func PaneUniverse(fsys rt.FS, base, window string) ([]int, error) {
	if cat, err := catalog.Load(fsys, base); err == nil {
		if ids := cat.Panes(window); len(ids) > 0 {
			return ids, nil
		}
	}
	m, err := Load(fsys, base)
	if err != nil {
		return nil, fmt.Errorf("snapshot: pane universe of %s: %w", base, err)
	}
	seen := make(map[int]bool)
	for _, e := range m.Files {
		sets, err := hdf.DirEntries(fsys, e.Name)
		if err != nil {
			return nil, fmt.Errorf("snapshot: pane universe of %s: %w", base, err)
		}
		for _, d := range sets {
			w, pane, _, ok := roccom.ParseDatasetName(d.Name)
			if ok && w == window {
				seen[pane] = true
			}
		}
	}
	if len(seen) == 0 {
		return nil, fmt.Errorf("snapshot: generation %s has no panes in window %q", base, window)
	}
	ids := make([]int, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids, nil
}

package snapshot

import (
	"fmt"
	"sort"

	"genxio/internal/catalog"
	"genxio/internal/hdf"
	"genxio/internal/roccom"
	"genxio/internal/rt"
)

// PaneUniverse returns the sorted set of pane IDs a committed generation
// holds for a window — the input to the M×N repartitioner, which lets a
// restart run use a different rank count than the writing run. A delta
// generation answers from the universe its manifest recorded at snapshot
// time (the files alone cannot: most panes live down the chain, and a
// pane deleted by refinement must not resurrect from a base generation).
// Full generations answer from the catalog; ones without a usable
// catalog fall back to walking the manifested files' directories.
func PaneUniverse(fsys rt.FS, base, window string) ([]int, error) {
	m, err := Load(fsys, base)
	if err == nil && m.ChainDepth > 0 {
		ids := append([]int(nil), m.Panes[window]...)
		if len(ids) == 0 {
			return nil, fmt.Errorf("snapshot: delta generation %s records no panes in window %q", base, window)
		}
		sort.Ints(ids)
		return ids, nil
	}
	if cat, err := catalog.Load(fsys, base); err == nil {
		if ids := cat.Panes(window); len(ids) > 0 {
			return ids, nil
		}
	}
	if err != nil {
		return nil, fmt.Errorf("snapshot: pane universe of %s: %w", base, err)
	}
	seen := make(map[int]bool)
	for _, e := range m.Files {
		sets, err := hdf.DirEntries(fsys, e.Name)
		if err != nil {
			return nil, fmt.Errorf("snapshot: pane universe of %s: %w", base, err)
		}
		for _, d := range sets {
			w, pane, _, ok := roccom.ParseDatasetName(d.Name)
			if ok && w == window {
				seen[pane] = true
			}
		}
	}
	if len(seen) == 0 {
		return nil, fmt.Errorf("snapshot: generation %s has no panes in window %q", base, window)
	}
	ids := make([]int, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids, nil
}

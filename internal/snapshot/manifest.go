// Package snapshot implements the durable-snapshot commit protocol shared
// by every I/O module: writers stage RHDF files under temporary names and
// rename them into place (internal/hdf), and a completed generation is
// committed by writing a small manifest — epoch, file list, per-file sizes
// and directory checksums — as the last step. A generation without its
// manifest never happened as far as restart is concerned, which is what
// makes a crash at any point recoverable: the previous committed
// generation is still intact and still selected.
//
// The package also provides the read side: generation discovery, manifest
// verification, a newest-first restore walk that falls back past damaged
// generations, retention pruning, and the deep scrub behind cmd/genxfsck.
package snapshot

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"genxio/internal/catalog"
	"genxio/internal/hdf"
	"genxio/internal/rt"
)

// ManifestSchema identifies the manifest JSON layout; bump on breaking
// changes so tooling can dispatch.
const ManifestSchema = "genxio-manifest/v1"

// Suffix is appended to a generation's base name to form its manifest
// file name.
const Suffix = ".manifest"

// CatalogRef pins a generation's block-catalog blob from the manifest:
// the catalog is written before the manifest, so the commit record can
// carry its size and whole-blob CRC32C, letting readers detect a damaged
// or swapped catalog cheaply. Absent on generations committed by older
// writers; restart then uses the scan path.
type CatalogRef struct {
	Name string `json:"name"`
	Size int64  `json:"size"`
	CRC  uint32 `json:"crc32c"`
}

// FileEntry records one snapshot file at commit time.
type FileEntry struct {
	// Name is the file's full path on the snapshot filesystem.
	Name string `json:"name"`
	// Size is the committed length in bytes.
	Size int64 `json:"size"`
	// DirCRC is the CRC32C of the file's RHDF directory bytes; a stale or
	// torn replacement of the file cannot keep both Size and DirCRC.
	DirCRC uint32 `json:"dir_crc32c"`
	// Datasets is the directory's dataset count.
	Datasets int `json:"datasets"`
}

// Manifest is a generation's commit record.
type Manifest struct {
	Schema string `json:"schema"`
	// Base is the generation's base name (files are Base_*.rhdf).
	Base string `json:"base"`
	// Epoch is the simulation step the snapshot was taken at.
	Epoch int64 `json:"epoch"`
	// Time is the simulation time of the snapshot.
	Time float64 `json:"time"`
	// Files lists every committed file, in lexical order.
	Files []FileEntry `json:"files"`
	// Catalog references the generation's block-catalog blob, when one was
	// committed. Verify deliberately ignores it: a damaged catalog costs
	// the indexed read path, not the generation.
	Catalog *CatalogRef `json:"catalog,omitempty"`
	// Replication is the number of copies of each server file set this
	// generation carries: 1 + the highest replica rank among the committed
	// files. A generation with Replication > 1 can lose or corrupt files
	// and still restore — the read path retries each pane against the
	// replicas — so the restore walk attempts it even when Verify fails.
	// Zero on manifests committed by older writers (treated as 1).
	Replication int `json:"replication,omitempty"`
	// BaseGeneration names the committed generation this delta resolves
	// against: panes not rewritten here are read from the base (which may
	// itself be a delta — the chain walks down to a full generation).
	// Empty on full generations.
	BaseGeneration string `json:"base_generation,omitempty"`
	// ChainDepth is the generation's distance from its full base: 0 for a
	// full generation, base's depth + 1 for a delta. It bounds the chain
	// walk and is what the restart counters report.
	ChainDepth int `json:"chain_depth,omitempty"`
	// Panes records the generation's global pane universe per window —
	// every pane a restart of this generation must restore, whether it
	// was rewritten here or inherited from the chain. Delta generations
	// need it because the file set alone no longer spells out the
	// universe (a pane deleted by refinement must not resurrect from a
	// base generation). Absent on full generations, whose files are the
	// universe.
	Panes map[string][]int `json:"panes,omitempty"`
}

// ChainInfo carries the delta-chain facts CommitChained records in the
// manifest of a delta generation.
type ChainInfo struct {
	// Base is the committed generation this delta resolves against.
	Base string
	// Depth is this generation's chain depth (base's depth + 1).
	Depth int
	// Panes is the global pane universe per window at snapshot time.
	Panes map[string][]int
}

// Commit writes the commit record for the generation under base: it
// summarizes every committed Base_*.rhdf file and atomically publishes
// base+Suffix. It must be called only after all of the generation's
// writers have closed (in the collective modules, by one rank, after a
// barrier). Committing a generation with no files is an error — there is
// nothing to restore.
func Commit(fsys rt.FS, base string, epoch int64, tm float64) (*Manifest, error) {
	return CommitChained(fsys, base, epoch, tm, nil)
}

// CommitChained is Commit for a delta generation: chain records the base
// generation the delta resolves against, its chain depth, and the global
// pane universe at snapshot time. A nil chain commits a full generation
// (exactly Commit). A delta generation may legitimately have no files —
// nothing was dirty — because its restorable state lives in the chain.
func CommitChained(fsys rt.FS, base string, epoch int64, tm float64, chain *ChainInfo) (*Manifest, error) {
	names, err := fsys.List(base + "_")
	if err != nil {
		return nil, fmt.Errorf("snapshot: commit %s: %w", base, err)
	}
	m := &Manifest{Schema: ManifestSchema, Base: base, Epoch: epoch, Time: tm}
	if chain != nil {
		if chain.Base == "" || chain.Base == base {
			return nil, fmt.Errorf("snapshot: commit %s: invalid chain base %q", base, chain.Base)
		}
		if chain.Depth < 1 {
			return nil, fmt.Errorf("snapshot: commit %s: invalid chain depth %d", base, chain.Depth)
		}
		m.BaseGeneration = chain.Base
		m.ChainDepth = chain.Depth
		m.Panes = chain.Panes
	}
	cat := &catalog.Catalog{}
	for _, name := range names {
		if !strings.HasSuffix(name, ".rhdf") {
			continue // staged *.tmp residue is not part of the generation
		}
		size, crc, sets, err := hdf.ScanDir(fsys, name)
		if err != nil {
			return nil, fmt.Errorf("snapshot: commit %s: %w", base, err)
		}
		m.Files = append(m.Files, FileEntry{Name: name, Size: size, DirCRC: crc, Datasets: len(sets)})
		cat.AddFile(name, sets)
	}
	if len(m.Files) == 0 && chain == nil {
		return nil, fmt.Errorf("snapshot: commit %s: no snapshot files", base)
	}
	m.Replication = 1
	for _, e := range m.Files {
		if r := catalog.ReplicaRank(e.Name) + 1; r > m.Replication {
			m.Replication = r
		}
	}
	// The catalog goes to disk before the manifest: the manifest is the
	// commit record, so a crash between the two leaves an uncommitted
	// generation with a harmless orphan catalog, never a committed
	// generation pointing at a catalog that does not exist.
	catSize, catCRC, err := catalog.Write(fsys, base, cat)
	if err != nil {
		return nil, fmt.Errorf("snapshot: commit %s: %w", base, err)
	}
	m.Catalog = &CatalogRef{Name: base + catalog.Suffix, Size: catSize, CRC: catCRC}
	enc, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	tmp := base + Suffix + hdf.TmpSuffix
	f, err := fsys.Create(tmp)
	if err != nil {
		return nil, fmt.Errorf("snapshot: commit %s: %w", base, err)
	}
	if _, err := f.WriteAt(enc, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("snapshot: commit %s: %w", base, err)
	}
	if err := f.Close(); err != nil {
		return nil, fmt.Errorf("snapshot: commit %s: %w", base, err)
	}
	if err := fsys.Rename(tmp, base+Suffix); err != nil {
		return nil, fmt.Errorf("snapshot: commit %s: %w", base, err)
	}
	return m, nil
}

// Load reads and validates the manifest of the generation under base.
func Load(fsys rt.FS, base string) (*Manifest, error) {
	f, err := fsys.Open(base + Suffix)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, size)
	if size > 0 {
		if _, err := f.ReadAt(buf, 0); err != nil && err != io.EOF {
			return nil, fmt.Errorf("snapshot: manifest %s: %w", base, err)
		}
	}
	m, err := DecodeManifest(buf)
	if err != nil {
		return nil, fmt.Errorf("snapshot: manifest %s: %w", base, err)
	}
	return m, nil
}

// DecodeManifest parses and validates manifest JSON. It is the single
// entry point for untrusted manifest bytes (Load, the fsck scrub, the
// fuzzer): beyond the schema check it enforces the chain invariants —
// depth and base name must agree, a generation cannot base on itself,
// and the recorded pane universe must be well-formed — so downstream
// chain walks never see a manifest that lies about its own shape.
func DecodeManifest(buf []byte) (*Manifest, error) {
	m := &Manifest{}
	if err := json.Unmarshal(buf, m); err != nil {
		return nil, err
	}
	if m.Schema != ManifestSchema {
		return nil, fmt.Errorf("schema %q, want %q", m.Schema, ManifestSchema)
	}
	if m.Base == "" {
		return nil, fmt.Errorf("empty base")
	}
	if m.ChainDepth < 0 {
		return nil, fmt.Errorf("negative chain depth %d", m.ChainDepth)
	}
	if (m.BaseGeneration != "") != (m.ChainDepth > 0) {
		return nil, fmt.Errorf("chain depth %d disagrees with base generation %q", m.ChainDepth, m.BaseGeneration)
	}
	if m.BaseGeneration == m.Base && m.Base != "" {
		return nil, fmt.Errorf("generation %q chained to itself", m.Base)
	}
	if m.Panes != nil && m.ChainDepth == 0 {
		return nil, fmt.Errorf("full generation carries a delta pane universe")
	}
	for w, ids := range m.Panes {
		if w == "" {
			return nil, fmt.Errorf("pane universe with empty window name")
		}
		for _, id := range ids {
			if id < 0 {
				return nil, fmt.Errorf("pane universe %q has negative pane %d", w, id)
			}
		}
	}
	for _, e := range m.Files {
		if e.Name == "" {
			return nil, fmt.Errorf("file entry with empty name")
		}
		if e.Size < 0 {
			return nil, fmt.Errorf("file %q has negative size %d", e.Name, e.Size)
		}
	}
	return m, nil
}

// Verify checks the manifest's files against the filesystem: each must
// exist with the committed size and directory checksum. It reads only
// headers and directories; ReadData's per-dataset CRCs (and Fsck's deep
// scrub) cover the payload bytes.
func (m *Manifest) Verify(fsys rt.FS) error {
	for _, e := range m.Files {
		size, crc, _, err := hdf.DirInfo(fsys, e.Name)
		if err != nil {
			return fmt.Errorf("snapshot: verify %s: %s: %w", m.Base, e.Name, err)
		}
		if size != e.Size {
			return fmt.Errorf("snapshot: verify %s: %s is %d bytes, manifest says %d", m.Base, e.Name, size, e.Size)
		}
		if crc != e.DirCRC {
			return fmt.Errorf("%w: snapshot %s: %s directory crc32c %08x, manifest says %08x",
				hdf.ErrChecksum, m.Base, e.Name, crc, e.DirCRC)
		}
	}
	return nil
}

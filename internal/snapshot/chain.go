package snapshot

import (
	"fmt"

	"genxio/internal/catalog"
	"genxio/internal/rt"
)

// ChainGen is one link of a delta chain: a committed generation's base
// name, its manifest, and its catalog (nil only if the blob failed to
// load — callers that need indexed reads treat that as a broken link).
type ChainGen struct {
	Base     string
	Manifest *Manifest
	Catalog  *catalog.Catalog
}

// maxChainDepth bounds the chain walk against manifests whose recorded
// depths form an unbounded (or cyclic) ancestry. Real chains are capped
// by the FullEvery cadence, orders of magnitude below this.
const maxChainDepth = 1024

// LoadChain loads the generation under base and walks its delta chain
// down to the full generation, newest first: result[0] is base itself
// and the last element has ChainDepth 0. Every link must have a
// loadable, valid manifest — a missing or damaged link is an error (the
// chain cannot resolve panes without it) — and each link's catalog is
// loaded alongside; a catalog that fails to load is an error too, since
// chain resolution is catalog-driven (there is no scan fallback across
// generations: a delta's files do not spell out the inherited panes).
func LoadChain(fsys rt.FS, base string) ([]ChainGen, error) {
	var chain []ChainGen
	seen := make(map[string]bool)
	for cur := base; ; {
		if seen[cur] {
			return nil, fmt.Errorf("snapshot: chain of %s revisits %s", base, cur)
		}
		if len(chain) >= maxChainDepth {
			return nil, fmt.Errorf("snapshot: chain of %s exceeds depth %d", base, maxChainDepth)
		}
		seen[cur] = true
		m, err := Load(fsys, cur)
		if err != nil {
			return nil, fmt.Errorf("snapshot: chain of %s: link %s: %w", base, cur, err)
		}
		cat, err := catalog.Load(fsys, cur)
		if err != nil {
			return nil, fmt.Errorf("snapshot: chain of %s: link %s catalog: %w", base, cur, err)
		}
		chain = append(chain, ChainGen{Base: cur, Manifest: m, Catalog: cat})
		if m.ChainDepth == 0 {
			return chain, nil
		}
		cur = m.BaseGeneration
	}
}

// ChainCatalogs returns the chain's catalogs newest first, ready for
// catalog.ResolvePanes.
func ChainCatalogs(chain []ChainGen) []*catalog.Catalog {
	cats := make([]*catalog.Catalog, len(chain))
	for i, g := range chain {
		cats[i] = g.Catalog
	}
	return cats
}

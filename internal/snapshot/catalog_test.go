package snapshot

import (
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"genxio/internal/catalog"
	"genxio/internal/faults"
	"genxio/internal/hdf"
	"genxio/internal/rt"
)

// writePaneGen writes a generation whose files hold real pane datasets
// (the path grammar the catalog indexes), panes dealt round-robin across
// nfiles server-style files.
func writePaneGen(t *testing.T, fsys rt.FS, base string, nfiles, npanes int) {
	t.Helper()
	clock := rt.NewWallClock()
	for s := 0; s < nfiles; s++ {
		name := fmt.Sprintf("%s_s%03d.rhdf", base, s)
		w, err := hdf.Create(fsys, name, clock, hdf.NullProfile())
		if err != nil {
			t.Fatal(err)
		}
		for p := s; p < npanes; p += nfiles {
			id := 1000 + p
			ds := fmt.Sprintf("/fluid/pane%06d/pressure", id)
			if err := w.CreateDataset(ds, hdf.F64, []int64{4}, nil,
				hdf.F64Bytes([]float64{float64(id), 1, 2, 3})); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCommitWritesCatalogBeforeManifest(t *testing.T) {
	fsys := rt.NewMemFS()
	writePaneGen(t, fsys, "out/snap000010", 2, 5)
	m, err := Commit(fsys, "out/snap000010", 10, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if m.Catalog == nil {
		t.Fatal("manifest carries no catalog reference")
	}
	if m.Catalog.Name != "out/snap000010"+catalog.Suffix {
		t.Fatalf("catalog name %q", m.Catalog.Name)
	}
	cat, err := catalog.Load(fsys, "out/snap000010")
	if err != nil {
		t.Fatal(err)
	}
	if len(cat.Files) != 2 || len(cat.Entries) != 5 {
		t.Fatalf("catalog has %d files, %d entries; want 2, 5", len(cat.Files), len(cat.Entries))
	}
	if got := cat.Panes("fluid"); !reflect.DeepEqual(got, []int{1000, 1001, 1002, 1003, 1004}) {
		t.Fatalf("pane universe %v", got)
	}
	// The manifest's size and CRC pin the blob on disk.
	f, _ := fsys.Open(m.Catalog.Name)
	size, _ := f.Size()
	blob := make([]byte, size)
	f.ReadAt(blob, 0)
	f.Close()
	if size != m.Catalog.Size || hdf.Checksum(blob) != m.Catalog.CRC {
		t.Fatalf("catalog ref size %d crc %08x, blob is %d bytes crc %08x",
			m.Catalog.Size, m.Catalog.CRC, size, hdf.Checksum(blob))
	}
	// The reloaded manifest round-trips the reference.
	got, err := Load(fsys, "out/snap000010")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Catalog, m.Catalog) {
		t.Fatalf("reloaded catalog ref %+v, want %+v", got.Catalog, m.Catalog)
	}
}

func TestVerifyIgnoresCatalogDamage(t *testing.T) {
	fsys := rt.NewMemFS()
	writePaneGen(t, fsys, "out/snap000010", 1, 2)
	m, err := Commit(fsys, "out/snap000010", 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := faults.FlipBit(fsys, m.Catalog.Name, 12*8+3); err != nil {
		t.Fatal(err)
	}
	// A damaged catalog must not fail manifest verification — restart
	// degrades to the scan path instead of abandoning the generation.
	if err := m.Verify(fsys); err != nil {
		t.Fatalf("Verify failed on catalog damage: %v", err)
	}
	if _, err := catalog.Load(fsys, "out/snap000010"); err == nil {
		t.Fatal("damaged catalog loaded cleanly")
	}
}

func TestPruneRemovesCatalog(t *testing.T) {
	fsys := rt.NewMemFS()
	for i, b := range []string{"out/snap000000", "out/snap000100"} {
		writePaneGen(t, fsys, b, 1, 2)
		if _, err := Commit(fsys, b, int64(i*100), 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Prune(fsys, "out/", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := fsys.Open("out/snap000000" + catalog.Suffix); err == nil {
		t.Fatal("pruned generation's catalog survived")
	}
	if names, _ := fsys.List("out/snap000000"); len(names) != 0 {
		t.Fatalf("pruned generation left artifacts: %v", names)
	}
	if _, err := catalog.Load(fsys, "out/snap000100"); err != nil {
		t.Fatalf("surviving generation's catalog gone: %v", err)
	}
}

func TestPaneUniverse(t *testing.T) {
	fsys := rt.NewMemFS()
	writePaneGen(t, fsys, "out/snap000010", 2, 4)
	if _, err := Commit(fsys, "out/snap000010", 10, 0); err != nil {
		t.Fatal(err)
	}
	want := []int{1000, 1001, 1002, 1003}
	got, err := PaneUniverse(fsys, "out/snap000010", "fluid")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("catalog universe %v, want %v", got, want)
	}
	// Without the catalog (older writer), the manifest walk answers.
	if err := fsys.Remove("out/snap000010" + catalog.Suffix); err != nil {
		t.Fatal(err)
	}
	got, err = PaneUniverse(fsys, "out/snap000010", "fluid")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("scan universe %v, want %v", got, want)
	}
	if _, err := PaneUniverse(fsys, "out/snap000010", "solid"); err == nil {
		t.Fatal("empty window produced a universe")
	}
}

func TestFsckCatalogMismatch(t *testing.T) {
	fsys := rt.NewMemFS()
	writePaneGen(t, fsys, "out/snap000010", 2, 4)
	if _, err := Commit(fsys, "out/snap000010", 10, 0); err != nil {
		t.Fatal(err)
	}
	reports, err := Fsck(fsys, "out/")
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 1 || reports[0].Verdict != VerdictOK || reports[0].Catalog != "ok" {
		t.Fatalf("clean scrub: %+v", reports)
	}

	// Bit-flip the catalog body: data files are fine, so the verdict is
	// CATALOG-MISMATCH, not CORRUPT — and the scrub is no longer clean.
	if err := faults.FlipBit(fsys, "out/snap000010"+catalog.Suffix, 12*8+3); err != nil {
		t.Fatal(err)
	}
	reports, err = Fsck(fsys, "out/")
	if err != nil {
		t.Fatal(err)
	}
	rep := reports[0]
	if rep.Verdict != VerdictCatalogMismatch || rep.Catalog != "mismatch" {
		t.Fatalf("tampered catalog: verdict %q, catalog %q", rep.Verdict, rep.Catalog)
	}
	if Clean(reports) {
		t.Fatal("Clean() true with a catalog mismatch")
	}
	if out := Format(reports); !strings.Contains(out, VerdictCatalogMismatch) {
		t.Fatalf("Format output lacks the verdict:\n%s", out)
	}

	// A flipped payload bit on top of that dominates: CORRUPT wins.
	if err := faults.FlipBit(fsys, "out/snap000010_s000.rhdf", hdf.HeaderSize()*8+1); err != nil {
		t.Fatal(err)
	}
	reports, _ = Fsck(fsys, "out/")
	if reports[0].Verdict != VerdictCorrupt {
		t.Fatalf("corrupt+mismatch verdict %q, want %q", reports[0].Verdict, VerdictCorrupt)
	}

	// Generations committed by older writers report catalog "none" and
	// stay OK.
	writePaneGen(t, fsys, "out/snap000200", 1, 2)
	if _, err := Commit(fsys, "out/snap000200", 200, 0); err != nil {
		t.Fatal(err)
	}
	fsys.Remove("out/snap000200" + catalog.Suffix)
	stripCatalogRef(t, fsys, "out/snap000200")
	reports, _ = Fsck(fsys, "out/")
	for _, rep := range reports {
		if rep.Base == "out/snap000200" {
			if rep.Verdict != VerdictOK || rep.Catalog != "none" {
				t.Fatalf("catalog-less generation: verdict %q, catalog %q", rep.Verdict, rep.Catalog)
			}
		}
	}
}

// stripCatalogRef rewrites a manifest without its catalog reference,
// simulating a generation committed before the catalog existed.
func stripCatalogRef(t *testing.T, fsys rt.FS, base string) {
	t.Helper()
	m, err := Load(fsys, base)
	if err != nil {
		t.Fatal(err)
	}
	m.Catalog = nil
	enc, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := fsys.Remove(base + Suffix); err != nil {
		t.Fatal(err)
	}
	f, err := fsys.Create(base + Suffix)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(enc, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

package snapshot

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzManifestDecode hammers the manifest decoder with hostile JSON: the
// decoder must reject or accept, never panic, and anything it accepts
// must survive a re-encode/decode round trip (DecodeManifest's invariants
// are stable under json.Marshal).
func FuzzManifestDecode(f *testing.F) {
	full := &Manifest{
		Schema: ManifestSchema,
		Base:   "out/snap000100",
		Epoch:  100,
		Time:   1.5,
		Files: []FileEntry{
			{Name: "out/snap000100_s000.rhdf", Size: 4096, DirCRC: 0xdeadbeef},
		},
		Catalog:     &CatalogRef{Name: "out/snap000100.catalog", Size: 128, CRC: 1},
		Replication: 2,
	}
	delta := &Manifest{
		Schema:         ManifestSchema,
		Base:           "out/snap000110",
		Epoch:          110,
		Time:           2.5,
		BaseGeneration: "out/snap000100",
		ChainDepth:     3,
		Panes:          map[string][]int{"fluid": {1, 2, 3}, "solid": {7}},
	}
	f.Add([]byte{})
	f.Add([]byte("{}"))
	f.Add([]byte(`{"schema":"genxio-manifest/v1"}`))
	for _, m := range []*Manifest{full, delta} {
		blob, err := json.Marshal(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(blob)
		// Near-valid mutants: flip one byte at a few structural offsets.
		for _, i := range []int{0, 5, len(blob) / 2, len(blob) - 2} {
			mut := bytes.Clone(blob)
			mut[i] ^= 0x40
			f.Add(mut)
		}
	}
	f.Fuzz(func(t *testing.T, blob []byte) {
		m, err := DecodeManifest(blob)
		if err != nil {
			return
		}
		again, err := json.Marshal(m)
		if err != nil {
			t.Fatalf("accepted manifest does not re-encode: %v", err)
		}
		if _, err := DecodeManifest(again); err != nil {
			t.Fatalf("round trip rejected: %v\noriginal: %s\nreencoded: %s", err, blob, again)
		}
	})
}

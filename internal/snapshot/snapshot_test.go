package snapshot

import (
	"errors"
	"strings"
	"testing"

	"genxio/internal/faults"
	"genxio/internal/hdf"
	"genxio/internal/metrics"
	"genxio/internal/mpi"
	"genxio/internal/rt"
)

// writeGen writes one committed-looking generation (nfiles rank files under
// base) and returns the file names. Commit is the caller's choice.
func writeGen(t *testing.T, fsys rt.FS, base string, nfiles int, val float64) []string {
	t.Helper()
	clock := rt.NewWallClock()
	var names []string
	for p := 0; p < nfiles; p++ {
		name := base + "_p0000" + string(rune('0'+p)) + ".rhdf"
		w, err := hdf.Create(fsys, name, clock, hdf.NullProfile())
		if err != nil {
			t.Fatal(err)
		}
		if err := w.CreateDataset("fluid.1.p", hdf.F64, []int64{3}, nil,
			hdf.F64Bytes([]float64{val, val + 1, val + 2})); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		names = append(names, name)
	}
	return names
}

func TestCommitLoadVerifyRoundTrip(t *testing.T) {
	fsys := rt.NewMemFS()
	files := writeGen(t, fsys, "out/snap000010", 2, 1)
	m, err := Commit(fsys, "out/snap000010", 10, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Files) != len(files) {
		t.Fatalf("manifest lists %d files, want %d", len(m.Files), len(files))
	}
	got, err := Load(fsys, "out/snap000010")
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != 10 || got.Time != 0.5 || got.Schema != ManifestSchema {
		t.Fatalf("manifest %+v", got)
	}
	if err := got.Verify(fsys); err != nil {
		t.Fatal(err)
	}
	// Damage one file's length: Verify must fail.
	if err := faults.TruncateTail(fsys, files[1], 4); err != nil {
		t.Fatal(err)
	}
	if err := got.Verify(fsys); err == nil {
		t.Fatal("Verify accepted a truncated file")
	}
}

func TestCommitRequiresFiles(t *testing.T) {
	fsys := rt.NewMemFS()
	if _, err := Commit(fsys, "out/snap000000", 0, 0); err == nil {
		t.Fatal("committed an empty generation")
	}
	// Staged residue alone is not a generation either.
	f, _ := fsys.Create("out/snap000000_p00000.rhdf" + hdf.TmpSuffix)
	f.Close()
	if _, err := Commit(fsys, "out/snap000000", 0, 0); err == nil {
		t.Fatal("committed a generation of staged temporaries")
	}
}

func TestGenerationsDiscovery(t *testing.T) {
	fsys := rt.NewMemFS()
	writeGen(t, fsys, "out/snap000000", 1, 0)
	if _, err := Commit(fsys, "out/snap000000", 0, 0); err != nil {
		t.Fatal(err)
	}
	writeGen(t, fsys, "out/snap000050", 1, 1)
	if _, err := Commit(fsys, "out/snap000050", 50, 1); err != nil {
		t.Fatal(err)
	}
	writeGen(t, fsys, "out/snap000100", 1, 2) // crashed before commit
	// Noise that must not become generations.
	for _, n := range []string{"out/notes.txt", "out/bench.json"} {
		f, _ := fsys.Create(n)
		f.Close()
	}
	gens, err := Generations(fsys, "out/")
	if err != nil {
		t.Fatal(err)
	}
	want := []Generation{
		{Base: "out/snap000100", Committed: false},
		{Base: "out/snap000050", Committed: true},
		{Base: "out/snap000000", Committed: true},
	}
	if len(gens) != len(want) {
		t.Fatalf("generations %+v", gens)
	}
	for i := range want {
		if gens[i] != want[i] {
			t.Fatalf("generation %d = %+v, want %+v", i, gens[i], want[i])
		}
	}
}

func TestBaseOf(t *testing.T) {
	cases := map[string]string{
		"out/snap000010.manifest":        "out/snap000010",
		"out/snap000010.manifest.tmp":    "out/snap000010",
		"out/snap000010_s003.rhdf":       "out/snap000010",
		"out/snap000010_p00002.rhdf":     "out/snap000010",
		"out/snap000010_p00002.rhdf.tmp": "out/snap000010",
		"out/notes.txt":                  "",
		"out/bench.json":                 "",
		"out/snap000010_x1.rhdf":         "",
		"out/snap000010_p12a.rhdf":       "",
		"plain.rhdf":                     "",
	}
	for in, want := range cases {
		if got := baseOf(in); got != want {
			t.Fatalf("baseOf(%q) = %q, want %q", in, got, want)
		}
	}
}

// tryRead restores by reading every manifested file's datasets — the shape
// the I/O services' ReadAttribute takes.
func tryRead(fsys rt.FS) func(base string) error {
	return func(base string) error {
		m, err := Load(fsys, base)
		if err != nil {
			return err
		}
		for _, e := range m.Files {
			r, err := hdf.Open(fsys, e.Name, nullClock{}, hdf.NullProfile())
			if err != nil {
				return err
			}
			for _, d := range r.Datasets() {
				if _, err := r.ReadData(d); err != nil {
					r.Close()
					return err
				}
			}
			r.Close()
		}
		return nil
	}
}

func TestRestoreFallsBackPastDamage(t *testing.T) {
	fsys := rt.NewMemFS()
	writeGen(t, fsys, "out/snap000000", 2, 0)
	if _, err := Commit(fsys, "out/snap000000", 0, 0); err != nil {
		t.Fatal(err)
	}
	files := writeGen(t, fsys, "out/snap000100", 2, 1)
	if _, err := Commit(fsys, "out/snap000100", 100, 1); err != nil {
		t.Fatal(err)
	}
	writeGen(t, fsys, "out/snap000200", 2, 2) // uncommitted (crash residue)

	// Bit-flip a payload byte of the newest committed generation: its
	// manifest still verifies (sizes and directory CRCs intact) but the
	// dataset CRC catches the damage during try().
	if err := faults.FlipBit(fsys, files[0], int64(hdf.HeaderSize()*8+5)); err != nil {
		t.Fatal(err)
	}

	reg := metrics.New()
	base, err := Restore(fsys, "out/", tryRead(fsys), Options{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if base != "out/snap000000" {
		t.Fatalf("restored %q, want the oldest intact generation", base)
	}
	if got := reg.Counter("rocpanda.restart.generations_scanned").Value(); got != 3 {
		t.Fatalf("generations_scanned = %d, want 3", got)
	}
	if got := reg.Counter("rocpanda.restart.fallbacks").Value(); got != 2 {
		t.Fatalf("fallbacks = %d, want 2 (uncommitted + bit-flipped)", got)
	}
}

func TestRestoreNoGenerations(t *testing.T) {
	fsys := rt.NewMemFS()
	if _, err := Restore(fsys, "out/", tryRead(fsys), Options{}); err == nil {
		t.Fatal("restored from nothing")
	}
}

// TestRestoreCollectiveAgreement: damage visible to only one rank's try
// must still move every rank to the older generation together.
func TestRestoreCollectiveAgreement(t *testing.T) {
	fsys := rt.NewMemFS()
	writeGen(t, fsys, "out/snap000000", 4, 0)
	if _, err := Commit(fsys, "out/snap000000", 0, 0); err != nil {
		t.Fatal(err)
	}
	files := writeGen(t, fsys, "out/snap000100", 4, 1)
	if _, err := Commit(fsys, "out/snap000100", 100, 1); err != nil {
		t.Fatal(err)
	}
	if err := faults.FlipBit(fsys, files[2], int64(hdf.HeaderSize()*8)); err != nil {
		t.Fatal(err)
	}

	world := mpi.NewChanWorld(fsys, 1)
	err := world.Run(4, func(ctx mpi.Ctx) error {
		me := ctx.Comm().Rank()
		try := func(base string) error {
			// Each rank reads only its own file, as the individual-I/O
			// modules do; only rank 2's file is damaged.
			m, err := Load(fsys, base)
			if err != nil {
				return err
			}
			name := m.Files[me].Name
			r, err := hdf.Open(fsys, name, ctx.Clock(), hdf.NullProfile())
			if err != nil {
				return err
			}
			defer r.Close()
			for _, d := range r.Datasets() {
				if _, err := r.ReadData(d); err != nil {
					return err
				}
			}
			return nil
		}
		base, err := Restore(fsys, "out/", try, Options{Comm: ctx.Comm()})
		if err != nil {
			return err
		}
		if base != "out/snap000000" {
			return errors.New("rank did not fall back: " + base)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPruneRetention(t *testing.T) {
	fsys := rt.NewMemFS()
	bases := []string{"out/snap000000", "out/snap000050", "out/snap000100"}
	for i, b := range bases {
		writeGen(t, fsys, b, 2, float64(i))
		if _, err := Commit(fsys, b, int64(i*50), float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	removed, err := Prune(fsys, "out/", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 1 || removed[0] != "out/snap000000" {
		t.Fatalf("removed %v, want the oldest generation", removed)
	}
	if names, _ := fsys.List("out/snap000000"); len(names) != 0 {
		t.Fatalf("pruned generation left artifacts: %v", names)
	}
	gens, _ := Generations(fsys, "out/")
	if len(gens) != 2 || !gens[0].Committed || !gens[1].Committed {
		t.Fatalf("survivors %+v", gens)
	}
	// Idempotent and retain<=0 keeps everything.
	if removed, _ := Prune(fsys, "out/", 2); removed != nil {
		t.Fatalf("second prune removed %v", removed)
	}
	if removed, _ := Prune(fsys, "out/", 0); removed != nil {
		t.Fatalf("retain=0 removed %v", removed)
	}
}

func TestFsckVerdicts(t *testing.T) {
	fsys := rt.NewMemFS()
	writeGen(t, fsys, "out/snap000000", 2, 0)
	if _, err := Commit(fsys, "out/snap000000", 0, 0); err != nil {
		t.Fatal(err)
	}
	files := writeGen(t, fsys, "out/snap000100", 2, 1)
	if _, err := Commit(fsys, "out/snap000100", 100, 1); err != nil {
		t.Fatal(err)
	}
	writeGen(t, fsys, "out/snap000200", 1, 2) // uncommitted
	// Staged residue inside the healthy generation.
	f, _ := fsys.Create("out/snap000000_p00009.rhdf" + hdf.TmpSuffix)
	f.Close()
	// One flipped payload bit in one file of the newest committed
	// generation; the directory CRC stays valid, so only the deep scrub
	// sees it.
	if err := faults.FlipBit(fsys, files[1], int64(hdf.HeaderSize()*8+1)); err != nil {
		t.Fatal(err)
	}

	reports, err := Fsck(fsys, "out/")
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 3 {
		t.Fatalf("reports %+v", reports)
	}
	byBase := map[string]GenReport{}
	for _, r := range reports {
		byBase[r.Base] = r
	}
	if v := byBase["out/snap000200"].Verdict; v != VerdictUncommitted {
		t.Fatalf("uncommitted generation verdict %q", v)
	}
	if v := byBase["out/snap000000"].Verdict; v != VerdictOK {
		t.Fatalf("healthy generation verdict %q", v)
	}
	bad := byBase["out/snap000100"]
	if bad.Verdict != VerdictCorrupt {
		t.Fatalf("damaged generation verdict %q", bad.Verdict)
	}
	var corrupt []string
	for _, fr := range bad.Files {
		if fr.Status == "corrupt" {
			corrupt = append(corrupt, fr.Name)
			if !strings.Contains(fr.Detail, "checksum") {
				t.Fatalf("corrupt detail %q does not name the checksum", fr.Detail)
			}
		}
	}
	if len(corrupt) != 1 || corrupt[0] != files[1] {
		t.Fatalf("fsck flagged %v, want exactly %q", corrupt, files[1])
	}
	// The staged temporary is flagged but does not fail its generation.
	var staged int
	for _, fr := range byBase["out/snap000000"].Files {
		if fr.Status == "staged" {
			staged++
		}
	}
	if staged != 1 {
		t.Fatalf("staged residue not flagged: %+v", byBase["out/snap000000"].Files)
	}

	if Clean(reports) {
		t.Fatal("Clean() true with a corrupt generation")
	}
	out := Format(reports)
	for _, frag := range []string{VerdictCorrupt, VerdictUncommitted, VerdictOK, files[1]} {
		if !strings.Contains(out, frag) {
			t.Fatalf("Format output lacks %q:\n%s", frag, out)
		}
	}
}

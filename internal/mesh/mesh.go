// Package mesh provides the mesh-block machinery GENx's data distribution
// is built on: the simulation domain is pre-partitioned into a large number
// of mesh blocks of irregular sizes, each processor owns a set of blocks,
// and blocks change over time through adaptive refinement. A data block
// (the paper's unit of I/O) is a mesh block plus the field arrays attached
// to it by the physics modules via Roccom.
//
// Both mesh styles used by GENx are supported: multi-block structured
// grids (Rocflo-style) and unstructured tetrahedral blocks (Rocflu/
// Rocfrac-style).
package mesh

import (
	"fmt"
	"math"

	"genxio/internal/stats"
)

// Kind distinguishes structured from unstructured blocks.
type Kind uint8

// Block kinds.
const (
	Structured Kind = iota + 1
	Unstructured
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case Structured:
		return "structured"
	case Unstructured:
		return "unstructured"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Block is one mesh block. Structured blocks have NI×NJ×NK nodes with
// implicit hexahedral connectivity; unstructured blocks have an explicit
// tetrahedral connectivity. Coords holds xyz triples, node-major.
type Block struct {
	ID   int
	Kind Kind

	// Structured extent in nodes (>= 2 each); unset for unstructured.
	NI, NJ, NK int

	Coords []float64 // 3 * NumNodes

	// Conn holds 4 local node indices per tetrahedron; unstructured only.
	Conn []int32

	// Level is the refinement level (0 for as-generated blocks).
	Level int
}

// NumNodes returns the number of mesh nodes in the block.
func (b *Block) NumNodes() int { return len(b.Coords) / 3 }

// NumElems returns the number of elements (hexahedra or tetrahedra).
func (b *Block) NumElems() int {
	if b.Kind == Structured {
		return (b.NI - 1) * (b.NJ - 1) * (b.NK - 1)
	}
	return len(b.Conn) / 4
}

// nodeIndex returns the node-major index of structured node (i,j,k).
func (b *Block) nodeIndex(i, j, k int) int {
	return (k*b.NJ+j)*b.NI + i
}

// Node returns the coordinates of node n.
func (b *Block) Node(n int) (x, y, z float64) {
	return b.Coords[3*n], b.Coords[3*n+1], b.Coords[3*n+2]
}

// Validate checks structural invariants and returns a descriptive error on
// the first violation.
func (b *Block) Validate() error {
	switch b.Kind {
	case Structured:
		if b.NI < 2 || b.NJ < 2 || b.NK < 2 {
			return fmt.Errorf("mesh: block %d extent %dx%dx%d below 2", b.ID, b.NI, b.NJ, b.NK)
		}
		if want := b.NI * b.NJ * b.NK; b.NumNodes() != want {
			return fmt.Errorf("mesh: block %d has %d nodes, extent implies %d", b.ID, b.NumNodes(), want)
		}
		if len(b.Conn) != 0 {
			return fmt.Errorf("mesh: structured block %d carries connectivity", b.ID)
		}
	case Unstructured:
		if len(b.Conn)%4 != 0 {
			return fmt.Errorf("mesh: block %d connectivity length %d not a multiple of 4", b.ID, len(b.Conn))
		}
		n := int32(b.NumNodes())
		for i, v := range b.Conn {
			if v < 0 || v >= n {
				return fmt.Errorf("mesh: block %d conn[%d]=%d out of range [0,%d)", b.ID, i, v, n)
			}
		}
	default:
		return fmt.Errorf("mesh: block %d has invalid kind %d", b.ID, b.Kind)
	}
	if len(b.Coords)%3 != 0 {
		return fmt.Errorf("mesh: block %d coords length %d not a multiple of 3", b.ID, len(b.Coords))
	}
	for i, c := range b.Coords {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			return fmt.Errorf("mesh: block %d coord %d is %v", b.ID, i, c)
		}
	}
	return nil
}

// Bounds returns the axis-aligned bounding box of the block.
func (b *Block) Bounds() (min, max [3]float64) {
	for d := 0; d < 3; d++ {
		min[d] = math.Inf(1)
		max[d] = math.Inf(-1)
	}
	for n := 0; n < b.NumNodes(); n++ {
		for d := 0; d < 3; d++ {
			c := b.Coords[3*n+d]
			if c < min[d] {
				min[d] = c
			}
			if c > max[d] {
				max[d] = c
			}
		}
	}
	return min, max
}

// CylinderSpec describes a multi-block structured mesh of a cylindrical
// rocket-motor segment: a shell from RInner to ROuter, length L, tiled into
// BR×BT×BZ blocks (radial × circumferential × axial). Per-block node
// counts are drawn around NodesPerBlock with multiplicative spread Spread,
// giving the irregular block-size distribution the paper describes.
type CylinderSpec struct {
	RInner, ROuter float64
	Length         float64
	BR, BT, BZ     int
	NodesPerBlock  int
	Spread         float64 // lognormal sigma; 0 for uniform blocks
}

// GenCylinder generates the blocks of spec, numbering them consecutively
// from firstID. All randomness comes from rng, so a seed fully determines
// the mesh.
func GenCylinder(spec CylinderSpec, firstID int, rng *stats.RNG) ([]*Block, error) {
	if spec.BR < 1 || spec.BT < 1 || spec.BZ < 1 {
		return nil, fmt.Errorf("mesh: cylinder block grid %dx%dx%d invalid", spec.BR, spec.BT, spec.BZ)
	}
	if spec.RInner <= 0 || spec.ROuter <= spec.RInner || spec.Length <= 0 {
		return nil, fmt.Errorf("mesh: cylinder geometry r=[%g,%g] L=%g invalid",
			spec.RInner, spec.ROuter, spec.Length)
	}
	if spec.NodesPerBlock < 8 {
		return nil, fmt.Errorf("mesh: NodesPerBlock %d < 8", spec.NodesPerBlock)
	}
	var blocks []*Block
	id := firstID
	for br := 0; br < spec.BR; br++ {
		for bt := 0; bt < spec.BT; bt++ {
			for bz := 0; bz < spec.BZ; bz++ {
				target := float64(spec.NodesPerBlock)
				if spec.Spread > 0 {
					target = rng.LogNormalAround(target, spec.Spread)
				}
				// Aspect ~ 1:2:2 (radial thin, tangential and
				// axial longer), at least 2 nodes per direction.
				side := math.Cbrt(target / 4)
				ni := clampInt(int(math.Round(side)), 2, 1<<12)
				nj := clampInt(int(math.Round(2*side)), 2, 1<<12)
				nk := clampInt(int(math.Round(2*side)), 2, 1<<12)
				b := &Block{ID: id, Kind: Structured, NI: ni, NJ: nj, NK: nk}
				b.Coords = make([]float64, 3*ni*nj*nk)
				r0 := spec.RInner + (spec.ROuter-spec.RInner)*float64(br)/float64(spec.BR)
				r1 := spec.RInner + (spec.ROuter-spec.RInner)*float64(br+1)/float64(spec.BR)
				t0 := 2 * math.Pi * float64(bt) / float64(spec.BT)
				t1 := 2 * math.Pi * float64(bt+1) / float64(spec.BT)
				z0 := spec.Length * float64(bz) / float64(spec.BZ)
				z1 := spec.Length * float64(bz+1) / float64(spec.BZ)
				for k := 0; k < nk; k++ {
					z := lerp(z0, z1, frac(k, nk))
					for j := 0; j < nj; j++ {
						theta := lerp(t0, t1, frac(j, nj))
						for i := 0; i < ni; i++ {
							r := lerp(r0, r1, frac(i, ni))
							n := b.nodeIndex(i, j, k)
							b.Coords[3*n] = r * math.Cos(theta)
							b.Coords[3*n+1] = r * math.Sin(theta)
							b.Coords[3*n+2] = z
						}
					}
				}
				blocks = append(blocks, b)
				id++
			}
		}
	}
	return blocks, nil
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func lerp(a, b, t float64) float64 { return a + (b-a)*t }

func frac(i, n int) float64 {
	if n <= 1 {
		return 0
	}
	return float64(i) / float64(n-1)
}

// Tetrahedralize converts a structured block into an unstructured block
// with the same nodes, splitting each hexahedral cell into 5 tetrahedra
// (Rocfrac-style solid meshes).
func Tetrahedralize(b *Block) (*Block, error) {
	if b.Kind != Structured {
		return nil, fmt.Errorf("mesh: Tetrahedralize needs a structured block, got %v", b.Kind)
	}
	out := &Block{
		ID:     b.ID,
		Kind:   Unstructured,
		Coords: append([]float64(nil), b.Coords...),
		Level:  b.Level,
	}
	// The 5-tet decomposition of a hex with corners c[0..7]
	// (i,j,k bit order): parity-alternated so faces of neighbor cells
	// match.
	even := [5][4]int{{0, 1, 3, 5}, {0, 3, 2, 6}, {0, 5, 4, 6}, {3, 5, 6, 7}, {0, 3, 6, 5}}
	odd := [5][4]int{{1, 0, 2, 4}, {1, 2, 3, 7}, {1, 4, 5, 7}, {2, 4, 7, 6}, {1, 2, 7, 4}}
	out.Conn = make([]int32, 0, 20*b.NumElems())
	for k := 0; k < b.NK-1; k++ {
		for j := 0; j < b.NJ-1; j++ {
			for i := 0; i < b.NI-1; i++ {
				var c [8]int
				for bit := 0; bit < 8; bit++ {
					c[bit] = b.nodeIndex(i+bit&1, j+bit>>1&1, k+bit>>2&1)
				}
				pat := even
				if (i+j+k)%2 == 1 {
					pat = odd
				}
				for _, tet := range pat {
					for _, v := range tet {
						out.Conn = append(out.Conn, int32(c[v]))
					}
				}
			}
		}
	}
	return out, nil
}

package mesh

import (
	"fmt"
	"sort"
)

// Partition assigns blocks to nprocs processors, balancing total node count
// with the LPT (longest processing time) greedy heuristic: blocks are
// placed heaviest-first onto the currently lightest processor. The result
// maps each processor to the indices of its blocks, preserving a
// deterministic order. Every block is assigned to exactly one processor;
// processors may receive none if there are fewer blocks than processors.
func Partition(blocks []*Block, nprocs int) ([][]int, error) {
	if nprocs < 1 {
		return nil, fmt.Errorf("mesh: partition over %d processors", nprocs)
	}
	type item struct{ idx, weight int }
	items := make([]item, len(blocks))
	for i, b := range blocks {
		items[i] = item{idx: i, weight: b.NumNodes()}
	}
	sort.SliceStable(items, func(i, j int) bool { return items[i].weight > items[j].weight })

	assign := make([][]int, nprocs)
	load := make([]int, nprocs)
	for _, it := range items {
		best := 0
		for p := 1; p < nprocs; p++ {
			if load[p] < load[best] {
				best = p
			}
		}
		assign[best] = append(assign[best], it.idx)
		load[best] += it.weight
	}
	for p := range assign {
		sort.Ints(assign[p])
	}
	return assign, nil
}

// Imbalance returns max/mean processor load (in nodes) of an assignment,
// 1.0 being perfect balance. Empty assignments return +1.
func Imbalance(blocks []*Block, assign [][]int) float64 {
	var total, max int
	for _, idxs := range assign {
		var load int
		for _, i := range idxs {
			load += blocks[i].NumNodes()
		}
		total += load
		if load > max {
			max = load
		}
	}
	if total == 0 {
		return 1
	}
	mean := float64(total) / float64(len(assign))
	return float64(max) / mean
}

// SplitResult holds the two children of a block split plus, for each child
// node, the index of the parent node it came from — so node-centered field
// data can be carried through refinement.
type SplitResult struct {
	Left, Right       *Block
	LeftMap, RightMap []int
}

// Split refines a structured block into two along its longest index
// direction, sharing the split plane of nodes. The children keep the
// parent's ID for the first half and take newID for the second; levels
// increase by one. This is the adaptive-refinement primitive: as the
// propellant burns, blocks are split and the data distribution changes at
// runtime without any change to how I/O is performed.
func Split(b *Block, newID int) (*SplitResult, error) {
	if b.Kind != Structured {
		return nil, fmt.Errorf("mesh: Split needs a structured block")
	}
	// Pick the longest direction with at least 3 nodes.
	dir := 0
	dims := [3]int{b.NI, b.NJ, b.NK}
	for d := 1; d < 3; d++ {
		if dims[d] > dims[dir] {
			dir = d
		}
	}
	if dims[dir] < 3 {
		return nil, fmt.Errorf("mesh: block %d too small to split (%dx%dx%d)", b.ID, b.NI, b.NJ, b.NK)
	}
	cut := dims[dir] / 2 // node index of the shared plane

	sub := func(id, lo, hi int) (*Block, []int) {
		nb := &Block{ID: id, Kind: Structured, NI: b.NI, NJ: b.NJ, NK: b.NK, Level: b.Level + 1}
		switch dir {
		case 0:
			nb.NI = hi - lo + 1
		case 1:
			nb.NJ = hi - lo + 1
		case 2:
			nb.NK = hi - lo + 1
		}
		nb.Coords = make([]float64, 3*nb.NI*nb.NJ*nb.NK)
		m := make([]int, nb.NI*nb.NJ*nb.NK)
		for k := 0; k < nb.NK; k++ {
			for j := 0; j < nb.NJ; j++ {
				for i := 0; i < nb.NI; i++ {
					si, sj, sk := i, j, k
					switch dir {
					case 0:
						si += lo
					case 1:
						sj += lo
					case 2:
						sk += lo
					}
					src := b.nodeIndex(si, sj, sk)
					dst := nb.nodeIndex(i, j, k)
					copy(nb.Coords[3*dst:3*dst+3], b.Coords[3*src:3*src+3])
					m[dst] = src
				}
			}
		}
		return nb, m
	}
	left, lm := sub(b.ID, 0, cut)
	right, rm := sub(newID, cut, dims[dir]-1)
	return &SplitResult{Left: left, Right: right, LeftMap: lm, RightMap: rm}, nil
}

package mesh

import (
	"math"
	"testing"
	"testing/quick"

	"genxio/internal/stats"
)

func testSpec() CylinderSpec {
	return CylinderSpec{
		RInner: 0.1, ROuter: 0.5, Length: 2.0,
		BR: 2, BT: 4, BZ: 3,
		NodesPerBlock: 300, Spread: 0.4,
	}
}

func TestGenCylinder(t *testing.T) {
	rng := stats.NewRNG(1)
	blocks, err := GenCylinder(testSpec(), 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 2*4*3 {
		t.Fatalf("got %d blocks, want 24", len(blocks))
	}
	ids := map[int]bool{}
	sizes := map[int]bool{}
	for i, b := range blocks {
		if err := b.Validate(); err != nil {
			t.Fatal(err)
		}
		if b.ID != 100+i {
			t.Fatalf("block %d has ID %d", i, b.ID)
		}
		if ids[b.ID] {
			t.Fatalf("duplicate ID %d", b.ID)
		}
		ids[b.ID] = true
		sizes[b.NumNodes()] = true
		// Geometry: nodes must lie within the cylindrical shell.
		for n := 0; n < b.NumNodes(); n++ {
			x, y, z := b.Node(n)
			r := math.Hypot(x, y)
			if r < 0.1-1e-9 || r > 0.5+1e-9 {
				t.Fatalf("node radius %v outside shell", r)
			}
			if z < -1e-9 || z > 2.0+1e-9 {
				t.Fatalf("node z %v outside length", z)
			}
		}
	}
	if len(sizes) < 5 {
		t.Fatalf("only %d distinct block sizes; expected irregular sizes", len(sizes))
	}
}

func TestGenCylinderDeterministic(t *testing.T) {
	a, _ := GenCylinder(testSpec(), 0, stats.NewRNG(7))
	b, _ := GenCylinder(testSpec(), 0, stats.NewRNG(7))
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i].NumNodes() != b[i].NumNodes() {
			t.Fatalf("block %d sizes differ", i)
		}
	}
}

func TestGenCylinderRejectsBadSpec(t *testing.T) {
	rng := stats.NewRNG(1)
	bad := []CylinderSpec{
		{RInner: 0.5, ROuter: 0.1, Length: 1, BR: 1, BT: 1, BZ: 1, NodesPerBlock: 100},
		{RInner: 0.1, ROuter: 0.5, Length: 1, BR: 0, BT: 1, BZ: 1, NodesPerBlock: 100},
		{RInner: 0.1, ROuter: 0.5, Length: 1, BR: 1, BT: 1, BZ: 1, NodesPerBlock: 2},
		{RInner: 0.1, ROuter: 0.5, Length: -1, BR: 1, BT: 1, BZ: 1, NodesPerBlock: 100},
	}
	for i, spec := range bad {
		if _, err := GenCylinder(spec, 0, rng); err == nil {
			t.Fatalf("spec %d accepted", i)
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	rng := stats.NewRNG(2)
	blocks, _ := GenCylinder(testSpec(), 0, rng)
	b := blocks[0]
	b.Coords[5] = math.NaN()
	if b.Validate() == nil {
		t.Fatal("NaN coordinate accepted")
	}
	b.Coords[5] = 0
	b.NI = 1
	if b.Validate() == nil {
		t.Fatal("degenerate extent accepted")
	}
}

func TestTetrahedralize(t *testing.T) {
	rng := stats.NewRNG(3)
	blocks, _ := GenCylinder(CylinderSpec{
		RInner: 0.1, ROuter: 0.2, Length: 0.5,
		BR: 1, BT: 1, BZ: 1, NodesPerBlock: 200,
	}, 0, rng)
	hex := blocks[0]
	tet, err := Tetrahedralize(hex)
	if err != nil {
		t.Fatal(err)
	}
	if err := tet.Validate(); err != nil {
		t.Fatal(err)
	}
	if tet.NumNodes() != hex.NumNodes() {
		t.Fatalf("node count changed: %d -> %d", hex.NumNodes(), tet.NumNodes())
	}
	if tet.NumElems() != 5*hex.NumElems() {
		t.Fatalf("tets = %d, want 5 * %d", tet.NumElems(), hex.NumElems())
	}
	// Total tet volume must equal the hex-cell volume sum (the 5-tet
	// decomposition is exact).
	var vol float64
	for e := 0; e < tet.NumElems(); e++ {
		var p [4][3]float64
		for v := 0; v < 4; v++ {
			n := tet.Conn[4*e+v]
			p[v][0], p[v][1], p[v][2] = tet.Node(int(n))
		}
		vol += tetVolume(p)
	}
	if vol <= 0 {
		t.Fatalf("total volume %v not positive", vol)
	}
	if _, err := Tetrahedralize(tet); err == nil {
		t.Fatal("tetrahedralizing an unstructured block accepted")
	}
}

func tetVolume(p [4][3]float64) float64 {
	var a, b, c [3]float64
	for d := 0; d < 3; d++ {
		a[d] = p[1][d] - p[0][d]
		b[d] = p[2][d] - p[0][d]
		c[d] = p[3][d] - p[0][d]
	}
	det := a[0]*(b[1]*c[2]-b[2]*c[1]) - a[1]*(b[0]*c[2]-b[2]*c[0]) + a[2]*(b[0]*c[1]-b[1]*c[0])
	return math.Abs(det) / 6
}

func TestPartitionInvariants(t *testing.T) {
	rng := stats.NewRNG(4)
	spec := testSpec()
	spec.BR, spec.BT, spec.BZ = 4, 8, 5 // 160 blocks
	blocks, _ := GenCylinder(spec, 0, rng)
	for _, np := range []int{1, 2, 7, 16, 64} {
		assign, err := Partition(blocks, np)
		if err != nil {
			t.Fatal(err)
		}
		if len(assign) != np {
			t.Fatalf("np=%d len(assign)=%d", np, len(assign))
		}
		seen := make([]bool, len(blocks))
		for _, idxs := range assign {
			for _, i := range idxs {
				if seen[i] {
					t.Fatalf("np=%d block %d assigned twice", np, i)
				}
				seen[i] = true
			}
		}
		for i, s := range seen {
			if !s {
				t.Fatalf("np=%d block %d unassigned", np, i)
			}
		}
		if imb := Imbalance(blocks, assign); np <= 64 && imb > 1.6 {
			t.Fatalf("np=%d imbalance %v too high", np, imb)
		}
	}
}

func TestPartitionMoreProcsThanBlocks(t *testing.T) {
	rng := stats.NewRNG(5)
	blocks, _ := GenCylinder(CylinderSpec{
		RInner: 0.1, ROuter: 0.2, Length: 0.5,
		BR: 1, BT: 2, BZ: 1, NodesPerBlock: 100,
	}, 0, rng)
	assign, err := Partition(blocks, 5)
	if err != nil {
		t.Fatal(err)
	}
	nonEmpty := 0
	for _, idxs := range assign {
		if len(idxs) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty != 2 {
		t.Fatalf("nonEmpty = %d, want 2", nonEmpty)
	}
	if _, err := Partition(blocks, 0); err == nil {
		t.Fatal("Partition(0) accepted")
	}
}

func TestPartitionProperty(t *testing.T) {
	f := func(weights []uint16, npRaw uint8) bool {
		np := int(npRaw%16) + 1
		blocks := make([]*Block, len(weights))
		for i, w := range weights {
			n := int(w%500) + 8
			blocks[i] = &Block{ID: i, Kind: Unstructured, Coords: make([]float64, 3*n)}
		}
		assign, err := Partition(blocks, np)
		if err != nil {
			return false
		}
		count := 0
		for _, idxs := range assign {
			count += len(idxs)
		}
		return count == len(blocks)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSplitConservesGeometry(t *testing.T) {
	rng := stats.NewRNG(6)
	blocks, _ := GenCylinder(testSpec(), 0, rng)
	for _, b := range blocks[:6] {
		res, err := Split(b, 999)
		if err != nil {
			t.Fatal(err)
		}
		left, right := res.Left, res.Right
		if len(res.LeftMap) != left.NumNodes() || len(res.RightMap) != right.NumNodes() {
			t.Fatal("split maps sized wrong")
		}
		for n, src := range res.LeftMap {
			lx, ly, lz := left.Node(n)
			px, py, pz := b.Node(src)
			if lx != px || ly != py || lz != pz {
				t.Fatal("left map does not point at coincident parent node")
			}
		}
		for n, src := range res.RightMap {
			rx, ry, rz := right.Node(n)
			px, py, pz := b.Node(src)
			if rx != px || ry != py || rz != pz {
				t.Fatal("right map does not point at coincident parent node")
			}
		}
		if err := left.Validate(); err != nil {
			t.Fatal(err)
		}
		if err := right.Validate(); err != nil {
			t.Fatal(err)
		}
		if left.ID != b.ID || right.ID != 999 {
			t.Fatalf("child IDs %d/%d", left.ID, right.ID)
		}
		if left.Level != b.Level+1 || right.Level != b.Level+1 {
			t.Fatal("levels not incremented")
		}
		// Node counts: children share the cut plane.
		dims := [3]int{b.NI, b.NJ, b.NK}
		longest := dims[0]
		for _, d := range dims {
			if d > longest {
				longest = d
			}
		}
		plane := b.NumNodes() / longest
		if left.NumNodes()+right.NumNodes() != b.NumNodes()+plane {
			t.Fatalf("node counts %d+%d vs parent %d (+plane %d)",
				left.NumNodes(), right.NumNodes(), b.NumNodes(), plane)
		}
		// Bounding boxes of children must lie within the parent's.
		pmin, pmax := b.Bounds()
		for _, c := range []*Block{left, right} {
			cmin, cmax := c.Bounds()
			for d := 0; d < 3; d++ {
				if cmin[d] < pmin[d]-1e-12 || cmax[d] > pmax[d]+1e-12 {
					t.Fatalf("child bounds escape parent in dim %d", d)
				}
			}
		}
	}
}

func TestSplitTooSmall(t *testing.T) {
	b := &Block{ID: 0, Kind: Structured, NI: 2, NJ: 2, NK: 2, Coords: make([]float64, 24)}
	if _, err := Split(b, 1); err == nil {
		t.Fatal("split of 2x2x2 accepted")
	}
	u := &Block{ID: 0, Kind: Unstructured}
	if _, err := Split(u, 1); err == nil {
		t.Fatal("split of unstructured accepted")
	}
}

func TestKindString(t *testing.T) {
	if Structured.String() != "structured" || Unstructured.String() != "unstructured" {
		t.Fatal("kind names wrong")
	}
}

package iosched

// Policy decides how the byte budget is applied to admission. Both hooks
// run on the submitter goroutine with the engine's current accounting.
type Policy interface {
	// Admit reports whether a task of the given cost may be dispatched
	// now (RunBatch admission). queued and inflight exclude the candidate.
	Admit(queued, budget int64, inflight int, cost int64) bool
	// HoldSubmitter reports whether the submitter must block after a
	// streaming Submit until completions bring queued back under budget.
	// queued includes the task just submitted.
	HoldSubmitter(queued, budget int64) bool
}

// Writeback is the drain-engine policy: every block is enqueued (the data
// is already buffered; refusing it would buy nothing), and the submitter
// is held whenever the queue runs over budget — backpressure degenerates
// to write-through at tiny budgets, which is what keeps staged output
// byte-identical to a synchronous drain.
type Writeback struct{}

// Admit implements Policy: always.
func (Writeback) Admit(int64, int64, int, int64) bool { return true }

// HoldSubmitter implements Policy.
func (Writeback) HoldSubmitter(queued, budget int64) bool {
	return budget > 0 && queued > budget
}

// RestartRead is the read-pool policy: a task is deferred while it would
// push the in-flight bytes over budget, but an idle pool always admits
// (otherwise a single over-budget extent could never run) — at tiny
// budgets the pool degenerates to serial reads. The submitter is never
// held after a dispatch: restart rounds interleave admission with
// consumption in RunBatch, so results ship while later extents wait.
type RestartRead struct{}

// Admit implements Policy.
func (RestartRead) Admit(queued, budget int64, inflight int, cost int64) bool {
	return budget <= 0 || queued+cost <= budget || inflight == 0
}

// HoldSubmitter implements Policy: never.
func (RestartRead) HoldSubmitter(int64, int64) bool { return false }

package iosched

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"genxio/internal/metrics"
	"genxio/internal/mpi"
	"genxio/internal/rt"
)

// testClock is a shared virtual clock that counts Sleep calls: the
// zero-busy-wait regression tests assert the scheduler never sleep-polls.
type testClock struct {
	mu     sync.Mutex
	now    float64
	sleeps int
}

func (c *testClock) Now() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *testClock) Sleep(d float64) {
	c.mu.Lock()
	c.sleeps++
	c.now += d
	c.mu.Unlock()
}

func (c *testClock) Compute(d float64) {
	c.mu.Lock()
	c.now += d
	c.mu.Unlock()
}

func (c *testClock) sleepCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sleeps
}

// stubCtx is a minimal mpi.Ctx over goroutines and GoQueues — just enough
// surface for the engine (Clock, Spawn, NewQueue).
type stubCtx struct{ clock *testClock }

func (s *stubCtx) Comm() mpi.Comm    { return nil }
func (s *stubCtx) Clock() rt.Clock   { return s.clock }
func (s *stubCtx) FS() rt.FS         { return nil }
func (s *stubCtx) Node() int         { return 0 }
func (s *stubCtx) ProcsPerNode() int { return 1 }

func (s *stubCtx) Spawn(name string, fn func(rt.TaskCtx)) {
	go fn(stubTaskCtx{clock: s.clock})
}

func (s *stubCtx) NewQueue(capacity int) rt.Queue { return rt.NewGoQueue(capacity) }

type stubTaskCtx struct{ clock *testClock }

func (t stubTaskCtx) Clock() rt.Clock { return t.clock }
func (t stubTaskCtx) FS() rt.FS       { return nil }

func newTestEngine(t *testing.T, cfg Config) (*Engine, *testClock) {
	t.Helper()
	clock := &testClock{}
	return New(&stubCtx{clock: clock}, cfg), clock
}

// TestBackpressureBlocksWithoutSleeping is the satellite regression test:
// a one-byte Writeback budget stalls every submit behind the writer, and
// the stall must block on completion signals — zero Sleep calls anywhere,
// on the submitter or the workers — while still counting the waits.
func TestBackpressureBlocksWithoutSleeping(t *testing.T) {
	reg := metrics.New()
	waits := 0
	eng, clock := newTestEngine(t, Config{
		Name:     "test-drain",
		Workers:  2,
		Budget:   1,
		QueueCap: 64,
		Policy:   Writeback{},
		Metrics:  reg,
		OnWait:   func(Class) { waits++ },
	})
	var done int
	var mu sync.Mutex
	const n = 20
	for i := 0; i < n; i++ {
		info := eng.Submit(&Task{
			Class: ClassWrite,
			Key:   "file-a",
			Cost:  100,
			Run: func(rt.TaskCtx, WorkerState) Result {
				mu.Lock()
				done++
				mu.Unlock()
				return Result{}
			},
		})
		if !info.Waited {
			t.Fatalf("submit %d: expected a budget wait (queued %d over budget 1)", i, info.Queued)
		}
	}
	if err := eng.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	eng.Close()
	mu.Lock()
	d := done
	mu.Unlock()
	if d != n {
		t.Fatalf("ran %d of %d tasks", d, n)
	}
	if waits != n {
		t.Fatalf("counted %d backpressure waits, want %d", waits, n)
	}
	if got := clock.sleepCount(); got != 0 {
		t.Fatalf("scheduler took %d busy-wait sleeps under backpressure, want 0", got)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["iosched.write.backpressure_waits"]; got != n {
		t.Fatalf("iosched.write.backpressure_waits = %d, want %d", got, n)
	}
	if got := eng.Tally(ClassWrite).Done; got != n {
		t.Fatalf("tally done = %d, want %d", got, n)
	}
}

// TestKeyedOrdering checks the scheduler invariant the drain engine's
// bit-exactness rests on: tasks sharing a key execute on one worker in
// submission order, even across a wide pool.
func TestKeyedOrdering(t *testing.T) {
	eng, _ := newTestEngine(t, Config{
		Name:     "test-order",
		Workers:  8,
		QueueCap: 256,
		Policy:   Writeback{},
	})
	var mu sync.Mutex
	got := make(map[string][]int)
	keys := []string{"alpha", "beta", "gamma", "delta"}
	const perKey = 50
	for i := 0; i < perKey; i++ {
		for _, key := range keys {
			key, i := key, i
			eng.Submit(&Task{
				Class: ClassWrite,
				Key:   key,
				Cost:  1,
				Run: func(rt.TaskCtx, WorkerState) Result {
					mu.Lock()
					got[key] = append(got[key], i)
					mu.Unlock()
					return Result{}
				},
			})
		}
	}
	if err := eng.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	eng.Close()
	mu.Lock()
	defer mu.Unlock()
	for _, key := range keys {
		if len(got[key]) != perKey {
			t.Fatalf("key %s ran %d of %d tasks", key, len(got[key]), perKey)
		}
		for i, v := range got[key] {
			if v != i {
				t.Fatalf("key %s executed out of submission order: position %d got task %d (full: %v)", key, i, v, got[key])
			}
		}
	}
}

// TestRestartReadAdmission checks the batch policy's two degenerate modes:
// unbounded budget floods the pool (peak depth = batch size, no waits),
// and a tiny budget degenerates to serial admission (peak depth 1, every
// deferred task counted once).
func TestRestartReadAdmission(t *testing.T) {
	run := func(budget int64) (peak, waits int) {
		eng, _ := newTestEngine(t, Config{
			Name:     "test-read",
			Workers:  4,
			Budget:   budget,
			QueueCap: 16,
			Policy:   RestartRead{},
			OnDepth: func(depth int, _ int64) {
				if depth > peak {
					peak = depth
				}
			},
			OnWait: func(Class) { waits++ },
		})
		var tasks []*Task
		for i := 0; i < 8; i++ {
			tasks = append(tasks, &Task{
				Class: ClassRead,
				Cost:  10,
				Run:   func(rt.TaskCtx, WorkerState) Result { return Result{} },
			})
		}
		eng.RunBatch(tasks, nil)
		eng.Close()
		return peak, waits
	}
	if peak, waits := run(0); peak != 8 || waits != 0 {
		t.Fatalf("unbounded budget: peak depth %d waits %d, want 8 and 0", peak, waits)
	}
	if peak, waits := run(1); peak != 1 || waits != 7 {
		t.Fatalf("one-byte budget: peak depth %d waits %d, want 1 (serial) and 7", peak, waits)
	}
}

// TestRoundRobinDealing checks that unkeyed tasks are dealt strictly by
// submission index, the dealing the read pool sizes its queues by.
func TestRoundRobinDealing(t *testing.T) {
	const nw = 4
	eng, _ := newTestEngine(t, Config{
		Name:     "test-rr",
		Workers:  nw,
		QueueCap: 64,
		Policy:   Writeback{},
	})
	if eng.Workers() != nw {
		t.Fatalf("workers = %d, want %d", eng.Workers(), nw)
	}
	for i := 0; i < 4*nw; i++ {
		want := i % nw
		if got := eng.route(&Task{}); got != want {
			t.Fatalf("unkeyed task %d routed to worker %d, want %d", i, got, want)
		}
	}
	eng.Close()
}

// TestFlushErrorSticky checks error semantics: a failed task surfaces on
// the next flush and on every flush after it, so no later generation can
// commit past a lost block.
func TestFlushErrorSticky(t *testing.T) {
	boom := errors.New("disk full")
	eng, _ := newTestEngine(t, Config{
		Name:     "test-err",
		Workers:  1,
		QueueCap: 8,
		Policy:   Writeback{},
	})
	eng.Submit(&Task{Class: ClassWrite, Cost: 1, Run: func(rt.TaskCtx, WorkerState) Result {
		return Result{Err: boom}
	}})
	if err := eng.Flush(); !errors.Is(err, boom) {
		t.Fatalf("first flush err = %v, want %v", err, boom)
	}
	eng.Submit(&Task{Class: ClassWrite, Cost: 1, Run: func(rt.TaskCtx, WorkerState) Result {
		return Result{}
	}})
	if err := eng.Flush(); !errors.Is(err, boom) {
		t.Fatalf("second flush err = %v, want sticky %v", err, boom)
	}
	eng.Close()
	if got := eng.Tally(ClassWrite).Errors; got != 1 {
		t.Fatalf("tally errors = %d, want 1", got)
	}
}

// TestFatalResultStopsPool checks the injected-crash path: a fatal task
// kills its worker after the completion is reported, and the engine
// surfaces it through Crashed without wedging Flush or Close.
func TestFatalResultStopsPool(t *testing.T) {
	eng, _ := newTestEngine(t, Config{
		Name:     "test-fatal",
		Workers:  1,
		QueueCap: 8,
		Policy:   Writeback{},
	})
	eng.Submit(&Task{Class: ClassWrite, Cost: 1, Run: func(rt.TaskCtx, WorkerState) Result {
		return Result{Fatal: true}
	}})
	if err := eng.Flush(); err != nil {
		t.Fatalf("flush after crash: %v", err)
	}
	if !eng.Crashed() {
		t.Fatal("engine did not report the crash")
	}
	eng.Close()
	if got := eng.Tally(ClassWrite).Done; got != 1 {
		t.Fatalf("the fatal task's completion was lost: done = %d, want 1", got)
	}
}

// TestWorkerStateFlush checks that a barrier flushes every worker's
// private state exactly once per Flush.
func TestWorkerStateFlush(t *testing.T) {
	var mu sync.Mutex
	flushes := 0
	eng, _ := newTestEngine(t, Config{
		Name:     "test-state",
		Workers:  3,
		QueueCap: 8,
		Policy:   Writeback{},
		NewState: func(wi int, tc rt.TaskCtx) WorkerState {
			return &countingState{mu: &mu, flushes: &flushes}
		},
	})
	if err := eng.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	mu.Lock()
	got := flushes
	mu.Unlock()
	if got != 3 {
		t.Fatalf("flushed %d worker states, want 3", got)
	}
	eng.Close()
}

type countingState struct {
	mu      *sync.Mutex
	flushes *int
}

func (c *countingState) Flush() error {
	c.mu.Lock()
	*c.flushes++
	c.mu.Unlock()
	return nil
}

func (c *countingState) Close() error { return nil }

// TestUnifiedMetricNames pins the scheduler's metric surface: one series
// set per class, under the iosched. prefix.
func TestUnifiedMetricNames(t *testing.T) {
	reg := metrics.New()
	eng, _ := newTestEngine(t, Config{
		Name:     "test-names",
		Workers:  1,
		QueueCap: 8,
		Policy:   Writeback{},
		Metrics:  reg,
	})
	eng.Submit(&Task{Class: ClassWrite, Cost: 1, Run: func(rt.TaskCtx, WorkerState) Result { return Result{} }})
	eng.Flush()
	eng.Close()
	snap := reg.Snapshot()
	for _, class := range []string{"write", "read", "scan"} {
		for _, name := range []string{"backpressure_waits", "errors", "tasks"} {
			key := fmt.Sprintf("iosched.%s.%s", class, name)
			if _, ok := snap.Counters[key]; !ok {
				t.Errorf("counter %s not registered", key)
			}
		}
		if _, ok := snap.Gauges["iosched."+class+".queue_depth"]; !ok {
			t.Errorf("gauge iosched.%s.queue_depth not registered", class)
		}
		for _, name := range []string{"overlap_seconds", "busy_seconds"} {
			key := fmt.Sprintf("iosched.%s.%s", class, name)
			if _, ok := snap.Histograms[key]; !ok {
				t.Errorf("histogram %s not registered", key)
			}
		}
	}
	if got := snap.Counters["iosched.write.tasks"]; got != 1 {
		t.Fatalf("iosched.write.tasks = %d, want 1", got)
	}
}

// Package iosched is the unified budgeted I/O scheduler behind every
// background engine in the library: the Rocpanda async-drain writer pool,
// the Rocpanda parallel restart read pool, and T-Rochdf's per-process I/O
// thread are all thin adapters over one Engine. It realizes the paper's
// "yield to new client requests" across request classes instead of once
// per feature:
//
//   - Typed tasks. A Task carries a Class (write-block, read-extent,
//     scan-file), a routing Key, a byte Cost, and a Run closure executed on
//     a worker with that worker's own clock identity and filesystem view.
//
//   - Keyed ordering. Tasks with the same non-empty Key execute on one
//     worker in submission order (FNV-32a of the key over the pool width) —
//     the file-routing guarantee that keeps async-drain output
//     byte-identical to a synchronous drain is a scheduler invariant here,
//     not a drain-engine detail. Tasks with an empty Key are dealt
//     round-robin by submission index.
//
//   - Budget admission on completion signals. Config.Budget bounds the
//     task bytes in flight. The gate never sleep-polls: a stalled
//     submitter blocks on the control queue and is woken by the very
//     completion that releases budget. How the gate is applied is the
//     pluggable Policy — Writeback stalls the submitter after enqueueing
//     (write-through degeneration at tiny budgets), RestartRead defers
//     admission but always admits when the pool is idle (serial
//     degeneration at tiny budgets). Because admission is per Engine
//     instance, a restart-read instance is serviced immediately even while
//     a drain instance is still emptying a previous generation's queue —
//     cross-engine overlap, not just overlap within one engine.
//
//   - One metrics and trace surface. The Engine owns the unified
//     iosched.<class>.{queue_depth,backpressure_waits,overlap_seconds,
//     errors,busy_seconds,tasks} series and emits trace spans from one
//     place; adapters keep the legacy rocpanda.drain.* / rocpanda.read.*
//     names populated as views of the same events.
//
// Concurrency contract: Submit, Flush, RunBatch and Close run on the
// owning rank's goroutine; Run closures execute on the spawned workers.
// The two sides share only the queues and three atomics (barrier, crashed,
// dead), which keeps both the race detector and the deterministic
// simulation happy.
package iosched

import (
	"hash/fnv"
	"sync/atomic"

	"genxio/internal/metrics"
	"genxio/internal/mpi"
	"genxio/internal/rt"
)

// Class is a task's request class. The scheduler accounts queue depth,
// backpressure, overlap, and errors per class.
type Class int

const (
	// ClassWrite is a buffered-block writeback (drain engines).
	ClassWrite Class = iota
	// ClassRead is a planned extent read (catalog-indexed restart).
	ClassRead
	// ClassScan is a whole-file directory-scan fallback read.
	ClassScan
	numClasses
)

// String returns the metric-name label of the class.
func (c Class) String() string {
	switch c {
	case ClassWrite:
		return "write"
	case ClassRead:
		return "read"
	case ClassScan:
		return "scan"
	}
	return "unknown"
}

// Task is one schedulable unit of I/O work.
type Task struct {
	// Class selects the accounting bucket.
	Class Class
	// Key routes the task: equal non-empty keys serialize on one worker
	// in submission order; an empty key deals round-robin.
	Key string
	// Cost is the task's byte charge against Config.Budget.
	Cost int64
	// Meta is opaque adapter context echoed back in the Completion.
	Meta interface{}
	// Run does the work on a worker, with the worker's clock and
	// filesystem (via TaskCtx) and the worker's private state.
	Run func(tc rt.TaskCtx, st WorkerState) Result
}

// Result is what a Task's Run returns.
type Result struct {
	// Err is the task's failure, if any; it becomes the worker's sticky
	// error (reported by every later Flush) and counts in the class's
	// error metrics.
	Err error
	// Value is the task's payload, handed to the completion consumer.
	Value interface{}
	// Fatal kills the worker after the completion is reported — an
	// injected crash; the worker's exit message carries the verdict.
	Fatal bool
}

// Completion reports one finished task back to the submitter. The control
// queue handoff is the happens-before edge covering everything Run wrote.
type Completion struct {
	Task   *Task
	Result Result
	// T0 and T1 bracket Run on the worker's clock.
	T0, T1 float64
	// Cancelled marks a task discarded after Close (dead pool): Run never
	// executed, only its budget is released.
	Cancelled bool
}

// WorkerState is a worker's private per-pool state (open file handles, a
// block sink). Flush is the barrier hook: finish and close everything so
// prior output is durable. Close tears the state down at worker exit when
// Config.CloseStateOnExit is set.
type WorkerState interface {
	Flush() error
	Close() error
}

// noState is the default WorkerState: stateless workers.
type noState struct{}

func (noState) Flush() error { return nil }
func (noState) Close() error { return nil }

// ClassTally is one class's accumulated background totals, merged from the
// workers at exit (plus externally-noted overlap).
type ClassTally struct {
	Done    int64   // tasks completed
	Errors  int64   // failed tasks and failed flush-closes
	Busy    float64 // seconds spent inside Run
	Overlap float64 // Busy seconds outside any Flush barrier
}

// Config configures an Engine.
type Config struct {
	// Name is the spawn name of the workers (shows in simulation traces).
	Name string
	// Workers is the pool width, clamped to [1, MaxWorkers].
	Workers int
	// MaxWorkers caps Workers; <= 0 means no cap.
	MaxWorkers int
	// Budget bounds the task bytes in flight; <= 0 is unbounded.
	Budget int64
	// QueueCap is each worker's job-queue capacity (>= 1).
	QueueCap int
	// CtlCap sizes the control queue; 0 derives a capacity large enough
	// that no worker ever blocks reporting a completion.
	CtlCap int
	// Policy is the admission policy; nil defaults to Writeback.
	Policy Policy
	// FlushClass is the class flush-close errors account to.
	FlushClass Class
	// NewState builds a worker's private state; nil means stateless.
	NewState func(wi int, tc rt.TaskCtx) WorkerState
	// CloseStateOnExit closes the worker state on (non-panic) worker
	// exit. Leave false when unflushed state must survive as staged
	// output (the drain sink's crash semantics).
	CloseStateOnExit bool
	// FatalPanic classifies a Run panic as a worker death (true: the
	// worker exits crashed, state unclosed) instead of a bug (false or
	// nil: the panic propagates).
	FatalPanic func(r interface{}) bool
	// OverlapExternal disables the worker-side overlap accounting
	// (Busy outside a barrier); the adapter then decides per completion
	// and calls NoteOverlap — the restart read pool's "after first ship"
	// rule.
	OverlapExternal bool

	// Metrics receives the unified iosched.<class>.* series; nil
	// disables them.
	Metrics *metrics.Registry
	// Trace, TraceRank and TracePhase emit one span per task Run; a nil
	// recorder disables them. TraceZeroSpans also records empty spans
	// (t1 == t0), which the write class needs for span-per-block
	// accounting.
	Trace          traceRecorder
	TraceRank      int
	TracePhase     string
	TraceZeroSpans bool

	// OnWorkerDone observes every completion (and flush errors, with a
	// nil Task) on the worker goroutine, before it is reported — the
	// legacy per-event histograms live here. overlapped reports the
	// barrier-free verdict (always false with OverlapExternal).
	OnWorkerDone func(c Completion, overlapped bool)
	// OnDepth observes the pool depth (tasks in flight) and queued bytes
	// after every dispatch, on the submitter — legacy peak gauges.
	OnDepth func(depth int, queued int64)
	// OnWait observes every counted backpressure wait, on the submitter.
	OnWait func(c Class)
}

// traceRecorder is the slice of trace.Recorder the engine needs; an
// interface so a nil recorder simply disables spans without importing the
// concrete type into every adapter signature.
type traceRecorder interface {
	Record(rank int, phase string, t0, t1 float64)
}

// control-queue message types (besides Completion).
type flushToken struct{}
type flushAck struct{ err error }
type workerExit struct {
	tally   [numClasses]ClassTally
	crashed bool
}

// classMx holds one class's unified metric handles (nil-safe no-ops
// without a registry).
type classMx struct {
	depth   *metrics.Gauge
	waits   *metrics.Counter
	overlap *metrics.Histogram
	errors  *metrics.Counter
	busy    *metrics.Histogram
	tasks   *metrics.Counter
}

// Engine is one budgeted worker pool. See the package comment for the
// concurrency contract.
type Engine struct {
	cfg    Config
	clock  rt.Clock // the submitter's clock identity
	nw     int
	budget int64
	policy Policy
	jobs   []rt.Queue
	ctl    rt.Queue

	barrier atomic.Bool // a Flush is in progress (work then isn't overlap)
	crashed atomic.Bool // a worker died (injected crash)
	dead    atomic.Bool // pool closed: workers cancel instead of running

	// Submitter-goroutine-only state.
	queued      int64
	depth       int
	classDepth  [numClasses]int
	rr          int // round-robin cursor for unkeyed tasks
	lastStalled int // RunBatch: index of the last wait-counted task
	exited      int
	closed      bool
	tally       [numClasses]ClassTally // merged worker tallies (after exits)
	ext         [numClasses]float64    // externally-noted overlap seconds
	mx          [numClasses]classMx
}

// New builds the pool and spawns its workers.
func New(ctx mpi.Ctx, cfg Config) *Engine {
	nw := cfg.Workers
	if nw < 1 {
		nw = 1
	}
	if cfg.MaxWorkers > 0 && nw > cfg.MaxWorkers {
		nw = cfg.MaxWorkers
	}
	qcap := cfg.QueueCap
	if qcap < 1 {
		qcap = 1
	}
	ctlCap := cfg.CtlCap
	if ctlCap <= 0 {
		// One slot per possibly-outstanding task plus every ack and exit:
		// a worker never blocks reporting, so a stalled or absent
		// submitter can never wedge the pool.
		ctlCap = nw*qcap + 2*nw + 4
	}
	pol := cfg.Policy
	if pol == nil {
		pol = Writeback{}
	}
	e := &Engine{
		cfg:         cfg,
		clock:       ctx.Clock(),
		nw:          nw,
		budget:      cfg.Budget,
		policy:      pol,
		ctl:         ctx.NewQueue(ctlCap),
		lastStalled: -1,
	}
	for c := Class(0); c < numClasses; c++ {
		e.mx[c] = newClassMx(cfg.Metrics, c)
	}
	// All queues exist before any worker starts: a worker indexes e.jobs,
	// and growing the slice under it would race.
	for wi := 0; wi < nw; wi++ {
		e.jobs = append(e.jobs, ctx.NewQueue(qcap))
	}
	for wi := 0; wi < nw; wi++ {
		wi := wi
		ctx.Spawn(cfg.Name, func(tc rt.TaskCtx) { e.runWorker(wi, tc) })
	}
	return e
}

func newClassMx(r *metrics.Registry, c Class) classMx {
	if r == nil {
		return classMx{}
	}
	p := "iosched." + c.String() + "."
	return classMx{
		depth:   r.Gauge(p + "queue_depth"),
		waits:   r.Counter(p + "backpressure_waits"),
		overlap: r.Histogram(p+"overlap_seconds", nil),
		errors:  r.Counter(p + "errors"),
		busy:    r.Histogram(p+"busy_seconds", nil),
		tasks:   r.Counter(p + "tasks"),
	}
}

// Workers returns the clamped pool width.
func (e *Engine) Workers() int { return e.nw }

// Crashed reports whether a worker died to an injected crash.
func (e *Engine) Crashed() bool { return e.crashed.Load() }

// Tally returns a class's merged totals. Complete only after Close (or,
// for externally-noted overlap, after the rounds that note it).
func (e *Engine) Tally(c Class) ClassTally {
	t := e.tally[c]
	t.Overlap += e.ext[c]
	return t
}

// NoteOverlap records class overlap decided by the adapter (only
// meaningful with Config.OverlapExternal). Submitter goroutine.
func (e *Engine) NoteOverlap(c Class, seconds float64) {
	e.ext[c] += seconds
	e.mx[c].overlap.Observe(seconds)
}

// route assigns a task to a worker: FNV-32a of the key, or round-robin by
// submission index when unkeyed. Stable by key, so one key's tasks always
// execute on one worker, in submission order.
func (e *Engine) route(t *Task) int {
	if t.Key == "" {
		wi := e.rr % e.nw
		e.rr++
		return wi
	}
	h := fnv.New32a()
	h.Write([]byte(t.Key))
	return int(h.Sum32() % uint32(e.nw))
}

// reapReady drains every completion signal that is already available,
// without blocking, so the submitter's depth and byte accounting track the
// workers' actual progress at each submit point. Stale flush acks (from a
// barrier a crash interrupted) are dropped.
func (e *Engine) reapReady() {
	for {
		v, ok := e.ctl.TryGet(e.clock)
		if !ok {
			return
		}
		switch msg := v.(type) {
		case Completion:
			e.noteCompletion(msg)
		case workerExit:
			e.noteExit(msg)
		}
	}
}

// SubmitInfo reports a Submit's admission accounting to the adapter.
type SubmitInfo struct {
	Queued int64 // bytes in flight after this submit
	Depth  int   // tasks in flight after this submit
	Waited bool  // the submitter was held for budget
}

// Submit dispatches one task in streaming mode (drain engines): the task
// is always enqueued, then the submitter is held on completion signals
// while the policy says the queue is over budget. Ready completions are
// reaped (without blocking) first, so depth and byte accounting track the
// workers' progress at every submit point. Submitter goroutine.
func (e *Engine) Submit(t *Task) SubmitInfo {
	e.reapReady()
	e.queued += t.Cost
	e.depth++
	e.classDepth[t.Class]++
	e.noteDepth(t.Class)
	info := SubmitInfo{Queued: e.queued, Depth: e.depth}
	// Whether this submit overruns the budget is decided here, before the
	// workers can race the check: the wait accounting stays deterministic.
	hold := e.policy.HoldSubmitter(e.queued, e.budget)
	if hold {
		info.Waited = true
		e.countWait(t.Class)
	}
	e.jobs[e.route(t)].Put(e.clock, t)
	for hold && e.queued > e.budget && !e.crashed.Load() {
		v, ok := e.ctl.Get(e.clock)
		if !ok {
			break
		}
		switch msg := v.(type) {
		case Completion:
			e.noteCompletion(msg)
		case workerExit:
			e.noteExit(msg)
		}
	}
	return info
}

// Flush is the barrier: every worker finishes its queue, flushes its state
// (closing files), and acks with its sticky error; the first one is
// returned. Work done under the barrier is not overlap. If a worker
// crashed (before or during the flush) Flush returns early — check
// Crashed. Submitter goroutine.
func (e *Engine) Flush() error {
	if e.crashed.Load() {
		return nil
	}
	e.barrier.Store(true)
	defer e.barrier.Store(false)
	for _, q := range e.jobs {
		q.Put(e.clock, flushToken{})
	}
	var err error
	for acks := 0; acks < e.nw; {
		v, ok := e.ctl.Get(e.clock)
		if !ok {
			break
		}
		switch msg := v.(type) {
		case Completion:
			e.noteCompletion(msg)
		case flushAck:
			acks++
			if msg.err != nil && err == nil {
				err = msg.err
			}
		case workerExit:
			// A worker can only exit mid-run by crashing; the barrier
			// cannot complete.
			e.noteExit(msg)
			return err
		}
	}
	return err
}

// RunBatch executes a bounded task list (restart read rounds): admission
// interleaves with consumption, and every non-cancelled completion is
// handed to onDone on the submitter goroutine. Admission always wins while
// the policy allows it, so the queues stay full and the workers never
// starve; a deferred task blocks the loop on one completion signal, which
// both releases budget and lets earlier results ship while later work is
// still on disk. Returns early if a worker crashed. Submitter goroutine.
func (e *Engine) RunBatch(tasks []*Task, onDone func(Completion)) {
	for next := 0; next < len(tasks) || e.depth > 0; {
		if next < len(tasks) {
			t := tasks[next]
			if e.policy.Admit(e.queued, e.budget, e.depth, t.Cost) {
				e.jobs[e.route(t)].Put(e.clock, t)
				e.queued += t.Cost
				e.depth++
				e.classDepth[t.Class]++
				e.noteDepth(t.Class)
				next++
				continue
			}
			// Count the wait once per task, however many completions it
			// takes to fit.
			if e.lastStalled != next {
				e.lastStalled = next
				e.countWait(t.Class)
			}
		}
		v, ok := e.ctl.Get(e.clock)
		if !ok {
			return
		}
		switch msg := v.(type) {
		case Completion:
			e.noteCompletion(msg)
			if !msg.Cancelled && onDone != nil {
				onDone(msg)
			}
		case workerExit:
			// Mid-batch exits are crashes (queues close only after the
			// batch); the round cannot complete.
			e.noteExit(msg)
			return
		}
	}
}

// Close tears the pool down: closes the job queues, drains the control
// queue until every worker has exited (merging their tallies), and closes
// the control queue — so simulation worker processes always terminate and
// no stale message leaks into a later pool. Idempotent; submitter
// goroutine.
func (e *Engine) Close() {
	if e.closed {
		return
	}
	e.closed = true
	// From here on workers cancel instead of running: a dead pool's queued
	// tasks die with it (the crashed server's buffered blocks, a torn-down
	// read round). On the normal path the queues are already empty.
	e.dead.Store(true)
	for _, q := range e.jobs {
		q.Close()
	}
	for e.exited < e.nw {
		v, ok := e.ctl.Get(e.clock)
		if !ok {
			break
		}
		switch msg := v.(type) {
		case Completion:
			e.noteCompletion(msg)
		case workerExit:
			e.noteExit(msg)
		}
		// Stale flush acks from a barrier a crash interrupted are dropped.
	}
	e.ctl.Close()
}

func (e *Engine) noteDepth(c Class) {
	e.mx[c].depth.SetMax(float64(e.classDepth[c]))
	if e.cfg.OnDepth != nil {
		e.cfg.OnDepth(e.depth, e.queued)
	}
}

func (e *Engine) countWait(c Class) {
	e.mx[c].waits.Inc()
	if e.cfg.OnWait != nil {
		e.cfg.OnWait(c)
	}
}

func (e *Engine) noteCompletion(c Completion) {
	e.queued -= c.Task.Cost
	e.depth--
	e.classDepth[c.Task.Class]--
}

func (e *Engine) noteExit(msg workerExit) {
	e.exited++
	for c := range msg.tally {
		e.tally[c].Done += msg.tally[c].Done
		e.tally[c].Errors += msg.tally[c].Errors
		e.tally[c].Busy += msg.tally[c].Busy
		e.tally[c].Overlap += msg.tally[c].Overlap
	}
}

// runWorker is one worker's body. It owns private state (its own files,
// clock identity and filesystem view) and local tallies, so the only
// cross-task traffic is the queues and the engine's atomics.
func (e *Engine) runWorker(wi int, tc rt.TaskCtx) {
	st := WorkerState(noState{})
	if e.cfg.NewState != nil {
		st = e.cfg.NewState(wi, tc)
	}
	var tally [numClasses]ClassTally
	var sticky error
	crashed := false
	defer func() {
		if r := recover(); r != nil {
			if e.cfg.FatalPanic == nil || !e.cfg.FatalPanic(r) {
				panic(r)
			}
			// An injected crash point fired mid-Run: the owning process is
			// dead. Flag it so the submitter stops too, and leave the
			// state unclosed (staged temporaries), as a real process death
			// would.
			crashed = true
			e.crashed.Store(true)
		} else if e.cfg.CloseStateOnExit {
			st.Close()
		}
		e.ctl.Put(tc.Clock(), workerExit{tally: tally, crashed: crashed})
	}()
	for {
		v, ok := e.jobs[wi].Get(tc.Clock())
		if !ok {
			return
		}
		switch t := v.(type) {
		case flushToken:
			if err := st.Flush(); err != nil {
				if sticky == nil {
					sticky = err
				}
				fc := e.cfg.FlushClass
				tally[fc].Errors++
				e.mx[fc].errors.Inc()
				if e.cfg.OnWorkerDone != nil {
					e.cfg.OnWorkerDone(Completion{Result: Result{Err: err}}, false)
				}
			}
			e.ctl.Put(tc.Clock(), flushAck{err: sticky})
		case *Task:
			if e.dead.Load() {
				e.ctl.Put(tc.Clock(), Completion{Task: t, Cancelled: true})
				continue
			}
			t0 := tc.Clock().Now()
			res := t.Run(tc, st) // a FatalPanic in here exits via the defer
			t1 := tc.Clock().Now()
			c := Completion{Task: t, Result: res, T0: t0, T1: t1}
			cl := t.Class
			tally[cl].Done++
			tally[cl].Busy += t1 - t0
			e.mx[cl].busy.Observe(t1 - t0)
			e.mx[cl].tasks.Inc()
			overlapped := false
			if !e.cfg.OverlapExternal && !e.barrier.Load() {
				// Done while the submitter was free to serve requests:
				// this is the overlap the paper claims.
				overlapped = true
				tally[cl].Overlap += t1 - t0
				e.mx[cl].overlap.Observe(t1 - t0)
			}
			if res.Err != nil {
				tally[cl].Errors++
				e.mx[cl].errors.Inc()
				if sticky == nil {
					sticky = res.Err
				}
			}
			if e.cfg.Trace != nil && (e.cfg.TraceZeroSpans || t1 > t0) {
				e.cfg.Trace.Record(e.cfg.TraceRank, e.cfg.TracePhase, t0, t1)
			}
			if e.cfg.OnWorkerDone != nil {
				e.cfg.OnWorkerDone(c, overlapped)
			}
			e.ctl.Put(tc.Clock(), c)
			if res.Fatal {
				crashed = true
				e.crashed.Store(true)
				return
			}
		}
	}
}

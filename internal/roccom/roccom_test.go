package roccom

import (
	"fmt"
	"strings"
	"testing"

	"genxio/internal/hdf"
	"genxio/internal/mesh"
	"genxio/internal/stats"
)

func testBlocks(t *testing.T, n int) []*mesh.Block {
	t.Helper()
	blocks, err := mesh.GenCylinder(mesh.CylinderSpec{
		RInner: 0.1, ROuter: 0.5, Length: 1,
		BR: 1, BT: n, BZ: 1, NodesPerBlock: 120, Spread: 0.3,
	}, 1, stats.NewRNG(11))
	if err != nil {
		t.Fatal(err)
	}
	return blocks
}

func fluidWindow(t *testing.T, rc *Roccom, blocks []*mesh.Block) *Window {
	t.Helper()
	w, err := rc.NewWindow("fluid")
	if err != nil {
		t.Fatal(err)
	}
	specs := []AttrSpec{
		{Name: "pressure", Loc: NodeLoc, Type: hdf.F64, NComp: 1},
		{Name: "velocity", Loc: NodeLoc, Type: hdf.F64, NComp: 3},
		{Name: "density", Loc: ElemLoc, Type: hdf.F32, NComp: 1},
		{Name: "bcflag", Loc: PaneLoc, Type: hdf.I32, NComp: 2},
	}
	for _, s := range specs {
		if err := w.NewAttribute(s); err != nil {
			t.Fatal(err)
		}
	}
	for _, b := range blocks {
		if _, err := w.RegisterPane(b.ID, b); err != nil {
			t.Fatal(err)
		}
	}
	return w
}

func TestWindowPaneLifecycle(t *testing.T) {
	rc := New()
	blocks := testBlocks(t, 4)
	w := fluidWindow(t, rc, blocks)

	if w.NumPanes() != 4 {
		t.Fatalf("NumPanes = %d", w.NumPanes())
	}
	if got := fmt.Sprint(w.PaneIDs()); got != "[1 2 3 4]" {
		t.Fatalf("PaneIDs = %v", got)
	}
	p, ok := w.Pane(2)
	if !ok {
		t.Fatal("pane 2 missing")
	}
	// Array sizes must match the spec and the block.
	a, _ := p.Array("velocity")
	if a.Len() != 3*p.Block.NumNodes() {
		t.Fatalf("velocity len %d, want %d", a.Len(), 3*p.Block.NumNodes())
	}
	d, _ := p.Array("density")
	if len(d.F32) != p.Block.NumElems() {
		t.Fatalf("density len %d, want %d", len(d.F32), p.Block.NumElems())
	}
	bc, _ := p.Array("bcflag")
	if len(bc.I32) != 2 {
		t.Fatalf("bcflag len %d, want 2", len(bc.I32))
	}
	if err := w.DeletePane(2); err != nil {
		t.Fatal(err)
	}
	if _, ok := w.Pane(2); ok {
		t.Fatal("pane 2 still present")
	}
	if err := w.DeletePane(2); err == nil {
		t.Fatal("double delete accepted")
	}
}

func TestLateAttributeAllocatesOnPanes(t *testing.T) {
	rc := New()
	blocks := testBlocks(t, 2)
	w, _ := rc.NewWindow("solid")
	for _, b := range blocks {
		w.RegisterPane(b.ID, b)
	}
	if err := w.NewAttribute(AttrSpec{Name: "temp", Loc: NodeLoc, Type: hdf.F64, NComp: 1}); err != nil {
		t.Fatal(err)
	}
	w.EachPane(func(p *Pane) {
		a, ok := p.Array("temp")
		if !ok || len(a.F64) != p.Block.NumNodes() {
			t.Errorf("pane %d temp not allocated", p.ID)
		}
	})
}

func TestAttrValidation(t *testing.T) {
	rc := New()
	w, _ := rc.NewWindow("v")
	bad := []AttrSpec{
		{Name: "", Loc: NodeLoc, Type: hdf.F64, NComp: 1},
		{Name: "x", Loc: Location('z'), Type: hdf.F64, NComp: 1},
		{Name: "x", Loc: NodeLoc, Type: hdf.DType(42), NComp: 1},
		{Name: "x", Loc: NodeLoc, Type: hdf.F64, NComp: 0},
	}
	for i, s := range bad {
		if err := w.NewAttribute(s); err == nil {
			t.Fatalf("bad spec %d accepted", i)
		}
	}
	good := AttrSpec{Name: "x", Loc: NodeLoc, Type: hdf.F64, NComp: 1}
	if err := w.NewAttribute(good); err != nil {
		t.Fatal(err)
	}
	if err := w.NewAttribute(good); err == nil {
		t.Fatal("duplicate attribute accepted")
	}
}

func TestDuplicatePaneRejected(t *testing.T) {
	rc := New()
	blocks := testBlocks(t, 1)
	w, _ := rc.NewWindow("dup")
	if _, err := w.RegisterPane(7, blocks[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := w.RegisterPane(7, blocks[0]); err == nil {
		t.Fatal("duplicate pane accepted")
	}
	if _, err := w.RegisterPane(8, nil); err == nil {
		t.Fatal("nil block accepted")
	}
}

func TestWindowRegistry(t *testing.T) {
	rc := New()
	if _, err := rc.NewWindow("a.b"); err == nil {
		t.Fatal("dotted window name accepted")
	}
	if _, err := rc.NewWindow(""); err == nil {
		t.Fatal("empty window name accepted")
	}
	rc.NewWindow("b")
	rc.NewWindow("a")
	if _, err := rc.NewWindow("a"); err == nil {
		t.Fatal("duplicate window accepted")
	}
	if got := fmt.Sprint(rc.WindowNames()); got != "[a b]" {
		t.Fatalf("WindowNames = %v", got)
	}
	if err := rc.DeleteWindow("a"); err != nil {
		t.Fatal(err)
	}
	if _, ok := rc.Window("a"); ok {
		t.Fatal("deleted window still present")
	}
}

func TestFunctionDispatch(t *testing.T) {
	rc := New()
	rc.NewWindow("mod")
	calls := 0
	err := rc.RegisterFunction("mod.ping", func(args ...interface{}) (interface{}, error) {
		calls++
		return args[0].(int) + 1, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	v, err := rc.CallFunction("mod.ping", 41)
	if err != nil || v != 42 || calls != 1 {
		t.Fatalf("call: %v %v calls=%d", v, err, calls)
	}
	if _, err := rc.CallFunction("mod.nope"); err == nil {
		t.Fatal("unknown function dispatched")
	}
	if err := rc.RegisterFunction("mod.ping", func(...interface{}) (interface{}, error) { return nil, nil }); err == nil {
		t.Fatal("duplicate function accepted")
	}
	if err := rc.RegisterFunction("nowin.f", func(...interface{}) (interface{}, error) { return nil, nil }); err == nil {
		t.Fatal("function on unknown window accepted")
	}
	if err := rc.RegisterFunction("plain", func(...interface{}) (interface{}, error) { return nil, nil }); err == nil {
		t.Fatal("undotted function name accepted")
	}
	// Deleting the window removes its functions.
	rc.DeleteWindow("mod")
	if rc.HasFunction("mod.ping") {
		t.Fatal("function survived window deletion")
	}
}

// fakeIO records calls; it stands in for Rocpanda/Rochdf in module tests.
type fakeIO struct {
	writes, reads, syncs int
	lastFile, lastAttr   string
}

func (f *fakeIO) WriteAttribute(file string, w *Window, attr string, tm float64, step int) error {
	f.writes++
	f.lastFile, f.lastAttr = file, attr
	return nil
}
func (f *fakeIO) ReadAttribute(file string, w *Window, attr string) error {
	f.reads++
	f.lastFile, f.lastAttr = file, attr
	return nil
}
func (f *fakeIO) Sync() error { f.syncs++; return nil }

// fakeModule loads a fakeIO as a service module.
type fakeModule struct{ io *fakeIO }

func (m *fakeModule) Load(rc *Roccom, name string) error {
	if _, err := rc.NewWindow(name); err != nil {
		return err
	}
	return RegisterIOService(rc, name, m.io)
}

func (m *fakeModule) Unload(rc *Roccom, name string) error {
	return rc.DeleteWindow(name)
}

func TestModuleLoadUnloadAndIOService(t *testing.T) {
	rc := New()
	fio := &fakeIO{}
	mod := &fakeModule{io: fio}
	if err := rc.LoadModule(mod, "RocpandaIO"); err != nil {
		t.Fatal(err)
	}
	if !rc.ModuleLoaded("RocpandaIO") {
		t.Fatal("module not loaded")
	}
	if err := rc.LoadModule(mod, "RocpandaIO"); err == nil {
		t.Fatal("double load accepted")
	}

	blocks := testBlocks(t, 1)
	w := fluidWindow(t, rc, blocks)

	svc, err := LoadedIO(rc, "RocpandaIO")
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.WriteAttribute("snap0001", w, "all", 0.5, 50); err != nil {
		t.Fatal(err)
	}
	if err := svc.ReadAttribute("snap0001", w, "all"); err != nil {
		t.Fatal(err)
	}
	if err := svc.Sync(); err != nil {
		t.Fatal(err)
	}
	if fio.writes != 1 || fio.reads != 1 || fio.syncs != 1 {
		t.Fatalf("calls = %+v", fio)
	}
	if fio.lastFile != "snap0001" || fio.lastAttr != "all" {
		t.Fatalf("args = %q %q", fio.lastFile, fio.lastAttr)
	}

	// Bad argument types must be rejected by the dispatch shims.
	if _, err := rc.CallFunction("RocpandaIO.write_attribute", 1, 2, 3, 4, 5); err == nil {
		t.Fatal("bad args accepted")
	}
	if _, err := rc.CallFunction("RocpandaIO.write_attribute", "f", w, "all"); err == nil {
		t.Fatal("short args accepted")
	}

	if err := rc.UnloadModule("RocpandaIO"); err != nil {
		t.Fatal(err)
	}
	if rc.ModuleLoaded("RocpandaIO") {
		t.Fatal("module still loaded")
	}
	if _, err := LoadedIO(rc, "RocpandaIO"); err == nil {
		t.Fatal("LoadedIO found unloaded module")
	}
	if err := rc.UnloadModule("RocpandaIO"); err == nil {
		t.Fatal("double unload accepted")
	}
}

func TestPaneIOSetsAndRestore(t *testing.T) {
	rc := New()
	blocks := testBlocks(t, 3)
	w := fluidWindow(t, rc, blocks)

	// Fill pane 2 with recognizable data.
	p, _ := w.Pane(2)
	pr, _ := p.Array("pressure")
	for i := range pr.F64 {
		pr.F64[i] = float64(i) * 0.5
	}
	vel, _ := p.Array("velocity")
	for i := range vel.F64 {
		vel.F64[i] = -float64(i)
	}
	den, _ := p.Array("density")
	for i := range den.F32 {
		den.F32[i] = float32(i) + 0.25
	}
	bc, _ := p.Array("bcflag")
	bc.I32[0], bc.I32[1] = 7, -7

	sets, err := PaneIOSets(w, p, "all")
	if err != nil {
		t.Fatal(err)
	}
	// structured mesh: coords + 4 attributes = 5 datasets.
	if len(sets) != 5 {
		t.Fatalf("got %d datasets", len(sets))
	}
	for _, s := range sets {
		win, id, attr, ok := ParseDatasetName(s.Name)
		if !ok || win != "fluid" || id != 2 {
			t.Fatalf("bad dataset name %q", s.Name)
		}
		if attr == "" {
			t.Fatalf("empty attr in %q", s.Name)
		}
	}

	// Round-trip through the wire codec.
	decoded, err := DecodeIOSets(EncodeIOSets(sets))
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != len(sets) {
		t.Fatalf("decoded %d, want %d", len(decoded), len(sets))
	}

	// Restore into a fresh window with the same declarations.
	rc2 := New()
	w2, _ := rc2.NewWindow("fluid")
	for _, s := range w.Attributes() {
		w2.NewAttribute(s)
	}
	p2, err := RestorePane(w2, 2, decoded)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Block.NumNodes() != p.Block.NumNodes() || p2.Block.Kind != p.Block.Kind {
		t.Fatal("mesh not restored")
	}
	if p2.Block.NI != p.Block.NI || p2.Block.NK != p.Block.NK {
		t.Fatal("extent not restored")
	}
	pr2, _ := p2.Array("pressure")
	for i := range pr2.F64 {
		if pr2.F64[i] != pr.F64[i] {
			t.Fatalf("pressure[%d] = %v, want %v", i, pr2.F64[i], pr.F64[i])
		}
	}
	den2, _ := p2.Array("density")
	for i := range den2.F32 {
		if den2.F32[i] != den.F32[i] {
			t.Fatal("density mismatch")
		}
	}
	bc2, _ := p2.Array("bcflag")
	if bc2.I32[0] != 7 || bc2.I32[1] != -7 {
		t.Fatal("bcflag mismatch")
	}
}

func TestPaneIOSetsUnstructured(t *testing.T) {
	rc := New()
	blocks := testBlocks(t, 1)
	tet, err := mesh.Tetrahedralize(blocks[0])
	if err != nil {
		t.Fatal(err)
	}
	w, _ := rc.NewWindow("solid")
	w.NewAttribute(AttrSpec{Name: "stress", Loc: ElemLoc, Type: hdf.F64, NComp: 6})
	p, err := w.RegisterPane(tet.ID, tet)
	if err != nil {
		t.Fatal(err)
	}
	sets, err := PaneIOSets(w, p, "all")
	if err != nil {
		t.Fatal(err)
	}
	// coords + conn + stress.
	if len(sets) != 3 {
		t.Fatalf("%d datasets", len(sets))
	}
	w2 := New()
	sw, _ := w2.NewWindow("solid")
	sw.NewAttribute(AttrSpec{Name: "stress", Loc: ElemLoc, Type: hdf.F64, NComp: 6})
	p2, err := RestorePane(sw, tet.ID, sets)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Block.Kind != mesh.Unstructured || p2.Block.NumElems() != tet.NumElems() {
		t.Fatal("unstructured mesh not restored")
	}
	if err := p2.Block.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPaneIOSetsSelectors(t *testing.T) {
	rc := New()
	blocks := testBlocks(t, 1)
	w := fluidWindow(t, rc, blocks)
	p, _ := w.Pane(1)

	meshOnly, err := PaneIOSets(w, p, "mesh")
	if err != nil || len(meshOnly) != 1 {
		t.Fatalf("mesh selector: %d sets, %v", len(meshOnly), err)
	}
	if !strings.HasSuffix(meshOnly[0].Name, "_coords") {
		t.Fatalf("mesh selector produced %q", meshOnly[0].Name)
	}
	one, err := PaneIOSets(w, p, "pressure")
	if err != nil || len(one) != 1 {
		t.Fatalf("single selector: %d sets, %v", len(one), err)
	}
	if _, err := PaneIOSets(w, p, "nosuch"); err == nil {
		t.Fatal("unknown attribute accepted")
	}
}

func TestRestorePaneErrors(t *testing.T) {
	rc := New()
	w, _ := rc.NewWindow("fluid")
	if _, err := RestorePane(w, 1, nil); err == nil {
		t.Fatal("restore with no datasets accepted")
	}
	if _, err := RestorePane(w, 1, []IOSet{{Name: "garbage"}}); err == nil {
		t.Fatal("bad dataset name accepted")
	}
	if _, err := RestorePane(w, 1, []IOSet{{Name: "/fluid/pane000002/_coords"}}); err == nil {
		t.Fatal("pane ID mismatch accepted")
	}
}

func TestDecodeIOSetsCorrupt(t *testing.T) {
	rc := New()
	blocks := testBlocks(t, 1)
	w := fluidWindow(t, rc, blocks)
	p, _ := w.Pane(1)
	sets, _ := PaneIOSets(w, p, "all")
	enc := EncodeIOSets(sets)
	if _, err := DecodeIOSets(enc[:len(enc)-3]); err == nil {
		t.Fatal("truncated stream accepted")
	}
	if sets2, err := DecodeIOSets(EncodeIOSets(nil)); err != nil || len(sets2) != 0 {
		t.Fatalf("empty stream: %v %v", sets2, err)
	}
}

func TestParseDatasetName(t *testing.T) {
	win, id, attr, ok := ParseDatasetName("/fluid/pane000042/pressure")
	if !ok || win != "fluid" || id != 42 || attr != "pressure" {
		t.Fatalf("parse = %q %d %q %v", win, id, attr, ok)
	}
	for _, bad := range []string{"", "/a/b", "/a/b/c", "/a/paneX/c", "a/pane0001/c", "/a/pane0001/c/d"} {
		if _, _, _, ok := ParseDatasetName(bad); ok {
			t.Fatalf("accepted %q", bad)
		}
	}
	if PanePrefix("fluid", 42) != "/fluid/pane000042/" {
		t.Fatal("PanePrefix format changed")
	}
}

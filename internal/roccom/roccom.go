package roccom

import (
	"fmt"
	"sort"
	"strings"
)

// Function is a registered module function, invoked by name through
// CallFunction. Modules exchange data and services exclusively through
// this registry and the window registry, so a computation module never
// needs to know which I/O module (or peer physics module) it is talking
// to.
type Function func(args ...interface{}) (interface{}, error)

// Module is a loadable service or physics component. Load typically
// creates a window named name and registers the module's public functions
// on it; Unload reverses that.
type Module interface {
	Load(rc *Roccom, name string) error
	Unload(rc *Roccom, name string) error
}

// Roccom is the integration hub: the registry of windows, functions, and
// loaded modules for one process.
type Roccom struct {
	windows map[string]*Window
	funcs   map[string]Function
	modules map[string]Module
}

// New returns an empty hub.
func New() *Roccom {
	return &Roccom{
		windows: make(map[string]*Window),
		funcs:   make(map[string]Function),
		modules: make(map[string]Module),
	}
}

// NewWindow creates a window with the given name.
func (rc *Roccom) NewWindow(name string) (*Window, error) {
	if name == "" || strings.Contains(name, ".") || strings.Contains(name, "/") {
		return nil, fmt.Errorf("roccom: invalid window name %q", name)
	}
	if _, dup := rc.windows[name]; dup {
		return nil, fmt.Errorf("roccom: window %q already exists", name)
	}
	w := newWindow(name)
	rc.windows[name] = w
	return w, nil
}

// Window returns the named window.
func (rc *Roccom) Window(name string) (*Window, bool) {
	w, ok := rc.windows[name]
	return w, ok
}

// DeleteWindow removes a window and every function registered under it.
func (rc *Roccom) DeleteWindow(name string) error {
	if _, ok := rc.windows[name]; !ok {
		return fmt.Errorf("roccom: no window %q", name)
	}
	delete(rc.windows, name)
	prefix := name + "."
	for fname := range rc.funcs {
		if strings.HasPrefix(fname, prefix) {
			delete(rc.funcs, fname)
		}
	}
	return nil
}

// WindowNames returns all window names in lexical order.
func (rc *Roccom) WindowNames() []string {
	names := make([]string, 0, len(rc.windows))
	for n := range rc.windows {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// RegisterFunction registers fn under "window.function" notation.
func (rc *Roccom) RegisterFunction(name string, fn Function) error {
	if fn == nil {
		return fmt.Errorf("roccom: nil function %q", name)
	}
	parts := strings.SplitN(name, ".", 2)
	if len(parts) != 2 || parts[0] == "" || parts[1] == "" {
		return fmt.Errorf("roccom: function name %q must be window.function", name)
	}
	if _, ok := rc.windows[parts[0]]; !ok {
		return fmt.Errorf("roccom: function %q registered on unknown window %q", name, parts[0])
	}
	if _, dup := rc.funcs[name]; dup {
		return fmt.Errorf("roccom: function %q already registered", name)
	}
	rc.funcs[name] = fn
	return nil
}

// CallFunction dispatches to a registered function by name — the paper's
// COM_call_function. The application selects its I/O implementation simply
// by which module was loaded; the call site does not change.
func (rc *Roccom) CallFunction(name string, args ...interface{}) (interface{}, error) {
	fn, ok := rc.funcs[name]
	if !ok {
		return nil, fmt.Errorf("roccom: no function %q", name)
	}
	return fn(args...)
}

// HasFunction reports whether a function is registered.
func (rc *Roccom) HasFunction(name string) bool {
	_, ok := rc.funcs[name]
	return ok
}

// LoadModule loads a module under the given name (usually the name of the
// window the module creates). Loading two modules under one name is an
// error; the paper's runtime I/O selection loads either Rocpanda or Rochdf
// here.
func (rc *Roccom) LoadModule(m Module, name string) error {
	if _, dup := rc.modules[name]; dup {
		return fmt.Errorf("roccom: module %q already loaded", name)
	}
	if err := m.Load(rc, name); err != nil {
		return err
	}
	rc.modules[name] = m
	return nil
}

// UnloadModule unloads the named module.
func (rc *Roccom) UnloadModule(name string) error {
	m, ok := rc.modules[name]
	if !ok {
		return fmt.Errorf("roccom: module %q not loaded", name)
	}
	delete(rc.modules, name)
	return m.Unload(rc, name)
}

// ModuleLoaded reports whether a module is loaded under name.
func (rc *Roccom) ModuleLoaded(name string) bool {
	_, ok := rc.modules[name]
	return ok
}

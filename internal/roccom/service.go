package roccom

import "fmt"

// IOService is the paper's uniform high-level parallel I/O interface: three
// collective, file-format-independent operations hiding open/close/layout
// underneath. Rocpanda and Rochdf both provide it; the application picks
// one at startup by loading the corresponding module and never changes its
// call sites.
type IOService interface {
	// WriteAttribute collectively writes the selected attribute ("all",
	// "mesh", or a name) of every pane of the window into the snapshot
	// identified by file (a base name; the implementation decides file
	// layout). It returns when the caller's buffers are reusable — with
	// buffering implementations the data may still be on its way to
	// disk.
	WriteAttribute(file string, w *Window, attr string, time float64, step int) error
	// ReadAttribute collectively reads the panes this process is
	// responsible for from the snapshot identified by file, restoring
	// them into the window (restart).
	ReadAttribute(file string, w *Window, attr string) error
	// Sync blocks until all previously issued output has reached the
	// filesystem (used for performance analysis, debugging, and
	// end-of-run draining).
	Sync() error
}

// Function names every I/O service module must register (under
// "<module>.<name>").
const (
	FuncWriteAttribute = "write_attribute"
	FuncReadAttribute  = "read_attribute"
	FuncSync           = "sync"
)

// RegisterIOService registers svc's three operations as callable functions
// under the module window name. I/O modules call this from Load.
func RegisterIOService(rc *Roccom, module string, svc IOService) error {
	err := rc.RegisterFunction(module+"."+FuncWriteAttribute, func(args ...interface{}) (interface{}, error) {
		file, w, attr, tm, step, err := ioArgs(args, true)
		if err != nil {
			return nil, err
		}
		return nil, svc.WriteAttribute(file, w, attr, tm, step)
	})
	if err != nil {
		return err
	}
	err = rc.RegisterFunction(module+"."+FuncReadAttribute, func(args ...interface{}) (interface{}, error) {
		file, w, attr, _, _, err := ioArgs(args, false)
		if err != nil {
			return nil, err
		}
		return nil, svc.ReadAttribute(file, w, attr)
	})
	if err != nil {
		return err
	}
	return rc.RegisterFunction(module+"."+FuncSync, func(args ...interface{}) (interface{}, error) {
		return nil, svc.Sync()
	})
}

func ioArgs(args []interface{}, withTime bool) (file string, w *Window, attr string, tm float64, step int, err error) {
	want := 3
	if withTime {
		want = 5
	}
	if len(args) != want {
		return "", nil, "", 0, 0, fmt.Errorf("roccom: I/O call wants %d args, got %d", want, len(args))
	}
	var ok bool
	if file, ok = args[0].(string); !ok {
		return "", nil, "", 0, 0, fmt.Errorf("roccom: I/O arg 0 must be file name string")
	}
	if w, ok = args[1].(*Window); !ok {
		return "", nil, "", 0, 0, fmt.Errorf("roccom: I/O arg 1 must be *Window")
	}
	if attr, ok = args[2].(string); !ok {
		return "", nil, "", 0, 0, fmt.Errorf("roccom: I/O arg 2 must be attribute string")
	}
	if withTime {
		if tm, ok = args[3].(float64); !ok {
			return "", nil, "", 0, 0, fmt.Errorf("roccom: I/O arg 3 must be float64 time")
		}
		if step, ok = args[4].(int); !ok {
			return "", nil, "", 0, 0, fmt.Errorf("roccom: I/O arg 4 must be int step")
		}
	}
	return file, w, attr, tm, step, nil
}

// LoadedIO returns an IOService that dispatches through CallFunction to
// whichever I/O module was loaded under the given name — the application-
// side half of the paper's runtime I/O selection.
func LoadedIO(rc *Roccom, module string) (IOService, error) {
	for _, fn := range []string{FuncWriteAttribute, FuncReadAttribute, FuncSync} {
		if !rc.HasFunction(module + "." + fn) {
			return nil, fmt.Errorf("roccom: module %q does not provide %s", module, fn)
		}
	}
	return &ioDispatch{rc: rc, module: module}, nil
}

type ioDispatch struct {
	rc     *Roccom
	module string
}

func (d *ioDispatch) WriteAttribute(file string, w *Window, attr string, tm float64, step int) error {
	_, err := d.rc.CallFunction(d.module+"."+FuncWriteAttribute, file, w, attr, tm, step)
	return err
}

func (d *ioDispatch) ReadAttribute(file string, w *Window, attr string) error {
	_, err := d.rc.CallFunction(d.module+"."+FuncReadAttribute, file, w, attr)
	return err
}

func (d *ioDispatch) Sync() error {
	_, err := d.rc.CallFunction(d.module + "." + FuncSync)
	return err
}

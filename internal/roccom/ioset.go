package roccom

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"

	"genxio/internal/hdf"
	"genxio/internal/mesh"
)

// IOSet is one dataset extracted from a pane — the unit that flows through
// the I/O stack, whether onto the wire (client to Rocpanda server) or into
// an RHDF file. Name is the full dataset path.
type IOSet struct {
	Name  string
	Type  hdf.DType
	Dims  []int64
	Attrs []hdf.Attr
	Data  []byte
}

// NumBytes returns the payload size.
func (s *IOSet) NumBytes() int { return len(s.Data) }

// Dataset path grammar: /<window>/pane<ID>/<attr>. The mesh itself is
// stored under the reserved attribute names "_coords" and "_conn".
const (
	coordsAttr = "_coords"
	connAttr   = "_conn"
)

// PanePrefix returns the dataset path prefix of a pane.
func PanePrefix(window string, paneID int) string {
	return fmt.Sprintf("/%s/pane%06d/", window, paneID)
}

// ParseDatasetName splits a dataset path into window, pane ID, and
// attribute name.
func ParseDatasetName(name string) (window string, paneID int, attr string, ok bool) {
	parts := strings.Split(name, "/")
	if len(parts) != 4 || parts[0] != "" {
		return "", 0, "", false
	}
	if !strings.HasPrefix(parts[2], "pane") {
		return "", 0, "", false
	}
	id, err := strconv.Atoi(parts[2][4:])
	if err != nil {
		return "", 0, "", false
	}
	return parts[1], id, parts[3], true
}

// PaneIOSets extracts datasets from a pane. The attribute selector follows
// the paper's write_attribute semantics: "all" writes the mesh and every
// declared attribute, "mesh" writes only the mesh, and any other value
// writes the single named attribute.
func PaneIOSets(w *Window, p *Pane, attr string) ([]IOSet, error) {
	prefix := PanePrefix(w.Name, p.ID)
	var sets []IOSet

	addMesh := attr == "all" || attr == "mesh"
	if addMesh {
		b := p.Block
		meshAttrs := []hdf.Attr{
			hdf.I32Attr("kind", int32(b.Kind)),
			hdf.I32Attr("extent", int32(b.NI), int32(b.NJ), int32(b.NK)),
			hdf.I32Attr("level", int32(b.Level)),
		}
		sets = append(sets, IOSet{
			Name:  prefix + coordsAttr,
			Type:  hdf.F64,
			Dims:  []int64{int64(b.NumNodes()), 3},
			Attrs: meshAttrs,
			Data:  hdf.F64Bytes(b.Coords),
		})
		if b.Kind == mesh.Unstructured {
			sets = append(sets, IOSet{
				Name: prefix + connAttr,
				Type: hdf.I32,
				Dims: []int64{int64(b.NumElems()), 4},
				Data: hdf.I32Bytes(b.Conn),
			})
		}
	}
	if attr == "mesh" {
		return sets, nil
	}

	var specs []AttrSpec
	if attr == "all" {
		specs = w.Attributes()
	} else {
		spec, ok := w.Attribute(attr)
		if !ok {
			return nil, fmt.Errorf("roccom: window %q has no attribute %q", w.Name, attr)
		}
		specs = []AttrSpec{spec}
	}
	for _, spec := range specs {
		a, ok := p.Array(spec.Name)
		if !ok {
			return nil, fmt.Errorf("roccom: pane %d missing attribute %q", p.ID, spec.Name)
		}
		items := spec.items(p.Block)
		sets = append(sets, IOSet{
			Name: prefix + spec.Name,
			Type: spec.Type,
			Dims: []int64{int64(items), int64(spec.NComp)},
			Attrs: []hdf.Attr{
				hdf.StrAttr("location", string(spec.Loc)),
			},
			Data: a.Bytes(),
		})
	}
	return sets, nil
}

// RestorePane rebuilds a pane from its datasets (read from a restart file)
// and registers it in the window: the mesh block is reconstructed from the
// reserved datasets and every attribute present is decoded into the pane's
// arrays. Attributes declared on the window but absent from sets are left
// zero.
func RestorePane(w *Window, paneID int, sets []IOSet) (*Pane, error) {
	byAttr := make(map[string]*IOSet, len(sets))
	for i := range sets {
		_, id, attr, ok := ParseDatasetName(sets[i].Name)
		if !ok {
			return nil, fmt.Errorf("roccom: bad dataset name %q", sets[i].Name)
		}
		if id != paneID {
			return nil, fmt.Errorf("roccom: dataset %q does not belong to pane %d", sets[i].Name, paneID)
		}
		byAttr[attr] = &sets[i]
	}
	cs, ok := byAttr[coordsAttr]
	if !ok {
		return nil, fmt.Errorf("roccom: pane %d restart data has no mesh coordinates", paneID)
	}
	kindA, ok1 := attrOf(cs, "kind")
	extentA, ok2 := attrOf(cs, "extent")
	levelA, ok3 := attrOf(cs, "level")
	if !ok1 || !ok2 || !ok3 {
		return nil, fmt.Errorf("roccom: pane %d coords dataset missing mesh metadata", paneID)
	}
	b := &mesh.Block{
		ID:     paneID,
		Kind:   mesh.Kind(kindA.I32s()[0]),
		Coords: hdf.BytesF64(cs.Data),
		Level:  int(levelA.I32s()[0]),
	}
	ext := extentA.I32s()
	if len(ext) == 3 {
		b.NI, b.NJ, b.NK = int(ext[0]), int(ext[1]), int(ext[2])
	}
	if b.Kind == mesh.Unstructured {
		conn, ok := byAttr[connAttr]
		if !ok {
			return nil, fmt.Errorf("roccom: unstructured pane %d has no connectivity", paneID)
		}
		b.Conn = hdf.BytesI32(conn.Data)
		b.NI, b.NJ, b.NK = 0, 0, 0
	}
	p, err := w.RegisterPane(paneID, b)
	if err != nil {
		return nil, err
	}
	for _, spec := range w.Attributes() {
		s, ok := byAttr[spec.Name]
		if !ok {
			continue
		}
		a, _ := p.Array(spec.Name)
		if err := a.SetBytes(s.Data); err != nil {
			w.DeletePane(paneID)
			return nil, err
		}
	}
	return p, nil
}

func attrOf(s *IOSet, name string) (hdf.Attr, bool) {
	for _, a := range s.Attrs {
		if a.Name == name {
			return a, true
		}
	}
	return hdf.Attr{}, false
}

// EncodeIOSets serializes datasets for the wire (client-to-server block
// shipping in Rocpanda's protocol).
func EncodeIOSets(sets []IOSet) []byte {
	var b []byte
	b = binary.LittleEndian.AppendUint32(b, uint32(len(sets)))
	for _, s := range sets {
		b = appendStr(b, s.Name)
		b = append(b, byte(s.Type))
		b = append(b, byte(len(s.Dims)))
		for _, d := range s.Dims {
			b = binary.LittleEndian.AppendUint64(b, uint64(d))
		}
		b = binary.LittleEndian.AppendUint16(b, uint16(len(s.Attrs)))
		for _, a := range s.Attrs {
			b = appendStr(b, a.Name)
			b = append(b, byte(a.Type))
			b = binary.LittleEndian.AppendUint32(b, uint32(len(a.Data)))
			b = append(b, a.Data...)
		}
		b = binary.LittleEndian.AppendUint64(b, uint64(len(s.Data)))
		b = append(b, s.Data...)
	}
	return b
}

// DecodeIOSets parses the wire form produced by EncodeIOSets.
func DecodeIOSets(b []byte) ([]IOSet, error) {
	c := cursor{b: b}
	n := int(c.u32())
	sets := make([]IOSet, 0, n)
	for i := 0; i < n; i++ {
		var s IOSet
		s.Name = c.str()
		s.Type = hdf.DType(c.u8())
		nd := int(c.u8())
		s.Dims = make([]int64, nd)
		for j := range s.Dims {
			s.Dims[j] = int64(c.u64())
		}
		na := int(c.u16())
		s.Attrs = make([]hdf.Attr, na)
		for j := range s.Attrs {
			s.Attrs[j].Name = c.str()
			s.Attrs[j].Type = hdf.DType(c.u8())
			s.Attrs[j].Data = c.bytes(int(c.u32()))
		}
		s.Data = c.bytes(int(c.u64()))
		if c.err != nil {
			return nil, fmt.Errorf("roccom: corrupt IOSet stream at %d: %w", i, c.err)
		}
		sets = append(sets, s)
	}
	return sets, nil
}

func appendStr(b []byte, s string) []byte {
	b = binary.LittleEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...)
}

type cursor struct {
	b   []byte
	off int
	err error
}

func (c *cursor) need(n int) bool {
	if c.err != nil {
		return false
	}
	if c.off+n > len(c.b) {
		c.err = fmt.Errorf("truncated at %d (need %d of %d)", c.off, n, len(c.b))
		return false
	}
	return true
}

func (c *cursor) u8() uint8 {
	if !c.need(1) {
		return 0
	}
	v := c.b[c.off]
	c.off++
	return v
}

func (c *cursor) u16() uint16 {
	if !c.need(2) {
		return 0
	}
	v := binary.LittleEndian.Uint16(c.b[c.off:])
	c.off += 2
	return v
}

func (c *cursor) u32() uint32 {
	if !c.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(c.b[c.off:])
	c.off += 4
	return v
}

func (c *cursor) u64() uint64 {
	if !c.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(c.b[c.off:])
	c.off += 8
	return v
}

func (c *cursor) bytes(n int) []byte {
	if n < 0 || !c.need(n) {
		return nil
	}
	v := append([]byte(nil), c.b[c.off:c.off+n]...)
	c.off += n
	return v
}

func (c *cursor) str() string { return string(c.bytes(int(c.u16()))) }

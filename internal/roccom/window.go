// Package roccom implements the paper's component-integration framework:
// modules organize distributed data into windows partitioned into panes
// (one pane = one data block, owned by a single process), declare typed
// attributes on windows, register functions for dynamic dispatch, and load
// interchangeable service modules (Rocpanda or Rochdf) behind a uniform
// high-level parallel I/O interface of three collective operations:
// read_attribute, write_attribute, and sync.
package roccom

import (
	"fmt"
	"sort"

	"genxio/internal/hdf"
	"genxio/internal/mesh"
)

// Location says what mesh entity an attribute lives on, in Roccom's
// notation: 'n' node-centered, 'e' element-centered, 'p' pane-level.
type Location byte

// Attribute locations.
const (
	NodeLoc Location = 'n'
	ElemLoc Location = 'e'
	PaneLoc Location = 'p'
)

// AttrSpec declares a window attribute: its name, where it lives, its
// element type, and the number of components per entity (e.g. velocity is
// a node-centered float64 attribute with 3 components).
type AttrSpec struct {
	Name  string
	Loc   Location
	Type  hdf.DType
	NComp int
}

func (s AttrSpec) validate() error {
	if s.Name == "" {
		return fmt.Errorf("roccom: attribute with empty name")
	}
	switch s.Loc {
	case NodeLoc, ElemLoc, PaneLoc:
	default:
		return fmt.Errorf("roccom: attribute %q has invalid location %q", s.Name, s.Loc)
	}
	switch s.Type {
	case hdf.F64, hdf.F32, hdf.I32:
	default:
		return fmt.Errorf("roccom: attribute %q has unsupported type %v", s.Name, s.Type)
	}
	if s.NComp < 1 {
		return fmt.Errorf("roccom: attribute %q has %d components", s.Name, s.NComp)
	}
	return nil
}

// items returns the entity count for this location on block b.
func (s AttrSpec) items(b *mesh.Block) int {
	switch s.Loc {
	case NodeLoc:
		return b.NumNodes()
	case ElemLoc:
		return b.NumElems()
	default:
		return 1
	}
}

// Array is the storage of one attribute on one pane. Exactly one of the
// typed slices is non-nil, matching Spec.Type.
type Array struct {
	Spec AttrSpec
	F64  []float64
	F32  []float32
	I32  []int32
}

func newArray(spec AttrSpec, items int) *Array {
	a := &Array{Spec: spec}
	n := items * spec.NComp
	switch spec.Type {
	case hdf.F64:
		a.F64 = make([]float64, n)
	case hdf.F32:
		a.F32 = make([]float32, n)
	case hdf.I32:
		a.I32 = make([]int32, n)
	}
	return a
}

// Len returns the total number of elements (items × components).
func (a *Array) Len() int {
	switch a.Spec.Type {
	case hdf.F64:
		return len(a.F64)
	case hdf.F32:
		return len(a.F32)
	default:
		return len(a.I32)
	}
}

// Bytes encodes the array as little-endian bytes for file or wire.
func (a *Array) Bytes() []byte {
	switch a.Spec.Type {
	case hdf.F64:
		return hdf.F64Bytes(a.F64)
	case hdf.F32:
		return hdf.F32Bytes(a.F32)
	default:
		return hdf.I32Bytes(a.I32)
	}
}

// SetBytes decodes little-endian bytes into the array; the byte count must
// match the array's size.
func (a *Array) SetBytes(b []byte) error {
	want := a.Len() * a.Spec.Type.Size()
	if len(b) != want {
		return fmt.Errorf("roccom: attribute %q expects %d bytes, got %d", a.Spec.Name, want, len(b))
	}
	switch a.Spec.Type {
	case hdf.F64:
		copy(a.F64, hdf.BytesF64(b))
	case hdf.F32:
		copy(a.F32, hdf.BytesF32(b))
	default:
		copy(a.I32, hdf.BytesI32(b))
	}
	return nil
}

// Pane is one data block registered in a window: a mesh block plus the
// window's attributes sized for that block. A pane is owned by exactly one
// process; a process may own any number of panes.
type Pane struct {
	ID     int
	Block  *mesh.Block
	arrays map[string]*Array
	// dirty is the window dirty-sequence value at the pane's last
	// mutation. A freshly registered pane is dirty; delta snapshots
	// compare it against the epoch last shipped to decide whether the
	// pane must ride the next generation.
	dirty uint64
}

// Array returns the pane's storage for the named attribute.
func (p *Pane) Array(name string) (*Array, bool) {
	a, ok := p.arrays[name]
	return a, ok
}

// F64 returns the float64 data of the named attribute, or nil.
func (p *Pane) F64(name string) []float64 {
	if a, ok := p.arrays[name]; ok {
		return a.F64
	}
	return nil
}

// Window is a distributed object holding panes and attribute declarations.
// All panes of a window have the same collection of attributes, though the
// size of each attribute varies with the pane's mesh block.
type Window struct {
	Name  string
	specs []AttrSpec
	byNam map[string]int
	panes map[int]*Pane
	// dirtySeq is a monotonic per-window mutation counter. Each MarkDirty
	// (or MarkAllDirty) bump stamps the touched panes with a value greater
	// than any epoch shipped before it, so delta snapshots never miss a
	// mutation that races ahead of the next write.
	dirtySeq uint64
}

func newWindow(name string) *Window {
	return &Window{Name: name, byNam: make(map[string]int), panes: make(map[int]*Pane)}
}

// NewAttribute declares an attribute on the window and allocates storage
// for it on every already-registered pane.
func (w *Window) NewAttribute(spec AttrSpec) error {
	if err := spec.validate(); err != nil {
		return err
	}
	if _, dup := w.byNam[spec.Name]; dup {
		return fmt.Errorf("roccom: window %q already has attribute %q", w.Name, spec.Name)
	}
	w.byNam[spec.Name] = len(w.specs)
	w.specs = append(w.specs, spec)
	for _, p := range w.panes {
		p.arrays[spec.Name] = newArray(spec, spec.items(p.Block))
	}
	return nil
}

// Attributes returns the declared attribute specs in declaration order.
func (w *Window) Attributes() []AttrSpec {
	return append([]AttrSpec(nil), w.specs...)
}

// Attribute returns the spec of the named attribute.
func (w *Window) Attribute(name string) (AttrSpec, bool) {
	i, ok := w.byNam[name]
	if !ok {
		return AttrSpec{}, false
	}
	return w.specs[i], true
}

// RegisterPane registers a mesh block as a pane with a window-unique ID and
// allocates storage for every declared attribute. It returns the new pane.
func (w *Window) RegisterPane(id int, b *mesh.Block) (*Pane, error) {
	if b == nil {
		return nil, fmt.Errorf("roccom: nil block for pane %d", id)
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	if _, dup := w.panes[id]; dup {
		return nil, fmt.Errorf("roccom: window %q already has pane %d", w.Name, id)
	}
	w.dirtySeq++
	p := &Pane{ID: id, Block: b, arrays: make(map[string]*Array, len(w.specs)), dirty: w.dirtySeq}
	for _, spec := range w.specs {
		p.arrays[spec.Name] = newArray(spec, spec.items(b))
	}
	w.panes[id] = p
	return p, nil
}

// DeletePane removes a pane (e.g. when refinement replaces it).
func (w *Window) DeletePane(id int) error {
	if _, ok := w.panes[id]; !ok {
		return fmt.Errorf("roccom: window %q has no pane %d", w.Name, id)
	}
	delete(w.panes, id)
	return nil
}

// Pane returns the pane with the given ID.
func (w *Window) Pane(id int) (*Pane, bool) {
	p, ok := w.panes[id]
	return p, ok
}

// PaneIDs returns the IDs of all local panes in ascending order.
func (w *Window) PaneIDs() []int {
	ids := make([]int, 0, len(w.panes))
	for id := range w.panes {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// NumPanes returns the number of locally registered panes.
func (w *Window) NumPanes() int { return len(w.panes) }

// EachPane calls fn for every local pane in ascending ID order.
func (w *Window) EachPane(fn func(*Pane)) {
	for _, id := range w.PaneIDs() {
		fn(w.panes[id])
	}
}

// MarkDirty stamps one pane with a fresh mutation epoch. Solvers (via
// rocman) call it after writing attribute data so delta snapshots know
// the pane must ride the next generation. Unknown IDs are ignored.
func (w *Window) MarkDirty(id int) {
	p, ok := w.panes[id]
	if !ok {
		return
	}
	w.dirtySeq++
	p.dirty = w.dirtySeq
}

// MarkAllDirty stamps every local pane with one fresh mutation epoch —
// the collective form solvers use after a real-arithmetic step touches
// the whole window.
func (w *Window) MarkAllDirty() {
	w.dirtySeq++
	for _, p := range w.panes {
		p.dirty = w.dirtySeq
	}
}

// DirtyEpoch returns the pane's mutation epoch: the window dirty-sequence
// value at its last MarkDirty (or registration). Zero is never a valid
// epoch for a live pane, so it doubles as the "unknown pane" answer.
func (w *Window) DirtyEpoch(id int) uint64 {
	if p, ok := w.panes[id]; ok {
		return p.dirty
	}
	return 0
}

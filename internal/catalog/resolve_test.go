package catalog

import (
	"fmt"
	"testing"
)

// mkCat builds a catalog holding the given panes of "fluid" in one file.
func mkCat(panes ...int) *Catalog {
	c := &Catalog{Files: []string{"f.rhdf"}}
	for _, p := range panes {
		c.Entries = append(c.Entries, Entry{
			File:   0,
			Name:   fmt.Sprintf("/fluid/pane%06d/p", p),
			Window: "fluid",
			Pane:   p,
			Attr:   "p",
		})
	}
	return c
}

func TestResolvePanesNewestWins(t *testing.T) {
	// Chain order is newest first: head rewrote {1,3}, middle {2,3},
	// full base has everything.
	cats := []*Catalog{mkCat(1, 3), mkCat(2, 3), mkCat(1, 2, 3, 4)}
	wanted := map[int]bool{1: true, 2: true, 3: true, 4: true}
	assign := ResolvePanes(cats, "fluid", wanted)
	if len(assign) != 3 {
		t.Fatalf("got %d assignments for 3 catalogs", len(assign))
	}
	check := func(i int, want ...int) {
		t.Helper()
		if len(assign[i]) != len(want) {
			t.Fatalf("catalog %d assigned %v, want %v", i, assign[i], want)
		}
		for _, p := range want {
			if !assign[i][p] {
				t.Fatalf("catalog %d assigned %v, missing pane %d", i, assign[i], p)
			}
		}
	}
	check(0, 1, 3) // head wins for everything it holds
	check(1, 2)    // 3 already taken by the head
	check(2, 4)    // only the never-rewritten pane falls through to the base
}

func TestResolvePanesSkipsNilAndUnwanted(t *testing.T) {
	cats := []*Catalog{nil, mkCat(1, 2, 9)}
	assign := ResolvePanes(cats, "fluid", map[int]bool{1: true, 2: true, 5: true})
	if len(assign[0]) != 0 {
		t.Fatalf("nil catalog assigned %v", assign[0])
	}
	if !assign[1][1] || !assign[1][2] || len(assign[1]) != 2 {
		t.Fatalf("assignment %v, want panes 1 and 2 only", assign[1])
	}
	// Pane 5 exists nowhere: simply unassigned, the caller sees the gap.
	for _, a := range assign {
		if a[5] {
			t.Fatal("phantom pane 5 assigned")
		}
	}
	// Wrong window resolves nothing.
	assign = ResolvePanes(cats, "solid", map[int]bool{1: true})
	for _, a := range assign {
		if len(a) != 0 {
			t.Fatalf("wrong-window assignment %v", a)
		}
	}
}

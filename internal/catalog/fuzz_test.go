package catalog

import (
	"testing"

	"genxio/internal/hdf"
)

// FuzzCatalogDecode feeds arbitrary bytes to Decode: malformed blobs must
// come back as errors, never panics or hangs, and any blob that decodes
// must re-encode to something that decodes again (the catalog is the
// restart path's map — a crash here would turn recoverable corruption into
// an unrecoverable one).
func FuzzCatalogDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("RCAT"))
	f.Add([]byte("RCAT\x01\x00\x00\x00\x00\x00\x00\x00"))

	c := &Catalog{
		Files: []string{"snap_s000.rhdf"},
		Entries: []Entry{{
			File: 0, Name: "/fluid/pane000001/pressure",
			Window: "fluid", Pane: 1, Attr: "pressure",
			Type: hdf.F64, Dims: []int64{4, 1},
			Attrs:  []hdf.Attr{hdf.StrAttr("location", "node")},
			HasCRC: true, Offset: 24, Length: 32, CRC: 0xdeadbeef,
		}},
	}
	valid := c.Encode()
	f.Add(valid)
	// Seed a few near-valid mutants so the fuzzer starts past the checksum.
	for _, i := range []int{0, 5, 8, headerSize, len(valid) - 1} {
		m := append([]byte(nil), valid...)
		m[i] ^= 0x40
		f.Add(m)
	}

	f.Fuzz(func(t *testing.T, blob []byte) {
		c, err := Decode(blob)
		if err != nil {
			return
		}
		if _, err := Decode(c.Encode()); err != nil {
			t.Fatalf("decoded catalog failed to round-trip: %v", err)
		}
	})
}

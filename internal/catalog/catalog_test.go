package catalog

import (
	"reflect"
	"testing"

	"genxio/internal/hdf"
	"genxio/internal/rt"
)

// writeRHDF builds a small RHDF file and returns its decoded directory, the
// same inputs snapshot.Commit feeds AddFile.
func writeRHDF(t *testing.T, fsys rt.FS, name string, sets map[string][]byte) []*hdf.Dataset {
	t.Helper()
	clock := rt.NewWallClock()
	w, err := hdf.Create(fsys, name, clock, hdf.NullProfile())
	if err != nil {
		t.Fatal(err)
	}
	for dsName, data := range sets {
		attrs := []hdf.Attr{hdf.StrAttr("location", "node")}
		if err := w.CreateDataset(dsName, hdf.U8, []int64{int64(len(data))}, attrs, data); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	_, _, dir, err := hdf.ScanDir(fsys, name)
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

func buildCatalog(t *testing.T, fsys rt.FS) *Catalog {
	t.Helper()
	c := &Catalog{}
	c.AddFile("snap_s000.rhdf", writeRHDF(t, fsys, "snap_s000.rhdf", map[string][]byte{
		"/fluid/pane000001/pressure": []byte("aaaa"),
		"/fluid/pane000001/_coords":  []byte("bbbbbbbb"),
		"/fluid/pane000002/pressure": []byte("cccc"),
		"_meta":                      []byte("x"),
	}))
	c.AddFile("snap_s001.rhdf", writeRHDF(t, fsys, "snap_s001.rhdf", map[string][]byte{
		"/fluid/pane000003/pressure": []byte("dddd"),
		// pane 2 re-shipped after failover: dedup must prefer file 0.
		"/fluid/pane000002/pressure": []byte("cccc"),
	}))
	return c
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	fsys := rt.NewMemFS()
	c := buildCatalog(t, fsys)
	got, err := Decode(c.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c.Files, got.Files) {
		t.Fatalf("files: got %v want %v", got.Files, c.Files)
	}
	if len(got.Entries) != len(c.Entries) {
		t.Fatalf("entries: got %d want %d", len(got.Entries), len(c.Entries))
	}
	for i := range c.Entries {
		if !reflect.DeepEqual(c.Entries[i], got.Entries[i]) {
			t.Errorf("entry %d: got %+v want %+v", i, got.Entries[i], c.Entries[i])
		}
	}
}

func TestAddFileSkipsNonPaneDatasets(t *testing.T) {
	fsys := rt.NewMemFS()
	c := buildCatalog(t, fsys)
	for _, e := range c.Entries {
		if e.Name == "_meta" {
			t.Fatal("bookkeeping dataset _meta indexed")
		}
	}
	if len(c.Entries) != 5 {
		t.Fatalf("got %d entries, want 5", len(c.Entries))
	}
}

func TestPanes(t *testing.T) {
	fsys := rt.NewMemFS()
	c := buildCatalog(t, fsys)
	if got := c.Panes("fluid"); !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Fatalf("Panes(fluid) = %v", got)
	}
	if got := c.Panes("solid"); len(got) != 0 {
		t.Fatalf("Panes(solid) = %v", got)
	}
}

func TestPlanReadsDedupsAcrossFiles(t *testing.T) {
	fsys := rt.NewMemFS()
	c := buildCatalog(t, fsys)
	plans := c.PlanReads("fluid", map[int]bool{1: true, 2: true, 3: true})
	if len(plans) != 2 {
		t.Fatalf("got %d plans, want 2", len(plans))
	}
	if plans[0].File != "snap_s000.rhdf" || plans[1].File != "snap_s001.rhdf" {
		t.Fatalf("plan files: %s, %s", plans[0].File, plans[1].File)
	}
	// Pane 2 appears in both files; only file 0's copy is planned.
	for _, e := range plans[1].Entries {
		if e.Pane == 2 {
			t.Fatal("pane 2 planned from file 1 despite copy in file 0")
		}
	}
	if len(plans[0].Entries) != 3 || len(plans[1].Entries) != 1 {
		t.Fatalf("entry counts: %d, %d", len(plans[0].Entries), len(plans[1].Entries))
	}
	for _, p := range plans {
		for i := 1; i < len(p.Entries); i++ {
			if p.Entries[i].Offset < p.Entries[i-1].Offset {
				t.Fatalf("%s entries not offset-sorted", p.File)
			}
		}
	}
	// Only the file holding pane 3 is planned when that is all we want.
	plans = c.PlanReads("fluid", map[int]bool{3: true})
	if len(plans) != 1 || plans[0].File != "snap_s001.rhdf" {
		t.Fatalf("single-pane plan: %+v", plans)
	}
}

func TestReplicaRank(t *testing.T) {
	cases := map[string]int{
		"run/snap000010_s000.rhdf":    0,
		"run/snap000010_s000r1.rhdf":  1,
		"run/snap000010_s001r2.rhdf":  2,
		"run/snap000010_s012r10.rhdf": 10,
		"run/snap000010_p00003.rhdf":  0, // per-rank files have no replicas
		"run/snap000010_s000r.rhdf":   0, // malformed: empty replica digits
		"run/snap000010_sr1.rhdf":     0, // malformed: empty server digits
		"run/snap000010_s0x0r1.rhdf":  0, // malformed: non-digit server part
		"run/snap000010.manifest":     0,
		"plain.txt":                   0,
	}
	for name, want := range cases {
		if got := ReplicaRank(name); got != want {
			t.Errorf("ReplicaRank(%q) = %d, want %d", name, got, want)
		}
	}
}

// replicatedCatalog indexes a primary pair plus a byte-identical replica
// of server 1's file homed at server 0. The replica sorts lexically before
// the primary it copies — exactly the commit-time file order — so these
// tests prove the planner prefers by replica rank, not by file index.
func replicatedCatalog(t *testing.T, fsys rt.FS) *Catalog {
	t.Helper()
	c := &Catalog{}
	s1 := map[string][]byte{
		"/fluid/pane000003/pressure": []byte("dddd"),
		"/fluid/pane000004/pressure": []byte("eeee"),
	}
	c.AddFile("snap_s000.rhdf", writeRHDF(t, fsys, "snap_s000.rhdf", map[string][]byte{
		"/fluid/pane000001/pressure": []byte("aaaa"),
	}))
	c.AddFile("snap_s000r1.rhdf", writeRHDF(t, fsys, "snap_s000r1.rhdf", s1))
	c.AddFile("snap_s001.rhdf", writeRHDF(t, fsys, "snap_s001.rhdf", s1))
	return c
}

func TestPlanReadsPrefersPrimaryOverReplica(t *testing.T) {
	fsys := rt.NewMemFS()
	c := replicatedCatalog(t, fsys)
	plans := c.PlanReads("fluid", map[int]bool{1: true, 3: true, 4: true})
	if len(plans) != 2 {
		t.Fatalf("got %d plans, want 2: %+v", len(plans), plans)
	}
	if plans[0].File != "snap_s000.rhdf" || plans[1].File != "snap_s001.rhdf" {
		t.Fatalf("planned files %s, %s — a healthy plan must never read a replica",
			plans[0].File, plans[1].File)
	}
	if len(plans[1].Entries) != 2 {
		t.Fatalf("primary snap_s001 planned %d entries, want 2", len(plans[1].Entries))
	}
}

func TestPaneSourcesOrdersPrimariesFirst(t *testing.T) {
	fsys := rt.NewMemFS()
	c := replicatedCatalog(t, fsys)
	srcs := c.PaneSources("fluid", 3)
	if len(srcs) != 2 {
		t.Fatalf("got %d sources, want 2: %+v", len(srcs), srcs)
	}
	if srcs[0].File != "snap_s001.rhdf" || srcs[1].File != "snap_s000r1.rhdf" {
		t.Fatalf("source order %s, %s — want primary first", srcs[0].File, srcs[1].File)
	}
	for _, src := range srcs {
		for _, e := range src.Entries {
			if e.Pane != 3 {
				t.Fatalf("source %s carries pane %d entry", src.File, e.Pane)
			}
		}
	}
	if srcs := c.PaneSources("fluid", 99); len(srcs) != 0 {
		t.Fatalf("unknown pane has %d sources", len(srcs))
	}
}

func TestCoalesce(t *testing.T) {
	ents := []Entry{
		{Offset: 0, Length: 10},
		{Offset: 10, Length: 5}, // adjacent: merges
		{Offset: 20, Length: 5}, // gap 5
		{Offset: 40, Length: 5},
	}
	if got := Coalesce(ents, 0); !reflect.DeepEqual(got, []Run{{0, 15}, {20, 5}, {40, 5}}) {
		t.Fatalf("maxGap 0: %v", got)
	}
	if got := Coalesce(ents, 5); !reflect.DeepEqual(got, []Run{{0, 25}, {40, 5}}) {
		t.Fatalf("maxGap 5: %v", got)
	}
	if got := Coalesce(nil, 0); got != nil {
		t.Fatalf("empty: %v", got)
	}
}

func TestRepartitionDeterministic(t *testing.T) {
	got := Repartition([]int{42, 7, 100, 3, 9, 55}, 4)
	want := [][]int{{3, 55}, {7, 100}, {9}, {42}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Repartition = %v, want %v", got, want)
	}
	// Duplicates collapse; more ranks than panes leaves tail ranks empty.
	got = Repartition([]int{5, 5, 1}, 4)
	if !reflect.DeepEqual(got[0], []int{1}) || !reflect.DeepEqual(got[1], []int{5}) ||
		got[2] != nil || got[3] != nil {
		t.Fatalf("Repartition dup = %v", got)
	}
	if Repartition([]int{1}, 0) != nil {
		t.Fatal("n=0 should return nil")
	}
}

func TestRepartitionMoreRanksThanPanes(t *testing.T) {
	// A restart with more servers than the writing run had panes: each of
	// the first len(panes) ranks gets exactly one pane, the rest get none
	// and must still participate in the collective without reading.
	got := Repartition([]int{30, 10, 20}, 8)
	if len(got) != 8 {
		t.Fatalf("got %d shares, want 8", len(got))
	}
	want := [][]int{{10}, {20}, {30}}
	for i, w := range want {
		if !reflect.DeepEqual(got[i], w) {
			t.Fatalf("share %d = %v, want %v", i, got[i], w)
		}
	}
	for i := 3; i < 8; i++ {
		if got[i] != nil {
			t.Fatalf("share %d = %v, want empty", i, got[i])
		}
	}
}

func TestRepartitionZeroPanes(t *testing.T) {
	// An empty universe (nothing committed in the window) still yields one
	// well-formed empty share per rank, for both nil and empty inputs.
	for _, ids := range [][]int{nil, {}} {
		got := Repartition(ids, 3)
		if len(got) != 3 {
			t.Fatalf("Repartition(%v, 3) has %d shares", ids, len(got))
		}
		for i, share := range got {
			if len(share) != 0 {
				t.Fatalf("share %d = %v, want empty", i, share)
			}
		}
	}
}

func TestWriteLoadRoundTrip(t *testing.T) {
	fsys := rt.NewMemFS()
	c := buildCatalog(t, fsys)
	size, crc, err := Write(fsys, "snap", c)
	if err != nil {
		t.Fatal(err)
	}
	blob := c.Encode()
	if size != int64(len(blob)) || crc != hdf.Checksum(blob) {
		t.Fatalf("Write returned size %d crc %08x, want %d %08x", size, crc, len(blob), hdf.Checksum(blob))
	}
	if _, err := fsys.Open("snap" + Suffix + hdf.TmpSuffix); err == nil {
		t.Fatal("staging file left behind")
	}
	got, err := Load(fsys, "snap")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Files, c.Files) || len(got.Entries) != len(c.Entries) {
		t.Fatalf("Load mismatch: %+v", got)
	}
}

func TestLoadRejectsCorruptBlob(t *testing.T) {
	fsys := rt.NewMemFS()
	c := buildCatalog(t, fsys)
	if _, _, err := Write(fsys, "snap", c); err != nil {
		t.Fatal(err)
	}
	f, err := fsys.Open("snap" + Suffix)
	if err != nil {
		t.Fatal(err)
	}
	size, _ := f.Size()
	blob := make([]byte, size)
	f.ReadAt(blob, 0)
	f.Close()

	flipped := append([]byte(nil), blob...)
	flipped[headerSize+3] ^= 0x10
	g, _ := fsys.Create("snap" + Suffix)
	g.WriteAt(flipped, 0)
	g.Close()
	if _, err := Load(fsys, "snap"); err == nil {
		t.Fatal("bit-flipped catalog loaded without error")
	}

	for _, blob := range [][]byte{
		nil,
		[]byte("RC"),
		[]byte("XCAT\x01\x00\x00\x00\x00\x00\x00\x00"),
		[]byte("RCAT\x09\x00\x00\x00\x00\x00\x00\x00"),
	} {
		if _, err := Decode(blob); err == nil {
			t.Fatalf("Decode(%q) succeeded", blob)
		}
	}
}

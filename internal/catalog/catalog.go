// Package catalog implements the per-generation block catalog: a compact
// index mapping every (window, pane, dataset) in a committed snapshot
// generation to its exact byte extent — file, offset, stored length, and
// CRC32C. The committing rank builds it at snapshot commit by merging the
// directories of the generation's RHDF files (the writer's directory IS the
// per-file index, so no extra wire traffic is needed) and writes it as a
// single blob next to the manifest, before the manifest — the manifest is
// the commit record, so a generation either has its catalog or is not yet
// committed.
//
// At restart, servers consult the catalog to open only the files that
// contain requested panes and issue direct offset reads, verified per entry
// against the recorded CRC; this replaces the O(total snapshot bytes) scan
// in the common case. Generations without a catalog, or with one that fails
// its checksum, fall back to the scan path. The catalog also carries the
// generation's pane universe, which the deterministic repartitioner divides
// among restart ranks — allowing a restart topology (client and server
// counts) different from the writing run, per the paper's framing of
// restart as decoupled from the writing decomposition.
package catalog

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"

	"genxio/internal/hdf"
	"genxio/internal/roccom"
	"genxio/internal/rt"
)

// Magic identifies a catalog blob.
const Magic = "RCAT"

// Version is the current catalog format version.
const Version = 1

// Suffix is appended to a generation base name to form its catalog file,
// e.g. "run/snap000100" + Suffix.
const Suffix = ".catalog"

// headerSize is magic(4) + version(4) + bodyCRC(4).
const headerSize = 12

// Entry is one dataset's coordinates: enough to locate, read, verify, and
// reconstruct it without opening the file's directory.
type Entry struct {
	File int    // index into Catalog.Files
	Name string // full dataset path, /<window>/pane<ID>/<attr>

	// Parsed from Name for query convenience; not stored separately.
	Window string
	Pane   int
	Attr   string

	Type       hdf.DType
	Dims       []int64
	Attrs      []hdf.Attr
	Compressed bool
	HasCRC     bool
	Offset     int64 // file offset of the stored bytes
	Length     int64 // stored length (compressed size if deflated)
	CRC        uint32
}

// Catalog is a generation's merged block index.
type Catalog struct {
	Files   []string // file names relative to the snapshot root
	Entries []Entry
}

// AddFile merges one file's dataset descriptors into the catalog and
// returns the file's index. Datasets whose names do not follow the pane
// path grammar (e.g. server-side "_meta" markers) are skipped — the catalog
// indexes restartable blocks, not bookkeeping.
func (c *Catalog) AddFile(name string, sets []*hdf.Dataset) int {
	idx := len(c.Files)
	c.Files = append(c.Files, name)
	for _, d := range sets {
		window, pane, attr, ok := roccom.ParseDatasetName(d.Name)
		if !ok {
			continue
		}
		off, length := d.Extent()
		crc, hasCRC := d.CRC()
		c.Entries = append(c.Entries, Entry{
			File:       idx,
			Name:       d.Name,
			Window:     window,
			Pane:       pane,
			Attr:       attr,
			Type:       d.Type,
			Dims:       d.Dims,
			Attrs:      d.Attrs,
			Compressed: d.Compressed(),
			HasCRC:     hasCRC,
			Offset:     off,
			Length:     length,
			CRC:        crc,
		})
	}
	return idx
}

// entry flag bits (wire form).
const (
	entCompressed = 1 << 0
	entHasCRC     = 1 << 1
)

// Encode serializes the catalog:
//
//	"RCAT" | u32 version | u32 crc32c(body) | body
//	body:  u32 nfiles | files... | u32 nentries | entries...
//	file:  u16 len | bytes
//	entry: u32 fileIdx | str name | u8 type | u8 flags | u8 ndims |
//	       u64 dims... | u64 offset | u64 length | u32 crc |
//	       u16 nattrs | { str name | u8 type | u32 len | bytes }...
func (c *Catalog) Encode() []byte {
	var body []byte
	body = binary.LittleEndian.AppendUint32(body, uint32(len(c.Files)))
	for _, f := range c.Files {
		body = appendStr(body, f)
	}
	body = binary.LittleEndian.AppendUint32(body, uint32(len(c.Entries)))
	for _, e := range c.Entries {
		body = binary.LittleEndian.AppendUint32(body, uint32(e.File))
		body = appendStr(body, e.Name)
		body = append(body, byte(e.Type))
		var flags byte
		if e.Compressed {
			flags |= entCompressed
		}
		if e.HasCRC {
			flags |= entHasCRC
		}
		body = append(body, flags, byte(len(e.Dims)))
		for _, d := range e.Dims {
			body = binary.LittleEndian.AppendUint64(body, uint64(d))
		}
		body = binary.LittleEndian.AppendUint64(body, uint64(e.Offset))
		body = binary.LittleEndian.AppendUint64(body, uint64(e.Length))
		body = binary.LittleEndian.AppendUint32(body, e.CRC)
		body = binary.LittleEndian.AppendUint16(body, uint16(len(e.Attrs)))
		for _, a := range e.Attrs {
			body = appendStr(body, a.Name)
			body = append(body, byte(a.Type))
			body = binary.LittleEndian.AppendUint32(body, uint32(len(a.Data)))
			body = append(body, a.Data...)
		}
	}

	blob := make([]byte, 0, headerSize+len(body))
	blob = append(blob, Magic...)
	blob = binary.LittleEndian.AppendUint32(blob, Version)
	blob = binary.LittleEndian.AppendUint32(blob, hdf.Checksum(body))
	return append(blob, body...)
}

// Decode parses a catalog blob, verifying magic, version, and the body
// checksum. All malformed-input paths are errors, never panics.
func Decode(blob []byte) (*Catalog, error) {
	if len(blob) < headerSize {
		return nil, fmt.Errorf("catalog: blob too short (%d bytes)", len(blob))
	}
	if string(blob[:4]) != Magic {
		return nil, fmt.Errorf("catalog: bad magic")
	}
	if v := binary.LittleEndian.Uint32(blob[4:]); v != Version {
		return nil, fmt.Errorf("catalog: version %d, want %d", v, Version)
	}
	body := blob[headerSize:]
	if want, got := binary.LittleEndian.Uint32(blob[8:]), hdf.Checksum(body); got != want {
		return nil, fmt.Errorf("%w: catalog body crc32c %08x, computed %08x", hdf.ErrChecksum, want, got)
	}
	p := &parser{b: body}
	c := &Catalog{}
	nf := int(p.u32())
	// Each file record is at least 2 bytes; cap the allocation by what the
	// body could possibly hold before trusting the count.
	if nf < 0 || nf > len(body)/2 {
		return nil, fmt.Errorf("catalog: %d files cannot fit in %d bytes", nf, len(body))
	}
	c.Files = make([]string, 0, nf)
	for i := 0; i < nf; i++ {
		c.Files = append(c.Files, p.str())
	}
	ne := int(p.u32())
	// The smallest possible entry (empty name, no dims, no attrs) is
	// 4+2+1+1+1+8+8+4+2 = 31 bytes.
	if ne < 0 || ne > len(body)/31 {
		return nil, fmt.Errorf("catalog: %d entries cannot fit in %d bytes", ne, len(body))
	}
	c.Entries = make([]Entry, 0, ne)
	for i := 0; i < ne; i++ {
		var e Entry
		e.File = int(p.u32())
		e.Name = p.str()
		e.Type = hdf.DType(p.u8())
		flags := p.u8()
		e.Compressed = flags&entCompressed != 0
		e.HasCRC = flags&entHasCRC != 0
		nd := int(p.u8())
		e.Dims = make([]int64, nd)
		for j := range e.Dims {
			e.Dims[j] = int64(p.u64())
		}
		e.Offset = int64(p.u64())
		e.Length = int64(p.u64())
		e.CRC = p.u32()
		na := int(p.u16())
		if na > len(body)/7 { // min attr record: 2+1+4 bytes
			return nil, fmt.Errorf("catalog: entry %d claims %d attrs in %d bytes", i, na, len(body))
		}
		e.Attrs = make([]hdf.Attr, na)
		for j := range e.Attrs {
			e.Attrs[j].Name = p.str()
			e.Attrs[j].Type = hdf.DType(p.u8())
			e.Attrs[j].Data = p.bytes(int(p.u32()))
		}
		if p.err != nil {
			return nil, fmt.Errorf("catalog: corrupt at entry %d: %w", i, p.err)
		}
		if e.File < 0 || e.File >= len(c.Files) {
			return nil, fmt.Errorf("catalog: entry %d references file %d of %d", i, e.File, len(c.Files))
		}
		if e.Offset < 0 || e.Length < 0 || e.Offset+e.Length < e.Offset {
			return nil, fmt.Errorf("catalog: entry %d has bad extent [%d,+%d)", i, e.Offset, e.Length)
		}
		window, pane, attr, ok := roccom.ParseDatasetName(e.Name)
		if !ok {
			return nil, fmt.Errorf("catalog: entry %d has unparseable dataset name %q", i, e.Name)
		}
		e.Window, e.Pane, e.Attr = window, pane, attr
		c.Entries = append(c.Entries, e)
	}
	if p.off != len(body) {
		return nil, fmt.Errorf("catalog: %d trailing bytes after %d entries", len(body)-p.off, ne)
	}
	return c, nil
}

// Write stages the catalog at base+Suffix+tmp and renames it into place,
// returning the blob's size and whole-blob CRC32C for the manifest's
// catalog reference. It must be called before the manifest commit so the
// generation's commit record never points at a missing catalog.
func Write(fsys rt.FS, base string, c *Catalog) (size int64, crc uint32, err error) {
	blob := c.Encode()
	name := base + Suffix
	tmp := name + hdf.TmpSuffix
	f, err := fsys.Create(tmp)
	if err != nil {
		return 0, 0, err
	}
	if _, err := f.WriteAt(blob, 0); err != nil {
		f.Close()
		return 0, 0, fmt.Errorf("catalog: writing %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		return 0, 0, err
	}
	if err := fsys.Rename(tmp, name); err != nil {
		return 0, 0, err
	}
	return int64(len(blob)), hdf.Checksum(blob), nil
}

// Load reads and decodes a generation's catalog. Any failure — missing
// file, bad magic, checksum mismatch, malformed body — is an error the
// caller treats as "no usable catalog": restart falls back to the scan
// path rather than abandoning the generation.
func Load(fsys rt.FS, base string) (*Catalog, error) {
	f, err := fsys.Open(base + Suffix)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		return nil, err
	}
	blob := make([]byte, size)
	if _, err := f.ReadAt(blob, 0); err != nil {
		return nil, fmt.Errorf("catalog: reading %s: %w", f.Name(), err)
	}
	return Decode(blob)
}

// ReplicaRank reports which copy of a server's output a snapshot file
// holds: 0 for a primary ("base_s000.rhdf"), r ≥ 1 for the r-th replica
// ("base_s000r1.rhdf" — server 0's file set carrying a replica written by
// another server). Per-rank files ("base_p00000.rhdf") and anything that
// does not follow the server-file grammar have no replicas and rank 0.
func ReplicaRank(name string) int {
	n, ok := strings.CutSuffix(name, ".rhdf")
	if !ok {
		return 0
	}
	i := strings.LastIndexByte(n, '_')
	if i < 0 || i+2 >= len(n) || n[i+1] != 's' {
		return 0
	}
	tail := n[i+2:]
	j := strings.IndexByte(tail, 'r')
	if j <= 0 || j == len(tail)-1 {
		return 0
	}
	for _, c := range tail[:j] {
		if c < '0' || c > '9' {
			return 0
		}
	}
	r := 0
	for _, c := range tail[j+1:] {
		if c < '0' || c > '9' {
			return 0
		}
		r = r*10 + int(c-'0')
	}
	return r
}

// Panes returns the sorted set of pane IDs present in a window — the
// generation's pane universe, the input to the repartitioner.
func (c *Catalog) Panes(window string) []int {
	seen := make(map[int]bool)
	for i := range c.Entries {
		if c.Entries[i].Window == window {
			seen[c.Entries[i].Pane] = true
		}
	}
	ids := make([]int, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// FilePlan is the read plan for one file: which entries to fetch, sorted by
// offset so adjacent extents coalesce into single reads.
type FilePlan struct {
	File    string
	Entries []Entry
}

// PlanReads builds per-file read plans covering the wanted panes of a
// window. When a pane appears in more than one file (failover re-ships
// blocks to an adopting server, or replication writes extra copies), only
// one copy is planned: a primary over any replica, and among files of the
// same replica rank the earliest-indexed one, mirroring the scan path's
// first-arrival dedup. Plans come back in file-index order with entries
// sorted by offset.
func (c *Catalog) PlanReads(window string, wanted map[int]bool) []FilePlan {
	fileOf := make(map[int]int) // pane → preferred file index holding it
	for i := range c.Entries {
		e := &c.Entries[i]
		if e.Window != window || !wanted[e.Pane] {
			continue
		}
		if cur, ok := fileOf[e.Pane]; !ok || c.betterSource(e.File, cur) {
			fileOf[e.Pane] = e.File
		}
	}
	byFile := make(map[int][]Entry)
	for i := range c.Entries {
		e := &c.Entries[i]
		if e.Window != window || fileOf[e.Pane] != e.File || !wanted[e.Pane] {
			continue
		}
		byFile[e.File] = append(byFile[e.File], *e)
	}
	idxs := make([]int, 0, len(byFile))
	for idx := range byFile {
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	plans := make([]FilePlan, 0, len(idxs))
	for _, idx := range idxs {
		ents := byFile[idx]
		sort.Slice(ents, func(a, b int) bool { return ents[a].Offset < ents[b].Offset })
		plans = append(plans, FilePlan{File: c.Files[idx], Entries: ents})
	}
	return plans
}

// betterSource reports whether file index a is a strictly better source
// than b: lower replica rank wins (primaries before replicas), then lower
// file index for determinism.
func (c *Catalog) betterSource(a, b int) bool {
	ra, rb := ReplicaRank(c.Files[a]), ReplicaRank(c.Files[b])
	if ra != rb {
		return ra < rb
	}
	return a < b
}

// PaneSources returns every file holding a copy of a pane's datasets, as
// single-file plans ordered best-first: primaries before replicas, lower
// file index first within a rank, entries offset-sorted. The restart read
// path walks this list when a planned copy fails its open/read/CRC —
// deterministic retry order, so every server agrees on which copy repairs
// a pane.
func (c *Catalog) PaneSources(window string, pane int) []FilePlan {
	byFile := make(map[int][]Entry)
	for i := range c.Entries {
		e := &c.Entries[i]
		if e.Window != window || e.Pane != pane {
			continue
		}
		byFile[e.File] = append(byFile[e.File], *e)
	}
	idxs := make([]int, 0, len(byFile))
	for idx := range byFile {
		idxs = append(idxs, idx)
	}
	sort.Slice(idxs, func(a, b int) bool { return c.betterSource(idxs[a], idxs[b]) })
	plans := make([]FilePlan, 0, len(idxs))
	for _, idx := range idxs {
		ents := byFile[idx]
		sort.Slice(ents, func(a, b int) bool { return ents[a].Offset < ents[b].Offset })
		plans = append(plans, FilePlan{File: c.Files[idx], Entries: ents})
	}
	return plans
}

// ResolvePanes walks a delta chain's catalogs newest first (cats[0] is
// the head generation, the last element its full base) and assigns each
// wanted pane of a window to exactly one generation: the newest one
// whose catalog contains it — that generation rewrote the pane last, so
// every older copy is stale. The result is parallel to cats; feed each
// per-generation set to that catalog's PlanReads (and, on a failed read,
// PaneSources) so chain resolution composes with the replica-preferring
// dedup and retry order unchanged. Panes found in no catalog are absent
// from every set — the caller's incomplete-restart accounting applies.
func ResolvePanes(cats []*Catalog, window string, wanted map[int]bool) []map[int]bool {
	assign := make([]map[int]bool, len(cats))
	resolved := make(map[int]bool, len(wanted))
	for i, c := range cats {
		assign[i] = make(map[int]bool)
		if c == nil {
			continue
		}
		for j := range c.Entries {
			e := &c.Entries[j]
			if e.Window != window || !wanted[e.Pane] || resolved[e.Pane] {
				continue
			}
			assign[i][e.Pane] = true
		}
		for id := range assign[i] {
			resolved[id] = true
		}
	}
	return assign
}

// Run is one contiguous byte range to read from a file.
type Run struct {
	Offset, Length int64
}

// Coalesce merges offset-sorted entries into contiguous read runs,
// combining extents whose gap is at most maxGap bytes — the request-merging
// optimization from the MPI-IO noncontiguous-access literature, made
// possible by having an index at all.
func Coalesce(entries []Entry, maxGap int64) []Run {
	var runs []Run
	for _, e := range entries {
		end := e.Offset + e.Length
		if n := len(runs); n > 0 && e.Offset <= runs[n-1].Offset+runs[n-1].Length+maxGap {
			if end > runs[n-1].Offset+runs[n-1].Length {
				runs[n-1].Length = end - runs[n-1].Offset
			}
			continue
		}
		runs = append(runs, Run{Offset: e.Offset, Length: e.Length})
	}
	return runs
}

// Repartition deterministically assigns a pane universe to n ranks:
// pane IDs are sorted ascending, deduplicated, and dealt round-robin, so
// sorted[i] goes to rank i%n. Every rank computes the same assignment from
// the same universe with no communication, and the universe comes from the
// catalog — the mechanism that decouples restart topology from the writing
// run's decomposition.
func Repartition(ids []int, n int) [][]int {
	if n <= 0 {
		return nil
	}
	sorted := append([]int(nil), ids...)
	sort.Ints(sorted)
	out := make([][]int, n)
	prev := 0
	k := 0
	for _, id := range sorted {
		if k > 0 && id == prev {
			continue
		}
		out[k%n] = append(out[k%n], id)
		prev = id
		k++
	}
	return out
}

func appendStr(b []byte, s string) []byte {
	b = binary.LittleEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...)
}

// parser is a bounds-checked little-endian cursor over the catalog body.
type parser struct {
	b   []byte
	off int
	err error
}

func (p *parser) need(n int) bool {
	if p.err != nil {
		return false
	}
	if n < 0 || p.off+n > len(p.b) {
		p.err = fmt.Errorf("truncated at offset %d (need %d of %d)", p.off, n, len(p.b))
		return false
	}
	return true
}

func (p *parser) u8() uint8 {
	if !p.need(1) {
		return 0
	}
	v := p.b[p.off]
	p.off++
	return v
}

func (p *parser) u16() uint16 {
	if !p.need(2) {
		return 0
	}
	v := binary.LittleEndian.Uint16(p.b[p.off:])
	p.off += 2
	return v
}

func (p *parser) u32() uint32 {
	if !p.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(p.b[p.off:])
	p.off += 4
	return v
}

func (p *parser) u64() uint64 {
	if !p.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(p.b[p.off:])
	p.off += 8
	return v
}

func (p *parser) bytes(n int) []byte {
	if !p.need(n) {
		return nil
	}
	v := append([]byte(nil), p.b[p.off:p.off+n]...)
	p.off += n
	return v
}

func (p *parser) str() string { return string(p.bytes(int(p.u16()))) }

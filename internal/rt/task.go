package rt

// TaskCtx is the execution context handed to a background activity (the
// paper's per-process I/O thread in T-Rochdf): its own clock identity and
// filesystem view, so simulated backends can charge time to the right
// entity.
type TaskCtx interface {
	Clock() Clock
	FS() FS
}

// Queue is a bounded FIFO connecting a rank and its background activities,
// with Go-channel semantics: Put blocks while full and panics if the queue
// is closed; Get blocks while empty and reports closure with ok=false once
// drained. TryGet never blocks: it returns the head item if one is ready
// and (nil, false) when the queue is empty or closed-and-drained — the
// completion-signal primitive the iosched budget gate reaps with between
// blocking waits. The Clock argument identifies the calling activity,
// which simulated backends need in order to block the right process.
type Queue interface {
	Put(c Clock, v interface{})
	Get(c Clock) (interface{}, bool)
	TryGet(c Clock) (interface{}, bool)
	Close()
}

// GoQueue is the real-backend Queue: a thin wrapper over a buffered
// channel. The Clock arguments are ignored (goroutines block natively).
type GoQueue struct {
	ch chan interface{}
}

// NewGoQueue returns a queue with the given capacity (>= 1).
func NewGoQueue(capacity int) *GoQueue {
	if capacity < 1 {
		capacity = 1
	}
	return &GoQueue{ch: make(chan interface{}, capacity)}
}

// Put implements Queue.
func (q *GoQueue) Put(_ Clock, v interface{}) { q.ch <- v }

// Get implements Queue.
func (q *GoQueue) Get(_ Clock) (interface{}, bool) {
	v, ok := <-q.ch
	return v, ok
}

// TryGet implements Queue.
func (q *GoQueue) TryGet(_ Clock) (interface{}, bool) {
	select {
	case v, ok := <-q.ch:
		return v, ok
	default:
		return nil, false
	}
}

// Close implements Queue.
func (q *GoQueue) Close() { close(q.ch) }

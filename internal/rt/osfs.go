package rt

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// OSFS is an FS rooted at a directory on the host filesystem. File names
// are slash-separated paths relative to the root; parent directories are
// created on demand.
type OSFS struct {
	root string
}

// NewOSFS returns an FS rooted at dir, creating it if necessary.
func NewOSFS(dir string) (*OSFS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &OSFS{root: dir}, nil
}

func (o *OSFS) path(name string) string {
	return filepath.Join(o.root, filepath.FromSlash(name))
}

// Create implements FS.
func (o *OSFS) Create(name string) (File, error) {
	p := o.path(name)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(p, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	return &osFile{name: name, f: f}, nil
}

// Open implements FS.
func (o *OSFS) Open(name string) (File, error) {
	f, err := os.OpenFile(o.path(name), os.O_RDWR, 0)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("%w: %s", ErrNotExist, name)
		}
		return nil, err
	}
	return &osFile{name: name, f: f}, nil
}

// Remove implements FS.
func (o *OSFS) Remove(name string) error {
	err := os.Remove(o.path(name))
	if errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	return err
}

// Rename implements FS.
func (o *OSFS) Rename(oldname, newname string) error {
	dst := o.path(newname)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return err
	}
	err := os.Rename(o.path(oldname), dst)
	if errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("%w: %s", ErrNotExist, oldname)
	}
	return err
}

// List implements FS.
func (o *OSFS) List(prefix string) ([]string, error) {
	var names []string
	err := filepath.WalkDir(o.root, func(p string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		rel, err := filepath.Rel(o.root, p)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		if strings.HasPrefix(rel, prefix) {
			names = append(names, rel)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	return names, nil
}

// Stat implements FS.
func (o *OSFS) Stat(name string) (int64, error) {
	info, err := os.Stat(o.path(name))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return 0, fmt.Errorf("%w: %s", ErrNotExist, name)
		}
		return 0, err
	}
	return info.Size(), nil
}

type osFile struct {
	name string
	f    *os.File
}

func (f *osFile) Name() string                            { return f.name }
func (f *osFile) ReadAt(p []byte, off int64) (int, error) { return f.f.ReadAt(p, off) }
func (f *osFile) WriteAt(p []byte, off int64) (int, error) {
	return f.f.WriteAt(p, off)
}
func (f *osFile) Truncate(size int64) error { return f.f.Truncate(size) }
func (f *osFile) Close() error              { return f.f.Close() }
func (f *osFile) Size() (int64, error) {
	info, err := f.f.Stat()
	if err != nil {
		return 0, err
	}
	return info.Size(), nil
}

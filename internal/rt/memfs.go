package rt

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// MemFS is an in-memory filesystem, safe for concurrent use by multiple
// goroutine ranks. It is the real backend for tests and also the byte store
// underneath the simulated filesystems in internal/fssim.
type MemFS struct {
	mu    sync.Mutex
	files map[string]*memNode
}

type memNode struct {
	mu   sync.Mutex
	data []byte
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{files: make(map[string]*memNode)}
}

// Create implements FS.
func (m *MemFS) Create(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := &memNode{}
	m.files[name] = n
	return &memFile{name: name, node: n}, nil
}

// Open implements FS.
func (m *MemFS) Open(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	n, ok := m.files[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	return &memFile{name: name, node: n}, nil
}

// Remove implements FS.
func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		return fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	delete(m.files, name)
	return nil
}

// Rename implements FS.
func (m *MemFS) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	n, ok := m.files[oldname]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotExist, oldname)
	}
	m.files[newname] = n
	delete(m.files, oldname)
	return nil
}

// List implements FS.
func (m *MemFS) List(prefix string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var names []string
	for name := range m.files {
		if strings.HasPrefix(name, prefix) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names, nil
}

// Stat implements FS.
func (m *MemFS) Stat(name string) (int64, error) {
	m.mu.Lock()
	n, ok := m.files[name]
	m.mu.Unlock()
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return int64(len(n.data)), nil
}

type memFile struct {
	name string
	node *memNode
}

func (f *memFile) Name() string { return f.name }

func (f *memFile) ReadAt(p []byte, off int64) (int, error) {
	f.node.mu.Lock()
	defer f.node.mu.Unlock()
	if off < 0 {
		return 0, fmt.Errorf("memfs: negative offset %d", off)
	}
	if off >= int64(len(f.node.data)) {
		return 0, fmt.Errorf("memfs: read at %d past EOF (%d)", off, len(f.node.data))
	}
	n := copy(p, f.node.data[off:])
	if n < len(p) {
		return n, fmt.Errorf("memfs: short read: %d < %d", n, len(p))
	}
	return n, nil
}

func (f *memFile) WriteAt(p []byte, off int64) (int, error) {
	f.node.mu.Lock()
	defer f.node.mu.Unlock()
	if off < 0 {
		return 0, fmt.Errorf("memfs: negative offset %d", off)
	}
	end := off + int64(len(p))
	if end > int64(len(f.node.data)) {
		if end > int64(cap(f.node.data)) {
			// Amortized growth: sequential appends (the common write
			// pattern) must not copy the whole file every time.
			newCap := 2 * int64(cap(f.node.data))
			if newCap < end {
				newCap = end
			}
			grown := make([]byte, end, newCap)
			copy(grown, f.node.data)
			f.node.data = grown
		} else {
			f.node.data = f.node.data[:end]
		}
	}
	copy(f.node.data[off:end], p)
	return len(p), nil
}

func (f *memFile) Size() (int64, error) {
	f.node.mu.Lock()
	defer f.node.mu.Unlock()
	return int64(len(f.node.data)), nil
}

func (f *memFile) Truncate(size int64) error {
	f.node.mu.Lock()
	defer f.node.mu.Unlock()
	if size < 0 {
		return fmt.Errorf("memfs: negative truncate size %d", size)
	}
	if size <= int64(len(f.node.data)) {
		// Zero the cut region so a later extension reads back zeros
		// (the spare capacity is reused by WriteAt's growth path).
		tail := f.node.data[size:]
		for i := range tail {
			tail[i] = 0
		}
		f.node.data = f.node.data[:size]
		return nil
	}
	grown := make([]byte, size)
	copy(grown, f.node.data)
	f.node.data = grown
	return nil
}

func (f *memFile) Close() error { return nil }

// Package rt defines the platform abstraction the I/O libraries are written
// against: a clock for timing and charging computation, and a filesystem
// for storing bytes. The same Rocpanda/Rochdf code runs on the real
// backends in this package (wall clock, OS or in-memory files) and on the
// simulated platforms in internal/cluster and internal/fssim, which charge
// virtual time for every operation.
package rt

import (
	"errors"
	"io"
	"time"
)

// Clock abstracts time for a single process (rank).
type Clock interface {
	// Now returns seconds since the start of the run.
	Now() float64
	// Sleep advances this process's time by d seconds without consuming
	// CPU (simulated: virtual wait; real: time.Sleep).
	Sleep(d float64)
	// Compute charges d seconds of CPU work to this process. On real
	// backends the work is the code actually running, so Compute is a
	// no-op; on simulated platforms it advances virtual time and is
	// subject to the platform's CPU and OS-noise model.
	Compute(d float64)
}

// File is an open file. Implementations are not required to be safe for
// concurrent use by multiple processes; each rank opens its own handle.
type File interface {
	io.ReaderAt
	io.WriterAt
	io.Closer
	// Name returns the path the file was opened with.
	Name() string
	// Size returns the current length of the file in bytes.
	Size() (int64, error)
	// Truncate changes the file length.
	Truncate(size int64) error
}

// FS abstracts a filesystem as seen by a single process. Simulated
// filesystems bind a per-rank view so operations can charge virtual time to
// the calling process.
type FS interface {
	// Create creates or truncates the named file for writing.
	Create(name string) (File, error)
	// Open opens the named file for reading (and writing, if supported).
	Open(name string) (File, error)
	// Remove deletes the named file.
	Remove(name string) error
	// Rename atomically replaces newname with oldname. It is the commit
	// primitive of the durable-snapshot protocol: writers emit to a temp
	// name and Rename it into place once complete.
	Rename(oldname, newname string) error
	// List returns the names of all files whose name starts with prefix,
	// in lexical order.
	List(prefix string) ([]string, error)
	// Stat returns the size of the named file.
	Stat(name string) (int64, error)
}

// ErrNotExist is returned when a named file does not exist.
var ErrNotExist = errors.New("rt: file does not exist")

// WallClock is the real-time Clock: Now measures wall time since the
// WallClock was created and Compute is free (the caller's code is the
// work).
type WallClock struct {
	start time.Time
}

// NewWallClock returns a Clock anchored at the current instant.
func NewWallClock() *WallClock { return &WallClock{start: time.Now()} }

// Now implements Clock.
func (w *WallClock) Now() float64 { return time.Since(w.start).Seconds() }

// Sleep implements Clock.
func (w *WallClock) Sleep(d float64) {
	if d > 0 {
		time.Sleep(time.Duration(d * float64(time.Second)))
	}
}

// Compute implements Clock. Real computation is performed by the caller's
// own code, so charging is a no-op.
func (w *WallClock) Compute(d float64) {}

package rt

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"
)

// fsCases returns fresh instances of every FS implementation for
// behavioural conformance tests.
func fsCases(t *testing.T) map[string]FS {
	t.Helper()
	osfs, err := NewOSFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]FS{
		"memfs": NewMemFS(),
		"osfs":  osfs,
	}
}

func TestFSRoundTrip(t *testing.T) {
	for name, fsys := range fsCases(t) {
		t.Run(name, func(t *testing.T) {
			f, err := fsys.Create("dir/a.dat")
			if err != nil {
				t.Fatal(err)
			}
			data := []byte("hello parallel world")
			if _, err := f.WriteAt(data, 0); err != nil {
				t.Fatal(err)
			}
			if _, err := f.WriteAt([]byte("IO"), 6); err != nil {
				t.Fatal(err)
			}
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}

			g, err := fsys.Open("dir/a.dat")
			if err != nil {
				t.Fatal(err)
			}
			got := make([]byte, len(data))
			if _, err := g.ReadAt(got, 0); err != nil {
				t.Fatal(err)
			}
			want := []byte("hello IOrallel world")
			if !bytes.Equal(got, want) {
				t.Fatalf("read %q, want %q", got, want)
			}
			sz, err := g.Size()
			if err != nil || sz != int64(len(data)) {
				t.Fatalf("size = %d, %v", sz, err)
			}
			g.Close()
		})
	}
}

func TestFSWriteExtends(t *testing.T) {
	for name, fsys := range fsCases(t) {
		t.Run(name, func(t *testing.T) {
			f, _ := fsys.Create("x")
			if _, err := f.WriteAt([]byte{1, 2, 3}, 10); err != nil {
				t.Fatal(err)
			}
			sz, _ := f.Size()
			if sz != 13 {
				t.Fatalf("size = %d, want 13", sz)
			}
			// The gap must read back as zeros.
			gap := make([]byte, 10)
			if _, err := f.ReadAt(gap, 0); err != nil {
				t.Fatal(err)
			}
			for i, b := range gap {
				if b != 0 {
					t.Fatalf("gap byte %d = %d, want 0", i, b)
				}
			}
			f.Close()
		})
	}
}

func TestFSOpenMissing(t *testing.T) {
	for name, fsys := range fsCases(t) {
		t.Run(name, func(t *testing.T) {
			if _, err := fsys.Open("nope"); !errors.Is(err, ErrNotExist) {
				t.Fatalf("Open missing: err = %v, want ErrNotExist", err)
			}
			if _, err := fsys.Stat("nope"); !errors.Is(err, ErrNotExist) {
				t.Fatalf("Stat missing: err = %v, want ErrNotExist", err)
			}
			if err := fsys.Remove("nope"); !errors.Is(err, ErrNotExist) {
				t.Fatalf("Remove missing: err = %v, want ErrNotExist", err)
			}
		})
	}
}

func TestFSListAndRemove(t *testing.T) {
	for name, fsys := range fsCases(t) {
		t.Run(name, func(t *testing.T) {
			for _, n := range []string{"snap0/b2", "snap0/b1", "snap1/b1", "other"} {
				f, err := fsys.Create(n)
				if err != nil {
					t.Fatal(err)
				}
				f.WriteAt([]byte{0}, 0)
				f.Close()
			}
			got, err := fsys.List("snap0/")
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(got) != "[snap0/b1 snap0/b2]" {
				t.Fatalf("List = %v", got)
			}
			all, _ := fsys.List("")
			if len(all) != 4 {
				t.Fatalf("List(\"\") = %v", all)
			}
			if err := fsys.Remove("snap0/b1"); err != nil {
				t.Fatal(err)
			}
			got, _ = fsys.List("snap0/")
			if fmt.Sprint(got) != "[snap0/b2]" {
				t.Fatalf("after remove, List = %v", got)
			}
		})
	}
}

func TestFSTruncate(t *testing.T) {
	for name, fsys := range fsCases(t) {
		t.Run(name, func(t *testing.T) {
			f, _ := fsys.Create("t")
			f.WriteAt([]byte("abcdef"), 0)
			if err := f.Truncate(3); err != nil {
				t.Fatal(err)
			}
			sz, _ := f.Size()
			if sz != 3 {
				t.Fatalf("size after shrink = %d", sz)
			}
			if err := f.Truncate(5); err != nil {
				t.Fatal(err)
			}
			got := make([]byte, 5)
			if _, err := f.ReadAt(got, 0); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, []byte{'a', 'b', 'c', 0, 0}) {
				t.Fatalf("after grow: %v", got)
			}
			f.Close()
		})
	}
}

func TestFSCreateTruncatesExisting(t *testing.T) {
	for name, fsys := range fsCases(t) {
		t.Run(name, func(t *testing.T) {
			f, _ := fsys.Create("c")
			f.WriteAt([]byte("old content"), 0)
			f.Close()
			g, _ := fsys.Create("c")
			sz, _ := g.Size()
			if sz != 0 {
				t.Fatalf("Create did not truncate: size %d", sz)
			}
			g.Close()
		})
	}
}

func TestMemFSRandomRoundTrip(t *testing.T) {
	fsys := NewMemFS()
	i := 0
	f := func(data []byte, offRaw uint16) bool {
		if len(data) == 0 {
			return true
		}
		i++
		name := fmt.Sprintf("f%d", i)
		off := int64(offRaw % 4096)
		fh, err := fsys.Create(name)
		if err != nil {
			return false
		}
		if _, err := fh.WriteAt(data, off); err != nil {
			return false
		}
		got := make([]byte, len(data))
		if _, err := fh.ReadAt(got, off); err != nil {
			return false
		}
		sz, _ := fh.Size()
		return bytes.Equal(got, data) && sz == off+int64(len(data))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWallClock(t *testing.T) {
	c := NewWallClock()
	t0 := c.Now()
	c.Compute(1e9) // must be free
	c.Sleep(0.01)
	t1 := c.Now()
	if t1-t0 < 0.009 {
		t.Fatalf("Sleep advanced only %v s", t1-t0)
	}
	if t1-t0 > 5 {
		t.Fatalf("Compute appears to have consumed real time: %v s", t1-t0)
	}
}

// TestFSRename covers the commit primitive of the durable-snapshot
// protocol on every FS implementation: the staged name disappears, the
// final name holds the staged bytes, an existing target is replaced, and
// a missing source reports ErrNotExist.
func TestFSRename(t *testing.T) {
	for name, fsys := range fsCases(t) {
		t.Run(name, func(t *testing.T) {
			write := func(name string, data []byte) {
				f, err := fsys.Create(name)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := f.WriteAt(data, 0); err != nil {
					t.Fatal(err)
				}
				if err := f.Close(); err != nil {
					t.Fatal(err)
				}
			}
			read := func(name string) []byte {
				f, err := fsys.Open(name)
				if err != nil {
					t.Fatal(err)
				}
				defer f.Close()
				sz, _ := f.Size()
				b := make([]byte, sz)
				if sz > 0 {
					if _, err := f.ReadAt(b, 0); err != nil {
						t.Fatal(err)
					}
				}
				return b
			}

			write("dir/a.tmp", []byte("new generation"))
			write("dir/a", []byte("old generation"))
			if err := fsys.Rename("dir/a.tmp", "dir/a"); err != nil {
				t.Fatal(err)
			}
			if got := read("dir/a"); !bytes.Equal(got, []byte("new generation")) {
				t.Fatalf("renamed content %q", got)
			}
			if _, err := fsys.Open("dir/a.tmp"); !errors.Is(err, ErrNotExist) {
				t.Fatalf("source still present after rename: %v", err)
			}
			names, err := fsys.List("dir/")
			if err != nil {
				t.Fatal(err)
			}
			if len(names) != 1 || names[0] != "dir/a" {
				t.Fatalf("listing after rename: %v", names)
			}

			// Rename into a fresh subdirectory (OSFS must create it).
			write("dir/b.tmp", []byte("b"))
			if err := fsys.Rename("dir/b.tmp", "other/deep/b"); err != nil {
				t.Fatal(err)
			}
			if got := read("other/deep/b"); !bytes.Equal(got, []byte("b")) {
				t.Fatalf("cross-directory rename content %q", got)
			}

			if err := fsys.Rename("dir/missing", "dir/x"); !errors.Is(err, ErrNotExist) {
				t.Fatalf("renaming a missing file: %v", err)
			}
		})
	}
}

package rocblas

import (
	"fmt"
	"math"
	"testing"

	"genxio/internal/hdf"
	"genxio/internal/mesh"
	"genxio/internal/mpi"
	"genxio/internal/roccom"
	"genxio/internal/rt"
	"genxio/internal/stats"
)

// window builds a window with two float64 attributes and one int32
// attribute across a few panes on one rank.
func window(t testing.TB, rank int) *roccom.Window {
	rc := roccom.New()
	w, _ := rc.NewWindow("w")
	w.NewAttribute(roccom.AttrSpec{Name: "x", Loc: roccom.NodeLoc, Type: hdf.F64, NComp: 1})
	w.NewAttribute(roccom.AttrSpec{Name: "y", Loc: roccom.NodeLoc, Type: hdf.F64, NComp: 1})
	w.NewAttribute(roccom.AttrSpec{Name: "flag", Loc: roccom.PaneLoc, Type: hdf.I32, NComp: 1})
	blocks, err := mesh.GenCylinder(mesh.CylinderSpec{
		RInner: 0.1, ROuter: 0.2, Length: 0.4,
		BR: 1, BT: 2, BZ: 1, NodesPerBlock: 40, Spread: 0.2,
	}, 100*rank+1, stats.NewRNG(uint64(rank)+1))
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range blocks {
		w.RegisterPane(b.ID, b)
	}
	return w
}

func TestLocalOps(t *testing.T) {
	w := window(t, 0)
	if err := Fill(w, "x", 2); err != nil {
		t.Fatal(err)
	}
	if err := Fill(w, "y", 3); err != nil {
		t.Fatal(err)
	}
	if err := Axpy(w, 2, "x", "y"); err != nil { // y = 2*2+3 = 7
		t.Fatal(err)
	}
	if err := Scale(w, "y", 0.5); err != nil { // y = 3.5
		t.Fatal(err)
	}
	if err := Copy(w, "y", "x"); err != nil {
		t.Fatal(err)
	}
	w.EachPane(func(p *roccom.Pane) {
		xs, _ := p.Array("x")
		for _, v := range xs.F64 {
			if v != 3.5 {
				t.Fatalf("x = %v, want 3.5", v)
			}
		}
	})
}

func TestErrorsOnBadAttributes(t *testing.T) {
	w := window(t, 0)
	if err := Fill(w, "nosuch", 1); err == nil {
		t.Fatal("unknown attribute accepted")
	}
	if err := Fill(w, "flag", 1); err == nil {
		t.Fatal("int32 attribute accepted as float64")
	}
	// Mismatched sizes: node-centered 3-comp vs 1-comp.
	w.NewAttribute(roccom.AttrSpec{Name: "v3", Loc: roccom.NodeLoc, Type: hdf.F64, NComp: 3})
	if err := Axpy(w, 1, "v3", "x"); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

func TestGlobalReductions(t *testing.T) {
	world := mpi.NewChanWorld(rt.NewMemFS(), 1)
	const n = 4
	err := world.Run(n, func(ctx mpi.Ctx) error {
		c := ctx.Comm()
		w := window(t, c.Rank())
		// x = rank+1 everywhere; y = 2.
		Fill(w, "x", float64(c.Rank()+1))
		Fill(w, "y", 2)
		var localElems int
		w.EachPane(func(p *roccom.Pane) { localElems += p.Block.NumNodes() })

		dot, err := Dot(c, w, "x", "y")
		if err != nil {
			return err
		}
		// Each rank contributes 2*(rank+1)*elems; elems vary by rank, so
		// verify against an allreduce of the local expectation.
		wantDot := c.AllreduceSum(2 * float64(c.Rank()+1) * float64(localElems))
		if math.Abs(dot-wantDot) > 1e-9*wantDot {
			return fmt.Errorf("dot = %v, want %v", dot, wantDot)
		}

		max, err := Max(c, w, "x")
		if err != nil {
			return err
		}
		if max != n {
			return fmt.Errorf("max = %v, want %d", max, n)
		}
		min, err := Min(c, w, "x")
		if err != nil {
			return err
		}
		if min != 1 {
			return fmt.Errorf("min = %v", min)
		}
		sum, err := Sum(c, w, "y")
		if err != nil {
			return err
		}
		wantSum := c.AllreduceSum(2 * float64(localElems))
		if math.Abs(sum-wantSum) > 1e-9*wantSum {
			return fmt.Errorf("sum = %v, want %v", sum, wantSum)
		}
		norm, err := Norm2(c, w, "y")
		if err != nil {
			return err
		}
		if math.Abs(norm-math.Sqrt(2*wantSum)) > 1e-9 {
			return fmt.Errorf("norm = %v", norm)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Package rocblas provides the paper's parallel algebraic operators over
// window attributes (Figure 1(a)'s Rocblas module): elementwise vector
// operations across all panes of a window, plus global reductions over the
// client communicator. The physics modules use it for jump conditions and
// convergence/diagnostic norms.
package rocblas

import (
	"fmt"
	"math"

	"genxio/internal/hdf"
	"genxio/internal/mpi"
	"genxio/internal/roccom"
)

// f64 returns the float64 storage of attribute name on pane p, or an error.
func f64(p *roccom.Pane, name string) ([]float64, error) {
	a, ok := p.Array(name)
	if !ok {
		return nil, fmt.Errorf("rocblas: pane %d has no attribute %q", p.ID, name)
	}
	if a.Spec.Type != hdf.F64 {
		return nil, fmt.Errorf("rocblas: attribute %q is %v, want float64", name, a.Spec.Type)
	}
	return a.F64, nil
}

// sameShape verifies x and y are compatible on p and returns both.
func sameShape(p *roccom.Pane, x, y string) ([]float64, []float64, error) {
	xs, err := f64(p, x)
	if err != nil {
		return nil, nil, err
	}
	ys, err := f64(p, y)
	if err != nil {
		return nil, nil, err
	}
	if len(xs) != len(ys) {
		return nil, nil, fmt.Errorf("rocblas: %q (%d) and %q (%d) differ in size on pane %d",
			x, len(xs), y, len(ys), p.ID)
	}
	return xs, ys, nil
}

// forPanes runs fn over every pane, stopping at the first error.
func forPanes(w *roccom.Window, fn func(*roccom.Pane) error) error {
	var err error
	w.EachPane(func(p *roccom.Pane) {
		if err == nil {
			err = fn(p)
		}
	})
	return err
}

// Fill sets every element of attribute x to alpha: x := alpha.
func Fill(w *roccom.Window, x string, alpha float64) error {
	return forPanes(w, func(p *roccom.Pane) error {
		xs, err := f64(p, x)
		if err != nil {
			return err
		}
		for i := range xs {
			xs[i] = alpha
		}
		return nil
	})
}

// Scale multiplies attribute x by alpha: x := alpha * x.
func Scale(w *roccom.Window, x string, alpha float64) error {
	return forPanes(w, func(p *roccom.Pane) error {
		xs, err := f64(p, x)
		if err != nil {
			return err
		}
		for i := range xs {
			xs[i] *= alpha
		}
		return nil
	})
}

// Axpy computes y := alpha*x + y over all panes.
func Axpy(w *roccom.Window, alpha float64, x, y string) error {
	return forPanes(w, func(p *roccom.Pane) error {
		xs, ys, err := sameShape(p, x, y)
		if err != nil {
			return err
		}
		for i := range xs {
			ys[i] += alpha * xs[i]
		}
		return nil
	})
}

// Copy computes y := x over all panes.
func Copy(w *roccom.Window, x, y string) error {
	return forPanes(w, func(p *roccom.Pane) error {
		xs, ys, err := sameShape(p, x, y)
		if err != nil {
			return err
		}
		copy(ys, xs)
		return nil
	})
}

// Dot returns the global dot product of attributes x and y across all
// panes of all ranks of comm. Every rank of comm must call it.
func Dot(comm mpi.Comm, w *roccom.Window, x, y string) (float64, error) {
	var local float64
	err := forPanes(w, func(p *roccom.Pane) error {
		xs, ys, err := sameShape(p, x, y)
		if err != nil {
			return err
		}
		for i := range xs {
			local += xs[i] * ys[i]
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	return comm.AllreduceSum(local), nil
}

// Norm2 returns the global Euclidean norm of attribute x.
func Norm2(comm mpi.Comm, w *roccom.Window, x string) (float64, error) {
	d, err := Dot(comm, w, x, x)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(d), nil
}

// Max returns the global maximum element of attribute x. It returns -Inf
// when no rank has any elements.
func Max(comm mpi.Comm, w *roccom.Window, x string) (float64, error) {
	local := math.Inf(-1)
	err := forPanes(w, func(p *roccom.Pane) error {
		xs, err := f64(p, x)
		if err != nil {
			return err
		}
		for _, v := range xs {
			if v > local {
				local = v
			}
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	return comm.AllreduceMax(local), nil
}

// Min returns the global minimum element of attribute x. It returns +Inf
// when no rank has any elements.
func Min(comm mpi.Comm, w *roccom.Window, x string) (float64, error) {
	local := math.Inf(1)
	err := forPanes(w, func(p *roccom.Pane) error {
		xs, err := f64(p, x)
		if err != nil {
			return err
		}
		for _, v := range xs {
			if v < local {
				local = v
			}
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	return comm.AllreduceMin(local), nil
}

// Sum returns the global sum of attribute x.
func Sum(comm mpi.Comm, w *roccom.Window, x string) (float64, error) {
	var local float64
	err := forPanes(w, func(p *roccom.Pane) error {
		xs, err := f64(p, x)
		if err != nil {
			return err
		}
		for _, v := range xs {
			local += v
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	return comm.AllreduceSum(local), nil
}

package viz

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"
	"testing"

	"genxio/internal/hdf"
	"genxio/internal/mesh"
	"genxio/internal/roccom"
	"genxio/internal/rt"
	"genxio/internal/stats"
)

// writeSnapshot builds a small snapshot file holding nblocks panes of a
// fluid window (structured if hex, else tetrahedralized) with a scalar and
// a vector attribute.
func writeSnapshot(t *testing.T, hex bool, nblocks int) (rt.FS, int, int) {
	t.Helper()
	fs := rt.NewMemFS()
	rc := roccom.New()
	w, _ := rc.NewWindow("fluid")
	w.NewAttribute(roccom.AttrSpec{Name: "pressure", Loc: roccom.NodeLoc, Type: hdf.F64, NComp: 1})
	w.NewAttribute(roccom.AttrSpec{Name: "velocity", Loc: roccom.NodeLoc, Type: hdf.F64, NComp: 3})
	w.NewAttribute(roccom.AttrSpec{Name: "flags", Loc: roccom.PaneLoc, Type: hdf.I32, NComp: 1})
	blocks, err := mesh.GenCylinder(mesh.CylinderSpec{
		RInner: 0.1, ROuter: 0.3, Length: 0.6,
		BR: 1, BT: nblocks, BZ: 1, NodesPerBlock: 60, Spread: 0.2,
	}, 1, stats.NewRNG(21))
	if err != nil {
		t.Fatal(err)
	}
	var nodes, cells int
	wr, err := hdf.Create(fs, "snap.rhdf", rt.NewWallClock(), hdf.NullProfile())
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range blocks {
		if !hex {
			b, err = mesh.Tetrahedralize(b)
			if err != nil {
				t.Fatal(err)
			}
		}
		p, err := w.RegisterPane(b.ID, b)
		if err != nil {
			t.Fatal(err)
		}
		pr, _ := p.Array("pressure")
		for i := range pr.F64 {
			pr.F64[i] = float64(b.ID) + float64(i)*0.25
		}
		nodes += b.NumNodes()
		cells += b.NumElems()
		sets, err := roccom.PaneIOSets(w, p, "all")
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range sets {
			if err := wr.CreateDataset(s.Name, s.Type, s.Dims, s.Attrs, s.Data); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := wr.Close(); err != nil {
		t.Fatal(err)
	}
	return fs, nodes, cells
}

func export(t *testing.T, fs rt.FS) string {
	t.Helper()
	r, err := hdf.Open(fs, "snap.rhdf", rt.NewWallClock(), hdf.NullProfile())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var b strings.Builder
	if err := WriteVTK(&b, r, "fluid"); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// parseCounts extracts the POINTS/CELLS/CELL_TYPES header counts and
// verifies section line counts match them.
func parseCounts(t *testing.T, vtk string) (points, cells int) {
	t.Helper()
	sc := bufio.NewScanner(strings.NewReader(vtk))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var lines []string
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	find := func(prefix string) (int, int) {
		for i, l := range lines {
			if strings.HasPrefix(l, prefix) {
				f := strings.Fields(l)
				n, err := strconv.Atoi(f[1])
				if err != nil {
					t.Fatalf("bad header %q", l)
				}
				return i, n
			}
		}
		t.Fatalf("no %s section", prefix)
		return 0, 0
	}
	pi, pn := find("POINTS")
	for i := pi + 1; i <= pi+pn; i++ {
		if len(strings.Fields(lines[i])) != 3 {
			t.Fatalf("point line %d malformed: %q", i, lines[i])
		}
	}
	ci, cn := find("CELLS")
	for i := ci + 1; i <= ci+cn; i++ {
		f := strings.Fields(lines[i])
		n, _ := strconv.Atoi(f[0])
		if len(f) != n+1 {
			t.Fatalf("cell line %d malformed: %q", i, lines[i])
		}
		for _, idx := range f[1:] {
			v, _ := strconv.Atoi(idx)
			if v < 0 || v >= pn {
				t.Fatalf("cell index %d out of range [0,%d)", v, pn)
			}
		}
	}
	ti, tn := find("CELL_TYPES")
	if tn != cn {
		t.Fatalf("CELL_TYPES %d != CELLS %d", tn, cn)
	}
	for i := ti + 1; i <= ti+tn; i++ {
		if lines[i] != "10" && lines[i] != "12" {
			t.Fatalf("cell type line %d = %q", i, lines[i])
		}
	}
	return pn, cn
}

// cellTypeCount counts CELL_TYPES lines equal to want.
func cellTypeCount(t *testing.T, vtk, want string) int {
	t.Helper()
	i := strings.Index(vtk, "CELL_TYPES")
	if i < 0 {
		t.Fatal("no CELL_TYPES")
	}
	count := 0
	for _, l := range strings.Split(vtk[i:], "\n")[1:] {
		if l == want {
			count++
		} else if l != "10" && l != "12" {
			break // end of the section
		}
	}
	return count
}

func TestVTKStructured(t *testing.T) {
	fs, nodes, cells := writeSnapshot(t, true, 3)
	vtk := export(t, fs)
	pn, cn := parseCounts(t, vtk)
	if pn != nodes || cn != cells {
		t.Fatalf("counts %d/%d, want %d/%d", pn, cn, nodes, cells)
	}
	if !strings.Contains(vtk, "SCALARS pressure double 1") {
		t.Fatal("pressure scalars missing")
	}
	if !strings.Contains(vtk, "VECTORS velocity double") {
		t.Fatal("velocity vectors missing")
	}
	if strings.Contains(vtk, "flags") {
		t.Fatal("pane-level int attribute leaked into point data")
	}
	if !strings.Contains(vtk, fmt.Sprintf("POINT_DATA %d", nodes)) {
		t.Fatal("POINT_DATA header wrong")
	}
	// All structured cells are hexahedra (type 12).
	if cellTypeCount(t, vtk, "12") != cells {
		t.Fatal("hexahedron cell types wrong")
	}
}

func TestVTKUnstructured(t *testing.T) {
	fs, nodes, cells := writeSnapshot(t, false, 2)
	vtk := export(t, fs)
	pn, cn := parseCounts(t, vtk)
	if pn != nodes || cn != cells {
		t.Fatalf("counts %d/%d, want %d/%d", pn, cn, nodes, cells)
	}
	if cellTypeCount(t, vtk, "10") != cells {
		t.Fatal("tetra cell types wrong")
	}
}

func TestVTKValuesSurvive(t *testing.T) {
	fs, _, _ := writeSnapshot(t, true, 1)
	vtk := export(t, fs)
	// pressure[1] of pane 1 is 1 + 0.25 = 1.25 — it must appear in the
	// scalars section.
	i := strings.Index(vtk, "LOOKUP_TABLE default")
	if i < 0 {
		t.Fatal("no scalars section")
	}
	if !strings.Contains(vtk[i:], "\n1.25\n") {
		t.Fatal("known pressure value missing from VTK output")
	}
}

func TestVTKMissingWindow(t *testing.T) {
	fs, _, _ := writeSnapshot(t, true, 1)
	r, _ := hdf.Open(fs, "snap.rhdf", rt.NewWallClock(), hdf.NullProfile())
	defer r.Close()
	var b strings.Builder
	if err := WriteVTK(&b, r, "nosuch"); err == nil {
		t.Fatal("missing window accepted")
	}
}

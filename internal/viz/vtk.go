// Package viz converts RHDF snapshots into legacy VTK files — the bridge
// from GENx's output to general visualization pipelines, which is what the
// era's Rocketeer ultimately provided (Figure 1(b) is a rendering of
// exactly these per-pane datasets). One call exports every pane of a
// window from a snapshot file into a single unstructured-grid .vtk with
// the window's node-centered attributes attached as point data.
package viz

import (
	"fmt"
	"io"
	"sort"

	"genxio/internal/hdf"
	"genxio/internal/mesh"
	"genxio/internal/roccom"
)

// VTK legacy cell type ids.
const (
	vtkHexahedron = 12
	vtkTetra      = 10
)

// pane is one reconstructed block plus its node-centered fields.
type pane struct {
	id     int
	block  *mesh.Block
	fields map[string][]float64 // attr -> flattened node data
	ncomp  map[string]int
}

// WriteVTK exports the named window from an opened RHDF reader as a legacy
// ASCII VTK unstructured grid. All panes are merged into one grid (their
// node numbering is offset per pane); every node-centered float64
// attribute present on all panes becomes a SCALARS (1 component) or
// VECTORS (3 components) point-data array. Other component counts are
// split into per-component scalars.
func WriteVTK(out io.Writer, r *hdf.Reader, window string) error {
	panes, err := collect(r, window)
	if err != nil {
		return err
	}
	if len(panes) == 0 {
		return fmt.Errorf("viz: no panes of window %q in the file", window)
	}

	var totalNodes, totalCells, cellInts int
	for _, p := range panes {
		totalNodes += p.block.NumNodes()
		totalCells += p.block.NumElems()
		if p.block.Kind == mesh.Structured {
			cellInts += p.block.NumElems() * 9 // 8 corners + count
		} else {
			cellInts += p.block.NumElems() * 5 // 4 corners + count
		}
	}

	fmt.Fprintf(out, "# vtk DataFile Version 3.0\n")
	fmt.Fprintf(out, "genxio window %s (%d panes)\n", window, len(panes))
	fmt.Fprintf(out, "ASCII\nDATASET UNSTRUCTURED_GRID\n")

	fmt.Fprintf(out, "POINTS %d double\n", totalNodes)
	for _, p := range panes {
		b := p.block
		for n := 0; n < b.NumNodes(); n++ {
			x, y, z := b.Node(n)
			fmt.Fprintf(out, "%g %g %g\n", x, y, z)
		}
	}

	fmt.Fprintf(out, "CELLS %d %d\n", totalCells, cellInts)
	offset := 0
	for _, p := range panes {
		b := p.block
		if b.Kind == mesh.Structured {
			idx := func(i, j, k int) int { return offset + (k*b.NJ+j)*b.NI + i }
			for k := 0; k < b.NK-1; k++ {
				for j := 0; j < b.NJ-1; j++ {
					for i := 0; i < b.NI-1; i++ {
						// VTK hexahedron corner order.
						fmt.Fprintf(out, "8 %d %d %d %d %d %d %d %d\n",
							idx(i, j, k), idx(i+1, j, k), idx(i+1, j+1, k), idx(i, j+1, k),
							idx(i, j, k+1), idx(i+1, j, k+1), idx(i+1, j+1, k+1), idx(i, j+1, k+1))
					}
				}
			}
		} else {
			for e := 0; e < b.NumElems(); e++ {
				fmt.Fprintf(out, "4 %d %d %d %d\n",
					offset+int(b.Conn[4*e]), offset+int(b.Conn[4*e+1]),
					offset+int(b.Conn[4*e+2]), offset+int(b.Conn[4*e+3]))
			}
		}
		offset += b.NumNodes()
	}

	fmt.Fprintf(out, "CELL_TYPES %d\n", totalCells)
	for _, p := range panes {
		ct := vtkTetra
		if p.block.Kind == mesh.Structured {
			ct = vtkHexahedron
		}
		for e := 0; e < p.block.NumElems(); e++ {
			fmt.Fprintf(out, "%d\n", ct)
		}
	}

	// Point data: attributes present on every pane, in sorted order.
	attrs := commonAttrs(panes)
	if len(attrs) > 0 {
		fmt.Fprintf(out, "POINT_DATA %d\n", totalNodes)
	}
	for _, name := range attrs {
		nc := panes[0].ncomp[name]
		switch nc {
		case 1:
			fmt.Fprintf(out, "SCALARS %s double 1\nLOOKUP_TABLE default\n", name)
			for _, p := range panes {
				for _, v := range p.fields[name] {
					fmt.Fprintf(out, "%g\n", v)
				}
			}
		case 3:
			fmt.Fprintf(out, "VECTORS %s double\n", name)
			for _, p := range panes {
				f := p.fields[name]
				for n := 0; n+2 < len(f); n += 3 {
					fmt.Fprintf(out, "%g %g %g\n", f[n], f[n+1], f[n+2])
				}
			}
		default:
			for c := 0; c < nc; c++ {
				fmt.Fprintf(out, "SCALARS %s_%d double 1\nLOOKUP_TABLE default\n", name, c)
				for _, p := range panes {
					f := p.fields[name]
					for n := 0; nc*n+c < len(f); n++ {
						fmt.Fprintf(out, "%g\n", f[nc*n+c])
					}
				}
			}
		}
	}
	return nil
}

// collect reconstructs the window's panes (mesh + node-centered float64
// attributes) from the reader.
func collect(r *hdf.Reader, window string) ([]*pane, error) {
	byID := make(map[int][]roccom.IOSet)
	for _, d := range r.Datasets() {
		win, id, _, ok := roccom.ParseDatasetName(d.Name)
		if !ok || win != window {
			continue
		}
		data, err := r.ReadData(d)
		if err != nil {
			return nil, err
		}
		byID[id] = append(byID[id], roccom.IOSet{
			Name: d.Name, Type: d.Type, Dims: d.Dims, Attrs: d.Attrs, Data: data,
		})
	}
	ids := make([]int, 0, len(byID))
	for id := range byID {
		ids = append(ids, id)
	}
	sort.Ints(ids)

	var panes []*pane
	for _, id := range ids {
		// Reuse the restart machinery to rebuild the mesh block, via a
		// throwaway window carrying the node-centered float64 specs.
		rc := roccom.New()
		w, err := rc.NewWindow(window)
		if err != nil {
			return nil, err
		}
		p := &pane{id: id, fields: make(map[string][]float64), ncomp: make(map[string]int)}
		for _, s := range byID[id] {
			_, _, attr, _ := roccom.ParseDatasetName(s.Name)
			if attr == "" || attr[0] == '_' || s.Type != hdf.F64 || len(s.Dims) != 2 {
				continue
			}
			loc, ok := attrLoc(s)
			if !ok || loc != byte(roccom.NodeLoc) {
				continue
			}
			nc := int(s.Dims[1])
			w.NewAttribute(roccom.AttrSpec{Name: attr, Loc: roccom.NodeLoc, Type: hdf.F64, NComp: nc})
			p.fields[attr] = hdf.BytesF64(s.Data)
			p.ncomp[attr] = nc
		}
		rp, err := roccom.RestorePane(w, id, byID[id])
		if err != nil {
			return nil, fmt.Errorf("viz: pane %d: %w", id, err)
		}
		p.block = rp.Block
		panes = append(panes, p)
	}
	return panes, nil
}

func attrLoc(s roccom.IOSet) (byte, bool) {
	for _, a := range s.Attrs {
		if a.Name == "location" && len(a.Data) == 1 {
			return a.Data[0], true
		}
	}
	return 0, false
}

// commonAttrs returns the attribute names present on every pane, sorted.
func commonAttrs(panes []*pane) []string {
	if len(panes) == 0 {
		return nil
	}
	var out []string
	for name := range panes[0].fields {
		ok := true
		for _, p := range panes[1:] {
			if _, has := p.fields[name]; !has {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

package rocman

import (
	"fmt"
	"testing"

	"genxio/internal/hdf"
	"genxio/internal/mesh"
	"genxio/internal/mpi"
	"genxio/internal/roccom"
	"genxio/internal/rocpanda"
	"genxio/internal/rt"
	"genxio/internal/stats"
)

// TestMigrationTransparentToIO is the paper's dynamic-load-balancing
// claim: a pane migrates between compute processors mid-run and the next
// collective write captures it from its new owner, with the snapshot
// contents identical to the no-migration run.
func TestMigrationTransparentToIO(t *testing.T) {
	run := func(migrate bool) map[string]string {
		fs := rt.NewMemFS()
		world := mpi.NewChanWorld(fs, 1)
		err := world.Run(4, func(ctx mpi.Ctx) error {
			cl, err := rocpanda.Init(ctx, rocpanda.Config{
				NumServers: 1, Profile: hdf.NullProfile(), ActiveBuffering: true,
			})
			if err != nil {
				return err
			}
			if cl == nil {
				return nil
			}
			comm := cl.Comm()
			rc := roccom.New()
			w, _ := rc.NewWindow("fluid")
			w.NewAttribute(roccom.AttrSpec{Name: "p", Loc: roccom.NodeLoc, Type: hdf.F64, NComp: 1})
			// Rank 0 owns panes 1,2; ranks 1,2 own 3 and 4.
			blocks, err := mesh.GenCylinder(mesh.CylinderSpec{
				RInner: 0.1, ROuter: 0.3, Length: 1,
				BR: 1, BT: 4, BZ: 1, NodesPerBlock: 50, Spread: 0.2,
			}, 1, stats.NewRNG(3))
			if err != nil {
				return err
			}
			mine := map[int][]int{0: {0, 1}, 1: {2}, 2: {3}}[comm.Rank()]
			for _, bi := range mine {
				p, err := w.RegisterPane(blocks[bi].ID, blocks[bi])
				if err != nil {
					return err
				}
				arr, _ := p.Array("p")
				for i := range arr.F64 {
					arr.F64[i] = float64(blocks[bi].ID)*100 + float64(i)
				}
			}
			if migrate {
				// Move pane 2 from rank 0 to rank 1 mid-run.
				if err := MigratePane(comm, w, 2, 0, 1); err != nil {
					return err
				}
				if comm.Rank() == 0 {
					if _, ok := w.Pane(2); ok {
						return fmt.Errorf("pane 2 still on rank 0")
					}
				}
				if comm.Rank() == 1 {
					p, ok := w.Pane(2)
					if !ok {
						return fmt.Errorf("pane 2 missing on rank 1")
					}
					arr, _ := p.Array("p")
					if arr.F64[3] != 203 {
						return fmt.Errorf("migrated data wrong: %v", arr.F64[3])
					}
				}
			}
			if err := cl.WriteAttribute("m/s0", w, "all", 0, 0); err != nil {
				return err
			}
			if err := cl.Sync(); err != nil {
				return err
			}
			return cl.Shutdown()
		})
		if err != nil {
			t.Fatal(err)
		}
		names := listRHDF(fs, "m/")
		out := map[string]string{}
		for _, name := range names {
			r, err := hdf.Open(fs, name, rt.NewWallClock(), hdf.NullProfile())
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range r.Datasets() {
				if d.Name == "_meta" {
					continue
				}
				raw, _ := r.ReadData(d)
				out[d.Name] = string(raw)
			}
			r.Close()
		}
		return out
	}
	plain := run(false)
	migrated := run(true)
	if len(plain) == 0 || len(plain) != len(migrated) {
		t.Fatalf("dataset counts differ: %d vs %d", len(plain), len(migrated))
	}
	for name, v := range plain {
		if migrated[name] != v {
			t.Fatalf("dataset %s differs after migration", name)
		}
	}
}

func TestMigrateErrors(t *testing.T) {
	world := mpi.NewChanWorld(rt.NewMemFS(), 1)
	err := world.Run(2, func(ctx mpi.Ctx) error {
		c := ctx.Comm()
		rc := roccom.New()
		w, _ := rc.NewWindow("fluid")
		w.NewAttribute(roccom.AttrSpec{Name: "p", Loc: roccom.NodeLoc, Type: hdf.F64, NComp: 1})
		// Migrating a pane the source does not own fails on the source;
		// self-migration is a no-op everywhere.
		if err := MigratePane(c, w, 9, 1, 1); err != nil {
			return err
		}
		if c.Rank() == 1 {
			if err := MigratePane(c, w, 9, 1, 0); err == nil {
				return fmt.Errorf("missing pane accepted")
			}
			// Unblock the receiver with a real pane.
			blocks, _ := mesh.GenCylinder(mesh.CylinderSpec{
				RInner: 0.1, ROuter: 0.2, Length: 0.5,
				BR: 1, BT: 1, BZ: 1, NodesPerBlock: 30,
			}, 9, stats.NewRNG(1))
			p, _ := w.RegisterPane(9, blocks[0])
			_ = p
			if err := MigratePane(c, w, 9, 1, 0); err != nil {
				return err
			}
			return nil
		}
		// rank 0: receive the (eventually successful) migration.
		if err := MigratePane(c, w, 9, 1, 0); err != nil {
			return err
		}
		if _, ok := w.Pane(9); !ok {
			return fmt.Errorf("pane 9 not received")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRebalanceEvensLoad(t *testing.T) {
	world := mpi.NewChanWorld(rt.NewMemFS(), 1)
	err := world.Run(3, func(ctx mpi.Ctx) error {
		c := ctx.Comm()
		rc := roccom.New()
		w, _ := rc.NewWindow("fluid")
		w.NewAttribute(roccom.AttrSpec{Name: "p", Loc: roccom.NodeLoc, Type: hdf.F64, NComp: 1})
		// Deliberately skewed: rank 0 owns everything.
		if c.Rank() == 0 {
			blocks, err := mesh.GenCylinder(mesh.CylinderSpec{
				RInner: 0.1, ROuter: 0.3, Length: 1,
				BR: 1, BT: 6, BZ: 1, NodesPerBlock: 60,
			}, 1, stats.NewRNG(4))
			if err != nil {
				return err
			}
			for _, b := range blocks {
				p, _ := w.RegisterPane(b.ID, b)
				arr, _ := p.Array("p")
				for i := range arr.F64 {
					arr.F64[i] = float64(b.ID) + float64(i)*0.5
				}
			}
		}
		moves, err := Rebalance(c, w, 10)
		if err != nil {
			return err
		}
		if moves == 0 {
			return fmt.Errorf("no moves planned for a fully skewed load")
		}
		var nodes int
		w.EachPane(func(p *roccom.Pane) { nodes += p.Block.NumNodes() })
		total := int(c.AllreduceSum(float64(nodes)))
		mean := total / 3
		if nodes > 2*mean {
			return fmt.Errorf("rank %d still holds %d of %d nodes after rebalance", c.Rank(), nodes, total)
		}
		// Migrated data intact.
		var bad bool
		w.EachPane(func(p *roccom.Pane) {
			arr, _ := p.Array("p")
			for i := range arr.F64 {
				if arr.F64[i] != float64(p.ID)+float64(i)*0.5 {
					bad = true
				}
			}
		})
		if bad {
			return fmt.Errorf("pane data corrupted by migration")
		}
		// A second rebalance from a balanced state is a no-op.
		moves2, err := Rebalance(c, w, 10)
		if err != nil {
			return err
		}
		if moves2 > moves {
			return fmt.Errorf("rebalance did not converge: %d then %d moves", moves, moves2)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRebalanceEveryInRun(t *testing.T) {
	cfg := baseCfg(IORocpanda)
	cfg.FluidOnly = true
	cfg.RebalanceEvery = 4
	rep, _ := runReal(t, 4, cfg)
	if rep == nil || rep.Steps != 12 {
		t.Fatalf("report %+v", rep)
	}
	// Rebalancing without FluidOnly must be rejected.
	bad := baseCfg(IORochdf)
	bad.RebalanceEvery = 2
	world := mpi.NewChanWorld(rt.NewMemFS(), 1)
	if err := world.Run(2, func(ctx mpi.Ctx) error {
		if _, err := Run(ctx, bad); err == nil {
			return fmt.Errorf("rebalance without FluidOnly accepted")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

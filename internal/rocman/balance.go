package rocman

import (
	"encoding/binary"
	"fmt"
	"sort"

	"genxio/internal/mpi"
	"genxio/internal/roccom"
)

// Rebalance redistributes a window's panes so every rank's node count
// approaches the mean — the dynamic load balancing the paper credits to
// the Charm++ runtime, which in turn balances Rocpanda's server loads
// automatically (Section 4.1). It is collective over comm: rank 0 gathers
// the pane inventory, plans at most maxMoves migrations greedily (move the
// heaviest rank's best-fitting pane to the lightest rank), broadcasts the
// plan, and all ranks execute it with MigratePane. It returns the number
// of migrations performed.
func Rebalance(comm mpi.Comm, w *roccom.Window, maxMoves int) (int, error) {
	if maxMoves <= 0 {
		maxMoves = 4
	}
	// Inventory: (paneID, nodes) pairs per rank.
	var inv []byte
	ids := w.PaneIDs()
	inv = binary.LittleEndian.AppendUint32(inv, uint32(len(ids)))
	for _, id := range ids {
		p, _ := w.Pane(id)
		inv = binary.LittleEndian.AppendUint32(inv, uint32(id))
		inv = binary.LittleEndian.AppendUint32(inv, uint32(p.Block.NumNodes()))
	}
	rows := comm.Gather(0, inv)

	var plan []byte
	var planErr error
	if comm.Rank() == 0 {
		// On a planning failure still broadcast an empty plan: the
		// peers are already waiting in Bcast, and returning early here
		// would strand them.
		moves, err := planMoves(rows, maxMoves)
		if err != nil {
			planErr = err
			moves = nil
		}
		plan = binary.LittleEndian.AppendUint32(nil, uint32(len(moves)))
		for _, m := range moves {
			plan = binary.LittleEndian.AppendUint32(plan, uint32(m.pane))
			plan = binary.LittleEndian.AppendUint32(plan, uint32(m.src))
			plan = binary.LittleEndian.AppendUint32(plan, uint32(m.dst))
		}
	}
	plan = comm.Bcast(0, plan)
	if planErr != nil {
		return 0, planErr
	}
	n := int(binary.LittleEndian.Uint32(plan))
	for i := 0; i < n; i++ {
		pane := int(binary.LittleEndian.Uint32(plan[4+12*i:]))
		src := int(binary.LittleEndian.Uint32(plan[8+12*i:]))
		dst := int(binary.LittleEndian.Uint32(plan[12+12*i:]))
		if err := MigratePane(comm, w, pane, src, dst); err != nil {
			return i, err
		}
	}
	return n, nil
}

type move struct{ pane, src, dst int }

// planMoves computes the greedy migration plan from the gathered pane
// inventories.
func planMoves(rows [][]byte, maxMoves int) ([]move, error) {
	type pane struct{ id, nodes int }
	perRank := make([][]pane, len(rows))
	load := make([]int, len(rows))
	var total int
	for r, row := range rows {
		if len(row) < 4 {
			return nil, fmt.Errorf("rocman: rebalance: short inventory from rank %d", r)
		}
		n := int(binary.LittleEndian.Uint32(row))
		for i := 0; i < n; i++ {
			id := int(binary.LittleEndian.Uint32(row[4+8*i:]))
			nodes := int(binary.LittleEndian.Uint32(row[8+8*i:]))
			perRank[r] = append(perRank[r], pane{id: id, nodes: nodes})
			load[r] += nodes
			total += nodes
		}
	}
	mean := float64(total) / float64(len(rows))

	var moves []move
	for len(moves) < maxMoves {
		hi, lo := 0, 0
		for r := range load {
			if load[r] > load[hi] {
				hi = r
			}
			if load[r] < load[lo] {
				lo = r
			}
		}
		// Stop when balanced within 10% of the mean, or when the
		// heaviest rank has a single pane (indivisible).
		if hi == lo || float64(load[hi]-load[lo]) <= 0.1*mean || len(perRank[hi]) <= 1 {
			break
		}
		// Pick the pane whose move best narrows the gap without
		// overshooting into a reversed imbalance.
		gap := load[hi] - load[lo]
		best := -1
		for i, p := range perRank[hi] {
			if p.nodes >= gap { // moving it would flip the imbalance
				continue
			}
			if best < 0 || p.nodes > perRank[hi][best].nodes {
				best = i
			}
		}
		if best < 0 {
			break
		}
		p := perRank[hi][best]
		moves = append(moves, move{pane: p.id, src: hi, dst: lo})
		perRank[hi] = append(perRank[hi][:best], perRank[hi][best+1:]...)
		perRank[lo] = append(perRank[lo], pane{id: p.id, nodes: p.nodes})
		sort.Slice(perRank[lo], func(a, b int) bool { return perRank[lo][a].id < perRank[lo][b].id })
		load[hi] -= p.nodes
		load[lo] += p.nodes
	}
	return moves, nil
}

package rocman

import (
	"fmt"
	"strings"
	"testing"

	"genxio/internal/cluster"
	"genxio/internal/faults"
	"genxio/internal/hdf"
	"genxio/internal/mesh"
	"genxio/internal/metrics"
	"genxio/internal/mpi"
	"genxio/internal/roccom"
	"genxio/internal/rocpanda"
	"genxio/internal/rt"
	"genxio/internal/trace"
	"genxio/internal/workload"
)

// listRHDF lists the committed snapshot files under prefix, excluding the
// commit manifests and staged temporaries the durable-snapshot protocol
// adds alongside them.
func listRHDF(fs rt.FS, prefix string) []string {
	names, _ := fs.List(prefix)
	var out []string
	for _, n := range names {
		if strings.HasSuffix(n, ".rhdf") {
			out = append(out, n)
		}
	}
	return out
}

// tinySpec returns a small, fast workload: 8 blocks, 12 steps, snapshots
// every 4 steps.
func tinySpec() workload.Spec {
	return workload.Spec{
		Name: "tiny",
		Cylinder: mesh.CylinderSpec{
			RInner: 0.1, ROuter: 0.4, Length: 1,
			BR: 1, BT: 8, BZ: 1, NodesPerBlock: 80, Spread: 0.3,
		},
		Steps: 12, SnapshotEvery: 4, Seed: 7,
		FluidCostPerNode: 1e-7, SolidCostPerNode: 1e-7,
		FaceCostPerNode: 1e-8, BurnCostPerPane: 1e-7,
	}
}

// runReal runs cfg on the goroutine backend over a fresh MemFS and
// returns (report, fs).
func runReal(t *testing.T, n int, cfg Config) (*Report, *rt.MemFS) {
	t.Helper()
	fs := rt.NewMemFS()
	var rep *Report
	world := mpi.NewChanWorld(fs, 1)
	err := world.Run(n, func(ctx mpi.Ctx) error {
		r, err := Run(ctx, cfg)
		if err != nil {
			return err
		}
		if r != nil {
			rep = r
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep, fs
}

func baseCfg(io IOKind) Config {
	return Config{
		Workload: tinySpec(),
		IO:       io,
		Profile:  hdf.NullProfile(),
		Rocpanda: rocpanda.Config{NumServers: 1, ActiveBuffering: true},
	}
}

func TestIntegratedRunAllIOModules(t *testing.T) {
	for _, io := range []IOKind{IORochdf, IOTRochdf, IORocpanda} {
		t.Run(string(io), func(t *testing.T) {
			n := 3
			if io == IORocpanda {
				n = 4 // 3 clients + 1 server
			}
			rep, fs := runReal(t, n, baseCfg(io))
			if rep == nil {
				t.Fatal("no report from client rank 0")
			}
			if rep.Steps != 12 || rep.Snapshots != 4 {
				t.Fatalf("steps %d snapshots %d", rep.Steps, rep.Snapshots)
			}
			if rep.NumClients != 3 {
				t.Fatalf("clients %d", rep.NumClients)
			}
			if rep.BytesOut == 0 || rep.ComputeTime < 0 {
				t.Fatalf("report %+v", rep)
			}
			// The right number of snapshot files exist.
			names := listRHDF(fs, "out/")
			wantFiles := 4 * 3 // 4 snapshots x 3 procs (individual I/O)
			if io == IORocpanda {
				wantFiles = 4 * 1 // 4 snapshots x 1 server
			}
			if len(names) != wantFiles {
				t.Fatalf("%s: %d files %v", io, len(names), names)
			}
			// Every file is a complete, readable RHDF container with
			// both windows.
			for _, name := range names {
				r, err := hdf.Open(fs, name, rt.NewWallClock(), hdf.NullProfile())
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if r.NumDatasets() == 0 {
					t.Fatalf("%s empty", name)
				}
				r.Close()
			}
		})
	}
}

func TestSnapshotContentIdenticalAcrossIOModules(t *testing.T) {
	// The three I/O modules must persist the same physics: compare the
	// full set of datasets of the last snapshot across modules.
	collect := func(io IOKind) map[string][]byte {
		_, fs := runReal(t, 4, baseCfg(io))
		names := listRHDF(fs, "out/snap000012")
		if len(names) == 0 {
			t.Fatalf("%s: no final snapshot", io)
		}
		data := make(map[string][]byte)
		for _, name := range names {
			r, err := hdf.Open(fs, name, rt.NewWallClock(), hdf.NullProfile())
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range r.Datasets() {
				if d.Name == "_meta" {
					continue
				}
				raw, err := r.ReadData(d)
				if err != nil {
					t.Fatal(err)
				}
				data[d.Name] = raw
			}
			r.Close()
		}
		return data
	}
	ref := collect(IORochdf)
	if len(ref) == 0 {
		t.Fatal("no datasets collected")
	}
	for _, io := range []IOKind{IOTRochdf, IORocpanda} {
		got := collect(io)
		if len(got) != len(ref) {
			t.Fatalf("%s has %d datasets, rochdf has %d", io, len(got), len(ref))
		}
		for name, want := range ref {
			g, ok := got[name]
			if !ok {
				t.Fatalf("%s missing dataset %s", io, name)
			}
			if string(g) != string(want) {
				t.Fatalf("%s dataset %s differs", io, name)
			}
		}
	}
}

func TestRestartContinuesIdentically(t *testing.T) {
	// Golden: a straight 12-step run. Candidate: 8 steps, checkpoint,
	// fresh world restarts from step-8 snapshot and runs 4 more steps.
	// Physics state that lives in window attributes must match exactly.
	for _, io := range []IOKind{IORochdf, IORocpanda} {
		t.Run(string(io), func(t *testing.T) {
			n := 3
			if io == IORocpanda {
				n = 4
			}

			cfgFull := baseCfg(io)
			cfgFull.OutputDir = "full"
			_, fsFull := runReal(t, n, cfgFull)

			cfgA := baseCfg(io)
			cfgA.Workload.Steps = 8
			cfgA.OutputDir = "partA"
			fsShared := rt.NewMemFS()
			world := mpi.NewChanWorld(fsShared, 1)
			if err := world.Run(n, func(ctx mpi.Ctx) error {
				_, err := Run(ctx, cfgA)
				return err
			}); err != nil {
				t.Fatal(err)
			}

			cfgB := baseCfg(io)
			cfgB.Workload.Steps = 4
			cfgB.Workload.SnapshotEvery = 4
			cfgB.OutputDir = "partB"
			cfgB.RestartFrom = "partA/snap000008"
			world = mpi.NewChanWorld(fsShared, 1)
			if err := world.Run(n, func(ctx mpi.Ctx) error {
				_, err := Run(ctx, cfgB)
				return err
			}); err != nil {
				t.Fatal(err)
			}

			// Compare full/snap000012 vs partB/snap000004.
			read := func(fs rt.FS, prefix string) map[string]string {
				names := listRHDF(fs, prefix)
				if len(names) == 0 {
					t.Fatalf("no files under %s", prefix)
				}
				out := make(map[string]string)
				for _, name := range names {
					r, err := hdf.Open(fs, name, rt.NewWallClock(), hdf.NullProfile())
					if err != nil {
						t.Fatal(err)
					}
					for _, d := range r.Datasets() {
						if d.Name == "_meta" {
							continue
						}
						raw, _ := r.ReadData(d)
						out[d.Name] = string(raw)
					}
					r.Close()
				}
				return out
			}
			want := read(fsFull, "full/snap000012")
			got := read(fsShared, "partB/snap000004")
			if len(got) != len(want) {
				t.Fatalf("dataset counts differ: %d vs %d", len(got), len(want))
			}
			mismatches := 0
			for name, w := range want {
				if got[name] != w {
					mismatches++
				}
			}
			if mismatches > 0 {
				t.Fatalf("%d of %d datasets differ after restart", mismatches, len(want))
			}
		})
	}
}

func TestRefinementChangesDistributionTransparently(t *testing.T) {
	cfg := baseCfg(IORocpanda)
	cfg.FluidOnly = true
	cfg.RefineEvery = 3
	rep, fs := runReal(t, 4, cfg)
	if rep == nil {
		t.Fatal("no report")
	}
	// After 12 steps with refinement every 3, each client split 4 times:
	// the final snapshot must contain more panes than the initial one.
	count := func(prefix string) int {
		names := listRHDF(fs, prefix)
		panes := map[string]bool{}
		for _, name := range names {
			r, err := hdf.Open(fs, name, rt.NewWallClock(), hdf.NullProfile())
			if err != nil {
				t.Fatal(err)
			}
			for _, dn := range r.Names() {
				if win, id, _, ok := roccom.ParseDatasetName(dn); ok {
					panes[fmt.Sprintf("%s/%d", win, id)] = true
				}
			}
			r.Close()
		}
		return len(panes)
	}
	first := count("out/snap000000")
	last := count("out/snap000012")
	if last <= first {
		t.Fatalf("refinement did not grow pane count: %d -> %d", first, last)
	}
}

func TestConfigValidation(t *testing.T) {
	fs := rt.NewMemFS()
	world := mpi.NewChanWorld(fs, 1)
	err := world.Run(2, func(ctx mpi.Ctx) error {
		cfg := baseCfg(IORochdf)
		cfg.RefineEvery = 2 // without FluidOnly
		if _, err := Run(ctx, cfg); err == nil {
			return fmt.Errorf("refinement without FluidOnly accepted")
		}
		cfg = baseCfg("bogus")
		if _, err := Run(ctx, cfg); err == nil {
			return fmt.Errorf("bogus IO module accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunOnSimulatedPlatform(t *testing.T) {
	// Smoke-test the full integrated stack on the Turing model: Rocpanda
	// with one server, 8+1 ranks, visible write far below compute.
	plat := cluster.Turing()
	w := cluster.NewWorld(plat, 5)
	var rep *Report
	err := w.Run(9, func(ctx mpi.Ctx) error {
		cfg := baseCfg(IORocpanda)
		cfg.BufferBW = plat.MemcpyBW
		cfg.Profile = hdf.HDF4Profile()
		cfg.StrideRealWork = 3
		cfg.Workload.FluidCostPerNode = 1e-5
		cfg.Workload.SolidCostPerNode = 1e-5
		r, err := Run(ctx, cfg)
		if r != nil {
			rep = r
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil {
		t.Fatal("no report")
	}
	if rep.ComputeTime <= 0 {
		t.Fatalf("no compute time charged: %+v", rep)
	}
	if rep.VisibleWrite >= rep.ComputeTime {
		t.Fatalf("visible write %.3f not hidden vs compute %.3f", rep.VisibleWrite, rep.ComputeTime)
	}
	if w.FSModel().BytesWritten() == 0 {
		t.Fatal("nothing reached the simulated filesystem")
	}
}

func TestSolverSelection(t *testing.T) {
	// GENx's plug-in physics: rocflu and rocsolid must drive the same
	// windows through the same I/O path.
	cfg := baseCfg(IORocpanda)
	cfg.FluidSolver = "rocflu"
	cfg.SolidSolver = "rocsolid"
	rep, fs := runReal(t, 4, cfg)
	if rep == nil || rep.Snapshots != 4 {
		t.Fatalf("report %+v", rep)
	}
	names := listRHDF(fs, "out/snap000012")
	if len(names) != 1 {
		t.Fatalf("files %v", names)
	}
	r, err := hdf.Open(fs, names[0], rt.NewWallClock(), hdf.NullProfile())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var fluidConn bool
	for _, n := range r.Names() {
		if _, _, attr, ok := roccom.ParseDatasetName(n); ok && attr == "_conn" && len(n) > 7 && n[:7] == "/fluid/" {
			fluidConn = true
		}
	}
	if !fluidConn {
		t.Fatal("rocflu fluid panes should be unstructured (carry connectivity)")
	}

	bad := baseCfg(IORochdf)
	bad.FluidSolver = "nope"
	fs2 := rt.NewMemFS()
	world := mpi.NewChanWorld(fs2, 1)
	if err := world.Run(2, func(ctx mpi.Ctx) error {
		_, err := Run(ctx, bad)
		if err == nil {
			return fmt.Errorf("bogus fluid solver accepted")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	bad2 := baseCfg(IORochdf)
	bad2.SolidSolver = "nope"
	world = mpi.NewChanWorld(rt.NewMemFS(), 1)
	if err := world.Run(2, func(ctx mpi.Ctx) error {
		_, err := Run(ctx, bad2)
		if err == nil {
			return fmt.Errorf("bogus solid solver accepted")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestCompressedSnapshots(t *testing.T) {
	// Compression must shrink the files and leave the physics and
	// restart path untouched.
	for _, io := range []IOKind{IORochdf, IORocpanda} {
		t.Run(string(io), func(t *testing.T) {
			plain := baseCfg(io)
			_, fsPlain := runReal(t, 4, plain)
			comp := baseCfg(io)
			comp.Compress = true
			_, fsComp := runReal(t, 4, comp)

			size := func(fs rt.FS) int64 {
				names := listRHDF(fs, "out/snap000012")
				var total int64
				for _, n := range names {
					sz, _ := fs.Stat(n)
					total += sz
				}
				return total
			}
			szPlain, szComp := size(fsPlain), size(fsComp)
			if szComp >= szPlain {
				t.Fatalf("compressed snapshot %d B not smaller than plain %d B", szComp, szPlain)
			}
			// Logical content identical.
			read := func(fs rt.FS) map[string]string {
				names := listRHDF(fs, "out/snap000012")
				out := map[string]string{}
				for _, name := range names {
					r, err := hdf.Open(fs, name, rt.NewWallClock(), hdf.NullProfile())
					if err != nil {
						t.Fatal(err)
					}
					for _, d := range r.Datasets() {
						if d.Name == "_meta" {
							continue
						}
						raw, err := r.ReadData(d)
						if err != nil {
							t.Fatal(err)
						}
						out[d.Name] = string(raw)
					}
					r.Close()
				}
				return out
			}
			want, got := read(fsPlain), read(fsComp)
			if len(want) != len(got) {
				t.Fatalf("dataset counts differ: %d vs %d", len(want), len(got))
			}
			for k, v := range want {
				if got[k] != v {
					t.Fatalf("dataset %s differs under compression", k)
				}
			}
		})
	}
}

func TestTraceTimelineOnSimPlatform(t *testing.T) {
	// The trace must show the paper's overlap picture: long compute
	// spans, short write spans, and a final sync.
	plat := cluster.Turing()
	rec := trace.New()
	cfg := baseCfg(IORocpanda)
	cfg.Trace = rec
	cfg.Profile = hdf.HDF4Profile()
	cfg.BufferBW = plat.MemcpyBW
	cfg.StrideRealWork = 4
	cfg.Workload.FluidCostPerNode = 1e-5
	cfg.Workload.SolidCostPerNode = 1e-5
	w := cluster.NewWorld(plat, 9)
	if err := w.Run(4, func(ctx mpi.Ctx) error {
		_, err := Run(ctx, cfg)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	totals := rec.Totals()
	if len(totals) != 3 {
		t.Fatalf("ranks traced: %d, want 3 clients", len(totals))
	}
	for rank, m := range totals {
		if m[trace.PhaseCompute] <= 0 || m[trace.PhaseWrite] <= 0 {
			t.Fatalf("rank %d missing phases: %v", rank, m)
		}
		if m[trace.PhaseWrite] >= m[trace.PhaseCompute] {
			t.Fatalf("rank %d write %v not hidden vs compute %v", rank, m[trace.PhaseWrite], m[trace.PhaseCompute])
		}
	}
	var b strings.Builder
	if err := rec.Timeline(&b, 60); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"rank   0", "=", "compute  max over ranks"} {
		if !strings.Contains(out, want) {
			t.Fatalf("timeline missing %q:\n%s", want, out)
		}
	}
}

func TestRestartFromLatestFallsBackMultiWindow(t *testing.T) {
	// Regression for a restore deadlock: a corrupt newest generation
	// fails only the clients whose panes sat in the damaged server file.
	// Without collective agreement between the fluid and solid window
	// reads those clients abandon the attempt while the rest enter the
	// next read round, and the servers wait forever for a full round.
	// The fallback must move every client past the damaged generation
	// together and the run must complete.
	const n = 6 // 4 clients + 2 servers
	cfg := baseCfg(IORocpanda)
	cfg.Rocpanda.NumServers = 2

	fs := rt.NewMemFS()
	world := mpi.NewChanWorld(fs, 1)
	if err := world.Run(n, func(ctx mpi.Ctx) error {
		_, err := Run(ctx, cfg)
		return err
	}); err != nil {
		t.Fatal(err)
	}

	// Flip one payload bit in one server file of the newest generation:
	// the scan skips the whole file, so only the clients whose panes it
	// held see an incomplete fluid read.
	if err := faults.FlipBit(fs, "out/snap000012_s001.rhdf", hdf.HeaderSize()*8+13); err != nil {
		t.Fatal(err)
	}

	reg := metrics.New()
	cfg2 := baseCfg(IORocpanda)
	cfg2.Rocpanda.NumServers = 2
	cfg2.Workload.Steps = 4
	cfg2.Workload.SnapshotEvery = 4
	cfg2.RestartFromLatest = true
	cfg2.Metrics = reg
	world = mpi.NewChanWorld(fs, 1)
	if err := world.Run(n, func(ctx mpi.Ctx) error {
		_, err := Run(ctx, cfg2)
		return err
	}); err != nil {
		t.Fatal(err)
	}

	// All 4 clients fell back exactly once (snap000012 -> snap000008);
	// the shared registry sums their per-rank counters. The corrupt file
	// was caught by one server's scan, once.
	s := reg.Snapshot()
	if got := s.Counters["rocpanda.restart.fallbacks"]; got != 4 {
		t.Fatalf("restart.fallbacks = %d, want 4 (one per client)", got)
	}
	if got := s.Counters["rocpanda.restart.generations_scanned"]; got != 8 {
		t.Fatalf("restart.generations_scanned = %d, want 8 (two per client)", got)
	}
	if got := s.Counters["hdf.checksum_failures"]; got != 1 {
		t.Fatalf("hdf.checksum_failures = %d, want 1", got)
	}
}

package rocman

import (
	"fmt"

	"genxio/internal/mpi"
	"genxio/internal/roccom"
)

// Migration tag in the application tag space.
const tagMigrate = 2100

// MigratePane moves one pane of a window from rank src to rank dst of
// comm, carrying the mesh block and all attribute data. Both ranks must
// call it (other ranks need not); the pane is deleted on src and appears
// on dst with identical contents.
//
// This is the paper's dynamic load-balancing claim made concrete: data
// blocks may migrate among processors between output phases, and because
// Rocpanda and Rochdf ship whatever panes are registered at write time,
// nothing about how I/O is performed changes — with Rocpanda the server's
// workload even rebalances automatically.
func MigratePane(comm mpi.Comm, w *roccom.Window, paneID, src, dst int) error {
	if src == dst {
		return nil
	}
	switch comm.Rank() {
	case src:
		p, ok := w.Pane(paneID)
		if !ok {
			return fmt.Errorf("rocman: migrate: rank %d has no pane %d", src, paneID)
		}
		sets, err := roccom.PaneIOSets(w, p, "all")
		if err != nil {
			return err
		}
		comm.Send(dst, tagMigrate, roccom.EncodeIOSets(sets))
		return w.DeletePane(paneID)
	case dst:
		data, _ := comm.Recv(src, tagMigrate)
		sets, err := roccom.DecodeIOSets(data)
		if err != nil {
			return err
		}
		if _, err := roccom.RestorePane(w, paneID, sets); err != nil {
			return err
		}
		return nil
	}
	return nil
}

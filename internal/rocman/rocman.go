// Package rocman is the orchestration module (Figure 1(a)'s manager): it
// assembles the integrated simulation — mesh partitioning, Roccom window
// registration, the physics modules, the interchangeable I/O service —
// and drives the control flow: timestep iterations with a global dt
// reduction (the barrier that synchronizes compute phases), periodic
// snapshots through the loaded I/O module, optional adaptive refinement,
// restart, and final drain.
//
// The same Run function executes on the real goroutine backend (writing
// real files) and on the simulated platforms (regenerating the paper's
// numbers); only the mpi.World the caller passes differs.
package rocman

import (
	"encoding/binary"
	"fmt"
	"math"

	"genxio/internal/hdf"
	"genxio/internal/mesh"
	"genxio/internal/metrics"
	"genxio/internal/mpi"
	"genxio/internal/physics"
	"genxio/internal/roccom"
	"genxio/internal/rochdf"
	"genxio/internal/rocpanda"
	"genxio/internal/snapshot"
	"genxio/internal/trace"
	"genxio/internal/workload"
)

// IOKind selects the I/O service module loaded for the run.
type IOKind string

// I/O service modules.
const (
	IORochdf   IOKind = "rochdf"   // individual I/O, synchronous (baseline)
	IOTRochdf  IOKind = "trochdf"  // individual I/O with background thread
	IORocpanda IOKind = "rocpanda" // client-server collective I/O
)

// Config configures an integrated run.
type Config struct {
	// Workload is the test case.
	Workload workload.Spec
	// IO selects the I/O module.
	IO IOKind
	// Rocpanda configures the servers when IO == IORocpanda. Profile
	// and MemcpyBW are filled from the fields below if zero.
	Rocpanda rocpanda.Config
	// Profile is the scientific-library cost model.
	Profile hdf.CostProfile
	// BufferBW is the local buffering bandwidth charged by T-Rochdf on
	// simulated platforms (it includes the scientific-format encoding,
	// so it is well below raw memcpy speed).
	BufferBW float64
	// ServerBufferBW is the Rocpanda server-side buffering bandwidth
	// (raw memcpy); falls back to BufferBW when zero.
	ServerBufferBW float64
	// OutputDir prefixes snapshot base names (default "out").
	OutputDir string
	// RestartFrom, if non-empty, is the snapshot base to restart from
	// before stepping. Requires RefineEvery == 0.
	RestartFrom string
	// RestartFromLatest restores from the newest committed and
	// verifiable snapshot generation under OutputDir before stepping,
	// falling back past corrupt or uncommitted generations. Mutually
	// exclusive with RestartFrom; requires RefineEvery == 0.
	RestartFromLatest bool
	// RetainGenerations, when > 0, keeps only the newest N committed
	// snapshot generations, pruning older ones at every sync. 0 keeps
	// everything.
	RetainGenerations int
	// StrideRealWork runs the solvers' real arithmetic only every k-th
	// step, charging the calibrated cost on the others (>= 1; the
	// timing benches use larger strides since only charged time counts).
	StrideRealWork int
	// RefineEvery splits each rank's largest fluid block every k steps
	// (0 = off) — the paper's dynamically changing block distribution.
	// Requires FluidOnly.
	RefineEvery int
	// RebalanceEvery migrates panes toward equal per-rank load every k
	// steps (0 = off) — the dynamic load balancing the paper credits to
	// Charm++, which also balances the I/O servers' work automatically.
	// Requires FluidOnly.
	RebalanceEvery int
	// FluidOnly drops the solid/burn/interface modules.
	FluidOnly bool
	// FluidSolver selects the gas-dynamics module: "rocflo" (multi-block
	// structured, default) or "rocflu" (unstructured) — GENx's
	// plug-in-physics flexibility.
	FluidSolver string
	// SolidSolver selects the structural module: "rocfrac" (explicit,
	// default) or "rocsolid" (implicit quasi-static).
	SolidSolver string
	// MeasureRestart, after the run completes and drains, performs a
	// timed collective read of the last snapshot (the paper's restart
	// latency measurement); the time lands in Report.VisibleRead.
	MeasureRestart bool
	// Compress stores snapshot datasets deflate-compressed (RHDF's
	// equivalent of HDF's gzip filter).
	Compress bool
	// Trace, if non-nil, records per-rank phase intervals (compute,
	// write, read, sync) for timeline analysis.
	Trace *trace.Recorder
	// Metrics, if non-nil, is handed to the loaded I/O service and the
	// file layer, collecting the run's counters and latency histograms.
	Metrics *metrics.Registry
	// BurnModel selects Rocburn's 1-D model.
	BurnModel physics.BurnModel
}

// Report is the per-run outcome, assembled on client rank 0 (other ranks
// and servers get nil).
type Report struct {
	Steps      int
	Snapshots  int
	NumClients int
	NumServers int

	ComputeTime  float64 // max over clients: time in step iterations
	VisibleWrite float64 // max over clients: time inside write_attribute
	VisibleRead  float64 // max over clients: restart read time
	SyncWait     float64 // max over clients: time inside sync
	BytesOut     int64   // total payload handed to the I/O service
}

// Run executes the integrated simulation; every rank of the world calls
// it. The Report is returned on client rank 0.
func Run(ctx mpi.Ctx, cfg Config) (*Report, error) {
	if cfg.StrideRealWork < 1 {
		cfg.StrideRealWork = 1
	}
	if cfg.OutputDir == "" {
		cfg.OutputDir = "out"
	}
	if (cfg.RefineEvery > 0 || cfg.RebalanceEvery > 0) && !cfg.FluidOnly {
		return nil, fmt.Errorf("rocman: refinement and rebalancing require FluidOnly")
	}
	if cfg.RefineEvery > 0 && (cfg.RestartFrom != "" || cfg.RestartFromLatest) {
		return nil, fmt.Errorf("rocman: refinement and restart are mutually exclusive")
	}
	if cfg.RestartFrom != "" && cfg.RestartFromLatest {
		return nil, fmt.Errorf("rocman: RestartFrom and RestartFromLatest are mutually exclusive")
	}

	// Pre-register the durability counters so every report carries them
	// (zero-valued on clean runs), keeping bench JSON schemas stable.
	cfg.Metrics.Counter("hdf.checksum_failures")
	cfg.Metrics.Counter("rocpanda.restart.generations_scanned")
	cfg.Metrics.Counter("rocpanda.restart.fallbacks")
	cfg.Metrics.Counter("rocpanda.restart.catalog_hits")
	cfg.Metrics.Counter("rocpanda.restart.catalog_fallbacks")
	cfg.Metrics.Counter("rocpanda.restart.files_opened")
	cfg.Metrics.Counter("rocpanda.restart.bytes_read")
	cfg.Metrics.Gauge("rocpanda.drain.queue_depth")
	cfg.Metrics.Counter("rocpanda.drain.backpressure_waits")
	cfg.Metrics.Histogram("rocpanda.drain.overlap_seconds", nil)
	cfg.Metrics.Counter("rocpanda.drain.errors")
	cfg.Metrics.Histogram("rocpanda.drain.flush_seconds", nil)
	cfg.Metrics.Gauge("rocpanda.read.queue_depth")
	cfg.Metrics.Counter("rocpanda.read.backpressure_waits")
	cfg.Metrics.Histogram("rocpanda.read.overlap_seconds", nil)
	cfg.Metrics.Counter("rocpanda.read.errors")
	cfg.Metrics.Counter("rocpanda.restart.bytes_wasted")
	cfg.Metrics.Counter("rocpanda.write.dirty_panes")
	cfg.Metrics.Counter("rocpanda.write.clean_panes")
	cfg.Metrics.Counter("rocpanda.write.delta_bytes_saved")
	cfg.Metrics.Gauge("rocpanda.restart.chain_depth")

	// I/O module selection: Rocpanda splits the world; the Rochdf
	// variants use the world communicator directly.
	var (
		comm    mpi.Comm
		svc     roccom.IOService
		pandaCl *rocpanda.Client
		hdfSvc  *rochdf.Rochdf
		rc      = roccom.New()
		nsrv    int
	)
	switch cfg.IO {
	case IORocpanda:
		pcfg := cfg.Rocpanda
		if pcfg.Profile.Name == "" {
			pcfg.Profile = cfg.Profile
		}
		if cfg.Compress {
			pcfg.Compress = true
		}
		if pcfg.MemcpyBW == 0 {
			pcfg.MemcpyBW = cfg.ServerBufferBW
		}
		if pcfg.MemcpyBW == 0 {
			pcfg.MemcpyBW = cfg.BufferBW
		}
		if pcfg.Metrics == nil {
			pcfg.Metrics = cfg.Metrics
		}
		if pcfg.RetainGenerations == 0 {
			pcfg.RetainGenerations = cfg.RetainGenerations
		}
		if pcfg.Trace == nil {
			pcfg.Trace = cfg.Trace
		}
		cl, err := rocpanda.Init(ctx, pcfg)
		if err != nil {
			return nil, err
		}
		if cl == nil {
			return nil, nil // server rank: service loop already done
		}
		pandaCl = cl
		comm = cl.Comm()
		nsrv = cl.NumServers()
		if err := rc.LoadModule(cl.Module(), "IO"); err != nil {
			return nil, err
		}
	case IORochdf, IOTRochdf:
		comm = ctx.Comm()
		hdfSvc = rochdf.New(ctx, rochdf.Config{
			Profile:           cfg.Profile,
			Threaded:          cfg.IO == IOTRochdf,
			BufferBW:          cfg.BufferBW,
			Compress:          cfg.Compress,
			Metrics:           cfg.Metrics,
			RetainGenerations: cfg.RetainGenerations,
		})
		if err := rc.LoadModule(hdfSvc.Module(), "IO"); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("rocman: unknown I/O module %q", cfg.IO)
	}
	var err error
	svc, err = roccom.LoadedIO(rc, "IO")
	if err != nil {
		return nil, err
	}

	sim, err := build(ctx, rc, comm, cfg)
	if err != nil {
		return nil, err
	}

	if cfg.RestartFrom != "" {
		if err := sim.restart(svc, cfg.RestartFrom); err != nil {
			return nil, err
		}
	}
	if cfg.RestartFromLatest {
		if _, err := snapshot.Restore(ctx.FS(), cfg.OutputDir+"/", func(base string) error {
			return sim.restartAgreed(svc, base)
		}, snapshot.Options{Comm: comm, Metrics: cfg.Metrics}); err != nil {
			return nil, err
		}
	}

	if err := sim.run(svc, cfg); err != nil {
		return nil, err
	}

	// Drain everything before the run ends, then release the service.
	syncT0 := ctx.Clock().Now()
	if err := svc.Sync(); err != nil {
		return nil, err
	}
	cfg.Trace.Record(comm.Rank(), trace.PhaseSync, syncT0, ctx.Clock().Now())
	if cfg.MeasureRestart {
		spec := cfg.Workload
		last := 0
		if spec.SnapshotEvery > 0 {
			last = spec.Steps / spec.SnapshotEvery * spec.SnapshotEvery
		}
		base := fmt.Sprintf("%s/snap%06d", cfg.OutputDir, last)
		// Align the clients first so the measurement excludes sync
		// completion skew between server groups.
		comm.Barrier()
		if err := sim.restart(svc, base); err != nil {
			return nil, err
		}
	}
	report, err := sim.gatherReport(comm, pandaCl, hdfSvc, nsrv)
	if err != nil {
		return nil, err
	}
	if err := rc.UnloadModule("IO"); err != nil {
		return nil, err
	}
	return report, nil
}

// genx holds one client rank's simulation state.
type genx struct {
	ctx     mpi.Ctx
	comm    mpi.Comm
	cfg     Config
	fluid   *roccom.Window
	solid   *roccom.Window
	flo     *physics.Rocflo // set when FluidSolver is "rocflo"
	burn    *physics.Rocburn
	face    *physics.Rocface
	solvers []physics.Solver

	nextID      int // next refinement block ID (globally unique)
	computeTime float64
	snapshots   int
	steps       int
}

// build partitions the workload mesh and assembles windows and solvers.
func build(ctx mpi.Ctx, rc *roccom.Roccom, comm mpi.Comm, cfg Config) (*genx, error) {
	spec := cfg.Workload
	blocks, err := spec.Blocks()
	if err != nil {
		return nil, err
	}
	assign, err := mesh.Partition(blocks, comm.Size())
	if err != nil {
		return nil, err
	}
	mine := assign[comm.Rank()]

	g := &genx{ctx: ctx, comm: comm, cfg: cfg}
	g.nextID = 1 << 20
	g.nextID += comm.Rank() << 14 // rank-disjoint refinement ID space

	g.fluid, err = rc.NewWindow("fluid")
	if err != nil {
		return nil, err
	}
	switch cfg.FluidSolver {
	case "", "rocflo":
		g.flo, err = physics.NewRocflo(g.fluid, ctx.Clock(), spec.FluidCostPerNode)
		if err != nil {
			return nil, err
		}
		for _, bi := range mine {
			p, err := g.fluid.RegisterPane(blocks[bi].ID, blocks[bi])
			if err != nil {
				return nil, err
			}
			g.flo.InitPane(p)
		}
		g.solvers = append(g.solvers, g.flo)
	case "rocflu":
		// The unstructured gas solver runs on tetrahedralized blocks.
		flu, err := physics.NewRocflu(g.fluid, ctx.Clock(), spec.FluidCostPerNode)
		if err != nil {
			return nil, err
		}
		for _, bi := range mine {
			tet, err := mesh.Tetrahedralize(blocks[bi])
			if err != nil {
				return nil, err
			}
			p, err := g.fluid.RegisterPane(tet.ID, tet)
			if err != nil {
				return nil, err
			}
			if err := flu.InitPane(p); err != nil {
				return nil, err
			}
		}
		g.solvers = append(g.solvers, flu)
	default:
		return nil, fmt.Errorf("rocman: unknown fluid solver %q", cfg.FluidSolver)
	}
	g.burn = physics.NewRocburn(g.fluid, ctx.Clock(), cfg.BurnModel, spec.BurnCostPerPane)
	g.solvers = append(g.solvers, g.burn)

	if !cfg.FluidOnly {
		g.solid, err = rc.NewWindow("solid")
		if err != nil {
			return nil, err
		}
		var solid physics.Solver
		var initSolid func(*roccom.Pane)
		switch cfg.SolidSolver {
		case "", "rocfrac":
			frac, err := physics.NewRocfrac(g.solid, ctx.Clock(), spec.SolidCostPerNode)
			if err != nil {
				return nil, err
			}
			solid, initSolid = frac, func(*roccom.Pane) {}
		case "rocsolid":
			rs, err := physics.NewRocsolid(g.solid, ctx.Clock(), spec.SolidCostPerNode)
			if err != nil {
				return nil, err
			}
			solid, initSolid = rs, rs.InitPane
		default:
			return nil, fmt.Errorf("rocman: unknown solid solver %q", cfg.SolidSolver)
		}
		for _, bi := range mine {
			tet, err := mesh.Tetrahedralize(blocks[bi])
			if err != nil {
				return nil, err
			}
			p, err := g.solid.RegisterPane(tet.ID, tet)
			if err != nil {
				return nil, err
			}
			initSolid(p)
		}
		g.face, err = physics.NewRocface(g.fluid, g.solid, ctx.Clock(), spec.FaceCostPerNode)
		if err != nil {
			return nil, err
		}
		g.solvers = append(g.solvers, g.face, solid)
	}
	return g, nil
}

// restart replaces the registered panes' contents from a checkpoint. The
// read latency is accounted by the I/O service itself.
func (g *genx) restart(svc roccom.IOService, base string) error {
	t0 := g.ctx.Clock().Now()
	if err := svc.ReadAttribute(base, g.fluid, "all"); err != nil {
		return err
	}
	if g.solid != nil {
		if err := svc.ReadAttribute(base, g.solid, "all"); err != nil {
			return err
		}
		if err := g.face.RebuildMaps(); err != nil {
			return err
		}
	}
	g.cfg.Trace.Record(g.comm.Rank(), trace.PhaseRead, t0, g.ctx.Clock().Now())
	return nil
}

// restartAgreed is restart with collective error agreement between the
// window reads. A damaged generation can fail only some clients' reads
// (the ones whose panes sat in the corrupt file); without agreement
// those ranks would bail out to the fallback while the others enter the
// next window's collective read round, deadlocking the servers. Every
// read is followed by an allreduce so all clients abandon the attempt
// together. Only the generation-fallback path pays for this — plain
// restarts keep their exact timing behavior.
func (g *genx) restartAgreed(svc roccom.IOService, base string) error {
	t0 := g.ctx.Clock().Now()
	err := svc.ReadAttribute(base, g.fluid, "all")
	if peerFailed(g.comm, err) {
		return restartPeerErr(base, "fluid", err)
	}
	if g.solid != nil {
		err = svc.ReadAttribute(base, g.solid, "all")
		if err == nil {
			err = g.face.RebuildMaps()
		}
		if peerFailed(g.comm, err) {
			return restartPeerErr(base, "solid", err)
		}
	}
	g.cfg.Trace.Record(g.comm.Rank(), trace.PhaseRead, t0, g.ctx.Clock().Now())
	return nil
}

// peerFailed reports whether any rank in comm passed a non-nil error.
func peerFailed(comm mpi.Comm, err error) bool {
	bad := 0.0
	if err != nil {
		bad = 1
	}
	return comm.AllreduceMax(bad) > 0
}

// restartPeerErr keeps the local error when there is one and otherwise
// names the window whose read failed on a peer.
func restartPeerErr(base, window string, err error) error {
	if err != nil {
		return err
	}
	return fmt.Errorf("rocman: restart %s: a peer rank failed its %s read", base, window)
}

// run executes the timestep loop with periodic snapshots.
func (g *genx) run(svc roccom.IOService, cfg Config) error {
	spec := cfg.Workload
	simTime := 0.0
	if err := g.snapshot(svc, simTime, 0); err != nil {
		return err
	}
	for step := 1; step <= spec.Steps; step++ {
		t0 := g.ctx.Clock().Now()
		// Global stable-dt reduction from the current state: the
		// per-step synchronization point of the integrated code.
		bound := 1e-3
		for _, s := range g.solvers {
			bound = math.Min(bound, s.StableDt())
		}
		dt := g.comm.AllreduceMin(bound)
		if (step-1)%cfg.StrideRealWork == 0 {
			for _, s := range g.solvers {
				s.Step(dt)
			}
			// The solvers mutated pane data in place; bump the windows'
			// dirty epochs so delta snapshots reship these panes. Strided
			// charge-only steps change nothing, so they dirty nothing.
			g.fluid.MarkAllDirty()
			if g.solid != nil {
				g.solid.MarkAllDirty()
			}
		} else {
			g.ctx.Clock().Compute(g.chargeOnlyCost())
		}
		simTime += dt
		if cfg.RefineEvery > 0 && step%cfg.RefineEvery == 0 {
			if err := g.refine(); err != nil {
				return err
			}
		}
		if cfg.RebalanceEvery > 0 && step%cfg.RebalanceEvery == 0 {
			if _, err := Rebalance(g.comm, g.fluid, 0); err != nil {
				return err
			}
		}
		g.computeTime += g.ctx.Clock().Now() - t0
		cfg.Trace.Record(g.comm.Rank(), trace.PhaseCompute, t0, g.ctx.Clock().Now())
		g.steps++

		if spec.SnapshotEvery > 0 && step%spec.SnapshotEvery == 0 {
			if err := g.snapshot(svc, simTime, step); err != nil {
				return err
			}
		}
	}
	return nil
}

// chargeOnlyCost is the per-step CPU charge when real arithmetic is
// strided out: identical to what the solvers would charge.
func (g *genx) chargeOnlyCost() float64 {
	spec := g.cfg.Workload
	var cost float64
	g.fluid.EachPane(func(p *roccom.Pane) {
		cost += float64(p.Block.NumNodes()) * spec.FluidCostPerNode
		cost += spec.BurnCostPerPane
	})
	if g.solid != nil {
		g.solid.EachPane(func(p *roccom.Pane) {
			cost += float64(p.Block.NumNodes()) * (spec.SolidCostPerNode + spec.FaceCostPerNode)
		})
	}
	return cost
}

// snapshot writes all windows into one snapshot base name through the
// loaded I/O module.
func (g *genx) snapshot(svc roccom.IOService, simTime float64, step int) error {
	base := fmt.Sprintf("%s/snap%06d", g.cfg.OutputDir, step)
	t0 := g.ctx.Clock().Now()
	if err := svc.WriteAttribute(base, g.fluid, "all", simTime, step); err != nil {
		return err
	}
	if g.solid != nil {
		if err := svc.WriteAttribute(base, g.solid, "all", simTime, step); err != nil {
			return err
		}
	}
	g.cfg.Trace.Record(g.comm.Rank(), trace.PhaseWrite, t0, g.ctx.Clock().Now())
	g.snapshots++
	return nil
}

// refine splits this rank's largest splittable fluid pane, carrying the
// node- and pane-centered data into the children — the paper's adaptive
// refinement: the number and sizes of blocks change at runtime and the
// I/O modules are unaffected.
func (g *genx) refine() error {
	var target *roccom.Pane
	g.fluid.EachPane(func(p *roccom.Pane) {
		if p.Block.Kind != mesh.Structured {
			return
		}
		if p.Block.NI < 3 && p.Block.NJ < 3 && p.Block.NK < 3 {
			return
		}
		if target == nil || p.Block.NumNodes() > target.Block.NumNodes() {
			target = p
		}
	})
	if target == nil {
		return nil
	}
	res, err := mesh.Split(target.Block, g.nextID)
	if err != nil {
		return err
	}
	g.nextID++

	type child struct {
		b *mesh.Block
		m []int
	}
	attrs := g.fluid.Attributes()
	old := target
	if err := g.fluid.DeletePane(old.ID); err != nil {
		return err
	}
	for _, c := range []child{{res.Left, res.LeftMap}, {res.Right, res.RightMap}} {
		p, err := g.fluid.RegisterPane(c.b.ID, c.b)
		if err != nil {
			return err
		}
		for _, spec := range attrs {
			src, _ := old.Array(spec.Name)
			dst, _ := p.Array(spec.Name)
			switch spec.Loc {
			case roccom.NodeLoc:
				for n, from := range c.m {
					copy(dst.F64[n*spec.NComp:(n+1)*spec.NComp], src.F64[from*spec.NComp:(from+1)*spec.NComp])
				}
			case roccom.PaneLoc:
				copy(dst.F64, src.F64)
			}
		}
	}
	return nil
}

// gatherReport reduces the per-client metrics to client rank 0.
func (g *genx) gatherReport(comm mpi.Comm, cl *rocpanda.Client, h *rochdf.Rochdf, nsrv int) (*Report, error) {
	// The services time their own read_attribute calls, so the restart
	// latency is their VisibleRead (rocman does not add its own timer on
	// top, which would double-count).
	var visW, visR, syncW float64
	var bytes int64
	switch {
	case cl != nil:
		m := cl.Metrics()
		visW, visR, syncW, bytes = m.VisibleWrite, m.VisibleRead, m.SyncWait, m.BytesOut
	case h != nil:
		m := h.Metrics()
		visW, visR, syncW, bytes = m.VisibleWrite, m.VisibleRead, m.SyncWait, m.BytesOut
	}

	buf := make([]byte, 0, 5*8)
	for _, f := range []float64{g.computeTime, visW, visR, syncW} {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
	}
	buf = binary.LittleEndian.AppendUint64(buf, uint64(bytes))
	rows := comm.Gather(0, buf)
	if comm.Rank() != 0 {
		return nil, nil
	}
	rep := &Report{
		Steps:      g.steps,
		Snapshots:  g.snapshots,
		NumClients: comm.Size(),
		NumServers: nsrv,
	}
	for _, row := range rows {
		vals := make([]float64, 4)
		for i := range vals {
			vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(row[8*i:]))
		}
		rep.ComputeTime = math.Max(rep.ComputeTime, vals[0])
		rep.VisibleWrite = math.Max(rep.VisibleWrite, vals[1])
		rep.VisibleRead = math.Max(rep.VisibleRead, vals[2])
		rep.SyncWait = math.Max(rep.SyncWait, vals[3])
		rep.BytesOut += int64(binary.LittleEndian.Uint64(row[32:]))
	}
	return rep, nil
}

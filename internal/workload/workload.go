// Package workload builds the paper's two evaluation test cases:
//
//   - LabScale (Section 7.1): the lab-scale solid rocket motor from the
//     Naval Air Warfare Center. The same fixed problem is partitioned over
//     however many compute processors are used, so total computation and
//     I/O are independent of the processor count. 200 timesteps, a
//     snapshot every 50 steps (five output phases counting the initial
//     snapshot), roughly 64 MB of output per snapshot.
//
//   - Scalability (Section 7.2): an extendible cylinder of the rocket
//     body with a fixed amount of data and work per processor, so the
//     total problem grows with the machine.
//
// Workloads separate the real mesh (laptop-scale arrays the solvers
// actually update) from the calibrated per-node CPU cost charged to the
// simulated platform clock, which represents the production problem's
// compute intensity (see DESIGN.md).
package workload

import (
	"fmt"

	"genxio/internal/mesh"
	"genxio/internal/stats"
)

// Spec describes one test case.
type Spec struct {
	Name string
	// Cylinder is the fluid mesh generator spec; the solid mesh is the
	// tetrahedralization of the same blocks.
	Cylinder mesh.CylinderSpec
	// Steps and SnapshotEvery define the run schedule.
	Steps         int
	SnapshotEvery int
	// Seed drives mesh generation.
	Seed uint64

	// Per-entity CPU costs charged per timestep (seconds), calibrated so
	// the simulated platforms reproduce the paper's computation times.
	FluidCostPerNode float64
	SolidCostPerNode float64
	FaceCostPerNode  float64
	BurnCostPerPane  float64
}

// LabScale returns the Section 7.1 test case. scale in (0,1] shrinks the
// real mesh (and therefore snapshot size and in-memory footprint)
// proportionally while increasing the per-node cost to keep the charged
// computation time fixed — scale=1 writes the paper's ~64 MB per
// snapshot; the benches use smaller scales for quick runs.
func LabScale(scale float64) Spec {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	// The block count is fixed at 2*12*16 = 384 — the paper's
	// fine-grained distribution needs many more blocks than processors
	// at every scale — and scale shrinks only the per-block node count
	// (the real array sizes). At scale 1, ~800 nodes/block gives ~310k
	// fluid nodes and, with the solid on the same nodes, ~64 MB per
	// snapshot.
	nodesPer := int(800*scale + 0.5)
	if nodesPer < 40 {
		nodesPer = 40
	}
	// Total charged compute is calibrated so that, with Turing's OS
	// noise and the partition imbalance on top, 16 processors land near
	// Table 1's 846.64 s over 200 steps.
	totalNodes := float64(384 * nodesPer)
	perStepCPU := 60.5
	fluidShare, solidShare, faceShare := 0.55, 0.40, 0.05
	return Spec{
		Name: "labscale",
		Cylinder: mesh.CylinderSpec{
			RInner: 0.15, ROuter: 0.5, Length: 2.2,
			BR: 2, BT: 12, BZ: 16,
			NodesPerBlock: nodesPer, Spread: 0.35,
		},
		Steps:            200,
		SnapshotEvery:    50,
		Seed:             20030422,
		FluidCostPerNode: perStepCPU * fluidShare / totalNodes,
		SolidCostPerNode: perStepCPU * solidShare / totalNodes,
		FaceCostPerNode:  perStepCPU * faceShare / totalNodes,
		BurnCostPerPane:  1e-5,
	}
}

// Scalability returns the Section 7.2 test case for ncompute processors:
// fixed data and work per processor. bytesPerProc controls the snapshot
// payload each compute processor contributes (the paper's test keeps this
// constant as the machine grows).
func Scalability(ncompute int, bytesPerProc int64) Spec {
	if ncompute < 1 {
		ncompute = 1
	}
	if bytesPerProc <= 0 {
		bytesPerProc = 512 << 10
	}
	// Each processor gets 4 blocks; bytes/node ≈ 200 (fluid+solid), so
	// nodes per block ≈ bytesPerProc / (200 * 4).
	nodesPer := int(bytesPerProc / 800)
	if nodesPer < 60 {
		nodesPer = 60
	}
	return Spec{
		Name: fmt.Sprintf("scalability-%d", ncompute),
		Cylinder: mesh.CylinderSpec{
			RInner: 0.15, ROuter: 0.5, Length: 0.5 + 0.1*float64(ncompute),
			BR: 1, BT: 4, BZ: ncompute,
			NodesPerBlock: nodesPer, Spread: 0, // uniform: fixed data per processor

		},
		Steps:         20,
		SnapshotEvery: 10,
		Seed:          19980701,
		// Fixed work per processor: ~1.0 CPU-second per step per proc.
		FluidCostPerNode: 1.0 * 0.55 / float64(4*nodesPer),
		SolidCostPerNode: 1.0 * 0.40 / float64(4*nodesPer),
		FaceCostPerNode:  1.0 * 0.05 / float64(4*nodesPer),
		BurnCostPerPane:  1e-5,
	}
}

// Blocks generates the fluid mesh blocks of the spec (deterministic in
// Seed) with IDs starting at 1.
func (s Spec) Blocks() ([]*mesh.Block, error) {
	return mesh.GenCylinder(s.Cylinder, 1, stats.NewRNG(s.Seed))
}

// NumSnapshots returns how many snapshots a run takes, counting the
// initial one.
func (s Spec) NumSnapshots() int {
	if s.SnapshotEvery <= 0 {
		return 1
	}
	return 1 + s.Steps/s.SnapshotEvery
}

package workload

import (
	"testing"

	"genxio/internal/mesh"
)

func TestLabScaleInvariants(t *testing.T) {
	full := LabScale(1)
	blocks, err := full.Blocks()
	if err != nil {
		t.Fatal(err)
	}
	// The paper's fine-grained distribution: many more blocks than the
	// largest processor count (64).
	if len(blocks) != 384 {
		t.Fatalf("blocks: %d, want 384", len(blocks))
	}
	sizes := map[int]bool{}
	var nodes int
	for _, b := range blocks {
		if err := b.Validate(); err != nil {
			t.Fatal(err)
		}
		sizes[b.NumNodes()] = true
		nodes += b.NumNodes()
	}
	if len(sizes) < 10 {
		t.Fatalf("only %d distinct block sizes; want irregular", len(sizes))
	}
	// ~64 MB per snapshot: fluid ~64 B/node + solid ~140 B/node.
	approxBytes := float64(nodes) * 200
	if approxBytes < 45e6 || approxBytes > 100e6 {
		t.Fatalf("snapshot estimate %.1f MB off the paper's ~64 MB", approxBytes/1e6)
	}
	if full.Steps != 200 || full.SnapshotEvery != 50 || full.NumSnapshots() != 5 {
		t.Fatalf("schedule %d/%d/%d", full.Steps, full.SnapshotEvery, full.NumSnapshots())
	}
	// Total charged CPU per step is scale-invariant.
	small := LabScale(0.25)
	sb, _ := small.Blocks()
	if len(sb) != 384 {
		t.Fatalf("small scale changed block count: %d", len(sb))
	}
	var smallNodes int
	for _, b := range sb {
		smallNodes += b.NumNodes()
	}
	fullCPU := float64(nodes) * full.FluidCostPerNode
	smallCPU := float64(smallNodes) * small.FluidCostPerNode
	if ratio := fullCPU / smallCPU; ratio < 0.95 || ratio > 1.05 {
		t.Fatalf("charged CPU not scale-invariant: ratio %.3f", ratio)
	}
}

func TestLabScaleClampsBadScale(t *testing.T) {
	for _, s := range []float64{-1, 0, 2} {
		spec := LabScale(s)
		if spec.Cylinder.NodesPerBlock != LabScale(1).Cylinder.NodesPerBlock {
			t.Fatalf("scale %v not clamped to 1", s)
		}
	}
}

func TestScalabilityFixedPerProc(t *testing.T) {
	a := Scalability(15, 512<<10)
	b := Scalability(30, 512<<10)
	ab, err := a.Blocks()
	if err != nil {
		t.Fatal(err)
	}
	bb, err := b.Blocks()
	if err != nil {
		t.Fatal(err)
	}
	if len(ab) != 4*15 || len(bb) != 4*30 {
		t.Fatalf("blocks %d/%d, want 4 per processor", len(ab), len(bb))
	}
	// Fixed data per processor: per-proc node counts equal.
	nodesOf := func(blocks []*mesh.Block) int {
		var n int
		for _, b := range blocks {
			n += b.NumNodes()
		}
		return n
	}
	perA := nodesOf(ab) / 15
	perB := nodesOf(bb) / 30
	if perA != perB {
		t.Fatalf("per-proc nodes differ: %d vs %d", perA, perB)
	}
	// Uniform block sizes (the extendible-cylinder test is regular).
	sz := ab[0].NumNodes()
	for _, blk := range ab {
		if blk.NumNodes() != sz {
			t.Fatalf("scalability blocks not uniform: %d vs %d", blk.NumNodes(), sz)
		}
	}
	// Fixed charged work per processor.
	wa := float64(perA) * a.FluidCostPerNode
	wb := float64(perB) * b.FluidCostPerNode
	if wa != wb {
		t.Fatalf("per-proc charged work differs: %v vs %v", wa, wb)
	}
	if Scalability(0, 0).Cylinder.BZ != 1 {
		t.Fatal("degenerate args not clamped")
	}
}

func TestBlocksDeterministic(t *testing.T) {
	a, _ := LabScale(0.2).Blocks()
	b, _ := LabScale(0.2).Blocks()
	for i := range a {
		if a[i].NumNodes() != b[i].NumNodes() {
			t.Fatal("workload mesh not deterministic")
		}
	}
}

// Package rochdf implements the paper's server-less individual-I/O module:
// each compute processor writes its own data blocks into its own
// scientific-format file, one file per process per snapshot. Two variants
// are provided, as in the paper:
//
//   - Rochdf (Threaded=false): the baseline — writes happen synchronously
//     inside write_attribute, so the application-visible I/O time is the
//     full file I/O time.
//
//   - T-Rochdf (Threaded=true): a single persistent background I/O thread
//     per process drains a local buffer while the main thread computes.
//     write_attribute only copies the data locally; the main thread blocks
//     at the next snapshot until the thread has finished the previous one
//     (bounded memory), and sync waits for everything to reach the
//     filesystem. The overlap is transparent: callers keep the blocking
//     interface and may reuse buffers immediately.
//
// Individual I/O avoids all communication and scales writes with the
// number of processors, but creates as many files per snapshot as
// processes — the file-management problem that motivates Rocpanda.
package rochdf

import (
	"fmt"

	"genxio/internal/hdf"
	"genxio/internal/iosched"
	"genxio/internal/metrics"
	"genxio/internal/mpi"
	"genxio/internal/roccom"
	"genxio/internal/rt"
	"genxio/internal/snapshot"
)

// Config configures a Rochdf instance.
type Config struct {
	// Profile is the scientific-library cost model (HDF4 in the paper).
	Profile hdf.CostProfile
	// Threaded selects T-Rochdf: buffer locally and write in background.
	Threaded bool
	// BufferBW is the local buffer-copy bandwidth (bytes/s) charged for
	// T-Rochdf's buffering on simulated platforms; <= 0 charges nothing.
	BufferBW float64
	// Compress stores snapshot datasets deflate-compressed.
	Compress bool
	// Metrics, if set, receives rochdf.* (or trochdf.* when Threaded)
	// counters and latency histograms. A nil registry disables recording.
	Metrics *metrics.Registry
	// RetainGenerations, when > 0, prunes committed snapshot generations
	// beyond the newest N at every Sync. 0 keeps everything.
	RetainGenerations int
}

// Metrics accumulates the per-process costs the paper reports.
type Metrics struct {
	VisibleWrite float64 // time spent inside write_attribute
	VisibleRead  float64 // time spent inside read_attribute
	SyncWait     float64 // time spent inside sync
	WriteCalls   int
	ReadCalls    int
	BytesOut     int64 // payload bytes handed to write_attribute
	FilesCreated int
}

// Rochdf is one process's individual-I/O service.
type Rochdf struct {
	rank    int
	comm    mpi.Comm
	clock   rt.Clock
	fs      rt.FS
	cfg     Config
	created map[string]bool // file names already created (append afterwards)

	// Generations written since the last Sync, in write order. The write
	// path is collective, so every rank accumulates the same list; rank 0
	// commits the manifests once all ranks agree the drain succeeded.
	pending    []pendingGen
	pendingSet map[string]bool

	// T-Rochdf state: a one-writer iosched instance is the background I/O
	// thread (Workers: 1 keeps the paper's single persistent thread and
	// its strict job order).
	eng      *iosched.Engine
	lastFile string
	closed   bool

	m  Metrics
	mx hdfMx
}

// hdfMx holds the registry handles, named rochdf.* or trochdf.* so the
// two variants stay distinguishable in one shared registry. All handles
// are nil-safe no-ops without a registry.
type hdfMx struct {
	visibleWrite *metrics.Histogram
	visibleRead  *metrics.Histogram
	syncWait     *metrics.Histogram
	drainWait    *metrics.Histogram // T-Rochdf: blocking on the I/O thread
	bgWrite      *metrics.Histogram // T-Rochdf: background file-write time
	bytesOut     *metrics.Counter
	filesCreated *metrics.Counter
}

func newHdfMx(r *metrics.Registry, threaded bool) hdfMx {
	prefix := "rochdf."
	if threaded {
		prefix = "trochdf."
	}
	mx := hdfMx{
		visibleWrite: r.Histogram(prefix+"visible_write_seconds", nil),
		visibleRead:  r.Histogram(prefix+"visible_read_seconds", nil),
		syncWait:     r.Histogram(prefix+"sync_wait_seconds", nil),
		bytesOut:     r.Counter(prefix + "bytes_out"),
		filesCreated: r.Counter(prefix + "files_created"),
	}
	if threaded {
		mx.drainWait = r.Histogram(prefix+"drain_wait_seconds", nil)
		mx.bgWrite = r.Histogram(prefix+"bg_write_seconds", nil)
	}
	return mx
}

// pendingGen is one snapshot generation awaiting manifest commit.
type pendingGen struct {
	base  string
	epoch int64
	time  float64
}

type writeJob struct {
	fname   string
	newFile bool
	sets    []roccom.IOSet
	time    float64
	step    int
}

// New returns a Rochdf service for the calling rank. With Threaded set it
// spawns the background I/O thread immediately (one persistent thread per
// process, as in the paper).
func New(ctx mpi.Ctx, cfg Config) *Rochdf {
	h := &Rochdf{
		rank:       ctx.Comm().Rank(),
		comm:       ctx.Comm(),
		clock:      ctx.Clock(),
		fs:         ctx.FS(),
		cfg:        cfg,
		created:    make(map[string]bool),
		pendingSet: make(map[string]bool),
		mx:         newHdfMx(cfg.Metrics, cfg.Threaded),
	}
	if cfg.Threaded {
		h.eng = iosched.New(ctx, iosched.Config{
			Name:    "rochdf-io",
			Workers: 1,
			// The job queue bounds buffered snapshots (a full queue blocks
			// WriteAttribute's submit), the paper's bounded-memory rule.
			QueueCap:   8,
			Policy:     iosched.Writeback{},
			FlushClass: iosched.ClassWrite,
			Metrics:    cfg.Metrics,
			OnWorkerDone: func(c iosched.Completion, _ bool) {
				if c.Task != nil {
					h.mx.bgWrite.Observe(c.T1 - c.T0)
				}
			},
		})
	}
	return h
}

// Metrics returns the accumulated costs.
func (h *Rochdf) Metrics() Metrics { return h.m }

// fileName returns this rank's file for a snapshot base name.
func (h *Rochdf) fileName(base string) string {
	return fmt.Sprintf("%s_p%05d.rhdf", base, h.rank)
}

// WriteAttribute implements roccom.IOService.
func (h *Rochdf) WriteAttribute(file string, w *roccom.Window, attr string, tm float64, step int) error {
	if h.closed {
		return fmt.Errorf("rochdf: write after Close")
	}
	t0 := h.clock.Now()
	defer func() {
		d := h.clock.Now() - t0
		h.m.VisibleWrite += d
		h.m.WriteCalls++
		h.mx.visibleWrite.Observe(d)
	}()

	fname := h.fileName(file)
	var sets []roccom.IOSet
	var bytes int64
	var err error
	w.EachPane(func(p *roccom.Pane) {
		if err != nil {
			return
		}
		var ps []roccom.IOSet
		ps, err = roccom.PaneIOSets(w, p, attr)
		for _, s := range ps {
			bytes += int64(len(s.Data))
		}
		sets = append(sets, ps...)
	})
	if err != nil {
		return err
	}
	h.m.BytesOut += bytes
	h.mx.bytesOut.Add(bytes)

	newFile := !h.created[fname]
	if newFile {
		h.created[fname] = true
		h.m.FilesCreated++
		h.mx.filesCreated.Inc()
	}
	if !h.pendingSet[file] {
		h.pendingSet[file] = true
		h.pending = append(h.pending, pendingGen{base: file, epoch: int64(step), time: tm})
	}
	job := writeJob{fname: fname, newFile: newFile, sets: sets, time: tm, step: step}

	if !h.cfg.Threaded {
		return h.writeFile(h.clock, h.fs, job)
	}

	// T-Rochdf: block until the previous snapshot is fully written, then
	// buffer locally and return. PaneIOSets already copied the data; the
	// buffering bandwidth charge models that copy on simulated platforms.
	if h.lastFile != "" && fname != h.lastFile {
		if err := h.drain(); err != nil {
			return err
		}
	}
	h.lastFile = fname
	if h.cfg.BufferBW > 0 {
		h.clock.Compute(float64(bytes) / h.cfg.BufferBW)
	}
	h.eng.Submit(&iosched.Task{
		Class: iosched.ClassWrite,
		Key:   job.fname,
		Cost:  bytes,
		Run: func(tc rt.TaskCtx, _ iosched.WorkerState) iosched.Result {
			return iosched.Result{Err: h.writeFile(tc.Clock(), tc.FS(), job)}
		},
	})
	return nil
}

// drain waits until the I/O thread has completed all outstanding jobs
// (an iosched flush barrier), recording the blocking time — the part of
// the background write the application actually sees. A write failure is
// sticky: once a background job fails, every later drain reports it, so
// no generation after the failure can commit.
func (h *Rochdf) drain() error {
	t0 := h.clock.Now()
	defer func() { h.mx.drainWait.Observe(h.clock.Now() - t0) }()
	return h.eng.Flush()
}

// writeFile writes one job's datasets into the rank's snapshot file,
// creating or appending as needed, and closes the file so its directory is
// always valid on disk.
func (h *Rochdf) writeFile(clock rt.Clock, fs rt.FS, job writeJob) error {
	var wr *hdf.Writer
	var err error
	if job.newFile {
		wr, err = hdf.Create(fs, job.fname, clock, h.cfg.Profile)
		if err == nil {
			err = wr.CreateDataset("_meta", hdf.U8, []int64{0},
				[]hdf.Attr{
					hdf.F64Attr("time", job.time),
					hdf.I32Attr("step", int32(job.step)),
					hdf.I32Attr("rank", int32(h.rank)),
				}, nil)
		}
	} else {
		wr, err = hdf.OpenAppend(fs, job.fname, clock, h.cfg.Profile)
	}
	if err != nil {
		return fmt.Errorf("rochdf: %s: %w", job.fname, err)
	}
	wr.Compress = h.cfg.Compress
	wr.Metrics = h.cfg.Metrics
	for _, s := range job.sets {
		if err := wr.CreateDataset(s.Name, s.Type, s.Dims, s.Attrs, s.Data); err != nil {
			wr.Close()
			return err
		}
	}
	return wr.Close()
}

// ReadAttribute implements roccom.IOService: restart. The window's
// registered pane IDs define which blocks this process wants; their
// contents (mesh and attributes for "all", a single attribute otherwise)
// are replaced from this rank's snapshot file, so individual-I/O restart
// requires the same process count that wrote the snapshot.
func (h *Rochdf) ReadAttribute(file string, w *roccom.Window, attr string) error {
	t0 := h.clock.Now()
	defer func() {
		d := h.clock.Now() - t0
		h.m.VisibleRead += d
		h.m.ReadCalls++
		h.mx.visibleRead.Observe(d)
	}()
	if h.cfg.Threaded {
		if err := h.drain(); err != nil {
			return err
		}
	}
	fname := h.fileName(file)
	r, err := hdf.Open(h.fs, fname, h.clock, h.cfg.Profile)
	if err != nil {
		return fmt.Errorf("rochdf: restart: %w", err)
	}
	defer r.Close()
	r.Metrics = h.cfg.Metrics

	for _, id := range w.PaneIDs() {
		prefix := roccom.PanePrefix(w.Name, id)
		dss := r.LookupPrefix(prefix)
		if len(dss) == 0 {
			return fmt.Errorf("rochdf: restart: pane %d not in %s (restart needs the writing process count)", id, fname)
		}
		if attr == "all" {
			sets := make([]roccom.IOSet, 0, len(dss))
			for _, d := range dss {
				data, err := r.ReadData(d)
				if err != nil {
					return err
				}
				sets = append(sets, roccom.IOSet{Name: d.Name, Type: d.Type, Dims: d.Dims, Attrs: d.Attrs, Data: data})
			}
			if err := w.DeletePane(id); err != nil {
				return err
			}
			if _, err := roccom.RestorePane(w, id, sets); err != nil {
				return err
			}
			continue
		}
		ds, ok := r.Lookup(prefix + attr)
		if !ok {
			return fmt.Errorf("rochdf: restart: %s%s not in %s", prefix, attr, fname)
		}
		data, err := r.ReadData(ds)
		if err != nil {
			return err
		}
		p, _ := w.Pane(id)
		a, ok := p.Array(attr)
		if !ok {
			return fmt.Errorf("rochdf: window %q has no attribute %q", w.Name, attr)
		}
		if err := a.SetBytes(data); err != nil {
			return err
		}
	}
	return nil
}

// Sync implements roccom.IOService: it blocks until all buffered output
// has reached the filesystem, then commits the written generations'
// manifests. Sync is collective: all ranks agree (via an allreduce over
// their drain outcomes) before rank 0 writes the commit records, so a
// failure anywhere leaves every generation visibly uncommitted.
func (h *Rochdf) Sync() error {
	t0 := h.clock.Now()
	defer func() {
		d := h.clock.Now() - t0
		h.m.SyncWait += d
		h.mx.syncWait.Observe(d)
	}()
	var err error
	if h.cfg.Threaded {
		err = h.drain()
	}
	bad := 0.0
	if err != nil {
		bad = 1
	}
	if h.comm.AllreduceMax(bad) > 0 {
		// Someone failed: no manifests. Pending stays, so a later
		// successful Sync can still commit the generations.
		return err
	}
	return h.commitPending()
}

// commitPending writes the manifest commit record for every generation
// written since the last successful Sync and prunes old generations past
// the retention limit. Collective: rank 0 does the filesystem work, the
// trailing barrier keeps other ranks from racing into a manifest-driven
// restore before the commit records exist.
func (h *Rochdf) commitPending() error {
	var firstErr error
	if h.comm.Rank() == 0 {
		for _, g := range h.pending {
			if _, err := snapshot.Commit(h.fs, g.base, g.epoch, g.time); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("rochdf: commit %s: %w", g.base, err)
			}
		}
		if firstErr == nil && h.cfg.RetainGenerations > 0 && len(h.pending) > 0 {
			prefix := genPrefix(h.pending[len(h.pending)-1].base)
			if _, err := snapshot.Prune(h.fs, prefix, h.cfg.RetainGenerations); err != nil {
				firstErr = fmt.Errorf("rochdf: prune %s: %w", prefix, err)
			}
		}
	}
	h.pending = nil
	h.pendingSet = make(map[string]bool)
	h.comm.Barrier()
	return firstErr
}

// genPrefix returns the directory prefix shared by a base's generations.
func genPrefix(base string) string {
	for i := len(base) - 1; i >= 0; i-- {
		if base[i] == '/' {
			return base[:i+1]
		}
	}
	return ""
}

// Close drains outstanding output and stops the I/O thread. The service
// is unusable afterwards.
func (h *Rochdf) Close() error {
	if h.closed {
		return nil
	}
	var err error
	if h.cfg.Threaded {
		err = h.drain()
		h.eng.Close()
	}
	h.closed = true
	return err
}

// Module returns a roccom.Module that exposes this service as the
// interchangeable I/O module named at load time (e.g. "RochdfIO").
func (h *Rochdf) Module() roccom.Module { return &module{svc: h} }

type module struct {
	svc *Rochdf
}

func (m *module) Load(rc *roccom.Roccom, name string) error {
	if _, err := rc.NewWindow(name); err != nil {
		return err
	}
	return roccom.RegisterIOService(rc, name, m.svc)
}

func (m *module) Unload(rc *roccom.Roccom, name string) error {
	if err := m.svc.Close(); err != nil {
		return err
	}
	return rc.DeleteWindow(name)
}

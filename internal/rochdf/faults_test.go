package rochdf

// Fault-injection tests: disk-full and short-write errors injected via
// internal/faults must surface through both Rochdf variants. The baseline
// fails the faulting WriteAttribute directly; T-Rochdf's background thread
// hits the error asynchronously, so it must surface at the next snapshot's
// WriteAttribute (which drains the previous one) or at Sync.

import (
	"errors"
	"testing"

	"genxio/internal/faults"
	"genxio/internal/hdf"
	"genxio/internal/mpi"
	"genxio/internal/rt"
)

func TestThreadedDrainErrorSurfacesAtNextSnapshot(t *testing.T) {
	// The first write touching rank 0's s0 file fails (disk full). The
	// faulting snapshot's WriteAttribute must still return nil — the write
	// only buffers — and the error must surface when the next snapshot
	// blocks on the previous one's drain.
	plan := faults.NewFSPlan(1, faults.FSRule{
		Op: faults.OpWrite, PathPrefix: "tr/s0_p00000", Nth: 1, Msg: "disk full",
	})
	fs := faults.WrapFS(rt.NewMemFS(), plan)
	world := mpi.NewChanWorld(fs, 1)
	err := world.Run(1, func(ctx mpi.Ctx) error {
		h := New(ctx, Config{Profile: hdf.NullProfile(), Threaded: true})
		defer h.Close()
		_, w := buildWindow(t, ctx.Comm().Rank(), 2)
		if err := h.WriteAttribute("tr/s0", w, "all", 0, 0); err != nil {
			return errors.New("faulting snapshot's write failed synchronously: " + err.Error())
		}
		err := h.WriteAttribute("tr/s1", w, "all", 1, 1)
		if err == nil {
			return errors.New("drain error never surfaced at next snapshot")
		}
		if !errors.Is(err, faults.ErrInjected) {
			return errors.New("unexpected error: " + err.Error())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Trips()) == 0 {
		t.Fatal("fault plan never tripped")
	}
}

func TestThreadedDrainErrorSurfacesAtSync(t *testing.T) {
	// Fault on the last snapshot before sync: no later WriteAttribute
	// drains it, so Sync is the barrier where the error must appear.
	plan := faults.NewFSPlan(1, faults.FSRule{
		Op: faults.OpWrite, PathPrefix: "ts/s1_p00000", Nth: 1, Msg: "disk full",
	})
	fs := faults.WrapFS(rt.NewMemFS(), plan)
	world := mpi.NewChanWorld(fs, 1)
	err := world.Run(1, func(ctx mpi.Ctx) error {
		h := New(ctx, Config{Profile: hdf.NullProfile(), Threaded: true})
		defer h.Close()
		_, w := buildWindow(t, ctx.Comm().Rank(), 2)
		if err := h.WriteAttribute("ts/s0", w, "all", 0, 0); err != nil {
			return err
		}
		if err := h.WriteAttribute("ts/s1", w, "all", 1, 1); err != nil {
			return errors.New("healthy s0 drain reported an error: " + err.Error())
		}
		if err := h.Sync(); !errors.Is(err, faults.ErrInjected) {
			return errors.New("sync did not surface the drain error")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestUnthreadedWriteFailsSynchronously(t *testing.T) {
	// The baseline variant writes inside write_attribute, so the injected
	// failure must come back from the faulting call itself.
	plan := faults.NewFSPlan(1, faults.FSRule{
		Op: faults.OpWrite, PathPrefix: "uw/", Nth: 1, Msg: "disk full",
	})
	fs := faults.WrapFS(rt.NewMemFS(), plan)
	world := mpi.NewChanWorld(fs, 1)
	err := world.Run(1, func(ctx mpi.Ctx) error {
		h := New(ctx, Config{Profile: hdf.NullProfile()})
		defer h.Close()
		_, w := buildWindow(t, ctx.Comm().Rank(), 2)
		if err := h.WriteAttribute("uw/s0", w, "all", 0, 0); !errors.Is(err, faults.ErrInjected) {
			return errors.New("synchronous write did not fail with the injected error")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

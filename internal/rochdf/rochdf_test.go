package rochdf

import (
	"fmt"
	"strings"
	"testing"

	"genxio/internal/cluster"
	"genxio/internal/hdf"
	"genxio/internal/mesh"
	"genxio/internal/mpi"
	"genxio/internal/roccom"
	"genxio/internal/rt"
	"genxio/internal/stats"
)

// buildWindow creates a "fluid" window with nblocks panes on this rank,
// with deterministic data derived from the rank.
func buildWindow(t testing.TB, rank, nblocks int) (*roccom.Roccom, *roccom.Window) {
	rc := roccom.New()
	w, err := rc.NewWindow("fluid")
	if err != nil {
		t.Fatal(err)
	}
	w.NewAttribute(roccom.AttrSpec{Name: "pressure", Loc: roccom.NodeLoc, Type: hdf.F64, NComp: 1})
	w.NewAttribute(roccom.AttrSpec{Name: "velocity", Loc: roccom.NodeLoc, Type: hdf.F64, NComp: 3})
	blocks, err := mesh.GenCylinder(mesh.CylinderSpec{
		RInner: 0.1, ROuter: 0.4, Length: 1,
		BR: 1, BT: nblocks, BZ: 1, NodesPerBlock: 60, Spread: 0.2,
	}, 100*rank+1, stats.NewRNG(uint64(rank)+7))
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range blocks {
		p, err := w.RegisterPane(b.ID, b)
		if err != nil {
			t.Fatal(err)
		}
		pr, _ := p.Array("pressure")
		for i := range pr.F64 {
			pr.F64[i] = float64(rank*1000+b.ID) + float64(i)*0.01
		}
	}
	return rc, w
}

// checkRestored verifies that a freshly built window restored from file
// matches the deterministic fill of buildWindow.
func checkRestored(rank int, w *roccom.Window) error {
	for _, id := range w.PaneIDs() {
		p, _ := w.Pane(id)
		pr, _ := p.Array("pressure")
		for i := range pr.F64 {
			want := float64(rank*1000+id) + float64(i)*0.01
			if pr.F64[i] != want {
				return fmt.Errorf("rank %d pane %d pressure[%d] = %v, want %v", rank, id, i, pr.F64[i], want)
			}
		}
	}
	return nil
}

func runRochdf(t *testing.T, threaded bool) {
	t.Helper()
	fs := rt.NewMemFS()
	world := mpi.NewChanWorld(fs, 1)
	const nranks = 4
	err := world.Run(nranks, func(ctx mpi.Ctx) error {
		rank := ctx.Comm().Rank()
		_, w := buildWindow(t, rank, 3)
		h := New(ctx, Config{Profile: hdf.NullProfile(), Threaded: threaded})
		if err := h.WriteAttribute("out/snap0000", w, "all", 0.0, 0); err != nil {
			return err
		}
		// Second window write into the same snapshot (multi-module).
		if err := h.WriteAttribute("out/snap0000", w, "pressure", 0.0, 0); err == nil {
			// duplicate dataset names are an error; the module must
			// surface it on the write or at sync.
			if err2 := h.Sync(); err2 == nil {
				return fmt.Errorf("duplicate datasets accepted")
			}
		}
		return h.Close()
	})
	// The duplicate write makes some rank error out; that's expected.
	// Run again cleanly.
	fs = rt.NewMemFS()
	world = mpi.NewChanWorld(fs, 1)
	err = world.Run(nranks, func(ctx mpi.Ctx) error {
		rank := ctx.Comm().Rank()
		_, w := buildWindow(t, rank, 3)
		h := New(ctx, Config{Profile: hdf.NullProfile(), Threaded: threaded})
		for snap := 0; snap < 3; snap++ {
			base := fmt.Sprintf("out/snap%04d", snap)
			if err := h.WriteAttribute(base, w, "all", float64(snap)*0.1, snap*50); err != nil {
				return err
			}
		}
		if err := h.Sync(); err != nil {
			return err
		}
		m := h.Metrics()
		if m.WriteCalls != 3 || m.FilesCreated != 3 || m.BytesOut == 0 {
			return fmt.Errorf("metrics %+v", m)
		}
		if err := h.Close(); err != nil {
			return err
		}

		// Restart from the last snapshot into a fresh window with the
		// same pane IDs but zeroed data.
		_, w2 := buildWindow(t, rank, 3)
		w2.EachPane(func(p *roccom.Pane) {
			pr, _ := p.Array("pressure")
			for i := range pr.F64 {
				pr.F64[i] = 0
			}
		})
		ctx2 := ctx
		h2 := New(ctx2, Config{Profile: hdf.NullProfile()})
		if err := h2.ReadAttribute("out/snap0002", w2, "all"); err != nil {
			return err
		}
		return checkRestored(rank, w2)
	})
	if err != nil {
		t.Fatal(err)
	}
	// One file per rank per snapshot (plus the commit manifest).
	names, _ := fs.List("out/snap0002")
	var rhdf []string
	manifests := 0
	for _, n := range names {
		if strings.HasSuffix(n, ".rhdf") {
			rhdf = append(rhdf, n)
		} else if strings.HasSuffix(n, ".manifest") {
			manifests++
		}
	}
	if len(rhdf) != nranks {
		t.Fatalf("snapshot has %d files, want %d: %v", len(rhdf), nranks, names)
	}
	if manifests != 1 {
		t.Fatalf("snapshot has %d commit manifests, want 1: %v", manifests, names)
	}
}

func TestRochdfWriteRestart(t *testing.T)  { runRochdf(t, false) }
func TestTRochdfWriteRestart(t *testing.T) { runRochdf(t, true) }

func TestSingleAttributeRead(t *testing.T) {
	fs := rt.NewMemFS()
	world := mpi.NewChanWorld(fs, 1)
	err := world.Run(2, func(ctx mpi.Ctx) error {
		rank := ctx.Comm().Rank()
		_, w := buildWindow(t, rank, 2)
		h := New(ctx, Config{Profile: hdf.NullProfile()})
		if err := h.WriteAttribute("s", w, "all", 0, 0); err != nil {
			return err
		}
		// Zero just the pressure, then read only pressure back.
		w.EachPane(func(p *roccom.Pane) {
			pr, _ := p.Array("pressure")
			for i := range pr.F64 {
				pr.F64[i] = 0
			}
		})
		if err := h.ReadAttribute("s", w, "pressure"); err != nil {
			return err
		}
		return checkRestored(rank, w)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReadMissingFileFails(t *testing.T) {
	world := mpi.NewChanWorld(rt.NewMemFS(), 1)
	err := world.Run(1, func(ctx mpi.Ctx) error {
		_, w := buildWindow(t, 0, 1)
		h := New(ctx, Config{Profile: hdf.NullProfile()})
		if err := h.ReadAttribute("absent", w, "all"); err == nil {
			return fmt.Errorf("missing file accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRestartNeedsSameProcessCount(t *testing.T) {
	fs := rt.NewMemFS()
	// Write with 2 ranks.
	world := mpi.NewChanWorld(fs, 1)
	err := world.Run(2, func(ctx mpi.Ctx) error {
		_, w := buildWindow(t, ctx.Comm().Rank(), 2)
		h := New(ctx, Config{Profile: hdf.NullProfile()})
		return h.WriteAttribute("s", w, "all", 0, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	// Restart with 3 ranks: rank 2's file is missing.
	world = mpi.NewChanWorld(fs, 1)
	err = world.Run(3, func(ctx mpi.Ctx) error {
		rank := ctx.Comm().Rank()
		_, w := buildWindow(t, rank, 2)
		h := New(ctx, Config{Profile: hdf.NullProfile()})
		err := h.ReadAttribute("s", w, "all")
		if rank == 2 && err == nil {
			return fmt.Errorf("rank 2 restart should fail")
		}
		if rank < 2 && err != nil {
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWriteAfterCloseFails(t *testing.T) {
	world := mpi.NewChanWorld(rt.NewMemFS(), 1)
	err := world.Run(1, func(ctx mpi.Ctx) error {
		_, w := buildWindow(t, 0, 1)
		h := New(ctx, Config{Profile: hdf.NullProfile(), Threaded: true})
		if err := h.WriteAttribute("s", w, "all", 0, 0); err != nil {
			return err
		}
		if err := h.Close(); err != nil {
			return err
		}
		if err := h.Close(); err != nil { // idempotent
			return err
		}
		if err := h.WriteAttribute("s2", w, "all", 0, 0); err == nil {
			return fmt.Errorf("write after close accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestModuleIntegration(t *testing.T) {
	world := mpi.NewChanWorld(rt.NewMemFS(), 1)
	err := world.Run(2, func(ctx mpi.Ctx) error {
		rc, w := buildWindow(t, ctx.Comm().Rank(), 2)
		h := New(ctx, Config{Profile: hdf.NullProfile(), Threaded: true})
		if err := rc.LoadModule(h.Module(), "RochdfIO"); err != nil {
			return err
		}
		svc, err := roccom.LoadedIO(rc, "RochdfIO")
		if err != nil {
			return err
		}
		if err := svc.WriteAttribute("m", w, "all", 0.1, 10); err != nil {
			return err
		}
		if err := svc.Sync(); err != nil {
			return err
		}
		return rc.UnloadModule("RochdfIO")
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestOverlapOnSimPlatform is the paper's core T-Rochdf claim: on a
// simulated platform the visible write time of T-Rochdf is tiny compared
// to non-threaded Rochdf writing the same data, while both eventually put
// the same bytes on disk.
func TestOverlapOnSimPlatform(t *testing.T) {
	run := func(threaded bool) (visible, total float64, bytes int64) {
		plat := cluster.Turing()
		plat.NoiseFrac = 0
		w := cluster.NewWorld(plat, 11)
		var vis float64
		err := w.Run(4, func(ctx mpi.Ctx) error {
			_, win := buildWindow(t, ctx.Comm().Rank(), 4)
			h := New(ctx, Config{
				Profile:  hdf.HDF4Profile(),
				Threaded: threaded,
				BufferBW: plat.MemcpyBW,
			})
			for snap := 0; snap < 3; snap++ {
				if err := h.WriteAttribute(fmt.Sprintf("snap%02d", snap), win, "all", 0, snap); err != nil {
					return err
				}
				// Computation phase between snapshots.
				ctx.Clock().Compute(2.0)
			}
			if err := h.Sync(); err != nil {
				return err
			}
			if ctx.Comm().Rank() == 0 {
				vis = h.Metrics().VisibleWrite
			}
			return h.Close()
		})
		if err != nil {
			t.Fatal(err)
		}
		return vis, w.VirtualTime(), w.FSModel().BytesWritten()
	}
	visPlain, totalPlain, bytesPlain := run(false)
	visThr, totalThr, bytesThr := run(true)
	if visThr > visPlain/10 {
		t.Fatalf("T-Rochdf visible %.4fs vs Rochdf %.4fs; want >=10x reduction", visThr, visPlain)
	}
	if bytesThr != bytesPlain {
		t.Fatalf("bytes written differ: %d vs %d", bytesThr, bytesPlain)
	}
	if totalThr >= totalPlain {
		t.Fatalf("total time with overlap %.3fs should beat synchronous %.3fs", totalThr, totalPlain)
	}
}

// TestThreadedBlocksAtNextSnapshot checks the bounded-memory rule: the
// main thread must wait for the previous snapshot before buffering the
// next one, so with zero compute between snapshots the visible time of the
// second write includes the first write's disk time.
func TestThreadedBlocksAtNextSnapshot(t *testing.T) {
	plat := cluster.Turing()
	plat.NoiseFrac = 0
	w := cluster.NewWorld(plat, 3)
	err := w.Run(1, func(ctx mpi.Ctx) error {
		_, win := buildWindow(t, 0, 4)
		h := New(ctx, Config{Profile: hdf.NullProfile(), Threaded: true, BufferBW: plat.MemcpyBW})
		t0 := ctx.Clock().Now()
		if err := h.WriteAttribute("a", win, "all", 0, 0); err != nil {
			return err
		}
		first := ctx.Clock().Now() - t0
		t1 := ctx.Clock().Now()
		if err := h.WriteAttribute("b", win, "all", 0, 1); err != nil {
			return err
		}
		second := ctx.Clock().Now() - t1
		if second < 5*first {
			return fmt.Errorf("second write (%.5fs) should have blocked on the first's disk I/O (first %.5fs)", second, first)
		}
		return h.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFileNamesContainRank(t *testing.T) {
	fs := rt.NewMemFS()
	world := mpi.NewChanWorld(fs, 1)
	err := world.Run(3, func(ctx mpi.Ctx) error {
		_, w := buildWindow(t, ctx.Comm().Rank(), 1)
		h := New(ctx, Config{Profile: hdf.NullProfile()})
		return h.WriteAttribute("base", w, "all", 0, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	names, _ := fs.List("base")
	if len(names) != 3 {
		t.Fatalf("files: %v", names)
	}
	for i, n := range names {
		if !strings.Contains(n, fmt.Sprintf("_p%05d", i)) {
			t.Fatalf("file %q lacks rank suffix", n)
		}
	}
}

package sim

// Queue is a bounded FIFO connecting processes of one environment — the
// simulated counterpart of a buffered Go channel. It backs the background
// I/O thread of T-Rochdf in simulation.
type Queue struct {
	env    *Env
	name   string
	cap    int
	items  []interface{}
	closed bool
	putW   []*Proc
	getW   []*Proc
}

// NewQueue returns a queue with the given capacity (>= 1).
func (e *Env) NewQueue(name string, capacity int) *Queue {
	if capacity < 1 {
		capacity = 1
	}
	return &Queue{env: e, name: name, cap: capacity}
}

// Put appends v, blocking the calling process while the queue is full.
// Put on a closed queue panics, matching channel semantics.
func (q *Queue) Put(p *Proc, v interface{}) {
	for len(q.items) >= q.cap && !q.closed {
		q.putW = append(q.putW, p)
		p.park("queue-full:" + q.name)
	}
	if q.closed {
		panic("sim: Put on closed queue " + q.name)
	}
	q.items = append(q.items, v)
	q.wakeOneGetter()
}

// Get removes and returns the head item, blocking while the queue is empty
// and open. It returns (nil, false) once the queue is closed and drained.
func (q *Queue) Get(p *Proc) (interface{}, bool) {
	for len(q.items) == 0 && !q.closed {
		q.getW = append(q.getW, p)
		p.park("queue-empty:" + q.name)
	}
	if len(q.items) == 0 {
		return nil, false
	}
	v := q.items[0]
	q.items = q.items[1:]
	q.wakeOnePutter()
	return v, true
}

// TryGet removes and returns the head item without ever parking the
// calling process: (nil, false) when the queue is empty, whether open or
// closed.
func (q *Queue) TryGet(p *Proc) (interface{}, bool) {
	if len(q.items) == 0 {
		return nil, false
	}
	v := q.items[0]
	q.items = q.items[1:]
	q.wakeOnePutter()
	return v, true
}

// Close marks the queue closed, waking all blocked processes. Further Gets
// drain remaining items and then report closure.
func (q *Queue) Close() {
	if q.closed {
		return
	}
	q.closed = true
	for _, p := range q.putW {
		q.env.schedule(p, q.env.now)
	}
	for _, p := range q.getW {
		q.env.schedule(p, q.env.now)
	}
	q.putW, q.getW = nil, nil
}

// Len returns the number of queued items.
func (q *Queue) Len() int { return len(q.items) }

func (q *Queue) wakeOneGetter() {
	if len(q.getW) > 0 {
		p := q.getW[0]
		q.getW = q.getW[1:]
		q.env.schedule(p, q.env.now)
	}
}

func (q *Queue) wakeOnePutter() {
	if len(q.putW) > 0 {
		p := q.putW[0]
		q.putW = q.putW[1:]
		q.env.schedule(p, q.env.now)
	}
}

package sim

// Resource is a FCFS capacity-constrained server, used to model contended
// hardware: NICs, memory buses, disks, file-server queues. A process
// acquires one unit of capacity, holds it for some virtual time, and
// releases it; excess requests queue in arrival order.
type Resource struct {
	env   *Env
	name  string
	cap   int
	inUse int
	queue []*Proc

	// accounting
	busyTime  float64 // unit-seconds of held capacity
	lastStamp float64
	acquires  int64
	waitTime  float64 // total queueing delay experienced
}

// NewResource returns a resource with the given capacity (>= 1).
func (e *Env) NewResource(name string, capacity int) *Resource {
	if capacity < 1 {
		capacity = 1
	}
	return &Resource{env: e, name: name, cap: capacity}
}

// Name returns the resource name.
func (r *Resource) Name() string { return r.name }

// Capacity returns the resource capacity.
func (r *Resource) Capacity() int { return r.cap }

// InUse returns the number of capacity units currently held.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen returns the number of processes waiting to acquire.
func (r *Resource) QueueLen() int { return len(r.queue) }

func (r *Resource) stamp() {
	now := r.env.now
	r.busyTime += float64(r.inUse) * (now - r.lastStamp)
	r.lastStamp = now
}

// Acquire blocks the calling process until one unit of capacity is free and
// takes it.
func (r *Resource) Acquire(p *Proc) {
	t0 := r.env.now
	if r.inUse < r.cap && len(r.queue) == 0 {
		r.stamp()
		r.inUse++
		r.acquires++
		return
	}
	r.queue = append(r.queue, p)
	p.park("resource:" + r.name)
	// We were woken by Release, which already granted us the unit.
	r.waitTime += r.env.now - t0
	r.acquires++
}

// Release returns one unit of capacity, handing it to the head of the queue
// if any.
func (r *Resource) Release() {
	r.stamp()
	if len(r.queue) > 0 {
		// Transfer the unit directly to the next waiter; inUse is
		// unchanged net of the release+grant.
		next := r.queue[0]
		r.queue = r.queue[1:]
		r.env.schedule(next, r.env.now)
		return
	}
	r.inUse--
	if r.inUse < 0 {
		panic("sim: Release of " + r.name + " without Acquire")
	}
}

// Use acquires the resource, holds it for d seconds of virtual time, and
// releases it. It is the common pattern for charging work to contended
// hardware.
func (r *Resource) Use(p *Proc, d float64) {
	r.Acquire(p)
	p.Wait(d)
	r.Release()
}

// BusyTime returns the cumulative unit-seconds the resource has been held,
// up to the current virtual time.
func (r *Resource) BusyTime() float64 {
	r.stamp()
	return r.busyTime
}

// Utilization returns BusyTime divided by capacity*elapsed, in [0,1].
func (r *Resource) Utilization() float64 {
	if r.env.now == 0 {
		return 0
	}
	return r.BusyTime() / (float64(r.cap) * r.env.now)
}

// AvgWait returns the average queueing delay per acquire, in seconds.
func (r *Resource) AvgWait() float64 {
	if r.acquires == 0 {
		return 0
	}
	return r.waitTime / float64(r.acquires)
}

package sim

// Event is a one-shot condition that processes can wait on. Once triggered
// it stays triggered; later waits return immediately. The optional value
// set at trigger time is delivered to every waiter.
type Event struct {
	env     *Env
	name    string
	fired   bool
	value   interface{}
	waiters []*Proc
}

// NewEvent returns an untriggered event.
func (e *Env) NewEvent(name string) *Event {
	return &Event{env: e, name: name}
}

// Fired reports whether the event has been triggered.
func (ev *Event) Fired() bool { return ev.fired }

// Value returns the value the event was triggered with, or nil.
func (ev *Event) Value() interface{} { return ev.value }

// Trigger fires the event with value v, waking every waiting process at the
// current virtual time. Triggering an already-fired event is a no-op.
func (ev *Event) Trigger(v interface{}) {
	if ev.fired {
		return
	}
	ev.fired = true
	ev.value = v
	for _, p := range ev.waiters {
		ev.env.schedule(p, ev.env.now)
	}
	ev.waiters = nil
}

// WaitEvent blocks the calling process until the event fires and returns the
// trigger value. If the event has already fired it returns immediately.
func (p *Proc) WaitEvent(ev *Event) interface{} {
	if ev.fired {
		return ev.value
	}
	ev.waiters = append(ev.waiters, p)
	p.park("event:" + ev.name)
	return ev.value
}

// Counter is a countdown latch: processes wait until Add has been called
// down to zero. It is used for barrier-style synchronization.
type Counter struct {
	env  *Env
	name string
	n    int
	ev   *Event
}

// NewCounter returns a latch that opens after n calls to Done.
func (e *Env) NewCounter(name string, n int) *Counter {
	c := &Counter{env: e, name: name, n: n, ev: e.NewEvent(name)}
	if n <= 0 {
		c.ev.Trigger(nil)
	}
	return c
}

// Done decrements the latch; the last decrement releases all waiters.
func (c *Counter) Done() {
	c.n--
	if c.n <= 0 {
		c.ev.Trigger(nil)
	}
}

// WaitCounter blocks until the latch reaches zero.
func (p *Proc) WaitCounter(c *Counter) { p.WaitEvent(c.ev) }

package sim

// Mailbox is an unbounded FIFO of messages with predicate matching, the
// building block for MPI-style tagged receive and probe. Messages are
// delivered with Put and retrieved in FIFO order among those matching a
// predicate.
type Mailbox struct {
	env     *Env
	name    string
	queue   []interface{}
	waiters []*mboxWaiter
}

type mboxWaiter struct {
	p    *Proc
	pred func(interface{}) bool
	take bool // true: Get (consume); false: Probe (peek)
	val  interface{}
}

// NewMailbox returns an empty mailbox.
func (e *Env) NewMailbox(name string) *Mailbox {
	return &Mailbox{env: e, name: name}
}

// Len returns the number of queued (undelivered) messages.
func (m *Mailbox) Len() int { return len(m.queue) }

// Put deposits message v. If a blocked Get matches, the message is handed
// to it directly; matching Probes are woken but do not consume it. Put
// never blocks.
func (m *Mailbox) Put(v interface{}) {
	consumed := false
	kept := m.waiters[:0]
	for i, w := range m.waiters {
		if consumed || !w.pred(v) {
			kept = append(kept, w)
			continue
		}
		w.val = v
		m.env.schedule(w.p, m.env.now)
		if w.take {
			consumed = true
			kept = append(kept, m.waiters[i+1:]...)
			break
		}
	}
	m.waiters = kept
	if !consumed {
		m.queue = append(m.queue, v)
	}
}

// Get removes and returns the first queued message matching pred, blocking
// the calling process until one is available.
func (m *Mailbox) Get(p *Proc, pred func(interface{}) bool) interface{} {
	for i, v := range m.queue {
		if pred(v) {
			m.queue = append(m.queue[:i], m.queue[i+1:]...)
			return v
		}
	}
	w := &mboxWaiter{p: p, pred: pred, take: true}
	m.waiters = append(m.waiters, w)
	p.park("recv:" + m.name)
	return w.val
}

// Probe blocks until a message matching pred is present and returns it
// without removing it from the mailbox.
func (m *Mailbox) Probe(p *Proc, pred func(interface{}) bool) interface{} {
	for _, v := range m.queue {
		if pred(v) {
			return v
		}
	}
	w := &mboxWaiter{p: p, pred: pred, take: false}
	m.waiters = append(m.waiters, w)
	p.park("probe:" + m.name)
	return w.val
}

// TryProbe returns the first queued message matching pred without removing
// it, or (nil, false) if none is queued. It never blocks.
func (m *Mailbox) TryProbe(pred func(interface{}) bool) (interface{}, bool) {
	for _, v := range m.queue {
		if pred(v) {
			return v, true
		}
	}
	return nil, false
}

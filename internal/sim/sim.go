// Package sim provides a deterministic, process-oriented discrete-event
// simulation kernel with virtual time.
//
// Each simulated process is a goroutine, but exactly one process runs at a
// time: the scheduler resumes the process with the earliest pending wakeup,
// waits for it to block (on a timed Wait, an Event, a Resource, or a
// Mailbox) or to finish, and then advances virtual time to the next wakeup.
// All ties are broken by sequence number, so runs are fully deterministic.
//
// The kernel is the substrate for the simulated cluster platforms used to
// reproduce the paper's evaluation: network links, disks, and file servers
// are modelled as Resources, and message passing as matched Mailboxes.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
)

// Env is a discrete-event simulation environment. The zero value is not
// usable; create one with NewEnv.
type Env struct {
	now     float64
	seq     int64
	cal     calendar
	yield   chan struct{} // signalled when the running process parks or exits
	live    int           // non-daemon processes not yet finished
	procs   map[*Proc]struct{}
	running *Proc
	stopped bool
}

// NewEnv returns an empty environment at virtual time zero.
func NewEnv() *Env {
	return &Env{
		yield: make(chan struct{}),
		procs: make(map[*Proc]struct{}),
	}
}

// Now returns the current virtual time in seconds.
func (e *Env) Now() float64 { return e.now }

// Proc is a simulated process. A Proc may only call its blocking methods
// (Wait, WaitEvent, ...) from its own goroutine while it is the running
// process.
type Proc struct {
	env    *Env
	name   string
	resume chan struct{}
	daemon bool
	done   bool
	// block describes what the process is currently blocked on, for
	// deadlock reports.
	block string
}

// Name returns the process name given at spawn time.
func (p *Proc) Name() string { return p.name }

// Env returns the environment the process belongs to.
func (p *Proc) Env() *Env { return p.env }

// entry is a calendar entry: wake proc p at time t.
type entry struct {
	t   float64
	seq int64
	p   *Proc
}

type calendar []entry

func (c calendar) Len() int { return len(c) }
func (c calendar) Less(i, j int) bool {
	if c[i].t != c[j].t {
		return c[i].t < c[j].t
	}
	return c[i].seq < c[j].seq
}
func (c calendar) Swap(i, j int)       { c[i], c[j] = c[j], c[i] }
func (c *calendar) Push(x interface{}) { *c = append(*c, x.(entry)) }
func (c *calendar) Pop() interface{} {
	old := *c
	n := len(old)
	x := old[n-1]
	*c = old[:n-1]
	return x
}

func (e *Env) schedule(p *Proc, t float64) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.cal, entry{t: t, seq: e.seq, p: p})
}

// Spawn creates a process named name running fn and schedules it to start at
// the current virtual time. It may be called before Run or from a running
// process.
func (e *Env) Spawn(name string, fn func(p *Proc)) *Proc {
	return e.spawn(name, fn, false)
}

// SpawnDaemon creates a daemon process. Daemon processes do not keep Run
// alive: the simulation ends when all non-daemon processes have finished,
// abandoning any daemons still blocked.
func (e *Env) SpawnDaemon(name string, fn func(p *Proc)) *Proc {
	return e.spawn(name, fn, true)
}

func (e *Env) spawn(name string, fn func(p *Proc), daemon bool) *Proc {
	p := &Proc{env: e, name: name, resume: make(chan struct{}), daemon: daemon}
	e.procs[p] = struct{}{}
	if !daemon {
		e.live++
	}
	go func() {
		<-p.resume // wait for the scheduler to start us
		fn(p)
		p.done = true
		delete(e.procs, p)
		if !p.daemon {
			e.live--
		}
		e.yield <- struct{}{}
	}()
	e.schedule(p, e.now)
	return p
}

// park blocks the calling process and hands control back to the scheduler.
// The process resumes when the scheduler sends on p.resume.
func (p *Proc) park(what string) {
	p.block = what
	p.env.yield <- struct{}{}
	<-p.resume
	p.block = ""
}

// Wait advances the process's local time by d seconds of virtual time.
// Negative or NaN durations are treated as zero.
func (p *Proc) Wait(d float64) {
	if d < 0 || math.IsNaN(d) {
		d = 0
	}
	p.env.schedule(p, p.env.now+d)
	p.park(fmt.Sprintf("wait(%g)", d))
}

// Yield gives other processes scheduled at the current time a chance to run.
func (p *Proc) Yield() { p.Wait(0) }

// DeadlockError reports that the simulation cannot make progress: the
// calendar is empty but non-daemon processes remain blocked.
type DeadlockError struct {
	Time    float64
	Blocked []string // "name: what" for each blocked process
}

func (d *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at t=%g, %d blocked: %v", d.Time, len(d.Blocked), d.Blocked)
}

// Run executes the simulation until every non-daemon process has finished.
// It returns a *DeadlockError if no process can make progress, and nil on
// normal completion. Run must be called at most once per Env.
func (e *Env) Run() error {
	if e.stopped {
		return fmt.Errorf("sim: Run called twice")
	}
	for e.live > 0 {
		if e.cal.Len() == 0 {
			e.stopped = true
			return e.deadlock()
		}
		ent := heap.Pop(&e.cal).(entry)
		if ent.p.done {
			continue
		}
		e.now = ent.t
		e.running = ent.p
		ent.p.resume <- struct{}{}
		<-e.yield
		e.running = nil
	}
	e.stopped = true
	return nil
}

func (e *Env) deadlock() error {
	var blocked []string
	for p := range e.procs {
		if !p.daemon {
			blocked = append(blocked, p.name+": "+p.block)
		}
	}
	sort.Strings(blocked)
	return &DeadlockError{Time: e.now, Blocked: blocked}
}

package sim

import (
	"fmt"
	"strings"
	"testing"
)

func TestWaitAdvancesTime(t *testing.T) {
	env := NewEnv()
	var at []float64
	env.Spawn("a", func(p *Proc) {
		p.Wait(1.5)
		at = append(at, env.Now())
		p.Wait(2.5)
		at = append(at, env.Now())
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(at) != 2 || at[0] != 1.5 || at[1] != 4.0 {
		t.Fatalf("timestamps = %v, want [1.5 4]", at)
	}
	if env.Now() != 4.0 {
		t.Fatalf("final time = %v, want 4", env.Now())
	}
}

func TestNegativeAndZeroWait(t *testing.T) {
	env := NewEnv()
	env.Spawn("a", func(p *Proc) {
		p.Wait(-5)
		if env.Now() != 0 {
			t.Errorf("negative wait moved time to %v", env.Now())
		}
		p.Yield()
		if env.Now() != 0 {
			t.Errorf("yield moved time to %v", env.Now())
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicInterleaving(t *testing.T) {
	run := func() string {
		env := NewEnv()
		var log []string
		for i := 0; i < 5; i++ {
			name := fmt.Sprintf("p%d", i)
			env.Spawn(name, func(p *Proc) {
				p.Wait(1)
				log = append(log, p.Name())
				p.Wait(1)
				log = append(log, p.Name())
			})
		}
		if err := env.Run(); err != nil {
			t.Fatal(err)
		}
		return strings.Join(log, ",")
	}
	first := run()
	for i := 0; i < 10; i++ {
		if got := run(); got != first {
			t.Fatalf("run %d differs: %q vs %q", i, got, first)
		}
	}
	// Same-time wakeups must preserve spawn order.
	if !strings.HasPrefix(first, "p0,p1,p2,p3,p4") {
		t.Fatalf("tie-break order wrong: %q", first)
	}
}

func TestEventDeliversValue(t *testing.T) {
	env := NewEnv()
	ev := env.NewEvent("go")
	var got interface{}
	var at float64
	env.Spawn("waiter", func(p *Proc) {
		got = p.WaitEvent(ev)
		at = env.Now()
	})
	env.Spawn("trigger", func(p *Proc) {
		p.Wait(3)
		ev.Trigger("payload")
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if got != "payload" || at != 3 {
		t.Fatalf("got %v at %v, want payload at 3", got, at)
	}
	if !ev.Fired() {
		t.Fatal("event not marked fired")
	}
}

func TestEventAlreadyFired(t *testing.T) {
	env := NewEnv()
	ev := env.NewEvent("done")
	ev.Trigger(42)
	ev.Trigger(43) // second trigger ignored
	env.Spawn("w", func(p *Proc) {
		if v := p.WaitEvent(ev); v != 42 {
			t.Errorf("WaitEvent = %v, want 42", v)
		}
		if env.Now() != 0 {
			t.Errorf("fired event blocked until %v", env.Now())
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCounterLatch(t *testing.T) {
	env := NewEnv()
	c := env.NewCounter("latch", 3)
	var releasedAt float64 = -1
	env.Spawn("waiter", func(p *Proc) {
		p.WaitCounter(c)
		releasedAt = env.Now()
	})
	for i := 0; i < 3; i++ {
		d := float64(i + 1)
		env.Spawn(fmt.Sprintf("d%d", i), func(p *Proc) {
			p.Wait(d)
			c.Done()
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if releasedAt != 3 {
		t.Fatalf("latch released at %v, want 3 (after last Done)", releasedAt)
	}
}

func TestResourceSerializes(t *testing.T) {
	env := NewEnv()
	r := env.NewResource("disk", 1)
	var finish []float64
	for i := 0; i < 4; i++ {
		env.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			r.Use(p, 10)
			finish = append(finish, env.Now())
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	want := []float64{10, 20, 30, 40}
	for i, f := range finish {
		if f != want[i] {
			t.Fatalf("finish = %v, want %v", finish, want)
		}
	}
	if bt := r.BusyTime(); bt != 40 {
		t.Fatalf("busy time = %v, want 40", bt)
	}
	if u := r.Utilization(); u != 1.0 {
		t.Fatalf("utilization = %v, want 1", u)
	}
}

func TestResourceCapacityTwo(t *testing.T) {
	env := NewEnv()
	r := env.NewResource("nics", 2)
	var finish []float64
	for i := 0; i < 4; i++ {
		env.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			r.Use(p, 10)
			finish = append(finish, env.Now())
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	// Two at a time: pairs finish at 10 and 20.
	want := []float64{10, 10, 20, 20}
	for i, f := range finish {
		if f != want[i] {
			t.Fatalf("finish = %v, want %v", finish, want)
		}
	}
}

func TestResourceFCFS(t *testing.T) {
	env := NewEnv()
	r := env.NewResource("d", 1)
	var order []string
	for i := 0; i < 5; i++ {
		name := fmt.Sprintf("w%d", i)
		arrive := float64(i) * 0.1
		env.Spawn(name, func(p *Proc) {
			p.Wait(arrive)
			r.Acquire(p)
			order = append(order, p.Name())
			p.Wait(5)
			r.Release()
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(order, ","); got != "w0,w1,w2,w3,w4" {
		t.Fatalf("service order %q not FCFS", got)
	}
	if r.AvgWait() <= 0 {
		t.Fatal("expected nonzero average queueing delay")
	}
}

func TestMailboxGetBlocksUntilPut(t *testing.T) {
	env := NewEnv()
	m := env.NewMailbox("mb")
	any := func(interface{}) bool { return true }
	var got interface{}
	var at float64
	env.Spawn("rx", func(p *Proc) {
		got = m.Get(p, any)
		at = env.Now()
	})
	env.Spawn("tx", func(p *Proc) {
		p.Wait(7)
		m.Put("hello")
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if got != "hello" || at != 7 {
		t.Fatalf("got %v at %v", got, at)
	}
	if m.Len() != 0 {
		t.Fatalf("mailbox kept %d messages after Get", m.Len())
	}
}

func TestMailboxMatching(t *testing.T) {
	env := NewEnv()
	m := env.NewMailbox("mb")
	isEven := func(v interface{}) bool { return v.(int)%2 == 0 }
	isOdd := func(v interface{}) bool { return v.(int)%2 == 1 }
	var evens, odds []int
	env.Spawn("tx", func(p *Proc) {
		for i := 1; i <= 6; i++ {
			m.Put(i)
		}
	})
	env.Spawn("rxEven", func(p *Proc) {
		p.Wait(1)
		for i := 0; i < 3; i++ {
			evens = append(evens, m.Get(p, isEven).(int))
		}
	})
	env.Spawn("rxOdd", func(p *Proc) {
		p.Wait(1)
		for i := 0; i < 3; i++ {
			odds = append(odds, m.Get(p, isOdd).(int))
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(evens) != "[2 4 6]" || fmt.Sprint(odds) != "[1 3 5]" {
		t.Fatalf("evens=%v odds=%v; matching broke FIFO", evens, odds)
	}
}

func TestMailboxProbeDoesNotConsume(t *testing.T) {
	env := NewEnv()
	m := env.NewMailbox("mb")
	any := func(interface{}) bool { return true }
	var probed, got interface{}
	env.Spawn("rx", func(p *Proc) {
		probed = m.Probe(p, any)
		got = m.Get(p, any)
	})
	env.Spawn("tx", func(p *Proc) {
		p.Wait(2)
		m.Put("msg")
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if probed != "msg" || got != "msg" {
		t.Fatalf("probed=%v got=%v", probed, got)
	}
}

func TestMailboxTryProbe(t *testing.T) {
	env := NewEnv()
	m := env.NewMailbox("mb")
	any := func(interface{}) bool { return true }
	env.Spawn("p", func(p *Proc) {
		if _, ok := m.TryProbe(any); ok {
			t.Error("TryProbe on empty mailbox returned ok")
		}
		m.Put(9)
		v, ok := m.TryProbe(any)
		if !ok || v != 9 {
			t.Errorf("TryProbe = %v,%v", v, ok)
		}
		if m.Len() != 1 {
			t.Error("TryProbe consumed the message")
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockDetection(t *testing.T) {
	env := NewEnv()
	ev := env.NewEvent("never")
	env.Spawn("stuck", func(p *Proc) {
		p.WaitEvent(ev)
	})
	err := env.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	if len(de.Blocked) != 1 || !strings.Contains(de.Blocked[0], "stuck") {
		t.Fatalf("blocked = %v", de.Blocked)
	}
}

func TestDaemonDoesNotBlockCompletion(t *testing.T) {
	env := NewEnv()
	ticks := 0
	env.SpawnDaemon("noise", func(p *Proc) {
		for {
			p.Wait(1)
			ticks++
		}
	})
	env.Spawn("main", func(p *Proc) {
		p.Wait(5.5)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if ticks != 5 {
		t.Fatalf("daemon ticked %d times, want 5", ticks)
	}
	if env.Now() != 5.5 {
		t.Fatalf("end time %v, want 5.5", env.Now())
	}
}

func TestSpawnFromProcess(t *testing.T) {
	env := NewEnv()
	var childAt float64
	env.Spawn("parent", func(p *Proc) {
		p.Wait(2)
		env.Spawn("child", func(c *Proc) {
			c.Wait(3)
			childAt = env.Now()
		})
		p.Wait(10)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if childAt != 5 {
		t.Fatalf("child finished at %v, want 5", childAt)
	}
}

func TestRunTwiceFails(t *testing.T) {
	env := NewEnv()
	env.Spawn("a", func(p *Proc) {})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if err := env.Run(); err == nil {
		t.Fatal("second Run did not fail")
	}
}

func TestReleaseWithoutAcquirePanics(t *testing.T) {
	env := NewEnv()
	r := env.NewResource("r", 1)
	env.Spawn("bad", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("no panic on unmatched Release")
			}
		}()
		r.Release()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

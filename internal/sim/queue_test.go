package sim

import (
	"fmt"
	"testing"
)

func TestQueueFIFO(t *testing.T) {
	env := NewEnv()
	q := env.NewQueue("q", 10)
	var got []int
	env.Spawn("producer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Wait(1)
			q.Put(p, i)
		}
		q.Close()
	})
	env.Spawn("consumer", func(p *Proc) {
		for {
			v, ok := q.Get(p)
			if !ok {
				return
			}
			got = append(got, v.(int))
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[0 1 2 3 4]" {
		t.Fatalf("got %v", got)
	}
}

func TestQueueBlocksWhenFull(t *testing.T) {
	env := NewEnv()
	q := env.NewQueue("q", 1)
	var putDone, getAt float64
	env.Spawn("producer", func(p *Proc) {
		q.Put(p, 1) // fits
		q.Put(p, 2) // blocks until consumer takes item 1 at t=5
		putDone = env.Now()
		q.Close()
	})
	env.Spawn("consumer", func(p *Proc) {
		p.Wait(5)
		q.Get(p)
		getAt = env.Now()
		for {
			if _, ok := q.Get(p); !ok {
				return
			}
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if putDone != 5 || getAt != 5 {
		t.Fatalf("putDone=%v getAt=%v, want both 5", putDone, getAt)
	}
}

func TestQueueCloseDrains(t *testing.T) {
	env := NewEnv()
	q := env.NewQueue("q", 4)
	var drained []int
	env.Spawn("p", func(p *Proc) {
		q.Put(p, 1)
		q.Put(p, 2)
		q.Close()
		q.Close() // idempotent
		for {
			v, ok := q.Get(p)
			if !ok {
				break
			}
			drained = append(drained, v.(int))
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(drained) != "[1 2]" {
		t.Fatalf("drained %v", drained)
	}
}

func TestQueueGetUnblocksOnClose(t *testing.T) {
	env := NewEnv()
	q := env.NewQueue("q", 1)
	var ok bool = true
	env.Spawn("getter", func(p *Proc) {
		_, ok = q.Get(p)
	})
	env.Spawn("closer", func(p *Proc) {
		p.Wait(3)
		q.Close()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("Get did not observe close")
	}
	if env.Now() != 3 {
		t.Fatalf("time %v", env.Now())
	}
}

func TestQueuePutOnClosedPanics(t *testing.T) {
	env := NewEnv()
	q := env.NewQueue("q", 1)
	env.Spawn("p", func(p *Proc) {
		q.Close()
		defer func() {
			if recover() == nil {
				t.Error("Put on closed queue did not panic")
			}
		}()
		q.Put(p, 1)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

package faults

import (
	"strings"
	"sync"

	"genxio/internal/rt"
)

// FSOp names a filesystem operation class an FSRule can target.
type FSOp string

// Filesystem operation classes.
const (
	OpCreate   FSOp = "create"
	OpOpen     FSOp = "open"
	OpRemove   FSOp = "remove"
	OpWrite    FSOp = "write"
	OpRead     FSOp = "read"
	OpTruncate FSOp = "truncate"
	OpRename   FSOp = "rename"
	// OpList targets directory listings; PathPrefix matches the listing
	// prefix, not a file name. A transient listing failure is how NFS-style
	// backends surface a flaky metadata server — restart paths must degrade,
	// not die, when one fires.
	OpList FSOp = "list"
)

// FSRule fails matching filesystem operations. Operation counts are kept
// per (rule, path), so a rule is deterministic as long as each file is
// driven by one process — which holds for every writer in this codebase
// (snapshot files are single-writer by construction).
type FSRule struct {
	// Op selects the operation class; empty matches none (rules must be
	// explicit about what they break).
	Op FSOp
	// PathPrefix restricts the rule to files whose name starts with it;
	// empty matches every file.
	PathPrefix string
	// Nth fires the rule on the n-th matching operation (1-based) on each
	// matching path. Zero fires on every matching operation (subject to
	// Prob, if set).
	Nth int
	// Prob, when positive, fires the rule with this probability per
	// matching operation, drawn from a per-path RNG seeded by the plan
	// seed — deterministic per path. Ignored when Nth is set.
	Prob float64
	// ShortBy, for OpWrite, makes the write short by this many bytes
	// instead of failing it outright (an io.ErrShortWrite-style fault:
	// the tail of the buffer silently never reaches the file).
	ShortBy int
	// DropRename, for OpRename, makes the rename report success without
	// moving the file — the crash-between-write-and-commit model: the temp
	// file stays orphaned and the final name never appears.
	DropRename bool
	// Msg is the failure detail, e.g. "no space left on device"; a
	// default is supplied when empty.
	Msg string
}

// FSPlan is a set of FSRules plus the seed for probabilistic rules. Safe
// for concurrent use by any number of rank goroutines.
type FSPlan struct {
	Seed  uint64
	Rules []FSRule

	tripLog
	mu       sync.Mutex
	counters map[string]int
	rngs     map[string]*streamRNG
}

// NewFSPlan returns an empty plan with the given seed; add rules to it
// before wrapping a filesystem.
func NewFSPlan(seed uint64, rules ...FSRule) *FSPlan {
	return &FSPlan{Seed: seed, Rules: rules}
}

// check reports whether some rule fires for (op, path), returning the rule.
func (p *FSPlan) check(op FSOp, path string) (*FSRule, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.counters == nil {
		p.counters = make(map[string]int)
		p.rngs = make(map[string]*streamRNG)
	}
	for i := range p.Rules {
		r := &p.Rules[i]
		if r.Op != op {
			continue
		}
		if r.PathPrefix != "" && !strings.HasPrefix(path, r.PathPrefix) {
			continue
		}
		stream := string(op) + ":" + path
		key := stream + "#" + itoa(i)
		p.counters[key]++
		n := p.counters[key]
		fire := false
		switch {
		case r.Nth > 0:
			fire = n == r.Nth
		case r.Prob > 0:
			rng, ok := p.rngs[key]
			if !ok {
				rng = newStreamRNG(p.Seed, key)
				p.rngs[key] = rng
			}
			fire = rng.float64() < r.Prob
		default:
			fire = true
		}
		if fire {
			p.record(stream, n)
			return r, true
		}
	}
	return nil, false
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func (r *FSRule) err(op FSOp, path string) error {
	msg := r.Msg
	if msg == "" {
		msg = "no space left on device"
	}
	return injectedErr("faults: %s %s: %s", op, path, msg)
}

// WrapFS returns a filesystem that behaves like inner except where plan
// injects failures. Wrapping is cheap; one plan may back any number of
// wrapped views.
func WrapFS(inner rt.FS, plan *FSPlan) rt.FS {
	return &faultFS{inner: inner, plan: plan}
}

type faultFS struct {
	inner rt.FS
	plan  *FSPlan
}

func (f *faultFS) Create(name string) (rt.File, error) {
	if r, ok := f.plan.check(OpCreate, name); ok {
		return nil, r.err(OpCreate, name)
	}
	file, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{inner: file, plan: f.plan}, nil
}

func (f *faultFS) Open(name string) (rt.File, error) {
	if r, ok := f.plan.check(OpOpen, name); ok {
		return nil, r.err(OpOpen, name)
	}
	file, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{inner: file, plan: f.plan}, nil
}

func (f *faultFS) Remove(name string) error {
	if r, ok := f.plan.check(OpRemove, name); ok {
		return r.err(OpRemove, name)
	}
	return f.inner.Remove(name)
}

func (f *faultFS) Rename(oldname, newname string) error {
	if r, ok := f.plan.check(OpRename, oldname); ok {
		if r.DropRename {
			return nil
		}
		return r.err(OpRename, oldname)
	}
	return f.inner.Rename(oldname, newname)
}

func (f *faultFS) List(prefix string) ([]string, error) {
	if r, ok := f.plan.check(OpList, prefix); ok {
		return nil, r.err(OpList, prefix)
	}
	return f.inner.List(prefix)
}

func (f *faultFS) Stat(name string) (int64, error) { return f.inner.Stat(name) }

type faultFile struct {
	inner rt.File
	plan  *FSPlan
}

func (f *faultFile) Name() string         { return f.inner.Name() }
func (f *faultFile) Size() (int64, error) { return f.inner.Size() }
func (f *faultFile) Close() error         { return f.inner.Close() }

func (f *faultFile) ReadAt(p []byte, off int64) (int, error) {
	if r, ok := f.plan.check(OpRead, f.inner.Name()); ok {
		return 0, r.err(OpRead, f.inner.Name())
	}
	return f.inner.ReadAt(p, off)
}

func (f *faultFile) WriteAt(p []byte, off int64) (int, error) {
	if r, ok := f.plan.check(OpWrite, f.inner.Name()); ok {
		if r.ShortBy > 0 && r.ShortBy < len(p) {
			// Short write: the head lands, the tail silently doesn't.
			n, err := f.inner.WriteAt(p[:len(p)-r.ShortBy], off)
			if err != nil {
				return n, err
			}
			return n, injectedErr("faults: write %s: short write (%d of %d bytes)",
				f.inner.Name(), n, len(p))
		}
		return 0, r.err(OpWrite, f.inner.Name())
	}
	return f.inner.WriteAt(p, off)
}

func (f *faultFile) Truncate(size int64) error {
	if r, ok := f.plan.check(OpTruncate, f.inner.Name()); ok {
		return r.err(OpTruncate, f.inner.Name())
	}
	return f.inner.Truncate(size)
}

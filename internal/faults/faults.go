// Package faults is a deterministic, seedable fault-injection layer for
// exercising the failure paths the paper's restart story depends on. Real
// runs fail — disks fill up, messages stall, I/O servers die mid-snapshot —
// and the recovery machinery (client retry, server failover, scan-based
// restart from the last complete snapshot) is only trustworthy if those
// failures can be provoked on demand, reproducibly, under `go test -race`.
//
// Three injection surfaces are provided:
//
//   - FS (fs.go): wraps an rt.FS / rt.File pair and fails chosen
//     operations — ENOSPC-style write errors, short writes, create
//     failures at the Nth operation on a matching path.
//
//   - NetPlan (net.go): plugs into mpi.ChanWorld's send hook and drops or
//     delays messages on selected tags, either at a deterministic
//     per-stream operation index or with a seeded per-stream probability.
//
//   - CrashPlan (crash.go): kills a Rocpanda server at a chosen point of
//     its service loop (mid-buffer, mid-drain, before the metadata
//     dataset) on the Nth visit, simulating process death: the server
//     stops responding and its open snapshot file is left without a
//     directory, so readers see it as incomplete.
//
// Determinism. Every plan is driven by operation counters scoped to a
// stream that is totally ordered by construction — a single file path, a
// single (src, dst, tag) message stream, a single server's crash point —
// never by global counters that would depend on goroutine interleaving.
// Probabilistic rules derive their RNG from a caller seed mixed with the
// stream identity, so the same seed always trips the same operations of
// the same stream regardless of scheduling. Plans record every trip
// (Trips) so tests can assert the failure point, not just the failure.
package faults

import (
	"errors"
	"fmt"
	"sync"
)

// ErrInjected is the sentinel wrapped by every injected error, so callers
// can tell provoked failures from real ones with errors.Is.
var ErrInjected = errors.New("faults: injected fault")

// injectedErr builds an injected error carrying a human-readable cause.
func injectedErr(format string, args ...interface{}) error {
	return fmt.Errorf("%s: %w", fmt.Sprintf(format, args...), ErrInjected)
}

// Trip records one fired fault: which stream it hit and the 1-based
// operation index within that stream at which it fired.
type Trip struct {
	Stream string // e.g. "write:ck/snap_s001.rhdf", "send:3->0:1101", "crash:1:mid-drain"
	Op     int
}

// tripLog is the shared, mutex-guarded trip recorder embedded in plans.
type tripLog struct {
	mu    sync.Mutex
	trips []Trip
}

func (l *tripLog) record(stream string, op int) {
	l.mu.Lock()
	l.trips = append(l.trips, Trip{Stream: stream, Op: op})
	l.mu.Unlock()
}

// Trips returns a copy of every fault fired so far, in firing order.
// Within a single stream the order and operation indices are deterministic;
// across streams the interleaving follows the run's scheduling.
func (l *tripLog) Trips() []Trip {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Trip(nil), l.trips...)
}

// streamRNG is a splitmix64 generator seeded from a plan seed mixed with a
// stream identity, so each stream draws an independent, reproducible
// sequence no matter how streams interleave.
type streamRNG struct {
	state uint64
}

func newStreamRNG(seed uint64, stream string) *streamRNG {
	h := uint64(14695981039346656037) // FNV-1a offset basis
	for i := 0; i < 8; i++ {
		h ^= (seed >> (8 * i)) & 0xff
		h *= 1099511628211
	}
	for i := 0; i < len(stream); i++ {
		h ^= uint64(stream[i])
		h *= 1099511628211
	}
	return &streamRNG{state: h}
}

func (r *streamRNG) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float64 returns a uniform draw in [0, 1).
func (r *streamRNG) float64() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}

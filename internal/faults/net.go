package faults

import (
	"fmt"
	"sync"

	"genxio/internal/mpi"
)

// NetRule drops or delays matching transport-level messages. Counters and
// probabilistic draws are scoped per (src, dst, tag) stream; since each
// such stream is emitted by a single goroutine in FIFO order, a rule fires
// at the same operation of the same stream on every run, regardless of how
// the ranks are scheduled.
type NetRule struct {
	// Src, Dst restrict the rule to one sender / receiver global rank;
	// -1 is a wildcard.
	Src, Dst int
	// Tag restricts the rule to one message tag; -1 is a wildcard.
	Tag int
	// Nth fires on the n-th matching message (1-based) of each matching
	// stream. Zero fires on every message (subject to Prob, if set).
	Nth int
	// Prob, when positive, fires with this probability per message, drawn
	// from a per-stream RNG seeded by the plan seed. Ignored when Nth is
	// set.
	Prob float64
	// Drop discards the message: it is never delivered, as if the wire
	// ate it. The receiver sees nothing; recovery is the client's job.
	Drop bool
	// Delay stalls the sender this many seconds before delivery (a slow
	// link). FIFO order is preserved because the sender itself stalls.
	Delay float64
}

// NetPlan is a set of NetRules for a ChanWorld's send hook. Safe for
// concurrent use by all rank goroutines.
type NetPlan struct {
	Seed  uint64
	Rules []NetRule

	tripLog
	mu       sync.Mutex
	counters map[string]int
	rngs     map[string]*streamRNG
}

// NewNetPlan returns a plan with the given seed and rules.
func NewNetPlan(seed uint64, rules ...NetRule) *NetPlan {
	return &NetPlan{Seed: seed, Rules: rules}
}

// Verdict decides the fate of one message; it implements the logic behind
// Hook and is exposed for direct testing.
func (p *NetPlan) Verdict(src, dst, tag, size int) mpi.SendVerdict {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.counters == nil {
		p.counters = make(map[string]int)
		p.rngs = make(map[string]*streamRNG)
	}
	for i := range p.Rules {
		r := &p.Rules[i]
		if (r.Src >= 0 && r.Src != src) || (r.Dst >= 0 && r.Dst != dst) || (r.Tag >= 0 && r.Tag != tag) {
			continue
		}
		stream := fmt.Sprintf("send:%d->%d:%d", src, dst, tag)
		key := fmt.Sprintf("%s#%d", stream, i)
		p.counters[key]++
		n := p.counters[key]
		fire := false
		switch {
		case r.Nth > 0:
			fire = n == r.Nth
		case r.Prob > 0:
			rng, ok := p.rngs[key]
			if !ok {
				rng = newStreamRNG(p.Seed, key)
				p.rngs[key] = rng
			}
			fire = rng.float64() < r.Prob
		default:
			fire = true
		}
		if fire {
			p.record(stream, n)
			return mpi.SendVerdict{Drop: r.Drop, Delay: r.Delay}
		}
	}
	return mpi.SendVerdict{}
}

// Partition returns the rule pair that cuts ranks a and b off from each
// other: every message between them, in either direction and on any tag,
// is dropped. Append the pair to a plan's Rules (or splat it into
// NewNetPlan) instead of hand-building the two directional rules.
func Partition(a, b int) []NetRule {
	return []NetRule{
		{Src: a, Dst: b, Tag: -1, Drop: true},
		{Src: b, Dst: a, Tag: -1, Drop: true},
	}
}

// Hook adapts the plan to mpi.ChanWorld's send hook.
func (p *NetPlan) Hook() mpi.SendHook {
	return func(src, dst, tag, size int) mpi.SendVerdict {
		return p.Verdict(src, dst, tag, size)
	}
}

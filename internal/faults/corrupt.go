package faults

import (
	"fmt"

	"genxio/internal/rt"
)

// Direct corruption injection: unlike the FSPlan rules, which fail
// operations as they happen, these helpers damage bytes already at rest —
// the model for media decay, torn sectors, or a crash that left a partial
// tail. They operate on committed files, so tests can corrupt a snapshot
// after the writer is long gone and assert that restart detects it.

// FlipBit flips the bit at bitOffset (counted from the start of the file,
// MSB-first within each byte) in the named file.
func FlipBit(fsys rt.FS, name string, bitOffset int64) error {
	if bitOffset < 0 {
		return fmt.Errorf("faults: flip bit %s: negative bit offset %d", name, bitOffset)
	}
	f, err := fsys.Open(name)
	if err != nil {
		return fmt.Errorf("faults: flip bit %s: %w", name, err)
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		return fmt.Errorf("faults: flip bit %s: %w", name, err)
	}
	byteOff := bitOffset / 8
	if byteOff >= size {
		return fmt.Errorf("faults: flip bit %s: bit %d is past EOF (%d bytes)", name, bitOffset, size)
	}
	var b [1]byte
	if _, err := f.ReadAt(b[:], byteOff); err != nil {
		return fmt.Errorf("faults: flip bit %s: %w", name, err)
	}
	b[0] ^= 1 << (7 - uint(bitOffset%8))
	if _, err := f.WriteAt(b[:], byteOff); err != nil {
		return fmt.Errorf("faults: flip bit %s: %w", name, err)
	}
	return nil
}

// TruncateTail cuts the last n bytes off the named file — the shape a torn
// write or an interrupted transfer leaves behind. Truncating by more than
// the file holds empties it.
func TruncateTail(fsys rt.FS, name string, n int64) error {
	if n < 0 {
		return fmt.Errorf("faults: truncate tail %s: negative count %d", name, n)
	}
	f, err := fsys.Open(name)
	if err != nil {
		return fmt.Errorf("faults: truncate tail %s: %w", name, err)
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		return fmt.Errorf("faults: truncate tail %s: %w", name, err)
	}
	keep := size - n
	if keep < 0 {
		keep = 0
	}
	if err := f.Truncate(keep); err != nil {
		return fmt.Errorf("faults: truncate tail %s: %w", name, err)
	}
	return nil
}

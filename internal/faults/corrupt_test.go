package faults

import (
	"bytes"
	"testing"

	"genxio/internal/rt"
)

func writeBytes(t *testing.T, fsys rt.FS, name string, data []byte) {
	t.Helper()
	f, err := fsys.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func readBytes(t *testing.T, fsys rt.FS, name string) []byte {
	t.Helper()
	f, err := fsys.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sz, _ := f.Size()
	b := make([]byte, sz)
	if sz > 0 {
		if _, err := f.ReadAt(b, 0); err != nil {
			t.Fatal(err)
		}
	}
	return b
}

func TestFlipBit(t *testing.T) {
	fsys := rt.NewMemFS()
	writeBytes(t, fsys, "f", []byte{0x00, 0xff, 0x81})

	// Bit 0 is the MSB of byte 0.
	if err := FlipBit(fsys, "f", 0); err != nil {
		t.Fatal(err)
	}
	if got := readBytes(t, fsys, "f"); !bytes.Equal(got, []byte{0x80, 0xff, 0x81}) {
		t.Fatalf("after flipping bit 0: %x", got)
	}
	// Bit 15 is the LSB of byte 1.
	if err := FlipBit(fsys, "f", 15); err != nil {
		t.Fatal(err)
	}
	if got := readBytes(t, fsys, "f"); !bytes.Equal(got, []byte{0x80, 0xfe, 0x81}) {
		t.Fatalf("after flipping bit 15: %x", got)
	}
	// Flipping the same bits again restores the original — the injection
	// is its own inverse, which keeps corruption tests deterministic.
	if err := FlipBit(fsys, "f", 0); err != nil {
		t.Fatal(err)
	}
	if err := FlipBit(fsys, "f", 15); err != nil {
		t.Fatal(err)
	}
	if got := readBytes(t, fsys, "f"); !bytes.Equal(got, []byte{0x00, 0xff, 0x81}) {
		t.Fatalf("double flip did not restore: %x", got)
	}

	if err := FlipBit(fsys, "f", 24); err == nil {
		t.Fatal("flipped a bit past EOF")
	}
	if err := FlipBit(fsys, "f", -1); err == nil {
		t.Fatal("flipped a negative bit")
	}
	if err := FlipBit(fsys, "missing", 0); err == nil {
		t.Fatal("flipped a bit of a missing file")
	}
}

func TestTruncateTail(t *testing.T) {
	fsys := rt.NewMemFS()
	writeBytes(t, fsys, "f", []byte("0123456789"))

	if err := TruncateTail(fsys, "f", 4); err != nil {
		t.Fatal(err)
	}
	if got := readBytes(t, fsys, "f"); !bytes.Equal(got, []byte("012345")) {
		t.Fatalf("after truncating 4: %q", got)
	}
	// Cutting more than the file holds empties it.
	if err := TruncateTail(fsys, "f", 100); err != nil {
		t.Fatal(err)
	}
	if got := readBytes(t, fsys, "f"); len(got) != 0 {
		t.Fatalf("after truncating past start: %q", got)
	}

	if err := TruncateTail(fsys, "f", -1); err == nil {
		t.Fatal("truncated by a negative count")
	}
	if err := TruncateTail(fsys, "missing", 1); err == nil {
		t.Fatal("truncated a missing file")
	}
}

// TestDropRename: the crash-between-write-and-commit model — the rename
// reports success, the temp file stays, the final name never appears, and
// the trip is recorded.
func TestDropRename(t *testing.T) {
	plan := NewFSPlan(1, FSRule{Op: OpRename, PathPrefix: "out/", Nth: 1, DropRename: true})
	fsys := WrapFS(rt.NewMemFS(), plan)
	writeBytes(t, fsys, "out/a.tmp", []byte("staged"))

	if err := fsys.Rename("out/a.tmp", "out/a"); err != nil {
		t.Fatalf("dropped rename must report success: %v", err)
	}
	if _, err := fsys.Open("out/a"); err == nil {
		t.Fatal("final name appeared despite the dropped rename")
	}
	if got := readBytes(t, fsys, "out/a.tmp"); !bytes.Equal(got, []byte("staged")) {
		t.Fatalf("staged file changed: %q", got)
	}
	if len(plan.Trips()) != 1 {
		t.Fatalf("trips %v", plan.Trips())
	}

	// The rule fired; the second rename goes through.
	if err := fsys.Rename("out/a.tmp", "out/a"); err != nil {
		t.Fatal(err)
	}
	if got := readBytes(t, fsys, "out/a"); !bytes.Equal(got, []byte("staged")) {
		t.Fatalf("committed content %q", got)
	}
}

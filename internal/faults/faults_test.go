package faults

import (
	"errors"
	"fmt"
	"testing"

	"genxio/internal/rt"
)

func TestFSCreateFailsAtNth(t *testing.T) {
	plan := NewFSPlan(1, FSRule{Op: OpCreate, PathPrefix: "snap", Nth: 2})
	fs := WrapFS(rt.NewMemFS(), plan)

	if _, err := fs.Create("snap_a"); err != nil {
		t.Fatalf("first create on snap_a: %v", err)
	}
	if _, err := fs.Create("snap_a"); !errors.Is(err, ErrInjected) {
		t.Fatalf("second create on snap_a: %v, want injected", err)
	}
	// Counters are per path: a different path has its own sequence.
	if _, err := fs.Create("snap_b"); err != nil {
		t.Fatalf("first create on snap_b: %v", err)
	}
	// Other ops and other prefixes are untouched.
	if _, err := fs.Create("other"); err != nil {
		t.Fatalf("create on other: %v", err)
	}
	trips := plan.Trips()
	if len(trips) != 1 || trips[0].Stream != "create:snap_a" || trips[0].Op != 2 {
		t.Fatalf("trips %v", trips)
	}
}

func TestFSWriteENOSPCAndShortWrite(t *testing.T) {
	plan := NewFSPlan(1,
		FSRule{Op: OpWrite, PathPrefix: "full", Nth: 1, Msg: "no space left on device"},
		FSRule{Op: OpWrite, PathPrefix: "short", Nth: 2, ShortBy: 3},
	)
	fs := WrapFS(rt.NewMemFS(), plan)

	f, _ := fs.Create("full/x")
	if _, err := f.WriteAt([]byte("hello"), 0); !errors.Is(err, ErrInjected) {
		t.Fatalf("want injected ENOSPC, got %v", err)
	}

	g, _ := fs.Create("short/y")
	if _, err := g.WriteAt([]byte("abcdefgh"), 0); err != nil {
		t.Fatalf("first write: %v", err)
	}
	n, err := g.WriteAt([]byte("ABCDEFGH"), 8)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want injected short write, got %v", err)
	}
	if n != 5 {
		t.Fatalf("short write landed %d bytes, want 5", n)
	}
	if sz, _ := g.Size(); sz != 13 {
		t.Fatalf("file size %d after short write, want 13", sz)
	}
}

func TestFSProbDeterministicPerSeed(t *testing.T) {
	run := func(seed uint64) []Trip {
		plan := NewFSPlan(seed, FSRule{Op: OpWrite, Prob: 0.3})
		fs := WrapFS(rt.NewMemFS(), plan)
		f, _ := fs.Create("p")
		for i := 0; i < 50; i++ {
			f.WriteAt([]byte{byte(i)}, int64(i))
		}
		return plan.Trips()
	}
	a, b := run(7), run(7)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same seed, different trips:\n%v\n%v", a, b)
	}
	if len(a) == 0 {
		t.Fatal("probabilistic rule never fired in 50 ops at p=0.3")
	}
	c := run(8)
	if fmt.Sprint(a) == fmt.Sprint(c) {
		t.Fatalf("different seeds produced identical trip sequences %v", a)
	}
}

func TestNetVerdictNthAndWildcards(t *testing.T) {
	plan := NewNetPlan(1, NetRule{Src: -1, Dst: 0, Tag: 42, Nth: 2, Drop: true})
	if v := plan.Verdict(3, 0, 42, 10); v.Drop {
		t.Fatal("first message dropped, want delivered")
	}
	if v := plan.Verdict(3, 0, 42, 10); !v.Drop {
		t.Fatal("second message delivered, want dropped")
	}
	// Independent stream: counter restarts per (src,dst,tag).
	if v := plan.Verdict(4, 0, 42, 10); v.Drop {
		t.Fatal("other sender's first message dropped")
	}
	if v := plan.Verdict(3, 0, 7, 10); v.Drop {
		t.Fatal("other tag dropped")
	}
	if v := plan.Verdict(3, 1, 42, 10); v.Drop {
		t.Fatal("other destination dropped")
	}
}

func TestPartitionDropsBothDirections(t *testing.T) {
	plan := NewNetPlan(1, Partition(2, 5)...)
	// Every message between the partitioned pair dies, any tag, forever.
	for n := 0; n < 3; n++ {
		if v := plan.Verdict(2, 5, 42+n, 10); !v.Drop {
			t.Fatalf("message %d from 2 to 5 delivered across the partition", n)
		}
		if v := plan.Verdict(5, 2, 7+n, 10); !v.Drop {
			t.Fatalf("message %d from 5 to 2 delivered across the partition", n)
		}
	}
	// Traffic not crossing the cut is untouched, including each side
	// talking to third parties.
	if v := plan.Verdict(2, 3, 42, 10); v.Drop {
		t.Fatal("message from 2 to 3 dropped, want delivered")
	}
	if v := plan.Verdict(5, 0, 42, 10); v.Drop {
		t.Fatal("message from 5 to 0 dropped, want delivered")
	}
	if v := plan.Verdict(0, 1, 42, 10); v.Drop {
		t.Fatal("bystander message dropped")
	}
}

func TestNetDelayVerdict(t *testing.T) {
	plan := NewNetPlan(1, NetRule{Src: 1, Dst: -1, Tag: -1, Nth: 1, Delay: 0.25})
	v := plan.Verdict(1, 9, 5, 0)
	if v.Drop || v.Delay != 0.25 {
		t.Fatalf("verdict %+v", v)
	}
}

func TestCrashPlanFiresOnceAtNth(t *testing.T) {
	plan := NewCrashPlan(1, MidDrain, 3)
	for i := 1; i <= 2; i++ {
		if plan.Hit(1, MidDrain) {
			t.Fatalf("fired at visit %d, want 3", i)
		}
	}
	if plan.Hit(0, MidDrain) || plan.Hit(1, MidBuffer) {
		t.Fatal("fired for wrong server or point")
	}
	if !plan.Hit(1, MidDrain) {
		t.Fatal("did not fire at 3rd visit")
	}
	if !plan.Fired() {
		t.Fatal("Fired() false after firing")
	}
	if plan.Hit(1, MidDrain) {
		t.Fatal("fired twice")
	}
	trips := plan.Trips()
	if len(trips) != 1 || trips[0].Stream != "crash:1:mid-drain" || trips[0].Op != 3 {
		t.Fatalf("trips %v", trips)
	}
	var nilPlan *CrashPlan
	if nilPlan.Hit(0, MidDrain) || nilPlan.Fired() {
		t.Fatal("nil plan fired")
	}
}

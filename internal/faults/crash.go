package faults

import (
	"fmt"
	"sync"
)

// CrashPoint names an instrumented point of the Rocpanda server loop at
// which a CrashPlan can kill the process.
type CrashPoint string

// Server crash points.
const (
	// MidBuffer fires after the server has buffered a data block under
	// active buffering, before the client's write is acknowledged: data
	// is in volatile memory only and the client does not know whether the
	// write landed.
	MidBuffer CrashPoint = "mid-buffer"
	// MidDrain fires after the background drain has written a block to
	// the snapshot file, before the file is closed: the file has data but
	// no directory, so readers reject it as incomplete.
	MidDrain CrashPoint = "mid-drain"
	// BeforeMeta fires when a snapshot file has been created but before
	// its _meta dataset is written — the earliest possible on-disk state
	// of a snapshot.
	BeforeMeta CrashPoint = "before-meta"
	// MidRead fires while the server is serving a restart round, after it
	// has read (and possibly shipped) some of its file share but before
	// the round's done notifications: clients must detect the silence,
	// declare the server dead, and recover — from the survivors or by
	// falling back a generation.
	MidRead CrashPoint = "mid-read"
)

// CrashPlan kills one Rocpanda server at the Nth visit of a crash point.
// Counters are per (server, point), so the crash fires at the same
// operation index on every run with the same plan: deterministic fault
// injection in the only sense available to a concurrent system — the dying
// server has always done exactly the same amount of work when it dies.
type CrashPlan struct {
	// Server is the index (not world rank) of the server to kill.
	Server int
	// Point is the instrumented point to die at.
	Point CrashPoint
	// Nth dies on the n-th visit (1-based) of Point; 0 means the first.
	Nth int

	tripLog
	mu       sync.Mutex
	counters map[string]int
	fired    bool
}

// NewCrashPlan returns a plan killing server idx at the nth visit of point.
func NewCrashPlan(server int, point CrashPoint, nth int) *CrashPlan {
	return &CrashPlan{Server: server, Point: point, Nth: nth}
}

// Hit reports whether the calling server should die now. It returns true
// exactly once.
func (p *CrashPlan) Hit(server int, point CrashPoint) bool {
	if p == nil || server != p.Server || point != p.Point {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.fired {
		return false
	}
	if p.counters == nil {
		p.counters = make(map[string]int)
	}
	key := fmt.Sprintf("crash:%d:%s", server, point)
	p.counters[key]++
	nth := p.Nth
	if nth <= 0 {
		nth = 1
	}
	if p.counters[key] != nth {
		return false
	}
	p.fired = true
	p.record(key, p.counters[key])
	return true
}

// Fired reports whether the crash has happened.
func (p *CrashPlan) Fired() bool {
	if p == nil {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.fired
}

package hdf

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"

	"genxio/internal/metrics"
	"genxio/internal/rt"
)

// Writer creates or extends an RHDF file. Datasets are appended
// sequentially; the directory is written at Close and the header patched to
// point at it. New files are staged under a temporary name and renamed into
// place only when Close succeeds, so a crashed or failed write never
// replaces a previous snapshot file; appends write past the existing
// directory and patch the header last, so an interrupted append leaves the
// previous directory (and every dataset it describes) intact.
type Writer struct {
	f      rt.File
	fsys   rt.FS
	final  string // committed name; staged writes go to final+TmpSuffix
	staged bool   // true for Create (rename at Close), false for append
	clock  rt.Clock
	cost   CostProfile
	sets   []*Dataset
	names  map[string]int
	off    int64
	closed bool

	// Compress stores subsequent datasets deflate-compressed (HDF's
	// gzip filter equivalent). Readers inflate transparently. Small
	// datasets (under 512 bytes) are stored raw regardless.
	Compress bool

	// Metrics, when set, receives hdf.datasets_written, hdf.bytes_written
	// (logical) and hdf.bytes_stored (post-compression) counters. A nil
	// registry is a no-op.
	Metrics *metrics.Registry
}

// TmpSuffix marks a staged file that has not been renamed into place yet.
// A *.rhdf.tmp left behind is an uncommitted write, never restart input.
const TmpSuffix = ".tmp"

// Create starts a new RHDF file named name on fsys. The bytes are staged
// at name+TmpSuffix and renamed to name only when Close succeeds, so an
// existing file under name survives any failure in between. Management
// overhead is charged to clock according to cost.
func Create(fsys rt.FS, name string, clock rt.Clock, cost CostProfile) (*Writer, error) {
	f, err := fsys.Create(name + TmpSuffix)
	if err != nil {
		return nil, err
	}
	w := &Writer{
		f:      f,
		fsys:   fsys,
		final:  name,
		staged: true,
		clock:  clock,
		cost:   cost,
		names:  make(map[string]int),
		off:    headerSize,
	}
	// Reserve the header; the directory offset is patched at Close.
	hdr := make([]byte, headerSize)
	copy(hdr, Magic)
	binary.LittleEndian.PutUint32(hdr[4:], Version)
	if _, err := f.WriteAt(hdr, 0); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

// OpenAppend opens an existing RHDF file for appending more datasets. New
// data land after the old directory, which stays valid until Close patches
// the header to the new one — the commit point of the append.
func OpenAppend(fsys rt.FS, name string, clock rt.Clock, cost CostProfile) (*Writer, error) {
	r, err := Open(fsys, name, clock, cost)
	if err != nil {
		return nil, err
	}
	size, err := r.f.Size()
	if err != nil {
		r.f.Close()
		return nil, err
	}
	w := &Writer{
		f:     r.f,
		fsys:  fsys,
		final: name,
		clock: clock,
		cost:  cost,
		sets:  r.sets,
		names: make(map[string]int, len(r.sets)),
		off:   size,
	}
	for i, d := range r.sets {
		w.names[d.Name] = i
	}
	return w, nil
}

// NumDatasets returns the number of datasets written so far.
func (w *Writer) NumDatasets() int { return len(w.sets) }

// CreateDataset appends a dataset with raw little-endian data. The element
// count implied by dims must match len(data)/typ.Size(). Dataset names must
// be unique within a file.
func (w *Writer) CreateDataset(name string, typ DType, dims []int64, attrs []Attr, data []byte) error {
	if w.closed {
		return fmt.Errorf("hdf: write to closed writer %s", w.final)
	}
	if _, dup := w.names[name]; dup {
		return fmt.Errorf("hdf: duplicate dataset %q in %s", name, w.final)
	}
	n := int64(1)
	for _, d := range dims {
		if d < 0 {
			return fmt.Errorf("hdf: negative dimension in %q", name)
		}
		n *= d
	}
	if sz := typ.Size(); sz == 0 || n*int64(sz) != int64(len(data)) {
		return fmt.Errorf("hdf: dataset %q dims %v x %s = %d bytes, got %d",
			name, dims, typ, n*int64(typ.Size()), len(data))
	}
	// Charge the library's dataset-management overhead (DD-list upkeep in
	// HDF4 terms) before the transfer itself.
	w.clock.Compute(w.cost.CreateCost(len(w.sets)))
	var flags uint8
	stored := data
	if w.Compress && len(data) >= 512 {
		var buf bytes.Buffer
		zw, err := flate.NewWriter(&buf, flate.BestSpeed)
		if err != nil {
			return err
		}
		if _, err := zw.Write(data); err != nil {
			return err
		}
		if err := zw.Close(); err != nil {
			return err
		}
		if buf.Len() < len(data) {
			stored = buf.Bytes()
			flags |= flagDeflate
		}
	}
	if _, err := w.f.WriteAt(stored, w.off); err != nil {
		return fmt.Errorf("hdf: writing %q: %w", name, err)
	}
	ds := &Dataset{
		Name:   name,
		Type:   typ,
		Dims:   append([]int64(nil), dims...),
		Attrs:  append([]Attr(nil), attrs...),
		flags:  flags | flagHasCRC,
		offset: w.off,
		length: int64(len(stored)),
		crc:    Checksum(stored),
	}
	w.names[name] = len(w.sets)
	w.sets = append(w.sets, ds)
	w.off += int64(len(stored))
	w.Metrics.Counter("hdf.datasets_written").Inc()
	w.Metrics.Counter("hdf.bytes_written").Add(int64(len(data)))
	w.Metrics.Counter("hdf.bytes_stored").Add(int64(len(stored)))
	return nil
}

// Close writes the directory, patches the header, closes the file, and —
// for newly created files — renames the staged bytes into place. Any
// failure before the rename leaves the previous file (if one existed)
// untouched, with the staged *.tmp orphan as the only residue.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	dir := encodeDir(w.sets)
	if _, err := w.f.WriteAt(dir, w.off); err != nil {
		w.f.Close()
		return fmt.Errorf("hdf: writing directory: %w", err)
	}
	if err := w.f.Truncate(w.off + int64(len(dir))); err != nil {
		w.f.Close()
		return err
	}
	hdr := make([]byte, headerSize)
	copy(hdr, Magic)
	binary.LittleEndian.PutUint32(hdr[4:], Version)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(w.off))
	binary.LittleEndian.PutUint32(hdr[16:], uint32(len(w.sets)))
	if _, err := w.f.WriteAt(hdr, 0); err != nil {
		w.f.Close()
		return fmt.Errorf("hdf: patching header: %w", err)
	}
	if err := w.f.Close(); err != nil {
		return err
	}
	if w.staged {
		if err := w.fsys.Rename(w.final+TmpSuffix, w.final); err != nil {
			return fmt.Errorf("hdf: committing %s: %w", w.final, err)
		}
	}
	return nil
}

// encodeDir serializes the dataset directory (version-3 layout).
func encodeDir(sets []*Dataset) []byte {
	var b []byte
	b = binary.LittleEndian.AppendUint32(b, uint32(len(sets)))
	for _, d := range sets {
		b = appendString(b, d.Name)
		b = append(b, byte(d.Type))
		b = append(b, d.flags)
		b = append(b, byte(len(d.Dims)))
		for _, dim := range d.Dims {
			b = binary.LittleEndian.AppendUint64(b, uint64(dim))
		}
		b = binary.LittleEndian.AppendUint64(b, uint64(d.offset))
		b = binary.LittleEndian.AppendUint64(b, uint64(d.length))
		b = binary.LittleEndian.AppendUint32(b, d.crc)
		b = binary.LittleEndian.AppendUint16(b, uint16(len(d.Attrs)))
		for _, a := range d.Attrs {
			b = appendString(b, a.Name)
			b = append(b, byte(a.Type))
			b = binary.LittleEndian.AppendUint32(b, uint32(len(a.Data)))
			b = append(b, a.Data...)
		}
	}
	return b
}

func appendString(b []byte, s string) []byte {
	b = binary.LittleEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...)
}

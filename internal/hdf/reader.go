package hdf

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"strings"

	"genxio/internal/metrics"
	"genxio/internal/rt"
)

// Reader reads an RHDF file.
type Reader struct {
	f      rt.File
	clock  rt.Clock
	cost   CostProfile
	sets   []*Dataset
	names  map[string]int
	dirOff int64

	// Metrics, when set, receives hdf.lookups, hdf.datasets_read and
	// hdf.bytes_read counters. A nil registry is a no-op.
	Metrics *metrics.Registry
}

// Open opens an RHDF file for reading and parses its directory, charging
// the profile's open cost.
func Open(fsys rt.FS, name string, clock rt.Clock, cost CostProfile) (*Reader, error) {
	f, err := fsys.Open(name)
	if err != nil {
		return nil, err
	}
	r, err := newReader(f, clock, cost)
	if err != nil {
		f.Close()
		return nil, err
	}
	return r, nil
}

func newReader(f rt.File, clock rt.Clock, cost CostProfile) (*Reader, error) {
	hdr := make([]byte, headerSize)
	if _, err := f.ReadAt(hdr, 0); err != nil {
		return nil, fmt.Errorf("hdf: reading header of %s: %w", f.Name(), err)
	}
	if string(hdr[:4]) != Magic {
		return nil, fmt.Errorf("hdf: %s is not an RHDF file", f.Name())
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != Version {
		return nil, fmt.Errorf("hdf: %s has version %d, want %d", f.Name(), v, Version)
	}
	dirOff := int64(binary.LittleEndian.Uint64(hdr[8:]))
	count := int(binary.LittleEndian.Uint32(hdr[16:]))
	if dirOff == 0 {
		return nil, fmt.Errorf("hdf: %s has no directory (incomplete write?)", f.Name())
	}
	size, err := f.Size()
	if err != nil {
		return nil, err
	}
	if dirOff > size {
		return nil, fmt.Errorf("hdf: %s directory offset %d beyond EOF %d", f.Name(), dirOff, size)
	}
	dir := make([]byte, size-dirOff)
	if _, err := f.ReadAt(dir, dirOff); err != nil {
		return nil, fmt.Errorf("hdf: reading directory of %s: %w", f.Name(), err)
	}
	sets, err := decodeDir(dir)
	if err != nil {
		return nil, fmt.Errorf("hdf: %s: %w", f.Name(), err)
	}
	if len(sets) != count {
		return nil, fmt.Errorf("hdf: %s header says %d datasets, directory has %d", f.Name(), count, len(sets))
	}
	r := &Reader{f: f, clock: clock, cost: cost, sets: sets, names: make(map[string]int, len(sets)), dirOff: dirOff}
	for i, d := range sets {
		r.names[d.Name] = i
	}
	clock.Compute(cost.OpenCost(len(sets)))
	return r, nil
}

// NumDatasets returns the number of datasets in the file.
func (r *Reader) NumDatasets() int { return len(r.sets) }

// Datasets returns all dataset descriptors in file order.
func (r *Reader) Datasets() []*Dataset { return r.sets }

// Names returns all dataset names in file order.
func (r *Reader) Names() []string {
	out := make([]string, len(r.sets))
	for i, d := range r.sets {
		out[i] = d.Name
	}
	return out
}

// Lookup finds a dataset by name, charging the profile's lookup cost.
func (r *Reader) Lookup(name string) (*Dataset, bool) {
	r.clock.Compute(r.cost.LookupCost(len(r.sets)))
	r.Metrics.Counter("hdf.lookups").Inc()
	i, ok := r.names[name]
	if !ok {
		return nil, false
	}
	return r.sets[i], true
}

// LookupPrefix returns all datasets whose name starts with prefix, in file
// order, charging one lookup.
func (r *Reader) LookupPrefix(prefix string) []*Dataset {
	r.clock.Compute(r.cost.LookupCost(len(r.sets)))
	r.Metrics.Counter("hdf.lookups").Inc()
	var out []*Dataset
	for _, d := range r.sets {
		if strings.HasPrefix(d.Name, prefix) {
			out = append(out, d)
		}
	}
	return out
}

// ReadData reads a dataset's logical bytes, inflating deflate-compressed
// storage transparently.
func (r *Reader) ReadData(d *Dataset) ([]byte, error) {
	buf := make([]byte, d.length)
	if _, err := r.f.ReadAt(buf, d.offset); err != nil {
		return nil, fmt.Errorf("hdf: reading %q: %w", d.Name, err)
	}
	r.Metrics.Counter("hdf.datasets_read").Inc()
	r.Metrics.Counter("hdf.bytes_read").Add(int64(len(buf)))
	if !d.Compressed() {
		return buf, nil
	}
	logical := d.Len() * int64(d.Type.Size())
	zr := flate.NewReader(bytes.NewReader(buf))
	out, err := io.ReadAll(io.LimitReader(zr, logical+1))
	if err != nil {
		return nil, fmt.Errorf("hdf: inflating %q: %w", d.Name, err)
	}
	if int64(len(out)) != logical {
		return nil, fmt.Errorf("hdf: %q inflated to %d bytes, want %d", d.Name, len(out), logical)
	}
	return out, nil
}

// Close closes the underlying file.
func (r *Reader) Close() error { return r.f.Close() }

func decodeDir(b []byte) ([]*Dataset, error) {
	p := &parser{b: b}
	n := int(p.u32())
	sets := make([]*Dataset, 0, n)
	for i := 0; i < n; i++ {
		d := &Dataset{}
		d.Name = p.str()
		d.Type = DType(p.u8())
		d.flags = p.u8()
		nd := int(p.u8())
		d.Dims = make([]int64, nd)
		for j := range d.Dims {
			d.Dims[j] = int64(p.u64())
		}
		d.offset = int64(p.u64())
		d.length = int64(p.u64())
		na := int(p.u16())
		d.Attrs = make([]Attr, na)
		for j := range d.Attrs {
			d.Attrs[j].Name = p.str()
			d.Attrs[j].Type = DType(p.u8())
			ln := int(p.u32())
			d.Attrs[j].Data = p.bytes(ln)
		}
		if p.err != nil {
			return nil, fmt.Errorf("corrupt directory at dataset %d: %w", i, p.err)
		}
		sets = append(sets, d)
	}
	return sets, nil
}

// parser is a bounds-checked little-endian cursor.
type parser struct {
	b   []byte
	off int
	err error
}

func (p *parser) need(n int) bool {
	if p.err != nil {
		return false
	}
	if p.off+n > len(p.b) {
		p.err = fmt.Errorf("truncated at offset %d (need %d of %d)", p.off, n, len(p.b))
		return false
	}
	return true
}

func (p *parser) u8() uint8 {
	if !p.need(1) {
		return 0
	}
	v := p.b[p.off]
	p.off++
	return v
}

func (p *parser) u16() uint16 {
	if !p.need(2) {
		return 0
	}
	v := binary.LittleEndian.Uint16(p.b[p.off:])
	p.off += 2
	return v
}

func (p *parser) u32() uint32 {
	if !p.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(p.b[p.off:])
	p.off += 4
	return v
}

func (p *parser) u64() uint64 {
	if !p.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(p.b[p.off:])
	p.off += 8
	return v
}

func (p *parser) bytes(n int) []byte {
	if !p.need(n) {
		return nil
	}
	v := append([]byte(nil), p.b[p.off:p.off+n]...)
	p.off += n
	return v
}

func (p *parser) str() string {
	n := int(p.u16())
	return string(p.bytes(n))
}

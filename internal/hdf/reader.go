package hdf

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"strings"

	"genxio/internal/metrics"
	"genxio/internal/rt"
)

// Reader reads an RHDF file.
type Reader struct {
	f      rt.File
	clock  rt.Clock
	cost   CostProfile
	sets   []*Dataset
	names  map[string]int
	dirOff int64

	// Metrics, when set, receives hdf.lookups, hdf.datasets_read and
	// hdf.bytes_read counters. A nil registry is a no-op.
	Metrics *metrics.Registry
}

// Open opens an RHDF file for reading and parses its directory, charging
// the profile's open cost.
func Open(fsys rt.FS, name string, clock rt.Clock, cost CostProfile) (*Reader, error) {
	f, err := fsys.Open(name)
	if err != nil {
		return nil, err
	}
	r, err := newReader(f, clock, cost)
	if err != nil {
		f.Close()
		return nil, err
	}
	return r, nil
}

func newReader(f rt.File, clock rt.Clock, cost CostProfile) (*Reader, error) {
	size, err := f.Size()
	if err != nil {
		return nil, err
	}
	version, dirOff, count, err := readHeader(f, size)
	if err != nil {
		return nil, err
	}
	dir := make([]byte, size-dirOff)
	if _, err := f.ReadAt(dir, dirOff); err != nil {
		return nil, fmt.Errorf("hdf: reading directory of %s: %w", f.Name(), err)
	}
	sets, err := decodeDir(dir, version)
	if err != nil {
		return nil, fmt.Errorf("hdf: %s: %w", f.Name(), err)
	}
	if len(sets) != count {
		return nil, fmt.Errorf("hdf: %s header says %d datasets, directory has %d", f.Name(), count, len(sets))
	}
	for _, d := range sets {
		if d.offset < headerSize || d.length < 0 || d.offset+d.length < d.offset || d.offset+d.length > dirOff {
			return nil, fmt.Errorf("hdf: %s dataset %q extent [%d,+%d) outside data region [%d,%d)",
				f.Name(), d.Name, d.offset, d.length, headerSize, dirOff)
		}
		for _, dim := range d.Dims {
			if dim < 0 {
				return nil, fmt.Errorf("hdf: %s dataset %q has negative dimension %d", f.Name(), d.Name, dim)
			}
		}
	}
	r := &Reader{f: f, clock: clock, cost: cost, sets: sets, names: make(map[string]int, len(sets)), dirOff: dirOff}
	for i, d := range sets {
		r.names[d.Name] = i
	}
	clock.Compute(cost.OpenCost(len(sets)))
	return r, nil
}

// NumDatasets returns the number of datasets in the file.
func (r *Reader) NumDatasets() int { return len(r.sets) }

// Datasets returns all dataset descriptors in file order.
func (r *Reader) Datasets() []*Dataset { return r.sets }

// Names returns all dataset names in file order.
func (r *Reader) Names() []string {
	out := make([]string, len(r.sets))
	for i, d := range r.sets {
		out[i] = d.Name
	}
	return out
}

// Lookup finds a dataset by name, charging the profile's lookup cost.
func (r *Reader) Lookup(name string) (*Dataset, bool) {
	r.clock.Compute(r.cost.LookupCost(len(r.sets)))
	r.Metrics.Counter("hdf.lookups").Inc()
	i, ok := r.names[name]
	if !ok {
		return nil, false
	}
	return r.sets[i], true
}

// LookupPrefix returns all datasets whose name starts with prefix, in file
// order, charging one lookup.
func (r *Reader) LookupPrefix(prefix string) []*Dataset {
	r.clock.Compute(r.cost.LookupCost(len(r.sets)))
	r.Metrics.Counter("hdf.lookups").Inc()
	var out []*Dataset
	for _, d := range r.sets {
		if strings.HasPrefix(d.Name, prefix) {
			out = append(out, d)
		}
	}
	return out
}

// ReadData reads a dataset's logical bytes, inflating deflate-compressed
// storage transparently. Datasets carrying a CRC32C (version-3 writers)
// are verified before use; a mismatch reports ErrChecksum with file and
// dataset context and bumps the hdf.checksum_failures counter.
func (r *Reader) ReadData(d *Dataset) ([]byte, error) {
	buf := make([]byte, d.length)
	if _, err := r.f.ReadAt(buf, d.offset); err != nil {
		return nil, fmt.Errorf("hdf: reading %q: %w", d.Name, err)
	}
	if want, ok := d.CRC(); ok {
		if got := Checksum(buf); got != want {
			r.Metrics.Counter("hdf.checksum_failures").Inc()
			return nil, fmt.Errorf("%w: %s dataset %q: stored crc32c %08x, computed %08x",
				ErrChecksum, r.f.Name(), d.Name, want, got)
		}
	}
	r.Metrics.Counter("hdf.datasets_read").Inc()
	r.Metrics.Counter("hdf.bytes_read").Add(int64(len(buf)))
	if !d.Compressed() {
		return buf, nil
	}
	out, err := InflateStored(buf, d.Len()*int64(d.Type.Size()))
	if err != nil {
		return nil, fmt.Errorf("hdf: %q: %w", d.Name, err)
	}
	return out, nil
}

// InflateStored inflates a deflate-compressed stored payload and checks it
// against the expected logical size. It is the decompression step shared
// by ReadData and the catalog's direct offset reads, which fetch stored
// bytes without going through a Reader.
func InflateStored(stored []byte, logical int64) ([]byte, error) {
	zr := flate.NewReader(bytes.NewReader(stored))
	out, err := io.ReadAll(io.LimitReader(zr, logical+1))
	if err != nil {
		return nil, fmt.Errorf("inflating: %w", err)
	}
	if int64(len(out)) != logical {
		return nil, fmt.Errorf("inflated to %d bytes, want %d", len(out), logical)
	}
	return out, nil
}

// Close closes the underlying file.
func (r *Reader) Close() error { return r.f.Close() }

// readHeader validates the fixed header against the actual file size and
// returns (version, dirOff, count). All failure modes of garbage input —
// wrong magic, unknown version, offsets outside the file — are errors,
// never panics.
func readHeader(f rt.File, size int64) (uint32, int64, int, error) {
	if size < headerSize {
		return 0, 0, 0, fmt.Errorf("hdf: %s too short for a header (%d bytes)", f.Name(), size)
	}
	hdr := make([]byte, headerSize)
	if _, err := f.ReadAt(hdr, 0); err != nil {
		return 0, 0, 0, fmt.Errorf("hdf: reading header of %s: %w", f.Name(), err)
	}
	if string(hdr[:4]) != Magic {
		return 0, 0, 0, fmt.Errorf("hdf: %s is not an RHDF file", f.Name())
	}
	version := binary.LittleEndian.Uint32(hdr[4:])
	if version < minVersion || version > Version {
		return 0, 0, 0, fmt.Errorf("hdf: %s has version %d, want %d..%d", f.Name(), version, minVersion, Version)
	}
	dirOff := int64(binary.LittleEndian.Uint64(hdr[8:]))
	count := int(binary.LittleEndian.Uint32(hdr[16:]))
	if dirOff == 0 {
		return 0, 0, 0, fmt.Errorf("hdf: %s has no directory (incomplete write?)", f.Name())
	}
	if dirOff < headerSize || dirOff > size {
		return 0, 0, 0, fmt.Errorf("hdf: %s directory offset %d outside file [%d,%d]", f.Name(), dirOff, headerSize, size)
	}
	// A directory entry is at least 22 bytes (empty name, no dims, no
	// attrs) in every version, so a header claiming more sets than could
	// fit is garbage — reject it before decodeDir sizes any allocation.
	if maxSets := (size - dirOff) / 22; int64(count) > maxSets || count < 0 {
		return 0, 0, 0, fmt.Errorf("hdf: %s header claims %d datasets, directory holds at most %d", f.Name(), count, maxSets)
	}
	return version, dirOff, count, nil
}

func decodeDir(b []byte, version uint32) ([]*Dataset, error) {
	p := &parser{b: b}
	n := int(p.u32())
	// Cap the allocation by what the directory bytes could possibly hold;
	// the count is validated against the header afterwards.
	maxSets := len(b) / 22
	if n > maxSets {
		return nil, fmt.Errorf("corrupt directory: %d datasets cannot fit in %d bytes", n, len(b))
	}
	sets := make([]*Dataset, 0, n)
	for i := 0; i < n; i++ {
		d := &Dataset{}
		d.Name = p.str()
		d.Type = DType(p.u8())
		d.flags = p.u8()
		nd := int(p.u8())
		d.Dims = make([]int64, nd)
		for j := range d.Dims {
			d.Dims[j] = int64(p.u64())
		}
		d.offset = int64(p.u64())
		d.length = int64(p.u64())
		if version >= 3 {
			d.crc = p.u32()
		} else {
			d.flags &^= flagHasCRC
		}
		na := int(p.u16())
		d.Attrs = make([]Attr, na)
		for j := range d.Attrs {
			d.Attrs[j].Name = p.str()
			d.Attrs[j].Type = DType(p.u8())
			ln := int(p.u32())
			d.Attrs[j].Data = p.bytes(ln)
		}
		if p.err != nil {
			return nil, fmt.Errorf("corrupt directory at dataset %d: %w", i, p.err)
		}
		sets = append(sets, d)
	}
	return sets, nil
}

// DirInfo summarizes a committed RHDF file for the snapshot manifest: its
// size, the CRC32C of its directory bytes, and its dataset count. It reads
// only the header and directory, not the dataset payloads.
func DirInfo(fsys rt.FS, name string) (size int64, dirCRC uint32, numSets int, err error) {
	size, dirCRC, sets, err := ScanDir(fsys, name)
	if err != nil {
		return 0, 0, 0, err
	}
	return size, dirCRC, len(sets), nil
}

// ScanDir reads and decodes a committed RHDF file's directory without
// touching dataset payloads, returning the file size, the CRC32C of the raw
// directory bytes, and the full dataset descriptors (names, shapes, extents,
// per-dataset CRCs). The snapshot commit path uses it to derive both the
// manifest file entry and the block-catalog index from a single pass —
// the file's own directory is the per-file index.
func ScanDir(fsys rt.FS, name string) (size int64, dirCRC uint32, sets []*Dataset, err error) {
	f, err := fsys.Open(name)
	if err != nil {
		return 0, 0, nil, err
	}
	defer f.Close()
	size, err = f.Size()
	if err != nil {
		return 0, 0, nil, err
	}
	version, dirOff, count, err := readHeader(f, size)
	if err != nil {
		return 0, 0, nil, err
	}
	dir := make([]byte, size-dirOff)
	if _, err := f.ReadAt(dir, dirOff); err != nil {
		return 0, 0, nil, fmt.Errorf("hdf: reading directory of %s: %w", f.Name(), err)
	}
	sets, err = decodeDir(dir, version)
	if err != nil {
		return 0, 0, nil, fmt.Errorf("hdf: %s: %w", f.Name(), err)
	}
	if len(sets) != count {
		return 0, 0, nil, fmt.Errorf("hdf: %s header says %d datasets, directory has %d", f.Name(), count, len(sets))
	}
	return size, Checksum(dir), sets, nil
}

// DirEntries returns a committed RHDF file's dataset descriptors without
// reading payload bytes — the scan-side building block for discovering which
// panes a file holds when no catalog is available.
func DirEntries(fsys rt.FS, name string) ([]*Dataset, error) {
	_, _, sets, err := ScanDir(fsys, name)
	return sets, err
}

// parser is a bounds-checked little-endian cursor.
type parser struct {
	b   []byte
	off int
	err error
}

func (p *parser) need(n int) bool {
	if p.err != nil {
		return false
	}
	if p.off+n > len(p.b) {
		p.err = fmt.Errorf("truncated at offset %d (need %d of %d)", p.off, n, len(p.b))
		return false
	}
	return true
}

func (p *parser) u8() uint8 {
	if !p.need(1) {
		return 0
	}
	v := p.b[p.off]
	p.off++
	return v
}

func (p *parser) u16() uint16 {
	if !p.need(2) {
		return 0
	}
	v := binary.LittleEndian.Uint16(p.b[p.off:])
	p.off += 2
	return v
}

func (p *parser) u32() uint32 {
	if !p.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(p.b[p.off:])
	p.off += 4
	return v
}

func (p *parser) u64() uint64 {
	if !p.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(p.b[p.off:])
	p.off += 8
	return v
}

func (p *parser) bytes(n int) []byte {
	if !p.need(n) {
		return nil
	}
	v := append([]byte(nil), p.b[p.off:p.off+n]...)
	p.off += n
	return v
}

func (p *parser) str() string {
	n := int(p.u16())
	return string(p.bytes(n))
}

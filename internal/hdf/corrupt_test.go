package hdf

// Hardening tests: hand-corrupted headers and directories must come back
// as errors with file context — never panics, never absurd allocations —
// and payload damage must surface as ErrChecksum.

import (
	"encoding/binary"
	"errors"
	"testing"

	"genxio/internal/metrics"
	"genxio/internal/rt"
)

// validFileBytes writes a small committed RHDF file and returns its raw
// bytes for mutation.
func validFileBytes(t *testing.T) []byte {
	t.Helper()
	fsys, clock := newFile(t)
	w, err := Create(fsys, "v.rhdf", clock, NullProfile())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.CreateDataset("fluid.1.p", F64, []int64{4}, []Attr{F64Attr("time", 0.5)}, F64Bytes([]float64{1, 2, 3, 4})); err != nil {
		t.Fatal(err)
	}
	if err := w.CreateDataset("fluid.1.T", F64, []int64{2}, nil, F64Bytes([]float64{300, 301})); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := fsys.Open("v.rhdf")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sz, _ := f.Size()
	b := make([]byte, sz)
	if _, err := f.ReadAt(b, 0); err != nil {
		t.Fatal(err)
	}
	return b
}

func openRaw(t *testing.T, b []byte) error {
	t.Helper()
	fsys := rt.NewMemFS()
	f, _ := fsys.Create("m.rhdf")
	if len(b) > 0 {
		if _, err := f.WriteAt(b, 0); err != nil {
			t.Fatal(err)
		}
	}
	f.Close()
	r, err := Open(fsys, "m.rhdf", rt.NewWallClock(), NullProfile())
	if err == nil {
		r.Close()
	}
	return err
}

func TestCorruptHeaderRejected(t *testing.T) {
	valid := validFileBytes(t)
	// Sanity: the unmutated bytes open cleanly.
	if err := openRaw(t, valid); err != nil {
		t.Fatalf("pristine copy rejected: %v", err)
	}
	dirOff := binary.LittleEndian.Uint64(valid[8:])

	cases := []struct {
		name   string
		mutate func(b []byte) []byte
	}{
		{"empty file", func(b []byte) []byte { return nil }},
		{"truncated header", func(b []byte) []byte { return b[:headerSize-7] }},
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }},
		{"version zero", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[4:], 0)
			return b
		}},
		{"version from the future", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[4:], Version+1)
			return b
		}},
		{"directory offset zero", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[8:], 0)
			return b
		}},
		{"directory offset before header end", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[8:], headerSize-1)
			return b
		}},
		{"directory offset past EOF", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[8:], uint64(len(b))+100)
			return b
		}},
		{"directory offset wraps negative", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[8:], 1<<63)
			return b
		}},
		{"absurd dataset count", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[16:], 0xfffffff)
			return b
		}},
		{"count disagrees with directory", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[16:], 1)
			return b
		}},
		{"truncated directory", func(b []byte) []byte { return b[:len(b)-3] }},
		{"directory count inflated", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[dirOff:], 0x7fffffff)
			return b
		}},
		{"dataset offset outside data region", func(b []byte) []byte {
			// First entry layout: u32 count, u16 name len, name, u8 type,
			// u8 flags, u8 ndims, dims..., then u64 offset.
			p := dirOff + 4
			nameLen := uint64(binary.LittleEndian.Uint16(b[p:]))
			p += 2 + nameLen + 3 + 8 // name, type/flags/ndims, one dim
			binary.LittleEndian.PutUint64(b[p:], uint64(len(b))+1000)
			return b
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.mutate(append([]byte(nil), valid...))
			if err := openRaw(t, b); err == nil {
				t.Fatal("corrupt file accepted")
			}
		})
	}
}

// TestChecksumMismatchOnRead flips one payload bit: the directory still
// parses, so Open succeeds, but ReadData must fail with ErrChecksum and
// bump hdf.checksum_failures.
func TestChecksumMismatchOnRead(t *testing.T) {
	b := validFileBytes(t)
	b[headerSize+3] ^= 0x10 // inside the first dataset's payload

	fsys := rt.NewMemFS()
	f, _ := fsys.Create("flip.rhdf")
	f.WriteAt(b, 0)
	f.Close()

	reg := metrics.New()
	r, err := Open(fsys, "flip.rhdf", rt.NewWallClock(), NullProfile())
	if err != nil {
		t.Fatalf("payload damage must not fail Open (directory is intact): %v", err)
	}
	defer r.Close()
	r.Metrics = reg
	ds, ok := r.Lookup("fluid.1.p")
	if !ok {
		t.Fatal("dataset missing")
	}
	if want, ok := ds.CRC(); !ok || want == 0 {
		t.Fatalf("v3 dataset carries no CRC: %v %v", want, ok)
	}
	_, err = r.ReadData(ds)
	if !errors.Is(err, ErrChecksum) {
		t.Fatalf("ReadData error = %v, want ErrChecksum", err)
	}
	for _, frag := range []string{"flip.rhdf", "fluid.1.p"} {
		if !contains(err.Error(), frag) {
			t.Fatalf("checksum error %q lacks context %q", err, frag)
		}
	}
	if got := reg.Counter("hdf.checksum_failures").Value(); got != 1 {
		t.Fatalf("hdf.checksum_failures = %d, want 1", got)
	}
	// The undamaged dataset still reads.
	ds2, _ := r.Lookup("fluid.1.T")
	if _, err := r.ReadData(ds2); err != nil {
		t.Fatalf("undamaged dataset unreadable: %v", err)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestCreateLeavesPreviousFileUntilCommit is the atomic-replace
// regression test: a new Create over an existing name stages at a
// temporary, so a crash (no Close) or a failed commit rename leaves the
// previous committed file bit-identical.
func TestCreateLeavesPreviousFileUntilCommit(t *testing.T) {
	fsys, clock := newFile(t)
	w, err := Create(fsys, "snap.rhdf", clock, NullProfile())
	if err != nil {
		t.Fatal(err)
	}
	old := F64Bytes([]float64{10, 20, 30})
	if err := w.CreateDataset("x", F64, []int64{3}, nil, old); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash mid-rewrite: the writer stages at snap.rhdf.tmp and never
	// commits.
	w2, err := Create(fsys, "snap.rhdf", clock, NullProfile())
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.CreateDataset("x", F64, []int64{1}, nil, F64Bytes([]float64{-1})); err != nil {
		t.Fatal(err)
	}
	// no Close — simulated crash

	r, err := Open(fsys, "snap.rhdf", clock, NullProfile())
	if err != nil {
		t.Fatalf("previous generation unreadable after crashed rewrite: %v", err)
	}
	defer r.Close()
	ds, ok := r.Lookup("x")
	if !ok {
		t.Fatal("dataset gone")
	}
	got, err := r.ReadData(ds)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(old) {
		t.Fatal("previous file's data changed before the new one committed")
	}
	// The staged temporary is visible as residue, never under the final
	// name.
	if _, err := fsys.Open("snap.rhdf" + TmpSuffix); err != nil {
		t.Fatalf("staged temporary missing: %v", err)
	}
}

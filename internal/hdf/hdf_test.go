package hdf

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"genxio/internal/rt"
)

func newFile(t *testing.T) (rt.FS, rt.Clock) {
	t.Helper()
	return rt.NewMemFS(), rt.NewWallClock()
}

func TestWriteReadRoundTrip(t *testing.T) {
	fsys, clock := newFile(t)
	w, err := Create(fsys, "a.rhdf", clock, NullProfile())
	if err != nil {
		t.Fatal(err)
	}
	coords := []float64{0, 0, 0, 1, 0, 0, 0, 1, 0, 0, 0, 1}
	attrs := []Attr{
		StrAttr("units", "m"),
		F64Attr("time", 0.83),
		I32Attr("ghost", 1, 2),
	}
	if err := w.CreateDataset("/fluid/pane0001/coords", F64, []int64{4, 3}, attrs, F64Bytes(coords)); err != nil {
		t.Fatal(err)
	}
	press := []float32{101.3, 99.8}
	if err := w.CreateDataset("/fluid/pane0001/pressure", F32, []int64{2}, nil, F32Bytes(press)); err != nil {
		t.Fatal(err)
	}
	conn := []int32{0, 1, 2, 3}
	if err := w.CreateDataset("/fluid/pane0001/conn", I32, []int64{1, 4}, nil, I32Bytes(conn)); err != nil {
		t.Fatal(err)
	}
	if w.NumDatasets() != 3 {
		t.Fatalf("NumDatasets = %d", w.NumDatasets())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(fsys, "a.rhdf", clock, NullProfile())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.NumDatasets() != 3 {
		t.Fatalf("reader NumDatasets = %d", r.NumDatasets())
	}
	ds, ok := r.Lookup("/fluid/pane0001/coords")
	if !ok {
		t.Fatal("coords not found")
	}
	if ds.Type != F64 || fmt.Sprint(ds.Dims) != "[4 3]" || ds.Len() != 12 {
		t.Fatalf("descriptor %+v", ds)
	}
	raw, err := r.ReadData(ds)
	if err != nil {
		t.Fatal(err)
	}
	got := BytesF64(raw)
	for i := range coords {
		if got[i] != coords[i] {
			t.Fatalf("coords[%d] = %v, want %v", i, got[i], coords[i])
		}
	}
	a, ok := ds.Attr("units")
	if !ok || a.Str() != "m" {
		t.Fatalf("units attr = %+v, %v", a, ok)
	}
	tm, _ := ds.Attr("time")
	if v := tm.F64s(); len(v) != 1 || v[0] != 0.83 {
		t.Fatalf("time attr = %v", v)
	}
	g, _ := ds.Attr("ghost")
	if v := g.I32s(); len(v) != 2 || v[0] != 1 || v[1] != 2 {
		t.Fatalf("ghost attr = %v", v)
	}
	if _, ok := ds.Attr("missing"); ok {
		t.Fatal("found missing attr")
	}

	ps, ok := r.Lookup("/fluid/pane0001/pressure")
	if !ok {
		t.Fatal("pressure missing")
	}
	raw, _ = r.ReadData(ps)
	if p := BytesF32(raw); p[0] != 101.3 || p[1] != 99.8 {
		t.Fatalf("pressure = %v", p)
	}
}

func TestDuplicateNameRejected(t *testing.T) {
	fsys, clock := newFile(t)
	w, _ := Create(fsys, "d.rhdf", clock, NullProfile())
	if err := w.CreateDataset("x", U8, []int64{1}, nil, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := w.CreateDataset("x", U8, []int64{1}, nil, []byte{2}); err == nil {
		t.Fatal("duplicate dataset accepted")
	}
	w.Close()
}

func TestDimsMismatchRejected(t *testing.T) {
	fsys, clock := newFile(t)
	w, _ := Create(fsys, "m.rhdf", clock, NullProfile())
	if err := w.CreateDataset("x", F64, []int64{3}, nil, make([]byte, 16)); err == nil {
		t.Fatal("size mismatch accepted")
	}
	if err := w.CreateDataset("y", F64, []int64{-1}, nil, nil); err == nil {
		t.Fatal("negative dim accepted")
	}
	w.Close()
}

func TestWriteAfterCloseRejected(t *testing.T) {
	fsys, clock := newFile(t)
	w, _ := Create(fsys, "c.rhdf", clock, NullProfile())
	w.Close()
	if err := w.CreateDataset("x", U8, []int64{0}, nil, nil); err == nil {
		t.Fatal("write after close accepted")
	}
	if err := w.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestEmptyFile(t *testing.T) {
	fsys, clock := newFile(t)
	w, _ := Create(fsys, "e.rhdf", clock, NullProfile())
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(fsys, "e.rhdf", clock, NullProfile())
	if err != nil {
		t.Fatal(err)
	}
	if r.NumDatasets() != 0 {
		t.Fatalf("datasets = %d", r.NumDatasets())
	}
	r.Close()
}

func TestZeroLengthDataset(t *testing.T) {
	fsys, clock := newFile(t)
	w, _ := Create(fsys, "z.rhdf", clock, NullProfile())
	if err := w.CreateDataset("empty", F64, []int64{0, 3}, nil, nil); err != nil {
		t.Fatal(err)
	}
	w.Close()
	r, _ := Open(fsys, "z.rhdf", clock, NullProfile())
	ds, ok := r.Lookup("empty")
	if !ok || ds.Len() != 0 || ds.NumBytes() != 0 {
		t.Fatalf("empty dataset %+v %v", ds, ok)
	}
	data, err := r.ReadData(ds)
	if err != nil || len(data) != 0 {
		t.Fatalf("read empty: %v %v", data, err)
	}
	r.Close()
}

func TestOpenAppend(t *testing.T) {
	fsys, clock := newFile(t)
	w, _ := Create(fsys, "ap.rhdf", clock, NullProfile())
	w.CreateDataset("first", I32, []int64{2}, nil, I32Bytes([]int32{1, 2}))
	w.Close()

	w2, err := OpenAppend(fsys, "ap.rhdf", clock, NullProfile())
	if err != nil {
		t.Fatal(err)
	}
	if w2.NumDatasets() != 1 {
		t.Fatalf("appender sees %d datasets", w2.NumDatasets())
	}
	if err := w2.CreateDataset("second", I32, []int64{1}, nil, I32Bytes([]int32{3})); err != nil {
		t.Fatal(err)
	}
	if err := w2.CreateDataset("first", I32, []int64{1}, nil, I32Bytes([]int32{9})); err == nil {
		t.Fatal("append allowed duplicate of pre-existing dataset")
	}
	w2.Close()

	r, _ := Open(fsys, "ap.rhdf", clock, NullProfile())
	defer r.Close()
	if r.NumDatasets() != 2 {
		t.Fatalf("after append: %d datasets", r.NumDatasets())
	}
	d1, _ := r.Lookup("first")
	raw, _ := r.ReadData(d1)
	if v := BytesI32(raw); v[0] != 1 || v[1] != 2 {
		t.Fatalf("first = %v", v)
	}
	d2, _ := r.Lookup("second")
	raw, _ = r.ReadData(d2)
	if v := BytesI32(raw); v[0] != 3 {
		t.Fatalf("second = %v", v)
	}
}

func TestLookupPrefix(t *testing.T) {
	fsys, clock := newFile(t)
	w, _ := Create(fsys, "p.rhdf", clock, NullProfile())
	for _, name := range []string{"/a/p1/x", "/a/p1/y", "/a/p2/x", "/b/p1/x"} {
		w.CreateDataset(name, U8, []int64{1}, nil, []byte{0})
	}
	w.Close()
	r, _ := Open(fsys, "p.rhdf", clock, NullProfile())
	defer r.Close()
	got := r.LookupPrefix("/a/p1/")
	if len(got) != 2 || got[0].Name != "/a/p1/x" || got[1].Name != "/a/p1/y" {
		var names []string
		for _, d := range got {
			names = append(names, d.Name)
		}
		t.Fatalf("prefix match = %v", names)
	}
	if len(r.LookupPrefix("/zzz")) != 0 {
		t.Fatal("false prefix match")
	}
	if len(r.Names()) != 4 {
		t.Fatalf("Names = %v", r.Names())
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	fsys, clock := newFile(t)
	f, _ := fsys.Create("bad")
	f.WriteAt([]byte("this is not an RHDF file at all......."), 0)
	f.Close()
	if _, err := Open(fsys, "bad", clock, NullProfile()); err == nil {
		t.Fatal("garbage accepted")
	}
	// Unclosed file: header present, no directory.
	w, _ := Create(fsys, "unclosed", clock, NullProfile())
	w.CreateDataset("x", U8, []int64{1}, nil, []byte{1})
	// no Close
	if _, err := Open(fsys, "unclosed", clock, NullProfile()); err == nil {
		t.Fatal("directoryless file accepted")
	}
	if _, err := Open(fsys, "missing", clock, NullProfile()); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestCorruptDirectoryDetected(t *testing.T) {
	fsys, clock := newFile(t)
	w, _ := Create(fsys, "corrupt", clock, NullProfile())
	w.CreateDataset("x", F64, []int64{4}, nil, F64Bytes([]float64{1, 2, 3, 4}))
	w.Close()
	// Truncate inside the directory.
	f, _ := fsys.Open("corrupt")
	sz, _ := f.Size()
	f.Truncate(sz - 5)
	f.Close()
	if _, err := Open(fsys, "corrupt", clock, NullProfile()); err == nil {
		t.Fatal("corrupt directory accepted")
	}
}

func TestRoundTripProperty(t *testing.T) {
	fsys, clock := newFile(t)
	i := 0
	f := func(vals []float64, i32s []int32, aname string) bool {
		i++
		name := fmt.Sprintf("f%d.rhdf", i)
		aname = strings.ToValidUTF8(aname, "_")
		if len(aname) > 60000 {
			aname = aname[:60000]
		}
		w, err := Create(fsys, name, clock, NullProfile())
		if err != nil {
			return false
		}
		for j, v := range vals {
			if math.IsNaN(v) {
				vals[j] = 0
			}
		}
		attrs := []Attr{StrAttr("n", aname), I32Attr("vals", i32s...)}
		if err := w.CreateDataset("d", F64, []int64{int64(len(vals))}, attrs, F64Bytes(vals)); err != nil {
			return false
		}
		if err := w.Close(); err != nil {
			return false
		}
		r, err := Open(fsys, name, clock, NullProfile())
		if err != nil {
			return false
		}
		defer r.Close()
		ds, ok := r.Lookup("d")
		if !ok {
			return false
		}
		raw, err := r.ReadData(ds)
		if err != nil {
			return false
		}
		got := BytesF64(raw)
		if len(got) != len(vals) {
			return false
		}
		for j := range got {
			if got[j] != vals[j] {
				return false
			}
		}
		a, _ := ds.Attr("n")
		b, _ := ds.Attr("vals")
		if a.Str() != aname || len(b.I32s()) != len(i32s) {
			return false
		}
		for j, v := range b.I32s() {
			if v != i32s[j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConversionRoundTrips(t *testing.T) {
	if err := quick.Check(func(v []float64) bool {
		got := BytesF64(F64Bytes(v))
		if len(got) != len(v) {
			return false
		}
		for i := range v {
			if math.Float64bits(got[i]) != math.Float64bits(v[i]) {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
	if err := quick.Check(func(v []int32) bool {
		got := BytesI32(I32Bytes(v))
		if len(got) != len(v) {
			return false
		}
		for i := range v {
			if got[i] != v[i] {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
	if err := quick.Check(func(v []int64) bool {
		got := BytesI64(I64Bytes(v))
		if len(got) != len(v) {
			return false
		}
		for i := range v {
			if got[i] != v[i] {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
	if err := quick.Check(func(v []float32) bool {
		got := BytesF32(F32Bytes(v))
		if len(got) != len(v) {
			return false
		}
		for i := range v {
			if math.Float32bits(got[i]) != math.Float32bits(v[i]) {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDTypeSizes(t *testing.T) {
	cases := map[DType]int{F64: 8, F32: 4, I64: 8, I32: 4, U8: 1, DType(99): 0}
	for typ, want := range cases {
		if got := typ.Size(); got != want {
			t.Errorf("%v.Size() = %d, want %d", typ, got, want)
		}
	}
	if F64.String() != "float64" || U8.String() != "uint8" {
		t.Error("DType.String names wrong")
	}
}

// countClock counts charged compute seconds, to verify cost-profile
// charging.
type countClock struct{ total float64 }

func (c *countClock) Now() float64      { return 0 }
func (c *countClock) Sleep(d float64)   {}
func (c *countClock) Compute(d float64) { c.total += d }

func TestCostCharging(t *testing.T) {
	fsys := rt.NewMemFS()
	write := func(profile CostProfile, n int) float64 {
		clock := &countClock{}
		w, _ := Create(fsys, "cost_"+profile.Name, clock, profile)
		for i := 0; i < n; i++ {
			w.CreateDataset(fmt.Sprintf("d%04d", i), U8, []int64{1}, nil, []byte{0})
		}
		w.Close()
		return clock.total
	}
	const n = 400
	h4 := write(HDF4Profile(), n)
	h5 := write(HDF5Profile(), n)
	if h4 <= h5 {
		t.Fatalf("HDF4 create cost %v should exceed HDF5 %v at %d datasets", h4, h5, n)
	}
	// HDF4 must be superlinear: twice the datasets, more than twice the cost.
	h4half := write(HDF4Profile(), n/2)
	if h4 < 2.5*h4half {
		t.Fatalf("HDF4 cost not superlinear: %v vs %v at half size", h4, h4half)
	}
	// HDF5 should be close to linear.
	h5half := write(HDF5Profile(), n/2)
	if h5 > 2.5*h5half {
		t.Fatalf("HDF5 cost superlinear: %v vs %v at half size", h5, h5half)
	}
	if write(NullProfile(), n) != 0 {
		t.Fatal("null profile charged time")
	}
}

func TestLookupCostGrowth(t *testing.T) {
	p4, p5 := HDF4Profile(), HDF5Profile()
	if p4.LookupCost(1000) <= p4.LookupCost(10) {
		t.Fatal("HDF4 lookup cost not growing")
	}
	ratio4 := p4.LookupCost(2000) / p4.LookupCost(100)
	ratio5 := p5.LookupCost(2000) / p5.LookupCost(100)
	if ratio4 <= ratio5 {
		t.Fatalf("HDF4 growth ratio %v should exceed HDF5 %v", ratio4, ratio5)
	}
	if p4.OpenCost(100) <= 0 || p5.CreateCost(0) <= 0 {
		t.Fatal("base costs must be positive")
	}
}

func TestBinaryPortabilityGolden(t *testing.T) {
	// The format must be stable: a golden byte image written by the
	// current writer must match exactly, so files are portable across
	// machines (little-endian on disk regardless of host).
	fsys, clock := newFile(t)
	w, _ := Create(fsys, "g.rhdf", clock, NullProfile())
	w.CreateDataset("g", I32, []int64{2}, []Attr{StrAttr("u", "K")}, I32Bytes([]int32{-1, 258}))
	w.Close()
	f, _ := fsys.Open("g.rhdf")
	sz, _ := f.Size()
	img := make([]byte, sz)
	f.ReadAt(img, 0)
	f.Close()

	want := []byte{
		'R', 'H', 'D', 'F', 3, 0, 0, 0, // magic, version
		32, 0, 0, 0, 0, 0, 0, 0, // dir offset = 24 + 8 data bytes
		1, 0, 0, 0, 0, 0, 0, 0, // 1 dataset + reserved
		0xff, 0xff, 0xff, 0xff, 2, 1, 0, 0, // -1, 258 little-endian
		1, 0, 0, 0, // dir: count=1
		1, 0, 'g', // name
		byte(I32), 2, 1, // type, flags (hasCRC), ndims
		2, 0, 0, 0, 0, 0, 0, 0, // dims[0]=2
		24, 0, 0, 0, 0, 0, 0, 0, // offset
		8, 0, 0, 0, 0, 0, 0, 0, // length
		0x00, 0x4e, 0xd9, 0xe5, // crc32c of the 8 stored bytes
		1, 0, // nattrs
		1, 0, 'u', // attr name
		byte(U8),
		1, 0, 0, 0, // attr len
		'K',
	}
	if !bytes.Equal(img, want) {
		t.Fatalf("golden image mismatch:\n got %v\nwant %v", img, want)
	}
}

func TestCompressionRoundTrip(t *testing.T) {
	fsys, clock := newFile(t)
	w, _ := Create(fsys, "z.rhdf", clock, NullProfile())
	w.Compress = true
	// Highly compressible payload.
	vals := make([]float64, 4096)
	for i := range vals {
		vals[i] = float64(i % 8)
	}
	if err := w.CreateDataset("big", F64, []int64{4096}, nil, F64Bytes(vals)); err != nil {
		t.Fatal(err)
	}
	// Small dataset stays raw even with compression on.
	if err := w.CreateDataset("small", I32, []int64{2}, nil, I32Bytes([]int32{1, 2})); err != nil {
		t.Fatal(err)
	}
	// Incompressible data (already-compressed-looking) stays raw.
	noise := make([]byte, 4096)
	st := uint32(12345)
	for i := range noise {
		st = st*1664525 + 1013904223
		noise[i] = byte(st >> 24)
	}
	if err := w.CreateDataset("noise", U8, []int64{4096}, nil, noise); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	sz, _ := fsys.Stat("z.rhdf")
	if sz >= 8*4096 {
		t.Fatalf("file %d bytes; compression saved nothing", sz)
	}

	r, err := Open(fsys, "z.rhdf", clock, NullProfile())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	big, _ := r.Lookup("big")
	if !big.Compressed() {
		t.Fatal("big dataset not compressed")
	}
	if big.NumBytes() >= 8*4096 {
		t.Fatalf("stored %d bytes, no savings", big.NumBytes())
	}
	raw, err := r.ReadData(big)
	if err != nil {
		t.Fatal(err)
	}
	got := BytesF64(raw)
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("big[%d] = %v, want %v", i, got[i], vals[i])
		}
	}
	small, _ := r.Lookup("small")
	if small.Compressed() {
		t.Fatal("small dataset compressed despite threshold")
	}
	nz, _ := r.Lookup("noise")
	nraw, err := r.ReadData(nz)
	if err != nil {
		t.Fatal(err)
	}
	if string(nraw) != string(noise) {
		t.Fatal("noise corrupted")
	}
}

func TestCompressedCorruptionDetected(t *testing.T) {
	fsys, clock := newFile(t)
	w, _ := Create(fsys, "c.rhdf", clock, NullProfile())
	w.Compress = true
	vals := make([]float64, 2048)
	if err := w.CreateDataset("d", F64, []int64{2048}, nil, F64Bytes(vals)); err != nil {
		t.Fatal(err)
	}
	w.Close()
	// Flip bytes inside the compressed stream.
	f, _ := fsys.Open("c.rhdf")
	f.WriteAt([]byte{0xde, 0xad, 0xbe, 0xef}, 30)
	f.Close()
	r, err := Open(fsys, "c.rhdf", clock, NullProfile())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	d, _ := r.Lookup("d")
	if _, err := r.ReadData(d); err == nil {
		t.Fatal("corrupted compressed stream read back without error")
	}
}

package hdf

// FuzzReaderOpen throws arbitrary bytes at the RHDF reader. The invariant
// is total: for any input, Open either fails with an error or yields a
// reader whose every dataset can be ReadData'd (possibly to a checksum
// error) — no panics, no runaway allocations. CI runs this as a short
// smoke (-fuzz=FuzzReaderOpen -fuzztime=20s) on top of the checked-in
// seed corpus executed by plain `go test`.

import (
	"testing"

	"genxio/internal/rt"
)

func FuzzReaderOpen(f *testing.F) {
	// Seeds: a pristine v3 file, a legacy v2 golden image, truncations,
	// and noise.
	fsys, clock := rt.NewMemFS(), rt.NewWallClock()
	w, err := Create(fsys, "seed.rhdf", clock, NullProfile())
	if err != nil {
		f.Fatal(err)
	}
	if err := w.CreateDataset("fluid.1.p", F64, []int64{3}, []Attr{StrAttr("units", "Pa")}, F64Bytes([]float64{1, 2, 3})); err != nil {
		f.Fatal(err)
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	file, err := fsys.Open("seed.rhdf")
	if err != nil {
		f.Fatal(err)
	}
	sz, _ := file.Size()
	seed := make([]byte, sz)
	file.ReadAt(seed, 0)
	file.Close()

	f.Add(seed)
	f.Add(seed[:headerSize])
	f.Add(seed[:len(seed)-5])
	f.Add([]byte(Magic))
	f.Add([]byte("not an rhdf file"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		fsys := rt.NewMemFS()
		fl, _ := fsys.Create("f.rhdf")
		if len(data) > 0 {
			fl.WriteAt(data, 0)
		}
		fl.Close()
		r, err := Open(fsys, "f.rhdf", rt.NewWallClock(), NullProfile())
		if err != nil {
			return
		}
		defer r.Close()
		for _, d := range r.Datasets() {
			r.ReadData(d) // must not panic; errors are fine
		}
	})
}

package hdf

import "math"

// CostProfile models the dataset-management overhead of the underlying
// scientific I/O library, charged to the calling process's clock on top of
// the byte-transfer cost charged by the filesystem. The paper (and its
// reference [13]) reports that HDF4's per-dataset access cost grows with
// the number of datasets already in a file — its data descriptors form a
// linearly scanned list — while HDF5 scales much better (indexed).
//
// Charged costs:
//
//	create k-th dataset: CreateBase + CreatePer * growth(k)
//	lookup in a file of n datasets: LookupBase + LookupPer * growth(n)
//
// where growth is k for Linear profiles and log2(1+k) for Log profiles.
type CostProfile struct {
	Name       string
	CreateBase float64
	CreatePer  float64
	LookupBase float64
	LookupPer  float64
	Log        bool // false: linear growth (HDF4); true: logarithmic (HDF5)
}

func (c CostProfile) growth(k int) float64 {
	if k < 0 {
		k = 0
	}
	if c.Log {
		return math.Log2(1 + float64(k))
	}
	return float64(k)
}

// CreateCost returns the overhead of creating one more dataset in a file
// that already holds existing datasets.
func (c CostProfile) CreateCost(existing int) float64 {
	return c.CreateBase + c.CreatePer*c.growth(existing)
}

// LookupCost returns the overhead of locating one dataset in a file holding
// total datasets.
func (c CostProfile) LookupCost(total int) float64 {
	return c.LookupBase + c.LookupPer*c.growth(total)
}

// OpenCost returns the overhead of opening a file holding total datasets
// (reading its directory).
func (c CostProfile) OpenCost(total int) float64 {
	return c.LookupBase + c.LookupPer*c.growth(total)/2
}

// HDF4Profile returns the linear-scan profile: per-dataset cost grows with
// file population, matching the HDF4 behaviour the paper relies on.
func HDF4Profile() CostProfile {
	return CostProfile{
		Name:       "hdf4",
		CreateBase: 300e-6,
		CreatePer:  3e-6,
		LookupBase: 150e-6,
		LookupPer:  3.5e-6,
		Log:        false,
	}
}

// HDF5Profile returns the indexed profile with logarithmic growth.
func HDF5Profile() CostProfile {
	return CostProfile{
		Name:       "hdf5",
		CreateBase: 450e-6,
		CreatePer:  25e-6,
		LookupBase: 200e-6,
		LookupPer:  30e-6,
		Log:        true,
	}
}

// NullProfile charges nothing; use it when running for real (the real cost
// is the code itself).
func NullProfile() CostProfile { return CostProfile{Name: "null"} }

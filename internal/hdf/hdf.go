// Package hdf implements RHDF, a self-describing, binary-portable,
// hierarchical scientific data format in the spirit of HDF4/HDF5 as used by
// the paper: a file holds named, typed, n-dimensional datasets, each with
// typed attributes, organized by slash-separated path names (the paper's
// data blocks become neighboring datasets under a common prefix).
//
// The format is real — files written here are read back, inspected by
// cmd/rocketeer, and used for restart. For the performance studies, a
// CostProfile models the *management overhead* of the library that matters
// in the paper: HDF4's per-dataset bookkeeping cost grows linearly with the
// number of datasets already in the file (so access cost over a whole file
// is quadratic), while HDF5's indexed layout grows only logarithmically.
// This is the behaviour behind Table 1's restart asymmetry and the
// Rochdf-vs-Rocpanda file-count trade-off. The Null profile charges
// nothing and is used when running for real.
package hdf

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// Magic identifies an RHDF file.
const Magic = "RHDF"

// Version is the current format version. Version 2 added the per-dataset
// flags byte (deflate compression); version 3 added a CRC32C per directory
// entry covering the stored dataset bytes. Readers accept both.
const Version = 3

// minVersion is the oldest format version readers still accept.
const minVersion = 2

const headerSize = 24 // magic(4) version(4) dirOffset(8) numSets(4) reserved(4)

// HeaderSize returns the fixed RHDF header length in bytes. Corruption
// tooling uses it to aim injected damage at payload or directory bytes
// rather than the header.
func HeaderSize() int64 { return headerSize }

// ErrChecksum is wrapped in errors reported when stored bytes do not match
// their recorded CRC32C — the file committed but has since been damaged.
var ErrChecksum = errors.New("hdf: checksum mismatch")

// crcTable is the Castagnoli polynomial table shared by writers, readers
// and the snapshot manifest layer.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Checksum returns the CRC32C of b, the integrity check used throughout
// the RHDF format and the snapshot manifests.
func Checksum(b []byte) uint32 { return crc32.Checksum(b, crcTable) }

// DType enumerates dataset element types.
type DType uint8

// Element types.
const (
	F64 DType = iota + 1
	F32
	I64
	I32
	U8
)

// Size returns the element size in bytes.
func (t DType) Size() int {
	switch t {
	case F64, I64:
		return 8
	case F32, I32:
		return 4
	case U8:
		return 1
	}
	return 0
}

// String returns the conventional name of the type.
func (t DType) String() string {
	switch t {
	case F64:
		return "float64"
	case F32:
		return "float32"
	case I64:
		return "int64"
	case I32:
		return "int32"
	case U8:
		return "uint8"
	}
	return fmt.Sprintf("DType(%d)", uint8(t))
}

// Attr is a typed attribute attached to a dataset, stored inline in the
// file directory.
type Attr struct {
	Name string
	Type DType
	Data []byte
}

// StrAttr returns a string-valued attribute (stored as U8 bytes).
func StrAttr(name, value string) Attr {
	return Attr{Name: name, Type: U8, Data: []byte(value)}
}

// F64Attr returns a float64-array attribute.
func F64Attr(name string, values ...float64) Attr {
	return Attr{Name: name, Type: F64, Data: F64Bytes(values)}
}

// I32Attr returns an int32-array attribute.
func I32Attr(name string, values ...int32) Attr {
	return Attr{Name: name, Type: I32, Data: I32Bytes(values)}
}

// Str interprets the attribute payload as a string.
func (a Attr) Str() string { return string(a.Data) }

// F64s interprets the attribute payload as float64 values.
func (a Attr) F64s() []float64 { return BytesF64(a.Data) }

// I32s interprets the attribute payload as int32 values.
func (a Attr) I32s() []int32 { return BytesI32(a.Data) }

// Dataset flag bits.
const (
	flagDeflate = 1 << 0
	flagHasCRC  = 1 << 1 // crc field is valid (v3 writers; v2 datasets lack it)
)

// Dataset describes one named array in a file.
type Dataset struct {
	Name  string
	Type  DType
	Dims  []int64
	Attrs []Attr

	flags  uint8
	offset int64  // file offset of the stored data
	length int64  // stored data length in bytes (compressed size if deflated)
	crc    uint32 // CRC32C of the stored bytes, valid when flagHasCRC is set
}

// Compressed reports whether the dataset is stored deflate-compressed.
func (d *Dataset) Compressed() bool { return d.flags&flagDeflate != 0 }

// CRC returns the recorded CRC32C of the stored bytes and whether the
// dataset carries one (version-2 files and their appended datasets do not).
func (d *Dataset) CRC() (uint32, bool) { return d.crc, d.flags&flagHasCRC != 0 }

// Extent returns the file offset and stored byte length of the dataset's
// payload — the direct-read coordinates recorded by the block catalog, so
// restart can fetch the bytes without re-parsing the file's directory.
func (d *Dataset) Extent() (offset, length int64) { return d.offset, d.length }

// Len returns the number of elements (product of Dims).
func (d *Dataset) Len() int64 {
	n := int64(1)
	for _, dim := range d.Dims {
		n *= dim
	}
	return n
}

// NumBytes returns the stored size in bytes (the compressed size for
// deflated datasets; the logical size is Len() * Type.Size()).
func (d *Dataset) NumBytes() int64 { return d.length }

// Attr returns the named attribute and whether it exists.
func (d *Dataset) Attr(name string) (Attr, bool) {
	for _, a := range d.Attrs {
		if a.Name == name {
			return a, true
		}
	}
	return Attr{}, false
}

// Conversion helpers between typed slices and little-endian bytes. These
// are used throughout the I/O stack (datasets, attributes, wire encoding of
// data blocks).

// F64Bytes encodes float64 values as little-endian bytes.
func F64Bytes(v []float64) []byte {
	out := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(x))
	}
	return out
}

// BytesF64 decodes little-endian bytes into float64 values.
func BytesF64(b []byte) []float64 {
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

// F32Bytes encodes float32 values as little-endian bytes.
func F32Bytes(v []float32) []byte {
	out := make([]byte, 4*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint32(out[4*i:], math.Float32bits(x))
	}
	return out
}

// BytesF32 decodes little-endian bytes into float32 values.
func BytesF32(b []byte) []float32 {
	out := make([]float32, len(b)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

// I32Bytes encodes int32 values as little-endian bytes.
func I32Bytes(v []int32) []byte {
	out := make([]byte, 4*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint32(out[4*i:], uint32(x))
	}
	return out
}

// BytesI32 decodes little-endian bytes into int32 values.
func BytesI32(b []byte) []int32 {
	out := make([]int32, len(b)/4)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

// I64Bytes encodes int64 values as little-endian bytes.
func I64Bytes(v []int64) []byte {
	out := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(out[8*i:], uint64(x))
	}
	return out
}

// BytesI64 decodes little-endian bytes into int64 values.
func BytesI64(b []byte) []int64 {
	out := make([]int64, len(b)/8)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

// Package fssim provides the simulated shared filesystems of the paper's
// two evaluation platforms, as virtual-time models over real byte storage:
//
//   - NFS: the Turing development cluster's shared filesystem — one server
//     (reiserfs exported over NFS). Every request crosses the server's
//     network line (a FIFO resource, so concurrent streams share it
//     fairly); writes additionally pay the server disk, whose service
//     degrades under concurrent writers (the write contention of Table 1),
//     while reads are cache-friendly and essentially line-rate — which is
//     why Rochdf restart, with all processors reading, beats Rocpanda's
//     few servers (Section 7.1).
//
//   - GPFS: the Frost production platform's parallel filesystem — a pool
//     of server nodes (capacity-N resource), so aggregate bandwidth scales
//     to Servers × BWPerServer and then saturates.
//
// Files are backed by an rt.MemFS, so everything written is really there
// and restart paths genuinely re-read it. A model hands out per-process
// views (rt.FS) that charge time to the owning simulation process.
package fssim

import (
	"math"
	"sync/atomic"

	"genxio/internal/rt"
	"genxio/internal/sim"
)

// Model is a simulated filesystem: per-process views plus traffic
// accounting.
type Model interface {
	// View returns p's filesystem handle; all operations through it
	// charge virtual time to p.
	View(p *sim.Proc) rt.FS
	// Backing returns the real byte store, for cost-free post-run
	// inspection of what the simulation wrote.
	Backing() *rt.MemFS
	// BytesWritten returns the total bytes written so far.
	BytesWritten() int64
	// BytesRead returns the total bytes read so far.
	BytesRead() int64
}

// NFSParams configures the single-server NFS model. Bandwidths are bytes
// per second, latencies seconds.
type NFSParams struct {
	LineBW      float64 // server network line rate
	DiskWriteBW float64 // sustained server disk write bandwidth
	// StreamReadBW caps a single client's read throughput: NFS reads
	// proceed in small synchronous rsize windows, so one stream is
	// latency-bound far below the line rate. Aggregate read bandwidth
	// still grows with concurrent readers until the line saturates —
	// the paper's "NFS tolerates concurrent reads much better than
	// concurrent writes".
	StreamReadBW float64
	OpLatency    float64 // per data request (RPC round trip)
	MetaLatency  float64 // per metadata operation (create/open/stat/...)
	Interference func(writers int) float64
}

// DefaultInterference is the write-interference multiplier applied to disk
// service when k write streams are open concurrently. It has a linear
// floor (per-stream journal pressure) plus a bump peaking near 32 streams
// that relaxes at higher concurrency, where each stream's requests arrive
// slowly enough for the server to batch adjacent blocks — an empirical
// curve calibrated to the non-monotonic Rochdf write times of Table 1
// (worst near 32 writers, recovering by 64). The authors attribute the
// bump to write contention on the shared cluster; see EXPERIMENTS.md.
func DefaultInterference(k int) float64 {
	if k <= 1 {
		return 1
	}
	x := float64(k)
	u := x / 45
	return 1 + 0.02*x + 0.25*x*math.Exp(-u*u*u*u)
}

// NFS is the Turing-style single-server shared filesystem.
type NFS struct {
	params  NFSParams
	backing *rt.MemFS
	line    *sim.Resource // server network line (capacity 1)
	disk    *sim.Resource // server disk (capacity 1)
	writers int32         // in-flight write operations

	bytesWritten atomic.Int64
	bytesRead    atomic.Int64
}

// NewNFS returns an NFS model in env. Zero-valued params get defaults
// loosely matching a 2002-era departmental server reached over Myrinet
// IP: 90 MB/s line, 14 MB/s disk writes, 0.8 ms RPCs.
func NewNFS(env *sim.Env, params NFSParams) *NFS {
	if params.LineBW == 0 {
		params.LineBW = 90e6
	}
	if params.DiskWriteBW == 0 {
		params.DiskWriteBW = 15e6
	}
	if params.StreamReadBW == 0 {
		params.StreamReadBW = 0.75e6
	}
	if params.OpLatency == 0 {
		params.OpLatency = 0.8e-3
	}
	if params.MetaLatency == 0 {
		params.MetaLatency = 1.5e-3
	}
	if params.Interference == nil {
		params.Interference = DefaultInterference
	}
	return &NFS{
		params:  params,
		backing: rt.NewMemFS(),
		line:    env.NewResource("nfs.line", 1),
		disk:    env.NewResource("nfs.disk", 1),
	}
}

// View implements Model.
func (m *NFS) View(p *sim.Proc) rt.FS {
	return &costFS{fs: m.backing, ops: &nfsOps{m: m, p: p}}
}

// Backing implements Model.
func (m *NFS) Backing() *rt.MemFS { return m.backing }

// BytesWritten implements Model.
func (m *NFS) BytesWritten() int64 { return m.bytesWritten.Load() }

// BytesRead implements Model.
func (m *NFS) BytesRead() int64 { return m.bytesRead.Load() }

// nfsOps charges NFS costs for one process.
type nfsOps struct {
	m *NFS
	p *sim.Proc
}

func (o *nfsOps) meta() {
	o.m.line.Use(o.p, o.m.params.MetaLatency)
}

func (o *nfsOps) openWrite()  { o.m.writers++ }
func (o *nfsOps) closeWrite() { o.m.writers-- }

func (o *nfsOps) write(size int) {
	m := o.m
	k := int(m.writers)
	m.line.Use(o.p, m.params.OpLatency+float64(size)/m.params.LineBW)
	service := float64(size) / m.params.DiskWriteBW * m.params.Interference(k)
	m.disk.Use(o.p, service)
	m.bytesWritten.Add(int64(size))
}

func (o *nfsOps) read(size int) {
	m := o.m
	// Reads are served from the server's cache: the shared line charges
	// the wire time (fair among concurrent readers), while the RPC
	// latency and the stream's window-limited pacing are per-client and
	// overlap across readers — so aggregate read bandwidth grows with
	// reader count up to the line rate.
	m.line.Use(o.p, float64(size)/m.params.LineBW)
	o.p.Wait(m.params.OpLatency + float64(size)/m.params.StreamReadBW)
	m.bytesRead.Add(int64(size))
}

// GPFSParams configures the multi-server parallel filesystem model.
type GPFSParams struct {
	Servers     int     // number of filesystem server nodes
	BWPerServer float64 // bytes/s each server sustains
	OpLatency   float64
	MetaLatency float64
}

// GPFS is the Frost-style parallel filesystem.
type GPFS struct {
	params  GPFSParams
	backing *rt.MemFS
	pool    *sim.Resource // capacity = Servers

	bytesWritten atomic.Int64
	bytesRead    atomic.Int64
}

// NewGPFS returns a GPFS model. Defaults: 2 servers at 90 MB/s each,
// 0.5 ms ops — matching Frost's two GPFS server nodes and the FLASH I/O
// throughput ballpark the paper cites.
func NewGPFS(env *sim.Env, params GPFSParams) *GPFS {
	if params.Servers == 0 {
		params.Servers = 2
	}
	if params.BWPerServer == 0 {
		params.BWPerServer = 90e6
	}
	if params.OpLatency == 0 {
		params.OpLatency = 0.5e-3
	}
	if params.MetaLatency == 0 {
		params.MetaLatency = 1.0e-3
	}
	return &GPFS{
		params:  params,
		backing: rt.NewMemFS(),
		pool:    env.NewResource("gpfs.pool", params.Servers),
	}
}

// View implements Model.
func (m *GPFS) View(p *sim.Proc) rt.FS {
	return &costFS{fs: m.backing, ops: &gpfsOps{m: m, p: p}}
}

// Backing implements Model.
func (m *GPFS) Backing() *rt.MemFS { return m.backing }

// BytesWritten implements Model.
func (m *GPFS) BytesWritten() int64 { return m.bytesWritten.Load() }

// BytesRead implements Model.
func (m *GPFS) BytesRead() int64 { return m.bytesRead.Load() }

type gpfsOps struct {
	m *GPFS
	p *sim.Proc
}

func (o *gpfsOps) meta() {
	o.m.pool.Use(o.p, o.m.params.MetaLatency)
}

func (o *gpfsOps) openWrite()  {}
func (o *gpfsOps) closeWrite() {}

func (o *gpfsOps) write(size int) {
	o.m.pool.Use(o.p, o.m.params.OpLatency+float64(size)/o.m.params.BWPerServer)
	o.m.bytesWritten.Add(int64(size))
}

func (o *gpfsOps) read(size int) {
	o.m.pool.Use(o.p, o.m.params.OpLatency+float64(size)/o.m.params.BWPerServer)
	o.m.bytesRead.Add(int64(size))
}

package fssim

import (
	"fmt"
	"testing"

	"genxio/internal/sim"
)

// runWriters runs n processes each writing (or reading) size bytes through
// the model concurrently and returns the makespan in virtual seconds.
func runWriters(t *testing.T, mk func(env *sim.Env) Model, n, size int, read bool) float64 {
	t.Helper()
	env := sim.NewEnv()
	m := mk(env)
	if !read {
		for i := 0; i < n; i++ {
			i := i
			env.Spawn(fmt.Sprintf("w%d", i), func(p *sim.Proc) {
				fs := m.View(p)
				f, err := fs.Create(fmt.Sprintf("f%d", i))
				if err != nil {
					t.Error(err)
					return
				}
				f.WriteAt(make([]byte, size), 0)
				f.Close()
			})
		}
	} else {
		// Pre-populate without cost using a writer pass first.
		env.Spawn("prep", func(p *sim.Proc) {
			fs := m.View(p)
			for i := 0; i < n; i++ {
				f, _ := fs.Create(fmt.Sprintf("f%d", i))
				f.WriteAt(make([]byte, size), 0)
				f.Close()
			}
		})
		if err := env.Run(); err != nil {
			t.Fatal(err)
		}
		env = sim.NewEnv()
		m2 := mk(env)
		_ = m2
		// Rebuild on the same backing is awkward; instead measure read
		// after writes in one env, subtracting the write makespan.
		env = sim.NewEnv()
		m = mk(env)
		gate := env.NewEvent("writesDone")
		var writeEnd float64
		env.Spawn("prep2", func(p *sim.Proc) {
			fs := m.View(p)
			for i := 0; i < n; i++ {
				f, _ := fs.Create(fmt.Sprintf("f%d", i))
				f.WriteAt(make([]byte, size), 0)
				f.Close()
			}
			writeEnd = env.Now()
			gate.Trigger(nil)
		})
		for i := 0; i < n; i++ {
			i := i
			env.Spawn(fmt.Sprintf("r%d", i), func(p *sim.Proc) {
				p.WaitEvent(gate)
				fs := m.View(p)
				f, err := fs.Open(fmt.Sprintf("f%d", i))
				if err != nil {
					t.Error(err)
					return
				}
				buf := make([]byte, size)
				f.ReadAt(buf, 0)
				f.Close()
			})
		}
		if err := env.Run(); err != nil {
			t.Fatal(err)
		}
		return env.Now() - writeEnd
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	return env.Now()
}

func nfsModel(env *sim.Env) Model  { return NewNFS(env, NFSParams{}) }
func gpfsModel(env *sim.Env) Model { return NewGPFS(env, GPFSParams{}) }

func TestNFSWriteSlowerThanRead(t *testing.T) {
	// At high concurrency, aggregate writes collapse under interference
	// while concurrent reads scale to the line rate (the paper's NFS
	// asymmetry).
	const size = 1 << 20
	wr := runWriters(t, nfsModel, 48, size, false)
	rd := runWriters(t, nfsModel, 48, size, true)
	if wr < 3*rd {
		t.Fatalf("NFS writes (%.3fs) should be much slower than reads (%.3fs)", wr, rd)
	}
}

func TestNFSSingleStreamReadIsWindowLimited(t *testing.T) {
	// One reader is far below line rate; 16 readers of the same total
	// volume finish much sooner.
	const total = 16 << 20
	one := runWriters(t, nfsModel, 1, total, true)
	many := runWriters(t, nfsModel, 16, total/16, true)
	if many > one/4 {
		t.Fatalf("16 readers %.3fs vs 1 reader %.3fs; want >=4x speedup", many, one)
	}
}

func TestNFSWriteInterferencePeak(t *testing.T) {
	// Fixed total volume split across k writers: the interference model
	// must produce a worst case at moderate concurrency (Table 1's bump
	// at 32) and recover at higher concurrency.
	const total = 64 << 20
	t16 := runWriters(t, nfsModel, 16, total/16, false)
	t32 := runWriters(t, nfsModel, 32, total/32, false)
	t64 := runWriters(t, nfsModel, 64, total/64, false)
	if !(t32 > t16 && t32 > t64) {
		t.Fatalf("interference shape wrong: t16=%.2f t32=%.2f t64=%.2f", t16, t32, t64)
	}
}

func TestDefaultInterferenceShape(t *testing.T) {
	if DefaultInterference(1) != 1 {
		t.Fatal("single writer must be interference-free")
	}
	peak := 0.0
	peakAt := 0
	for k := 2; k <= 128; k++ {
		v := DefaultInterference(k)
		if v < 1 {
			t.Fatalf("interference(%d)=%v below 1", k, v)
		}
		if v > peak {
			peak, peakAt = v, k
		}
	}
	if peakAt < 16 || peakAt > 48 {
		t.Fatalf("interference peak at k=%d, want in [16,48]", peakAt)
	}
	if DefaultInterference(128) > DefaultInterference(peakAt) {
		t.Fatal("interference must relax past the peak")
	}
}

func TestGPFSAggregateScalesWithServers(t *testing.T) {
	const size = 8 << 20
	two := runWriters(t, func(env *sim.Env) Model {
		return NewGPFS(env, GPFSParams{Servers: 2})
	}, 8, size, false)
	eight := runWriters(t, func(env *sim.Env) Model {
		return NewGPFS(env, GPFSParams{Servers: 8})
	}, 8, size, false)
	if two < 3*eight {
		t.Fatalf("8-server GPFS (%.3f) should be ~4x faster than 2-server (%.3f)", eight, two)
	}
}

func TestGPFSFasterThanNFSForParallelWrites(t *testing.T) {
	const size = 4 << 20
	nfs := runWriters(t, nfsModel, 16, size, false)
	gpfs := runWriters(t, gpfsModel, 16, size, false)
	if gpfs > nfs/2 {
		t.Fatalf("GPFS writes %.3fs vs NFS %.3fs; production FS should win clearly", gpfs, nfs)
	}
}

func TestModelAccounting(t *testing.T) {
	env := sim.NewEnv()
	m := NewNFS(env, NFSParams{})
	env.Spawn("w", func(p *sim.Proc) {
		fs := m.View(p)
		f, _ := fs.Create("a")
		f.WriteAt(make([]byte, 1000), 0)
		f.Close()
		g, _ := fs.Open("a")
		buf := make([]byte, 400)
		g.ReadAt(buf, 0)
		g.Close()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if m.BytesWritten() != 1000 || m.BytesRead() != 400 {
		t.Fatalf("accounting: wrote %d read %d", m.BytesWritten(), m.BytesRead())
	}
}

func TestDataIntegrityThroughCostFS(t *testing.T) {
	env := sim.NewEnv()
	m := NewGPFS(env, GPFSParams{})
	env.Spawn("w", func(p *sim.Proc) {
		fs := m.View(p)
		f, _ := fs.Create("x")
		f.WriteAt([]byte("hello"), 0)
		f.Close()
	})
	env.Spawn("r", func(p *sim.Proc) {
		p.Wait(10) // after the writer
		fs := m.View(p)
		names, err := fs.List("")
		if err != nil || len(names) != 1 {
			t.Errorf("List = %v, %v", names, err)
			return
		}
		sz, _ := fs.Stat("x")
		if sz != 5 {
			t.Errorf("Stat = %d", sz)
		}
		f, err := fs.Open("x")
		if err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, 5)
		f.ReadAt(buf, 0)
		if string(buf) != "hello" {
			t.Errorf("read %q", buf)
		}
		if err := fs.Remove("x"); err != nil {
			t.Error(err)
		}
		f.Close()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestViewsShareBacking(t *testing.T) {
	env := sim.NewEnv()
	m := NewNFS(env, NFSParams{})
	env.Spawn("a", func(p *sim.Proc) {
		f, _ := m.View(p).Create("shared")
		f.WriteAt([]byte{42}, 0)
		f.Close()
	})
	env.Spawn("b", func(p *sim.Proc) {
		p.Wait(5)
		f, err := m.View(p).Open("shared")
		if err != nil {
			t.Error("views do not share a backing store:", err)
			return
		}
		f.Close()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

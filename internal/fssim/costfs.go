package fssim

import "genxio/internal/rt"

// costOps is what a filesystem model charges per operation class. The
// openWrite/closeWrite hooks are called synchronously (before any charging)
// when a write stream opens or closes, so models can base contention on the
// number of concurrently open write streams.
type costOps interface {
	meta()          // metadata op: create/open/remove/list/stat
	write(size int) // data write of size bytes
	read(size int)  // data read of size bytes
	openWrite()
	closeWrite()
}

// costFS wraps a real byte store with per-operation time charging; it is
// the rt.FS implementation handed to simulated processes.
type costFS struct {
	fs  rt.FS
	ops costOps
}

func (c *costFS) Create(name string) (rt.File, error) {
	c.ops.openWrite()
	c.ops.meta()
	f, err := c.fs.Create(name)
	if err != nil {
		c.ops.closeWrite()
		return nil, err
	}
	return &costFile{f: f, ops: c.ops, writeStream: true}, nil
}

func (c *costFS) Open(name string) (rt.File, error) {
	c.ops.meta()
	f, err := c.fs.Open(name)
	if err != nil {
		return nil, err
	}
	return &costFile{f: f, ops: c.ops}, nil
}

func (c *costFS) Remove(name string) error {
	c.ops.meta()
	return c.fs.Remove(name)
}

func (c *costFS) Rename(oldname, newname string) error {
	c.ops.meta()
	return c.fs.Rename(oldname, newname)
}

func (c *costFS) List(prefix string) ([]string, error) {
	c.ops.meta()
	return c.fs.List(prefix)
}

func (c *costFS) Stat(name string) (int64, error) {
	c.ops.meta()
	return c.fs.Stat(name)
}

type costFile struct {
	f           rt.File
	ops         costOps
	writeStream bool
	closed      bool
}

func (c *costFile) Name() string { return c.f.Name() }

func (c *costFile) ReadAt(p []byte, off int64) (int, error) {
	c.ops.read(len(p))
	return c.f.ReadAt(p, off)
}

func (c *costFile) WriteAt(p []byte, off int64) (int, error) {
	c.ops.write(len(p))
	return c.f.WriteAt(p, off)
}

func (c *costFile) Size() (int64, error) { return c.f.Size() }

func (c *costFile) Truncate(size int64) error { return c.f.Truncate(size) }

func (c *costFile) Close() error {
	if c.writeStream && !c.closed {
		c.ops.closeWrite()
	}
	c.closed = true
	c.ops.meta()
	return c.f.Close()
}

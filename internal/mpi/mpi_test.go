package mpi

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"
	"testing"

	"genxio/internal/rt"
)

// runWorld runs main on n goroutine ranks and fails the test on error.
func runWorld(t *testing.T, n int, main func(Ctx) error) {
	t.Helper()
	w := NewChanWorld(rt.NewMemFS(), 1)
	if err := w.Run(n, main); err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvBasic(t *testing.T) {
	runWorld(t, 2, func(ctx Ctx) error {
		c := ctx.Comm()
		switch c.Rank() {
		case 0:
			c.Send(1, 7, []byte("ping"))
		case 1:
			data, st := c.Recv(0, 7)
			if string(data) != "ping" {
				return fmt.Errorf("data = %q", data)
			}
			if st.Source != 0 || st.Tag != 7 || st.Size != 4 {
				return fmt.Errorf("status = %+v", st)
			}
		}
		return nil
	})
}

func TestSendBufferReusable(t *testing.T) {
	runWorld(t, 2, func(ctx Ctx) error {
		c := ctx.Comm()
		if c.Rank() == 0 {
			buf := []byte("aaaa")
			c.Send(1, 0, buf)
			copy(buf, "bbbb") // must not affect the message in flight
			c.Send(1, 0, buf)
		} else {
			first, _ := c.Recv(0, 0)
			second, _ := c.Recv(0, 0)
			if string(first) != "aaaa" || string(second) != "bbbb" {
				return fmt.Errorf("got %q, %q", first, second)
			}
		}
		return nil
	})
}

func TestPairwiseOrdering(t *testing.T) {
	const k = 100
	runWorld(t, 2, func(ctx Ctx) error {
		c := ctx.Comm()
		if c.Rank() == 0 {
			for i := 0; i < k; i++ {
				c.Send(1, 5, []byte{byte(i)})
			}
		} else {
			for i := 0; i < k; i++ {
				data, _ := c.Recv(0, 5)
				if data[0] != byte(i) {
					return fmt.Errorf("message %d arrived out of order: %d", i, data[0])
				}
			}
		}
		return nil
	})
}

func TestAnySourceAnyTag(t *testing.T) {
	runWorld(t, 4, func(ctx Ctx) error {
		c := ctx.Comm()
		if c.Rank() != 0 {
			c.Send(0, c.Rank()+10, []byte{byte(c.Rank())})
			return nil
		}
		seen := map[int]bool{}
		for i := 0; i < 3; i++ {
			data, st := c.Recv(AnySource, AnyTag)
			if int(data[0]) != st.Source || st.Tag != st.Source+10 {
				return fmt.Errorf("mismatched status %+v data %v", st, data)
			}
			seen[st.Source] = true
		}
		if len(seen) != 3 {
			return fmt.Errorf("sources = %v", seen)
		}
		return nil
	})
}

func TestTagSelectivity(t *testing.T) {
	runWorld(t, 2, func(ctx Ctx) error {
		c := ctx.Comm()
		if c.Rank() == 0 {
			c.Send(1, 1, []byte("one"))
			c.Send(1, 2, []byte("two"))
		} else {
			// Receive tag 2 first even though tag 1 arrived earlier.
			data2, _ := c.Recv(0, 2)
			data1, _ := c.Recv(0, 1)
			if string(data2) != "two" || string(data1) != "one" {
				return fmt.Errorf("tag matching broken: %q %q", data1, data2)
			}
		}
		return nil
	})
}

func TestProbeThenRecv(t *testing.T) {
	runWorld(t, 2, func(ctx Ctx) error {
		c := ctx.Comm()
		if c.Rank() == 0 {
			c.Send(1, 9, make([]byte, 123))
		} else {
			st := c.Probe(AnySource, AnyTag)
			if st.Size != 123 || st.Source != 0 || st.Tag != 9 {
				return fmt.Errorf("probe status %+v", st)
			}
			data, _ := c.Recv(st.Source, st.Tag)
			if len(data) != 123 {
				return fmt.Errorf("recv after probe: %d bytes", len(data))
			}
		}
		return nil
	})
}

func TestIprobe(t *testing.T) {
	runWorld(t, 2, func(ctx Ctx) error {
		c := ctx.Comm()
		if c.Rank() == 0 {
			// Nothing pending yet.
			if _, ok := c.Iprobe(AnySource, AnyTag); ok {
				return fmt.Errorf("Iprobe matched on empty inbox")
			}
			c.Send(1, 0, []byte("go"))
			data, _ := c.Recv(1, 3)
			if string(data) != "done" {
				return fmt.Errorf("got %q", data)
			}
		} else {
			c.Recv(0, 0)
			c.Send(0, 3, []byte("done"))
		}
		return nil
	})
}

func TestBarrierSynchronizes(t *testing.T) {
	const n = 8
	var mu sync.Mutex
	phase := make(map[int]int)
	runWorld(t, n, func(ctx Ctx) error {
		c := ctx.Comm()
		for ph := 0; ph < 3; ph++ {
			mu.Lock()
			phase[c.Rank()] = ph
			// Every rank must be in the same or adjacent phase.
			for r, p := range phase {
				if p < ph-1 || p > ph+1 {
					mu.Unlock()
					return fmt.Errorf("rank %d at phase %d while rank %d at %d", c.Rank(), ph, r, p)
				}
			}
			mu.Unlock()
			c.Barrier()
		}
		return nil
	})
}

func TestBcast(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8, 16} {
		runWorld(t, n, func(ctx Ctx) error {
			c := ctx.Comm()
			root := n / 2
			var data []byte
			if c.Rank() == root {
				data = []byte("the payload")
			}
			got := c.Bcast(root, data)
			if string(got) != "the payload" {
				return fmt.Errorf("n=%d rank=%d got %q", n, c.Rank(), got)
			}
			return nil
		})
	}
}

func TestGather(t *testing.T) {
	for _, n := range []int{1, 2, 7, 16} {
		runWorld(t, n, func(ctx Ctx) error {
			c := ctx.Comm()
			root := 0
			mine := bytes.Repeat([]byte{byte(c.Rank())}, c.Rank()+1)
			got := c.Gather(root, mine)
			if c.Rank() != root {
				if got != nil {
					return fmt.Errorf("non-root got %v", got)
				}
				return nil
			}
			for r := 0; r < n; r++ {
				want := bytes.Repeat([]byte{byte(r)}, r+1)
				if !bytes.Equal(got[r], want) {
					return fmt.Errorf("gather[%d] = %v, want %v", r, got[r], want)
				}
			}
			return nil
		})
	}
}

func TestAllreduce(t *testing.T) {
	for _, n := range []int{1, 2, 5, 9, 16} {
		runWorld(t, n, func(ctx Ctx) error {
			c := ctx.Comm()
			x := float64(c.Rank() + 1)
			sum := c.AllreduceSum(x)
			wantSum := float64(n*(n+1)) / 2
			if sum != wantSum {
				return fmt.Errorf("n=%d sum=%v want %v", n, sum, wantSum)
			}
			if max := c.AllreduceMax(x); max != float64(n) {
				return fmt.Errorf("max=%v want %v", max, float64(n))
			}
			if min := c.AllreduceMin(x); min != 1 {
				return fmt.Errorf("min=%v", min)
			}
			return nil
		})
	}
}

func TestSplitClientsServers(t *testing.T) {
	// The Rocpanda pattern: world of 9 ranks, rank 0 a server, the rest
	// clients. Clients get a compact communicator, and traffic on the
	// child communicator does not leak into the parent.
	const n = 9
	runWorld(t, n, func(ctx Ctx) error {
		c := ctx.Comm()
		isServer := c.Rank() == 0
		color := 1
		if isServer {
			color = 2
		}
		sub := c.Split(color, c.Rank())
		if isServer {
			if sub.Size() != 1 || sub.Rank() != 0 {
				return fmt.Errorf("server sub comm %d/%d", sub.Rank(), sub.Size())
			}
			return nil
		}
		if sub.Size() != n-1 {
			return fmt.Errorf("client comm size %d", sub.Size())
		}
		if sub.Rank() != c.Rank()-1 {
			return fmt.Errorf("client rank %d from world %d", sub.Rank(), c.Rank())
		}
		if sub.Global() != c.Rank() {
			return fmt.Errorf("global %d != world rank %d", sub.Global(), c.Rank())
		}
		// Exercise the sub communicator.
		sum := sub.AllreduceSum(1)
		if sum != float64(n-1) {
			return fmt.Errorf("client allreduce = %v", sum)
		}
		sub.Barrier()
		return nil
	})
}

func TestSplitByKeyReorders(t *testing.T) {
	const n = 6
	runWorld(t, n, func(ctx Ctx) error {
		c := ctx.Comm()
		// Reverse ordering by key.
		sub := c.Split(0, n-c.Rank())
		wantRank := n - 1 - c.Rank()
		if sub.Rank() != wantRank {
			return fmt.Errorf("world %d got sub rank %d, want %d", c.Rank(), sub.Rank(), wantRank)
		}
		// Rank 0 of sub is world rank n-1.
		var data []byte
		if sub.Rank() == 0 {
			data = binary.LittleEndian.AppendUint32(nil, uint32(c.Rank()))
		}
		got := binary.LittleEndian.Uint32(sub.Bcast(0, data))
		if got != n-1 {
			return fmt.Errorf("bcast from sub root came from world %d", got)
		}
		return nil
	})
}

func TestSplitUndefinedColor(t *testing.T) {
	runWorld(t, 4, func(ctx Ctx) error {
		c := ctx.Comm()
		color := 0
		if c.Rank() == 3 {
			color = -1
		}
		sub := c.Split(color, 0)
		if c.Rank() == 3 {
			if sub != nil {
				return fmt.Errorf("negative color returned a communicator")
			}
			return nil
		}
		if sub.Size() != 3 {
			return fmt.Errorf("sub size %d", sub.Size())
		}
		sub.Barrier()
		return nil
	})
}

func TestNestedSplit(t *testing.T) {
	runWorld(t, 8, func(ctx Ctx) error {
		c := ctx.Comm()
		half := c.Split(c.Rank()/4, c.Rank())
		quarter := half.Split(half.Rank()/2, half.Rank())
		if quarter.Size() != 2 {
			return fmt.Errorf("quarter size %d", quarter.Size())
		}
		sum := quarter.AllreduceSum(float64(c.Rank()))
		// Pairs are (0,1),(2,3),(4,5),(6,7).
		base := float64(c.Rank()/2*2)*2 + 1
		if sum != base {
			return fmt.Errorf("rank %d pair sum %v want %v", c.Rank(), sum, base)
		}
		return nil
	})
}

func TestSendNegativeTagPanics(t *testing.T) {
	w := NewChanWorld(rt.NewMemFS(), 1)
	err := w.Run(2, func(ctx Ctx) error {
		if ctx.Comm().Rank() == 0 {
			ctx.Comm().Send(1, -5, nil) // panics; recovered by the world
		}
		return nil
	})
	if err == nil {
		t.Fatal("negative application tag did not fail the rank")
	}
}

func TestRankErrorPropagates(t *testing.T) {
	w := NewChanWorld(rt.NewMemFS(), 1)
	sentinel := fmt.Errorf("boom")
	err := w.Run(3, func(ctx Ctx) error {
		if ctx.Comm().Rank() == 2 {
			return sentinel
		}
		return nil
	})
	if err != sentinel {
		t.Fatalf("err = %v, want sentinel", err)
	}
}

func TestNodePlacement(t *testing.T) {
	w := NewChanWorld(rt.NewMemFS(), 4)
	err := w.Run(8, func(ctx Ctx) error {
		want := ctx.Comm().Rank() / 4
		if ctx.Node() != want {
			return fmt.Errorf("rank %d node %d, want %d", ctx.Comm().Rank(), ctx.Node(), want)
		}
		if ctx.ProcsPerNode() != 4 {
			return fmt.Errorf("ppn = %d", ctx.ProcsPerNode())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSharedFS(t *testing.T) {
	runWorld(t, 4, func(ctx Ctx) error {
		c := ctx.Comm()
		name := fmt.Sprintf("rank%d.dat", c.Rank())
		f, err := ctx.FS().Create(name)
		if err != nil {
			return err
		}
		f.WriteAt([]byte{byte(c.Rank())}, 0)
		f.Close()
		c.Barrier()
		// Every rank sees every file.
		names, err := ctx.FS().List("rank")
		if err != nil {
			return err
		}
		if len(names) != 4 {
			return fmt.Errorf("rank %d sees %v", c.Rank(), names)
		}
		return nil
	})
}

func TestTreeShape(t *testing.T) {
	for n := 1; n <= 33; n++ {
		seen := map[int]int{}
		for r := 1; r < n; r++ {
			p := treeParent(r, n)
			if p < 0 || p >= r {
				t.Fatalf("n=%d parent(%d)=%d", n, r, p)
			}
			seen[r] = p
		}
		// children must be the inverse of parent.
		for r := 0; r < n; r++ {
			for _, kid := range treeChildren(r, n) {
				if seen[kid] != r {
					t.Fatalf("n=%d child %d of %d has parent %d", n, kid, r, seen[kid])
				}
				delete(seen, kid)
			}
		}
		if len(seen) != 0 {
			t.Fatalf("n=%d unclaimed children %v", n, seen)
		}
	}
}

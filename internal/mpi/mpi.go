// Package mpi provides an MPI-like message-passing layer: tagged
// point-to-point messages with wildcard receive, blocking and non-blocking
// probe, communicator split, and tree-based collectives.
//
// The paper's I/O libraries (Rocpanda's client-server protocol in
// particular) need exactly this slice of MPI: blocking send with
// reusable-buffer semantics, Recv/Probe with MPI_ANY_SOURCE, MPI_Iprobe for
// active buffering's "yield to new requests" loop, and MPI_Comm_split for
// separating clients from I/O servers at initialization.
//
// A Comm is implemented generically on top of an Endpoint, which a backend
// provides per rank. Two backends exist: ChanWorld in this package (real
// concurrent goroutines, for running the library for real) and the
// simulated platforms in internal/cluster (virtual time, for reproducing
// the paper's performance results). Library code written against Comm runs
// unmodified on both.
package mpi

import "genxio/internal/rt"

// Wildcards for Recv and Probe.
const (
	AnySource = -1
	AnyTag    = -1
)

// Internal tags used by the collectives; application tags must be >= 0.
// A wildcard-tag receive never matches internal tags.
const (
	tagBarrierUp = -2 - iota
	tagBarrierDown
	tagBcast
	tagGather
	tagReduceUp
	tagSplit
)

// Message is a transport-level message. Src is the sender's global rank;
// Ctx isolates communicators that share the same endpoints.
type Message struct {
	Ctx  uint64
	Src  int
	Tag  int
	Data []byte
}

// Endpoint is what a backend provides to each rank: raw matched messaging
// against every other rank in the world. Implementations must preserve
// per-(sender,receiver) FIFO order among messages matching the same
// predicate, and must copy Data on Send so the caller may reuse its buffer.
type Endpoint interface {
	// GlobalRank returns this rank's index in the world.
	GlobalRank() int
	// NumRanks returns the world size.
	NumRanks() int
	// Send delivers m to the global rank dst. It blocks only for
	// transport cost (simulated backends charge send time here), never
	// for the receiver to post a matching receive.
	Send(dst int, m *Message)
	// RecvMatch removes and returns the earliest pending message
	// matching pred, blocking until one arrives.
	RecvMatch(pred func(*Message) bool) *Message
	// ProbeMatch blocks until a message matching pred is pending and
	// returns it without removing it.
	ProbeMatch(pred func(*Message) bool) *Message
	// TryProbeMatch returns a pending matching message without removing
	// it, or (nil, false); it never blocks.
	TryProbeMatch(pred func(*Message) bool) (*Message, bool)
}

// SendVerdict tells a transport what to do with one outgoing message.
// The zero value delivers normally.
type SendVerdict struct {
	// Drop discards the message without delivering it.
	Drop bool
	// Delay stalls the sender this many seconds before delivery, so
	// per-stream FIFO order is preserved.
	Delay float64
}

// SendHook inspects every transport-level send of a world and may drop or
// delay it (fault injection, internal/faults). Hooks are called from rank
// goroutines concurrently and must be safe for concurrent use.
type SendHook func(src, dst, tag, size int) SendVerdict

// Status describes a matched message.
type Status struct {
	Source int // rank within the communicator
	Tag    int
	Size   int // payload size in bytes
}

// Comm is a communicator: an ordered group of ranks with isolated message
// context, in the style of an MPI communicator.
type Comm interface {
	// Rank returns the caller's rank within this communicator.
	Rank() int
	// Size returns the number of ranks in this communicator.
	Size() int
	// Send sends data to rank dst with the given tag (tag >= 0). The
	// data buffer may be reused as soon as Send returns.
	Send(dst, tag int, data []byte)
	// Recv receives the earliest message matching (src, tag), either of
	// which may be a wildcard, and returns its payload and status.
	Recv(src, tag int) ([]byte, Status)
	// Probe blocks until a message matching (src, tag) is pending and
	// returns its status without receiving it.
	Probe(src, tag int) Status
	// Iprobe is the non-blocking Probe; ok reports whether a matching
	// message is pending.
	Iprobe(src, tag int) (Status, bool)
	// Split partitions the communicator by color; ranks passing the
	// same color form a new communicator ordered by (key, old rank).
	// Every rank of the communicator must call Split. A negative color
	// returns nil for that rank (MPI_UNDEFINED).
	Split(color, key int) Comm
	// Global returns the caller's rank in the world (outside any
	// communicator), used for server-placement decisions.
	Global() int

	// Collectives. Every rank of the communicator must call the same
	// collectives in the same order.

	// Barrier blocks until all ranks have entered it.
	Barrier()
	// Bcast distributes root's data to all ranks and returns it;
	// non-root callers may pass nil.
	Bcast(root int, data []byte) []byte
	// Gather collects each rank's data at root, indexed by rank;
	// non-root callers receive nil.
	Gather(root int, data []byte) [][]byte
	// AllreduceSum returns the sum of x over all ranks, on all ranks.
	AllreduceSum(x float64) float64
	// AllreduceMax returns the maximum of x over all ranks, on all ranks.
	AllreduceMax(x float64) float64
	// AllreduceMin returns the minimum of x over all ranks, on all ranks.
	AllreduceMin(x float64) float64
}

// Ctx is the per-rank execution context a World hands to the rank's main
// function.
type Ctx interface {
	// Comm returns the world communicator.
	Comm() Comm
	// Clock returns this rank's clock.
	Clock() rt.Clock
	// FS returns this rank's view of the shared filesystem.
	FS() rt.FS
	// Node returns the id of the node hosting this rank.
	Node() int
	// ProcsPerNode returns the number of ranks placed on each node.
	ProcsPerNode() int
	// Spawn starts a background activity belonging to this rank (the
	// paper's per-process I/O thread). The activity gets its own clock
	// identity and filesystem view. The world waits for all spawned
	// activities before Run returns.
	Spawn(name string, fn func(rt.TaskCtx))
	// NewQueue returns a bounded queue for communication between this
	// rank and its background activities.
	NewQueue(capacity int) rt.Queue
}

// World launches a set of ranks. Run blocks until all ranks return; it
// returns the first non-nil error returned by a rank.
type World interface {
	Run(n int, main func(Ctx) error) error
}

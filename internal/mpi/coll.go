package mpi

import (
	"encoding/binary"
	"math"
)

// The collectives use binomial trees over communicator ranks (relative to
// the operation's root), giving O(log n) depth. They rely on per-pair FIFO
// ordering and on every rank of the communicator entering the same
// collectives in the same order, as MPI does.

// treeParent returns the parent of rank in a binomial tree of size n rooted
// at 0, or -1 for the root.
func treeParent(rank, n int) int {
	if rank == 0 {
		return -1
	}
	// Clear the lowest set bit.
	return rank & (rank - 1)
}

// treeChildren appends the children of rank in a binomial tree of size n
// rooted at 0.
func treeChildren(rank, n int) []int {
	var kids []int
	for mask := 1; mask < n; mask <<= 1 {
		if rank&(mask-1) != 0 || rank&mask != 0 {
			break
		}
		child := rank | mask
		if child < n {
			kids = append(kids, child)
		}
	}
	return kids
}

// rel maps a rank to the tree coordinate system rooted at root, and back.
func rel(rank, root, n int) int   { return (rank - root + n) % n }
func unrel(rank, root, n int) int { return (rank + root) % n }

// Barrier blocks until every rank of the communicator has entered it:
// a reduce up the tree followed by a broadcast down.
func (c *comm) Barrier() {
	n := c.Size()
	if n == 1 {
		return
	}
	me := c.rank
	for _, kid := range treeChildren(me, n) {
		c.ep.RecvMatch(c.pred(kid, tagBarrierUp))
	}
	if p := treeParent(me, n); p >= 0 {
		c.send(p, tagBarrierUp, nil)
		c.ep.RecvMatch(c.pred(p, tagBarrierDown))
	}
	for _, kid := range treeChildren(me, n) {
		c.send(kid, tagBarrierDown, nil)
	}
}

// Bcast distributes root's data to every rank and returns it. Non-root
// callers may pass nil.
func (c *comm) Bcast(root int, data []byte) []byte {
	return c.bcast(root, tagBcast, data)
}

func (c *comm) bcast(root, tag int, data []byte) []byte {
	n := c.Size()
	if n == 1 {
		return data
	}
	me := rel(c.rank, root, n)
	if me != 0 {
		p := unrel(treeParent(me, n), root, n)
		m := c.ep.RecvMatch(c.pred(p, tag))
		data = m.Data
	}
	for _, kid := range treeChildren(me, n) {
		c.send(unrel(kid, root, n), tag, data)
	}
	return data
}

// Gather collects every rank's data at root. At root the result has one
// entry per rank, indexed by communicator rank; other ranks get nil.
func (c *comm) Gather(root int, data []byte) [][]byte {
	return c.gather(root, tagGather, data)
}

func (c *comm) gather(root, tag int, data []byte) [][]byte {
	// Flat gather: each rank sends directly to root. Contributions can
	// be large and heterogeneous, so a flat pattern avoids forwarding
	// volume through the tree.
	if c.rank != root {
		c.send(root, tag, data)
		return nil
	}
	out := make([][]byte, c.Size())
	out[root] = data
	for i := 1; i < c.Size(); i++ {
		m := c.ep.RecvMatch(c.pred(AnySource, tag))
		out[c.local[m.Src]] = m.Data
	}
	return out
}

// reduceOp combines two float64s.
type reduceOp func(a, b float64) float64

func (c *comm) allreduce(x float64, op reduceOp) float64 {
	n := c.Size()
	if n == 1 {
		return x
	}
	me := c.rank
	acc := x
	for _, kid := range treeChildren(me, n) {
		m := c.ep.RecvMatch(c.pred(kid, tagReduceUp))
		acc = op(acc, math.Float64frombits(binary.LittleEndian.Uint64(m.Data)))
	}
	buf := make([]byte, 8)
	if p := treeParent(me, n); p >= 0 {
		binary.LittleEndian.PutUint64(buf, math.Float64bits(acc))
		c.send(p, tagReduceUp, buf)
	}
	binary.LittleEndian.PutUint64(buf, math.Float64bits(acc))
	out := c.bcast(0, tagReduceUp, buf)
	return math.Float64frombits(binary.LittleEndian.Uint64(out))
}

// AllreduceSum returns the sum of x across all ranks, on all ranks.
func (c *comm) AllreduceSum(x float64) float64 {
	return c.allreduce(x, func(a, b float64) float64 { return a + b })
}

// AllreduceMax returns the maximum of x across all ranks, on all ranks.
func (c *comm) AllreduceMax(x float64) float64 {
	return c.allreduce(x, math.Max)
}

// AllreduceMin returns the minimum of x across all ranks, on all ranks.
func (c *comm) AllreduceMin(x float64) float64 {
	return c.allreduce(x, math.Min)
}

package mpi

import (
	"fmt"
	"sync"
	"time"

	"genxio/internal/rt"
)

// ChanWorld is the real backend: every rank is a goroutine, messages move
// through in-process mailboxes, time is wall time, and files go to the
// world's shared filesystem. Use it to run the I/O libraries for real
// (tests, examples, cmd/genx); use internal/cluster for the simulated
// platforms.
type ChanWorld struct {
	fs   rt.FS
	ppn  int // ranks per (pretend) node, for Ctx.Node()
	hook SendHook
}

// SetSendHook installs a fault-injection hook consulted on every
// transport-level send. It must be set before Run; the zero verdict
// delivers normally.
func (w *ChanWorld) SetSendHook(h SendHook) { w.hook = h }

// NewChanWorld returns a world whose ranks share the filesystem fs and are
// grouped procsPerNode ranks per node (>= 1).
func NewChanWorld(fs rt.FS, procsPerNode int) *ChanWorld {
	if procsPerNode < 1 {
		procsPerNode = 1
	}
	return &ChanWorld{fs: fs, ppn: procsPerNode}
}

// Run implements World: it launches n goroutine ranks running main and
// waits for all of them. The first rank error (by rank order) is returned;
// a rank panic is recovered and reported as that rank's error.
func (w *ChanWorld) Run(n int, main func(Ctx) error) error {
	if n < 1 {
		return fmt.Errorf("mpi: world size %d < 1", n)
	}
	inboxes := make([]*inbox, n)
	for i := range inboxes {
		inboxes[i] = newInbox()
	}
	clock := rt.NewWallClock()
	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[r] = fmt.Errorf("mpi: rank %d panicked: %v", r, p)
				}
			}()
			ep := &chanEndpoint{rank: r, inboxes: inboxes, hook: w.hook}
			ctx := &chanCtx{
				comm:  NewWorldComm(ep),
				clock: clock,
				fs:    w.fs,
				node:  r / w.ppn,
				ppn:   w.ppn,
				wg:    &wg,
			}
			errs[r] = main(ctx)
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

type chanCtx struct {
	comm  Comm
	clock rt.Clock
	fs    rt.FS
	node  int
	ppn   int
	wg    *sync.WaitGroup
}

func (c *chanCtx) Comm() Comm        { return c.comm }
func (c *chanCtx) Clock() rt.Clock   { return c.clock }
func (c *chanCtx) FS() rt.FS         { return c.fs }
func (c *chanCtx) Node() int         { return c.node }
func (c *chanCtx) ProcsPerNode() int { return c.ppn }

// Spawn implements Ctx: background activities are plain goroutines sharing
// the rank's clock and filesystem; Run waits for them.
func (c *chanCtx) Spawn(name string, fn func(rt.TaskCtx)) {
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		fn(&chanTaskCtx{clock: c.clock, fs: c.fs})
	}()
}

// NewQueue implements Ctx.
func (c *chanCtx) NewQueue(capacity int) rt.Queue { return rt.NewGoQueue(capacity) }

type chanTaskCtx struct {
	clock rt.Clock
	fs    rt.FS
}

func (t *chanTaskCtx) Clock() rt.Clock { return t.clock }
func (t *chanTaskCtx) FS() rt.FS       { return t.fs }

// chanEndpoint implements Endpoint over shared in-process inboxes.
type chanEndpoint struct {
	rank    int
	inboxes []*inbox
	hook    SendHook
}

func (e *chanEndpoint) GlobalRank() int { return e.rank }
func (e *chanEndpoint) NumRanks() int   { return len(e.inboxes) }

func (e *chanEndpoint) Send(dst int, m *Message) {
	if e.hook != nil {
		v := e.hook(e.rank, dst, m.Tag, len(m.Data))
		if v.Delay > 0 {
			// Stall the sender itself so per-stream FIFO order holds.
			time.Sleep(time.Duration(v.Delay * float64(time.Second)))
		}
		if v.Drop {
			return
		}
	}
	cp := *m
	cp.Data = append([]byte(nil), m.Data...)
	e.inboxes[dst].put(&cp)
}

func (e *chanEndpoint) RecvMatch(pred func(*Message) bool) *Message {
	return e.inboxes[e.rank].recvMatch(pred)
}

func (e *chanEndpoint) ProbeMatch(pred func(*Message) bool) *Message {
	return e.inboxes[e.rank].probeMatch(pred)
}

func (e *chanEndpoint) TryProbeMatch(pred func(*Message) bool) (*Message, bool) {
	return e.inboxes[e.rank].tryProbeMatch(pred)
}

// inbox is a matched FIFO of messages guarded by a mutex and condition
// variable. One goroutine (the owning rank) consumes; any rank produces.
type inbox struct {
	mu   sync.Mutex
	cond *sync.Cond
	q    []*Message
}

func newInbox() *inbox {
	b := &inbox{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *inbox) put(m *Message) {
	b.mu.Lock()
	b.q = append(b.q, m)
	b.mu.Unlock()
	b.cond.Broadcast()
}

func (b *inbox) recvMatch(pred func(*Message) bool) *Message {
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		for i, m := range b.q {
			if pred(m) {
				b.q = append(b.q[:i], b.q[i+1:]...)
				return m
			}
		}
		b.cond.Wait()
	}
}

func (b *inbox) probeMatch(pred func(*Message) bool) *Message {
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		for _, m := range b.q {
			if pred(m) {
				return m
			}
		}
		b.cond.Wait()
	}
}

func (b *inbox) tryProbeMatch(pred func(*Message) bool) (*Message, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, m := range b.q {
		if pred(m) {
			return m, true
		}
	}
	return nil, false
}

package mpi

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// comm implements Comm generically over an Endpoint. A communicator is a
// list of global ranks plus a context id that isolates its traffic.
type comm struct {
	ep     Endpoint
	ctx    uint64
	group  []int       // global rank of each communicator rank
	local  map[int]int // global rank -> communicator rank
	rank   int         // caller's rank within the communicator
	splits uint64      // number of Split calls issued, for child ctx ids
}

// NewWorldComm returns the world communicator for an endpoint: all ranks,
// identity ordering, context id 0.
func NewWorldComm(ep Endpoint) Comm {
	n := ep.NumRanks()
	group := make([]int, n)
	local := make(map[int]int, n)
	for i := range group {
		group[i] = i
		local[i] = i
	}
	return &comm{ep: ep, ctx: 0, group: group, local: local, rank: ep.GlobalRank()}
}

func (c *comm) Rank() int   { return c.rank }
func (c *comm) Size() int   { return len(c.group) }
func (c *comm) Global() int { return c.ep.GlobalRank() }

func (c *comm) Send(dst, tag int, data []byte) {
	if tag < 0 {
		panic(fmt.Sprintf("mpi: application tag %d must be >= 0", tag))
	}
	c.send(dst, tag, data)
}

func (c *comm) send(dst, tag int, data []byte) {
	if dst < 0 || dst >= len(c.group) {
		panic(fmt.Sprintf("mpi: Send to rank %d outside communicator of size %d", dst, len(c.group)))
	}
	c.ep.Send(c.group[dst], &Message{Ctx: c.ctx, Src: c.ep.GlobalRank(), Tag: tag, Data: data})
}

// pred builds the match predicate for (src, tag) within this communicator.
// A wildcard tag never matches the internal (negative) collective tags.
func (c *comm) pred(src, tag int) func(*Message) bool {
	return func(m *Message) bool {
		if m.Ctx != c.ctx {
			return false
		}
		switch {
		case tag == AnyTag:
			if m.Tag < 0 {
				return false
			}
		case m.Tag != tag:
			return false
		}
		if src == AnySource {
			_, ok := c.local[m.Src]
			return ok
		}
		return m.Src == c.group[src]
	}
}

func (c *comm) status(m *Message) Status {
	return Status{Source: c.local[m.Src], Tag: m.Tag, Size: len(m.Data)}
}

func (c *comm) Recv(src, tag int) ([]byte, Status) {
	m := c.ep.RecvMatch(c.pred(src, tag))
	return m.Data, c.status(m)
}

func (c *comm) Probe(src, tag int) Status {
	m := c.ep.ProbeMatch(c.pred(src, tag))
	return c.status(m)
}

func (c *comm) Iprobe(src, tag int) (Status, bool) {
	m, ok := c.ep.TryProbeMatch(c.pred(src, tag))
	if !ok {
		return Status{}, false
	}
	return c.status(m), true
}

// Split implements Comm. It gathers every rank's (color, key) to rank 0,
// broadcasts the table, and builds the child communicator locally. The
// child context id is derived deterministically from the parent context,
// the per-parent split counter, and the color, so all members agree on it
// without further communication.
func (c *comm) Split(color, key int) Comm {
	mine := make([]byte, 8)
	binary.LittleEndian.PutUint32(mine[0:], uint32(int32(color)))
	binary.LittleEndian.PutUint32(mine[4:], uint32(int32(key)))
	table := c.gather(0, tagSplit, mine)
	var flat []byte
	if c.rank == 0 {
		flat = make([]byte, 0, 8*len(table))
		for _, b := range table {
			flat = append(flat, b...)
		}
	}
	flat = c.bcast(0, tagSplit, flat)

	c.splits++
	if color < 0 {
		return nil
	}
	type member struct{ rank, key int }
	var members []member
	for r := 0; r < c.Size(); r++ {
		rc := int(int32(binary.LittleEndian.Uint32(flat[8*r:])))
		rk := int(int32(binary.LittleEndian.Uint32(flat[8*r+4:])))
		if rc == color {
			members = append(members, member{rank: r, key: rk})
		}
	}
	sort.Slice(members, func(i, j int) bool {
		if members[i].key != members[j].key {
			return members[i].key < members[j].key
		}
		return members[i].rank < members[j].rank
	})

	child := &comm{
		ep:    c.ep,
		ctx:   childCtx(c.ctx, c.splits, color),
		local: make(map[int]int, len(members)),
		rank:  -1,
	}
	child.group = make([]int, len(members))
	for i, m := range members {
		g := c.group[m.rank]
		child.group[i] = g
		child.local[g] = i
		if m.rank == c.rank {
			child.rank = i
		}
	}
	if child.rank < 0 {
		panic("mpi: Split caller missing from its own color group")
	}
	return child
}

// childCtx mixes the parent context, split counter, and color into a new
// context id (FNV-1a over the three words).
func childCtx(parent, splits uint64, color int) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, w := range [3]uint64{parent, splits, uint64(int64(color))} {
		for i := 0; i < 8; i++ {
			h ^= (w >> (8 * i)) & 0xff
			h *= prime
		}
	}
	if h == 0 { // reserve 0 for the world communicator
		h = 1
	}
	return h
}

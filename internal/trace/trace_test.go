package trace

import (
	"math"
	"strings"
	"testing"
)

func TestRecordAndTotals(t *testing.T) {
	r := New()
	r.Record(0, PhaseCompute, 0, 5)
	r.Record(0, PhaseWrite, 5, 6)
	r.Record(0, PhaseCompute, 6, 11)
	r.Record(1, PhaseCompute, 0, 10)
	r.Record(1, PhaseSync, 10, 12)
	r.Record(1, PhaseCompute, 3, 3)                // zero-length: dropped
	r.Record(1, PhaseCompute, 4, 2)                // reversed: dropped
	(*Recorder)(nil).Record(0, PhaseCompute, 0, 1) // nil-safe

	spans := r.Spans()
	if len(spans) != 5 {
		t.Fatalf("spans = %d, want 5", len(spans))
	}
	// Sorted by (rank, t0).
	for i := 1; i < len(spans); i++ {
		a, b := spans[i-1], spans[i]
		if a.Rank > b.Rank || (a.Rank == b.Rank && a.T0 > b.T0) {
			t.Fatalf("spans not sorted at %d", i)
		}
	}
	tot := r.Totals()
	if math.Abs(tot[0][PhaseCompute]-10) > 1e-12 || tot[0][PhaseWrite] != 1 {
		t.Fatalf("rank 0 totals %v", tot[0])
	}
	if tot[1][PhaseSync] != 2 {
		t.Fatalf("rank 1 totals %v", tot[1])
	}
}

func TestTimelineRendering(t *testing.T) {
	r := New()
	r.Record(0, PhaseCompute, 0, 8)
	r.Record(0, PhaseWrite, 8, 10)
	r.Record(1, PhaseCompute, 0, 10)
	var b strings.Builder
	if err := r.Timeline(&b, 40); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "rank   0") || !strings.Contains(out, "rank   1") {
		t.Fatalf("missing rank rows:\n%s", out)
	}
	// Rank 0's row ends in W glyphs; rank 1's is all compute.
	lines := strings.Split(out, "\n")
	var row0, row1 string
	for _, l := range lines {
		if strings.HasPrefix(l, "rank   0") {
			row0 = l
		}
		if strings.HasPrefix(l, "rank   1") {
			row1 = l
		}
	}
	if !strings.Contains(row0, "W") || strings.Contains(row1, "W") {
		t.Fatalf("glyph placement wrong:\n%s\n%s", row0, row1)
	}
	if !strings.Contains(out, "compute  max over ranks: 10.000s") {
		t.Fatalf("totals footer wrong:\n%s", out)
	}
	if !strings.Contains(out, "write    max over ranks: 2.000s") {
		t.Fatalf("write footer wrong:\n%s", out)
	}
}

func TestTimelineEmpty(t *testing.T) {
	var b strings.Builder
	if err := New().Timeline(&b, 40); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "no spans") {
		t.Fatal("empty recorder not reported")
	}
}

func TestOverlapFavorsIO(t *testing.T) {
	r := New()
	r.Record(0, PhaseCompute, 0, 10)
	r.Record(0, PhaseWrite, 4, 6) // inside the compute span
	var b strings.Builder
	r.Timeline(&b, 20)
	row := ""
	for _, l := range strings.Split(b.String(), "\n") {
		if strings.HasPrefix(l, "rank   0") {
			row = l
		}
	}
	if !strings.Contains(row, "W") {
		t.Fatalf("I/O hidden under compute glyphs: %q", row)
	}
}
